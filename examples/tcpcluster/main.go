// TCP cluster: the delegate protocol over real sockets.
//
// Five management agents run in one process, each listening on a
// loopback TCP port, driven by the internal/cluster runtime: wall-clock
// rounds, heartbeat liveness, and delegate-paced tuning, with every
// installed placement journaled to disk. Halfway through, the delegate
// is killed; the next-lowest agent takes over because the delegate is
// stateless (Section 4 of the paper). The killed node then restarts
// from its journal and rejoins at its recovered (epoch, round) fence
// rather than the bootstrap snapshot.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"anurand/internal/anu"
	"anurand/internal/cluster"
	"anurand/internal/delegate"
	"anurand/internal/hashx"
	"anurand/internal/journal"
	"anurand/internal/placement"
)

const numNodes = 5

// speeds: node 0 is the slowest machine, node 4 the fastest.
var speeds = map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}

// observe models a closed-loop workload: latency grows with the share
// of the hash space a node owns, divided by its machine speed.
func observe(p placement.Strategy, id delegate.NodeID) (uint64, float64) {
	share := p.Shares()[id]
	return uint64(1 + 1000*share), 0.002 + share/speeds[id]
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcpcluster: ")

	ids := make([]delegate.NodeID, numNodes)
	for i := range ids {
		ids[i] = delegate.NodeID(i)
	}
	m, err := anu.New(hashx.NewFamily(42), ids)
	if err != nil {
		log.Fatal(err)
	}
	snapshot := m.Encode()

	dir, err := os.MkdirTemp("", "anurand-tcpcluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	journals := make([]*journal.Journal, numNodes)
	for i := range journals {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		if err != nil {
			log.Fatal(err)
		}
		journals[i] = j
	}
	defer func() {
		for _, j := range journals {
			j.Close()
		}
	}()

	book := cluster.NewAddressBook()
	start := func(i int, id delegate.NodeID) *cluster.Runtime {
		tr, err := cluster.ListenTCP(id, book, cluster.DefaultTCPOptions())
		if err != nil {
			log.Fatal(err)
		}
		rt, err := cluster.Start(cluster.Config{
			ID:            id,
			Members:       ids,
			Snapshot:      snapshot,
			Controller:    anu.DefaultControllerConfig(),
			RoundInterval: 100 * time.Millisecond,
			Observe:       observe,
			Journal:       journals[i],
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("node %d listening on %s", id, tr.Addr())
		return rt
	}
	rts := make([]*cluster.Runtime, numNodes)
	for i, id := range ids {
		rts[i] = start(i, id)
	}

	time.Sleep(2 * time.Second)
	log.Printf("killing the delegate (node 0) mid-run")
	rts[0].Stop()
	time.Sleep(2 * time.Second)

	fmt.Println("\nsurvivors after delegate failover:")
	for _, rt := range rts[1:] {
		s := rt.Stats()
		fmt.Printf("  node %d: delegate=%d round=%d map=%012x share=%5.1f%%  %s\n",
			s.ID, s.Delegate, s.MapRound, rt.Fingerprint()&0xffffffffffff,
			100*float64(rt.Map().Length(s.ID))/float64(anu.Half), s.String())
	}

	// Restart the killed node from its journal: a real restart reopens
	// the WAL from disk, so do the same here.
	if err := journals[0].Close(); err != nil {
		log.Fatal(err)
	}
	j, err := journal.Open(filepath.Join(dir, "node0.wal"), journal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	journals[0] = j
	log.Printf("restarting node 0 from its journal")
	rts[0] = start(0, ids[0])
	time.Sleep(2 * time.Second)

	fmt.Println("\nafter journal-recovery restart of node 0:")
	for _, rt := range rts {
		s := rt.Stats()
		fmt.Printf("  node %d: delegate=%d round=%d map=%012x share=%5.1f%%  %s\n",
			s.ID, s.Delegate, s.MapRound, rt.Fingerprint()&0xffffffffffff,
			100*float64(rt.Map().Length(s.ID))/float64(anu.Half), s.String())
		rt.Stop()
	}
	s0 := rts[0].Stats()
	if !s0.Recovered {
		log.Fatal("node 0 did not recover from its journal")
	}
	fmt.Printf("\nnode 0 recovered from journal at (epoch %d, round %d): %d record(s) replayed, %d torn tail(s) truncated\n",
		s0.RecoveredEpoch, s0.RecoveredRound, s0.Journal.RecordsRecovered, s0.Journal.TornTailsTruncated)
}
