// TCP cluster: the delegate protocol over real sockets.
//
// Five management agents run in one process, each listening on a
// loopback TCP port. Every "tuning interval" the agents send their
// latency reports to the elected delegate over TCP, the delegate
// rescales the ANU map and broadcasts the new placement — the O(k)
// replicated state — back over TCP. Halfway through, the delegate is
// killed; the next-lowest agent takes over seamlessly because the
// delegate is stateless (Section 4 of the paper).
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/hashx"
)

const numNodes = 5

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcpcluster: ")

	// Shared initial map — what a real cluster would bootstrap from
	// shared storage.
	ids := make([]delegate.NodeID, numNodes)
	for i := range ids {
		ids[i] = delegate.NodeID(i)
	}
	m, err := anu.New(hashx.NewFamily(42), ids)
	if err != nil {
		log.Fatal(err)
	}
	snapshot := m.Encode()

	// Bring up the transports (one listener per agent) and the agents.
	book := newAddressBook()
	transports := make([]*tcpTransport, numNodes)
	nodes := make([]*delegate.Node, numNodes)
	for i := range ids {
		tr, err := newTCPTransport(ids[i], book)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		transports[i] = tr
		n, err := delegate.NewNode(ids[i], snapshot, anu.DefaultControllerConfig(), tr)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
	}
	fmt.Printf("%d agents listening:\n", numNodes)
	for id, addr := range book.all() {
		fmt.Printf("  node %d @ %s\n", id, addr)
	}

	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	for round := uint64(1); round <= 20; round++ {
		if round == 11 {
			fmt.Println("\n*** killing the delegate (node 0) ***")
			nodes[0].Crash()
			transports[0].Close()
		}
		del, ok := delegate.Elect(nodes)
		if !ok {
			log.Fatal("no live nodes")
		}
		// Local observation: latency grows with region share over
		// speed (the closed-loop model of the paper's cluster).
		for _, n := range nodes {
			if !n.Up() {
				continue
			}
			share := float64(n.Map().Length(n.ID())) / float64(anu.Half)
			n.Observe(uint64(1+1000*share), 0.002+share/speeds[n.ID()])
			if n.ID() != del {
				n.SendReport(del, round)
			}
		}
		// Give loopback TCP a moment to deliver, then run the delegate.
		delNode := nodes[del]
		waitForReports(delNode, round, liveCount(nodes)-1)
		if err := delNode.RunDelegate(round, ids); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		for _, n := range nodes {
			if n.ID() == del {
				continue
			}
			if _, err := n.CollectReports(round); err != nil {
				log.Fatal(err)
			}
		}
		if round == 1 || round == 10 || round == 11 || round == 20 {
			printState(nodes, del, round)
		}
	}

	fmt.Println("\nfinal shares on every live node (byte-identical maps):")
	for _, n := range nodes {
		if !n.Up() {
			continue
		}
		fmt.Printf("  node %d (fp %016x):", n.ID(), n.Fingerprint())
		for _, id := range n.Map().Servers() {
			fmt.Printf("  s%d=%4.1f%%", id, 100*float64(n.Map().Length(id))/float64(anu.Half))
		}
		fmt.Println()
	}
}

func liveCount(nodes []*delegate.Node) int {
	n := 0
	for _, node := range nodes {
		if node.Up() {
			n++
		}
	}
	return n
}

// waitForReports polls the delegate's inbox until the expected reports
// arrived or a deadline passes (lost reports are treated as failures,
// which the protocol tolerates).
func waitForReports(n *delegate.Node, round uint64, expected int) {
	deadline := time.Now().Add(500 * time.Millisecond)
	got := 0
	for time.Now().Before(deadline) && got < expected {
		if _, err := n.CollectReports(round); err != nil {
			log.Fatal(err)
		}
		got = n.PendingReports()
		time.Sleep(5 * time.Millisecond)
	}
}

func printState(nodes []*delegate.Node, del delegate.NodeID, round uint64) {
	fps := map[uint64]int{}
	for _, n := range nodes {
		if n.Up() {
			fps[n.Fingerprint()]++
		}
	}
	fmt.Printf("round %2d: delegate=node%d, %d live agents, %d distinct map fingerprints\n",
		round, del, liveCount(nodes), len(fps))
}

// addressBook maps node ids to listen addresses.
type addressBook struct {
	mu    sync.RWMutex
	addrs map[delegate.NodeID]string
}

func newAddressBook() *addressBook {
	return &addressBook{addrs: make(map[delegate.NodeID]string)}
}

func (b *addressBook) set(id delegate.NodeID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

func (b *addressBook) get(id delegate.NodeID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	addr, ok := b.addrs[id]
	return addr, ok
}

func (b *addressBook) all() map[delegate.NodeID]string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[delegate.NodeID]string, len(b.addrs))
	for id, addr := range b.addrs {
		out[id] = addr
	}
	return out
}

// tcpTransport implements delegate.Transport over loopback TCP with a
// simple length-framed wire format:
//
//	kind u8 | from i32 | to i32 | round u64 | len u32 | payload
type tcpTransport struct {
	id   delegate.NodeID
	book *addressBook
	ln   net.Listener

	mu     sync.Mutex
	inbox  []delegate.Message
	closed bool
}

func newTCPTransport(id delegate.NodeID, book *addressBook) (*tcpTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &tcpTransport{id: id, book: book, ln: ln}
	book.set(id, ln.Addr().String())
	go t.accept()
	return t, nil
}

func (t *tcpTransport) accept() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.serve(conn)
	}
}

func (t *tcpTransport) serve(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := readMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// A malformed frame only costs this connection.
				return
			}
			return
		}
		t.mu.Lock()
		if !t.closed {
			t.inbox = append(t.inbox, msg)
		}
		t.mu.Unlock()
	}
}

// Send implements delegate.Transport: one connection per message keeps
// the example simple; a production agent would pool connections.
func (t *tcpTransport) Send(msg delegate.Message) {
	addr, ok := t.book.get(msg.To)
	if !ok {
		return
	}
	conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
	if err != nil {
		return // unreachable peers look like lost messages
	}
	defer conn.Close()
	writeMessage(conn, msg)
}

// Deliver implements delegate.Transport.
func (t *tcpTransport) Deliver(to delegate.NodeID) []delegate.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	msgs := t.inbox
	t.inbox = nil
	return msgs
}

// Close stops the listener and discards queued mail.
func (t *tcpTransport) Close() {
	t.mu.Lock()
	t.closed = true
	t.inbox = nil
	t.mu.Unlock()
	t.ln.Close()
}

func writeMessage(w io.Writer, msg delegate.Message) error {
	head := make([]byte, 1+4+4+8+4)
	head[0] = byte(msg.Kind)
	binary.LittleEndian.PutUint32(head[1:5], uint32(msg.From))
	binary.LittleEndian.PutUint32(head[5:9], uint32(msg.To))
	binary.LittleEndian.PutUint64(head[9:17], msg.Round)
	binary.LittleEndian.PutUint32(head[17:21], uint32(len(msg.Payload)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(msg.Payload)
	return err
}

func readMessage(r io.Reader) (delegate.Message, error) {
	head := make([]byte, 21)
	if _, err := io.ReadFull(r, head); err != nil {
		return delegate.Message{}, err
	}
	n := binary.LittleEndian.Uint32(head[17:21])
	if n > 1<<20 {
		return delegate.Message{}, fmt.Errorf("frame too large: %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return delegate.Message{}, err
	}
	return delegate.Message{
		Kind:    delegate.MsgKind(head[0]),
		From:    delegate.NodeID(binary.LittleEndian.Uint32(head[1:5])),
		To:      delegate.NodeID(binary.LittleEndian.Uint32(head[5:9])),
		Round:   binary.LittleEndian.Uint64(head[9:17]),
		Payload: payload,
	}, nil
}
