// Heterogeneous cluster comparison: the paper's headline experiment as
// an example program.
//
// A five-server cluster with speeds 1, 3, 5, 7 and 9 serves the
// synthetic Pareto workload under all four load-management systems.
// Simple randomization melts the slow servers; ANU converges to
// consistent latencies without knowing the speeds; prescient (which
// knows everything) sets the bound; virtual processors track prescient
// using a much larger replicated table.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"anurand/internal/anu"
	"anurand/internal/clustersim"
	"anurand/internal/hashx"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

func main() {
	log.SetFlags(0)

	wcfg := workload.DefaultSynthetic()
	wcfg.Duration = 60 * 60 // one hour keeps the example quick
	wcfg.TargetRequests = 20000
	trace, err := wcfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.Stats()
	fmt.Printf("workload: %d requests over %d file sets in %.0f minutes (%.0f%% cluster utilization)\n\n",
		stats.Requests, stats.FileSets, stats.Duration/60, 100*stats.OfferedLoad/25)

	family := hashx.NewFamily(42)
	servers := []policy.ServerID{0, 1, 2, 3, 4}

	placers := make(map[string]policy.Placer)
	if placers["simple"], err = policy.NewSimple(family, trace.FileSets, servers); err != nil {
		log.Fatal(err)
	}
	if placers["anu"], err = policy.NewANU(family, trace.FileSets, servers, anu.DefaultControllerConfig()); err != nil {
		log.Fatal(err)
	}
	if placers["prescient"], err = policy.NewPrescient(trace.FileSets); err != nil {
		log.Fatal(err)
	}
	if placers["vp(25)"], err = policy.NewVirtualProcessor(family, trace.FileSets, 25); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-12s %-10s %-12s\n", "policy", "mean lat(s)", "sd lat(s)", "moved", "state(B)")
	for _, name := range []string{"simple", "anu", "prescient", "vp(25)"} {
		res, err := clustersim.Run(clustersim.DefaultConfig(trace, placers[name]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12.3f %-12.3f %-10d %-12d\n",
			name, res.MeanLatency(), res.LatencyStdDev(), res.TotalMoved, res.SharedStateBytes)
	}

	// Show ANU's per-server consistency: the paper's Figure 6(b) view.
	anuPlacer, err := policy.NewANU(family, trace.FileSets, servers, anu.DefaultControllerConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := clustersim.Run(clustersim.DefaultConfig(trace, anuPlacer))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nANU per-server mean latency (consistency across heterogeneous servers):")
	for _, id := range res.ServerIDs() {
		s := res.Servers[id]
		fmt.Printf("  server %d (speed %g): %8.3f s over %6d requests\n",
			id, s.Speed, s.Latency.Mean(), s.Latency.N())
	}
	fmt.Println("\n(the weakest server is shed early and then sits nearly idle — its mean")
	fmt.Println(" reflects only the requests it served before the system balanced)")
}
