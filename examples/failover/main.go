// Failover: ANU's behaviour under failure, recovery and commissioning.
//
// The example walks the Balancer through the cluster lifecycle of
// Section 4: a server fails (its region collapses, survivors absorb the
// space, only its file sets move), recovers (it gets an equal share
// back), and a brand-new server is commissioned (the unit interval
// repartitions — which moves nothing by itself — and the newcomer takes
// a share). At each step the example measures exactly how many keys
// moved, demonstrating load locality.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"anurand"
)

const keys = 10000

func main() {
	log.SetFlags(0)

	b, err := anurand.New([]anurand.ServerID{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster of %d servers, %d partitions, %d B shared state\n",
		b.K(), b.Partitions(), b.SharedStateSize())

	before := placements(b)
	show(b, "initial")

	// --- failure -----------------------------------------------------
	if err := b.Fail(2); err != nil {
		log.Fatal(err)
	}
	after := placements(b)
	fmt.Printf("\nserver 2 fails:\n")
	fmt.Printf("  keys moved: %d of %d (%.1f%%) — only server 2's keys relocate\n",
		moved(before, after), keys, 100*float64(moved(before, after))/keys)
	fromFailed, others := 0, 0
	for k, owner := range before {
		if after[k] != owner {
			if owner == 2 {
				fromFailed++
			} else {
				others++
			}
		}
	}
	fmt.Printf("  of those, %d were on the failed server; %d elsewhere (boundary growth)\n", fromFailed, others)
	show(b, "after failure")

	// --- recovery ----------------------------------------------------
	before = placements(b)
	if err := b.Recover(2); err != nil {
		log.Fatal(err)
	}
	after = placements(b)
	fmt.Printf("\nserver 2 recovers:\n")
	fmt.Printf("  keys moved: %d (%.1f%%) — survivors scale back to make room\n",
		moved(before, after), 100*float64(moved(before, after))/keys)
	show(b, "after recovery")

	// --- commissioning ------------------------------------------------
	before = placements(b)
	parts := b.Partitions()
	if err := b.AddServer(4); err != nil {
		log.Fatal(err)
	}
	after = placements(b)
	fmt.Printf("\nserver 4 commissioned:\n")
	if b.Partitions() != parts {
		fmt.Printf("  interval repartitioned %d -> %d partitions (repartitioning itself moves nothing)\n",
			parts, b.Partitions())
	}
	fmt.Printf("  keys moved: %d (%.1f%%) — roughly the newcomer's 1/%d share\n",
		moved(before, after), 100*float64(moved(before, after))/keys, b.K())
	show(b, "after commissioning")

	// --- the snapshot other nodes replicate ---------------------------
	snap := b.Snapshot()
	c, err := anurand.Restore(snap, anurand.Options{})
	if err != nil {
		log.Fatal(err)
	}
	disagree := 0
	orig, rest := placements(b), placements(c)
	for k := range orig {
		if orig[k] != rest[k] {
			disagree++
		}
	}
	fmt.Printf("\nreplicated state: %d bytes; restored node disagrees on %d of %d keys\n",
		len(snap), disagree, keys)
}

func placements(b *anurand.Balancer) map[string]anurand.ServerID {
	out := make(map[string]anurand.ServerID, keys)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("fileset/%05d", i)
		if id, ok := b.Lookup(key); ok {
			out[key] = id
		}
	}
	return out
}

func moved(a, b map[string]anurand.ServerID) int {
	n := 0
	for k, owner := range a {
		if b[k] != owner {
			n++
		}
	}
	return n
}

func show(b *anurand.Balancer, label string) {
	fmt.Printf("  shares %-18s", label+":")
	for _, id := range b.Servers() {
		fmt.Printf("  s%d=%5.1f%%", id, 100*b.Shares()[id])
	}
	fmt.Println()
}
