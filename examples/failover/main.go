// Failover: live-migrate a serving cluster to a new placement
// strategy, crash a node inside the cutover window, and finish the
// migration from its journal.
//
// The example runs a five-node delegate cluster on a lossy in-memory
// network, with every node journaling installed placements AND
// migration phase records to disk. While client lookups hammer every
// node, the delegate drives a zero-downtime migration from the
// paper's ANU strategy to the bounded-load chord ring:
//
//	Idle -> Proposed -> DualTag -> Committed
//
// During the dual-tag window each node keeps serving lock-free
// lookups from the old ANU snapshot while the chord placement warms;
// the flip is one atomic snapshot publish fenced by an epoch bump.
// Mid-window, one follower is killed and restarted from its journal:
// the journaled DualTag record (with the warm snapshot) resumes the
// window, and the leader's post-commit retries finish the cutover —
// no lookup ever fails, and no node is left behind on the old
// strategy. Requiring every member to acknowledge the window
// (Quorum = 5) keeps the crash landing inside it deterministically.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"anurand/internal/anu"
	"anurand/internal/cluster"
	"anurand/internal/delegate"
	"anurand/internal/hashx"
	"anurand/internal/journal"
	"anurand/internal/migrate"
	"anurand/internal/placement"
)

func main() {
	log.SetFlags(0)

	ids := []delegate.NodeID{0, 1, 2, 3, 4}
	m, err := anu.New(hashx.NewFamily(42), ids)
	check(err)
	snapshot := m.Encode()
	speeds := map[delegate.NodeID]float64{0: 1, 1: 2, 2: 4, 3: 6, 4: 8}

	cn, err := cluster.NewChaosNetwork(cluster.ChaosConfig{
		Drop:      0.05,
		Duplicate: 0.05,
		MaxDelay:  5 * time.Millisecond,
		Seed:      7,
	})
	check(err)
	defer cn.Close()

	dir, err := os.MkdirTemp("", "anurand-failover")
	check(err)
	defer os.RemoveAll(dir)

	journals := make([]*journal.Journal, len(ids))
	openJournal := func(i int) {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		check(err)
		journals[i] = j
	}
	start := func(i int) *cluster.Runtime {
		rt, err := cluster.Start(cluster.Config{
			ID:                ids[i],
			Members:           ids,
			Snapshot:          snapshot,
			Controller:        anu.DefaultControllerConfig(),
			RoundInterval:     40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond,
			FailAfter:         400 * time.Millisecond,
			WatchdogRounds:    10,
			Quorum:            len(ids), // the dual-tag window closes only when everyone acked
			MigrateTimeout:    20 * time.Second,
			MigrateRetry:      80 * time.Millisecond,
			Observe: func(p placement.Strategy, id delegate.NodeID) (uint64, float64) {
				share := p.Shares()[id]
				return uint64(1 + 1000*share), 0.002 + share/speeds[id]
			},
			Journal: journals[i],
		}, cn.Endpoint(ids[i]))
		check(err)
		return rt
	}

	rts := make([]*cluster.Runtime, len(ids))
	for i := range ids {
		openJournal(i)
		rts[i] = start(i)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
		for _, j := range journals {
			j.Close()
		}
	}()

	fmt.Printf("5 nodes tuning %q over a lossy network, journaling placements and migration phases\n\n", placement.StrategyANU)
	waitUntil("initial convergence", 20*time.Second, func() bool {
		return convergedAll(rts) && rts[2].MapRound() >= 4
	})
	s := rts[0].Stats()
	fmt.Printf("converged on %s at fence (epoch %d, round %d)\n", s.Strategy, s.MapEpoch, s.MapRound)

	// --- client lookups hammer every node for the whole cutover --------
	var lookups, failures atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	keys := []string{"/home/alice", "/home/bob", "/var/mail", "/srv/data"}
	for _, rt := range rts {
		wg.Add(1)
		go func(rt *cluster.Runtime) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(500 * time.Microsecond)
				if _, ok := rt.Lookup(keys[n%len(keys)]); ok {
					lookups.Add(1)
				} else {
					failures.Add(1)
				}
			}
		}(rt)
	}

	// --- the delegate proposes the live cutover -------------------------
	epochBefore := rts[0].MapEpoch()
	migID, err := rts[0].Migrate(placement.StrategyChordBounded)
	check(err)
	fmt.Printf("\ndelegate proposed migration %d: %s -> %s\n", migID, placement.StrategyANU, placement.StrategyChordBounded)

	// --- crash a follower inside the dual-tag window --------------------
	victim := 3
	waitUntil("victim inside the dual-tag window", 20*time.Second, func() bool {
		phase, _ := rts[victim].MigrationPhase()
		return phase == migrate.DualTag
	})
	rts[victim].Stop()
	check(journals[victim].Close())
	fmt.Printf("node %d killed inside the dual-tag window (old strategy still serving everywhere)\n", victim)

	// --- restart it from the journal ------------------------------------
	openJournal(victim)
	if rec, ok := journals[victim].LastMigration(); ok {
		mr, err := migrate.Decode(rec.Map)
		check(err)
		fmt.Printf("reopened journal: migration record %s (id %d, warm snapshot %d bytes)\n",
			mr.Phase, mr.ID, len(mr.Snapshot))
	}
	rts[victim] = start(victim)
	if phase, id := rts[victim].MigrationPhase(); phase == migrate.DualTag {
		fmt.Printf("node %d restarted: resumed migration %d in %s — window reopened from disk\n", victim, id, phase)
	} else {
		fmt.Printf("node %d restarted in %s; the leader's commit retries will catch it up\n", victim, phase)
	}

	// --- the cutover completes everywhere -------------------------------
	waitUntil("cluster-wide cutover", 30*time.Second, func() bool {
		for _, rt := range rts {
			if rt.Strategy() != placement.StrategyChordBounded {
				return false
			}
			if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
				return false
			}
		}
		return true
	})
	fmt.Printf("\nevery node now serves %q; commit bumped the install epoch %d -> %d\n",
		placement.StrategyChordBounded, epochBefore, rts[0].MapEpoch())

	waitUntil("reconvergence on the new strategy", 20*time.Second, func() bool {
		if !convergedAll(rts) {
			return false
		}
		// Let the post-commit gossip settle so the per-node stats below
		// show the cluster at rest: everyone back behind delegate 0 with
		// the migrating bit cleared.
		for _, rt := range rts {
			s := rt.Stats()
			if s.Delegate != 0 || s.DelegateMigrating {
				return false
			}
		}
		return true
	})
	close(stop)
	wg.Wait()
	fmt.Printf("client lookups during the whole cutover: %d served, %d failed\n", lookups.Load(), failures.Load())
	if failures.Load() != 0 {
		log.Fatal("the zero-downtime contract was violated")
	}

	fmt.Printf("\ncluster reconverged; per-node view:\n")
	for _, rt := range rts {
		fmt.Printf("  %s\n", rt.Stats())
	}
}

func convergedAll(rts []*cluster.Runtime) bool {
	fp, mr := rts[0].Fingerprint(), rts[0].MapRound()
	if mr == 0 {
		return false
	}
	for _, rt := range rts[1:] {
		if rt.Fingerprint() != fp || rt.MapRound() != mr {
			return false
		}
	}
	return true
}

func waitUntil(what string, d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
