// Failover: crash a node mid-round and restart it from its journal.
//
// The example runs a five-node delegate cluster on a lossy in-memory
// network, with every node journaling each installed placement (map +
// view epoch + round) to disk. It then kills one node, damages its
// journal tail the way an interrupted write would, and restarts the
// process from the surviving bytes: the node rejoins at the recovered
// (epoch, round) — not at the bootstrap snapshot — and a replayed map
// from a superseded epoch bounces off its install fence instead of
// rolling the placement back. This is the durability story behind the
// paper's recovery argument: half-occupancy guarantees a free partition
// for a recovering server, and the journal guarantees the server comes
// back knowing which placement it had agreed to.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"anurand/internal/anu"
	"anurand/internal/cluster"
	"anurand/internal/delegate"
	"anurand/internal/hashx"
	"anurand/internal/journal"
	"anurand/internal/placement"
)

func main() {
	log.SetFlags(0)

	ids := []delegate.NodeID{0, 1, 2, 3, 4}
	m, err := anu.New(hashx.NewFamily(42), ids)
	check(err)
	snapshot := m.Encode()
	speeds := map[delegate.NodeID]float64{0: 1, 1: 2, 2: 4, 3: 6, 4: 8}

	cn, err := cluster.NewChaosNetwork(cluster.ChaosConfig{
		Drop:      0.10,
		Duplicate: 0.05,
		MaxDelay:  10 * time.Millisecond,
		Seed:      7,
	})
	check(err)
	defer cn.Close()

	dir, err := os.MkdirTemp("", "anurand-failover")
	check(err)
	defer os.RemoveAll(dir)

	journals := make([]*journal.Journal, len(ids))
	openJournal := func(i int) {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		check(err)
		journals[i] = j
	}
	start := func(i int) *cluster.Runtime {
		rt, err := cluster.Start(cluster.Config{
			ID:                ids[i],
			Members:           ids,
			Snapshot:          snapshot,
			Controller:        anu.DefaultControllerConfig(),
			RoundInterval:     40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond,
			FailAfter:         120 * time.Millisecond,
			Observe: func(p placement.Strategy, id delegate.NodeID) (uint64, float64) {
				share := p.Shares()[id]
				return uint64(1 + 1000*share), 0.002 + share/speeds[id]
			},
			Journal: journals[i],
		}, cn.Endpoint(ids[i]))
		check(err)
		return rt
	}

	rts := make([]*cluster.Runtime, len(ids))
	for i := range ids {
		openJournal(i)
		rts[i] = start(i)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
		for _, j := range journals {
			j.Close()
		}
	}()

	fmt.Printf("5 nodes tuning over a lossy network, journaling every installed placement\n\n")
	waitUntil("initial convergence", 20*time.Second, func() bool {
		return convergedAll(rts) && rts[2].MapRound() >= 4
	})
	s := rts[2].Stats()
	fmt.Printf("converged: node 2 installed map fence (epoch %d, round %d), journal holds %d appends\n",
		s.MapEpoch, s.MapRound, s.Journal.Appends)

	// --- crash node 2 mid-round, tearing its last journal write -------
	victim := 2
	rts[victim].Stop()
	durable, _ := journals[victim].Last()
	chaosJ := journal.NewChaos(journals[victim], 99)
	if kind, ok, err := chaosJ.InjectTailFault(); err != nil {
		log.Fatal(err)
	} else if ok {
		fmt.Printf("\nnode 2 killed mid-round; injected a %v into its journal tail\n", kind)
	}
	check(journals[victim].Close())

	// --- restart from the damaged journal ------------------------------
	openJournal(victim)
	rec, ok := journals[victim].Last()
	if !ok {
		log.Fatal("journal recovered no record")
	}
	js := journals[victim].Stats()
	fmt.Printf("reopened journal: recovered %d record(s), truncated %d torn tail(s)\n",
		js.RecordsRecovered, js.TornTailsTruncated)
	fmt.Printf("recovered fence (epoch %d, round %d) — durable state at the kill was (epoch %d, round %d)\n",
		rec.Epoch, rec.Round, durable.Epoch, durable.Round)

	rts[victim] = start(victim)
	rs := rts[victim].Stats()
	fmt.Printf("node 2 restarted: resumes at (epoch %d, round %d), not the bootstrap snapshot\n",
		rs.RecoveredEpoch, rs.RecoveredRound)

	// --- a superseded delegate replays an old map -----------------------
	// The restarted node's fence rejects it even though its round number
	// raced far ahead while the stale delegate was partitioned.
	if rec.Epoch > 0 {
		inj := cn.Endpoint(99)
		check(inj.Send(delegate.Message{
			Kind:    delegate.MsgMap,
			From:    4,
			To:      ids[victim],
			Epoch:   rec.Epoch - 1,
			Round:   rec.Round + 1000,
			Payload: snapshot,
		}))
		waitUntil("stale-epoch rejection", 10*time.Second, func() bool {
			return rts[victim].Stats().StaleEpochsRejected > 0
		})
		fmt.Printf("replayed map from epoch %d round %d: rejected by the fence, placement untouched\n",
			rec.Epoch-1, rec.Round+1000)
	}

	// --- reconvergence ---------------------------------------------------
	waitUntil("reconvergence", 20*time.Second, func() bool {
		return convergedAll(rts) && rts[victim].MapRound() > rec.Round
	})
	fmt.Printf("\ncluster reconverged; per-node view:\n")
	for _, rt := range rts {
		fmt.Printf("  %s\n", rt.Stats())
	}
	if err := rts[victim].Map().CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged map passes CheckInvariants (incl. half-occupancy for recovery headroom)\n")
}

func convergedAll(rts []*cluster.Runtime) bool {
	fp, mr := rts[0].Fingerprint(), rts[0].MapRound()
	if mr == 0 {
		return false
	}
	for _, rt := range rts[1:] {
		if rt.Fingerprint() != fp || rt.MapRound() != mr {
			return false
		}
	}
	return true
}

func waitUntil(what string, d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
