// Quickstart: embed the ANU balancer in an application.
//
// Three servers of very different capability serve a keyed workload.
// The balancer starts with equal shares (it knows nothing about the
// servers), observes per-interval latencies, and converges to shares
// proportional to capacity — the paper's core behaviour, in ~60 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anurand"
)

func main() {
	log.SetFlags(0)

	// A slow, a medium and a fast server.
	speeds := map[anurand.ServerID]float64{0: 1, 1: 4, 2: 8}
	b, err := anurand.New([]anurand.ServerID{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial shares (no knowledge of capacity):")
	printShares(b)

	// Simulate tuning intervals: each server's observed latency grows
	// with the load it holds and shrinks with its speed.
	for round := 1; round <= 40; round++ {
		shares := b.Shares()
		var reports []anurand.Report
		for id, speed := range speeds {
			load := shares[id] // fraction of the keyed workload
			reports = append(reports, anurand.Report{
				Server:         id,
				Requests:       uint64(1 + 1000*load),
				LatencySeconds: 0.002 + load/speed,
			})
		}
		if _, err := b.Tune(reports); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nafter 40 tuning rounds (shares follow capacity):")
	printShares(b)

	// Route some keys; placement is a pure hash computation.
	fmt.Println("\nplacements:")
	for _, key := range []string{"/home/alice", "/var/log", "/data/warehouse", "/tmp/scratch"} {
		owner, probes, ok := b.LookupProbes(key)
		if !ok {
			log.Fatal("no live servers")
		}
		fmt.Printf("  %-16s -> server %d (%d probe(s))\n", key, owner, probes)
	}

	// The replicated state is tiny: this is everything another node
	// needs to route identically.
	fmt.Printf("\nshared state: %d bytes for %d servers\n", b.SharedStateSize(), b.K())

	// The unit interval itself (Figure 2 of the paper): digits are
	// server regions, dots are unmapped space that re-hashes onward.
	fmt.Println("\nunit interval:")
	fmt.Print(b.Render(72))
}

func printShares(b *anurand.Balancer) {
	for _, id := range b.Servers() {
		fmt.Printf("  server %d: %5.1f%%\n", id, 100*b.Shares()[id])
	}
}
