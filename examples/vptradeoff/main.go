// VP trade-off: the shared-state economics of Figure 8 as an example.
//
// The virtual-processor system divides load into N*v chunks; finer
// chunks balance better but every node must replicate the whole
// VP-to-server table. ANU replicates only the O(k) region table. This
// example sweeps the VP count on a short synthetic run and prints the
// latency each configuration buys per byte of replicated state, with
// ANU and prescient as references.
//
// Run with: go run ./examples/vptradeoff
package main

import (
	"fmt"
	"log"

	"anurand/internal/anu"
	"anurand/internal/clustersim"
	"anurand/internal/hashx"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

func main() {
	log.SetFlags(0)

	wcfg := workload.DefaultSynthetic()
	wcfg.Duration = 45 * 60
	wcfg.TargetRequests = 15000
	wcfg.BaseDemand = 3.6 // run hot so coarse granularity visibly hurts
	trace, err := wcfg.Generate()
	if err != nil {
		log.Fatal(err)
	}

	family := hashx.NewFamily(42)
	servers := []policy.ServerID{0, 1, 2, 3, 4}

	fmt.Printf("%-12s %-14s %-16s\n", "system", "mean lat (s)", "shared state (B)")
	for _, numVP := range []int{5, 10, 20, 30, 40, 50} {
		placer, err := policy.NewVirtualProcessor(family, trace.FileSets, numVP)
		if err != nil {
			log.Fatal(err)
		}
		res, err := clustersim.Run(clustersim.DefaultConfig(trace, placer))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-14.3f %-16d\n", fmt.Sprintf("vp(%d)", numVP), res.MeanLatency(), res.SharedStateBytes)
	}

	anuPlacer, err := policy.NewANU(family, trace.FileSets, servers, anu.DefaultControllerConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := clustersim.Run(clustersim.DefaultConfig(trace, anuPlacer))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-14.3f %-16d\n", "anu", res.MeanLatency(), res.SharedStateBytes)

	prescient, err := policy.NewPrescient(trace.FileSets)
	if err != nil {
		log.Fatal(err)
	}
	res, err = clustersim.Run(clustersim.DefaultConfig(trace, prescient))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-14.3f %-16d\n", "prescient", res.MeanLatency(), res.SharedStateBytes)

	fmt.Println("\nANU's region table stays O(servers) however finely load divides;")
	fmt.Println("the VP table grows with the VP count needed to match it.")
}
