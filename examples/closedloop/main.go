// Closed-loop clients: the throughput view of metadata balance.
//
// The paper's Section 3 argues that clients blocked on metadata leave
// the rest of the system idle. With a fixed population of clients that
// each think, fetch metadata, transfer data and repeat, that claim
// becomes structural: a client stuck in a slow metadata queue offers no
// load at all, so the whole cluster's throughput — not just its
// latency — depends on metadata placement. This example measures
// cycles/second for simple randomization versus ANU on the paper's
// 1/3/5/7/9 cluster, with the shared-disk data path enabled.
//
// Run with: go run ./examples/closedloop
package main

import (
	"fmt"
	"log"

	"anurand/internal/anu"
	"anurand/internal/clustersim"
	"anurand/internal/hashx"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

func main() {
	log.SetFlags(0)

	fileSets := make([]workload.FileSet, 30)
	for i := range fileSets {
		fileSets[i] = workload.FileSet{
			Name:   fmt.Sprintf("fs/app/%02d", i),
			Weight: float64(i%6) + 1, // skewed popularity
		}
	}
	servers := []policy.ServerID{0, 1, 2, 3, 4}
	family := hashx.NewFamily(42)

	run := func(name string, placer policy.Placer) *clustersim.ClosedResult {
		res, err := clustersim.RunClosed(clustersim.ClosedConfig{
			Seed:           7,
			Speeds:         []float64{1, 3, 5, 7, 9},
			Policy:         placer,
			FileSets:       fileSets,
			Clients:        120,
			ThinkTime:      1.0,
			MetadataDemand: 0.15,
			SAN:            clustersim.SANConfig{Enabled: true, Disks: 12, TransferDemand: 0.4},
			TuneInterval:   120,
			Duration:       2 * 3600,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %8.1f cycles/s  metadata %7.3fs  cycle %7.3fs  SAN util %.3f\n",
			name, res.Throughput, res.MetadataLatency.Mean(), res.CycleLatency.Mean(), res.SANUtilization)
		return res
	}

	fmt.Println("120 closed-loop clients, 1s think time, two hours:")
	simple, err := policy.NewSimple(family, fileSets, servers)
	if err != nil {
		log.Fatal(err)
	}
	sRes := run("simple", simple)

	anuPlacer, err := policy.NewANU(family, fileSets, servers, anu.DefaultControllerConfig())
	if err != nil {
		log.Fatal(err)
	}
	aRes := run("anu", anuPlacer)

	fmt.Printf("\nANU delivers %.1fx the cluster throughput of simple randomization:\n",
		aRes.Throughput/sRes.Throughput)
	fmt.Println("clients stuck behind the weakest metadata server stop offering load,")
	fmt.Println("so metadata imbalance throttles the entire system, SAN included.")
}
