// Command paperfigs regenerates every results figure of the paper
// (Figures 4-8) as text tables and ASCII charts, or CSV for plotting.
//
// Usage:
//
//	paperfigs              # all figures
//	paperfigs -fig 5       # one figure
//	paperfigs -fig 8 -csv  # machine-readable output
//	paperfigs -quick       # scaled-down workloads (~seconds)
//	paperfigs -scaling     # parallel-runner speedup curve -> BENCH_scaling.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"anurand/internal/benchfmt"
	"anurand/internal/clustersim"
	"anurand/internal/experiment"
	"anurand/internal/policy"
	"anurand/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4 | 5 | 6a | 6b | 7 | 8 | hotspot | san | strategies | all")
		seed    = flag.Uint64("seed", 1, "workload seed")
		quick   = flag.Bool("quick", false, "scaled-down workloads for a fast pass")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables and charts")
		rep     = flag.Int("replicate", 0, "run the Figure 5 comparison across this many seeds and print across-seed aggregates")
		workers = flag.Int("workers", 0, "simulation cells run concurrently (0 = one per CPU, 1 = sequential; results are identical)")

		scaling    = flag.Bool("scaling", false, "measure the parallel runner's scaling curve: time the Figure 5 suite at workers=1,2,4,... and record a speedup benchmark")
		scalingMax = flag.Int("scaling-max", 0, "highest worker count for -scaling (0 = GOMAXPROCS)")
		scalingOut = flag.String("scaling-out", "BENCH_scaling.json", `path for the -scaling benchmark record ("-" = stdout)`)
	)
	flag.Parse()

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	cfg.Quick = *quick
	cfg.Workers = *workers
	suite := experiment.NewSuite(cfg)

	if *scaling {
		if err := runScaling(os.Stdout, cfg, *scalingMax, *scalingOut, *csv); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *rep > 0 {
		if err := replicate(os.Stdout, cfg, *rep, *csv); err != nil {
			log.Fatal(err)
		}
		return
	}

	figs := map[string]func(io.Writer, *experiment.Suite, bool) error{
		"4":          fig4,
		"5":          fig5,
		"6a":         fig6a,
		"6b":         fig6b,
		"7":          fig7,
		"8":          fig8,
		"hotspot":    extHotspot,
		"san":        extSAN,
		"strategies": strategiesFig,
	}
	if *fig == "all" {
		for _, name := range []string{"4", "5", "6a", "6b", "7", "8", "hotspot", "san", "strategies"} {
			if err := figs[name](os.Stdout, suite, *csv); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := figs[*fig]
	if !ok {
		log.Fatalf("unknown figure %q (want 4, 5, 6a, 6b, 7, 8, hotspot, san, strategies or all)", *fig)
	}
	if err := run(os.Stdout, suite, *csv); err != nil {
		log.Fatal(err)
	}
}

// latencySeries renders one latency-over-time figure (4 or 5).
func latencySeries(w io.Writer, title string, results map[experiment.PolicyName]*clustersim.Result, csv bool) error {
	fmt.Fprintf(w, "== %s ==\n", title)
	var sample *clustersim.Result
	for _, r := range results {
		sample = r
	}
	windows := int(sample.Duration/120) + 1

	for _, name := range experiment.AllPolicies {
		res := results[name]
		tb := report.NewTable(header(res)...)
		chart := report.Chart{
			Title:  fmt.Sprintf("%s: per-server mean latency (s) over time", name),
			XLabel: "minutes",
			XStep:  2,
			LogY:   true,
			Height: 12,
		}
		ids := res.ServerIDs()
		for _, id := range ids {
			chart.Series = append(chart.Series, report.Series{
				Name:   fmt.Sprintf("srv%d(x%g)", id, res.Servers[id].Speed),
				Values: res.Servers[id].Series.Means(windows),
			})
		}
		for w := 0; w < windows; w++ {
			row := []any{w * 2}
			for i := range ids {
				row = append(row, chart.Series[i].Values[w])
			}
			tb.AddRowf(row...)
		}
		if csv {
			fmt.Fprintf(w, "# policy=%s\n", name)
			if err := tb.WriteCSV(w); err != nil {
				return err
			}
			continue
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "  aggregate: mean=%.3fs sd=%.3fs moved=%d state=%dB\n\n",
			res.MeanLatency(), res.LatencyStdDev(), res.TotalMoved, res.SharedStateBytes)
	}
	return nil
}

func header(res *clustersim.Result) []string {
	h := []string{"minute"}
	for _, id := range res.ServerIDs() {
		h = append(h, fmt.Sprintf("srv%d", id))
	}
	return h
}

func fig4(w io.Writer, s *experiment.Suite, csv bool) error {
	results, err := s.Fig4()
	if err != nil {
		return err
	}
	return latencySeries(w, "Figure 4: server latency, DFSTrace-like workload", results, csv)
}

func fig5(w io.Writer, s *experiment.Suite, csv bool) error {
	results, err := s.Fig5()
	if err != nil {
		return err
	}
	return latencySeries(w, "Figure 5: server latency, synthetic workload", results, csv)
}

func fig6a(w io.Writer, s *experiment.Suite, csv bool) error {
	rows, err := s.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 6(a): aggregate latency — mean, deviation, and tails ==")
	tb := report.NewTable("policy", "mean latency (s)", "stddev (s)", "p50 (s)", "p95 (s)", "p99 (s)", "p999 (s)")
	for _, row := range rows {
		tb.AddRowf(string(row.Policy), row.MeanLatency, row.StdDev, row.P50, row.P95, row.P99, row.P999)
	}
	if csv {
		return tb.WriteCSV(w)
	}
	return tb.Render(w)
}

func fig6b(w io.Writer, s *experiment.Suite, csv bool) error {
	rows, err := s.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 6(b): per-server mean latency (consistency) ==")
	tb := report.NewTable("policy", "server", "speed", "requests", "mean latency (s)")
	speeds := experiment.Speeds()
	for _, row := range rows {
		ids := make([]policy.ServerID, 0, len(row.PerServerMean))
		for id := range row.PerServerMean {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			tb.AddRowf(string(row.Policy), int(id), speeds[id],
				int(row.PerServerCount[id]), row.PerServerMean[id])
		}
	}
	if csv {
		return tb.WriteCSV(w)
	}
	return tb.Render(w)
}

func fig7(w io.Writer, s *experiment.Suite, csv bool) error {
	moves, err := s.Fig7()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 7: ANU load movement per tuning round ==")
	tb := report.NewTable("round", "fileSetsMoved", "workMoved%", "cumFileSets", "cumWork%")
	var cum int
	var cumWork float64
	movedSeries := make([]float64, 0, len(moves))
	cumSeries := make([]float64, 0, len(moves))
	for _, m := range moves {
		cum += m.FileSetsMoved
		cumWork += 100 * m.WorkMovedFrac
		tb.AddRowf(m.Round, m.FileSetsMoved, 100*m.WorkMovedFrac, cum, cumWork)
		movedSeries = append(movedSeries, float64(m.FileSetsMoved))
		cumSeries = append(cumSeries, cumWork)
	}
	if csv {
		return tb.WriteCSV(w)
	}
	chart := report.Chart{
		Title:  "file sets moved per round (*) and cumulative work moved % (o)",
		XLabel: "round",
		XStart: 1,
		XStep:  1,
		Height: 10,
		Series: []report.Series{
			{Name: "moved/round", Values: movedSeries},
			{Name: "cum work %", Values: cumSeries},
		},
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "  total file-set moves: %d over %d rounds\n", cum, len(moves))
	return tb.Render(w)
}

func fig8(w io.Writer, s *experiment.Suite, csv bool) error {
	res, err := s.Fig8(nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 8: virtual processor count vs latency and shared state ==")
	if err := fig8Sweep(w, "moderate utilization (~71%, the Figure 5 workload)", res.Moderate, res.ModerateRefs, csv); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return fig8Sweep(w, "hot utilization (~80%, granularity effect resolves)", res.Hot, res.HotRefs, csv)
}

func fig8Sweep(w io.Writer, label string, points []experiment.Fig8Point, refs experiment.Fig8Refs, csv bool) error {
	fmt.Fprintf(w, "-- %s --\n", label)
	tb := report.NewTable("numVP", "mean latency (s)", "steady (s)", "stddev (s)", "shared state (B)")
	var lats []float64
	for _, pt := range points {
		tb.AddRowf(pt.NumVP, pt.MeanLatency, pt.SteadyLatency, pt.StdDev, pt.SharedStateBytes)
		lats = append(lats, pt.SteadyLatency)
	}
	if csv {
		if err := tb.WriteCSV(w); err != nil {
			return err
		}
	} else {
		chart := report.Chart{
			Title:  "VP steady latency vs VP count (references: anu, prescient)",
			XLabel: "numVP",
			XStart: float64(points[0].NumVP),
			XStep:  float64(points[1].NumVP - points[0].NumVP),
			Height: 10,
			Series: []report.Series{
				{Name: "vp", Values: lats},
				{Name: "anu ref", Values: constSeries(refs.ANUSteady, len(lats))},
				{Name: "prescient ref", Values: constSeries(refs.PrescientSteady, len(lats))},
			},
		}
		if err := chart.Render(w); err != nil {
			return err
		}
		if err := tb.Render(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "references: anu mean=%.3fs steady=%.3fs state=%dB; prescient mean=%.3fs steady=%.3fs state=%dB\n",
		refs.ANULatency, refs.ANUSteady, refs.ANUSharedState,
		refs.PrescientLatency, refs.PrescientSteady, refs.PrescientState)
	if refs.ANUCrossoverAt >= 0 {
		fmt.Fprintf(w, "VP matches ANU steady latency from %d virtual processors upward\n", refs.ANUCrossoverAt)
	}
	return nil
}

// extHotspot renders the extension experiment: the four systems under
// the rotating-hotspot workload.
func extHotspot(w io.Writer, s *experiment.Suite, csv bool) error {
	results, err := s.ExtHotspot()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Extension: rotating hotspot workload (hot file sets shift every 25 min) ==")
	tb := report.NewTable("policy", "mean latency (s)", "steady (s)", "stddev (s)", "p99 (s)", "moved")
	for _, name := range experiment.AllPolicies {
		res := results[name]
		tb.AddRowf(string(name), res.MeanLatency(), res.SteadyMeanLatency(), res.LatencyStdDev(), res.LatencyP99(), res.TotalMoved)
	}
	if csv {
		return tb.WriteCSV(w)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "(prescient and vp assign from long-run average loads — the paper's")
	fmt.Fprintln(w, " perfect-knowledge model — which a rotating hot set defeats; ANU's")
	fmt.Fprintln(w, " latency feedback follows the shifts)")
	return nil
}

// extSAN renders the shared-disk data-path extension: SAN utilization
// and client end-to-end latency per system.
func extSAN(w io.Writer, s *experiment.Suite, csv bool) error {
	results, err := s.ExtSAN()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Extension: SAN data path (Section 3 motivation) ==")
	tb := report.NewTable("policy", "metadata mean (s)", "end-to-end mean (s)", "SAN utilization")
	for _, name := range experiment.AllPolicies {
		res := results[name]
		tb.AddRowf(string(name), res.MeanLatency(), res.SAN.EndToEnd.Mean(), res.SAN.UtilizationInWindow)
	}
	if csv {
		return tb.WriteCSV(w)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "(clients blocked on an imbalanced metadata tier defer their data")
	fmt.Fprintln(w, " transfers, leaving the SAN underutilized within the trace window)")
	return nil
}

// strategiesFig renders the registry-driven comparison: the paper's
// four systems plus every additionally registered placement strategy
// under the synthetic workload, one row per scheme.
func strategiesFig(w io.Writer, s *experiment.Suite, csv bool) error {
	results, err := s.StrategyComparison()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Strategy comparison: all registered schemes, synthetic workload ==")
	tb := report.NewTable("policy", "mean latency (s)", "steady (s)", "p50 (s)", "p99 (s)", "p999 (s)", "moved", "state (B)")
	for _, name := range experiment.Policies() {
		res, ok := results[name]
		if !ok {
			continue
		}
		tb.AddRowf(string(name), res.MeanLatency(), res.SteadyMeanLatency(),
			res.LatencyP50(), res.LatencyP99(), res.LatencyP999(), res.TotalMoved, res.SharedStateBytes)
	}
	if csv {
		return tb.WriteCSV(w)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "(rows beyond the canonical four come straight from the placement")
	fmt.Fprintln(w, " registry; register a strategy and it appears here automatically)")
	return nil
}

func constSeries(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// scalingCounts returns the worker counts for the scaling sweep:
// 1, 2, 4, ... doubling up to max, always ending at max itself.
func scalingCounts(max int) []int {
	counts := []int{}
	for n := 1; n < max; n *= 2 {
		counts = append(counts, n)
	}
	return append(counts, max)
}

// runScaling times the Figure 5 suite (the canonical four-policy
// synthetic comparison) at increasing worker counts and records the
// speedup curve as a benchfmt file, so the parallel runner's scaling
// is tracked by the same gate/diff machinery as the microbenchmarks.
// Each worker count gets a fresh Suite: the figure cache must not let
// run 1 pay for the cells and run N reuse them.
func runScaling(w io.Writer, cfg experiment.Config, max int, outPath string, csv bool) error {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	counts := scalingCounts(max)

	fmt.Fprintf(w, "== Parallel-runner scaling: Figure 5 suite, workers 1..%d ==\n", max)
	file := &benchfmt.File{Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	tb := report.NewTable("workers", "time (s)", "speedup", "efficiency")
	var base float64
	for _, n := range counts {
		c := cfg
		c.Workers = n
		s := experiment.NewSuite(c)
		start := time.Now()
		if _, err := s.Fig5(); err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		if base == 0 {
			base = elapsed
		}
		speedup := base / elapsed
		name := fmt.Sprintf("BenchmarkPaperfigsFig5/workers=%d", n)
		file.Benchmarks = append(file.Benchmarks, benchfmt.Benchmark{
			Pkg:  "anurand/cmd/paperfigs",
			Name: name,
			N:    1,
			Metrics: map[string]float64{
				"ns/op":   elapsed * 1e9,
				"speedup": speedup,
			},
		})
		file.Raw = append(file.Raw, fmt.Sprintf("%s 1 %d ns/op %.4f speedup",
			name, int64(elapsed*1e9), speedup))
		tb.AddRowf(n, elapsed, speedup, speedup/float64(n))
	}
	if err := benchfmt.WriteFile(file, outPath); err != nil {
		return err
	}
	if csv {
		if err := tb.WriteCSV(w); err != nil {
			return err
		}
	} else if err := tb.Render(w); err != nil {
		return err
	}
	if outPath != "" && outPath != "-" {
		fmt.Fprintf(w, "recorded %s\n", outPath)
	}
	return nil
}

// replicate renders the across-seed Figure 5 aggregates.
func replicate(w io.Writer, cfg experiment.Config, n int, csv bool) error {
	rows, err := experiment.ReplicateFig5(cfg, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Figure 5 across %d seeds (mean over seeds, with across-seed sd) ==\n", n)
	tb := report.NewTable("policy", "mean lat (s)", "sd over seeds", "steady (s)", "moves/run")
	for _, row := range rows {
		tb.AddRowf(string(row.Policy),
			row.MeanLatency.Mean(), row.MeanLatency.StdDev(),
			row.SteadyLatency.Mean(), row.Moved.Mean())
	}
	if csv {
		return tb.WriteCSV(w)
	}
	return tb.Render(w)
}
