package main

import (
	"bytes"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"anurand/internal/benchfmt"
	"anurand/internal/experiment"
)

func quickSuite() *experiment.Suite {
	cfg := experiment.DefaultConfig()
	cfg.Quick = true
	return experiment.NewSuite(cfg)
}

func TestEveryFigureRenders(t *testing.T) {
	suite := quickSuite()
	figs := map[string]func(io.Writer, *experiment.Suite, bool) error{
		"4": fig4, "5": fig5, "6a": fig6a, "6b": fig6b,
		"7": fig7, "8": fig8, "hotspot": extHotspot, "san": extSAN,
	}
	wants := map[string]string{
		"4":       "Figure 4",
		"5":       "Figure 5",
		"6a":      "Figure 6(a)",
		"6b":      "Figure 6(b)",
		"7":       "Figure 7",
		"8":       "Figure 8",
		"hotspot": "hotspot",
		"san":     "SAN",
	}
	for name, render := range figs {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := render(&buf, suite, false); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, wants[name]) {
				t.Fatalf("output missing %q:\n%s", wants[name], out)
			}
			if len(out) < 100 {
				t.Fatalf("implausibly short output:\n%s", out)
			}
		})
	}
}

func TestEveryFigureRendersCSV(t *testing.T) {
	suite := quickSuite()
	figs := map[string]func(io.Writer, *experiment.Suite, bool) error{
		"5": fig5, "6a": fig6a, "6b": fig6b, "7": fig7, "8": fig8,
		"hotspot": extHotspot, "san": extSAN,
	}
	for name, render := range figs {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := render(&buf, suite, true); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), ",") {
				t.Fatalf("CSV output has no commas:\n%s", buf.String())
			}
		})
	}
}

func TestReplicateRenders(t *testing.T) {
	cfg := experiment.DefaultConfig()
	cfg.Quick = true
	var buf bytes.Buffer
	if err := replicate(&buf, cfg, 2, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"across 2 seeds", "simple", "anu", "prescient", "vp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replicate output missing %q:\n%s", want, out)
		}
	}
}

func TestScalingCounts(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		2: {1, 2},
		4: {1, 2, 4},
		6: {1, 2, 4, 6},
		8: {1, 2, 4, 8},
	}
	for max, want := range cases {
		if got := scalingCounts(max); !reflect.DeepEqual(got, want) {
			t.Errorf("scalingCounts(%d) = %v, want %v", max, got, want)
		}
	}
}

func TestScalingRecordsSpeedupCurve(t *testing.T) {
	cfg := experiment.DefaultConfig()
	cfg.Quick = true
	out := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	var buf bytes.Buffer
	if err := runScaling(&buf, cfg, 2, out, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workers") {
		t.Fatalf("scaling output missing table:\n%s", buf.String())
	}

	f, err := benchfmt.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("recorded %d benchmarks, want 2:\n%+v", len(f.Benchmarks), f.Benchmarks)
	}
	for i, b := range f.Benchmarks {
		if b.Metrics["ns/op"] <= 0 {
			t.Errorf("benchmark %d (%s): non-positive ns/op %v", i, b.Name, b.Metrics["ns/op"])
		}
		if b.Metrics["speedup"] <= 0 {
			t.Errorf("benchmark %d (%s): non-positive speedup %v", i, b.Name, b.Metrics["speedup"])
		}
	}
	if sp := f.Benchmarks[0].Metrics["speedup"]; sp != 1 {
		t.Errorf("workers=1 speedup = %v, want exactly 1 (it is the baseline)", sp)
	}
	// The raw lines round-trip through the go test -bench parser, so
	// benchstat and the gate can consume a scaling record.
	parsed, err := benchfmt.Parse(strings.NewReader(strings.Join(f.Raw, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Benchmarks) != 2 {
		t.Fatalf("raw lines parsed to %d benchmarks, want 2", len(parsed.Benchmarks))
	}
}

func TestFigureSeriesHaveExpectedWindowCount(t *testing.T) {
	suite := quickSuite()
	var buf bytes.Buffer
	if err := fig5(&buf, suite, true); err != nil {
		t.Fatal(err)
	}
	// Quick mode: 40 minutes -> 21 window rows per policy (minute 0..40
	// step 2) plus a header line each, 4 policies.
	lines := strings.Count(buf.String(), "\n")
	if lines < 4*21 {
		t.Fatalf("CSV too short: %d lines", lines)
	}
}
