package main

import (
	"testing"

	"anurand/internal/clustersim"
)

func TestParseSpeeds(t *testing.T) {
	got, err := parseSpeeds("1, 3,5 ,7,9")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseSpeeds("1,banana"); err == nil {
		t.Fatal("bad speed accepted")
	}
}

func TestParseEvents(t *testing.T) {
	evs, err := parseEvents("fail:600:2, recover:1200:2,commission:900:5:6.5,decommission:1500:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != clustersim.Fail || evs[0].Time != 600 || evs[0].Server != 2 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[2].Kind != clustersim.Commission || evs[2].Speed != 6.5 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	if evs[3].Kind != clustersim.Decommission {
		t.Fatalf("event 3 = %+v", evs[3])
	}
}

func TestParseEventsErrors(t *testing.T) {
	cases := []string{
		"explode:1:2",     // unknown kind
		"fail:abc:2",      // bad time
		"fail:1:xyz",      // bad server
		"commission:1:2",  // missing speed
		"fail:1",          // too few fields
		"commission:1:2:", // empty speed
	}
	for _, c := range cases {
		if _, err := parseEvents(c); err == nil {
			t.Errorf("parseEvents(%q) accepted", c)
		}
	}
	if evs, err := parseEvents(""); err != nil || evs != nil {
		t.Errorf("empty spec: %v, %v", evs, err)
	}
}

func TestLoadTraceGenerators(t *testing.T) {
	for _, wl := range []string{"synthetic", "dfslike", "hotspot"} {
		tr, err := loadTrace(wl, "", 1, 0.5)
		if err != nil {
			t.Fatalf("loadTrace(%s): %v", wl, err)
		}
		if len(tr.Requests) == 0 {
			t.Fatalf("loadTrace(%s): empty trace", wl)
		}
		if tr.Requests[0].Demand != 0.5 {
			t.Fatalf("loadTrace(%s): demand override not applied", wl)
		}
	}
	if _, err := loadTrace("bogus", "", 1, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := loadTrace("synthetic", "/nonexistent/file", 1, 0); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestBuildPolicyNames(t *testing.T) {
	tr, err := loadTrace("synthetic", "", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	speeds := []float64{1, 3, 5, 7, 9}
	for _, name := range []string{"simple", "anu", "prescient", "vp"} {
		p, err := buildPolicy(name, tr, speeds, 10)
		if err != nil {
			t.Fatalf("buildPolicy(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports %q", name, p.Name())
		}
	}
	if _, err := buildPolicy("bogus", tr, speeds, 10); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
