// Command anusim runs one cluster simulation from the command line and
// prints a summary: aggregate and per-server latency, movement, and
// shared-state size.
//
// Usage:
//
//	anusim -policy anu -workload synthetic
//	anusim -policy vp -numvp 30 -workload dfslike
//	anusim -policy prescient -trace /path/to/trace.anut -series
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"anurand/internal/anu"
	"anurand/internal/clustersim"
	"anurand/internal/hashx"
	"anurand/internal/placement"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anusim: ")

	var (
		policyName = flag.String("policy", "anu", "policy: simple | anu | prescient | vp | any registered placement strategy (e.g. chord, chord-bounded)")
		wl         = flag.String("workload", "synthetic", "workload: synthetic | dfslike | hotspot")
		tracePath  = flag.String("trace", "", "replay a trace file instead of generating a workload")
		seed       = flag.Uint64("seed", 1, "workload generator seed")
		numVP      = flag.Int("numvp", 25, "virtual processor count for -policy vp")
		speeds     = flag.String("speeds", "1,3,5,7,9", "comma-separated server speeds")
		interval   = flag.Float64("interval", 120, "tuning interval in seconds")
		demand     = flag.Float64("demand", 0, "override per-request base demand (unit-speed seconds)")
		series     = flag.Bool("series", false, "print per-server latency time series")
		moves      = flag.Bool("moves", false, "print per-round movement records")
		events     = flag.String("events", "", "configuration events, e.g. \"fail:600:2,recover:1200:2,commission:900:5:6\" (kind:time:server[:speed])")
		sanDisks   = flag.Int("san", 0, "enable the shared-disk data path with this many disks")
		sanDemand  = flag.Float64("sandemand", 1.5, "per-request data-transfer demand in disk-seconds (with -san)")
		closed     = flag.Int("closed", 0, "run closed-loop with this many clients instead of replaying the trace")
		thinkTime  = flag.Float64("think", 2.0, "mean client think time in seconds (with -closed)")
	)
	flag.Parse()

	trace, err := loadTrace(*wl, *tracePath, *seed, *demand)
	if err != nil {
		log.Fatal(err)
	}
	speedList, err := parseSpeeds(*speeds)
	if err != nil {
		log.Fatal(err)
	}
	placer, err := buildPolicy(*policyName, trace, speedList, *numVP)
	if err != nil {
		log.Fatal(err)
	}

	if *closed > 0 {
		ccfg := clustersim.ClosedConfig{
			Seed:           *seed,
			Speeds:         speedList,
			Policy:         placer,
			FileSets:       trace.FileSets,
			Clients:        *closed,
			ThinkTime:      *thinkTime,
			MetadataDemand: trace.Requests[0].Demand,
			TuneInterval:   *interval,
			Duration:       trace.Duration,
		}
		if *sanDisks > 0 {
			ccfg.SAN = clustersim.SANConfig{Enabled: true, Disks: *sanDisks, TransferDemand: *sanDemand}
		}
		cres, err := clustersim.RunClosed(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		printClosedResult(&ccfg, cres)
		return
	}

	cfg := clustersim.DefaultConfig(trace, placer)
	cfg.Speeds = speedList
	cfg.TuneInterval = *interval
	if cfg.Events, err = parseEvents(*events); err != nil {
		log.Fatal(err)
	}
	if *sanDisks > 0 {
		cfg.SAN = clustersim.SANConfig{Enabled: true, Disks: *sanDisks, TransferDemand: *sanDemand}
	}
	res, err := clustersim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res, *series, *moves)
	if a, ok := placer.(*policy.ANU); ok {
		for _, adv := range a.Advisories() {
			fmt.Printf("ADVISORY: server %d pinned at the minimum region for %d rounds — likely incompetent for this cluster\n",
				adv.Server, adv.Rounds)
		}
	}
}

// printClosedResult summarizes a closed-loop run.
func printClosedResult(cfg *clustersim.ClosedConfig, res *clustersim.ClosedResult) {
	fmt.Printf("mode              closed-loop (%d clients, think %.1fs)\n", cfg.Clients, cfg.ThinkTime)
	fmt.Printf("cycles            %d (%.2f/s throughput)\n", res.Cycles, res.Throughput)
	fmt.Printf("metadata latency  %.4f s\n", res.MetadataLatency.Mean())
	fmt.Printf("cycle latency     %.4f s\n", res.CycleLatency.Mean())
	fmt.Printf("tuning rounds     %d\n", res.TuningRounds)
	if res.SANUtilization > 0 {
		fmt.Printf("SAN utilization   %.3f\n", res.SANUtilization)
	}
}

// parseEvents parses "kind:time:server[:speed]" items separated by
// commas; kinds are fail, recover, commission, decommission.
func parseEvents(s string) ([]clustersim.Event, error) {
	if s == "" {
		return nil, nil
	}
	var events []clustersim.Event
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("event %q: want kind:time:server[:speed]", item)
		}
		var kind clustersim.EventKind
		switch parts[0] {
		case "fail":
			kind = clustersim.Fail
		case "recover":
			kind = clustersim.Recover
		case "commission":
			kind = clustersim.Commission
		case "decommission":
			kind = clustersim.Decommission
		default:
			return nil, fmt.Errorf("event %q: unknown kind %q", item, parts[0])
		}
		at, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("event %q: bad time: %v", item, err)
		}
		srv, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("event %q: bad server: %v", item, err)
		}
		ev := clustersim.Event{Time: at, Kind: kind, Server: clustersim.ServerID(srv)}
		if kind == clustersim.Commission {
			if len(parts) < 4 {
				return nil, fmt.Errorf("event %q: commission needs a speed", item)
			}
			if ev.Speed, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return nil, fmt.Errorf("event %q: bad speed: %v", item, err)
			}
		}
		events = append(events, ev)
	}
	return events, nil
}

func loadTrace(wl, path string, seed uint64, demand float64) (*workload.Trace, error) {
	if path != "" {
		return workload.ReadFile(path)
	}
	switch wl {
	case "synthetic":
		cfg := workload.DefaultSynthetic()
		cfg.Seed = seed
		if demand > 0 {
			cfg.BaseDemand = demand
		}
		return cfg.Generate()
	case "dfslike":
		cfg := workload.DefaultDFSLike()
		cfg.Seed = seed
		if demand > 0 {
			cfg.BaseDemand = demand
		}
		return cfg.Generate()
	case "hotspot":
		cfg := workload.DefaultHotspot()
		cfg.Seed = seed
		if demand > 0 {
			cfg.BaseDemand = demand
		}
		return cfg.Generate()
	default:
		return nil, fmt.Errorf("unknown workload %q (want synthetic, dfslike or hotspot)", wl)
	}
}

func parseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	speeds := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q: %v", p, err)
		}
		speeds = append(speeds, v)
	}
	return speeds, nil
}

// buildPolicy resolves the four canonical systems by name; any other
// name falls through to the placement-strategy registry, so every
// registered scheme ("chord", "chord-bounded", ...) is runnable without
// a new case here. The trace's memoized KeySet feeds each constructor —
// file-set names are hashed once regardless of the policy chosen.
func buildPolicy(name string, trace *workload.Trace, speeds []float64, numVP int) (policy.Placer, error) {
	family := hashx.NewFamily(42)
	servers := make([]policy.ServerID, len(speeds))
	for i := range servers {
		servers[i] = policy.ServerID(i)
	}
	keys := trace.Keys()
	switch name {
	case "simple":
		return policy.NewSimpleKeys(family, keys, servers)
	case "anu":
		return policy.NewANUKeys(family, keys, servers, anu.DefaultControllerConfig())
	case "prescient":
		return policy.NewPrescient(trace.FileSets)
	case "vp":
		return policy.NewVirtualProcessorKeys(family, keys, numVP)
	}
	for _, tag := range placement.Names() {
		if tag == name {
			// The -speeds flag is the a-priori capacity knowledge handed to
			// weight-aware strategies; others ignore the weights.
			weights := make(map[policy.ServerID]float64, len(speeds))
			for i, sp := range speeds {
				if sp > 0 {
					weights[servers[i]] = sp
				}
			}
			return policy.NewStrategyPlacerKeys(tag, keys, servers, placement.Options{
				HashSeed: 42,
				Weights:  weights,
			})
		}
	}
	return nil, fmt.Errorf("unknown policy %q (want simple, anu, prescient, vp, or a registered strategy: %v)",
		name, placement.Names())
}

func printResult(res *clustersim.Result, series, moves bool) {
	fmt.Printf("policy            %s\n", res.Policy)
	fmt.Printf("completed         %d (dropped %d, rerouted %d)\n", res.Completed, res.Dropped, res.Rerouted)
	fmt.Printf("mean latency      %.4f s\n", res.MeanLatency())
	fmt.Printf("steady latency    %.4f s (after 25%% of the run)\n", res.SteadyMeanLatency())
	fmt.Printf("latency stddev    %.4f s\n", res.LatencyStdDev())
	fmt.Printf("tuning rounds     %d\n", res.TuningRounds)
	fmt.Printf("file sets moved   %d (%.2f%% of workload)\n", res.TotalMoved, 100*res.TotalWorkMovedFrac)
	fmt.Printf("shared state      %d bytes\n", res.SharedStateBytes)
	if res.SAN != nil {
		fmt.Printf("SAN               %d disks, %d transfers, end-to-end %.4f s, utilization %.3f\n",
			res.SAN.Disks, res.SAN.Transfers, res.SAN.EndToEnd.Mean(), res.SAN.UtilizationInWindow)
	}
	fmt.Println()
	fmt.Printf("%-8s %-7s %-9s %-12s %-12s %-10s\n", "server", "speed", "served", "mean lat", "sd lat", "busy (s)")
	for _, id := range res.ServerIDs() {
		s := res.Servers[id]
		fmt.Printf("%-8d %-7.1f %-9d %-12.4f %-12.4f %-10.0f\n",
			id, s.Speed, s.Served, s.Latency.Mean(), s.Latency.StdDev(), s.BusyTime)
	}
	if series {
		fmt.Println()
		n := int(res.Duration/120) + 1
		fmt.Print("minute")
		for _, id := range res.ServerIDs() {
			fmt.Printf("\tsrv%d", id)
		}
		fmt.Println()
		for w := 0; w < n; w++ {
			fmt.Printf("%d", w*2)
			for _, id := range res.ServerIDs() {
				m := res.Servers[id].Series.At(w).Mean()
				if res.Servers[id].Series.At(w).N() == 0 {
					m = math.NaN()
				}
				fmt.Printf("\t%.3f", m)
			}
			fmt.Println()
		}
	}
	if moves {
		fmt.Println()
		fmt.Printf("%-6s %-10s %-8s %-10s\n", "round", "time", "moved", "work%")
		for _, m := range res.Moves {
			fmt.Printf("%-6d %-10.0f %-8d %-10.3f\n", m.Round, m.Time, m.FileSetsMoved, 100*m.WorkMovedFrac)
		}
	}
	os.Stdout.Sync()
}
