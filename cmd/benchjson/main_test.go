package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anurand/internal/benchfmt"
)

// record runs the CLI once in record mode and returns the output path.
func record(t *testing.T, benchOutput string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	var stderr bytes.Buffer
	if code := run([]string{"-o", path}, strings.NewReader(benchOutput), &stderr); code != 0 {
		t.Fatalf("record exited %d: %s", code, stderr.String())
	}
	return path
}

func TestRecordWritesParseableJSON(t *testing.T) {
	path := record(t, "pkg: p\nBenchmarkX 100 42 ns/op 0 allocs/op\n")
	f, err := benchfmt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Metrics["ns/op"] != 42 {
		t.Fatalf("recorded file = %+v", f)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := record(t, "pkg: p\nBenchmarkX 100 42 ns/op\n")
	var stderr bytes.Buffer
	code := run([]string{"-gate", base, "-o", os.DevNull},
		strings.NewReader("pkg: p\nBenchmarkX 100 99 ns/op\n"), &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("stderr missing REGRESSION: %s", stderr.String())
	}
}

// TestGateFailsOnZeroAllocBaselineRegression is the CLI-level proof of
// the acceptance criterion: a benchmark recorded at 0 allocs/op that
// now allocates fails the gate.
func TestGateFailsOnZeroAllocBaselineRegression(t *testing.T) {
	base := record(t, "pkg: p\nBenchmarkLookup 100 42 ns/op 0 B/op 0 allocs/op\n")
	var stderr bytes.Buffer
	code := run([]string{"-gate", base, "-metric", "allocs/op", "-tolerance", "0", "-o", os.DevNull},
		strings.NewReader("pkg: p\nBenchmarkLookup 100 42 ns/op 16 B/op 2 allocs/op\n"), &stderr)
	if code != 1 {
		t.Fatalf("0 -> 2 allocs/op exited %d, want 1; stderr: %s", code, stderr.String())
	}

	// The same run at 0 allocs still passes.
	stderr.Reset()
	code = run([]string{"-gate", base, "-metric", "allocs/op", "-tolerance", "0", "-o", os.DevNull},
		strings.NewReader("pkg: p\nBenchmarkLookup 100 45 ns/op 0 B/op 0 allocs/op\n"), &stderr)
	if code != 0 {
		t.Fatalf("clean alloc gate exited %d: %s", code, stderr.String())
	}
}

func TestEmptyInputFails(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
