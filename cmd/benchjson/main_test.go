package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: anurand
cpu: AMD EPYC 7B13
BenchmarkBalancerLookup              	31680140	        36.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkBalancerLookupParallel      	32079256	        37.98 ns/op	       0 B/op	       0 allocs/op
BenchmarkBalancerLookupBatch         	   35564	     32190 ns/op	        31.44 ns/key	       0 B/op	       0 allocs/op
PASS
ok  	anurand	5.2s
pkg: anurand/internal/hashx
BenchmarkHash-2   	50000000	        21.50 ns/op
PASS
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU != "AMD EPYC 7B13" {
		t.Errorf("context = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	// Sorted by (pkg, name): the three anurand benchmarks first.
	b := f.Benchmarks[0]
	if b.Pkg != "anurand" || b.Name != "BenchmarkBalancerLookup" {
		t.Errorf("first benchmark = %s.%s", b.Pkg, b.Name)
	}
	if b.N != 31680140 {
		t.Errorf("N = %d", b.N)
	}
	if got := b.Metrics["ns/op"]; got != 36.00 {
		t.Errorf("ns/op = %v", got)
	}
	if got := b.Metrics["allocs/op"]; got != 0 {
		t.Errorf("allocs/op = %v", got)
	}
	batch := f.Benchmarks[1]
	if batch.Name != "BenchmarkBalancerLookupBatch" {
		t.Fatalf("second benchmark = %s", batch.Name)
	}
	if got := batch.Metrics["ns/key"]; got != 31.44 {
		t.Errorf("custom metric ns/key = %v", got)
	}
	last := f.Benchmarks[3]
	if last.Pkg != "anurand/internal/hashx" || last.Name != "BenchmarkHash-2" {
		t.Errorf("last benchmark = %s.%s", last.Pkg, last.Name)
	}
	if len(f.Raw) != 4 {
		t.Errorf("raw lines = %d, want 4", len(f.Raw))
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := "BenchmarkBroken notanumber 12 ns/op\nBenchmarkOK 100 12 ns/op\nBenchmarkShort 5\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
}

func mkFile(vals map[string]float64) *File {
	f := &File{}
	for name, v := range vals {
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Pkg: "p", Name: name, N: 1,
			Metrics: map[string]float64{"ns/op": v},
		})
	}
	return f
}

func TestGate(t *testing.T) {
	base := mkFile(map[string]float64{"A": 100, "B": 50, "OnlyBase": 10})
	cur := mkFile(map[string]float64{"A": 120, "B": 80, "OnlyCur": 5})

	// A is +20% (within 30%), B is +60% (regression). OnlyBase/OnlyCur
	// appear in one file each and are skipped.
	regs, compared := Gate(base, cur, "ns/op", 0.30)
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "p.B") {
		t.Errorf("regressions = %v, want one for p.B", regs)
	}

	// With a tight tolerance both regress.
	regs, _ = Gate(base, cur, "ns/op", 0.10)
	if len(regs) != 2 {
		t.Errorf("regressions at 10%% tolerance = %v, want 2", regs)
	}

	// Improvements never fail the gate.
	regs, _ = Gate(cur, base, "ns/op", 0.0)
	if len(regs) != 0 {
		t.Errorf("improvements flagged as regressions: %v", regs)
	}
}
