// Command benchjson turns `go test -bench` output into a stable JSON
// record and gates benchmark regressions against a recorded baseline.
//
// The repository's perf trajectory is kept in BENCH_*.json files
// committed at the repo root (see `make bench`): each file is the
// parsed output of one benchmark suite, so any later change can be
// diffed (or benchstat'ed — the `raw` field preserves the original
// benchmark lines) against the configuration that produced it. The
// parsing and gating logic lives in internal/benchfmt, shared with
// cmd/benchdiff (the all-metric regression report).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... > out.txt
//	benchjson -o BENCH_lookup.json < out.txt        # record
//	benchjson -gate BENCH_lookup.json < out.txt     # fail on regression
//
// Gating compares a metric (default ns/op) for benchmarks present in
// both runs and exits non-zero when any regresses beyond -tolerance
// (default 0.30, i.e. 30% slower). For count metrics (allocs/op, B/op)
// a zero baseline is an absolute guarantee: any increase from 0 fails
// regardless of tolerance. Timing numbers move with hardware, so the
// ns/op gate is meant for same-machine comparisons (CI runners, a
// developer checking a refactor), not cross-machine ones; the count
// gates are machine-independent.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anurand/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

// run is main without the process exit, so tests can drive the CLI.
func run(args []string, stdin io.Reader, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "", "write parsed JSON to this file (default stdout)")
		gate      = fs.String("gate", "", "baseline JSON file to gate against")
		metric    = fs.String("metric", "ns/op", "metric to gate on")
		tolerance = fs.Float64("tolerance", 0.30, "allowed relative regression before failing the gate")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cur, err := benchfmt.Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on stdin")
		return 2
	}

	if *gate != "" {
		base, err := benchfmt.ReadFile(*gate)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		regressions, compared := benchfmt.Gate(base, cur, *metric, *tolerance)
		fmt.Fprintf(stderr, "benchjson: compared %d benchmarks against %s (%s, tolerance %.0f%%)\n",
			compared, *gate, *metric, *tolerance*100)
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(stderr, "benchjson: REGRESSION %s\n", r)
			}
			return 1
		}
	}

	if err := benchfmt.WriteFile(cur, *out); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	return 0
}
