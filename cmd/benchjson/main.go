// Command benchjson turns `go test -bench` output into a stable JSON
// record and gates benchmark regressions against a recorded baseline.
//
// The repository's perf trajectory is kept in BENCH_*.json files
// committed at the repo root (see `make bench`): each file is the
// parsed output of one benchmark suite, so any later change can be
// diffed (or benchstat'ed — the `raw` field preserves the original
// benchmark lines) against the configuration that produced it.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... > out.txt
//	benchjson -o BENCH_lookup.json < out.txt        # record
//	benchjson -gate BENCH_lookup.json < out.txt     # fail on regression
//
// Gating compares a metric (default ns/op) for benchmarks present in
// both runs and exits non-zero when any regresses beyond -tolerance
// (default 0.30, i.e. 30% slower). Numbers move with hardware, so the
// gate is meant for same-machine comparisons (CI runners, a developer
// checking a refactor), not cross-machine ones.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Pkg is the Go package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Name is the full benchmark name including the -GOMAXPROCS
	// suffix, e.g. "BenchmarkBalancerLookupParallel-16".
	Name string `json:"name"`
	// N is the iteration count the reported means were measured over.
	N int64 `json:"n"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op", plus
	// any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// File is the JSON document benchjson reads and writes.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves the original benchmark result lines, so benchstat
	// can consume a recorded file via `jq -r '.raw[]'`.
	Raw []string `json:"raw"`
}

func main() {
	var (
		out       = flag.String("o", "", "write parsed JSON to this file (default stdout)")
		gate      = flag.String("gate", "", "baseline JSON file to gate against")
		metric    = flag.String("metric", "ns/op", "metric to gate on")
		tolerance = flag.Float64("tolerance", 0.30, "allowed relative regression before failing the gate")
	)
	flag.Parse()

	cur, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(2)
	}

	if *gate != "" {
		data, err := os.ReadFile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *gate, err)
			os.Exit(2)
		}
		regressions, compared := Gate(&base, cur, *metric, *tolerance)
		fmt.Fprintf(os.Stderr, "benchjson: compared %d benchmarks against %s (%s, tolerance %.0f%%)\n",
			compared, *gate, *metric, *tolerance*100)
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", r)
			}
			os.Exit(1)
		}
	}

	if err := write(cur, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}

func write(f *File, path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Parse reads `go test -bench` output. Context lines (goos, goarch,
// cpu, pkg) annotate the benchmarks that follow them; multiple
// packages in one stream are handled.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			f.Benchmarks = append(f.Benchmarks, b)
			f.Raw = append(f.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		a, b := f.Benchmarks[i], f.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return f, nil
}

// parseLine parses one benchmark result line: a name, an iteration
// count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], N: n, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// Gate compares cur against base on one metric. It returns a
// description of every benchmark whose metric regressed beyond tol,
// and the number of benchmarks compared. Benchmarks present in only
// one file are skipped: suites evolve, and gating is about the shared
// surface.
func Gate(base, cur *File, metric string, tol float64) (regressions []string, compared int) {
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			baseline[b.Pkg+"."+b.Name] = v
		}
	}
	for _, b := range cur.Benchmarks {
		v, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		old, ok := baseline[b.Pkg+"."+b.Name]
		if !ok {
			continue
		}
		compared++
		if old > 0 && v > old*(1+tol) {
			regressions = append(regressions, fmt.Sprintf("%s.%s: %s %.4g -> %.4g (+%.1f%%, tolerance %.0f%%)",
				b.Pkg, b.Name, metric, old, v, (v/old-1)*100, tol*100))
		}
	}
	return regressions, compared
}
