package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anurand/internal/benchfmt"
)

func writeBench(t *testing.T, dir, name string, benchmarks []benchfmt.Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f := &benchfmt.File{Goos: "linux", Goarch: "amd64", Benchmarks: benchmarks}
	if err := benchfmt.WriteFile(f, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixturePaths(t *testing.T) (base, cur string) {
	dir := t.TempDir()
	base = writeBench(t, dir, "base.json", []benchfmt.Benchmark{
		{Pkg: "p", Name: "BenchmarkA", N: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}},
		{Pkg: "p", Name: "BenchmarkB", N: 1, Metrics: map[string]float64{"ns/op": 50}},
	})
	cur = writeBench(t, dir, "cur.json", []benchfmt.Benchmark{
		{Pkg: "p", Name: "BenchmarkA", N: 1, Metrics: map[string]float64{"ns/op": 105, "allocs/op": 4}},
		{Pkg: "p", Name: "BenchmarkB", N: 1, Metrics: map[string]float64{"ns/op": 49}},
	})
	return base, cur
}

func TestReportRendersAndFlagsZeroBaseline(t *testing.T) {
	base, cur := fixturePaths(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{base, cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d (no -fail): %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"## Benchmark diff", "REGRESSION (zero baseline)", "p.BenchmarkA", "allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFailFlagGatesRegressions(t *testing.T) {
	base, cur := fixturePaths(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fail", base, cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	// Clean comparison passes even with -fail.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fail", base, base}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit = %d: %s", code, stderr.String())
	}
}

func TestReportFileOutput(t *testing.T) {
	base, cur := fixturePaths(t)
	out := filepath.Join(t.TempDir(), "report.md")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, base, cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "## Benchmark diff") {
		t.Fatalf("report file content:\n%s", data)
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -o: %s", stdout.String())
	}
}

func TestThresholdFlagOverrides(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "b.json", []benchfmt.Benchmark{
		{Pkg: "p", Name: "BenchmarkA", N: 1, Metrics: map[string]float64{"ns/op": 100}},
	})
	cur := writeBench(t, dir, "c.json", []benchfmt.Benchmark{
		{Pkg: "p", Name: "BenchmarkA", N: 1, Metrics: map[string]float64{"ns/op": 112}},
	})
	// +12% passes the 30% default but fails a 5% per-metric override.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fail", base, cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("default tolerance flagged +12%%: %s", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fail", "-tolerances", "ns/op=0.05", base, cur}, &stdout, &stderr); code != 1 {
		t.Fatalf("tight tolerance did not flag +12%%: %s", stderr.String())
	}
	// A floor above the delta suppresses it again.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fail", "-tolerances", "ns/op=0.05", "-floors", "ns/op=20", base, cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("floor did not suppress sub-floor delta: %s", stderr.String())
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"only-one.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"-tolerances", "garbage", "a.json", "b.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -tolerances exit = %d, want 2", code)
	}
}
