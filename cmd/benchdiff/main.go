// Command benchdiff compares two BENCH_*.json files (recorded by
// cmd/benchjson) across every metric they share and renders a markdown
// regression report: per-metric noise-aware thresholds, absolute
// floors for sub-nanosecond jitter, hard zero-baseline protection for
// count metrics (a 0 allocs/op guarantee cannot silently erode), and
// explicit listings of added and removed benchmarks.
//
// Usage:
//
//	benchdiff old.json new.json                    # report to stdout
//	benchdiff -o report.md old.json new.json       # report to a file
//	benchdiff -fail old.json new.json              # exit 1 on regression
//	benchdiff -tolerances 'ns/op=0.1' -floors 'ns/op=1' old.json new.json
//
// CI runs it against the committed baselines on every PR and uploads
// the report as a job summary, so the perf trajectory is reviewable
// without checking out the branch. Timing metrics move with hardware;
// the count metrics (allocs/op, B/op) are machine-independent, which
// is why -fail pairs naturally with count-only gating (see the
// bench-gate make target for the hard-fail path).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anurand/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("o", "", "write the markdown report to this file (default stdout)")
		failFlag   = fs.Bool("fail", false, "exit non-zero when any metric regresses")
		tolerances = fs.String("tolerances", "", "per-metric relative tolerances, e.g. 'ns/op=0.30,allocs/op=0'")
		floors     = fs.String("floors", "", "per-metric absolute noise floors, e.g. 'ns/op=0.5'")
		defaultTol = fs.Float64("tolerance", 0.30, "relative tolerance for metrics without a -tolerances entry")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	basePath, curPath := fs.Arg(0), fs.Arg(1)

	th := benchfmt.DefaultThresholds()
	th.Default = *defaultTol
	if *tolerances != "" {
		m, err := benchfmt.ParseThresholdList(*tolerances)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: -tolerances: %v\n", err)
			return 2
		}
		for k, v := range m {
			th.PerMetric[k] = v
		}
	}
	if *floors != "" {
		m, err := benchfmt.ParseThresholdList(*floors)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: -floors: %v\n", err)
			return 2
		}
		for k, v := range m {
			th.Floors[k] = v
		}
	}

	base, err := benchfmt.ReadFile(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := benchfmt.ReadFile(curPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	report := benchfmt.Diff(base, cur, th)
	report.BaseLabel = basePath
	report.CurLabel = curPath

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	if err := report.Markdown(dst); err != nil {
		fmt.Fprintf(stderr, "benchdiff: writing report: %v\n", err)
		return 2
	}

	regs := report.Regressions()
	if len(regs) > 0 {
		for _, d := range regs {
			fmt.Fprintf(stderr, "benchdiff: REGRESSION %s %s %.4g -> %.4g\n", d.Key, d.Metric, d.Old, d.New)
		}
		if *failFlag {
			return 1
		}
	}
	fmt.Fprintf(stderr, "benchdiff: %d pairs compared, %d regressions, %d improvements\n",
		len(report.Deltas), len(regs), len(report.Improvements()))
	return 0
}
