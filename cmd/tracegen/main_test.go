package main

import (
	"path/filepath"
	"testing"

	"anurand/internal/workload"
)

func TestGenerateOverrides(t *testing.T) {
	tr, err := generate("synthetic", 5, 7, 300, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.FileSets) != 7 {
		t.Fatalf("file sets = %d, want override 7", len(tr.FileSets))
	}
	if tr.Duration != 300 {
		t.Fatalf("duration = %g", tr.Duration)
	}
	tr2, err := generate("dfslike", 5, 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.FileSets) != 21 {
		t.Fatalf("dfslike default file sets = %d", len(tr2.FileSets))
	}
	if _, err := generate("bogus", 1, 0, 0, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestInspectTraceRoundTrip(t *testing.T) {
	tr, err := generate("synthetic", 3, 5, 200, 300)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.anut")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := inspectTrace(path); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatal("round trip lost requests")
	}
	if err := inspectTrace(filepath.Join(t.TempDir(), "missing.anut")); err == nil {
		t.Fatal("missing file accepted")
	}
}
