// Command tracegen generates, inspects and converts workload trace
// files in the repository's binary trace format.
//
// Usage:
//
//	tracegen -workload synthetic -o synthetic.anut   # generate
//	tracegen -inspect synthetic.anut                 # summarize
//	tracegen -workload dfslike -seed 7 -o t.anut
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"anurand/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		wl       = flag.String("workload", "synthetic", "generator: synthetic | dfslike")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output trace file (required unless -inspect)")
		inspect  = flag.String("inspect", "", "summarize an existing trace file")
		fileSets = flag.Int("filesets", 0, "override file set count")
		duration = flag.Float64("duration", 0, "override duration in seconds")
		requests = flag.Int("requests", 0, "override target request count")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *out == "" {
		log.Fatal("need -o output path (or -inspect)")
	}
	trace, err := generate(*wl, *seed, *fileSets, *duration, *requests)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	s := trace.Stats()
	fmt.Printf("wrote %s: %d requests over %d file sets, %.0fs, offered load %.2f unit-speed\n",
		*out, s.Requests, s.FileSets, s.Duration, s.OfferedLoad)
}

func generate(wl string, seed uint64, fileSets int, duration float64, requests int) (*workload.Trace, error) {
	switch wl {
	case "synthetic":
		cfg := workload.DefaultSynthetic()
		cfg.Seed = seed
		if fileSets > 0 {
			cfg.NumFileSets = fileSets
		}
		if duration > 0 {
			cfg.Duration = duration
		}
		if requests > 0 {
			cfg.TargetRequests = requests
		}
		return cfg.Generate()
	case "dfslike":
		cfg := workload.DefaultDFSLike()
		cfg.Seed = seed
		if fileSets > 0 {
			cfg.NumFileSets = fileSets
		}
		if duration > 0 {
			cfg.Duration = duration
		}
		if requests > 0 {
			cfg.TargetRequests = requests
		}
		return cfg.Generate()
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}

func inspectTrace(path string) error {
	trace, err := workload.ReadFile(path)
	if err != nil {
		return err
	}
	s := trace.Stats()
	fmt.Printf("label        %s\n", trace.Label)
	fmt.Printf("duration     %.0f s\n", s.Duration)
	fmt.Printf("requests     %d (%.2f/s)\n", s.Requests, s.MeanRate)
	fmt.Printf("file sets    %d\n", s.FileSets)
	fmt.Printf("total work   %.0f unit-speed seconds (offered load %.2f)\n", s.TotalDemand, s.OfferedLoad)
	fmt.Printf("max fs share %.1f%%\n", 100*s.MaxShare)

	type fsRow struct {
		idx   int
		count int
		work  float64
	}
	rows := make([]fsRow, len(s.PerFileSet))
	for i := range rows {
		rows[i] = fsRow{i, s.PerFileSet[i], s.FileSetWork[i]}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].work > rows[j].work })
	n := len(rows)
	if n > 10 {
		n = 10
	}
	fmt.Printf("\ntop %d file sets by work:\n", n)
	fmt.Printf("%-24s %-10s %-12s %-8s\n", "name", "requests", "work (s)", "share")
	for _, r := range rows[:n] {
		fmt.Printf("%-24s %-10d %-12.0f %-8.2f%%\n",
			trace.FileSets[r.idx].Name, r.count, r.work, 100*r.work/s.TotalDemand)
	}

	// Burstiness profile: index of dispersion of per-second counts.
	counts := trace.WindowCounts(1)
	var sum, sumSq float64
	for _, c := range counts {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	mean := sum / float64(len(counts))
	if mean > 0 {
		variance := sumSq/float64(len(counts)) - mean*mean
		fmt.Printf("\nburstiness: index of dispersion %.2f (Poisson ~1)\n", variance/mean)
	}
	return nil
}
