// Command ablate sweeps the ANU controller's design parameters over the
// synthetic workload and reports aggregate latency, consistency, and
// movement for each configuration — the ablation study for the design
// choices DESIGN.md calls out (feedback exponent, step clamps, dead
// band, smoothing) plus the movement-cost model.
//
// Usage:
//
//	ablate                 # controller parameter grid
//	ablate -what movecost  # cache flush / cold penalty sweep
//	ablate -what probes    # re-hash probe budget sweep
package main

import (
	"flag"
	"fmt"
	"log"

	"anurand/internal/anu"
	"anurand/internal/chordring"
	"anurand/internal/clustersim"
	"anurand/internal/hashx"
	"anurand/internal/placement"
	"anurand/internal/policy"
	"anurand/internal/rng"
	"anurand/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	what := flag.String("what", "controller", "sweep: controller | movecost | probes | vpaddr | dchoice")
	seed := flag.Uint64("seed", 1, "workload seed")
	demand := flag.Float64("demand", 0, "override per-request base demand")
	flag.Parse()

	wcfg := workload.DefaultSynthetic()
	wcfg.Seed = *seed
	if *demand > 0 {
		wcfg.BaseDemand = *demand
	}
	trace, err := wcfg.Generate()
	if err != nil {
		log.Fatal(err)
	}

	switch *what {
	case "controller":
		sweepController(trace)
	case "movecost":
		sweepMoveCost(trace)
	case "probes":
		sweepProbes(trace)
	case "vpaddr":
		sweepVPAddressing()
	case "dchoice":
		sweepDChoice()
	default:
		log.Fatalf("unknown sweep %q", *what)
	}
}

func runANU(trace *workload.Trace, ctl anu.ControllerConfig, mutate func(*clustersim.Config)) (*clustersim.Result, error) {
	servers := []policy.ServerID{0, 1, 2, 3, 4}
	placer, err := policy.NewANU(hashx.NewFamily(42), trace.FileSets, servers, ctl)
	if err != nil {
		return nil, err
	}
	cfg := clustersim.DefaultConfig(trace, placer)
	if mutate != nil {
		mutate(&cfg)
	}
	return clustersim.Run(cfg)
}

func report(label string, res *clustersim.Result) {
	fmt.Printf("%-44s mean=%8.3fs sd=%8.3fs spread=%5.2f moved=%4d work%%=%6.1f\n",
		label, res.MeanLatency(), res.LatencyStdDev(),
		res.ConsistencySpread(500), res.TotalMoved, 100*res.TotalWorkMovedFrac)
}

func sweepController(trace *workload.Trace) {
	fmt.Println("# ANU controller parameter ablation (synthetic workload)")
	base := anu.DefaultControllerConfig()
	fmt.Printf("# baseline: gamma=%.2f step=%.2f shrink=%.2f band=%.2f smooth=%.2f\n\n",
		base.Gamma, base.MaxStep, base.MaxShrink, base.DeadBand, base.Smoothing)

	for _, gamma := range []float64{0.15, 0.2, 0.3} {
		for _, step := range []float64{1.15, 1.25, 1.4} {
			for _, smooth := range []float64{0.3, 0.5} {
				for _, band := range []float64{0.2, 0.3} {
					cfg := base
					cfg.Gamma = gamma
					cfg.MaxStep = step
					cfg.MaxShrink = step
					cfg.Smoothing = smooth
					cfg.DeadBand = band
					res, err := runANU(trace, cfg, nil)
					if err != nil {
						log.Fatal(err)
					}
					report(fmt.Sprintf("gamma=%.2f step=%.2f smooth=%.2f band=%.2f", gamma, step, smooth, band), res)
				}
			}
		}
	}
}

func sweepMoveCost(trace *workload.Trace) {
	fmt.Println("# movement-cost ablation: cache flush time and cold penalty")
	ctl := anu.DefaultControllerConfig()
	for _, flush := range []float64{0, 0.25, 1, 5} {
		for _, cold := range []float64{1, 2, 5} {
			res, err := runANU(trace, ctl, func(c *clustersim.Config) {
				c.MoveFlushTime = flush
				c.ColdPenalty = cold
			})
			if err != nil {
				log.Fatal(err)
			}
			report(fmt.Sprintf("flush=%.2fs cold=%.0fx", flush, cold), res)
		}
	}
}

// sweepDChoice measures the SIEVE multiple-choice placement heuristic:
// the worst server's excess over the fair share m/n as the number of
// candidate probes d grows. d=1 is plain ANU lookup; d=2 is the classic
// power-of-two-choices collapse the paper's m/n+1 load bound relies on.
func sweepDChoice() {
	fmt.Println("# multiple-choice placement: worst-server excess over m/n")
	const n, m = 16, 4800
	fmt.Printf("%-8s %-18s %-18s\n", "d", "max excess (items)", "max/mean ratio")
	for _, d := range []int{1, 2, 3, 4} {
		ids := make([]placement.ServerID, n)
		for i := range ids {
			ids[i] = placement.ServerID(i)
		}
		s, err := placement.New(placement.StrategyANU, ids, placement.Options{HashSeed: 42})
		if err != nil {
			log.Fatal(err)
		}
		mp := s.(*placement.ANU).Map() // LookupD is an ANU-specific probe-count experiment
		counts := make(map[anu.ServerID]float64, n)
		for i := 0; i < m; i++ {
			id, _ := mp.LookupD(fmt.Sprintf("fileset/%05d", i), d, func(s anu.ServerID) float64 { return counts[s] })
			counts[id]++
		}
		mean := float64(m) / n
		worst := 0.0
		for _, c := range counts {
			if c > worst {
				worst = c
			}
		}
		fmt.Printf("%-8d %-18.0f %-18.3f\n", d, worst-mean, worst/mean)
	}
}

// sweepVPAddressing quantifies the paper's footnote 1: a VP system can
// replicate the full VP->server table at every node (O(V) state, one
// probe) or keep it in a Chord-style ring (O(log n) state per node,
// O(log n) probes). ANU's region table is the third point: O(k) state,
// ~2 hash probes, no ring maintenance. Both measured schemes are built
// through the placement registry — the same construction path the
// networked runtime uses.
func sweepVPAddressing() {
	fmt.Println("# VP addressing: replicated table vs Chord-style ring vs ANU")
	fmt.Printf("%-26s %-22s %-14s\n", "scheme", "state per node (B)", "probes/lookup")
	for _, n := range []int{5, 50, 500} {
		numVP := 10 * n // the paper's v=10 upper end
		fmt.Printf("-- %d servers, %d virtual processors --\n", n, numVP)
		fmt.Printf("%-26s %-22d %-14.1f\n", "replicated VP table", 8*numVP, 1.0)

		ids := make([]placement.ServerID, n)
		for i := range ids {
			ids[i] = placement.ServerID(i)
		}
		opts := placement.Options{HashSeed: 42}
		cs, err := placement.New(placement.StrategyChord, ids, opts)
		if err != nil {
			log.Fatal(err)
		}
		ring := cs.(*placement.Chord).Ring().Ring()
		src := rng.New(uint64(n))
		total, lookups := 0, 2000
		for i := 0; i < lookups; i++ {
			_, hops, err := ring.Route(chordring.NodeID(ids[src.Intn(n)]), fmt.Sprintf("vp/%d", i%numVP))
			if err != nil {
				log.Fatal(err)
			}
			total += hops
		}
		fmt.Printf("%-26s %-22d %-14.1f\n", "chord ring", ring.StateBytes(), float64(total)/float64(lookups))

		as, err := placement.New(placement.StrategyANU, ids, opts)
		if err != nil {
			log.Fatal(err)
		}
		probes, keyLookups := 0, 2000
		for i := 0; i < keyLookups; i++ {
			_, p, _ := as.LookupProbes(fmt.Sprintf("fs/%d", i))
			probes += p
		}
		fmt.Printf("%-26s %-22d %-14.1f\n", "anu region table", as.SharedStateSize(), float64(probes)/float64(keyLookups))
	}
}

func sweepProbes(trace *workload.Trace) {
	fmt.Println("# re-hash probe budget ablation (fallback engages below ~8 probes)")
	ctl := anu.DefaultControllerConfig()
	servers := []policy.ServerID{0, 1, 2, 3, 4}
	for _, probes := range []int{1, 2, 4, 8, 64} {
		placer, err := policy.NewANU(hashx.NewFamily(42), trace.FileSets, servers, ctl)
		if err != nil {
			log.Fatal(err)
		}
		placer.Map().SetMaxProbes(probes)
		cfg := clustersim.DefaultConfig(trace, placer)
		res, err := clustersim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("maxprobes=%d", probes), res)
	}
}
