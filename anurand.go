// Package anurand is a load-management library for heterogeneous
// clusters based on adaptive, non-uniform (ANU) randomization, a
// reproduction of "Achieving Performance Consistency in Heterogeneous
// Clusters" (Wu and Burns, HPDC 2004).
//
// The core abstraction is the Balancer: workload units (file sets, shard
// keys, queue partitions — anything with a stable name) are hashed onto
// a unit interval, and servers own tunable regions of that interval
// summing to exactly half of it. Lookup is a pure hash computation with
// no I/O; balancing is done by scaling region sizes from periodic
// latency reports, so the only replicated state is the O(servers) region
// table. The scheme adapts to server heterogeneity, workload skew,
// failures, recoveries and commissioning without configuration or
// a-priori capacity knowledge.
//
// A minimal use:
//
//	b, err := anurand.New([]anurand.ServerID{0, 1, 2})
//	...
//	owner, ok := b.Lookup("/home/alice") // route the request
//	...
//	// every couple of minutes, feed back observed latencies:
//	b.Tune([]anurand.Report{
//		{Server: 0, Requests: 1200, LatencySeconds: 0.9},
//		{Server: 1, Requests: 800, LatencySeconds: 2.1},
//		{Server: 2, Requests: 150, LatencySeconds: 0.4},
//	})
//
// The Balancer is a thin concurrency shell over a pluggable placement
// strategy (internal/placement). ANU randomization is the default;
// Options.Strategy selects an alternative such as the bounded-load
// consistent-hash ring, and every strategy runs under the same tuning,
// snapshot, and failure machinery — that is what makes the paper's
// comparisons apples-to-apples.
//
// The repository also contains the paper's full evaluation apparatus: a
// discrete-event cluster simulator, the synthetic and trace-like
// workload generators, the three comparison systems (simple
// randomization, dynamic prescient, virtual processors), and a harness
// that regenerates every figure of the paper (cmd/paperfigs).
package anurand

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"anurand/internal/anu"
	"anurand/internal/placement"
)

// ServerID identifies a server. IDs are assigned by the caller, must be
// non-negative, and stay stable across failure and recovery.
type ServerID int32

// Report is one server's performance sample for a tuning interval.
type Report struct {
	// Server is the reporting server.
	Server ServerID
	// Requests is the number of requests completed in the interval.
	Requests uint64
	// LatencySeconds is their mean response time. Ignored when
	// Requests is zero.
	LatencySeconds float64
	// Failed marks the server as down; its region is released to the
	// survivors.
	Failed bool
}

// Tuning exposes the delegate controller's knobs. The zero value means
// "use the defaults from the paper reproduction"; see DefaultTuning.
type Tuning struct {
	// Gamma is the feedback exponent applied to the latency ratio.
	Gamma float64
	// MaxStep bounds per-round region growth; MaxShrink bounds
	// per-round shrinking.
	MaxStep, MaxShrink float64
	// DeadBand suppresses scaling for servers within this relative
	// distance of the system average latency.
	DeadBand float64
	// MinWeight keeps every live server addressable with at least this
	// fraction of the mean region weight.
	MinWeight float64
	// Smoothing is the EWMA coefficient on reported latencies.
	Smoothing float64
}

// DefaultTuning returns the controller configuration used throughout
// the paper reproduction.
func DefaultTuning() Tuning {
	c := anu.DefaultControllerConfig()
	return Tuning{
		Gamma:     c.Gamma,
		MaxStep:   c.MaxStep,
		MaxShrink: c.MaxShrink,
		DeadBand:  c.DeadBand,
		MinWeight: c.MinWeight,
		Smoothing: c.Smoothing,
	}
}

// Validate rejects nonsensical knob values with a field-level message.
// Zero means "use the default" throughout, so only negative or NaN
// values are field errors here; positive values outside a knob's valid
// range (for example MaxStep <= 1) are reported by the controller's own
// validation with the ranges attached.
func (t Tuning) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Gamma", t.Gamma},
		{"MaxStep", t.MaxStep},
		{"MaxShrink", t.MaxShrink},
		{"DeadBand", t.DeadBand},
		{"MinWeight", t.MinWeight},
		{"Smoothing", t.Smoothing},
	} {
		if math.IsNaN(f.v) {
			return fmt.Errorf("anurand: Tuning.%s is NaN; leave it zero to use the default", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("anurand: Tuning.%s is negative (%g); tuning knobs must be positive, or zero to use the default", f.name, f.v)
		}
	}
	return nil
}

func (t Tuning) toConfig() anu.ControllerConfig {
	def := anu.DefaultControllerConfig()
	cfg := anu.ControllerConfig{
		Gamma:      pick(t.Gamma, def.Gamma),
		MaxStep:    pick(t.MaxStep, def.MaxStep),
		MaxShrink:  pick(t.MaxShrink, def.MaxShrink),
		DeadBand:   pick(t.DeadBand, def.DeadBand),
		MinWeight:  pick(t.MinWeight, def.MinWeight),
		Smoothing:  pick(t.Smoothing, def.Smoothing),
		IdleGrowth: def.IdleGrowth,
	}
	return cfg
}

func pick(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Options configures a Balancer.
type Options struct {
	// HashSeed seeds the agreed-upon hash family. All nodes that share
	// a placement must use the same seed.
	HashSeed uint64
	// Tuning overrides controller parameters; zero fields keep
	// defaults.
	Tuning Tuning
	// Strategy selects the placement strategy by registered name
	// ("anu", "chord", "chord-bounded"). Empty means ANU, the paper's
	// scheme. In Restore, a non-empty Strategy additionally asserts the
	// snapshot's tag: a snapshot from a different strategy is rejected
	// instead of silently adopted.
	Strategy string
	// LoadBound is the bounded-load factor for the "chord-bounded"
	// strategy: no server should carry more than LoadBound times the
	// mean per-server request rate. Zero means the default (1.25);
	// other strategies ignore it.
	LoadBound float64
	// Weights carries per-server capacity weights — a-priori knowledge
	// of relative server speeds — for the weight-aware strategies
	// ("rendezvous", "weighted-static", "power-of-d"). Zero value means
	// uniform capacity; absent servers default to weight 1. Strategies
	// without capacity knowledge ignore it. In Restore the snapshot's
	// own weights win, as with every other replicated field.
	Weights map[ServerID]float64
	// Choices is the d of the "power-of-d" sampler; zero means the
	// default (2). Other strategies ignore it.
	Choices int
}

func (o Options) placementOptions() placement.Options {
	po := placement.Options{
		HashSeed:   o.HashSeed,
		Controller: o.Tuning.toConfig(),
		LoadBound:  o.LoadBound,
		Choices:    o.Choices,
	}
	if len(o.Weights) > 0 {
		po.Weights = make(map[placement.ServerID]float64, len(o.Weights))
		for id, w := range o.Weights {
			po.Weights[placement.ServerID(id)] = w
		}
	}
	return po
}

func (o Options) strategyName() string {
	if o.Strategy == "" {
		return placement.StrategyANU
	}
	return o.Strategy
}

// Strategies lists the registered placement strategy names accepted by
// Options.Strategy.
func Strategies() []string { return placement.Names() }

// Balancer is a thread-safe placement strategy with its feedback
// machinery — the embeddable form of the paper's load-management
// system. The default strategy is the paper's ANU map + controller.
//
// Concurrency model (RCU-style snapshots): the placement strategy is an
// immutable snapshot published through an atomic pointer. Readers
// (Lookup, LookupProbes, LookupBatch, Shares, Snapshot, …) load the
// pointer and never take a lock, never block a writer, and scale
// linearly with cores. Writers (Tune, Fail, Recover, AddServer,
// RemoveServer) serialize behind a mutex, clone the current strategy,
// mutate the clone, and publish it; a failed mutation publishes
// nothing, so readers always observe a complete, invariant-satisfying
// placement. Writes are O(servers + partitions) — a few microseconds,
// at the paper's tuning cadence of minutes.
type Balancer struct {
	cur atomic.Pointer[placement.Strategy] // current immutable placement snapshot
	mu  sync.Mutex                         // serializes writers
}

// New creates a Balancer over the given servers with equal initial
// shares and default options (ANU strategy).
func New(servers []ServerID) (*Balancer, error) {
	return NewWithOptions(servers, Options{})
}

// NewWithOptions creates a Balancer with explicit options.
func NewWithOptions(servers []ServerID, opts Options) (*Balancer, error) {
	if err := opts.Tuning.Validate(); err != nil {
		return nil, err
	}
	ids := make([]placement.ServerID, len(servers))
	for i, s := range servers {
		ids[i] = placement.ServerID(s)
	}
	s, err := placement.New(opts.strategyName(), ids, opts.placementOptions())
	if err != nil {
		return nil, fmt.Errorf("anurand: %w", err)
	}
	b := &Balancer{}
	b.cur.Store(&s)
	return b, nil
}

// Restore reconstructs a Balancer from a Snapshot, as a node would on
// receiving the delegate's replicated state. The snapshot carries its
// strategy tag; set Options.Strategy to additionally assert it.
func Restore(snapshot []byte, opts Options) (*Balancer, error) {
	if err := opts.Tuning.Validate(); err != nil {
		return nil, err
	}
	s, err := placement.Decode(snapshot, opts.placementOptions())
	if err != nil {
		return nil, fmt.Errorf("anurand: %w", err)
	}
	if opts.Strategy != "" && s.Name() != opts.Strategy {
		return nil, fmt.Errorf("anurand: snapshot carries strategy %q, want %q", s.Name(), opts.Strategy)
	}
	b := &Balancer{}
	b.cur.Store(&s)
	return b, nil
}

// strategy returns the current immutable placement strategy. The result
// must be treated as read-only; mutators work on clones and republish.
func (b *Balancer) strategy() placement.Strategy { return *b.cur.Load() }

// Strategy returns the active placement strategy's registered name.
func (b *Balancer) Strategy() string { return b.strategy().Name() }

// mutate runs f on a private clone of the current strategy under the
// writer lock and publishes the clone only if f succeeds, so a failed
// operation leaves the visible placement untouched.
func (b *Balancer) mutate(f func(s placement.Strategy) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	clone := (*b.cur.Load()).Clone()
	if err := f(clone); err != nil {
		return err
	}
	b.cur.Store(&clone)
	return nil
}

// Lookup returns the server responsible for key. The boolean is false
// only when every server has failed. Lookup is lock-free: it reads the
// current placement snapshot and resolves the key against it.
func (b *Balancer) Lookup(key string) (ServerID, bool) {
	id, ok := b.strategy().Lookup(key)
	if !ok {
		return 0, false
	}
	return ServerID(id), true
}

// LookupProbes returns the placement along with the number of
// data-structure probes used (hash probes for ANU — expected two under
// half occupancy — or ring probes for the chord strategies).
func (b *Balancer) LookupProbes(key string) (ServerID, int, bool) {
	id, probes, ok := b.strategy().LookupProbes(key)
	if !ok {
		return 0, probes, false
	}
	return ServerID(id), probes, true
}

// NoOwner is stored by LookupBatch for keys that cannot be placed
// (every server has failed).
const NoOwner ServerID = -1

// LookupBatch resolves keys[i] into owners[i] for every key, against a
// single placement snapshot — concurrent tuning never splits a batch
// across two placements. It returns the number of keys that resolved to
// a live server; unresolved entries are set to NoOwner. owners must be
// at least as long as keys. Like Lookup, the batch path is lock-free.
func (b *Balancer) LookupBatch(keys []string, owners []ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("anurand: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	s := b.strategy()
	resolved := 0
	for i, key := range keys {
		id, ok := s.Lookup(key)
		if !ok {
			owners[i] = NoOwner
			continue
		}
		owners[i] = ServerID(id)
		resolved++
	}
	return resolved
}

// Tune applies one feedback round from per-server latency reports and
// reports whether the placement changed. It is the delegate's
// operation; in a cluster, distribute Snapshot() to the other nodes
// afterwards.
func (b *Balancer) Tune(reports []Report) (bool, error) {
	rs := make([]placement.Report, len(reports))
	for i, r := range reports {
		rs[i] = placement.Report{
			Server:   placement.ServerID(r.Server),
			Requests: r.Requests,
			Latency:  r.LatencySeconds,
			Failed:   r.Failed,
		}
	}
	var changed bool
	err := b.mutate(func(s placement.Strategy) error {
		var err error
		changed, err = s.Tune(rs)
		return err
	})
	if err != nil {
		return changed, fmt.Errorf("anurand: %w", err)
	}
	return changed, nil
}

// AddServer commissions a new server with an equal share of the key
// space.
func (b *Balancer) AddServer(id ServerID) error {
	return b.mutate(func(s placement.Strategy) error { return s.AddServer(placement.ServerID(id)) })
}

// RemoveServer decommissions a server; its load fails over to the
// survivors.
func (b *Balancer) RemoveServer(id ServerID) error {
	return b.mutate(func(s placement.Strategy) error { return s.RemoveServer(placement.ServerID(id)) })
}

// Fail records a server failure; only its file sets move.
func (b *Balancer) Fail(id ServerID) error {
	return b.mutate(func(s placement.Strategy) error { return s.Fail(placement.ServerID(id)) })
}

// Recover re-admits a failed server with an equal share.
func (b *Balancer) Recover(id ServerID) error {
	return b.mutate(func(s placement.Strategy) error { return s.Recover(placement.ServerID(id)) })
}

// SetWeights installs updated per-server capacity weights on a
// weight-aware strategy (rendezvous, weighted-static, power-of-d). The
// update is partial: listed servers take the new weight, absent servers
// keep theirs. Strategies without capacity knowledge return an error.
func (b *Balancer) SetWeights(weights map[ServerID]float64) error {
	return b.mutate(func(s placement.Strategy) error {
		rw, ok := s.(placement.Reweigher)
		if !ok {
			return fmt.Errorf("anurand: strategy %q does not support weights", s.Name())
		}
		pw := make(map[placement.ServerID]float64, len(weights))
		for id, w := range weights {
			pw[placement.ServerID(id)] = w
		}
		return rw.SetWeights(pw)
	})
}

// Weights returns the current per-server capacity weights of a
// weight-aware strategy, or nil for strategies without capacity
// knowledge.
func (b *Balancer) Weights() map[ServerID]float64 {
	rw, ok := b.strategy().(placement.Reweigher)
	if !ok {
		return nil
	}
	pw := rw.Weights()
	out := make(map[ServerID]float64, len(pw))
	for id, w := range pw {
		out[ServerID(id)] = w
	}
	return out
}

// Advisory flags a server the controller considers incompetent for this
// cluster: pinned at the minimum region floor for several consecutive
// tuning rounds while others carry the load (the paper's
// administrator notification).
type Advisory struct {
	Server ServerID
	Rounds int
}

// Advisories lists servers currently flagged as incompetent. Only the
// ANU strategy produces advisories; other strategies return nil.
func (b *Balancer) Advisories() []Advisory {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.strategy().(*placement.ANU)
	if !ok {
		return nil
	}
	advs := a.Controller().Advisories()
	out := make([]Advisory, len(advs))
	for i, adv := range advs {
		out[i] = Advisory{Server: ServerID(adv.Server), Rounds: adv.Rounds}
	}
	return out
}

// Servers returns the member ids in ascending order (including failed,
// zero-share members).
func (b *Balancer) Servers() []ServerID {
	ids := b.strategy().Servers()
	out := make([]ServerID, len(ids))
	for i, id := range ids {
		out[i] = ServerID(id)
	}
	return out
}

// Shares returns each server's fraction of the key space (fractions sum
// to 1 across live servers; failed servers report 0). All fractions
// come from one placement snapshot.
func (b *Balancer) Shares() map[ServerID]float64 {
	shares := b.strategy().Shares()
	out := make(map[ServerID]float64, len(shares))
	for id, s := range shares {
		out[ServerID(id)] = s
	}
	return out
}

// Snapshot serializes the placement — the only state a delegate
// replicates to the cluster. The bytes carry the strategy's tag; its
// size is O(servers).
func (b *Balancer) Snapshot() []byte {
	return b.strategy().Encode()
}

// SharedStateSize returns len(Snapshot()).
func (b *Balancer) SharedStateSize() int {
	return b.strategy().SharedStateSize()
}

// Partitions returns the current partition count of the ANU unit
// interval, 2^(ceil(lg k)+1) for k servers, or 0 for strategies without
// partitions.
func (b *Balancer) Partitions() int {
	if a, ok := b.strategy().(*placement.ANU); ok {
		return a.Map().Partitions()
	}
	return 0
}

// K returns the number of member servers.
func (b *Balancer) K() int {
	return len(b.strategy().Servers())
}

// Render draws the ANU unit interval as an ASCII bar (one digit per
// cell for the owning server, '.' for unmapped space) — the picture of
// the paper's Figure 2, for logs and operator tooling. Strategies
// without an interval render as an empty string.
func (b *Balancer) Render(width int) string {
	if a, ok := b.strategy().(*placement.ANU); ok {
		return a.Map().Render(width)
	}
	return ""
}
