package anurand_test

import (
	"fmt"

	"anurand"
)

// The basic lifecycle: create a balancer, route keys, feed latency back.
func Example() {
	b, err := anurand.New([]anurand.ServerID{0, 1, 2})
	if err != nil {
		panic(err)
	}

	// Route a key. Placement is a pure hash computation.
	owner, ok := b.Lookup("/projects/apollo")
	fmt.Println("placed:", ok, owner >= 0 && owner <= 2)

	// Feed back a tuning interval's observations: server 0 is slow.
	changed, err := b.Tune([]anurand.Report{
		{Server: 0, Requests: 900, LatencySeconds: 4.0},
		{Server: 1, Requests: 900, LatencySeconds: 1.0},
		{Server: 2, Requests: 900, LatencySeconds: 1.0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rebalanced:", changed)
	// Output:
	// placed: true true
	// rebalanced: true
}

// Failing a server moves only its keys; recovery grants an equal share
// back.
func ExampleBalancer_Fail() {
	b, _ := anurand.New([]anurand.ServerID{0, 1, 2, 3})
	if err := b.Fail(2); err != nil {
		panic(err)
	}
	fmt.Printf("failed server share: %.0f%%\n", 100*b.Shares()[2])
	if err := b.Recover(2); err != nil {
		panic(err)
	}
	fmt.Printf("recovered share: %.0f%%\n", 100*b.Shares()[2])
	// Output:
	// failed server share: 0%
	// recovered share: 25%
}

// The snapshot is the only state a delegate replicates; any node can
// reconstruct an identical balancer from it.
func ExampleBalancer_Snapshot() {
	b, _ := anurand.New([]anurand.ServerID{0, 1, 2})
	snap := b.Snapshot()
	peer, err := anurand.Restore(snap, anurand.Options{})
	if err != nil {
		panic(err)
	}
	a, _ := b.Lookup("/home/ada")
	c, _ := peer.Lookup("/home/ada")
	fmt.Println("agree:", a == c)
	fmt.Println("state is small:", len(snap) < 256)
	// Output:
	// agree: true
	// state is small: true
}

// Commissioning a new server repartitions the interval when k crosses a
// power of two; repartitioning itself moves nothing.
func ExampleBalancer_AddServer() {
	b, _ := anurand.New([]anurand.ServerID{0, 1, 2, 3})
	fmt.Println("partitions before:", b.Partitions())
	if err := b.AddServer(4); err != nil {
		panic(err)
	}
	fmt.Println("partitions after:", b.Partitions())
	fmt.Printf("newcomer share: %.0f%%\n", 100*b.Shares()[4])
	// Output:
	// partitions before: 8
	// partitions after: 16
	// newcomer share: 20%
}
