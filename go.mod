module anurand

go 1.23
