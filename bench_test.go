package anurand

// Benchmarks that regenerate every results figure of the paper
// (Figures 4-8). Each benchmark runs the corresponding experiment and
// reports the figure's headline quantities through b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the evaluation end to end.
//
// The benchmarks run the experiments on the Quick workload scale
// (~10x smaller than the paper's, same shapes) so the whole suite
// finishes in tens of seconds; `cmd/paperfigs` runs the full-scale
// versions, whose numbers EXPERIMENTS.md records.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"anurand/internal/anu"
	"anurand/internal/clustersim"
	"anurand/internal/experiment"
	"anurand/internal/hashx"
	"anurand/internal/placement"
)

// newQuickSuite builds a fresh scaled-down suite. Each benchmark
// iteration pays for its own simulations. Workers is pinned to 1: with
// work-stealing workers the cell-to-worker assignment depends on
// scheduling, and since each worker owns a reusable simulation scratch,
// allocs/op would vary run to run — sequential cells keep the figure
// suite's allocation counts exact, which the zero-tolerance
// bench-gate-allocs target relies on.
func newQuickSuite() *experiment.Suite {
	cfg := experiment.DefaultConfig()
	cfg.Quick = true
	cfg.Workers = 1
	return experiment.NewSuite(cfg)
}

// BenchmarkFig4DFSTraceLatency regenerates Figure 4: per-server latency
// under the DFSTrace-like workload for all four systems. Reported
// metrics are each system's aggregate mean latency in milliseconds.
func BenchmarkFig4DFSTraceLatency(b *testing.B) {
	var last map[experiment.PolicyName]*clustersim.Result
	for i := 0; i < b.N; i++ {
		s := newQuickSuite()
		res, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for name, res := range last {
		b.ReportMetric(res.MeanLatency()*1e3, fmt.Sprintf("ms-mean-%s", name))
	}
}

// BenchmarkFig5SyntheticLatency regenerates Figure 5: per-server
// latency under the synthetic workload for all four systems.
func BenchmarkFig5SyntheticLatency(b *testing.B) {
	var last map[experiment.PolicyName]*clustersim.Result
	for i := 0; i < b.N; i++ {
		s := newQuickSuite()
		res, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for name, res := range last {
		b.ReportMetric(res.MeanLatency()*1e3, fmt.Sprintf("ms-mean-%s", name))
	}
}

// BenchmarkFig6aAggregateLatency regenerates Figure 6(a): aggregate
// mean latency and standard deviation per system.
func BenchmarkFig6aAggregateLatency(b *testing.B) {
	var rows []experiment.Fig6Row
	for i := 0; i < b.N; i++ {
		s := newQuickSuite()
		var err error
		rows, err = s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.MeanLatency*1e3, fmt.Sprintf("ms-mean-%s", row.Policy))
		b.ReportMetric(row.StdDev*1e3, fmt.Sprintf("ms-sd-%s", row.Policy))
	}
}

// Figure 6(b)'s consistency spread excludes the servers the paper
// treats as outliers: the weakest (speed-1) server, which ANU rightly
// drives near idle, and any server with too few completed requests for
// a stable mean.
const (
	fig6bWeakestServer = 0
	fig6bMinRequests   = 200
)

// BenchmarkFig6bPerServerLatency regenerates Figure 6(b): per-server
// mean latency under ANU — the consistency result. The reported spread
// is max/min mean latency across servers that did real work.
func BenchmarkFig6bPerServerLatency(b *testing.B) {
	var rows []experiment.Fig6Row
	for i := 0; i < b.N; i++ {
		s := newQuickSuite()
		var err error
		rows, err = s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if row.Policy != experiment.ANU {
			continue
		}
		lo, hi := 0.0, 0.0
		first := true
		for id, m := range row.PerServerMean {
			if row.PerServerCount[id] < fig6bMinRequests || id == fig6bWeakestServer {
				continue
			}
			if first {
				lo, hi = m, m
				first = false
				continue
			}
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if lo > 0 {
			b.ReportMetric(hi/lo, "x-consistency-spread")
		}
	}
}

// BenchmarkFig7LoadMovement regenerates Figure 7: ANU's file-set
// movement over the run.
func BenchmarkFig7LoadMovement(b *testing.B) {
	var moves []clustersim.MoveRecord
	for i := 0; i < b.N; i++ {
		s := newQuickSuite()
		var err error
		moves, err = s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	var work float64
	for _, m := range moves {
		total += m.FileSetsMoved
		work += m.WorkMovedFrac
	}
	b.ReportMetric(float64(total), "filesets-moved")
	b.ReportMetric(100*work, "pct-work-moved")
	b.ReportMetric(float64(len(moves)), "rounds")
}

// BenchmarkFig8VPTradeoff regenerates Figure 8: the VP count sweep with
// ANU and prescient references, plus the shared-state sizes.
func BenchmarkFig8VPTradeoff(b *testing.B) {
	counts := []int{5, 15, 30, 50}
	var res *experiment.Fig8Result
	for i := 0; i < b.N; i++ {
		s := newQuickSuite()
		var err error
		res, err = s.Fig8(counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range res.Hot {
		b.ReportMetric(pt.MeanLatency*1e3, fmt.Sprintf("ms-mean-vp%d", pt.NumVP))
		b.ReportMetric(float64(pt.SharedStateBytes), fmt.Sprintf("B-state-vp%d", pt.NumVP))
	}
	b.ReportMetric(res.HotRefs.ANULatency*1e3, "ms-mean-anu")
	b.ReportMetric(float64(res.HotRefs.ANUSharedState), "B-state-anu")
	b.ReportMetric(res.HotRefs.PrescientLatency*1e3, "ms-mean-prescient")
}

// sharedBalancer serves the micro-benchmarks below.
var (
	benchOnce sync.Once
	benchBal  *Balancer
	benchErr  error
)

func sharedBalancer(b *testing.B) *Balancer {
	benchOnce.Do(func() {
		ids := make([]ServerID, 16)
		for i := range ids {
			ids[i] = ServerID(i)
		}
		benchBal, benchErr = New(ids)
	})
	if benchErr != nil {
		b.Fatalf("balancer init failed: %v", benchErr)
	}
	return benchBal
}

// benchKeys returns the fixed key set the lookup benchmarks probe
// with; the power-of-two length keeps the selection a mask.
func benchKeys() []string {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("fileset/%04d", i)
	}
	return keys
}

// BenchmarkBalancerLookup measures the addressing cost: a placement is
// a couple of hash probes, no I/O, no table walk — and since the RCU
// refactor, no lock.
func BenchmarkBalancerLookup(b *testing.B) {
	bal := sharedBalancer(b)
	keys := benchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := bal.Lookup(keys[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkBalancerLookupParallel measures read-path scalability: with
// RCU snapshot publication, concurrent lookups share nothing but an
// atomic pointer load, so throughput scales with GOMAXPROCS instead of
// serializing on a reader-writer lock.
func BenchmarkBalancerLookupParallel(b *testing.B) {
	bal := sharedBalancer(b)
	keys := benchKeys()
	var failed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := bal.Lookup(keys[i&1023]); !ok {
				failed.Add(1)
				return
			}
			i++
		}
	})
	if failed.Load() > 0 {
		b.Fatal("lookup failed")
	}
}

// rwmutexBalancer reproduces the pre-RCU read path — every lookup
// taking a reader-writer lock around the shared map — as the regression
// reference for BenchmarkBalancerLookupParallelMutex.
type rwmutexBalancer struct {
	mu sync.RWMutex
	m  *anu.Map
}

func (rb *rwmutexBalancer) Lookup(key string) (ServerID, bool) {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	id, _ := rb.m.Lookup(key)
	if id == anu.NoServer {
		return 0, false
	}
	return ServerID(id), true
}

func newRWMutexBalancer(b *testing.B) *rwmutexBalancer {
	ids := make([]anu.ServerID, 16)
	for i := range ids {
		ids[i] = anu.ServerID(i)
	}
	m, err := anu.New(hashx.NewFamily(0), ids)
	if err != nil {
		b.Fatalf("balancer init failed: %v", err)
	}
	return &rwmutexBalancer{m: m}
}

// BenchmarkBalancerLookupParallelMutex is the before picture: the same
// lookup serialized behind a sync.RWMutex. The ratio of the Parallel
// benchmark to this one is the win the RCU data plane buys at a given
// core count.
func BenchmarkBalancerLookupParallelMutex(b *testing.B) {
	bal := newRWMutexBalancer(b)
	keys := benchKeys()
	var failed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := bal.Lookup(keys[i&1023]); !ok {
				failed.Add(1)
				return
			}
			i++
		}
	})
	if failed.Load() > 0 {
		b.Fatal("lookup failed")
	}
}

// BenchmarkBalancerLookupBatch measures the batch data plane: one
// snapshot load amortized over a full batch of placements.
func BenchmarkBalancerLookupBatch(b *testing.B) {
	bal := sharedBalancer(b)
	keys := benchKeys()
	owners := make([]ServerID, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := bal.LookupBatch(keys, owners); n != len(keys) {
			b.Fatalf("batch resolved %d/%d", n, len(keys))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(keys)), "ns/key")
}

// BenchmarkBalancerTune measures one delegate feedback round over 16
// servers.
func BenchmarkBalancerTune(b *testing.B) {
	bal := sharedBalancer(b)
	reports := make([]Report, 16)
	for i := range reports {
		reports[i] = Report{Server: ServerID(i), Requests: 100, LatencySeconds: 1 + float64(i%5)*0.2}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bal.Tune(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBalancerSnapshot measures serializing the replicated state.
func BenchmarkBalancerSnapshot(b *testing.B) {
	bal := sharedBalancer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(bal.Snapshot()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// newStrategy builds a registered placement strategy over 16 servers
// for the ring lookup benchmarks, mirroring sharedBalancer's shape.
func newStrategy(b *testing.B, tag string) placement.Strategy {
	ids := make([]placement.ServerID, 16)
	for i := range ids {
		ids[i] = placement.ServerID(i)
	}
	s, err := placement.New(tag, ids, placement.Options{HashSeed: 0})
	if err != nil {
		b.Fatalf("strategy %s init failed: %v", tag, err)
	}
	return s
}

// skewTune drives one feedback round with a skewed request distribution
// so the bounded ring carries live shed fractions — the benchmark then
// measures the real read path, shed branch included.
func skewTune(b *testing.B, s placement.Strategy) {
	reports := make([]placement.Report, 16)
	for i := range reports {
		reports[i] = placement.Report{Server: placement.ServerID(i), Requests: 100, Latency: 1}
	}
	reports[3].Requests = 4000
	reports[7].Requests = 2500
	if _, err := s.Tune(reports); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChordLookup measures the plain consistent-hash ring's
// addressing cost: one FNV pass, one mix, one binary search over the
// sorted point array — no allocation.
func BenchmarkChordLookup(b *testing.B) {
	s := newStrategy(b, placement.StrategyChord)
	keys := benchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(keys[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkChordBoundedLookup measures the bounded-load ring with shed
// fractions active, so the arc-prefix forwarding branch is on the
// measured path rather than benchmarking an idle ring.
func BenchmarkChordBoundedLookup(b *testing.B) {
	s := newStrategy(b, placement.StrategyChordBounded)
	skewTune(b, s)
	keys := benchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(keys[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// newWeightedStrategy is newStrategy with a skewed capacity table, so
// the weighted benchmarks measure the real weighted path rather than
// the uniform special case.
func newWeightedStrategy(b *testing.B, tag string) placement.Strategy {
	ids := make([]placement.ServerID, 16)
	weights := make(map[placement.ServerID]float64, 16)
	for i := range ids {
		ids[i] = placement.ServerID(i)
		weights[ids[i]] = float64(1 + i%5*2) // speeds 1,3,5,7,9 as in the paper
	}
	s, err := placement.New(tag, ids, placement.Options{HashSeed: 0, Weights: weights})
	if err != nil {
		b.Fatalf("strategy %s init failed: %v", tag, err)
	}
	return s
}

// BenchmarkRendezvousLookup measures weighted-HRW addressing: one FNV
// pass, then one mix plus one log per live member — no allocation.
func BenchmarkRendezvousLookup(b *testing.B) {
	s := newWeightedStrategy(b, placement.StrategyRendezvous)
	keys := benchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(keys[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkWeightedStaticLookup measures the a-priori static partition:
// one FNV pass, one mix, one binary search over the cumulative-weight
// array — no allocation.
func BenchmarkWeightedStaticLookup(b *testing.B) {
	s := newWeightedStrategy(b, placement.StrategyWeightedStatic)
	keys := benchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(keys[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkPowerOfDLookup measures the two-choice sampler with live
// load state: one FNV pass, then d weighted draws — no allocation.
func BenchmarkPowerOfDLookup(b *testing.B) {
	s := newWeightedStrategy(b, placement.StrategyPowerOfD)
	skewTune(b, s)
	keys := benchKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(keys[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkStrategyLookupBatch measures every registered strategy's
// batch data plane under one shared harness; a newly registered
// strategy gets a sub-benchmark (and the bench gate's attention)
// automatically.
func BenchmarkStrategyLookupBatch(b *testing.B) {
	keys := benchKeys()
	owners := make([]placement.ServerID, len(keys))
	for _, tag := range placement.Names() {
		b.Run(tag, func(b *testing.B) {
			s := newStrategy(b, tag)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := s.LookupBatch(keys, owners); n != len(keys) {
					b.Fatalf("batch resolved %d/%d", n, len(keys))
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(keys)), "ns/key")
		})
	}
}
