package chordring

import (
	"fmt"
	"testing"

	"anurand/internal/hashx"
)

// shedTestState puts the ring in its most complex read state — a failed
// member and a shedding member — so the fast-path tests cover every
// branch of ownerAt, not just the idle direct hit.
func shedTestState(t *testing.T, b *Bounded) {
	t.Helper()
	if err := b.SetFailed(3, true); err != nil {
		t.Fatal(err)
	}
	if err := b.SetShed(5, 0.4); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerDigestMatchesOwner(t *testing.T) {
	b := newBounded(t, 16)
	shedTestState(t, b)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("fs/%d", i)
		id, probes, ok := b.Owner(key)
		id2, probes2, ok2 := b.OwnerDigest(hashx.Prehash(key))
		if id != id2 || probes != probes2 || ok != ok2 {
			t.Fatalf("OwnerDigest(%q) = (%d, %d, %v), Owner = (%d, %d, %v)",
				key, id2, probes2, ok2, id, probes, ok)
		}
		if want := b.Ring().Owner(key); b.Ring().OwnerDigest(hashx.Prehash(key)) != want {
			t.Fatalf("Ring.OwnerDigest(%q) != Ring.Owner = %d", key, want)
		}
	}
}

func TestOwnerZeroAllocs(t *testing.T) {
	b := newBounded(t, 64)
	shedTestState(t, b)
	keys := make([]string, 256)
	digests := make([]hashx.Digest, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("fileset/%04d", i)
		digests[i] = hashx.Prehash(keys[i])
	}
	var sink NodeID
	if n := testing.AllocsPerRun(100, func() {
		for _, key := range keys {
			id, _, _ := b.Owner(key)
			sink = id
		}
	}); n != 0 {
		t.Errorf("Bounded.Owner allocated %g times per %d lookups, want 0", n, len(keys))
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, d := range digests {
			id, _, _ := b.OwnerDigest(d)
			sink = id
		}
	}); n != 0 {
		t.Errorf("Bounded.OwnerDigest allocated %g times per %d lookups, want 0", n, len(digests))
	}
	r := b.Ring()
	if n := testing.AllocsPerRun(100, func() {
		for _, key := range keys {
			sink = r.Owner(key)
		}
	}); n != 0 {
		t.Errorf("Ring.Owner allocated %g times per %d lookups, want 0", n, len(keys))
	}
	_ = sink
}

// TestCloneSharesFlatStateSafely pins the publication contract the dense
// fast-path slices rely on: mutating either the clone or the original
// replaces its slices wholesale, so the other side keeps serving its own
// placement unchanged.
func TestCloneSharesFlatStateSafely(t *testing.T) {
	b := newBounded(t, 8)
	shedTestState(t, b)
	clone := b.Clone()
	before := make(map[string]NodeID)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fs/%d", i)
		id, _, _ := clone.Owner(key)
		before[key] = id
	}
	// Mutate the original in every flat-state dimension.
	if err := b.SetShed(1, 0.45); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFailed(6, true); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(100); err != nil {
		t.Fatal(err)
	}
	for key, want := range before {
		if id, _, _ := clone.Owner(key); id != want {
			t.Fatalf("clone owner for %q moved %d -> %d after original mutated", key, want, id)
		}
	}
}
