package chordring

import (
	"fmt"
	"math"
	"testing"

	"anurand/internal/hashx"
)

func newBounded(t *testing.T, n int) *Bounded {
	t.Helper()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	r, err := New(hashx.NewFamily(42), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return NewBounded(r)
}

func TestBoundedOwnerMatchesRingWhenIdle(t *testing.T) {
	b := newBounded(t, 8)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fs/%d", i)
		id, probes, ok := b.Owner(key)
		if !ok || probes != 1 {
			t.Fatalf("Owner(%q) = (%d, %d, %v)", key, id, probes, ok)
		}
		if want := b.Ring().Owner(key); id != want {
			t.Fatalf("idle bounded owner %d, ring owner %d for %q", id, want, key)
		}
	}
}

func TestBoundedFailedNodeSpillsToLiveSuccessor(t *testing.T) {
	b := newBounded(t, 6)
	victim := b.Ring().Owner("hot-key")
	if err := b.SetFailed(victim, true); err != nil {
		t.Fatal(err)
	}
	id, probes, ok := b.Owner("hot-key")
	if !ok || id == victim {
		t.Fatalf("failed node still owns the key: (%d, %v)", id, ok)
	}
	if probes != 2 {
		t.Errorf("spill took %d probes, want 2", probes)
	}
	// Keys not owned by the victim are unaffected.
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k/%d", i)
		if b.Ring().Owner(key) == victim {
			continue
		}
		id, _, ok := b.Owner(key)
		if !ok || id != b.Ring().Owner(key) {
			t.Fatalf("unrelated key %q moved to %d", key, id)
		}
	}
	// Recovery restores the original placement.
	if err := b.SetFailed(victim, false); err != nil {
		t.Fatal(err)
	}
	if id, _, _ := b.Owner("hot-key"); id != victim {
		t.Fatalf("recovered node did not regain its key (owner %d, want %d)", id, victim)
	}
}

func TestBoundedAllFailed(t *testing.T) {
	b := newBounded(t, 3)
	for _, id := range b.Members() {
		if err := b.SetFailed(id, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := b.Owner("anything"); ok {
		t.Fatal("all-failed ring still places keys")
	}
	for id, s := range b.Shares() {
		if s != 0 {
			t.Errorf("all-failed ring reports share %g for %d", s, id)
		}
	}
}

func TestBoundedShedMovesPrefixFraction(t *testing.T) {
	b := newBounded(t, 5)
	const shedFrac = 0.5
	target := NodeID(2)
	if err := b.SetShed(target, shedFrac); err != nil {
		t.Fatal(err)
	}
	var owned, kept int
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("probe/%d", i)
		if b.Ring().Owner(key) != target {
			continue
		}
		owned++
		if id, _, ok := b.Owner(key); ok && id == target {
			kept++
		}
	}
	if owned < 500 {
		t.Fatalf("target owns only %d sample keys; test underpowered", owned)
	}
	got := float64(kept) / float64(owned)
	if math.Abs(got-(1-shedFrac)) > 0.1 {
		t.Errorf("shed %.2f kept %.3f of keys, want ~%.2f", shedFrac, got, 1-shedFrac)
	}
	// Shares agree with the sampled behaviour: the target's share dropped
	// by about half relative to its unshed arc.
	unshed := newBounded(t, 5)
	before := unshed.Shares()[target]
	after := b.Shares()[target]
	if math.Abs(after-before*(1-shedFrac)) > 0.05 {
		t.Errorf("Shares: shed share %g, want ~%g", after, before*(1-shedFrac))
	}
}

func TestBoundedSharesSumToOne(t *testing.T) {
	b := newBounded(t, 7)
	b.SetFailed(1, true)
	b.SetShed(3, 0.25)
	b.SetShed(5, 0.75)
	var sum float64
	for _, s := range b.Shares() {
		if s < 0 {
			t.Fatalf("negative share %g", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %g, want 1", sum)
	}
	if s := b.Shares()[1]; s != 0 {
		t.Errorf("failed node has share %g", s)
	}
}

func TestBoundedValidation(t *testing.T) {
	b := newBounded(t, 3)
	if err := b.SetShed(0, 1.0); err == nil {
		t.Error("SetShed(1.0) accepted")
	}
	if err := b.SetShed(0, -0.1); err == nil {
		t.Error("SetShed(-0.1) accepted")
	}
	if err := b.SetShed(0, math.NaN()); err == nil {
		t.Error("SetShed(NaN) accepted")
	}
	if err := b.SetShed(99, 0.5); err == nil {
		t.Error("SetShed on unknown node accepted")
	}
	if err := b.SetFailed(99, true); err == nil {
		t.Error("SetFailed on unknown node accepted")
	}
}

func TestBoundedCloneIsIndependent(t *testing.T) {
	b := newBounded(t, 4)
	b.SetShed(0, 0.3)
	c := b.Clone()
	if err := c.Leave(2); err != nil {
		t.Fatal(err)
	}
	c.SetFailed(1, true)
	c.SetShed(0, 0.9)
	if b.Ring().N() != 4 || b.Failed(1) || b.Shed(0) != 0.3 {
		t.Fatal("mutating the clone changed the original")
	}
	if err := c.Join(7); err != nil {
		t.Fatal(err)
	}
	if b.Ring().N() != 4 {
		t.Fatal("clone Join changed the original ring")
	}
}

func TestBoundedSingleNode(t *testing.T) {
	b := newBounded(t, 1)
	b.SetShed(0, 0.9)
	id, probes, ok := b.Owner("only")
	if !ok || id != 0 || probes != 1 {
		t.Fatalf("single-node owner = (%d, %d, %v)", id, probes, ok)
	}
	if s := b.Shares()[0]; s != 1 {
		t.Errorf("single-node share %g, want 1", s)
	}
}
