package chordring

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"anurand/internal/hashx"
	"anurand/internal/rng"
)

func testRing(t *testing.T, n int) *Ring {
	t.Helper()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	r, err := New(hashx.NewFamily(7), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewErrors(t *testing.T) {
	if _, err := New(hashx.NewFamily(1), nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New(hashx.NewFamily(1), []NodeID{3, 3}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestOwnerDeterministicAndCovering(t *testing.T) {
	r := testRing(t, 16)
	counts := map[NodeID]int{}
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("vp/%d", i)
		a := r.Owner(key)
		b := r.Owner(key)
		if a != b {
			t.Fatalf("Owner(%q) not deterministic", key)
		}
		counts[a]++
	}
	// Every node should own some keys; consistent hashing without
	// virtual nodes is uneven but never empty at 20000 keys / 16 nodes.
	for _, id := range r.Nodes() {
		if counts[id] == 0 {
			t.Errorf("node %d owns no keys", id)
		}
	}
}

func TestRouteAgreesWithOwner(t *testing.T) {
	r := testRing(t, 32)
	src := rng.New(5)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key/%d", i)
		from := NodeID(src.Intn(32))
		got, hops, err := r.Route(from, key)
		if err != nil {
			t.Fatalf("Route(%d, %q): %v", from, key, err)
		}
		if want := r.Owner(key); got != want {
			t.Fatalf("Route(%d, %q) = %d, Owner says %d", from, key, got, want)
		}
		if hops < 0 || hops > r.N() {
			t.Fatalf("hops = %d out of range", hops)
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		r := testRing(t, n)
		src := rng.New(uint64(n))
		total := 0
		const lookups = 2000
		for i := 0; i < lookups; i++ {
			_, hops, err := r.Route(NodeID(src.Intn(n)), fmt.Sprintf("k/%d", i))
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		mean := float64(total) / lookups
		bound := float64(r.TheoreticalHops())
		if mean > bound+1 {
			t.Errorf("n=%d: mean hops %.2f exceeds log2(n)=%g + 1", n, mean, bound)
		}
		if n >= 64 && mean < 1 {
			t.Errorf("n=%d: mean hops %.2f implausibly low (fingers too strong?)", n, mean)
		}
	}
}

func TestRouteFromOwnerIsZeroHops(t *testing.T) {
	r := testRing(t, 16)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("self/%d", i)
		owner := r.Owner(key)
		got, hops, err := r.Route(owner, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != owner || hops != 0 {
			t.Fatalf("Route from owner: got %d in %d hops, want %d in 0", got, hops, owner)
		}
	}
}

func TestRouteUnknownStart(t *testing.T) {
	r := testRing(t, 4)
	if _, _, err := r.Route(99, "x"); err == nil {
		t.Fatal("unknown start accepted")
	}
}

func TestJoinMovesAboutOneNth(t *testing.T) {
	r := testRing(t, 16)
	const keys = 30000
	before := make([]NodeID, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("k/%d", i))
	}
	if err := r.Join(100); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		now := r.Owner(fmt.Sprintf("k/%d", i))
		if now != before[i] {
			if now != NodeID(100) {
				t.Fatalf("key %d moved to %d, not the joining node", i, now)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	// One node among 17 owns ~1/17 in expectation; allow wide slack for
	// the single-point variance of consistent hashing.
	if frac > 0.35 {
		t.Errorf("join moved %.1f%% of keys (want ~%d%%)", frac*100, 100/17)
	}
	if moved == 0 {
		t.Error("join moved nothing")
	}
}

func TestLeaveFallsToSuccessor(t *testing.T) {
	r := testRing(t, 8)
	const keys = 10000
	before := make([]NodeID, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("k/%d", i))
	}
	victim := r.Nodes()[3]
	if err := r.Leave(victim); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		now := r.Owner(fmt.Sprintf("k/%d", i))
		if before[i] != victim && now != before[i] {
			t.Fatalf("key %d moved from surviving node %d to %d", i, before[i], now)
		}
		if now == victim {
			t.Fatalf("key %d still owned by departed node", i)
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	r := testRing(t, 2)
	if err := r.Leave(99); err == nil {
		t.Error("leave of unknown node accepted")
	}
	if err := r.Leave(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Leave(1); err == nil {
		t.Error("removed the last node")
	}
}

func TestStateBytesLogarithmic(t *testing.T) {
	s8 := testRing(t, 8).StateBytes()
	s256 := testRing(t, 256).StateBytes()
	if s256 <= s8 {
		t.Fatalf("state should grow with n: %d vs %d", s8, s256)
	}
	// Growth must be far below linear: n grew 32x, state should grow
	// roughly like log2(256)/log2(8) ~ 2.7x.
	if float64(s256) > 8*float64(s8) {
		t.Fatalf("state grew %0.1fx for 32x nodes — not logarithmic", float64(s256)/float64(s8))
	}
	if testRing(t, 256).MaxFingerEntries() > 2*int(math.Log2(256))+4 {
		t.Fatalf("finger table too large: %d entries", testRing(t, 256).MaxFingerEntries())
	}
}

func TestRingPropertyRouteTotal(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		nodes := make([]NodeID, n)
		for i := range nodes {
			nodes[i] = NodeID(i * 7)
		}
		r, err := New(hashx.NewFamily(seed), nodes)
		if err != nil {
			return false
		}
		src := rng.New(seed)
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("p/%d/%d", seed, i)
			from := nodes[src.Intn(n)]
			got, hops, err := r.Route(from, key)
			if err != nil || got != r.Owner(key) || hops > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute256(b *testing.B) {
	nodes := make([]NodeID, 256)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	r, err := New(hashx.NewFamily(1), nodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key/%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Route(NodeID(i&255), keys[i&1023]); err != nil {
			b.Fatal(err)
		}
	}
}
