package chordring

import (
	"fmt"
	"math"
	"sort"

	"anurand/internal/hashx"
)

// Bounded is the bounded-load variant of the consistent-hash ring, after
// "Consistent Hashing with Bounded Loads" (Mirrokni, Thorup, Zadimoghaddam):
// no bin may carry more than c times the average load, and overflow
// spills forward along the ring. Two adaptations make the idea work in
// this system's information model, where load is only known from the
// per-interval latency/request reports the delegate already collects:
//
//   - Load is measured, not counted: a tuning round computes each node's
//     share of the interval's requests and derives a per-node shed
//     fraction — how much of the node's arc it must give up to get back
//     under the bound.
//   - Shedding is deterministic and stateless at read time: a node with
//     shed fraction s forwards the keys in the first s of its arc
//     (measured from its predecessor's point) to the next live node, so
//     every reader computes the same owner from the same encoded state,
//     with no per-lookup counters.
//
// Failed nodes are skipped entirely: their whole arc falls to the next
// live successor, the standard consistent-hashing failover. A forwarded
// key lands on the next live node regardless of that node's own shed,
// which bounds the walk at one extra hop past the live successor scan.
type Bounded struct {
	ring *Ring
	// failed nodes own nothing; their arcs spill to the next live node.
	failed map[NodeID]bool
	// shed[n] in [0, 1) is the prefix fraction of n's arc forwarded on.
	shed map[NodeID]float64

	// Dense per-ring-index mirrors of the maps above, rebuilt wholesale
	// by reindex on every mutation and never edited in place (so Clone
	// may share them, like the ring's fingers). They keep the Owner hot
	// path free of map probes and float multiplies: a lookup is one
	// binary search plus three array reads.
	failedAt []bool
	// shedCutAt[i] is the arc-prefix length (in circle units) member i
	// forwards on; 0 means no shedding. Precomputing it folds the
	// s*float64(arc) conversion out of the read path.
	shedCutAt []point
	// nextLiveAt[i] is the ring index of the first live member strictly
	// after i, or -1 when every member is failed.
	nextLiveAt []int32
}

// NewBounded wraps a ring with empty failure and shed state. The ring is
// owned by the Bounded afterwards.
func NewBounded(ring *Ring) *Bounded {
	b := &Bounded{
		ring:   ring,
		failed: make(map[NodeID]bool),
		shed:   make(map[NodeID]float64),
	}
	b.reindex()
	return b
}

// reindex rebuilds the dense fast-path state from the maps and the ring
// order. Mutators call it after every change; it allocates fresh slices
// rather than editing, so clones sharing the old ones stay consistent.
func (b *Bounded) reindex() {
	n := len(b.ring.ids)
	failedAt := make([]bool, n)
	shedCutAt := make([]point, n)
	nextLiveAt := make([]int32, n)
	for i, id := range b.ring.ids {
		failedAt[i] = b.failed[id]
	}
	for i, id := range b.ring.ids {
		nextLiveAt[i] = -1
		for step := 1; step <= n; step++ {
			if j := (i + step) % n; !failedAt[j] {
				nextLiveAt[i] = int32(j)
				break
			}
		}
		if s := b.shed[id]; s != 0 && n > 1 && !failedAt[i] {
			pred := (i - 1 + n) % n
			if arc := b.ring.points[i] - b.ring.points[pred]; arc != 0 {
				shedCutAt[i] = point(s * float64(arc))
			}
		}
	}
	b.failedAt, b.shedCutAt, b.nextLiveAt = failedAt, shedCutAt, nextLiveAt
}

// Ring exposes the underlying ring (routing experiments read fingers and
// hop counts from it).
func (b *Bounded) Ring() *Ring { return b.ring }

// Clone returns a deep copy; the copy may be mutated independently. The
// dense fast-path slices are shared, not copied: mutators replace them
// wholesale via reindex, never edit them in place.
func (b *Bounded) Clone() *Bounded {
	nb := &Bounded{
		ring:       b.ring.Clone(),
		failed:     make(map[NodeID]bool, len(b.failed)),
		shed:       make(map[NodeID]float64, len(b.shed)),
		failedAt:   b.failedAt,
		shedCutAt:  b.shedCutAt,
		nextLiveAt: b.nextLiveAt,
	}
	for id, f := range b.failed {
		nb.failed[id] = f
	}
	for id, s := range b.shed {
		nb.shed[id] = s
	}
	return nb
}

// SetFailed marks or clears a node's failure. Unknown nodes are an
// error so a typo cannot silently black-hole half the ring.
func (b *Bounded) SetFailed(id NodeID, failed bool) error {
	if _, ok := b.ring.byID[id]; !ok {
		return fmt.Errorf("chordring: SetFailed: unknown node %d", id)
	}
	if failed {
		b.failed[id] = true
	} else {
		delete(b.failed, id)
	}
	b.reindex()
	return nil
}

// Failed reports whether a node is marked failed.
func (b *Bounded) Failed(id NodeID) bool { return b.failed[id] }

// Has reports ring membership (failed members included).
func (b *Bounded) Has(id NodeID) bool {
	_, ok := b.ring.byID[id]
	return ok
}

// SetShed sets the fraction of a node's arc forwarded to its live
// successor. frac must be in [0, 1): a node may shed load, not vanish —
// failure handles that.
func (b *Bounded) SetShed(id NodeID, frac float64) error {
	if _, ok := b.ring.byID[id]; !ok {
		return fmt.Errorf("chordring: SetShed: unknown node %d", id)
	}
	if math.IsNaN(frac) || frac < 0 || frac >= 1 {
		return fmt.Errorf("chordring: SetShed: fraction %g outside [0, 1)", frac)
	}
	if frac == 0 {
		delete(b.shed, id)
	} else {
		b.shed[id] = frac
	}
	b.reindex()
	return nil
}

// Shed returns a node's current shed fraction.
func (b *Bounded) Shed(id NodeID) float64 { return b.shed[id] }

// Join adds a node (live, shedding nothing).
func (b *Bounded) Join(id NodeID) error {
	if err := b.ring.Join(id); err != nil {
		return err
	}
	b.reindex()
	return nil
}

// Leave removes a node and drops its failure/shed state.
func (b *Bounded) Leave(id NodeID) error {
	if err := b.ring.Leave(id); err != nil {
		return err
	}
	delete(b.failed, id)
	delete(b.shed, id)
	b.reindex()
	return nil
}

// LiveCount returns the number of non-failed members.
func (b *Bounded) LiveCount() int { return b.ring.N() - len(b.failed) }

// nextLive returns the ring index of the first non-failed member
// strictly after idx (wrapping; idx itself is reached after a full lap).
// ok is false when every member is failed.
func (b *Bounded) nextLive(idx int) (int, bool) {
	n := len(b.ring.ids)
	for step := 1; step <= n; step++ {
		j := (idx + step) % n
		if !b.failed[b.ring.ids[j]] {
			return j, true
		}
	}
	return 0, false
}

// Owner returns the node responsible for key under the bounded-load
// rule, along with the number of ring probes taken (1 for a direct hit,
// +1 per forwarding hop). ok is false only when every node has failed.
func (b *Bounded) Owner(key string) (NodeID, int, bool) {
	return b.ownerAt(b.ring.keyPoint(key))
}

// OwnerDigest is Owner for a key pre-hashed with hashx.Prehash.
func (b *Bounded) OwnerDigest(d hashx.Digest) (NodeID, int, bool) {
	return b.ownerAt(b.ring.keyPointDigest(d))
}

// ownerAt resolves a ring point against the dense fast-path state. It
// is allocation-free: one binary search, then array reads only —
// failure, shed cut and forwarding target were all precomputed by
// reindex.
func (b *Bounded) ownerAt(p point) (NodeID, int, bool) {
	idx := b.ring.successorIndex(p)
	probes := 1
	if b.failedAt[idx] {
		// The successor is down: its whole arc spills to the next live
		// node, which accepts the key unconditionally.
		next := b.nextLiveAt[idx]
		if next < 0 {
			return 0, probes, false
		}
		return b.ring.ids[next], probes + 1, true
	}
	id := b.ring.ids[idx]
	cut := b.shedCutAt[idx]
	if cut == 0 {
		return id, probes, true
	}
	// The owner is live but shedding: keys in the cut prefix of its arc
	// (measured from the predecessor's point) forward to the next live
	// node. Wrapping subtraction keeps the arithmetic exact mod 2^64.
	n := len(b.ring.ids)
	pred := idx - 1
	if pred < 0 {
		pred = n - 1
	}
	offset := p - b.ring.points[pred] // in [1, arc] for keys owned by idx
	if offset > cut {
		return id, probes, true
	}
	next := b.nextLiveAt[idx]
	if next < 0 || int(next) == idx {
		return id, probes, true // nowhere to shed to
	}
	return b.ring.ids[next], probes + 1, true
}

// Shares returns each member's fraction of the key space under the
// current failure and shed state (live fractions sum to 1; failed
// members report 0). It is the closed form of the Owner walk: a failed
// node's arc goes to its next live successor, and a shedding node's
// prefix goes to the next live node after it.
func (b *Bounded) Shares() map[NodeID]float64 {
	n := len(b.ring.ids)
	out := make(map[NodeID]float64, n)
	for _, id := range b.ring.ids {
		out[id] = 0
	}
	if b.LiveCount() == 0 {
		return out
	}
	const circle = float64(1<<63) * 2 // 2^64
	for i, id := range b.ring.ids {
		pred := (i - 1 + n) % n
		var arcF float64
		if n == 1 {
			arcF = 1
		} else {
			arcF = float64(b.ring.points[i]-b.ring.points[pred]) / circle
		}
		if b.failed[id] {
			if next, ok := b.nextLive(i); ok {
				out[b.ring.ids[next]] += arcF
			}
			continue
		}
		s := b.shed[id]
		next, ok := b.nextLive(i)
		if s == 0 || !ok || next == i {
			out[id] += arcF
			continue
		}
		out[id] += arcF * (1 - s)
		out[b.ring.ids[next]] += arcF * s
	}
	return out
}

// Members returns the member ids in ascending id order (including
// failed members).
func (b *Bounded) Members() []NodeID {
	ids := append([]NodeID(nil), b.ring.ids...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of the ring; the copy may Join and Leave
// independently of the original.
func (r *Ring) Clone() *Ring {
	nr := &Ring{
		family:  r.family,
		points:  append([]point(nil), r.points...),
		ids:     append([]NodeID(nil), r.ids...),
		byID:    make(map[NodeID]point, len(r.byID)),
		fingers: r.fingers, // rebuilt wholesale on mutation, never edited in place
	}
	for id, p := range r.byID {
		nr.byID[id] = p
	}
	return nr
}
