// Package chordring implements the Chord-style alternative addressing
// scheme the paper's footnote 1 mentions for virtual-processor systems:
// instead of replicating the full VP-to-server table at every node, the
// address information "could also be implemented in the Chord-style
// ring to avoid replication at the expense of log(n) probes to the data
// structure".
//
// This is a single-process model of that data structure — a consistent-
// hash ring of nodes with successor pointers and finger tables — built
// to quantify the trade-off: per-node state drops from O(V) table
// entries to O(log n) fingers, while each lookup walks O(log n) hops
// instead of one table index. cmd/ablate's vpaddr sweep and the package
// benchmarks measure both sides.
//
// The ring is an addressing substrate, not a placement policy: keys
// (virtual processors, file sets) map to the node whose ring point is
// their successor. Load balance on a bare ring therefore follows the
// node points, which is exactly the weakness the paper's ANU map fixes
// with tunable regions.
package chordring

import (
	"fmt"
	"math/bits"
	"sort"

	"anurand/internal/hashx"
)

// NodeID identifies a ring member.
type NodeID int32

// ringBits is the identifier-space width. 64-bit points make collisions
// between distinct nodes negligible.
const ringBits = 64

// point is a position on the 2^64 identifier circle.
type point = uint64

// Ring is a Chord-style consistent-hash ring with finger tables. It is
// a static model: Join and Leave rebuild the affected routing state
// directly rather than running the iterative stabilization protocol,
// which the paper's comparison does not depend on.
type Ring struct {
	family hashx.Family
	// members, sorted by ring point.
	points []point
	ids    []NodeID
	byID   map[NodeID]point
	// fingers[i] holds node indices for member i's finger table.
	fingers [][]int
}

// New builds a ring over the given nodes. Node points are derived by
// hashing the node id with the shared family, so every cluster member
// computes the same ring.
func New(family hashx.Family, nodes []NodeID) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("chordring: no nodes")
	}
	r := &Ring{family: family, byID: make(map[NodeID]point, len(nodes))}
	for _, id := range nodes {
		if _, dup := r.byID[id]; dup {
			return nil, fmt.Errorf("chordring: duplicate node %d", id)
		}
		r.byID[id] = r.nodePoint(id)
	}
	r.rebuild()
	return r, nil
}

// nodePoint hashes a node id onto the circle.
func (r *Ring) nodePoint(id NodeID) point {
	return r.family.Hash(fmt.Sprintf("node/%d", id), 0)
}

// rebuild re-sorts the membership and recomputes every finger table.
func (r *Ring) rebuild() {
	type member struct {
		p  point
		id NodeID
	}
	ms := make([]member, 0, len(r.byID))
	for id, p := range r.byID {
		ms = append(ms, member{p, id})
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].p != ms[j].p {
			return ms[i].p < ms[j].p
		}
		return ms[i].id < ms[j].id
	})
	r.points = r.points[:0]
	r.ids = r.ids[:0]
	for _, m := range ms {
		r.points = append(r.points, m.p)
		r.ids = append(r.ids, m.id)
	}
	// Finger i of node n points at successor(n.point + 2^i).
	r.fingers = make([][]int, len(r.ids))
	for i := range r.ids {
		table := make([]int, 0, ringBits)
		prev := -1
		for b := 0; b < ringBits; b++ {
			target := r.points[i] + 1<<uint(b) // wraps mod 2^64
			idx := r.successorIndex(target)
			if idx != prev {
				table = append(table, idx)
				prev = idx
			}
		}
		r.fingers[i] = table
	}
}

// successorIndex returns the index of the first member at or after p on
// the circle. The binary search is written out rather than delegated to
// sort.Search: the closure a sort.Search call captures escapes to the
// heap, and this is the one probe every lookup on the ring pays.
func (r *Ring) successorIndex(p point) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		return 0 // wrap
	}
	return lo
}

// N returns the member count.
func (r *Ring) N() int { return len(r.ids) }

// Nodes returns the member ids in ring order.
func (r *Ring) Nodes() []NodeID {
	return append([]NodeID(nil), r.ids...)
}

// Join adds a node. Routing state is rebuilt; keys between the new
// node's predecessor and its point move to it (standard consistent
// hashing: ~1/n of the keys).
func (r *Ring) Join(id NodeID) error {
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("chordring: node %d already present", id)
	}
	r.byID[id] = r.nodePoint(id)
	r.rebuild()
	return nil
}

// Leave removes a node; its keys fall to its successor.
func (r *Ring) Leave(id NodeID) error {
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("chordring: node %d not present", id)
	}
	if len(r.byID) == 1 {
		return fmt.Errorf("chordring: cannot remove the last node")
	}
	delete(r.byID, id)
	r.rebuild()
	return nil
}

// Owner returns the node responsible for key: the successor of the
// key's ring point. This is the O(1) oracle answer; Route walks the
// finger tables the way a distributed lookup would.
func (r *Ring) Owner(key string) NodeID {
	return r.ids[r.successorIndex(r.keyPoint(key))]
}

// OwnerDigest is Owner for a key pre-hashed with hashx.Prehash; only
// the per-round mix remains, so batch callers holding digests skip the
// per-byte hash pass.
func (r *Ring) OwnerDigest(d hashx.Digest) NodeID {
	return r.ids[r.successorIndex(r.keyPointDigest(d))]
}

func (r *Ring) keyPoint(key string) point {
	return r.family.Hash(key, 1)
}

// keyPointDigest maps a precomputed key digest onto the circle. Keys
// use round 1; node points use round 0 (see nodePoint), keeping the two
// populations decorrelated.
func (r *Ring) keyPointDigest(d hashx.Digest) point {
	return r.family.HashDigest(d, 1)
}

// Route resolves key starting from the given node, following fingers as
// a distributed Chord lookup would, and returns the owner along with
// the number of hops taken (0 when the start node already owns the
// key). Hops are the paper's "log(n) probes to the data structure".
func (r *Ring) Route(from NodeID, key string) (NodeID, int, error) {
	p, ok := r.byID[from]
	if !ok {
		return 0, 0, fmt.Errorf("chordring: unknown start node %d", from)
	}
	target := r.keyPoint(key)
	cur := r.successorIndex(p)
	// The start node may not own its own point if ids collide; align to
	// the member whose point equals p.
	for r.points[cur] != p {
		cur = (cur + 1) % len(r.points)
	}
	hops := 0
	for hops <= len(r.points) {
		// Does cur own the target? Owner is successor(target): cur owns
		// keys in (pred(cur), cur].
		pred := (cur - 1 + len(r.points)) % len(r.points)
		if inRangeIncl(r.points[pred], r.points[cur], target, len(r.points) == 1) {
			return r.ids[cur], hops, nil
		}
		// Jump along the farthest finger that does not pass the target.
		next := r.closestPreceding(cur, target)
		if next == cur {
			next = r.successorIndex(r.points[cur] + 1) // fall back to successor
		}
		cur = next
		hops++
	}
	return 0, hops, fmt.Errorf("chordring: routing loop for key %q", key)
}

// closestPreceding returns the finger of cur that most closely precedes
// target without reaching it.
func (r *Ring) closestPreceding(cur int, target point) int {
	best := cur
	bestDist := distance(r.points[cur], target)
	for _, f := range r.fingers[cur] {
		if f == cur {
			continue
		}
		// A usable finger lies strictly between cur and target.
		d := distance(r.points[f], target)
		if d < bestDist && d > 0 {
			best = f
			bestDist = d
		}
	}
	return best
}

// distance is the clockwise distance from a to b on the circle.
func distance(a, b point) point { return b - a }

// inRangeIncl reports whether x lies in the clockwise interval (lo, hi]
// on the circle. When single is true (a one-node ring) everything is in
// range.
func inRangeIncl(lo, hi, x point, single bool) bool {
	if single || lo == hi {
		return true
	}
	if lo < hi {
		return x > lo && x <= hi
	}
	return x > lo || x <= hi // interval wraps zero
}

// StateBytes estimates the per-node routing state in bytes: successor +
// fingers, each one (point, id) pair of 12 bytes. Averaged over nodes,
// since finger tables dedupe to distinct entries.
func (r *Ring) StateBytes() int {
	total := 0
	for _, f := range r.fingers {
		total += (len(f) + 1) * 12
	}
	if len(r.fingers) == 0 {
		return 0
	}
	return total / len(r.fingers)
}

// MaxFingerEntries returns the largest finger table on the ring; it is
// O(log n) with high probability.
func (r *Ring) MaxFingerEntries() int {
	max := 0
	for _, f := range r.fingers {
		if len(f) > max {
			max = len(f)
		}
	}
	return max
}

// TheoreticalHops returns ceil(log2 n), the expected hop bound.
func (r *Ring) TheoreticalHops() int {
	if len(r.ids) <= 1 {
		return 0
	}
	return bits.Len(uint(len(r.ids) - 1))
}
