// Package benchfmt parses `go test -bench` output into a stable JSON
// record, gates single metrics against a recorded baseline, and diffs
// whole benchmark files across every shared metric with noise-aware
// thresholds.
//
// It is the engine behind cmd/benchjson (record + gate) and
// cmd/benchdiff (full regression report): the repository's perf
// trajectory is kept in BENCH_*.json files committed at the repo root,
// and both commands read and write this package's File format.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Pkg is the Go package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Name is the full benchmark name including the -GOMAXPROCS
	// suffix, e.g. "BenchmarkBalancerLookupParallel-16".
	Name string `json:"name"`
	// N is the iteration count the reported means were measured over.
	N int64 `json:"n"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op", plus
	// any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Key identifies a benchmark across files: package-qualified name.
func (b Benchmark) Key() string { return b.Pkg + "." + b.Name }

// File is the JSON document benchjson/benchdiff read and write.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves the original benchmark result lines, so benchstat
	// can consume a recorded file via `jq -r '.raw[]'`.
	Raw []string `json:"raw"`
}

// Env formats the file's recording context for report headers.
func (f *File) Env() string {
	parts := make([]string, 0, 3)
	if f.Goos != "" || f.Goarch != "" {
		parts = append(parts, f.Goos+"/"+f.Goarch)
	}
	if f.CPU != "" {
		parts = append(parts, f.CPU)
	}
	parts = append(parts, fmt.Sprintf("%d benchmarks", len(f.Benchmarks)))
	return strings.Join(parts, ", ")
}

// Parse reads `go test -bench` output. Context lines (goos, goarch,
// cpu, pkg) annotate the benchmarks that follow them; multiple
// packages in one stream are handled.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			f.Benchmarks = append(f.Benchmarks, b)
			f.Raw = append(f.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		a, b := f.Benchmarks[i], f.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return f, nil
}

// parseLine parses one benchmark result line: a name, an iteration
// count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], N: n, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// ReadFile loads a recorded BENCH_*.json file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &f, nil
}

// Write marshals f as indented JSON to w.
func Write(f *File, w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile records f at path ("" or "-" means stdout).
func WriteFile(f *File, path string) error {
	if path == "" || path == "-" {
		return Write(f, os.Stdout)
	}
	var buf strings.Builder
	if err := Write(f, &buf); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// CountLike reports whether a metric is a discrete resource count —
// "allocs/op", "B/op" — rather than a timing. Count metrics are exact
// (the runtime counts them, the clock does not jitter them), so a zero
// baseline is an absolute guarantee: any increase from 0 is a real
// regression, where for a timing metric a zero baseline just means the
// value was below the clock's resolution.
func CountLike(metric string) bool {
	switch metric {
	case "allocs/op", "B/op":
		return true
	}
	return false
}

// Gate compares cur against base on one metric. It returns a
// description of every benchmark whose metric regressed beyond tol,
// and the number of benchmarks compared. Benchmarks present in only
// one file are skipped: suites evolve, and gating is about the shared
// surface.
//
// A zero baseline is not a free pass: for count-like metrics
// (allocs/op, B/op) any value above 0 regresses regardless of tol —
// relative tolerance is meaningless against 0, and "0 allocs/op" is
// exactly the kind of guarantee a gate exists to keep. Zero baselines
// on other metrics are skipped (a 0 ns/op baseline is a measurement
// artifact, not a guarantee).
func Gate(base, cur *File, metric string, tol float64) (regressions []string, compared int) {
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			baseline[b.Key()] = v
		}
	}
	for _, b := range cur.Benchmarks {
		v, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		old, ok := baseline[b.Key()]
		if !ok {
			continue
		}
		compared++
		switch {
		case old == 0 && v > 0 && CountLike(metric):
			regressions = append(regressions, fmt.Sprintf("%s: %s 0 -> %.4g (zero baseline is a hard guarantee for count metrics)",
				b.Key(), metric, v))
		case old > 0 && v > old*(1+tol):
			regressions = append(regressions, fmt.Sprintf("%s: %s %.4g -> %.4g (+%.1f%%, tolerance %.0f%%)",
				b.Key(), metric, old, v, (v/old-1)*100, tol*100))
		}
	}
	return regressions, compared
}
