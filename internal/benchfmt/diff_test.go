package benchfmt

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func bench(pkg, name string, metrics map[string]float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, N: 100, Metrics: metrics}
}

// diffFixture builds a deterministic baseline/current pair covering
// every verdict class plus added/removed benchmarks.
func diffFixture() (*File, *File) {
	base := &File{
		Goos: "linux", Goarch: "amd64", CPU: "AMD EPYC 7B13",
		Benchmarks: []Benchmark{
			bench("anurand", "BenchmarkLookup", map[string]float64{"ns/op": 36.0, "B/op": 0, "allocs/op": 0}),
			bench("anurand", "BenchmarkBatch", map[string]float64{"ns/op": 32000, "ns/key": 31.4, "allocs/op": 0}),
			bench("anurand", "BenchmarkTune", map[string]float64{"ns/op": 1500, "allocs/op": 12}),
			bench("anurand", "BenchmarkJitter", map[string]float64{"ns/op": 1.0}),
			bench("anurand", "BenchmarkRemoved", map[string]float64{"ns/op": 10}),
		},
	}
	cur := &File{
		Goos: "linux", Goarch: "amd64", CPU: "AMD EPYC 7B13",
		Benchmarks: []Benchmark{
			// allocs/op regresses from a zero baseline; ns/op within noise.
			bench("anurand", "BenchmarkLookup", map[string]float64{"ns/op": 38.0, "B/op": 0, "allocs/op": 2}),
			// Big ns/op improvement, custom metric regression.
			bench("anurand", "BenchmarkBatch", map[string]float64{"ns/op": 20000, "ns/key": 45.0, "allocs/op": 0}),
			// Plain ns/op regression beyond 30%.
			bench("anurand", "BenchmarkTune", map[string]float64{"ns/op": 2200, "allocs/op": 12}),
			// +40% but 0.4 ns absolute: under the sub-ns floor, stays ok.
			bench("anurand", "BenchmarkJitter", map[string]float64{"ns/op": 1.4}),
			bench("anurand", "BenchmarkAdded", map[string]float64{"ns/op": 5}),
		},
	}
	return base, cur
}

func classOf(t *testing.T, r *Report, key, metric string) Class {
	t.Helper()
	for _, d := range r.Deltas {
		if d.Key == key && d.Metric == metric {
			return d.Class
		}
	}
	t.Fatalf("no delta for %s %s", key, metric)
	return Unchanged
}

func TestDiffClassification(t *testing.T) {
	base, cur := diffFixture()
	r := Diff(base, cur, DefaultThresholds())

	for _, tc := range []struct {
		key, metric string
		want        Class
	}{
		{"anurand.BenchmarkLookup", "allocs/op", ZeroRegression},
		{"anurand.BenchmarkLookup", "ns/op", Unchanged}, // +5.6%, inside 30%
		{"anurand.BenchmarkLookup", "B/op", Unchanged},  // 0 -> 0
		{"anurand.BenchmarkBatch", "ns/op", Improvement},
		{"anurand.BenchmarkBatch", "ns/key", Regression},
		{"anurand.BenchmarkTune", "ns/op", Regression},
		{"anurand.BenchmarkTune", "allocs/op", Unchanged},
		{"anurand.BenchmarkJitter", "ns/op", Unchanged}, // +40% but sub-ns
	} {
		if got := classOf(t, r, tc.key, tc.metric); got != tc.want {
			t.Errorf("%s %s = %v, want %v", tc.key, tc.metric, got, tc.want)
		}
	}

	if len(r.Added) != 1 || r.Added[0] != "anurand.BenchmarkAdded" {
		t.Errorf("Added = %v", r.Added)
	}
	if len(r.Removed) != 1 || r.Removed[0] != "anurand.BenchmarkRemoved" {
		t.Errorf("Removed = %v", r.Removed)
	}
	if !r.HasRegressions() {
		t.Error("HasRegressions = false with three regressions present")
	}
	if got := len(r.Regressions()); got != 3 {
		t.Errorf("Regressions = %d, want 3", got)
	}
	if got := len(r.Improvements()); got != 1 {
		t.Errorf("Improvements = %d, want 1", got)
	}
}

func TestDiffZeroTimingBaselineIsNotRegression(t *testing.T) {
	base := mkFile("ns/op", map[string]float64{"X": 0})
	cur := mkFile("ns/op", map[string]float64{"X": 80})
	r := Diff(base, cur, DefaultThresholds())
	if r.HasRegressions() {
		t.Fatalf("zero ns/op baseline produced a regression: %+v", r.Regressions())
	}
	if c := r.Deltas[0].Change(); !math.IsNaN(c) {
		t.Errorf("Change() on zero baseline = %v, want NaN", c)
	}
}

func TestDiffIdenticalFilesClean(t *testing.T) {
	base, _ := diffFixture()
	r := Diff(base, base, DefaultThresholds())
	if r.HasRegressions() || len(r.Improvements()) != 0 || len(r.Added)+len(r.Removed) != 0 {
		t.Fatalf("self-diff not clean: %+v", r)
	}
}

// TestMarkdownGolden pins the rendered report byte-for-byte; regenerate
// with `go test ./internal/benchfmt -run Golden -update-golden`.
func TestMarkdownGolden(t *testing.T) {
	base, cur := diffFixture()
	r := Diff(base, cur, DefaultThresholds())
	r.BaseLabel = "BENCH_lookup.json"
	r.CurLabel = "fresh run"

	var buf bytes.Buffer
	if err := r.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "diff_report.golden.md")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("markdown report drifted from golden fixture.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Sanity beyond byte equality: the verdict line counts regressions.
	if !strings.Contains(buf.String(), "**3 regressions**") {
		t.Errorf("report missing regression count:\n%s", buf.String())
	}
}
