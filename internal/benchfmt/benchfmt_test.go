package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: anurand
cpu: AMD EPYC 7B13
BenchmarkBalancerLookup              	31680140	        36.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkBalancerLookupParallel      	32079256	        37.98 ns/op	       0 B/op	       0 allocs/op
BenchmarkBalancerLookupBatch         	   35564	     32190 ns/op	        31.44 ns/key	       0 B/op	       0 allocs/op
PASS
ok  	anurand	5.2s
pkg: anurand/internal/hashx
BenchmarkHash-2   	50000000	        21.50 ns/op
PASS
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU != "AMD EPYC 7B13" {
		t.Errorf("context = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	// Sorted by (pkg, name): the three anurand benchmarks first.
	b := f.Benchmarks[0]
	if b.Pkg != "anurand" || b.Name != "BenchmarkBalancerLookup" {
		t.Errorf("first benchmark = %s", b.Key())
	}
	if b.N != 31680140 {
		t.Errorf("N = %d", b.N)
	}
	if got := b.Metrics["ns/op"]; got != 36.00 {
		t.Errorf("ns/op = %v", got)
	}
	if got := b.Metrics["allocs/op"]; got != 0 {
		t.Errorf("allocs/op = %v", got)
	}
	batch := f.Benchmarks[1]
	if batch.Name != "BenchmarkBalancerLookupBatch" {
		t.Fatalf("second benchmark = %s", batch.Name)
	}
	if got := batch.Metrics["ns/key"]; got != 31.44 {
		t.Errorf("custom metric ns/key = %v", got)
	}
	// Multi-package streams: the pkg context line re-annotates.
	last := f.Benchmarks[3]
	if last.Pkg != "anurand/internal/hashx" || last.Name != "BenchmarkHash-2" {
		t.Errorf("last benchmark = %s", last.Key())
	}
	if len(f.Raw) != 4 {
		t.Errorf("raw lines = %d, want 4", len(f.Raw))
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := "BenchmarkBroken notanumber 12 ns/op\nBenchmarkOK 100 12 ns/op\nBenchmarkShort 5\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
}

func TestParseCustomReportMetricUnits(t *testing.T) {
	// b.ReportMetric emits arbitrary units, including ones with odd
	// characters; every (value, unit) pair on the line must survive.
	in := "pkg: p\nBenchmarkX 10 100 ns/op 3.5 rounds/op 0.125 moved-frac 7 msgs/round\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
	m := f.Benchmarks[0].Metrics
	for unit, want := range map[string]float64{
		"ns/op": 100, "rounds/op": 3.5, "moved-frac": 0.125, "msgs/round": 7,
	} {
		if m[unit] != want {
			t.Errorf("%s = %v, want %v", unit, m[unit], want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(f, path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Benchmarks) != len(f.Benchmarks) || g.CPU != f.CPU {
		t.Fatalf("round trip mismatch: %+v", g)
	}
	if g.Benchmarks[1].Metrics["ns/key"] != 31.44 {
		t.Fatalf("custom metric lost in round trip")
	}
}

func mkFile(metric string, vals map[string]float64) *File {
	f := &File{}
	for name, v := range vals {
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Pkg: "p", Name: name, N: 1,
			Metrics: map[string]float64{metric: v},
		})
	}
	return f
}

func TestGate(t *testing.T) {
	base := mkFile("ns/op", map[string]float64{"A": 100, "B": 50, "OnlyBase": 10})
	cur := mkFile("ns/op", map[string]float64{"A": 120, "B": 80, "OnlyCur": 5})

	// A is +20% (within 30%), B is +60% (regression). OnlyBase/OnlyCur
	// appear in one file each and are skipped.
	regs, compared := Gate(base, cur, "ns/op", 0.30)
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "p.B") {
		t.Errorf("regressions = %v, want one for p.B", regs)
	}

	// With a tight tolerance both regress.
	regs, _ = Gate(base, cur, "ns/op", 0.10)
	if len(regs) != 2 {
		t.Errorf("regressions at 10%% tolerance = %v, want 2", regs)
	}

	// Improvements never fail the gate.
	regs, _ = Gate(cur, base, "ns/op", 0.0)
	if len(regs) != 0 {
		t.Errorf("improvements flagged as regressions: %v", regs)
	}
}

// TestGateZeroBaselineCountRegression is the regression test for the
// gate's original blind spot: a benchmark whose baseline was
// 0 allocs/op could regress to any allocation count and still pass,
// because relative comparison requires old > 0.
func TestGateZeroBaselineCountRegression(t *testing.T) {
	base := mkFile("allocs/op", map[string]float64{"Lookup": 0})
	cur := mkFile("allocs/op", map[string]float64{"Lookup": 3})

	regs, compared := Gate(base, cur, "allocs/op", 0.30)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("0 -> 3 allocs/op passed the gate; regressions = %v", regs)
	}
	if !strings.Contains(regs[0], "zero baseline") {
		t.Errorf("regression message does not explain the zero baseline: %q", regs[0])
	}

	// Staying at zero is fine.
	regs, _ = Gate(base, base, "allocs/op", 0)
	if len(regs) != 0 {
		t.Errorf("0 -> 0 flagged: %v", regs)
	}

	// B/op gets the same protection.
	base = mkFile("B/op", map[string]float64{"Lookup": 0})
	cur = mkFile("B/op", map[string]float64{"Lookup": 64})
	if regs, _ := Gate(base, cur, "B/op", 0.30); len(regs) != 1 {
		t.Errorf("0 -> 64 B/op passed the gate; regressions = %v", regs)
	}
}

// TestGateZeroBaselineTimingSkipped pins the asymmetry: a 0 ns/op
// baseline is a clock artifact, not a guarantee, so it never gates.
func TestGateZeroBaselineTimingSkipped(t *testing.T) {
	base := mkFile("ns/op", map[string]float64{"X": 0})
	cur := mkFile("ns/op", map[string]float64{"X": 25})
	if regs, _ := Gate(base, cur, "ns/op", 0.30); len(regs) != 0 {
		t.Errorf("zero ns/op baseline gated: %v", regs)
	}
}

func TestGateAddedRemovedBenchmarksSkipped(t *testing.T) {
	base := mkFile("ns/op", map[string]float64{"Gone": 10, "Kept": 10})
	cur := mkFile("ns/op", map[string]float64{"Kept": 10, "New": 99999})
	regs, compared := Gate(base, cur, "ns/op", 0.30)
	if compared != 1 {
		t.Errorf("compared = %d, want 1 (only the shared benchmark)", compared)
	}
	if len(regs) != 0 {
		t.Errorf("added/removed benchmarks gated: %v", regs)
	}
}

func TestCountLike(t *testing.T) {
	for metric, want := range map[string]bool{
		"allocs/op": true, "B/op": true, "ns/op": false, "ns/key": false, "speedup": false,
	} {
		if CountLike(metric) != want {
			t.Errorf("CountLike(%q) = %v, want %v", metric, !want, want)
		}
	}
}

func TestParseThresholdList(t *testing.T) {
	m, err := ParseThresholdList("ns/op=0.30, allocs/op=0,B/op=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if m["ns/op"] != 0.30 || m["allocs/op"] != 0 || m["B/op"] != 0.05 {
		t.Fatalf("parsed %v", m)
	}
	if m, err := ParseThresholdList(""); err != nil || len(m) != 0 {
		t.Fatalf("empty list: %v, %v", m, err)
	}
	for _, bad := range []string{"ns/op", "=1", "ns/op=abc"} {
		if _, err := ParseThresholdList(bad); err == nil {
			t.Errorf("ParseThresholdList(%q) did not fail", bad)
		}
	}
}
