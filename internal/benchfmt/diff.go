package benchfmt

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Thresholds tunes when a metric delta counts as a real change rather
// than run-to-run noise. Benchmark metrics are costs, so lower is
// better for every classification here.
type Thresholds struct {
	// Default is the relative tolerance applied to any metric without
	// a PerMetric entry: a value above old*(1+Default) regresses, below
	// old*(1-Default) improves.
	Default float64
	// PerMetric overrides the relative tolerance for specific units.
	// A tolerance of 0 means any increase beyond the floor regresses —
	// the right setting for exact count metrics.
	PerMetric map[string]float64
	// Floors are absolute per-metric deltas below which a change is
	// noise no matter the ratio: 0.4 ns on a 1 ns baseline is +40% but
	// still sub-nanosecond clock jitter. A metric without a floor uses
	// 0 (every absolute delta is meaningful).
	Floors map[string]float64
}

// DefaultThresholds returns the repository's gate settings: 30%
// relative tolerance on timings with a half-nanosecond floor, exact
// comparison (tolerance 0, no floor) for allocation counts, and a
// one-word floor for B/op so one stray byte of rounding cannot fail a
// report.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Default: 0.30,
		PerMetric: map[string]float64{
			"allocs/op": 0,
			"B/op":      0,
		},
		Floors: map[string]float64{
			"ns/op":  0.5,
			"ns/key": 0.5,
			"B/op":   8,
		},
	}
}

// tolerance resolves the relative tolerance for a metric.
func (t Thresholds) tolerance(metric string) float64 {
	if tol, ok := t.PerMetric[metric]; ok {
		return tol
	}
	return t.Default
}

// Class is the verdict on one (benchmark, metric) pair.
type Class int

const (
	// Unchanged means the delta is within tolerance or under the noise
	// floor.
	Unchanged Class = iota
	// Improvement means the metric dropped beyond tolerance and floor.
	Improvement
	// Regression means the metric rose beyond tolerance and floor.
	Regression
	// ZeroRegression means a count-like metric regressed from a zero
	// baseline — an absolute guarantee broken, flagged regardless of
	// relative tolerance.
	ZeroRegression
)

// String renders the verdict for reports.
func (c Class) String() string {
	switch c {
	case Improvement:
		return "improvement"
	case Regression:
		return "REGRESSION"
	case ZeroRegression:
		return "REGRESSION (zero baseline)"
	default:
		return "ok"
	}
}

// Delta is one compared (benchmark, metric) pair.
type Delta struct {
	Key    string  // package-qualified benchmark name
	Metric string  // unit, e.g. "ns/op"
	Old    float64 // baseline value
	New    float64 // current value
	Class  Class
}

// Change returns the relative change in percent, or NaN when the
// baseline is zero.
func (d Delta) Change() float64 {
	if d.Old == 0 {
		return math.NaN()
	}
	return (d.New/d.Old - 1) * 100
}

// Report is the outcome of diffing two benchmark files across all
// shared metrics.
type Report struct {
	// BaseLabel and CurLabel name the compared files in the rendered
	// report (file paths, usually).
	BaseLabel, CurLabel string
	// BaseEnv and CurEnv are the recording contexts.
	BaseEnv, CurEnv string
	// Thresholds are the settings the diff ran with.
	Thresholds Thresholds
	// Deltas holds every compared (benchmark, metric) pair in
	// deterministic (key, metric) order.
	Deltas []Delta
	// Added and Removed list benchmarks present in only the current or
	// only the baseline file. They never gate — suites evolve — but a
	// report that hid them would make silent coverage loss look like a
	// clean run.
	Added, Removed []string
}

// Diff compares every metric shared by benchmarks present in both
// files, classifying each pair against th.
func Diff(base, cur *File, th Thresholds) *Report {
	r := &Report{
		BaseEnv:    base.Env(),
		CurEnv:     cur.Env(),
		Thresholds: th,
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Key()] = b
	}
	curKeys := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curKeys[b.Key()] = true
		old, ok := baseBy[b.Key()]
		if !ok {
			r.Added = append(r.Added, b.Key())
			continue
		}
		metrics := make([]string, 0, len(b.Metrics))
		for m := range b.Metrics {
			if _, shared := old.Metrics[m]; shared {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			r.Deltas = append(r.Deltas, classify(b.Key(), m, old.Metrics[m], b.Metrics[m], th))
		}
	}
	for _, b := range base.Benchmarks {
		if !curKeys[b.Key()] {
			r.Removed = append(r.Removed, b.Key())
		}
	}
	sort.Strings(r.Added)
	sort.Strings(r.Removed)
	sort.Slice(r.Deltas, func(i, j int) bool {
		if r.Deltas[i].Key != r.Deltas[j].Key {
			return r.Deltas[i].Key < r.Deltas[j].Key
		}
		return r.Deltas[i].Metric < r.Deltas[j].Metric
	})
	return r
}

// classify applies the noise model to one metric pair.
func classify(key, metric string, old, v float64, th Thresholds) Delta {
	d := Delta{Key: key, Metric: metric, Old: old, New: v}
	diff := v - old
	if math.Abs(diff) <= th.Floors[metric] {
		return d // inside the noise floor, whatever the ratio
	}
	switch {
	case old == 0 && v > 0:
		if CountLike(metric) {
			d.Class = ZeroRegression
		}
		// A timing that was 0 in the baseline carries no information;
		// leave it Unchanged rather than invent an infinite ratio.
	case old > 0 && v > old*(1+th.tolerance(metric)):
		d.Class = Regression
	case old > 0 && v < old*(1-th.tolerance(metric)):
		d.Class = Improvement
	}
	return d
}

// Regressions returns the deltas classified as regressions.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Class == Regression || d.Class == ZeroRegression {
			out = append(out, d)
		}
	}
	return out
}

// Improvements returns the deltas classified as improvements.
func (r *Report) Improvements() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Class == Improvement {
			out = append(out, d)
		}
	}
	return out
}

// HasRegressions reports whether any compared metric regressed.
func (r *Report) HasRegressions() bool { return len(r.Regressions()) > 0 }

// Markdown renders the report as GitHub-flavored markdown: a verdict
// line, the regression/improvement tables, coverage changes, and a
// collapsed full table of every compared pair.
func (r *Report) Markdown(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("## Benchmark diff: %s vs %s\n\n", orDash(r.BaseLabel), orDash(r.CurLabel))
	bw.printf("- baseline: %s\n", r.BaseEnv)
	bw.printf("- current: %s\n", r.CurEnv)
	regs, imps := r.Regressions(), r.Improvements()
	bw.printf("- compared %d (benchmark, metric) pairs: **%d regressions**, %d improvements, %d within noise\n\n",
		len(r.Deltas), len(regs), len(imps), len(r.Deltas)-len(regs)-len(imps))

	if len(regs) > 0 {
		bw.printf("### Regressions\n\n")
		deltaTable(bw, regs)
	}
	if len(imps) > 0 {
		bw.printf("### Improvements\n\n")
		deltaTable(bw, imps)
	}
	if len(r.Added) > 0 || len(r.Removed) > 0 {
		bw.printf("### Coverage changes\n\n")
		for _, k := range r.Added {
			bw.printf("- added: `%s`\n", k)
		}
		for _, k := range r.Removed {
			bw.printf("- removed: `%s` (baseline entry no longer runs — rerecord or restore it)\n", k)
		}
		bw.printf("\n")
	}
	if len(r.Deltas) > 0 {
		bw.printf("<details><summary>All compared metrics</summary>\n\n")
		deltaTable(bw, r.Deltas)
		bw.printf("</details>\n")
	}
	return bw.err
}

// deltaTable writes one markdown table of deltas.
func deltaTable(bw *errWriter, ds []Delta) {
	bw.printf("| benchmark | metric | old | new | change | verdict |\n")
	bw.printf("|---|---|---:|---:|---:|---|\n")
	for _, d := range ds {
		change := "n/a"
		if c := d.Change(); !math.IsNaN(c) {
			change = fmt.Sprintf("%+.1f%%", c)
		}
		bw.printf("| `%s` | %s | %.4g | %.4g | %s | %s |\n",
			d.Key, d.Metric, d.Old, d.New, change, d.Class)
	}
	bw.printf("\n")
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// errWriter latches the first write error so the render path stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// ParseThresholdList parses "ns/op=0.30,allocs/op=0" into a map — the
// CLI form of Thresholds.PerMetric and Thresholds.Floors.
func ParseThresholdList(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		metric, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || metric == "" {
			return nil, fmt.Errorf("bad threshold %q (want metric=value)", pair)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %w", pair, err)
		}
		out[metric] = v
	}
	return out, nil
}
