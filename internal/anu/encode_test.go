package anu

import (
	"testing"

	"anurand/internal/hashx"
)

func TestEncodeDecodeBasic(t *testing.T) {
	m := newTestMap(t, 5)
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}); err != nil {
		t.Fatal(err)
	}
	data := m.Encode()
	dec, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Family().Seed() != m.Family().Seed() {
		t.Error("family seed not preserved")
	}
	for _, id := range m.Servers() {
		if dec.Length(id) != m.Length(id) {
			t.Errorf("server %d length %d != %d", id, dec.Length(id), m.Length(id))
		}
	}
}

func TestSharedStateSizeScalesWithServers(t *testing.T) {
	// The ANU scalability claim: shared state is O(k), independent of
	// how many file sets or how finely load is divided.
	s5 := newTestMap(t, 5).SharedStateSize()
	s10 := newTestMap(t, 10).SharedStateSize()
	s100 := newTestMap(t, 100).SharedStateSize()
	if s10 <= s5 || s100 <= s10 {
		t.Fatalf("sizes not increasing: %d, %d, %d", s5, s10, s100)
	}
	perServer := float64(s100-s5) / 95
	if perServer > 64 {
		t.Errorf("marginal cost %f bytes/server is implausibly large", perServer)
	}
	// Retuning must not grow the state: same servers, same size class.
	m := newTestMap(t, 5)
	base := m.SharedStateSize()
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 30, 2: 5, 3: 70, 4: 9}); err != nil {
		t.Fatal(err)
	}
	if grew := m.SharedStateSize(); grew > 3*base {
		t.Errorf("state grew from %d to %d after one retune", base, grew)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	m := newTestMap(t, 4)
	good := m.Encode()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 1, 4, len(good) / 2, len(good) - 1} {
			if _, err := Decode(good[:cut]); err == nil {
				t.Errorf("Decode accepted truncation at %d", cut)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted bad magic")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0xde, 0xad)
		if _, err := Decode(bad); err == nil {
			t.Error("Decode accepted trailing bytes")
		}
	})
	t.Run("bit flips never panic", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0x55
			// Either a clean error or a valid map; panics fail the test.
			if dec, err := Decode(bad); err == nil {
				if err := dec.CheckInvariants(); err != nil {
					t.Fatalf("flip at %d produced invalid map: %v", i, err)
				}
			}
		}
	})
}

func TestDecodeRejectsDoubleOwnership(t *testing.T) {
	// Hand-craft a payload where two servers claim partition 0.
	m, err := New(hashx.NewFamily(0), []ServerID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	data := m.Encode()
	// Find the second server's first full partition index and point it
	// at partition 0 as well. Layout: magic(4) seed(8) bits(1) k(4),
	// then per server: id(4) nfull(4) full... partial(4) plen(8).
	off := 4 + 8 + 1 + 4
	// Server 0 record.
	nfull0 := int(uint32(data[off+4]) | uint32(data[off+5])<<8 | uint32(data[off+6])<<16 | uint32(data[off+7])<<24)
	rec0 := 4 + 4 + 4*nfull0 + 4 + 8
	// Server 1 record: overwrite its first full index with 0 if it has one.
	s1 := off + rec0
	nfull1 := int(uint32(data[s1+4]) | uint32(data[s1+5])<<8 | uint32(data[s1+6])<<16 | uint32(data[s1+7])<<24)
	if nfull0 == 0 || nfull1 == 0 {
		t.Skip("layout has no full partitions to corrupt")
	}
	idx0 := data[off+8 : off+12]
	copy(data[s1+8:s1+12], idx0)
	if _, err := Decode(data); err == nil {
		t.Fatal("Decode accepted doubly-owned partition")
	}
}
