package anu

// The multiple-choice heuristic from SIEVE (Brinkmann et al.), which
// the paper cites as an ingredient of its m/n + 1 load bound ("a
// multiple choice heuristic that we have not described"): instead of
// placing a file set at the first probe that lands in a mapped region,
// examine the first d distinct candidate servers along the probe chain
// and keep the least-loaded one. The classic power-of-d-choices effect
// collapses the O(lg n / lg lg n) imbalance of single-choice hashing to
// O(lg lg n).
//
// The chosen placement depends on load, so it is not re-derivable from
// the map alone: a cluster using it must remember the choice (one probe
// index per file set) or re-run the choice deterministically from the
// same load snapshot. LookupChoices exposes the candidate chain so
// callers can manage that state; LookupD implements the common case.

// Candidate is one distinct server encountered along a probe chain.
type Candidate struct {
	Server ServerID
	// Probes is the number of hash probes consumed up to and including
	// this candidate's hit (1-based). Re-probing the chain with this
	// count reproduces the hit deterministically.
	Probes int
}

// LookupChoices returns the first d distinct servers hit by name's probe
// chain, in probe order. It spends at most the map's probe budget; if
// fewer than d distinct servers are found within it, the shorter list is
// returned (never empty while any region is mapped — the rank fallback
// supplies a final candidate).
func (m *Map) LookupChoices(name string, d int) []Candidate {
	if d < 1 {
		d = 1
	}
	var out []Candidate
	seen := make(map[ServerID]bool, d)
	var first Ticks
	for r := 0; r < m.maxProbes && len(out) < d; r++ {
		x := Ticks(m.family.Unit(name, r, uint64(Unit)))
		if r == 0 {
			first = x
		}
		owner := m.OwnerAt(x)
		if owner == NoServer || seen[owner] {
			continue
		}
		seen[owner] = true
		out = append(out, Candidate{Server: owner, Probes: r + 1})
	}
	if len(out) == 0 {
		if fb := m.rankFallback(first); fb != NoServer {
			out = append(out, Candidate{Server: fb, Probes: m.maxProbes})
		}
	}
	return out
}

// LookupD places name on the least-loaded of its first d candidate
// servers, where load is the caller's metric (assigned file sets,
// bytes, offered work). Ties keep the earliest candidate, so d=1
// degenerates exactly to Lookup. The returned probe count reproduces
// the decision chain.
func (m *Map) LookupD(name string, d int, load func(ServerID) float64) (ServerID, int) {
	cands := m.LookupChoices(name, d)
	if len(cands) == 0 {
		return NoServer, m.maxProbes
	}
	best := cands[0]
	if load != nil {
		bestLoad := load(best.Server)
		for _, c := range cands[1:] {
			if l := load(c.Server); l < bestLoad {
				best, bestLoad = c, l
			}
		}
	}
	return best.Server, best.Probes
}
