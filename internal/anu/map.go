// Package anu implements adaptive, non-uniform (ANU) randomization, the
// load-placement technique of Wu and Burns (HPDC 2004), derived from the
// SIEVE adaptive hashing strategy of Brinkmann et al.
//
// Workload units (file sets) are hashed onto a discrete unit interval.
// Servers own non-overlapping "mapped regions" of that interval; a file
// set is served by the owner of its hashed offset, and offsets that land
// in unmapped space are re-hashed with the next member of an agreed hash
// family until they land in a mapped region. The geometry obeys three
// invariants from the paper:
//
//   - the interval is divided into P = 2^(ceil(lg k)+1) equal partitions
//     for k servers;
//   - a partition is owned by at most one server, which occupies either
//     the whole partition or a prefix of it, and each server has at most
//     one such prefix-partial partition;
//   - the mapped regions of all servers sum to exactly half of the
//     interval (the half-occupancy invariant), which guarantees a free
//     partition always exists for a recovering or newly added server and
//     bounds the expected number of lookup probes at two.
//
// Load is balanced by scaling the region lengths (see Controller) rather
// than by moving explicit assignments, so the only shared state is the
// region table itself — O(k), versus O(number of virtual processors) for
// virtual-processor schemes.
//
// All interval arithmetic is integer fixed point: the unit interval is
// [0, Unit) ticks with Unit = 1<<62, so partition widths (powers of two)
// and the half-occupancy sum are exact.
package anu

import (
	"fmt"
	"math/bits"
	"sort"

	"anurand/internal/hashx"
)

// Ticks measures positions and lengths on the discrete unit interval.
type Ticks uint64

const (
	// UnitBits is the log2 of the interval resolution.
	UnitBits = 62
	// Unit is the length of the whole unit interval in ticks.
	Unit Ticks = 1 << UnitBits
	// Half is the exact total length of all mapped regions (the
	// half-occupancy invariant).
	Half Ticks = Unit / 2
)

// Float converts a tick count to a fraction of the unit interval.
func (t Ticks) Float() float64 { return float64(t) / float64(Unit) }

// TicksOf converts a fraction of the unit interval to ticks, clamping to
// [0, Unit].
func TicksOf(f float64) Ticks {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return Unit
	}
	return Ticks(f * float64(Unit))
}

// ServerID identifies a server in the map. IDs are assigned by the
// caller and are stable across failure and recovery.
type ServerID int32

// NoServer marks unowned partitions and failed lookups.
const NoServer ServerID = -1

// DefaultMaxProbes bounds the re-hash chain. Under half occupancy each
// probe misses with probability 1/2, so 64 probes fail with probability
// 2^-64; the deterministic rank fallback below makes lookup total anyway.
const DefaultMaxProbes = 64

// partInfo describes one partition of the interval.
type partInfo struct {
	owner ServerID // NoServer when free
	occ   Ticks    // occupied prefix length; == width means fully owned
}

// region is one server's mapped region: whole partitions plus at most
// one prefix-partial partition.
type region struct {
	id         ServerID
	full       []int32 // fully owned partitions, in acquisition order
	partial    int32   // index of the prefix-partial partition, -1 if none
	partialLen Ticks
	length     Ticks // cached total mapped length
}

// Map is the ANU placement map: the assignment of servers to regions of
// the unit interval. It is the system's only replicated state. Map is
// not safe for concurrent mutation; the cluster layer serializes tuning.
type Map struct {
	family    hashx.Family
	partBits  uint
	parts     []partInfo
	regions   map[ServerID]*region
	order     []ServerID // sorted ids, kept for deterministic iteration
	maxProbes int

	// total caches the sum of all region lengths (Half, or 0 when every
	// server has failed). SetLengths maintains it, so the lookup
	// fallback and share reporting never rescan the partitions.
	total Ticks

	// freed buffers the partitions released during the current
	// SetLengths call. Growers claim these "warm" partitions before
	// virgin ones: warm space was already mapped, so re-owning it only
	// moves the shrinker's keys, while mapping virgin space also
	// captures keys that previously re-hashed past it to other servers.
	freed []int32
}

// New creates a map over the given servers with equal-length regions
// (the paper's cold start: with no knowledge of capabilities, servers
// start uniform). The partition count is 2^(ceil(lg k)+1). New returns
// an error if ids is empty or contains duplicates or negative ids.
func New(family hashx.Family, ids []ServerID) (*Map, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("anu: New: no servers")
	}
	m := &Map{
		family:    family,
		partBits:  partitionBits(len(ids)),
		regions:   make(map[ServerID]*region, len(ids)),
		maxProbes: DefaultMaxProbes,
	}
	m.parts = make([]partInfo, 1<<m.partBits)
	for i := range m.parts {
		m.parts[i].owner = NoServer
	}
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("anu: New: negative server id %d", id)
		}
		if _, dup := m.regions[id]; dup {
			return nil, fmt.Errorf("anu: New: duplicate server id %d", id)
		}
		m.regions[id] = &region{id: id, partial: -1}
		m.order = append(m.order, id)
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })

	lengths := equalLengths(m.order, Half)
	if err := m.SetLengths(lengths); err != nil {
		return nil, fmt.Errorf("anu: New: initial layout: %w", err)
	}
	return m, nil
}

// partitionBits returns ceil(lg k)+1, so the partition count is
// 2^(ceil(lg k)+1) as the paper prescribes.
func partitionBits(k int) uint {
	lg := bits.Len(uint(k - 1)) // ceil(lg k) for k >= 1
	b := uint(lg) + 1
	if b > UnitBits {
		b = UnitBits
	}
	return b
}

// equalLengths splits total into len(ids) near-equal tick counts that
// sum exactly to total, assigning the remainder one tick at a time in id
// order.
func equalLengths(ids []ServerID, total Ticks) map[ServerID]Ticks {
	k := Ticks(len(ids))
	base := total / k
	rem := total % k
	lengths := make(map[ServerID]Ticks, len(ids))
	for i, id := range ids {
		l := base
		if Ticks(i) < rem {
			l++
		}
		lengths[id] = l
	}
	return lengths
}

// Family returns the hash family the map addresses with.
func (m *Map) Family() hashx.Family { return m.family }

// K returns the number of servers in the map (including zero-length,
// i.e. failed, servers).
func (m *Map) K() int { return len(m.regions) }

// Partitions returns the current partition count P.
func (m *Map) Partitions() int { return len(m.parts) }

// Width returns the partition width in ticks.
func (m *Map) Width() Ticks { return Unit >> m.partBits }

// Servers returns the server ids in ascending order.
func (m *Map) Servers() []ServerID {
	out := make([]ServerID, len(m.order))
	copy(out, m.order)
	return out
}

// Has reports whether id is in the map.
func (m *Map) Has(id ServerID) bool {
	_, ok := m.regions[id]
	return ok
}

// Length returns the mapped-region length of id in ticks (zero if the
// server is absent or failed).
func (m *Map) Length(id ServerID) Ticks {
	r, ok := m.regions[id]
	if !ok {
		return 0
	}
	return r.length
}

// Lengths returns a copy of all region lengths.
func (m *Map) Lengths() map[ServerID]Ticks {
	out := make(map[ServerID]Ticks, len(m.regions))
	for id, r := range m.regions {
		out[id] = r.length
	}
	return out
}

// TotalMapped returns the sum of all region lengths. It equals Half
// whenever at least one server has nonzero length.
func (m *Map) TotalMapped() Ticks { return m.total }

// SetMaxProbes overrides the re-hash probe budget (for ablation).
// Values < 1 are clamped to 1.
func (m *Map) SetMaxProbes(n int) {
	if n < 1 {
		n = 1
	}
	m.maxProbes = n
}

// OwnerAt returns the server owning tick x, or NoServer if x is
// unmapped. Partition widths are powers of two, so the partition index
// and intra-partition offset are a shift and a mask, not a division.
func (m *Map) OwnerAt(x Ticks) ServerID {
	if x >= Unit {
		return NoServer
	}
	shift := UnitBits - m.partBits
	p := &m.parts[x>>shift]
	if p.owner == NoServer {
		return NoServer
	}
	if x&(Ticks(1)<<shift-1) < p.occ {
		return p.owner
	}
	return NoServer
}

// Lookup maps a file-set name to its serving server, returning the
// number of hash probes used (>= 1). The chain h_0, h_1, … is probed
// until an offset lands in a mapped region; after maxProbes misses the
// deterministic rank fallback assigns the name by ranking its first
// offset into the mapped measure, so lookup is total whenever any server
// has nonzero length. If the map is entirely empty, Lookup returns
// (NoServer, probes).
func (m *Map) Lookup(name string) (ServerID, int) {
	return m.LookupDigest(hashx.Prehash(name))
}

// LookupDigest is Lookup for a name pre-hashed with hashx.Prehash —
// the allocation-free hot path for callers that can cache digests
// (batch routers, the simulator's per-request placement). The probe
// chain hashes the digest against the family's precomputed per-round
// tweaks, so each probe is two multiplies and a table read.
func (m *Map) LookupDigest(d hashx.Digest) (ServerID, int) {
	shift := UnitBits - m.partBits
	mask := Ticks(1)<<shift - 1
	var first Ticks
	for r := 0; r < m.maxProbes; r++ {
		// Top UnitBits bits of the 64-bit hash, i.e. Unit()'s mapping
		// onto [0, Unit).
		x := Ticks(m.family.HashDigest(d, r) >> (64 - UnitBits))
		if r == 0 {
			first = x
		}
		p := &m.parts[x>>shift]
		if p.owner != NoServer && x&mask < p.occ {
			return p.owner, r + 1
		}
	}
	return m.rankFallback(first), m.maxProbes
}

// rankFallback deterministically maps x into the mapped measure: the
// point x/Unit * mapped-total is located within the concatenation of
// occupied prefixes in partition order.
func (m *Map) rankFallback(x Ticks) ServerID {
	total := m.TotalMapped()
	if total == 0 {
		return NoServer
	}
	// target in [0, total): scale x from [0, Unit) using 128-bit math
	// to avoid overflow.
	target := mulShift(x, total)
	var cum Ticks
	for i := range m.parts {
		p := &m.parts[i]
		if p.owner == NoServer || p.occ == 0 {
			continue
		}
		cum += p.occ
		if target < cum {
			return p.owner
		}
	}
	// Rounding at the very top of the range: return the last owner.
	for i := len(m.parts) - 1; i >= 0; i-- {
		if m.parts[i].owner != NoServer && m.parts[i].occ > 0 {
			return m.parts[i].owner
		}
	}
	return NoServer
}

// mulShift computes floor(x * total / Unit) without overflow.
func mulShift(x, total Ticks) Ticks {
	hi, lo := bits.Mul64(uint64(x), uint64(total))
	return Ticks(hi<<(64-UnitBits) | lo>>UnitBits)
}

// Segment is a half-open interval [Start, End) of the unit interval
// owned by one server.
type Segment struct {
	Start, End Ticks
	Owner      ServerID
}

// Segments returns the mapped regions as a sorted list of disjoint
// segments, the geometry view used for state encoding, movement
// accounting and display.
func (m *Map) Segments() []Segment {
	w := m.Width()
	var segs []Segment
	for i := range m.parts {
		p := &m.parts[i]
		if p.owner == NoServer || p.occ == 0 {
			continue
		}
		start := Ticks(i) * w
		segs = append(segs, Segment{Start: start, End: start + p.occ, Owner: p.owner})
	}
	// Merge adjacent segments with the same owner (a full partition
	// followed by the owner's next partition).
	merged := segs[:0]
	for _, s := range segs {
		if n := len(merged); n > 0 && merged[n-1].Owner == s.Owner && merged[n-1].End == s.Start {
			merged[n-1].End = s.End
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// Clone returns a deep copy of the map, used to snapshot state before a
// tuning step for movement accounting.
func (m *Map) Clone() *Map {
	c := &Map{
		family:    m.family,
		partBits:  m.partBits,
		parts:     append([]partInfo(nil), m.parts...),
		regions:   make(map[ServerID]*region, len(m.regions)),
		order:     append([]ServerID(nil), m.order...),
		maxProbes: m.maxProbes,
		total:     m.total,
	}
	for id, r := range m.regions {
		c.regions[id] = &region{
			id:         r.id,
			full:       append([]int32(nil), r.full...),
			partial:    r.partial,
			partialLen: r.partialLen,
			length:     r.length,
		}
	}
	return c
}
