package anu

import (
	"fmt"
	"math"
	"testing"

	"anurand/internal/rng"
)

func TestSetWeightsProportions(t *testing.T) {
	m := newTestMap(t, 5)
	weights := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	if err := m.SetWeights(weights); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for id, w := range weights {
		got := m.Length(ServerID(id)).Float()
		want := w / 25 * 0.5
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("server %d: length %.6f of interval, want %.6f", id, got, want)
		}
	}
}

func TestSetWeightsErrors(t *testing.T) {
	m := newTestMap(t, 3)
	cases := map[string]map[ServerID]float64{
		"negative":      {0: 1, 1: -1, 2: 1},
		"NaN":           {0: 1, 1: math.NaN(), 2: 1},
		"all zero":      {0: 0, 1: 0, 2: 0},
		"missing id":    {0: 1, 1: 1},
		"unknown id":    {0: 1, 1: 1, 9: 1},
		"extra entries": {0: 1, 1: 1, 2: 1, 3: 1},
	}
	for name, w := range cases {
		if err := m.SetWeights(w); err == nil {
			t.Errorf("SetWeights(%s) succeeded", name)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("failed SetWeights corrupted the map: %v", err)
	}
}

func TestSetLengthsRejectsBadSum(t *testing.T) {
	m := newTestMap(t, 2)
	if err := m.SetLengths(map[ServerID]Ticks{0: Half, 1: 1}); err == nil {
		t.Fatal("SetLengths with sum != Half succeeded")
	}
}

func TestLengthsFromWeightsExactTotal(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		k := 1 + src.Intn(20)
		weights := make(map[ServerID]float64, k)
		for i := 0; i < k; i++ {
			weights[ServerID(i)] = src.Float64() * 100
		}
		// Ensure at least one positive weight.
		weights[0] += 1
		lengths, err := LengthsFromWeights(weights, Half)
		if err != nil {
			t.Fatal(err)
		}
		var sum Ticks
		for _, l := range lengths {
			sum += l
		}
		if sum != Half {
			t.Fatalf("trial %d: lengths sum to %d, want %d", trial, sum, Half)
		}
	}
}

func TestScalingPreservesUntouchedOwners(t *testing.T) {
	m := newTestMap(t, 5)
	before := m.Clone()
	// A modest retune: server 0 sheds ~20% to server 4.
	l := m.Lengths()
	delta := l[0] / 5
	l[0] -= delta
	l[4] += delta
	if err := m.SetLengths(l); err != nil {
		t.Fatal(err)
	}
	// A transfer of delta touches at most 2*delta of measure: the
	// prefix-partial geometry means the grower cannot always claim the
	// exact slivers the shrinker released mid-partition.
	moved := MovedMeasure(before, m)
	if moved > 2*delta {
		t.Fatalf("moved measure %d exceeds 2x the length change %d (not minimal movement)", moved, delta)
	}
	if moved == 0 {
		t.Fatal("expected some movement")
	}
	// Locality: the shrinking server's new region is a subset of its
	// old one (it shrank in place, nothing relocated), and the growing
	// server kept everything it had.
	for _, s := range m.Segments() {
		if s.Owner != ServerID(0) {
			continue
		}
		for _, x := range []Ticks{s.Start, (s.Start + s.End) / 2, s.End - 1} {
			if before.OwnerAt(x) != ServerID(0) {
				t.Fatalf("shrinking server gained tick %d it did not own before", x)
			}
		}
	}
	for _, s := range before.Segments() {
		if s.Owner != ServerID(4) {
			continue
		}
		for _, x := range []Ticks{s.Start, (s.Start + s.End) / 2, s.End - 1} {
			if m.OwnerAt(x) != ServerID(4) {
				t.Fatalf("growing server lost tick %d it owned before", x)
			}
		}
	}
}

func TestScalingMovedMeasureBound(t *testing.T) {
	// Movement is at most the total absolute length change: shrinkers
	// release exactly their decrease and growers claim only free or
	// released space.
	src := rng.New(7)
	m := newTestMap(t, 8)
	for round := 0; round < 50; round++ {
		before := m.Clone()
		weights := make(map[ServerID]float64, 8)
		for _, id := range m.Servers() {
			weights[id] = 0.1 + src.Float64()
		}
		if err := m.SetWeights(weights); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var totalDelta Ticks
		for _, id := range m.Servers() {
			a, b := before.Length(id), m.Length(id)
			if a > b {
				totalDelta += a - b
			} else {
				totalDelta += b - a
			}
		}
		if moved := MovedMeasure(before, m); moved > totalDelta {
			t.Fatalf("round %d: moved %d > total length change %d", round, moved, totalDelta)
		}
	}
}

func TestRepartitionMovesNothing(t *testing.T) {
	m := newTestMap(t, 5)
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}); err != nil {
		t.Fatal(err)
	}
	before := m.Clone()
	if err := m.Repartition(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Partitions() != 2*before.Partitions() {
		t.Fatalf("partitions %d, want doubled %d", m.Partitions(), 2*before.Partitions())
	}
	if moved := MovedMeasure(before, m); moved != 0 {
		t.Fatalf("repartition moved %d ticks, want 0", moved)
	}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("fs-%d", i)
		a, _ := before.Lookup(name)
		b, _ := m.Lookup(name)
		if a != b {
			t.Fatalf("repartition changed Lookup(%q): %d -> %d", name, a, b)
		}
	}
}

func TestAddServerGrowsPartitionsWhenNeeded(t *testing.T) {
	m := newTestMap(t, 4) // 8 partitions
	if err := m.AddServer(4); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Partitions() != 16 {
		t.Fatalf("partitions after add = %d, want 16 (k=5 needs 2^4)", m.Partitions())
	}
	if m.K() != 5 {
		t.Fatalf("K = %d, want 5", m.K())
	}
	// The newcomer gets an equal 1/5 share of the half.
	want := float64(Half) / 5
	if got := float64(m.Length(4)); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("new server length %g, want %g", got, want)
	}
}

func TestAddServerPreservesProportions(t *testing.T) {
	m := newTestMap(t, 5)
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddServer(5); err != nil {
		t.Fatal(err)
	}
	// Old servers keep their relative order and ratios (scaled back).
	r10 := float64(m.Length(1)) / float64(m.Length(0))
	if math.Abs(r10-3) > 0.01 {
		t.Errorf("ratio length(1)/length(0) = %g, want ~3 after scale-back", r10)
	}
	if m.TotalMapped() != Half {
		t.Errorf("total mapped %d after add, want %d", m.TotalMapped(), Half)
	}
}

func TestAddServerErrors(t *testing.T) {
	m := newTestMap(t, 3)
	if err := m.AddServer(1); err == nil {
		t.Error("adding duplicate id succeeded")
	}
	if err := m.AddServer(-1); err == nil {
		t.Error("adding negative id succeeded")
	}
}

func TestFailRedistributesToSurvivors(t *testing.T) {
	m := newTestMap(t, 5)
	before := m.Clone()
	if err := m.Fail(2); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Length(2) != 0 {
		t.Fatalf("failed server keeps length %d", m.Length(2))
	}
	if m.TotalMapped() != Half {
		t.Fatalf("total mapped %d after failure, want %d", m.TotalMapped(), Half)
	}
	// Only file sets served by the failed server should move.
	movedOthers := 0
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("fs-%d", i)
		a, _ := before.Lookup(name)
		b, _ := m.Lookup(name)
		if a != ServerID(2) && a != b {
			movedOthers++
		}
		if b == ServerID(2) {
			t.Fatalf("Lookup(%q) still routes to the failed server", name)
		}
	}
	// Survivors grow, so some of their boundary mass can shift; the
	// paper's claim is locality, not literal zero. Keep it small.
	if frac := float64(movedOthers) / 2000; frac > 0.30 {
		t.Fatalf("%.1f%% of surviving file sets moved on failure, want small", frac*100)
	}
}

func TestFailUnknownAndIdempotent(t *testing.T) {
	m := newTestMap(t, 3)
	if err := m.Fail(99); err == nil {
		t.Error("Fail(unknown) succeeded")
	}
	if err := m.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(1); err != nil {
		t.Fatalf("second Fail errored: %v", err)
	}
}

func TestFailAllThenRecover(t *testing.T) {
	m := newTestMap(t, 3)
	for _, id := range m.Servers() {
		if err := m.Fail(id); err != nil {
			t.Fatal(err)
		}
	}
	if m.TotalMapped() != 0 {
		t.Fatalf("all failed but mapped measure = %d", m.TotalMapped())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Recover(1); err != nil {
		t.Fatal(err)
	}
	if m.Length(1) != Half {
		t.Fatalf("sole survivor length %d, want the whole half %d", m.Length(1), Half)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverAfterFail(t *testing.T) {
	m := newTestMap(t, 5)
	if err := m.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Recover(0); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := float64(Half) / 5
	if got := float64(m.Length(0)); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("recovered length %g, want equal share %g", got, want)
	}
	// Recover on a live server is a no-op.
	before := m.Lengths()
	if err := m.Recover(0); err != nil {
		t.Fatal(err)
	}
	if changed(before, m.Lengths()) {
		t.Fatal("Recover on a live server changed lengths")
	}
}

func TestRemoveServerForgetsID(t *testing.T) {
	m := newTestMap(t, 5)
	if err := m.RemoveServer(3); err != nil {
		t.Fatal(err)
	}
	if m.Has(3) {
		t.Fatal("removed server still present")
	}
	if m.K() != 4 {
		t.Fatalf("K = %d after removal, want 4", m.K())
	}
	if m.TotalMapped() != Half {
		t.Fatalf("total mapped %d after removal, want %d", m.TotalMapped(), Half)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveServer(3); err == nil {
		t.Fatal("removing twice succeeded")
	}
}

func TestCommissionDecommissionCycle(t *testing.T) {
	// The paper's "clusters on demand": servers come and go repeatedly;
	// geometry must stay valid throughout.
	m := newTestMap(t, 3)
	next := ServerID(3)
	src := rng.New(11)
	for round := 0; round < 100; round++ {
		if src.Float64() < 0.5 && m.K() < 20 {
			if err := m.AddServer(next); err != nil {
				t.Fatalf("round %d add: %v", round, err)
			}
			next++
		} else if m.K() > 1 {
			ids := m.Servers()
			if err := m.RemoveServer(ids[src.Intn(len(ids))]); err != nil {
				t.Fatalf("round %d remove: %v", round, err)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if m.TotalMapped() != Half {
			t.Fatalf("round %d: total %d", round, m.TotalMapped())
		}
	}
}

// TestFigure3Scenario reproduces the paper's Figure 3: four servers in
// eight partitions with a highly skewed assignment (server 0 holding
// almost all the mapped half), then a fifth server is added, which
// repartitions the interval and still finds a free partition.
func TestFigure3Scenario(t *testing.T) {
	m := newTestMap(t, 4)
	if m.Partitions() != 8 {
		t.Fatalf("k=4 gives %d partitions, want 8", m.Partitions())
	}
	if err := m.SetWeights(map[ServerID]float64{0: 97, 1: 1, 2: 1, 3: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.AddServer(4); err != nil {
		t.Fatalf("adding the fifth server: %v", err)
	}
	if m.Partitions() != 16 {
		t.Fatalf("partitions after add = %d, want 16", m.Partitions())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Length(4) == 0 {
		t.Fatal("added server got no region")
	}
}
