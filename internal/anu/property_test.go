package anu

import (
	"fmt"
	"testing"
	"testing/quick"

	"anurand/internal/hashx"
	"anurand/internal/rng"
)

// opScript drives a map through a random sequence of mutations and
// checks every invariant after every step. This is the load-bearing
// property test for the geometry engine.
func TestPropertyRandomOperationSequences(t *testing.T) {
	prop := func(seed uint64, kRaw uint8, steps uint8) bool {
		k := int(kRaw%10) + 1
		src := rng.New(seed)
		ids := make([]ServerID, k)
		for i := range ids {
			ids[i] = ServerID(i)
		}
		m, err := New(hashx.NewFamily(seed), ids)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		next := ServerID(k)
		for step := 0; step < int(steps%64)+1; step++ {
			switch src.Intn(6) {
			case 0: // random retune
				weights := make(map[ServerID]float64, m.K())
				for _, id := range m.Servers() {
					weights[id] = src.Float64()
				}
				weights[m.Servers()[0]] += 0.01 // keep at least one positive
				if err := m.SetWeights(weights); err != nil {
					t.Logf("step %d SetWeights: %v", step, err)
					return false
				}
			case 1: // fail a random server
				ids := m.Servers()
				if err := m.Fail(ids[src.Intn(len(ids))]); err != nil {
					t.Logf("step %d Fail: %v", step, err)
					return false
				}
			case 2: // recover a random server
				ids := m.Servers()
				if err := m.Recover(ids[src.Intn(len(ids))]); err != nil {
					t.Logf("step %d Recover: %v", step, err)
					return false
				}
			case 3: // add
				if m.K() < 24 {
					if err := m.AddServer(next); err != nil {
						t.Logf("step %d Add: %v", step, err)
						return false
					}
					next++
				}
			case 4: // remove
				if m.K() > 1 {
					ids := m.Servers()
					if err := m.RemoveServer(ids[src.Intn(len(ids))]); err != nil {
						t.Logf("step %d Remove: %v", step, err)
						return false
					}
				}
			case 5: // repartition explicitly
				if m.Partitions() < 1<<12 {
					if err := m.Repartition(); err != nil {
						t.Logf("step %d Repartition: %v", step, err)
						return false
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("step %d invariants: %v", step, err)
				return false
			}
			if total := m.TotalMapped(); total != Half && total != 0 {
				t.Logf("step %d: total %d", step, total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLookupTotalOnLiveMaps verifies lookup totality: whenever
// any server has a nonzero region, every name resolves to a live server.
func TestPropertyLookupTotalOnLiveMaps(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		src := rng.New(seed)
		ids := make([]ServerID, k)
		for i := range ids {
			ids[i] = ServerID(i)
		}
		m, err := New(hashx.NewFamily(seed^0xabc), ids)
		if err != nil {
			return false
		}
		weights := make(map[ServerID]float64, k)
		for _, id := range ids {
			weights[id] = src.Float64() * src.Float64() // skewed
		}
		weights[ids[src.Intn(k)]] += 0.5
		if err := m.SetWeights(weights); err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			id, probes := m.Lookup(fmt.Sprintf("name-%d-%d", seed, i))
			if id == NoServer {
				t.Logf("lookup miss with mapped measure %d", m.TotalMapped())
				return false
			}
			if m.Length(id) == 0 {
				t.Logf("lookup returned zero-length server %d", id)
				return false
			}
			if probes < 1 || probes > m.maxProbes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMovementBounded asserts the minimal-movement guarantee
// across random retunes: the interval measure that changes owner is
// bounded by the total length change requested.
func TestPropertyMovementBounded(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		k := 2 + src.Intn(9)
		ids := make([]ServerID, k)
		for i := range ids {
			ids[i] = ServerID(i)
		}
		m, err := New(hashx.NewFamily(seed), ids)
		if err != nil {
			return false
		}
		for round := 0; round < 10; round++ {
			before := m.Clone()
			weights := make(map[ServerID]float64, k)
			for _, id := range ids {
				weights[id] = 0.05 + src.Float64()
			}
			if err := m.SetWeights(weights); err != nil {
				return false
			}
			var delta Ticks
			for _, id := range ids {
				a, b := before.Length(id), m.Length(id)
				if a > b {
					delta += a - b
				} else {
					delta += b - a
				}
			}
			if MovedMeasure(before, m) > delta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncodeDecodeRoundTrip checks that the wire format is
// lossless over random map states.
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		k := 1 + src.Intn(12)
		ids := make([]ServerID, k)
		for i := range ids {
			ids[i] = ServerID(i * 3) // non-contiguous ids
		}
		m, err := New(hashx.NewFamily(seed), ids)
		if err != nil {
			return false
		}
		weights := make(map[ServerID]float64, k)
		for _, id := range ids {
			weights[id] = 0.01 + src.Float64()
		}
		if err := m.SetWeights(weights); err != nil {
			return false
		}
		dec, err := Decode(m.Encode())
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if dec.Partitions() != m.Partitions() || dec.K() != m.K() {
			return false
		}
		if MovedMeasure(m, dec) != 0 {
			t.Log("decoded map has different geometry")
			return false
		}
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("fs-%d", i)
			a, _ := m.Lookup(name)
			b, _ := dec.Lookup(name)
			if a != b {
				t.Logf("lookup diverged for %q", name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
