package anu

import (
	"fmt"
	"testing"
)

func TestLookupChoicesDistinctAndOrdered(t *testing.T) {
	m := newTestMap(t, 5)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("fs-%d", i)
		cands := m.LookupChoices(name, 3)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %q", name)
		}
		seen := map[ServerID]bool{}
		prev := 0
		for _, c := range cands {
			if seen[c.Server] {
				t.Fatalf("duplicate candidate server %d", c.Server)
			}
			seen[c.Server] = true
			if c.Probes <= prev {
				t.Fatalf("probe counts not increasing: %+v", cands)
			}
			prev = c.Probes
		}
	}
}

func TestLookupChoicesFirstMatchesLookup(t *testing.T) {
	m := newTestMap(t, 5)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("key-%d", i)
		id, probes := m.Lookup(name)
		cands := m.LookupChoices(name, 4)
		if cands[0].Server != id || cands[0].Probes != probes {
			t.Fatalf("first candidate (%d,%d) != Lookup (%d,%d)",
				cands[0].Server, cands[0].Probes, id, probes)
		}
	}
}

func TestLookupDOneChoiceEqualsLookup(t *testing.T) {
	m := newTestMap(t, 7)
	counter := map[ServerID]float64{}
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("n-%d", i)
		a, pa := m.Lookup(name)
		b, pb := m.LookupD(name, 1, func(id ServerID) float64 { return counter[id] })
		if a != b || pa != pb {
			t.Fatalf("d=1 diverges from Lookup for %q", name)
		}
	}
}

func TestLookupDNilLoadKeepsFirst(t *testing.T) {
	m := newTestMap(t, 5)
	a, _ := m.Lookup("some-key")
	b, _ := m.LookupD("some-key", 3, nil)
	if a != b {
		t.Fatalf("nil load should keep the first candidate: %d vs %d", a, b)
	}
}

// TestPowerOfTwoChoicesReducesImbalance places many keys with d=1 and
// d=2 and checks the classic effect: the most-loaded server's excess
// over the mean shrinks substantially with two choices.
func TestPowerOfTwoChoicesReducesImbalance(t *testing.T) {
	const keys = 20000
	imbalance := func(d int) float64 {
		m := newTestMap(t, 8)
		counts := map[ServerID]float64{}
		for i := 0; i < keys; i++ {
			id, _ := m.LookupD(fmt.Sprintf("k-%d", i), d, func(s ServerID) float64 { return counts[s] })
			counts[id]++
		}
		mean := float64(keys) / 8
		worst := 0.0
		for _, c := range counts {
			if over := c - mean; over > worst {
				worst = over
			}
		}
		return worst
	}
	one, two := imbalance(1), imbalance(2)
	if two >= one {
		t.Fatalf("two choices (excess %.0f) not better than one (excess %.0f)", two, one)
	}
	if two > one/2 {
		t.Fatalf("two choices should at least halve the excess: %.0f vs %.0f", two, one)
	}
}

func TestLookupDRespectsRegionSkew(t *testing.T) {
	// Even with d choices, only mapped servers are candidates: a failed
	// server must never be selected.
	m := newTestMap(t, 4)
	if err := m.Fail(2); err != nil {
		t.Fatal(err)
	}
	counts := map[ServerID]float64{}
	for i := 0; i < 2000; i++ {
		id, _ := m.LookupD(fmt.Sprintf("x-%d", i), 3, func(s ServerID) float64 { return counts[s] })
		if id == ServerID(2) {
			t.Fatal("failed server chosen")
		}
		counts[id]++
	}
}

func TestLookupChoicesEmptyMap(t *testing.T) {
	m := newTestMap(t, 2)
	if err := m.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(1); err != nil {
		t.Fatal(err)
	}
	m.SetMaxProbes(4)
	if cands := m.LookupChoices("anything", 2); len(cands) != 0 {
		t.Fatalf("candidates on empty map: %+v", cands)
	}
	if id, _ := m.LookupD("anything", 2, nil); id != NoServer {
		t.Fatalf("LookupD on empty map returned %d", id)
	}
}

func BenchmarkLookupD2(b *testing.B) {
	ids := make([]ServerID, 16)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	m, err := New(testFamily(), ids)
	if err != nil {
		b.Fatal(err)
	}
	loads := make(map[ServerID]float64, 16)
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("fileset-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _ := m.LookupD(names[i&1023], 2, func(s ServerID) float64 { return loads[s] })
		loads[id]++
	}
}
