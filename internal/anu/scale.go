package anu

import (
	"fmt"
	"math"
	"sort"
)

// SetLengths retunes the mapped-region lengths to the given targets,
// moving the minimum measure of the interval: shrinking servers release
// space from the tail of their regions first (their partial partition,
// then their most recently acquired full partitions) and growing servers
// extend their partial before claiming free partitions, so untouched
// space keeps its owner and file-set caches stay warm (load locality,
// Section 4 of the paper).
//
// The targets must cover exactly the servers in the map and sum to Half
// (or to zero, the all-failed state). Otherwise the map is left
// unchanged and an error is returned.
func (m *Map) SetLengths(lengths map[ServerID]Ticks) error {
	if len(lengths) != len(m.regions) {
		return fmt.Errorf("anu: SetLengths: got %d lengths for %d servers", len(lengths), len(m.regions))
	}
	var sum Ticks
	for id, l := range lengths {
		if _, ok := m.regions[id]; !ok {
			return fmt.Errorf("anu: SetLengths: unknown server %d", id)
		}
		sum += l
	}
	if sum != Half && sum != 0 {
		return fmt.Errorf("anu: SetLengths: lengths sum to %d, want %d (half occupancy)", sum, Half)
	}

	// Shrink phase: release space before anyone grows, so the free
	// pool is maximal when claims happen.
	m.freed = m.freed[:0]
	for _, id := range m.order {
		r := m.regions[id]
		if target := lengths[id]; target < r.length {
			m.release(r, r.length-target)
		}
	}
	// Grow phase.
	for _, id := range m.order {
		r := m.regions[id]
		if target := lengths[id]; target > r.length {
			m.acquire(r, target-r.length)
		}
	}
	m.total = sum
	return nil
}

// SetWeights retunes region lengths proportionally to the given
// non-negative weights (normalized to half occupancy with exact tick
// accounting). A zero weight empties the server's region; all-zero
// weights are an error unless the map is already empty.
func (m *Map) SetWeights(weights map[ServerID]float64) error {
	lengths, err := LengthsFromWeights(weights, Half)
	if err != nil {
		return fmt.Errorf("anu: SetWeights: %w", err)
	}
	return m.SetLengths(lengths)
}

// LengthsFromWeights converts float weights into tick lengths summing
// exactly to total, using floor-then-distribute rounding so no server is
// off by more than a tick per adjustment round.
func LengthsFromWeights(weights map[ServerID]float64, total Ticks) (map[ServerID]Ticks, error) {
	ids := make([]ServerID, 0, len(weights))
	var sumW float64
	for id, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("weight for server %d is invalid: %g", id, w)
		}
		sumW += w
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no weights")
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if sumW == 0 {
		return nil, fmt.Errorf("all weights are zero")
	}
	lengths := make(map[ServerID]Ticks, len(ids))
	var assigned Ticks
	for _, id := range ids {
		l := Ticks(weights[id] / sumW * float64(total))
		if l > total {
			l = total
		}
		lengths[id] = l
		assigned += l
	}
	// Float rounding leaves a small signed discrepancy; settle it one
	// tick at a time round-robin over positive-weight servers.
	for assigned != total {
		for _, id := range ids {
			if assigned == total {
				break
			}
			if assigned < total {
				if weights[id] > 0 {
					lengths[id]++
					assigned++
				}
			} else if lengths[id] > 0 {
				lengths[id]--
				assigned--
			}
		}
	}
	return lengths, nil
}

// release gives back amount ticks from the tail of r's region.
func (m *Map) release(r *region, amount Ticks) {
	w := m.Width()
	// Release the partial prefix first.
	if r.partial >= 0 && amount > 0 {
		take := r.partialLen
		if take > amount {
			take = amount
		}
		r.partialLen -= take
		r.length -= take
		amount -= take
		m.parts[r.partial].occ = r.partialLen
		if r.partialLen == 0 {
			m.freed = append(m.freed, r.partial)
			m.parts[r.partial].owner = NoServer
			r.partial = -1
		}
	}
	// Then whole partitions, most recently acquired first.
	for amount >= w && len(r.full) > 0 {
		p := r.full[len(r.full)-1]
		r.full = r.full[:len(r.full)-1]
		m.parts[p] = partInfo{owner: NoServer}
		m.freed = append(m.freed, p)
		r.length -= w
		amount -= w
	}
	// A remaining sliver converts the last full partition into the
	// (single) partial.
	if amount > 0 && len(r.full) > 0 {
		p := r.full[len(r.full)-1]
		r.full = r.full[:len(r.full)-1]
		r.partial = p
		r.partialLen = w - amount
		m.parts[p].occ = r.partialLen
		r.length -= amount
		amount = 0
	}
	if amount > 0 {
		// Caller asked to release more than the region holds; this is
		// a programming error because SetLengths validates totals.
		panic(fmt.Sprintf("anu: release: server %d short by %d ticks", r.id, amount))
	}
}

// acquire extends r's region by amount ticks from free space. Whole
// partitions are claimed first (preferring warm, just-released ones —
// see Map.freed), and only the sub-partition remainder maps virgin
// ticks via the partial prefix, minimizing collateral key movement.
func (m *Map) acquire(r *region, amount Ticks) {
	w := m.Width()
	// Claim free partitions wholly while a full width is needed.
	for amount >= w {
		p := m.takeFree(r.id)
		m.parts[p] = partInfo{owner: r.id, occ: w}
		r.full = append(r.full, p)
		r.length += w
		amount -= w
	}
	// Extend the existing partial toward a full partition.
	if r.partial >= 0 && amount > 0 {
		take := w - r.partialLen
		if take > amount {
			take = amount
		}
		r.partialLen += take
		r.length += take
		amount -= take
		m.parts[r.partial].occ = r.partialLen
		if r.partialLen == w {
			r.full = append(r.full, r.partial)
			r.partial = -1
			r.partialLen = 0
		}
	}
	// A final sliver becomes the new partial.
	if amount > 0 {
		p := m.takeFree(r.id)
		m.parts[p] = partInfo{owner: r.id, occ: amount}
		r.partial = p
		r.partialLen = amount
		r.length += amount
	}
}

// takeFree returns a free partition, preferring ones released earlier
// in the same retune (warm) and falling back to the lowest-index free
// partition. The half-occupancy invariant guarantees one exists;
// exhaustion is a bug, not a runtime condition.
func (m *Map) takeFree(for_ ServerID) int32 {
	for len(m.freed) > 0 {
		p := m.freed[0]
		m.freed = m.freed[1:]
		if m.parts[p].owner == NoServer {
			return p
		}
	}
	for i := range m.parts {
		if m.parts[i].owner == NoServer {
			return int32(i)
		}
	}
	panic(fmt.Sprintf("anu: no free partition while growing server %d (half-occupancy invariant violated)", for_))
}

// Repartition doubles the partition count. Every partition splits in
// two; full partitions become two full halves and a partial prefix is
// re-expressed over the finer grid. No ownership measure moves and no
// hash function changes (unlike linear hashing), so repartitioning never
// relocates load. It returns an error at the resolution cap.
func (m *Map) Repartition() error {
	if m.partBits+1 > UnitBits {
		return fmt.Errorf("anu: Repartition: at resolution cap (2^%d partitions)", m.partBits)
	}
	oldParts := m.parts
	m.partBits++
	newW := m.Width()
	m.parts = make([]partInfo, len(oldParts)*2)
	for id := range m.regions {
		r := m.regions[id]
		r.full = r.full[:0]
		r.partial = -1
		r.partialLen = 0
	}
	for i := range m.parts {
		m.parts[i].owner = NoServer
	}
	for i, old := range oldParts {
		if old.owner == NoServer || old.occ == 0 {
			continue
		}
		r := m.regions[old.owner]
		lo, hi := int32(2*i), int32(2*i+1)
		switch {
		case old.occ >= 2*newW: // was full
			m.parts[lo] = partInfo{owner: old.owner, occ: newW}
			m.parts[hi] = partInfo{owner: old.owner, occ: newW}
			r.full = append(r.full, lo, hi)
		case old.occ > newW: // spills into the upper half
			m.parts[lo] = partInfo{owner: old.owner, occ: newW}
			r.full = append(r.full, lo)
			m.parts[hi] = partInfo{owner: old.owner, occ: old.occ - newW}
			r.partial = hi
			r.partialLen = old.occ - newW
		case old.occ == newW: // exactly the lower half
			m.parts[lo] = partInfo{owner: old.owner, occ: newW}
			r.full = append(r.full, lo)
		default: // a prefix of the lower half
			m.parts[lo] = partInfo{owner: old.owner, occ: old.occ}
			r.partial = lo
			r.partialLen = old.occ
		}
	}
	return nil
}

// AddServer commissions a new server: the interval is repartitioned if
// the partition count would fall below 2^(ceil(lg k)+1) for the new k,
// the newcomer receives an equal (1/k) share of the mapped half, and
// every other server scales back proportionally.
func (m *Map) AddServer(id ServerID) error {
	if id < 0 {
		return fmt.Errorf("anu: AddServer: negative server id %d", id)
	}
	if _, dup := m.regions[id]; dup {
		return fmt.Errorf("anu: AddServer: server %d already present", id)
	}
	k := len(m.regions) + 1
	for m.partBits < partitionBits(k) {
		if err := m.Repartition(); err != nil {
			return err
		}
	}
	m.regions[id] = &region{id: id, partial: -1}
	m.order = append(m.order, id)
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })

	share := Half / Ticks(k)
	return m.scaleOthersAndSet(id, share)
}

// Recover restores a failed (zero-length) server to an equal 1/k share
// of the mapped half, scaling the others back. Recovering a server with
// a nonzero region is a no-op.
func (m *Map) Recover(id ServerID) error {
	r, ok := m.regions[id]
	if !ok {
		return fmt.Errorf("anu: Recover: unknown server %d", id)
	}
	if r.length > 0 {
		return nil
	}
	live := 1
	for _, other := range m.regions {
		if other.id != id && other.length > 0 {
			live++
		}
	}
	return m.scaleOthersAndSet(id, Half/Ticks(live))
}

// scaleOthersAndSet assigns share ticks to id and rescales all other
// regions proportionally so the total stays at Half.
func (m *Map) scaleOthersAndSet(id ServerID, share Ticks) error {
	weights := make(map[ServerID]float64, len(m.regions))
	var others Ticks
	for sid, r := range m.regions {
		if sid != id {
			others += r.length
		}
	}
	if others == 0 {
		// Everyone else is empty: the newcomer takes the whole half.
		share = Half
	}
	for sid, r := range m.regions {
		switch {
		case sid == id:
			weights[sid] = float64(share)
		case others == 0:
			weights[sid] = 0
		default:
			weights[sid] = float64(r.length) * float64(Half-share) / float64(others)
		}
	}
	lengths, err := LengthsFromWeights(weights, Half)
	if err != nil {
		return err
	}
	return m.SetLengths(lengths)
}

// Fail records a server failure: its mapped region drops to zero and the
// survivors grow proportionally, preserving half occupancy. Only file
// sets previously served by the failed server move (they re-hash into
// the survivors' regions).
func (m *Map) Fail(id ServerID) error {
	r, ok := m.regions[id]
	if !ok {
		return fmt.Errorf("anu: Fail: unknown server %d", id)
	}
	if r.length == 0 {
		return nil
	}
	weights := make(map[ServerID]float64, len(m.regions))
	anyOther := false
	for sid, other := range m.regions {
		if sid == id {
			weights[sid] = 0
			continue
		}
		weights[sid] = float64(other.length)
		if other.length > 0 {
			anyOther = true
		}
	}
	if !anyOther {
		// Last live server failing empties the map.
		lengths := make(map[ServerID]Ticks, len(m.regions))
		for sid := range m.regions {
			lengths[sid] = 0
		}
		return m.SetLengths(lengths)
	}
	return m.SetWeights(weights)
}

// RemoveServer decommissions a server entirely: its load is failed over
// to the survivors and the id is forgotten. The partition count is not
// reduced (the paper never shrinks P; re-hashing is unaffected).
func (m *Map) RemoveServer(id ServerID) error {
	if _, ok := m.regions[id]; !ok {
		return fmt.Errorf("anu: RemoveServer: unknown server %d", id)
	}
	if err := m.Fail(id); err != nil {
		return err
	}
	delete(m.regions, id)
	for i, sid := range m.order {
		if sid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}
