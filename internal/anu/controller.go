package anu

import (
	"fmt"
	"math"
	"sort"
)

// Report is one server's performance sample for a tuning interval, as
// sent to the elected delegate. Latency is the mean response time of the
// Requests completed during the interval; a server that completed
// nothing reports Requests == 0 and its Latency is ignored.
type Report struct {
	Server   ServerID
	Requests uint64
	Latency  float64
	// Failed marks a server known to be down; the controller drives its
	// region to zero regardless of latency.
	Failed bool
}

// ControllerConfig tunes the delegate's feedback rule. The zero value is
// not useful; start from DefaultControllerConfig.
type ControllerConfig struct {
	// Gamma is the feedback exponent: a server's region is scaled by
	// (average/latency)^Gamma. Smaller values damp the response.
	Gamma float64

	// MaxStep clamps the per-round growth multiplier so a single noisy
	// interval cannot swing a region wildly upward (growth risks
	// overloading the grower, so it is damped harder than shrinking).
	MaxStep float64

	// MaxShrink clamps the per-round shrink multiplier to 1/MaxShrink.
	// Shedding an overloaded server is urgent — its queue is already
	// hurting every request it holds — so shrinking may act faster
	// than growth.
	MaxShrink float64

	// DeadBand suppresses scaling entirely when every reporting
	// server's latency is within (1±DeadBand) of the average; this is
	// the hysteresis that stops load movement once the system is
	// balanced (Figure 7's flat tail).
	DeadBand float64

	// MinWeight is the smallest relative weight (fraction of the mean
	// region length) a live server may shrink to. A tiny-but-nonzero
	// floor keeps an overwhelmed server addressable so it can regrow if
	// it ever reports a below-average latency again; zero lets regions
	// vanish entirely.
	MinWeight float64

	// Smoothing is the exponential moving average coefficient applied
	// to reported latencies (0 = use raw reports, 0.5 = half old half
	// new). Smoothing trades convergence speed for stability under the
	// heavy-tailed arrival process.
	Smoothing float64

	// IdleGrowth is the multiplier applied to a live server that
	// completed no requests this interval. Values > 1 let idle servers
	// slowly regain addressable space; 1 leaves them untouched (the
	// paper lets extremely weak servers sit idle).
	IdleGrowth float64
}

// DefaultControllerConfig returns the configuration used by the paper
// reproduction experiments.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Gamma:      0.2,
		MaxStep:    1.4,
		MaxShrink:  1.4,
		DeadBand:   0.20,
		MinWeight:  0.001,
		Smoothing:  0.3,
		IdleGrowth: 1.0,
	}
}

// Validate reports the first nonsensical parameter.
func (c ControllerConfig) Validate() error {
	switch {
	case !(c.Gamma > 0) || c.Gamma > 4:
		return fmt.Errorf("anu: controller Gamma %g outside (0, 4]", c.Gamma)
	case !(c.MaxStep > 1):
		return fmt.Errorf("anu: controller MaxStep %g must exceed 1", c.MaxStep)
	case !(c.MaxShrink > 1):
		return fmt.Errorf("anu: controller MaxShrink %g must exceed 1", c.MaxShrink)
	case c.DeadBand < 0 || c.DeadBand >= 1:
		return fmt.Errorf("anu: controller DeadBand %g outside [0, 1)", c.DeadBand)
	case c.MinWeight < 0 || c.MinWeight >= 1:
		return fmt.Errorf("anu: controller MinWeight %g outside [0, 1)", c.MinWeight)
	case c.Smoothing < 0 || c.Smoothing >= 1:
		return fmt.Errorf("anu: controller Smoothing %g outside [0, 1)", c.Smoothing)
	case !(c.IdleGrowth >= 1) || c.IdleGrowth > 4:
		return fmt.Errorf("anu: controller IdleGrowth %g outside [1, 4]", c.IdleGrowth)
	}
	return nil
}

// Advisory flags a server the delegate considers incompetent for the
// current cluster: its region has been pinned at the minimum-weight
// floor (or zero) for several consecutive rounds while other servers
// carry the load. The paper: "ANU randomization identifies such
// incompetent components and notifies administrators."
type Advisory struct {
	Server ServerID
	// Rounds is how many consecutive tuning rounds the server has spent
	// at the floor.
	Rounds int
}

// Controller implements the delegate's region-scaling rule: it examines
// the latencies reported for an interval, computes the request-weighted
// system average, and scales each server's mapped region down if it ran
// above average and up if below, within damping limits.
//
// The controller is deliberately stateless in the paper's sense: a new
// delegate elected after a failure reconstructs identical behaviour from
// the same reports. The only memory is the optional latency EWMA, which
// is an optimization, not correctness state — Reset clears it.
type Controller struct {
	cfg     ControllerConfig
	ewma    map[ServerID]float64
	rounds  uint64
	atFloor map[ServerID]int
}

// NewController returns a Controller with the given configuration,
// panicking on an invalid one (configuration is programmer input).
func NewController(cfg ControllerConfig) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{
		cfg:     cfg,
		ewma:    make(map[ServerID]float64),
		atFloor: make(map[ServerID]int),
	}
}

// Config returns the controller's configuration.
func (c *Controller) Config() ControllerConfig { return c.cfg }

// Rounds returns how many tuning rounds have been applied.
func (c *Controller) Rounds() uint64 { return c.rounds }

// Reset discards the latency smoothing state, as a newly elected
// delegate would.
func (c *Controller) Reset() {
	c.ewma = make(map[ServerID]float64)
	c.atFloor = make(map[ServerID]int)
}

// advisoryRounds is how many consecutive floor rounds mark a server
// incompetent.
const advisoryRounds = 5

// Advisories lists the servers currently considered incompetent: live
// members whose regions have sat at (or below) the minimum-weight floor
// for at least advisoryRounds consecutive tuning rounds. The cluster
// operator decides whether to decommission them.
func (c *Controller) Advisories() []Advisory {
	var out []Advisory
	for id, n := range c.atFloor {
		if n >= advisoryRounds {
			out = append(out, Advisory{Server: id, Rounds: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	return out
}

// trackFloor updates the consecutive-floor counters after a tuning
// round. mean is the mean region length of live servers.
func (c *Controller) trackFloor(m *Map) {
	live := 0
	var total Ticks
	for _, id := range m.Servers() {
		if l := m.Length(id); l > 0 {
			live++
			total += l
		}
	}
	if live == 0 {
		return
	}
	// The floor from Tune's weight clamp, expressed in ticks, with a
	// small tolerance for rounding.
	floor := Ticks(float64(total) * c.cfg.MinWeight / float64(live) * 1.5)
	for _, id := range m.Servers() {
		l := m.Length(id)
		if l > 0 && l <= floor {
			c.atFloor[id]++
		} else {
			delete(c.atFloor, id)
		}
	}
}

// Average returns the request-weighted mean latency across reports,
// the delegate's "average value for the whole system". Failed and idle
// servers do not contribute. The second result is false when no server
// completed any request.
func Average(reports []Report) (float64, bool) {
	var sum float64
	var n uint64
	for _, r := range reports {
		if r.Failed || r.Requests == 0 {
			continue
		}
		sum += r.Latency * float64(r.Requests)
		n += r.Requests
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Tune applies one feedback round to the map and reports whether any
// region length changed. The reports must cover a subset of the map's
// servers; servers without a report are treated as idle.
func (c *Controller) Tune(m *Map, reports []Report) (bool, error) {
	c.rounds++
	byID := make(map[ServerID]Report, len(reports))
	for _, r := range reports {
		if !m.Has(r.Server) {
			return false, fmt.Errorf("anu: Tune: report for unknown server %d", r.Server)
		}
		byID[r.Server] = r
	}

	smoothed := c.smooth(byID)
	avg, ok := weightedAverage(byID, smoothed)
	if !ok {
		// Nothing completed anywhere: only act on failures.
		return c.tuneFailuresOnly(m, byID)
	}

	if c.inDeadBand(m, byID, smoothed, avg) {
		// Balanced within tolerance; still honour failures.
		return c.tuneFailuresOnly(m, byID)
	}

	lengths := m.Lengths()
	weights := make(map[ServerID]float64, len(lengths))
	var live []ServerID
	for id, l := range lengths {
		weights[id] = float64(l)
		r, reported := byID[id]
		switch {
		case reported && r.Failed:
			weights[id] = 0
			continue
		case !reported || r.Requests == 0:
			weights[id] = float64(l) * c.cfg.IdleGrowth
		default:
			// Servers individually inside the dead band hold their
			// weight; only out-of-band servers scale. This keeps one
			// noisy outlier from perturbing every boundary.
			if avg > 0 && math.Abs(smoothed[id]-avg)/avg <= c.cfg.DeadBand {
				break
			}
			mult := math.Pow(avg/smoothed[id], c.cfg.Gamma)
			if mult > c.cfg.MaxStep {
				mult = c.cfg.MaxStep
			} else if mult < 1/c.cfg.MaxShrink {
				mult = 1 / c.cfg.MaxShrink
			}
			weights[id] = float64(l) * mult
		}
		live = append(live, id)
	}
	if len(live) == 0 {
		return c.tuneFailuresOnly(m, byID)
	}

	// Floor live weights so no addressable server disappears entirely.
	if c.cfg.MinWeight > 0 {
		var total float64
		for _, id := range live {
			total += weights[id]
		}
		floor := c.cfg.MinWeight * total / float64(len(live))
		for _, id := range live {
			if weights[id] < floor {
				weights[id] = floor
			}
		}
	}
	// If every live server's region had already collapsed to zero (for
	// example after a report blackout marked the whole cluster failed),
	// multiplicative scaling cannot restart it: re-bootstrap the live
	// servers with equal shares, the same cold-start rule as New.
	var total float64
	for _, id := range live {
		total += weights[id]
	}
	if total == 0 {
		for _, id := range live {
			weights[id] = 1
		}
	}

	before := m.Lengths()
	if err := m.SetWeights(weights); err != nil {
		return false, err
	}
	c.trackFloor(m)
	return changed(before, m.Lengths()), nil
}

// smooth folds the new reports into the EWMA state and returns the
// effective latency per reporting, non-failed, non-idle server.
func (c *Controller) smooth(byID map[ServerID]Report) map[ServerID]float64 {
	out := make(map[ServerID]float64, len(byID))
	for id, r := range byID {
		if r.Failed || r.Requests == 0 {
			continue
		}
		prev, seen := c.ewma[id]
		v := r.Latency
		if seen && c.cfg.Smoothing > 0 {
			v = c.cfg.Smoothing*prev + (1-c.cfg.Smoothing)*r.Latency
		}
		c.ewma[id] = v
		out[id] = v
	}
	return out
}

func weightedAverage(byID map[ServerID]Report, smoothed map[ServerID]float64) (float64, bool) {
	var sum float64
	var n uint64
	for id, lat := range smoothed {
		req := byID[id].Requests
		sum += lat * float64(req)
		n += req
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func (c *Controller) inDeadBand(m *Map, byID map[ServerID]Report, smoothed map[ServerID]float64, avg float64) bool {
	if c.cfg.DeadBand == 0 || avg == 0 {
		return false
	}
	if m.TotalMapped() == 0 {
		// A fully collapsed map is never "balanced": the scaling pass
		// must run so live servers can be re-bootstrapped.
		return false
	}
	for id, r := range byID {
		if r.Failed {
			if m.Length(id) > 0 {
				return false // a failure always acts
			}
			continue
		}
		if r.Requests == 0 {
			continue
		}
		if dev := math.Abs(smoothed[id]-avg) / avg; dev > c.cfg.DeadBand {
			return false
		}
	}
	return true
}

// tuneFailuresOnly zeroes failed servers' regions and leaves everything
// else proportionally unchanged.
func (c *Controller) tuneFailuresOnly(m *Map, byID map[ServerID]Report) (bool, error) {
	any := false
	ids := make([]ServerID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if byID[id].Failed && m.Length(id) > 0 {
			if err := m.Fail(id); err != nil {
				return any, err
			}
			any = true
		}
	}
	return any, nil
}

func changed(a, b map[ServerID]Ticks) bool {
	for id, l := range a {
		if b[id] != l {
			return true
		}
	}
	return false
}
