package anu_test

import (
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/hashx"
)

// The map's lifecycle: equal start, feedback tuning, failure handling.
func Example() {
	family := hashx.NewFamily(42)
	m, err := anu.New(family, []anu.ServerID{0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("partitions:", m.Partitions())
	fmt.Println("half occupancy:", m.TotalMapped() == anu.Half)

	// The delegate scales regions from latency reports.
	ctl := anu.NewController(anu.DefaultControllerConfig())
	for i := 0; i < 30; i++ {
		if _, err := ctl.Tune(m, []anu.Report{
			{Server: 0, Requests: 100, Latency: 4.0}, // slow
			{Server: 1, Requests: 100, Latency: 1.0},
			{Server: 2, Requests: 100, Latency: 1.0},
			{Server: 3, Requests: 100, Latency: 1.0},
		}); err != nil {
			panic(err)
		}
	}
	fmt.Println("slow server shrank:", m.Length(0) < m.Length(1))
	fmt.Println("still half occupancy:", m.TotalMapped() == anu.Half)
	// Output:
	// partitions: 8
	// half occupancy: true
	// slow server shrank: true
	// still half occupancy: true
}

// Lookup re-hashes until an offset lands in a mapped region — two
// probes in expectation under half occupancy.
func ExampleMap_Lookup() {
	m, _ := anu.New(hashx.NewFamily(1), []anu.ServerID{0, 1, 2})
	owner, probes := m.Lookup("/var/data/fs-17")
	fmt.Println("owned:", owner != anu.NoServer, "probes >= 1:", probes >= 1)
	// The same name always resolves identically.
	again, _ := m.Lookup("/var/data/fs-17")
	fmt.Println("deterministic:", owner == again)
	// Output:
	// owned: true probes >= 1: true
	// deterministic: true
}

// The wire encoding is the cluster's entire replicated state.
func ExampleMap_Encode() {
	m, _ := anu.New(hashx.NewFamily(9), []anu.ServerID{0, 1, 2, 3, 4})
	data := m.Encode()
	peer, err := anu.Decode(data)
	if err != nil {
		panic(err)
	}
	a, _ := m.Lookup("some/file/set")
	b, _ := peer.Lookup("some/file/set")
	fmt.Println("replica agrees:", a == b)
	fmt.Println("O(k) bytes:", len(data) < 256)
	// Output:
	// replica agrees: true
	// O(k) bytes: true
}

// Adding a server repartitions without moving existing load.
func ExampleMap_AddServer() {
	m, _ := anu.New(hashx.NewFamily(4), []anu.ServerID{0, 1, 2, 3})
	before, _ := m.Lookup("fs/alpha")
	_ = before
	fmt.Println("partitions:", m.Partitions())
	if err := m.AddServer(4); err != nil {
		panic(err)
	}
	fmt.Println("partitions:", m.Partitions())
	fmt.Println("newcomer share ~1/5:", m.Length(4) > 0)
	// Output:
	// partitions: 8
	// partitions: 16
	// newcomer share ~1/5: true
}
