package anu

import (
	"testing"

	"anurand/internal/hashx"
)

// FuzzDecode hammers the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must satisfy the map invariants
// and re-encode decodably.
func FuzzDecode(f *testing.F) {
	m, err := New(hashx.NewFamily(3), []ServerID{0, 1, 2, 3, 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(m.Encode())
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 5, 2: 2, 3: 9, 4: 4}); err != nil {
		f.Fatal(err)
	}
	f.Add(m.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x55, 0x4e, 0x41})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		if err := dec.CheckInvariants(); err != nil {
			t.Fatalf("accepted payload violates invariants: %v", err)
		}
		round, err := Decode(dec.Encode())
		if err != nil {
			t.Fatalf("re-encode of accepted map not decodable: %v", err)
		}
		if round.K() != dec.K() || round.Partitions() != dec.Partitions() {
			t.Fatal("re-encode round trip changed the map")
		}
	})
}
