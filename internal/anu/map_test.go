package anu

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"anurand/internal/hashx"
)

func newTestMap(t *testing.T, k int) *Map {
	t.Helper()
	ids := make([]ServerID, k)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	m, err := New(hashx.NewFamily(42), ids)
	if err != nil {
		t.Fatalf("New(%d servers): %v", k, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("fresh map violates invariants: %v", err)
	}
	return m
}

func TestNewErrors(t *testing.T) {
	fam := hashx.NewFamily(1)
	if _, err := New(fam, nil); err == nil {
		t.Error("New with no servers succeeded")
	}
	if _, err := New(fam, []ServerID{1, 1}); err == nil {
		t.Error("New with duplicate ids succeeded")
	}
	if _, err := New(fam, []ServerID{-3}); err == nil {
		t.Error("New with negative id succeeded")
	}
}

func TestPartitionCountMatchesPaper(t *testing.T) {
	// P = 2^(ceil(lg k)+1): k=1 -> 2, k=2 -> 4, k=3..4 -> 8,
	// k=5..8 -> 16, k=9..16 -> 32.
	cases := map[int]int{1: 2, 2: 4, 3: 8, 4: 8, 5: 16, 8: 16, 9: 32, 16: 32, 17: 64}
	for k, wantP := range cases {
		m := newTestMap(t, k)
		if got := m.Partitions(); got != wantP {
			t.Errorf("k=%d: %d partitions, want %d", k, got, wantP)
		}
	}
}

func TestHalfOccupancyAtStart(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 7, 12, 100} {
		m := newTestMap(t, k)
		if got := m.TotalMapped(); got != Half {
			t.Errorf("k=%d: total mapped %d, want exactly %d", k, got, Half)
		}
	}
}

func TestInitialLengthsEqual(t *testing.T) {
	m := newTestMap(t, 5)
	want := Half / 5
	for _, id := range m.Servers() {
		l := m.Length(id)
		if l != want && l != want+1 {
			t.Errorf("server %d initial length %d, want ~%d", id, l, want)
		}
	}
}

func TestLookupReturnsOwner(t *testing.T) {
	m := newTestMap(t, 5)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("fileset-%d", i)
		id, probes := m.Lookup(name)
		if id == NoServer {
			t.Fatalf("Lookup(%q) found no server", name)
		}
		if probes < 1 {
			t.Fatalf("Lookup(%q) reported %d probes", name, probes)
		}
		// The returned server must actually own one of the probed
		// offsets (or be the rank fallback, which needs maxProbes).
		if probes < m.maxProbes {
			x := Ticks(m.family.Unit(name, probes-1, uint64(Unit)))
			if got := m.OwnerAt(x); got != id {
				t.Fatalf("Lookup(%q)=%d but probe %d offset is owned by %d", name, id, probes-1, got)
			}
		}
	}
}

func TestLookupDeterministic(t *testing.T) {
	m := newTestMap(t, 5)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("fs/%d", i)
		a, pa := m.Lookup(name)
		b, pb := m.Lookup(name)
		if a != b || pa != pb {
			t.Fatalf("Lookup(%q) not deterministic: (%d,%d) vs (%d,%d)", name, a, pa, b, pb)
		}
	}
}

func TestLookupExpectedProbesAboutTwo(t *testing.T) {
	m := newTestMap(t, 5)
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		_, probes := m.Lookup(fmt.Sprintf("fileset-%d", i))
		total += probes
	}
	mean := float64(total) / n
	// Half occupancy: geometric with p=1/2, mean 2.
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("mean probes %.3f, want ~2 under half occupancy", mean)
	}
}

func TestLookupDistributionProportionalToLength(t *testing.T) {
	m := newTestMap(t, 4)
	// Skew the regions 1:2:3:4.
	weights := map[ServerID]float64{0: 1, 1: 2, 2: 3, 3: 4}
	if err := m.SetWeights(weights); err != nil {
		t.Fatal(err)
	}
	counts := map[ServerID]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		id, _ := m.Lookup(fmt.Sprintf("f-%d", i))
		counts[id]++
	}
	for id, w := range weights {
		want := w / 10 * n
		got := float64(counts[id])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("server %d received %d lookups, want ~%.0f (proportional to region)", id, counts[id], want)
		}
	}
}

func TestLookupEmptyMap(t *testing.T) {
	m := newTestMap(t, 2)
	if err := m.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(1); err != nil {
		t.Fatal(err)
	}
	m.SetMaxProbes(4) // keep the miss chain short for the test
	if id, _ := m.Lookup("anything"); id != NoServer {
		t.Fatalf("Lookup on empty map returned %d, want NoServer", id)
	}
}

func TestLookupSingleProbeBudgetUsesFallback(t *testing.T) {
	m := newTestMap(t, 5)
	m.SetMaxProbes(1)
	counts := map[ServerID]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		id, probes := m.Lookup(fmt.Sprintf("k-%d", i))
		if id == NoServer {
			t.Fatalf("lookup failed with fallback in place")
		}
		if probes != 1 {
			t.Fatalf("probes = %d with budget 1", probes)
		}
		counts[id]++
	}
	// All five servers should still receive load via the fallback.
	for _, id := range m.Servers() {
		if counts[id] == 0 {
			t.Errorf("server %d received nothing under rank fallback", id)
		}
	}
}

func TestOwnerAtBounds(t *testing.T) {
	m := newTestMap(t, 3)
	if got := m.OwnerAt(Unit); got != NoServer {
		t.Errorf("OwnerAt(Unit) = %d, want NoServer", got)
	}
	// Exactly half the measure is owned.
	w := m.Width()
	var owned Ticks
	for p := 0; p < m.Partitions(); p++ {
		start := Ticks(p) * w
		for _, off := range []Ticks{0, w / 2, w - 1} {
			if m.OwnerAt(start+off) != NoServer {
				owned++
			}
		}
	}
	if owned == 0 {
		t.Fatal("no owned sample points found")
	}
}

func TestSegmentsCoverHalfAndAreDisjoint(t *testing.T) {
	m := newTestMap(t, 5)
	segs := m.Segments()
	var total Ticks
	for i, s := range segs {
		if s.End <= s.Start {
			t.Fatalf("segment %d is empty or inverted: %+v", i, s)
		}
		if i > 0 && s.Start < segs[i-1].End {
			t.Fatalf("segments %d and %d overlap", i-1, i)
		}
		total += s.End - s.Start
	}
	if total != Half {
		t.Fatalf("segments cover %d ticks, want %d", total, Half)
	}
}

func TestSegmentsMatchOwnerAt(t *testing.T) {
	m := newTestMap(t, 7)
	for _, s := range m.Segments() {
		for _, x := range []Ticks{s.Start, (s.Start + s.End) / 2, s.End - 1} {
			if got := m.OwnerAt(x); got != s.Owner {
				t.Fatalf("OwnerAt(%d) = %d, segment says %d", x, got, s.Owner)
			}
		}
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	m := newTestMap(t, 5)
	c := m.Clone()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clone violates invariants: %v", err)
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("x-%d", i)
		a, _ := m.Lookup(name)
		b, _ := c.Lookup(name)
		if a != b {
			t.Fatalf("clone lookup differs for %q: %d vs %d", name, a, b)
		}
	}
	// Mutating the clone must not affect the original.
	if err := c.SetWeights(map[ServerID]float64{0: 10, 1: 1, 2: 1, 3: 1, 4: 1}); err != nil {
		t.Fatal(err)
	}
	if MovedMeasure(m, c) == 0 {
		t.Fatal("expected clone to diverge after SetWeights")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestTicksFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tk := TicksOf(f)
		if got := tk.Float(); math.Abs(got-f) > 1e-12 {
			t.Errorf("TicksOf(%g).Float() = %g", f, got)
		}
	}
	if TicksOf(-1) != 0 || TicksOf(2) != Unit {
		t.Error("TicksOf does not clamp")
	}
}

func BenchmarkLookup(b *testing.B) {
	ids := make([]ServerID, 16)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	m, err := New(hashx.NewFamily(1), ids)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("fileset-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(names[i&1023])
	}
}

func BenchmarkSetWeights(b *testing.B) {
	m, err := New(hashx.NewFamily(1), []ServerID{0, 1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	w1 := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	w2 := map[ServerID]float64{0: 2, 1: 2, 2: 5, 3: 8, 4: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_ = m.SetWeights(w1)
		} else {
			_ = m.SetWeights(w2)
		}
	}
}

// testFamily returns the hash family shared by benchmark helpers.
func testFamily() hashx.Family { return hashx.NewFamily(42) }

func TestRenderShape(t *testing.T) {
	m := newTestMap(t, 3)
	out := m.Render(64)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Render produced %d lines:\n%s", len(lines), out)
	}
	bar := lines[0]
	if len(bar) != 66 { // 64 cells + brackets
		t.Fatalf("bar width %d, want 66: %q", len(bar), bar)
	}
	// Exactly half the cells are mapped (give or take sampling at cell
	// granularity).
	mapped := 0
	for _, c := range bar[1 : len(bar)-1] {
		if c != '.' {
			mapped++
		}
	}
	if mapped < 24 || mapped > 40 {
		t.Fatalf("mapped cells %d of 64, want ~32 (half occupancy)", mapped)
	}
	if !strings.Contains(lines[2], "k=3") {
		t.Fatalf("summary line missing: %q", lines[2])
	}
	// Tiny widths are clamped, not broken.
	if small := m.Render(1); !strings.Contains(small, "[") {
		t.Fatalf("tiny render broken: %q", small)
	}
}

// TestLoadBoundWithTwoChoices statistically checks the paper's load
// bound claim: with the multiple-choice heuristic, each server's load
// is m/n + O(1) rather than simple hashing's m/n + Theta(lg n / lg lg n).
func TestLoadBoundWithTwoChoices(t *testing.T) {
	const n, m = 16, 1600 // m/n = 100
	ids := make([]ServerID, n)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	mp, err := New(testFamily(), ids)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[ServerID]float64, n)
	for i := 0; i < m; i++ {
		id, _ := mp.LookupD(fmt.Sprintf("fileset/%04d", i), 2, func(s ServerID) float64 { return counts[s] })
		counts[id]++
	}
	for id, c := range counts {
		// m/n = 100; two choices keeps the excess to a few items.
		if c > 100+12 {
			t.Errorf("server %d holds %.0f items, want <= m/n + O(1) = ~112", id, c)
		}
	}
}
