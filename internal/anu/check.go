package anu

import (
	"fmt"
	"sort"
)

// CheckInvariants verifies the structural invariants of the map and
// returns a descriptive error on the first violation. It is exported so
// tests (including property-based tests over random operation sequences)
// can assert the geometry after every mutation.
//
// Invariants checked:
//  1. the partition count is a power of two and at least
//     2^(ceil(lg k)+1) for the current k;
//  2. every partition has at most one owner, occupancy is a prefix no
//     longer than the width, and full/partial bookkeeping agrees with
//     the partition table;
//  3. every server has at most one prefix-partial partition;
//  4. region length caches equal the measure of owned space;
//  5. total mapped measure is exactly Half (or zero when every server
//     has failed);
//  6. at least one partition is free whenever the map is non-empty (the
//     guarantee that a recovered or added server can always be placed).
func (m *Map) CheckInvariants() error {
	if len(m.parts) != 1<<m.partBits {
		return fmt.Errorf("anu: partition table has %d entries, want 2^%d", len(m.parts), m.partBits)
	}
	if k := len(m.regions); k > 0 && m.partBits < partitionBits(k) {
		return fmt.Errorf("anu: %d partitions too few for k=%d servers (want >= 2^%d)",
			len(m.parts), k, partitionBits(k))
	}
	w := m.Width()

	type seen struct {
		full    int
		partial int
		measure Ticks
	}
	byServer := make(map[ServerID]*seen, len(m.regions))
	free := 0
	for i := range m.parts {
		p := m.parts[i]
		if p.owner == NoServer {
			if p.occ != 0 {
				return fmt.Errorf("anu: free partition %d has occupancy %d", i, p.occ)
			}
			free++
			continue
		}
		r, ok := m.regions[p.owner]
		if !ok {
			return fmt.Errorf("anu: partition %d owned by unknown server %d", i, p.owner)
		}
		if p.occ == 0 || p.occ > w {
			return fmt.Errorf("anu: partition %d has occupancy %d outside (0, %d]", i, p.occ, w)
		}
		s := byServer[p.owner]
		if s == nil {
			s = &seen{}
			byServer[p.owner] = s
		}
		s.measure += p.occ
		if p.occ == w {
			s.full++
			if !containsInt32(r.full, int32(i)) {
				return fmt.Errorf("anu: full partition %d missing from server %d's full list", i, p.owner)
			}
		} else {
			s.partial++
			if r.partial != int32(i) {
				return fmt.Errorf("anu: partial partition %d not recorded by server %d (records %d)", i, p.owner, r.partial)
			}
			if r.partialLen != p.occ {
				return fmt.Errorf("anu: server %d partial length cache %d != partition occupancy %d", p.owner, r.partialLen, p.occ)
			}
		}
	}

	var total Ticks
	for id, r := range m.regions {
		s := byServer[id]
		if s == nil {
			s = &seen{}
		}
		if s.partial > 1 {
			return fmt.Errorf("anu: server %d has %d partial partitions, invariant allows at most 1", id, s.partial)
		}
		if s.full != len(r.full) {
			return fmt.Errorf("anu: server %d full list has %d entries, partition table shows %d", id, len(r.full), s.full)
		}
		if (r.partial >= 0) != (s.partial == 1) {
			return fmt.Errorf("anu: server %d partial bookkeeping inconsistent", id)
		}
		if r.length != s.measure {
			return fmt.Errorf("anu: server %d length cache %d != measured %d", id, r.length, s.measure)
		}
		total += r.length
	}
	for id := range byServer {
		if _, ok := m.regions[id]; !ok {
			return fmt.Errorf("anu: partitions owned by server %d which has no region", id)
		}
	}

	if total != Half && total != 0 {
		return fmt.Errorf("anu: total mapped measure %d violates half occupancy (want %d or 0)", total, Half)
	}
	if m.total != total {
		return fmt.Errorf("anu: total-mapped cache %d != measured %d", m.total, total)
	}
	if total == Half && free == 0 {
		return fmt.Errorf("anu: no free partition available (recovery guarantee broken)")
	}
	if len(m.order) != len(m.regions) {
		return fmt.Errorf("anu: order list has %d ids for %d regions", len(m.order), len(m.regions))
	}
	for i := 1; i < len(m.order); i++ {
		if m.order[i-1] >= m.order[i] {
			return fmt.Errorf("anu: order list not strictly ascending at %d", i)
		}
	}
	return nil
}

func containsInt32(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// MovedMeasure returns the measure (in ticks) of the unit interval whose
// owner differs between two maps, counting space that is mapped in
// either map but serves different owners, plus space mapped in exactly
// one of them. It quantifies load movement geometrically: the expected
// fraction of a uniform hash's mass that changes servers between the two
// configurations is MovedMeasure/Half (ignoring re-hash chains).
func MovedMeasure(a, b *Map) Ticks {
	cuts := breakpoints(a, b)
	var moved Ticks
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi == lo {
			continue
		}
		oa, ob := a.OwnerAt(lo), b.OwnerAt(lo)
		if oa != ob && (oa != NoServer || ob != NoServer) {
			moved += hi - lo
		}
	}
	return moved
}

// breakpoints returns the sorted union of ownership breakpoints of both
// maps: every partition boundary and every partial-prefix end.
func breakpoints(a, b *Map) []Ticks {
	var cuts []Ticks
	add := func(m *Map) {
		w := m.Width()
		for i := range m.parts {
			start := Ticks(i) * w
			cuts = append(cuts, start)
			if p := m.parts[i]; p.owner != NoServer && p.occ < w {
				cuts = append(cuts, start+p.occ)
			}
		}
	}
	add(a)
	add(b)
	cuts = append(cuts, Unit)
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	// Deduplicate in place.
	out := cuts[:1]
	for _, c := range cuts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
