package anu

import (
	"fmt"
	"strings"
)

// Render draws the unit interval as a fixed-width ASCII bar, one
// character per interval cell: a server's cells show the last decimal
// digit of its id, unmapped space shows '.'. Partition boundaries are
// marked on a ruler line below when they are at least two cells apart.
// It is a debugging and teaching aid used by the examples; Figure 2 of
// the paper is exactly this picture.
func (m *Map) Render(width int) string {
	if width < 8 {
		width = 8
	}
	cells := make([]byte, width)
	for i := range cells {
		x := Ticks(uint64(i) * (uint64(Unit) / uint64(width)))
		if owner := m.OwnerAt(x); owner != NoServer {
			cells[i] = byte('0' + int(owner)%10)
		} else {
			cells[i] = '.'
		}
	}
	var b strings.Builder
	b.WriteString("[")
	b.Write(cells)
	b.WriteString("]\n")

	// Ruler with partition boundaries.
	cellsPerPart := width / m.Partitions()
	if cellsPerPart >= 2 {
		ruler := make([]byte, width)
		for i := range ruler {
			ruler[i] = ' '
		}
		for p := 0; p < m.Partitions(); p++ {
			ruler[p*cellsPerPart] = '|'
		}
		b.WriteString(" ")
		b.Write(ruler)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, " k=%d partitions=%d mapped=%.0f%%\n",
		m.K(), m.Partitions(), 100*m.TotalMapped().Float())
	return b.String()
}
