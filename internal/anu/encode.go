package anu

import (
	"encoding/binary"
	"fmt"

	"anurand/internal/hashx"
)

// The wire format is what the delegate replicates to every server after
// a tuning round — the system's entire shared state. Its size is what
// Figure 8's shared-state comparison against virtual processors is
// about: ANU replicates O(k) region records regardless of how finely
// load is divided, while a VP system replicates one record per virtual
// processor.
//
// Layout (all little-endian):
//
//	magic   uint32  ("ANU1")
//	seed    uint64  hash family seed
//	bits    uint8   log2 partition count
//	k       uint32  number of servers
//	k times:
//	  id      int32
//	  nfull   uint32
//	  full    nfull * uint32 (partition indices)
//	  partial int32  (-1 if none)
//	  plen    uint64 (partial prefix ticks)
const encodeMagic = 0x414e5531 // "ANU1"

// Encode serializes the map into the replicated wire format.
func (m *Map) Encode() []byte {
	buf := make([]byte, 0, 32+16*len(m.regions))
	buf = binary.LittleEndian.AppendUint32(buf, encodeMagic)
	buf = binary.LittleEndian.AppendUint64(buf, m.family.Seed())
	buf = append(buf, byte(m.partBits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.order)))
	for _, id := range m.order {
		r := m.regions[id]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.full)))
		for _, p := range r.full {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.partial))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.partialLen))
	}
	return buf
}

// SharedStateSize returns the size in bytes of the replicated state — a
// convenience equal to len(m.Encode()).
func (m *Map) SharedStateSize() int { return len(m.Encode()) }

// Decode reconstructs a map from its wire format. The result is
// validated with CheckInvariants before being returned, so a corrupted
// or adversarial payload cannot produce an inconsistent map.
func Decode(data []byte) (*Map, error) {
	d := decoder{buf: data}
	if magic := d.u32(); magic != encodeMagic {
		return nil, fmt.Errorf("anu: Decode: bad magic %#x", magic)
	}
	seed := d.u64()
	bits := uint(d.u8())
	// Partition counts are 2^(ceil(lg k)+1); even a million-server map
	// needs only 2^21. Cap well below the allocation a hostile payload
	// could demand.
	const maxDecodeBits = 24
	if bits == 0 || bits > maxDecodeBits {
		return nil, fmt.Errorf("anu: Decode: implausible partition bits %d", bits)
	}
	k := int(d.u32())
	if k < 0 || k > 1<<20 {
		return nil, fmt.Errorf("anu: Decode: implausible server count %d", k)
	}
	m := &Map{
		partBits:  bits,
		regions:   make(map[ServerID]*region, k),
		maxProbes: DefaultMaxProbes,
	}
	m.family = hashx.NewFamily(seed)
	m.parts = make([]partInfo, 1<<bits)
	for i := range m.parts {
		m.parts[i].owner = NoServer
	}
	w := m.Width()
	for i := 0; i < k; i++ {
		id := ServerID(d.u32())
		nfull := int(d.u32())
		if nfull < 0 || nfull > len(m.parts) {
			return nil, fmt.Errorf("anu: Decode: server %d claims %d full partitions", id, nfull)
		}
		r := &region{id: id, partial: -1}
		for j := 0; j < nfull; j++ {
			p := int32(d.u32())
			if p < 0 || int(p) >= len(m.parts) {
				return nil, fmt.Errorf("anu: Decode: partition index %d out of range", p)
			}
			if m.parts[p].owner != NoServer {
				return nil, fmt.Errorf("anu: Decode: partition %d doubly owned", p)
			}
			m.parts[p] = partInfo{owner: id, occ: w}
			r.full = append(r.full, p)
			r.length += w
		}
		partial := int32(d.u32())
		plen := Ticks(d.u64())
		if partial >= 0 {
			if int(partial) >= len(m.parts) {
				return nil, fmt.Errorf("anu: Decode: partial index %d out of range", partial)
			}
			if m.parts[partial].owner != NoServer {
				return nil, fmt.Errorf("anu: Decode: partition %d doubly owned", partial)
			}
			if plen == 0 || plen >= w {
				return nil, fmt.Errorf("anu: Decode: partial length %d invalid for width %d", plen, w)
			}
			m.parts[partial] = partInfo{owner: id, occ: plen}
			r.partial = partial
			r.partialLen = plen
			r.length += plen
		}
		if _, dup := m.regions[id]; dup {
			return nil, fmt.Errorf("anu: Decode: duplicate server id %d", id)
		}
		m.regions[id] = r
		m.order = append(m.order, id)
		m.total += r.length
	}
	if d.err != nil {
		return nil, fmt.Errorf("anu: Decode: %w", d.err)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("anu: Decode: %d trailing bytes", len(data)-d.off)
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("anu: Decode: payload violates invariants: %w", err)
	}
	return m, nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
