package anu

import (
	"math"
	"testing"
)

func newTestController() *Controller {
	return NewController(DefaultControllerConfig())
}

func TestControllerConfigValidate(t *testing.T) {
	good := DefaultControllerConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*ControllerConfig){
		func(c *ControllerConfig) { c.Gamma = 0 },
		func(c *ControllerConfig) { c.Gamma = -1 },
		func(c *ControllerConfig) { c.Gamma = 5 },
		func(c *ControllerConfig) { c.MaxStep = 1 },
		func(c *ControllerConfig) { c.MaxStep = 0.5 },
		func(c *ControllerConfig) { c.MaxShrink = 1 },
		func(c *ControllerConfig) { c.DeadBand = -0.1 },
		func(c *ControllerConfig) { c.DeadBand = 1 },
		func(c *ControllerConfig) { c.MinWeight = 1 },
		func(c *ControllerConfig) { c.Smoothing = 1 },
		func(c *ControllerConfig) { c.IdleGrowth = 0.9 },
	}
	for i, mutate := range bads {
		cfg := DefaultControllerConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewControllerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewController with Gamma=0 did not panic")
		}
	}()
	NewController(ControllerConfig{})
}

func TestAverageWeighted(t *testing.T) {
	avg, ok := Average([]Report{
		{Server: 0, Requests: 10, Latency: 1},
		{Server: 1, Requests: 30, Latency: 5},
		{Server: 2, Requests: 0, Latency: 99},  // idle, ignored
		{Server: 3, Requests: 5, Failed: true}, // failed, ignored
	})
	if !ok {
		t.Fatal("Average reported no data")
	}
	want := (10*1.0 + 30*5.0) / 40
	if math.Abs(avg-want) > 1e-12 {
		t.Fatalf("Average = %g, want %g", avg, want)
	}
	if _, ok := Average(nil); ok {
		t.Fatal("Average of nothing reported ok")
	}
}

func TestTuneShrinksSlowGrowsFast(t *testing.T) {
	m := newTestMap(t, 2)
	ctl := newTestController()
	before := m.Lengths()
	changedAny, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 100, Latency: 10}, // slow
		{Server: 1, Requests: 100, Latency: 1},  // fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if !changedAny {
		t.Fatal("Tune reported no change for a 10x latency gap")
	}
	if m.Length(0) >= before[0] {
		t.Errorf("slow server region did not shrink: %d -> %d", before[0], m.Length(0))
	}
	if m.Length(1) <= before[1] {
		t.Errorf("fast server region did not grow: %d -> %d", before[1], m.Length(1))
	}
	if m.TotalMapped() != Half {
		t.Errorf("total mapped %d after tune, want %d", m.TotalMapped(), Half)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTuneStepClamped(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Smoothing = 0
	cfg.MaxStep = 1.5
	cfg.MaxShrink = 1.5
	m := newTestMap(t, 2)
	ctl := NewController(cfg)
	before := m.Lengths()
	if _, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 10, Latency: 1000},
		{Server: 1, Requests: 10, Latency: 0.001},
	}); err != nil {
		t.Fatal(err)
	}
	// With both multipliers clamped to [1/1.5, 1.5], the post-normalize
	// ratio shift is bounded by 1.5^2.
	ratioBefore := float64(before[1]) / float64(before[0])
	ratioAfter := float64(m.Length(1)) / float64(m.Length(0))
	if ratioAfter/ratioBefore > 1.5*1.5+1e-9 {
		t.Fatalf("one round moved the ratio by %gx, exceeding the clamp", ratioAfter/ratioBefore)
	}
}

func TestTuneDeadBandSuppressesMovement(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.DeadBand = 0.2
	cfg.Smoothing = 0
	m := newTestMap(t, 3)
	ctl := NewController(cfg)
	changedAny, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 10, Latency: 1.0},
		{Server: 1, Requests: 10, Latency: 1.1},
		{Server: 2, Requests: 10, Latency: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if changedAny {
		t.Fatal("Tune moved load inside the dead band")
	}
}

func TestTuneFailedServerZeroed(t *testing.T) {
	m := newTestMap(t, 3)
	ctl := newTestController()
	changedAny, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 10, Latency: 1},
		{Server: 1, Failed: true},
		{Server: 2, Requests: 10, Latency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !changedAny {
		t.Fatal("failure produced no change")
	}
	if m.Length(1) != 0 {
		t.Fatalf("failed server retains %d ticks", m.Length(1))
	}
	if m.TotalMapped() != Half {
		t.Fatalf("total %d, want %d", m.TotalMapped(), Half)
	}
}

func TestTuneFailureActsEvenInDeadBand(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.DeadBand = 0.5
	m := newTestMap(t, 3)
	ctl := NewController(cfg)
	if _, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 10, Latency: 1},
		{Server: 1, Requests: 10, Latency: 1},
		{Server: 2, Failed: true},
	}); err != nil {
		t.Fatal(err)
	}
	if m.Length(2) != 0 {
		t.Fatal("dead band masked a failure")
	}
}

func TestTuneIdleServersHoldRegion(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Smoothing = 0
	cfg.DeadBand = 0
	m := newTestMap(t, 3)
	ctl := NewController(cfg)
	before := m.Length(2)
	if _, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 10, Latency: 1},
		{Server: 1, Requests: 10, Latency: 1},
		{Server: 2, Requests: 0},
	}); err != nil {
		t.Fatal(err)
	}
	after := m.Length(2)
	// IdleGrowth=1 holds the idle server's weight; normalization may
	// nudge it by rounding only.
	if diff := math.Abs(float64(after) - float64(before)); diff > float64(Half)/1e6 {
		t.Fatalf("idle server region moved %g ticks", diff)
	}
}

func TestTuneUnknownServerRejected(t *testing.T) {
	m := newTestMap(t, 2)
	ctl := newTestController()
	if _, err := ctl.Tune(m, []Report{{Server: 9, Requests: 1, Latency: 1}}); err == nil {
		t.Fatal("report for unknown server accepted")
	}
}

func TestTuneNoReportsNoChange(t *testing.T) {
	m := newTestMap(t, 2)
	ctl := newTestController()
	changedAny, err := ctl.Tune(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if changedAny {
		t.Fatal("empty tuning round changed the map")
	}
}

func TestTuneMinWeightKeepsServerAddressable(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Smoothing = 0
	cfg.MinWeight = 0.01
	m := newTestMap(t, 2)
	ctl := NewController(cfg)
	// Hammer server 0 with terrible latency for many rounds.
	for i := 0; i < 50; i++ {
		if _, err := ctl.Tune(m, []Report{
			{Server: 0, Requests: 100, Latency: 100},
			{Server: 1, Requests: 100, Latency: 0.01},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Length(0) == 0 {
		t.Fatal("MinWeight floor failed: server 0 vanished")
	}
	frac := float64(m.Length(0)) / float64(Half)
	if frac > 0.02 {
		t.Fatalf("overwhelmed server still holds %.3f of the half", frac)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTuneConvergesOnHeterogeneousCapacity runs a closed-loop synthetic
// model of the paper's 1/3/5/7/9 cluster: each round, a server's
// latency is inversely proportional to capacity and proportional to the
// load (region length) it holds. The controller should converge to
// regions proportional to capacity.
func TestTuneConvergesOnHeterogeneousCapacity(t *testing.T) {
	speeds := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	m := newTestMap(t, 5)
	cfg := DefaultControllerConfig()
	cfg.DeadBand = 0.02
	cfg.Smoothing = 0
	ctl := NewController(cfg)
	for round := 0; round < 200; round++ {
		var reports []Report
		for id, speed := range speeds {
			load := float64(m.Length(id)) / float64(Half)
			if load <= 0 {
				reports = append(reports, Report{Server: id, Requests: 0})
				continue
			}
			reports = append(reports, Report{
				Server:   id,
				Requests: uint64(1 + 1000*load),
				Latency:  load / speed,
			})
		}
		if _, err := ctl.Tune(m, reports); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// At equilibrium load/speed is equal across servers, so region
	// length should be proportional to speed (within the dead band).
	for id, speed := range speeds {
		got := float64(m.Length(id)) / float64(Half)
		want := speed / 25
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("server %d: equilibrium share %.4f, want ~%.4f (prop. to capacity)", id, got, want)
		}
	}
}

func TestControllerResetClearsSmoothing(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Smoothing = 0.9
	m := newTestMap(t, 2)
	ctl := NewController(cfg)
	if _, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 10, Latency: 100},
		{Server: 1, Requests: 10, Latency: 1},
	}); err != nil {
		t.Fatal(err)
	}
	ctl.Reset()
	if len(ctl.ewma) != 0 {
		t.Fatal("Reset left smoothing state behind")
	}
	if ctl.Rounds() != 1 {
		t.Fatalf("Rounds() = %d, want 1", ctl.Rounds())
	}
}

func TestAdvisoriesFlagIncompetentServer(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Smoothing = 0
	cfg.MinWeight = 0.01
	m := newTestMap(t, 3)
	ctl := NewController(cfg)
	// Server 0 is hopeless: terrible latency every round.
	for round := 0; round < 20; round++ {
		if _, err := ctl.Tune(m, []Report{
			{Server: 0, Requests: 50, Latency: 500},
			{Server: 1, Requests: 500, Latency: 1},
			{Server: 2, Requests: 500, Latency: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	advs := ctl.Advisories()
	if len(advs) != 1 || advs[0].Server != 0 {
		t.Fatalf("advisories = %+v, want server 0 flagged", advs)
	}
	if advs[0].Rounds < advisoryRounds {
		t.Fatalf("advisory rounds %d below threshold", advs[0].Rounds)
	}
}

func TestAdvisoriesClearWhenServerRecovers(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Smoothing = 0
	cfg.MinWeight = 0.01
	cfg.DeadBand = 0.05
	m := newTestMap(t, 2)
	ctl := NewController(cfg)
	for round := 0; round < 15; round++ {
		if _, err := ctl.Tune(m, []Report{
			{Server: 0, Requests: 50, Latency: 500},
			{Server: 1, Requests: 500, Latency: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctl.Advisories()) == 0 {
		t.Fatal("no advisory for a hopeless server")
	}
	// The server starts performing brilliantly; it regrows and its
	// advisory clears (server 1, now the laggard, may get flagged
	// instead — that is the controller doing its job).
	for round := 0; round < 40; round++ {
		if _, err := ctl.Tune(m, []Report{
			{Server: 0, Requests: 500, Latency: 0.01},
			{Server: 1, Requests: 500, Latency: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, adv := range ctl.Advisories() {
		if adv.Server == 0 {
			t.Fatalf("advisory for server 0 survived recovery: %+v", adv)
		}
	}
}

func TestAdvisoriesEmptyOnBalancedCluster(t *testing.T) {
	m := newTestMap(t, 4)
	ctl := newTestController()
	for round := 0; round < 10; round++ {
		if _, err := ctl.Tune(m, []Report{
			{Server: 0, Requests: 100, Latency: 1},
			{Server: 1, Requests: 100, Latency: 1},
			{Server: 2, Requests: 100, Latency: 1},
			{Server: 3, Requests: 100, Latency: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if advs := ctl.Advisories(); len(advs) != 0 {
		t.Fatalf("advisories on a balanced cluster: %+v", advs)
	}
}

func TestTuneRebootstrapsFullyCollapsedCluster(t *testing.T) {
	// A report blackout can zero every region (all servers "failed").
	// The next round with live reports must re-admit them instead of
	// erroring on all-zero weights.
	m := newTestMap(t, 2)
	if err := m.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(1); err != nil {
		t.Fatal(err)
	}
	if m.TotalMapped() != 0 {
		t.Fatal("setup: map not empty")
	}
	ctl := newTestController()
	if _, err := ctl.Tune(m, []Report{
		{Server: 0, Requests: 0},
		{Server: 1, Requests: 5, Latency: 1},
	}); err != nil {
		t.Fatalf("Tune on collapsed cluster: %v", err)
	}
	if m.TotalMapped() != Half {
		t.Fatalf("cluster not re-bootstrapped: mapped %d", m.TotalMapped())
	}
	if m.Length(0) == 0 || m.Length(1) == 0 {
		t.Fatalf("live servers not re-admitted: %d, %d", m.Length(0), m.Length(1))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
