package anu

import (
	"bytes"
	"encoding/hex"
	"testing"

	"anurand/internal/hashx"
)

// TestEncodeGolden pins the wire format: the encoded bytes of a fixed
// map must never change, because every cluster node decodes what the
// delegate replicates — a silent format change would split a cluster
// mid-upgrade. If this test fails, the format changed: bump the magic
// and add migration, do not update the golden value casually.
func TestEncodeGolden(t *testing.T) {
	m, err := New(hashx.NewFamily(7), []ServerID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 2, 2: 3}); err != nil {
		t.Fatal(err)
	}
	got := m.Encode()
	const golden = "31554e4107000000000000000303000000000000000000000000" +
		"00000056555555555555050100000001000000020000000300000095aaaa" +
		"aaaaaaaa0202000000020000000400000005000000010000001500000000000000"
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire format changed:\n got  %x\n want %x", got, want)
	}
}

// TestEncodeGoldenDecodes ensures the pinned bytes stay decodable.
func TestEncodeGoldenDecodes(t *testing.T) {
	m, err := New(hashx.NewFamily(7), []ServerID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetWeights(map[ServerID]float64{0: 1, 1: 2, 2: 3}); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range m.Servers() {
		if dec.Length(id) != m.Length(id) {
			t.Fatalf("server %d length mismatch after decode", id)
		}
	}
}
