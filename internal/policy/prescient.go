package policy

import (
	"fmt"
	"sort"

	"anurand/internal/assign"
	"anurand/internal/workload"
)

// Prescient is the dynamic-prescient upper bound: at every tuning round
// it re-optimizes the file-set-to-server assignment using perfect
// knowledge of per-file-set offered load and server capacities. It
// represents the best any load manager could do and is what ANU is
// measured against.
type Prescient struct {
	numFileSets int
	table       []ServerID
}

// NewPrescient builds the policy; the placement table is empty until the
// first Retune (the harness retunes prescient once at t=0 so it is
// balanced "from the very beginning", as in the paper).
func NewPrescient(fileSets []workload.FileSet) (*Prescient, error) {
	if len(fileSets) == 0 {
		return nil, fmt.Errorf("policy: NewPrescient: no file sets")
	}
	table := make([]ServerID, len(fileSets))
	for i := range table {
		table[i] = NoServer
	}
	return &Prescient{numFileSets: len(fileSets), table: table}, nil
}

// Name implements Placer.
func (p *Prescient) Name() string { return "prescient" }

// Place implements Placer via the optimized table.
func (p *Prescient) Place(fs int) ServerID {
	if fs < 0 || fs >= len(p.table) {
		return NoServer
	}
	return p.table[fs]
}

// Retune implements Placer: a re-optimization with ground truth. The
// search is warm-started from the current table so a placement that is
// still locally optimal stays put — the optimal permutation should not
// churn when nothing changed.
func (p *Prescient) Retune(env *Env) error {
	if err := validateEnv(env, p.numFileSets, true); err != nil {
		return err
	}
	items := make([]assign.Item, p.numFileSets)
	for i := range items {
		items[i] = assign.Item{ID: i, Load: env.FileSetLoads[i]}
	}
	bins, ids := upBins(env)
	if len(bins) == 0 {
		for i := range p.table {
			p.table[i] = NoServer
		}
		return nil
	}
	a := warmStart(p.table, items, bins, ids)
	for i, b := range a {
		if b < 0 {
			p.table[i] = NoServer
		} else {
			p.table[i] = ids[b]
		}
	}
	return nil
}

// warmStart seeds the optimizer with a previous server table when every
// referenced server is still a usable bin, falling back to a fresh
// greedy seed otherwise (first round, failures, topology changes).
func warmStart(table []ServerID, items []assign.Item, bins []assign.Bin, ids []ServerID) assign.Assignment {
	binOf := make(map[ServerID]int, len(ids))
	for b, id := range ids {
		binOf[id] = b
	}
	seed := make(assign.Assignment, len(table))
	for i, id := range table {
		b, ok := binOf[id]
		if !ok {
			return assign.Optimize(items, bins)
		}
		seed[i] = b
	}
	seed, _ = assign.LocalSearch(items, bins, seed, 20)
	return seed
}

// SharedStateSize implements Placer: a replicated table mapping every
// file set to a server (4-byte fileset index + 4-byte server id each) —
// the O(m) state the paper contrasts with ANU's O(k).
func (p *Prescient) SharedStateSize() int { return 8 * p.numFileSets }

// upBins converts the snapshot's live servers to optimizer bins in
// deterministic id order, returning the parallel id list.
func upBins(env *Env) ([]assign.Bin, []ServerID) {
	servers := append([]ServerInfo(nil), env.Servers...)
	sort.Slice(servers, func(i, j int) bool { return servers[i].ID < servers[j].ID })
	var bins []assign.Bin
	var ids []ServerID
	for _, s := range servers {
		if s.Up && s.Speed > 0 {
			bins = append(bins, assign.Bin{ID: int(s.ID), Capacity: s.Speed})
			ids = append(ids, s.ID)
		}
	}
	return bins, ids
}
