package policy

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/placement"
	"anurand/internal/workload"
)

func testFileSets(n int) []workload.FileSet {
	fs := make([]workload.FileSet, n)
	for i := range fs {
		fs[i] = workload.FileSet{Name: fmt.Sprintf("fs/%03d", i), Weight: float64(i%10) + 1}
	}
	return fs
}

func testServers() []ServerID { return []ServerID{0, 1, 2, 3, 4} }

func paperEnv(fileSets []workload.FileSet) *Env {
	speeds := []float64{1, 3, 5, 7, 9}
	env := &Env{FileSetLoads: make([]float64, len(fileSets))}
	var sumW float64
	for _, fs := range fileSets {
		sumW += fs.Weight
	}
	for i, fs := range fileSets {
		env.FileSetLoads[i] = fs.Weight / sumW * 15 // total load 15 on capacity 25
	}
	for i, s := range speeds {
		env.Servers = append(env.Servers, ServerInfo{ID: ServerID(i), Speed: s, Up: true})
	}
	return env
}

func TestSimplePlacesAllFileSetsUniformly(t *testing.T) {
	fs := testFileSets(2000)
	s, err := NewSimple(hashx.NewFamily(1), fs, testServers())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ServerID]int{}
	for i := range fs {
		id := s.Place(i)
		if id == NoServer {
			t.Fatalf("file set %d unplaced", i)
		}
		counts[id]++
	}
	want := 2000.0 / 5
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("server %d received %d file sets, want ~%.0f", id, c, want)
		}
	}
}

func TestSimpleIsStatic(t *testing.T) {
	fs := testFileSets(100)
	s, err := NewSimple(hashx.NewFamily(1), fs, testServers())
	if err != nil {
		t.Fatal(err)
	}
	before := make([]ServerID, len(fs))
	for i := range fs {
		before[i] = s.Place(i)
	}
	env := paperEnv(fs)
	env.Servers[0].Up = false // even failures do not move simple's placement
	if err := s.Retune(env); err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if s.Place(i) != before[i] {
			t.Fatalf("simple randomization moved file set %d on retune", i)
		}
	}
}

func TestSimpleConstructionErrors(t *testing.T) {
	fs := testFileSets(3)
	if _, err := NewSimple(hashx.NewFamily(1), fs, nil); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := NewSimple(hashx.NewFamily(1), nil, testServers()); err == nil {
		t.Error("no file sets accepted")
	}
}

func TestSimplePlaceOutOfRange(t *testing.T) {
	fs := testFileSets(3)
	s, _ := NewSimple(hashx.NewFamily(1), fs, testServers())
	if s.Place(-1) != NoServer || s.Place(3) != NoServer {
		t.Fatal("out-of-range Place did not return NoServer")
	}
}

func TestANUPlacesAndConverges(t *testing.T) {
	fs := testFileSets(50)
	a, err := NewANU(hashx.NewFamily(1), fs, testServers(), anu.DefaultControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if a.Place(i) == NoServer {
			t.Fatalf("file set %d unplaced", i)
		}
	}
	// Feed synthetic feedback: latency inversely proportional to speed
	// times region share; ANU should shift region toward fast servers.
	speeds := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	env := paperEnv(fs)
	for round := 0; round < 100; round++ {
		env.Reports = env.Reports[:0]
		for id, sp := range speeds {
			share := float64(a.Map().Length(id)) / float64(anu.Half)
			if share == 0 {
				env.Reports = append(env.Reports, anu.Report{Server: id})
				continue
			}
			env.Reports = append(env.Reports, anu.Report{
				Server:   id,
				Requests: uint64(1 + 1000*share),
				Latency:  share / sp,
			})
		}
		if err := a.Retune(env); err != nil {
			t.Fatal(err)
		}
	}
	if a.Map().Length(4) <= a.Map().Length(0) {
		t.Fatalf("fast server region (%d) not larger than slow server's (%d)",
			a.Map().Length(4), a.Map().Length(0))
	}
	if err := a.Map().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestANUFailureAndRecoveryViaEnv(t *testing.T) {
	fs := testFileSets(20)
	a, err := NewANU(hashx.NewFamily(1), fs, testServers(), anu.DefaultControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := paperEnv(fs)
	env.Servers[2].Up = false
	if err := a.Retune(env); err != nil {
		t.Fatal(err)
	}
	if a.Map().Length(2) != 0 {
		t.Fatal("down server retains region after retune")
	}
	for i := range fs {
		if a.Place(i) == ServerID(2) {
			t.Fatalf("file set %d still placed on down server", i)
		}
	}
	env.Servers[2].Up = true
	if err := a.Retune(env); err != nil {
		t.Fatal(err)
	}
	if a.Map().Length(2) == 0 {
		t.Fatal("recovered server got no region")
	}
}

func TestANUAdmitsCommissionedServer(t *testing.T) {
	fs := testFileSets(20)
	a, err := NewANU(hashx.NewFamily(1), fs, testServers(), anu.DefaultControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := paperEnv(fs)
	env.Servers = append(env.Servers, ServerInfo{ID: 5, Speed: 4, Up: true})
	if err := a.Retune(env); err != nil {
		t.Fatal(err)
	}
	if !a.Map().Has(5) || a.Map().Length(5) == 0 {
		t.Fatal("commissioned server not admitted")
	}
}

func TestPrescientBalancesWithPerfectKnowledge(t *testing.T) {
	fs := testFileSets(50)
	p, err := NewPrescient(fs)
	if err != nil {
		t.Fatal(err)
	}
	// Before the first retune nothing is placed.
	if p.Place(0) != NoServer {
		t.Fatal("prescient placed before first retune")
	}
	env := paperEnv(fs)
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	loadPer := map[ServerID]float64{}
	for i := range fs {
		id := p.Place(i)
		if id == NoServer {
			t.Fatalf("file set %d unplaced after retune", i)
		}
		loadPer[id] += env.FileSetLoads[i]
	}
	// No server may be overloaded, and the fastest must carry more
	// than the slowest.
	speeds := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	for id, load := range loadPer {
		if load >= speeds[id] {
			t.Errorf("server %d overloaded: %.2f of %.2f", id, load, speeds[id])
		}
	}
	if loadPer[4] <= loadPer[0] {
		t.Errorf("fastest server load %.2f not above slowest %.2f", loadPer[4], loadPer[0])
	}
}

func TestPrescientAvoidsDownServers(t *testing.T) {
	fs := testFileSets(30)
	p, err := NewPrescient(fs)
	if err != nil {
		t.Fatal(err)
	}
	env := paperEnv(fs)
	env.Servers[4].Up = false
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if p.Place(i) == ServerID(4) {
			t.Fatalf("file set %d placed on down server", i)
		}
	}
}

func TestPrescientAllDown(t *testing.T) {
	fs := testFileSets(5)
	p, _ := NewPrescient(fs)
	env := paperEnv(fs)
	for i := range env.Servers {
		env.Servers[i].Up = false
	}
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	if p.Place(0) != NoServer {
		t.Fatal("placement on a dead cluster")
	}
}

func TestPrescientRejectsMissingLoads(t *testing.T) {
	fs := testFileSets(5)
	p, _ := NewPrescient(fs)
	env := paperEnv(fs)
	env.FileSetLoads = env.FileSetLoads[:2]
	if err := p.Retune(env); err == nil {
		t.Fatal("short FileSetLoads accepted")
	}
}

func TestVPStaticFirstLevelDynamicSecond(t *testing.T) {
	fs := testFileSets(50)
	v, err := NewVirtualProcessor(hashx.NewFamily(1), fs, 25)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumVP() != 25 {
		t.Fatalf("NumVP = %d", v.NumVP())
	}
	env := paperEnv(fs)
	if err := v.Retune(env); err != nil {
		t.Fatal(err)
	}
	vpOf := make([]int32, len(fs))
	copy(vpOf, v.fsToVP)
	// Retuning can change VP->server but never fs->VP.
	env.Servers[1].Up = false
	if err := v.Retune(env); err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if v.fsToVP[i] != vpOf[i] {
			t.Fatalf("file set %d changed virtual processor", i)
		}
		if v.Place(i) == ServerID(1) {
			t.Fatalf("file set %d placed on down server", i)
		}
	}
}

func TestVPGranularityMonotonicity(t *testing.T) {
	// More virtual processors divide load more finely: predicted
	// worst-case per-server imbalance should not get worse with more
	// VPs. We compare max server load between V=5 and V=50.
	fs := testFileSets(50)
	env := paperEnv(fs)
	maxLoad := func(numVP int) float64 {
		v, err := NewVirtualProcessor(hashx.NewFamily(1), fs, numVP)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Retune(env); err != nil {
			t.Fatal(err)
		}
		per := map[ServerID]float64{}
		for i := range fs {
			per[v.Place(i)] += env.FileSetLoads[i]
		}
		speeds := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
		worst := 0.0
		for id, load := range per {
			if u := load / speeds[id]; u > worst {
				worst = u
			}
		}
		return worst
	}
	coarse, fine := maxLoad(5), maxLoad(50)
	if fine > coarse+1e-9 {
		t.Fatalf("finer VPs gave worse max utilization: %g (V=50) vs %g (V=5)", fine, coarse)
	}
}

func TestVPConstructionErrors(t *testing.T) {
	fs := testFileSets(3)
	if _, err := NewVirtualProcessor(hashx.NewFamily(1), fs, 0); err == nil {
		t.Error("numVP=0 accepted")
	}
	if _, err := NewVirtualProcessor(hashx.NewFamily(1), nil, 5); err == nil {
		t.Error("no file sets accepted")
	}
}

func TestSharedStateSizeOrdering(t *testing.T) {
	// The paper's Figure 8 point: ANU state ~ O(k) is far below a VP
	// table at the VP counts needed for parity (~30 VPs), and the
	// prescient table is O(m).
	fs := testFileSets(50)
	servers := testServers()
	fam := hashx.NewFamily(1)

	s, _ := NewSimple(fam, fs, servers)
	a, _ := NewANU(fam, fs, servers, anu.DefaultControllerConfig())
	p, _ := NewPrescient(fs)
	v30, _ := NewVirtualProcessor(fam, fs, 30)
	v50, _ := NewVirtualProcessor(fam, fs, 50)

	if !(s.SharedStateSize() < a.SharedStateSize()) {
		t.Errorf("simple (%d) should be smallest, anu is %d", s.SharedStateSize(), a.SharedStateSize())
	}
	if v30.SharedStateSize() >= v50.SharedStateSize() {
		t.Errorf("VP state must grow with VP count: %d vs %d", v30.SharedStateSize(), v50.SharedStateSize())
	}
	if p.SharedStateSize() != 8*50 {
		t.Errorf("prescient state %d, want %d", p.SharedStateSize(), 400)
	}
}

func TestPoliciesSatisfyPlacerInterface(t *testing.T) {
	fs := testFileSets(5)
	fam := hashx.NewFamily(1)
	var placers []Placer
	s, _ := NewSimple(fam, fs, testServers())
	a, _ := NewANU(fam, fs, testServers(), anu.DefaultControllerConfig())
	p, _ := NewPrescient(fs)
	v, _ := NewVirtualProcessor(fam, fs, 10)
	placers = append(placers, s, a, p, v)
	names := map[string]bool{}
	for _, pl := range placers {
		if pl.Name() == "" {
			t.Error("empty policy name")
		}
		names[pl.Name()] = true
		if pl.SharedStateSize() <= 0 {
			t.Errorf("%s: non-positive shared state", pl.Name())
		}
		if err := pl.Retune(nil); err == nil {
			t.Errorf("%s: nil env accepted", pl.Name())
		}
	}
	if len(names) != 4 {
		t.Errorf("policy names not distinct: %v", names)
	}
}

func TestANUConstructionErrors(t *testing.T) {
	fs := testFileSets(3)
	if _, err := NewANU(hashx.NewFamily(1), nil, testServers(), anu.DefaultControllerConfig()); err == nil {
		t.Error("no file sets accepted")
	}
	if _, err := NewANU(hashx.NewFamily(1), fs, nil, anu.DefaultControllerConfig()); err == nil {
		t.Error("no servers accepted")
	}
	bad := anu.DefaultControllerConfig()
	bad.Gamma = -1
	if _, err := NewANU(hashx.NewFamily(1), fs, testServers(), bad); err == nil {
		t.Error("invalid controller config accepted")
	}
}

func TestANUAccessorsAndAdvisories(t *testing.T) {
	fs := testFileSets(10)
	a, err := NewANU(hashx.NewFamily(1), fs, testServers(), anu.DefaultControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Controller() == nil || a.Map() == nil {
		t.Fatal("nil accessors")
	}
	if advs := a.Advisories(); len(advs) != 0 {
		t.Fatalf("advisories on a fresh policy: %+v", advs)
	}
	if a.Place(-1) != NoServer || a.Place(10) != NoServer {
		t.Fatal("out-of-range Place did not return NoServer")
	}
}

func TestPrescientAndVPPlaceOutOfRange(t *testing.T) {
	fs := testFileSets(4)
	p, _ := NewPrescient(fs)
	if p.Place(-1) != NoServer || p.Place(4) != NoServer {
		t.Error("prescient out-of-range Place")
	}
	v, _ := NewVirtualProcessor(hashx.NewFamily(1), fs, 8)
	if v.Place(-1) != NoServer || v.Place(4) != NoServer {
		t.Error("vp out-of-range Place")
	}
}

func TestStrategyPlacerChordBounded(t *testing.T) {
	fs := testFileSets(400)
	p, err := NewStrategyPlacer("chord-bounded", fs, testServers(), placement.Options{HashSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "chord-bounded" {
		t.Fatalf("Name() = %q", p.Name())
	}
	if p.Place(-1) != NoServer || p.Place(len(fs)) != NoServer {
		t.Fatal("out-of-range Place did not return NoServer")
	}
	counts := map[ServerID]int{}
	for i := range fs {
		id := p.Place(i)
		if id == NoServer {
			t.Fatalf("file set %d unplaced", i)
		}
		counts[id]++
	}

	// One server reports overload: the bounded-load rule sheds a prefix
	// of its arc to its successor, moving some (not all) of its keys.
	var hot ServerID = -1
	for id, c := range counts {
		if hot == -1 || c > counts[hot] {
			hot = id
		}
	}
	env := paperEnv(fs)
	env.Reports = nil
	for _, sv := range env.Servers {
		req := uint64(100)
		if sv.ID == hot {
			req = 10000
		}
		env.Reports = append(env.Reports, anu.Report{Server: sv.ID, Requests: req, Latency: 0.01})
	}
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	after := map[ServerID]int{}
	for i := range fs {
		after[p.Place(i)]++
	}
	if after[hot] >= counts[hot] {
		t.Fatalf("overloaded server kept %d file sets (was %d)", after[hot], counts[hot])
	}
	if after[hot] == 0 {
		t.Fatal("shedding evacuated the whole server; shed must stay below 1")
	}

	// A failed server's file sets all move to survivors; recovery via a
	// live report brings it back.
	env.Servers[0].Up = false
	env.Reports = env.Reports[:0]
	for _, sv := range env.Servers[1:] {
		env.Reports = append(env.Reports, anu.Report{Server: sv.ID, Requests: 100, Latency: 0.01})
	}
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if p.Place(i) == 0 {
			t.Fatalf("file set %d still placed on failed server 0", i)
		}
	}
	env.Servers[0].Up = true
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	back := 0
	for i := range fs {
		if p.Place(i) == 0 {
			back++
		}
	}
	if back == 0 {
		t.Fatal("recovered server received no file sets")
	}
	if p.SharedStateSize() != len(p.Strategy().Encode()) {
		t.Fatal("SharedStateSize disagrees with Encode length")
	}
}

// TestStrategyPlacerReweighsFromSpeeds: for a weight-aware strategy the
// simulator's server speeds are the source of capacity weights — every
// Retune refreshes the strategy's weight table from the snapshot, so a
// weight-aware scheme built without a-priori knowledge learns the
// paper's speed vector after one tuning round.
func TestStrategyPlacerReweighsFromSpeeds(t *testing.T) {
	fs := testFileSets(400)
	for _, tag := range []string{"rendezvous", "weighted-static", "power-of-d"} {
		t.Run(tag, func(t *testing.T) {
			// Built uniform: no Weights in the options.
			p, err := NewStrategyPlacer(tag, fs, testServers(), placement.Options{HashSeed: 1})
			if err != nil {
				t.Fatal(err)
			}
			rw, ok := p.Strategy().(placement.Reweigher)
			if !ok {
				t.Fatalf("%s does not implement Reweigher", tag)
			}
			for id, w := range rw.Weights() {
				if w != 1 {
					t.Fatalf("pre-retune weight[%d] = %g, want uniform 1", id, w)
				}
			}
			env := paperEnv(fs)
			for _, sv := range env.Servers {
				env.Reports = append(env.Reports, anu.Report{Server: sv.ID, Requests: 100, Latency: 0.5})
			}
			if err := p.Retune(env); err != nil {
				t.Fatal(err)
			}
			got := rw.Weights()
			for i, want := range []float64{1, 3, 5, 7, 9} {
				if got[ServerID(i)] != want {
					t.Errorf("post-retune weight[%d] = %g, want %g (speed)", i, got[ServerID(i)], want)
				}
			}
		})
	}
}

// TestStrategyPlacerReweighIgnoresNonWeighted: strategies without the
// Reweigher capability must retune exactly as before — the reweigh step
// cannot perturb ANU or chord behavior.
func TestStrategyPlacerReweighIgnoresNonWeighted(t *testing.T) {
	fs := testFileSets(200)
	p, err := NewStrategyPlacer("chord", fs, testServers(), placement.Options{HashSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Strategy().Encode()
	env := paperEnv(fs)
	for _, sv := range env.Servers {
		env.Reports = append(env.Reports, anu.Report{Server: sv.ID, Requests: 100, Latency: 0.5})
	}
	if err := p.Retune(env); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Strategy().Encode(), before) {
		t.Fatal("retune with speeds changed the unweighted chord placement")
	}
}
