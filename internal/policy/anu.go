package policy

import (
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/placement"
	"anurand/internal/workload"
)

// ANU is the paper's load-management system: placement by adaptive,
// non-uniform randomization over a unit interval, retuned each interval
// by the delegate's latency-feedback controller. It starts with no
// knowledge of server capabilities and converges by observation alone.
//
// The placement logic itself lives in placement.ANU — the same
// implementation the networked runtime serves from — so the simulator
// measures exactly the code that runs in production. This type only
// adds the simulator's file-set indexing and digest cache.
type ANU struct {
	names []string
	// digests caches hashx.Prehash of every file-set name: the
	// simulator calls Place once per request, and the digest is the
	// per-key half of the hash — only the per-round tweak varies along
	// the probe chain.
	digests []hashx.Digest
	s       *placement.ANU
}

// NewANU builds the policy with an equal-region initial map (the cold
// start of Section 4) and the given controller configuration.
func NewANU(family hashx.Family, fileSets []workload.FileSet, servers []ServerID, cfg anu.ControllerConfig) (*ANU, error) {
	return NewANUKeys(family, workload.NewKeySet(fileSets), servers, cfg)
}

// NewANUKeys is NewANU over a precomputed KeySet: the digest cache is
// borrowed from the key set instead of rebuilt, so a sweep sharing one
// trace hashes each file-set name exactly once across all its cells.
func NewANUKeys(family hashx.Family, keys *workload.KeySet, servers []ServerID, cfg anu.ControllerConfig) (*ANU, error) {
	if keys.Len() == 0 {
		return nil, fmt.Errorf("policy: NewANU: no file sets")
	}
	m, err := anu.New(family, servers)
	if err != nil {
		return nil, fmt.Errorf("policy: NewANU: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("policy: NewANU: %w", err)
	}
	return &ANU{
		names:   keys.Names,
		digests: keys.Digests,
		s:       placement.NewANU(m, anu.NewController(cfg)),
	}, nil
}

// Name implements Placer.
func (a *ANU) Name() string { return "anu" }

// Place implements Placer by hashing the file set's name into the unit
// interval with re-probing. The name's digest is precomputed, so a
// placement costs only the probe chain's mixes.
func (a *ANU) Place(fs int) ServerID {
	if fs < 0 || fs >= len(a.digests) {
		return NoServer
	}
	id, _ := a.s.LookupDigest(a.digests[fs])
	return id
}

// Retune implements Placer: one delegate feedback round. Servers marked
// down in the snapshot are failed in the map; recovered servers are
// re-admitted with an equal share.
func (a *ANU) Retune(env *Env) error {
	if err := validateEnv(env, len(a.names), false); err != nil {
		return err
	}
	return retuneStrategy(a.s, env)
}

// SharedStateSize implements Placer: the replicated unit-interval map.
func (a *ANU) SharedStateSize() int { return a.s.SharedStateSize() }

// Map exposes the underlying interval map for inspection (examples and
// the experiment harness read region lengths from it).
func (a *ANU) Map() *anu.Map { return a.s.Map() }

// Controller exposes the delegate controller for inspection.
func (a *ANU) Controller() *anu.Controller { return a.s.Controller() }

// Advisories lists servers the controller has flagged as incompetent
// (paper: "identifies such incompetent components and notifies
// administrators").
func (a *ANU) Advisories() []anu.Advisory { return a.s.Controller().Advisories() }
