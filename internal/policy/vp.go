package policy

import (
	"fmt"

	"anurand/internal/assign"
	"anurand/internal/hashx"
	"anurand/internal/workload"
)

// VirtualProcessor is the virtual-processor comparison system: file sets
// are statically hashed into V = N*v virtual processors, and the virtual
// processors are mapped to servers each tuning round using the same
// perfect knowledge as prescient (Section 5.1). The workload movement
// unit is the virtual processor, so small V means coarse tuning and
// large V means a large replicated address table — the Figure 8
// trade-off.
type VirtualProcessor struct {
	fsToVP  []int32    // static: file set -> virtual processor
	vpOwner []ServerID // tuned: virtual processor -> server
	loads   []float64  // scratch: per-VP aggregated load
}

// NewVirtualProcessor distributes the file sets over numVP virtual
// processors by hashing their names.
func NewVirtualProcessor(family hashx.Family, fileSets []workload.FileSet, numVP int) (*VirtualProcessor, error) {
	return NewVirtualProcessorKeys(family, workload.NewKeySet(fileSets), numVP)
}

// NewVirtualProcessorKeys is NewVirtualProcessor over a precomputed
// KeySet; the Figure 8 VP-count sweep reuses one digest pass for every
// value of v.
func NewVirtualProcessorKeys(family hashx.Family, keys *workload.KeySet, numVP int) (*VirtualProcessor, error) {
	if numVP <= 0 {
		return nil, fmt.Errorf("policy: NewVirtualProcessor: numVP %d must be positive", numVP)
	}
	if keys.Len() == 0 {
		return nil, fmt.Errorf("policy: NewVirtualProcessor: no file sets")
	}
	v := &VirtualProcessor{
		fsToVP:  make([]int32, keys.Len()),
		vpOwner: make([]ServerID, numVP),
		loads:   make([]float64, numVP),
	}
	for i, d := range keys.Digests {
		v.fsToVP[i] = int32(family.HashDigest(d, 0) % uint64(numVP))
	}
	for i := range v.vpOwner {
		v.vpOwner[i] = NoServer
	}
	return v, nil
}

// Name implements Placer.
func (v *VirtualProcessor) Name() string { return "vp" }

// NumVP returns the virtual processor count.
func (v *VirtualProcessor) NumVP() int { return len(v.vpOwner) }

// Place implements Placer through the two-level table.
func (v *VirtualProcessor) Place(fs int) ServerID {
	if fs < 0 || fs >= len(v.fsToVP) {
		return NoServer
	}
	return v.vpOwner[v.fsToVP[fs]]
}

// Retune implements Placer: aggregate ground-truth file-set loads per
// virtual processor and re-optimize the VP-to-server mapping.
func (v *VirtualProcessor) Retune(env *Env) error {
	if err := validateEnv(env, len(v.fsToVP), true); err != nil {
		return err
	}
	for i := range v.loads {
		v.loads[i] = 0
	}
	for fs, vp := range v.fsToVP {
		v.loads[vp] += env.FileSetLoads[fs]
	}
	items := make([]assign.Item, len(v.loads))
	for i, l := range v.loads {
		items[i] = assign.Item{ID: i, Load: l}
	}
	bins, ids := upBins(env)
	if len(bins) == 0 {
		for i := range v.vpOwner {
			v.vpOwner[i] = NoServer
		}
		return nil
	}
	a := warmStart(v.vpOwner, items, bins, ids)
	for i, b := range a {
		if b < 0 {
			v.vpOwner[i] = NoServer
		} else {
			v.vpOwner[i] = ids[b]
		}
	}
	return nil
}

// SharedStateSize implements Placer: the VP address table the paper
// calls out — one record per virtual processor (4-byte VP index +
// 4-byte server id) that every node must replicate to address load.
func (v *VirtualProcessor) SharedStateSize() int { return 8 * len(v.vpOwner) }
