// Package policy implements the four load-management systems the paper
// evaluates (Section 5.1):
//
//   - Simple randomization: a static uniform hash of file sets onto
//     servers; cheap, oblivious to skew and heterogeneity.
//   - ANU randomization: the paper's contribution — tunable hashing onto
//     a unit interval with latency-feedback region scaling (package anu).
//   - Dynamic prescient: per-interval optimal assignment of file sets
//     using perfect knowledge of workload and capacities; the upper
//     bound on load balance.
//   - Virtual processors: file sets hashed statically into N*v virtual
//     processors, which are mapped to servers each interval with perfect
//     knowledge.
//
// A policy sees the cluster only through Env snapshots delivered at each
// tuning interval and answers Place queries in between. The cluster
// layer (package clustersim) owns request routing, movement accounting
// and failure handling.
package policy

import (
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/workload"
)

// ServerID identifies a server; it is the same identifier space as
// package anu's.
type ServerID = anu.ServerID

// NoServer marks "no placement possible" (all servers down).
const NoServer = anu.NoServer

// ServerInfo describes one server in an Env snapshot.
type ServerInfo struct {
	ID ServerID
	// Speed is the capacity factor (the paper's 1, 3, 5, 7, 9).
	Speed float64
	// Up reports whether the server is serving.
	Up bool
}

// Env is the tuning-time view a policy receives. Which fields a policy
// may consult encodes its information model: ANU uses only Reports
// (latency feedback — no a-priori knowledge); prescient and virtual
// processors use Servers' speeds and FileSetLoads (perfect knowledge);
// simple randomization uses nothing.
type Env struct {
	// Now is the virtual time of the tuning round in seconds.
	Now float64
	// Servers lists every server with its capacity and health.
	Servers []ServerInfo
	// Reports carries the per-server latency feedback for the elapsed
	// interval.
	Reports []anu.Report
	// FileSetLoads is the ground-truth offered load of each file set in
	// unit-speed work seconds per second (perfect knowledge; only
	// prescient-class policies may read it).
	FileSetLoads []float64
}

// Placer is a load-management policy: a placement function over file
// sets plus a periodic retuning hook.
type Placer interface {
	// Name identifies the policy in reports ("simple", "anu",
	// "prescient", "vp").
	Name() string

	// Place returns the server that should serve file set fs (an index
	// into the workload's file set list). It must return an up server
	// whenever the policy believes one exists; the cluster layer
	// re-routes NoServer or down placements.
	Place(fs int) ServerID

	// Retune runs one tuning round against the environment snapshot.
	// It returns an error only for programming mistakes (malformed
	// env), not for conditions like all-servers-down.
	Retune(env *Env) error

	// SharedStateSize returns the size in bytes of the state this
	// policy would replicate to every cluster node — the scalability
	// currency of the paper's Figure 8 comparison.
	SharedStateSize() int
}

// validateEnv rejects snapshots that would indicate a harness bug.
func validateEnv(env *Env, numFileSets int, needLoads bool) error {
	if env == nil {
		return fmt.Errorf("policy: nil env")
	}
	if len(env.Servers) == 0 {
		return fmt.Errorf("policy: env has no servers")
	}
	seen := make(map[ServerID]bool, len(env.Servers))
	for _, s := range env.Servers {
		if seen[s.ID] {
			return fmt.Errorf("policy: duplicate server %d in env", s.ID)
		}
		seen[s.ID] = true
		if s.Speed < 0 {
			return fmt.Errorf("policy: server %d has negative speed", s.ID)
		}
	}
	if needLoads && len(env.FileSetLoads) != numFileSets {
		return fmt.Errorf("policy: env has %d file set loads, want %d", len(env.FileSetLoads), numFileSets)
	}
	return nil
}

// Simple is the static simple-randomization baseline: file sets are
// uniformly hashed over the initial server set once and never moved. It
// is the "static, offline randomized policy" of the paper's comparison;
// it cannot respond to skew, heterogeneity or failures.
type Simple struct {
	table   []ServerID
	servers []ServerID
}

// NewSimple hashes each file set onto one of the servers with h_0.
func NewSimple(family hashx.Family, fileSets []workload.FileSet, servers []ServerID) (*Simple, error) {
	return NewSimpleKeys(family, workload.NewKeySet(fileSets), servers)
}

// NewSimpleKeys is NewSimple over a precomputed KeySet, so a parameter
// sweep sharing one trace pays the per-name hash pass once.
func NewSimpleKeys(family hashx.Family, keys *workload.KeySet, servers []ServerID) (*Simple, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("policy: NewSimple: no servers")
	}
	if keys.Len() == 0 {
		return nil, fmt.Errorf("policy: NewSimple: no file sets")
	}
	s := &Simple{
		table:   make([]ServerID, keys.Len()),
		servers: append([]ServerID(nil), servers...),
	}
	for i, d := range keys.Digests {
		s.table[i] = servers[family.HashDigest(d, 0)%uint64(len(servers))]
	}
	return s, nil
}

// Name implements Placer.
func (s *Simple) Name() string { return "simple" }

// Place implements Placer.
func (s *Simple) Place(fs int) ServerID {
	if fs < 0 || fs >= len(s.table) {
		return NoServer
	}
	return s.table[fs]
}

// Retune implements Placer; simple randomization is static, so this
// only validates the snapshot.
func (s *Simple) Retune(env *Env) error {
	return validateEnv(env, len(s.table), false)
}

// SharedStateSize implements Placer: the only replicated state is the
// server list (4 bytes per id) plus the hash seed.
func (s *Simple) SharedStateSize() int { return 8 + 4*len(s.servers) }
