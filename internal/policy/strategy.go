package policy

import (
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/placement"
	"anurand/internal/workload"
)

// StrategyPlacer adapts any registered placement.Strategy to the
// simulator's Placer interface, so every scheme the networked runtime
// can serve — ANU, the plain chord ring, the bounded-load variant — is
// also measurable under the simulator's closed loop, from one shared
// implementation per scheme.
type StrategyPlacer struct {
	keys *workload.KeySet
	s    placement.Strategy
	// dl is non-nil when s supports digest lookups; Place then skips the
	// per-request name hash and reuses the key set's precomputed digest.
	dl placement.DigestLookuper
}

// NewStrategyPlacer builds a Placer for a registered strategy over the
// workload's file sets.
func NewStrategyPlacer(strategy string, fileSets []workload.FileSet, servers []ServerID, opts placement.Options) (*StrategyPlacer, error) {
	if len(fileSets) == 0 {
		return nil, fmt.Errorf("policy: NewStrategyPlacer: no file sets")
	}
	return NewStrategyPlacerKeys(strategy, workload.NewKeySet(fileSets), servers, opts)
}

// NewStrategyPlacerKeys is NewStrategyPlacer over a precomputed KeySet.
func NewStrategyPlacerKeys(strategy string, keys *workload.KeySet, servers []ServerID, opts placement.Options) (*StrategyPlacer, error) {
	if keys.Len() == 0 {
		return nil, fmt.Errorf("policy: NewStrategyPlacer: no file sets")
	}
	s, err := placement.New(strategy, servers, opts)
	if err != nil {
		return nil, fmt.Errorf("policy: NewStrategyPlacer: %w", err)
	}
	p := &StrategyPlacer{keys: keys, s: s}
	p.dl, _ = s.(placement.DigestLookuper)
	return p, nil
}

// Strategy exposes the wrapped strategy for inspection.
func (p *StrategyPlacer) Strategy() placement.Strategy { return p.s }

// Name implements Placer: the strategy's registered tag.
func (p *StrategyPlacer) Name() string { return p.s.Name() }

// Place implements Placer.
func (p *StrategyPlacer) Place(fs int) ServerID {
	if fs < 0 || fs >= p.keys.Len() {
		return NoServer
	}
	if p.dl != nil {
		id, _ := p.dl.LookupDigest(p.keys.Digests[fs])
		return id
	}
	id, ok := p.s.Lookup(p.keys.Names[fs])
	if !ok {
		return NoServer
	}
	return id
}

// Retune implements Placer: one feedback round against the snapshot.
func (p *StrategyPlacer) Retune(env *Env) error {
	if err := validateEnv(env, p.keys.Len(), false); err != nil {
		return err
	}
	return retuneStrategy(p.s, env)
}

// SharedStateSize implements Placer.
func (p *StrategyPlacer) SharedStateSize() int { return p.s.SharedStateSize() }

// retuneStrategy is the one simulator tuning round every strategy-backed
// placer shares: commission servers the snapshot reports up but the
// strategy does not know, re-admit recovered members, refresh capacity
// weights on weight-aware strategies from the snapshot's server speeds,
// convert down servers to Failed reports, and apply the strategy's own
// feedback step.
func retuneStrategy(s placement.Strategy, env *Env) error {
	shares := s.Shares()
	for _, sv := range env.Servers {
		if !sv.Up {
			continue
		}
		if !s.Has(sv.ID) {
			if err := s.AddServer(sv.ID); err != nil {
				return fmt.Errorf("policy: %s retune: %w", s.Name(), err)
			}
		} else if shares[sv.ID] == 0 {
			if err := s.Recover(sv.ID); err != nil {
				return fmt.Errorf("policy: %s retune: %w", s.Name(), err)
			}
		}
	}
	if rw, ok := s.(placement.Reweigher); ok {
		weights := make(map[placement.ServerID]float64)
		for _, sv := range env.Servers {
			if sv.Speed > 0 && s.Has(sv.ID) {
				weights[sv.ID] = sv.Speed
			}
		}
		if len(weights) > 0 {
			if err := rw.SetWeights(weights); err != nil {
				return fmt.Errorf("policy: %s retune: %w", s.Name(), err)
			}
		}
	}
	reports := append([]anu.Report(nil), env.Reports...)
	for _, sv := range env.Servers {
		if !sv.Up && s.Has(sv.ID) {
			reports = append(reports, anu.Report{Server: sv.ID, Failed: true})
		}
	}
	if _, err := s.Tune(reports); err != nil {
		return fmt.Errorf("policy: %s retune: %w", s.Name(), err)
	}
	return nil
}
