// Package metrics provides the statistical accumulators the simulation
// reports through: streaming mean/variance summaries (Welford),
// fixed-width time-series windows for the latency-over-time figures, and
// logarithmic latency histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming moment accumulator using Welford's algorithm,
// numerically stable for long runs. The zero value is an empty summary.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s. The result is as if every
// observation of o had been Added to s (Chan et al. parallel variance).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := float64(s.n + o.n)
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/n
	s.mean += delta * float64(o.n) / n
	s.sum += o.sum
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the observation count.
func (s Summary) N() uint64 { return s.n }

// Mean returns the mean, or 0 for an empty summary.
func (s Summary) Mean() float64 { return s.mean }

// Sum returns the sum of observations.
func (s Summary) Sum() float64 { return s.sum }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (s Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 when empty).
func (s Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s Summary) Max() float64 { return s.max }

// Reset empties the summary.
func (s *Summary) Reset() { *s = Summary{} }

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Series accumulates observations into fixed-width time windows,
// producing the per-interval mean curves of Figures 4 and 5.
type Series struct {
	window  float64
	buckets []Summary
}

// NewSeries creates a series with the given positive window width in
// seconds.
func NewSeries(window float64) *Series {
	if window <= 0 || math.IsNaN(window) || math.IsInf(window, 0) {
		panic(fmt.Sprintf("metrics: NewSeries with invalid window %g", window))
	}
	return &Series{window: window}
}

// Window returns the window width.
func (s *Series) Window() float64 { return s.window }

// Add records observation x at time t (t < 0 is clamped to 0).
func (s *Series) Add(t, x float64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / s.window)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, Summary{})
	}
	s.buckets[idx].Add(x)
}

// Len returns the number of windows touched so far.
func (s *Series) Len() int { return len(s.buckets) }

// At returns the summary for window i (empty summary when out of
// range).
func (s *Series) At(i int) Summary {
	if i < 0 || i >= len(s.buckets) {
		return Summary{}
	}
	return s.buckets[i]
}

// Means returns the per-window means up to n windows, padding with NaN
// for windows with no observations so plots show gaps rather than
// zeros.
func (s *Series) Means(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		b := s.At(i)
		if b.N() == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = b.Mean()
		}
	}
	return out
}

// Counts returns per-window observation counts up to n windows.
func (s *Series) Counts(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.At(i).N()
	}
	return out
}

// Histogram is a logarithmic-bucket latency histogram covering
// [Lo, Hi) with Buckets geometric buckets plus underflow and overflow.
type Histogram struct {
	lo, ratio float64
	counts    []uint64
	under     uint64
	over      uint64
	total     uint64
	// maxSeen is the largest finite observation, so tail quantiles that
	// land in the overflow bin can report a real value instead of the
	// top bucket edge.
	maxSeen float64
}

// NewHistogram creates a histogram over [lo, hi) with n geometric
// buckets. Requires 0 < lo < hi and n > 0.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if !(lo > 0) || hi <= lo || n <= 0 {
		panic(fmt.Sprintf("metrics: NewHistogram(%g, %g, %d) invalid", lo, hi, n))
	}
	return &Histogram{
		lo:     lo,
		ratio:  math.Pow(hi/lo, 1/float64(n)),
		counts: make([]uint64, n),
	}
}

// Add records one observation. NaN observations count into the
// underflow bin — they carry no magnitude, and `x < h.lo` alone would
// let them through to a log/int conversion whose huge negative result
// panics on the bucket index. Finite observations track the running
// maximum so Quantile can clamp overflow-bin mass to a real value.
func (h *Histogram) Add(x float64) {
	h.total++
	if math.IsNaN(x) || x < h.lo {
		h.under++
		return
	}
	if x > h.maxSeen && !math.IsInf(x, 1) {
		h.maxSeen = x
	}
	idx := int(math.Log(x/h.lo) / math.Log(h.ratio))
	if idx >= len(h.counts) || math.IsInf(x, 1) {
		h.over++
		return
	}
	if idx < 0 {
		// x >= lo, so a negative index can only be float rounding at
		// the lower edge; fold it into the first bucket's neighborhood
		// via the underflow counter rather than indexing out of range.
		h.under++
		return
	}
	h.counts[idx]++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest finite observation (0 when none).
func (h *Histogram) Max() float64 { return h.maxSeen }

// Underflow and Overflow return the out-of-range observation counts
// (NaN observations count as underflow).
func (h *Histogram) Underflow() uint64 { return h.under }
func (h *Histogram) Overflow() uint64  { return h.over }

// Quantile returns an estimate of the q-quantile (q in [0,1]) by
// linear interpolation within the containing bucket. Mass in the
// underflow bin reports the low edge (a lower bound); mass in the
// overflow bin reports the maximum finite observation — returning the
// top bucket edge there would silently understate exactly the tail
// latencies the histogram exists to expose, and the true maximum is
// the tightest +Inf-safe upper bound the histogram tracks.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	edge := h.lo
	for _, c := range h.counts {
		next := edge * h.ratio
		if target <= cum+float64(c) && c > 0 {
			frac := (target - cum) / float64(c)
			return edge + frac*(next-edge)
		}
		cum += float64(c)
		edge = next
	}
	// Target mass lands in the overflow bin (or float rounding walked
	// past the last bucket): clamp to the real maximum when one was
	// seen — only +Inf-only overflow falls back to the top edge.
	if h.maxSeen > 0 {
		return math.Max(h.maxSeen, edge)
	}
	return edge
}

// Buckets returns (lower edge, count) pairs for non-empty buckets.
func (h *Histogram) Buckets() []BucketCount {
	var out []BucketCount
	edge := h.lo
	for _, c := range h.counts {
		if c > 0 {
			out = append(out, BucketCount{Lo: edge, Count: c})
		}
		edge *= h.ratio
	}
	return out
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Lo    float64
	Count uint64
}

// Clone returns an independent copy, so a snapshot (e.g. cluster.Stats)
// can outlive the accumulator it was taken from.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// Merge folds another histogram with identical geometry (same lo, hi,
// bucket count) into h; it panics on a geometry mismatch, which is a
// construction bug, not data.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.lo != o.lo || h.ratio != o.ratio || len(h.counts) != len(o.counts) {
		panic(fmt.Sprintf("metrics: Merge of histograms with different geometry (lo %g/%g, buckets %d/%d)",
			h.lo, o.lo, len(h.counts), len(o.counts)))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.total += o.total
	if o.maxSeen > h.maxSeen {
		h.maxSeen = o.maxSeen
	}
}

// String formats the tail summary operators care about.
func (h *Histogram) String() string {
	if h == nil || h.total == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%.4g p95=%.4g p99=%.4g p999=%.4g max=%.4g",
		h.total, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Quantile(0.999), h.maxSeen)
}

// Percentile computes the p-th percentile (0-100) of a sample slice by
// sorting a copy — the exact companion to Histogram.Quantile for small
// samples.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}
