package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"anurand/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %g, want 5", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Fatalf("StdDev = %g, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %g, want 40", s.Sum())
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 || s.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	prop := func(seed uint64, split uint8) bool {
		src := rng.New(seed)
		n := 100
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.NormFloat64()*10 + 5
		}
		cut := int(split) % n
		var all, a, b Summary
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(b) // merging empty: no-op
	if a.N() != 1 {
		t.Fatal("merge of empty changed summary")
	}
	b.Merge(a) // merging into empty: copy
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestSummaryNumericalStability(t *testing.T) {
	// Large offset, small variance: naive sum-of-squares would
	// catastrophically cancel.
	var s Summary
	const offset = 1e9
	for i := 0; i < 1000; i++ {
		s.Add(offset + float64(i%2)) // values 1e9 and 1e9+1
	}
	if math.Abs(s.Variance()-0.25) > 1e-6 {
		t.Fatalf("Variance = %g, want 0.25 (stability failure)", s.Variance())
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 1)
	s.Add(5, 3)
	s.Add(10, 100)
	s.Add(25, 7)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.At(0).Mean(); got != 2 {
		t.Fatalf("window 0 mean %g, want 2", got)
	}
	if got := s.At(1).Mean(); got != 100 {
		t.Fatalf("window 1 mean %g, want 100", got)
	}
	if got := s.At(2).Mean(); got != 7 {
		t.Fatalf("window 2 mean %g, want 7", got)
	}
}

func TestSeriesMeansPadsWithNaN(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 5)
	s.Add(25, 9)
	means := s.Means(4)
	if means[0] != 5 || means[2] != 9 {
		t.Fatalf("means %v", means)
	}
	if !math.IsNaN(means[1]) || !math.IsNaN(means[3]) {
		t.Fatalf("empty windows not NaN: %v", means)
	}
	counts := s.Counts(4)
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestSeriesNegativeTimeClamped(t *testing.T) {
	s := NewSeries(1)
	s.Add(-5, 42)
	if got := s.At(0).Mean(); got != 42 {
		t.Fatalf("negative time observation lost: %g", got)
	}
}

func TestSeriesInvalidWindowPanics(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSeries(%g) did not panic", w)
				}
			}()
			NewSeries(w)
		}()
	}
}

func TestHistogramCountsAndQuantiles(t *testing.T) {
	h := NewHistogram(0.001, 1000, 120)
	src := rng.New(1)
	exp := rng.NewExponential(1)
	const n = 200000
	for i := 0; i < n; i++ {
		h.Add(exp.Sample(src))
	}
	if h.Total() != n {
		t.Fatalf("Total = %d, want %d", h.Total(), n)
	}
	// Exponential(1): median = ln 2, p99 = ln 100.
	if med := h.Quantile(0.5); math.Abs(med-math.Ln2)/math.Ln2 > 0.1 {
		t.Errorf("median %g, want ~%g", med, math.Ln2)
	}
	p99 := h.Quantile(0.99)
	want99 := math.Log(100)
	if math.Abs(p99-want99)/want99 > 0.1 {
		t.Errorf("p99 %g, want ~%g", p99, want99)
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(1, 10, 4)
	h.Add(0.5) // under
	h.Add(100) // over
	h.Add(2)
	if h.Total() != 3 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want lo edge 1", got)
	}
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Count != 1 {
		t.Fatalf("Buckets = %+v, want one bucket with count 1", bs)
	}
}

// TestHistogramNaNDoesNotPanic is the regression test for the Add
// index bug: NaN fails `x < lo`, and log(NaN) converted to int used to
// produce a huge negative bucket index and panic. NaN now lands in the
// underflow counter and never poisons maxSeen or the quantiles.
func TestHistogramNaNDoesNotPanic(t *testing.T) {
	h := NewHistogram(1, 1000, 30)
	h.Add(math.NaN())
	h.Add(5)
	h.Add(math.NaN())
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if h.Underflow() != 2 {
		t.Errorf("Underflow = %d, want 2 (the NaNs)", h.Underflow())
	}
	if max := h.Max(); max != 5 {
		t.Errorf("Max = %g, want 5 (NaN must not poison it)", max)
	}
	if q := h.Quantile(1); math.IsNaN(q) {
		t.Errorf("Quantile(1) = NaN after NaN observations")
	}
}

func TestHistogramInfinityGoesToOverflow(t *testing.T) {
	h := NewHistogram(1, 1000, 30)
	h.Add(math.Inf(1))
	h.Add(7)
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow())
	}
	if max := h.Max(); max != 7 {
		t.Errorf("Max = %g, want 7 (+Inf must not poison it)", max)
	}
	if q := h.Quantile(1); math.IsInf(q, 1) {
		t.Errorf("Quantile(1) = +Inf, want a finite clamp")
	}
}

// TestHistogramOverflowQuantileClampsToMax pins the tail fix: with
// target mass in the overflow bin, Quantile used to return the top
// bucket edge (1000 here), understating the tail by orders of
// magnitude.
func TestHistogramOverflowQuantileClampsToMax(t *testing.T) {
	h := NewHistogram(1, 1000, 30)
	for i := 0; i < 90; i++ {
		h.Add(10)
	}
	for i := 0; i < 10; i++ {
		h.Add(50000) // 10% of mass far beyond hi
	}
	p999 := h.Quantile(0.999)
	if p999 != 50000 {
		t.Errorf("p999 = %g, want 50000 (max observed), not the bucket edge", p999)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-10)/10 > 0.2 {
		t.Errorf("p50 = %g, want ~10", p50)
	}
}

func TestHistogramCloneIsIndependent(t *testing.T) {
	h := NewHistogram(1, 100, 10)
	h.Add(5)
	c := h.Clone()
	h.Add(5)
	h.Add(7)
	if c.Total() != 1 || h.Total() != 3 {
		t.Fatalf("clone shares state: clone n=%d, orig n=%d", c.Total(), h.Total())
	}
	var nilH *Histogram
	if nilH.Clone() != nil {
		t.Error("Clone of nil histogram not nil")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1000, 30)
	b := NewHistogram(1, 1000, 30)
	all := NewHistogram(1, 1000, 30)
	src := rng.New(7)
	exp := rng.NewExponential(0.1)
	for i := 0; i < 5000; i++ {
		x := exp.Sample(src)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Total() != all.Total() {
		t.Fatalf("merged total %d, want %d", a.Total(), all.Total())
	}
	if a.Max() != all.Max() {
		t.Errorf("merged max %g, want %g", a.Max(), all.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("merged q%g = %g, want %g", q, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Merge with mismatched geometry did not panic")
		}
	}()
	a.Merge(NewHistogram(1, 1000, 31))
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0.001, 10, 40)
	if got := h.String(); got != "n=0" {
		t.Errorf("empty String = %q", got)
	}
	h.Add(0.5)
	for _, want := range []string{"n=1", "p99=", "max=0.5"} {
		if !strings.Contains(h.String(), want) {
			t.Errorf("String = %q, missing %q", h.String(), want)
		}
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(1, 10, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile of empty histogram not NaN")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0,...) did not panic")
		}
	}()
	NewHistogram(0, 10, 4)
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty slice not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}
