package sim

import (
	"fmt"
	"math"
)

// Job is a unit of work submitted to a Resource. Demand is expressed in
// unit-speed seconds: a server with speed s completes the job in
// Demand/s seconds of service, after any queueing delay. This mirrors
// the paper's heterogeneity model where the same request takes time T on
// the slowest server and T/9 on the fastest.
//
// Jobs come in two flavours. A caller-constructed &Job{} behaves as it
// always did and is never touched after Done returns. A pooled job from
// Engine.AcquireJob is recycled automatically the moment its Done
// callback returns (or, for jobs handed back by DrainQueue or Fail,
// when the caller resubmits it or calls Engine.ReleaseJob) — the
// allocation-free path for steady-state request streams. A pooled job
// must not be resubmitted from inside its own Done callback and must
// not be referenced after release.
type Job struct {
	// Demand is the amount of work in unit-speed seconds. Must be
	// positive and finite.
	Demand float64

	// Done, if non-nil, is invoked at the virtual instant the job
	// completes service.
	Done func(j *Job)

	// Payload carries caller context (for example the request being
	// served) through the queue. Storing a non-pointer here allocates;
	// hot paths should use the typed slots below instead.
	Payload any

	// Tag and Aux are caller-owned integer slots and Stamp a
	// caller-owned time slot: the typed, allocation-free alternative to
	// Payload. With a single shared Done function they carry everything
	// a per-request context closure used to (the cluster layer stores
	// the file set in Tag, the target server in Aux and the arrival
	// time in Stamp).
	Tag, Aux int32
	Stamp    float64

	// Arrive, Start and Finish are stamped by the Resource with the
	// virtual times of submission, service start and completion.
	Arrive, Start, Finish float64

	next   *Job // intrusive FIFO / free-list link
	pooled bool
}

// Wait returns the queueing delay the job experienced.
func (j *Job) Wait() float64 { return j.Start - j.Arrive }

// Latency returns the total response time (queueing plus service).
func (j *Job) Latency() float64 { return j.Finish - j.Arrive }

// AcquireJob returns a zeroed job from the engine's pool. The job is
// recycled automatically after its Done callback returns; see Job.
func (e *Engine) AcquireJob() *Job {
	a := e.arenaRef()
	j := a.freeJob
	if j == nil {
		j = new(Job)
	} else {
		a.freeJob = j.next
		j.next = nil
	}
	j.pooled = true
	return j
}

// ReleaseJob returns a pooled job to the engine's pool without running
// it — the path for orphans from Fail or DrainQueue that the caller
// does not resubmit. Releasing a caller-constructed (non-pooled) job or
// releasing twice is a no-op.
func (e *Engine) ReleaseJob(j *Job) {
	if j == nil || !j.pooled {
		return
	}
	a := e.arenaRef()
	*j = Job{next: a.freeJob} // drop references so the pool retains nothing
	a.freeJob = j
}

// Resource is a single-server FIFO queueing station with a speed
// factor, the model of one metadata server. It is driven entirely by an
// Engine: Submit enqueues work and the completion events fire on the
// engine's calendar.
type Resource struct {
	eng  *Engine
	name string

	speed float64
	up    bool

	head, tail *Job // waiting jobs, FIFO
	queued     int
	current    *Job
	completion Timer

	served      uint64
	busy        float64 // accumulated busy seconds (completed service)
	serviceFrom float64 // start of in-flight service, valid when current != nil
}

// NewResource creates an idle, up resource with the given positive speed
// factor attached to the engine.
func NewResource(e *Engine, name string, speed float64) *Resource {
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		panic(fmt.Sprintf("sim: NewResource %q with invalid speed %g", name, speed))
	}
	return &Resource{eng: e, name: name, speed: speed, up: true}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Speed returns the current speed factor.
func (r *Resource) Speed() float64 { return r.speed }

// SetSpeed changes the speed factor for subsequently started jobs. The
// job in service, if any, finishes at its already-scheduled time.
func (r *Resource) SetSpeed(speed float64) {
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		panic(fmt.Sprintf("sim: SetSpeed %q with invalid speed %g", r.name, speed))
	}
	r.speed = speed
}

// Up reports whether the resource is accepting and serving work.
func (r *Resource) Up() bool { return r.up }

// QueueLen returns the number of jobs waiting (excluding the one in
// service).
func (r *Resource) QueueLen() int { return r.queued }

// InService reports whether a job is currently being served.
func (r *Resource) InService() bool { return r.current != nil }

// Served returns the number of jobs completed.
func (r *Resource) Served() uint64 { return r.served }

// BusyTime returns the accumulated service time, including the elapsed
// portion of an in-flight job, as of the engine's current time.
func (r *Resource) BusyTime() float64 {
	b := r.busy
	if r.current != nil {
		b += r.eng.Now() - r.serviceFrom
	}
	return b
}

// Backlog returns the total remaining demand (unit-speed seconds) of the
// queue plus the unserved portion of the in-flight job. It is the
// instantaneous load metric policies may inspect.
func (r *Resource) Backlog() float64 {
	d := 0.0
	for j := r.head; j != nil; j = j.next {
		d += j.Demand
	}
	if r.current != nil {
		remaining := (r.current.Finish - r.eng.Now()) * r.speed
		if remaining > 0 {
			d += remaining
		}
	}
	return d
}

// Submit enqueues a job. It panics on a non-positive demand or if the
// resource is down; the cluster layer must route around failed servers.
func (r *Resource) Submit(j *Job) {
	if !r.up {
		panic(fmt.Sprintf("sim: Submit to down resource %q", r.name))
	}
	if j.Demand <= 0 || math.IsNaN(j.Demand) || math.IsInf(j.Demand, 0) {
		panic(fmt.Sprintf("sim: Submit job with invalid demand %g", j.Demand))
	}
	j.Arrive = r.eng.Now()
	j.next = nil
	if r.current == nil {
		r.startService(j)
		return
	}
	if r.tail == nil {
		r.head, r.tail = j, j
	} else {
		r.tail.next = j
		r.tail = j
	}
	r.queued++
}

// InjectBusy occupies the server with anonymous work for d seconds of
// wall-clock service at the current speed (for example a cache flush
// when shedding a file set). The work queues FIFO like any job.
func (r *Resource) InjectBusy(d float64) {
	if d <= 0 {
		return
	}
	j := r.eng.AcquireJob()
	j.Demand = d * r.speed
	r.Submit(j)
}

// resourceComplete is the shared completion callback: the in-service
// job is always r.current, so the resource itself is argument enough
// and completions schedule without allocating.
func resourceComplete(arg any) {
	r := arg.(*Resource)
	r.complete(r.current)
}

func (r *Resource) startService(j *Job) {
	j.Start = r.eng.Now()
	j.Finish = j.Start + j.Demand/r.speed
	r.current = j
	r.serviceFrom = j.Start
	r.completion = r.eng.ScheduleCallAt(j.Finish, resourceComplete, r)
}

func (r *Resource) complete(j *Job) {
	r.busy += r.eng.Now() - r.serviceFrom
	r.current = nil
	r.completion = Timer{}
	r.served++
	if r.head != nil {
		next := r.head
		r.head = next.next
		if r.head == nil {
			r.tail = nil
		}
		r.queued--
		r.startService(next)
	}
	if j.Done != nil {
		j.Done(j)
	}
	r.eng.ReleaseJob(j) // no-op for caller-constructed jobs
}

// DrainQueue removes and returns the waiting jobs (not the one in
// service) for which keep returns false. The relative order of the
// remaining queue is preserved. It is the mechanism for redirecting
// queued requests when their file set moves to another server. Drained
// pooled jobs are owned by the caller: resubmit them or release them
// with Engine.ReleaseJob.
func (r *Resource) DrainQueue(keep func(*Job) bool) []*Job {
	var drained []*Job
	var head, tail *Job
	n := 0
	for j := r.head; j != nil; {
		next := j.next
		j.next = nil
		if keep(j) {
			if tail == nil {
				head, tail = j, j
			} else {
				tail.next = j
				tail = j
			}
			n++
		} else {
			drained = append(drained, j)
		}
		j = next
	}
	r.head, r.tail, r.queued = head, tail, n
	return drained
}

// Fail takes the resource down and returns all unfinished jobs: the job
// in service (its partial progress is lost, as a crashed server would
// lose it) followed by the FIFO queue. The caller re-routes them;
// pooled orphans it does not resubmit must go back via
// Engine.ReleaseJob.
func (r *Resource) Fail() []*Job {
	if !r.up {
		return nil
	}
	r.up = false
	var orphans []*Job
	if r.current != nil {
		r.completion.Cancel()
		// The partially-performed service still consumed real time.
		r.busy += r.eng.Now() - r.serviceFrom
		r.current.Start, r.current.Finish = 0, 0
		orphans = append(orphans, r.current)
		r.current = nil
		r.completion = Timer{}
	}
	for j := r.head; j != nil; {
		next := j.next
		j.next = nil
		orphans = append(orphans, j)
		j = next
	}
	r.head, r.tail, r.queued = nil, nil, 0
	return orphans
}

// Recover brings a failed resource back up with an empty queue.
// Recovering an up resource is a no-op.
func (r *Resource) Recover() {
	r.up = true
}
