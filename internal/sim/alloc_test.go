package sim

import "testing"

// TestScheduleRunZeroAlloc asserts the engine's steady-state event cycle
// — schedule a typed callback, run it, chain the next — never allocates:
// the popped event is recycled into the very slot the callback's
// re-schedule acquires.
func TestScheduleRunZeroAlloc(t *testing.T) {
	var eng Engine
	var fired int
	var self Callback
	self = func(arg any) {
		fired++
		e := arg.(*Engine)
		if fired%2 == 0 {
			e.ScheduleCall(1, self, e)
		}
	}
	// Warm the pool: one event in flight, free list primed.
	eng.ScheduleCall(1, self, &eng)
	eng.RunAll()

	if n := testing.AllocsPerRun(200, func() {
		eng.ScheduleCall(1, self, &eng)
		eng.RunAll()
	}); n != 0 {
		t.Errorf("steady-state ScheduleCall+Run allocates %v per cycle, want 0", n)
	}
	if fired == 0 {
		t.Fatal("callback never ran")
	}
}

// TestTickerZeroAlloc asserts a ticker's re-arm cycle does not allocate:
// each tick's event slot is reused by the next arm.
func TestTickerZeroAlloc(t *testing.T) {
	var eng Engine
	ticks := 0
	tk := eng.NewTicker(1, func() { ticks++ })
	eng.Run(2) // warm: the first arm's slot is now pooled
	horizon := eng.Now()
	if n := testing.AllocsPerRun(100, func() {
		horizon += 5
		eng.Run(horizon)
	}); n != 0 {
		t.Errorf("ticker steady state allocates %v per window, want 0", n)
	}
	tk.Stop()
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestResourceSubmitZeroAlloc asserts the full pooled request cycle —
// acquire a job, submit, serve, complete, auto-release — runs without
// allocating once the pools are warm. This is the clustersim dispatch
// path.
func TestResourceSubmitZeroAlloc(t *testing.T) {
	var eng Engine
	res := NewResource(&eng, "srv", 2)
	var served int
	done := func(*Job) { served++ }

	submit := func() {
		j := eng.AcquireJob()
		j.Demand = 1
		j.Tag = 7
		j.Aux = 1
		j.Stamp = eng.Now()
		j.Done = done
		res.Submit(j)
	}
	// Warm both pools (job + completion event).
	submit()
	eng.RunAll()

	if n := testing.AllocsPerRun(200, func() {
		submit()
		eng.RunAll()
	}); n != 0 {
		t.Errorf("pooled Submit cycle allocates %v per job, want 0", n)
	}
	if served == 0 {
		t.Fatal("no jobs served")
	}
}

// TestArenaReuseAcrossRuns asserts a second engine run on the same arena
// starts with everything it needs pooled: no allocations at all for a
// fresh engine's whole schedule/submit/run lifetime.
func TestArenaReuseAcrossRuns(t *testing.T) {
	var arena Arena
	run := func() {
		var eng Engine
		eng.UseArena(&arena)
		res := NewResource(&eng, "srv", 1)
		for i := 0; i < 10; i++ {
			j := eng.AcquireJob()
			j.Demand = 1
			res.Submit(j)
		}
		eng.RunAll()
	}
	run() // warm the arena
	// NewResource itself allocates (one struct + name), so the budget is
	// the per-run fixed cost, not per-event: all 10 jobs and their
	// completion events must come from the pool.
	n := testing.AllocsPerRun(50, run)
	if n > 4 {
		t.Errorf("arena-backed run allocates %v, want only the fixed per-run cost (<= 4)", n)
	}
}
