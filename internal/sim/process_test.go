package sim

import (
	"testing"
)

func TestProcessDelaySequence(t *testing.T) {
	var e Engine
	var times []float64
	e.Go("walker", func(p *Process) {
		times = append(times, p.Now())
		p.Delay(1.5)
		times = append(times, p.Now())
		p.Delay(2.5)
		times = append(times, p.Now())
	})
	e.RunAll()
	want := []float64{0, 1.5, 4}
	if len(times) != len(want) {
		t.Fatalf("times %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestProcessAcquireQueues(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	var latencies []float64
	for i := 0; i < 3; i++ {
		e.Go("client", func(p *Process) {
			latencies = append(latencies, p.Acquire(r, 2))
		})
	}
	e.RunAll()
	want := []float64{2, 4, 6}
	if len(latencies) != 3 {
		t.Fatalf("latencies %v", latencies)
	}
	for i := range want {
		if latencies[i] != want[i] {
			t.Fatalf("latencies %v, want FIFO %v", latencies, want)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		var e Engine
		var log []string
		e.Go("a", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Delay(2)
				log = append(log, "a")
			}
		})
		e.Go("b", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Delay(3)
				log = append(log, "b")
			}
		})
		e.RunAll()
		return log
	}
	first := run()
	want := []string{"a", "b", "a", "a", "b", "b"} // t=2,3,4,6,6(a before b by seq),9
	if len(first) != len(want) {
		t.Fatalf("log %v", first)
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("interleaving not deterministic: %v vs %v", got, first)
			}
		}
	}
}

func TestProcessHoldSignal(t *testing.T) {
	var e Engine
	var order []string
	var waiter *Process
	waiter = e.Go("waiter", func(p *Process) {
		order = append(order, "waiting")
		p.Hold()
		order = append(order, "released at "+fmtF(p.Now()))
	})
	e.Schedule(5, func() {
		order = append(order, "signalling")
		waiter.Signal()
	})
	e.RunAll()
	if len(order) != 3 || order[2] != "released at 5" {
		t.Fatalf("order %v", order)
	}
	if !waiter.Done() {
		t.Fatal("waiter not done")
	}
}

func fmtF(f float64) string {
	if f == 5 {
		return "5"
	}
	return "?"
}

func TestProcessClosedLoopMatchesEventStyle(t *testing.T) {
	// The same closed loop written both ways must produce identical
	// cycle counts — the process API is sugar, not different semantics.
	runProcess := func() int {
		var e Engine
		r := NewResource(&e, "s", 2)
		cycles := 0
		for i := 0; i < 3; i++ {
			e.Go("client", func(p *Process) {
				for p.Now() < 100 {
					p.Delay(1)
					p.Acquire(r, 0.5)
					cycles++
				}
			})
		}
		e.Run(1000)
		return cycles
	}
	runEvents := func() int {
		var e Engine
		r := NewResource(&e, "s", 2)
		cycles := 0
		var loop func()
		loop = func() {
			e.Schedule(1, func() {
				r.Submit(&Job{Demand: 0.5, Done: func(*Job) {
					cycles++
					if e.Now() < 100 {
						loop()
					}
				}})
			})
		}
		for i := 0; i < 3; i++ {
			loop()
		}
		e.Run(1000)
		return cycles
	}
	a, b := runProcess(), runEvents()
	// The two formulations check the horizon at slightly different
	// points in the cycle; they must agree within one cycle per client.
	if a < b-3 || a > b+3 {
		t.Fatalf("process style %d cycles, event style %d", a, b)
	}
	if a == 0 {
		t.Fatal("no cycles")
	}
}

func TestProcessDelayPanicsOnNegative(t *testing.T) {
	var e Engine
	e.Go("bad", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("Delay(-1) did not panic")
			}
		}()
		p.Delay(-1)
	})
	e.RunAll()
}

func TestProcessPanicPropagatesToEngine(t *testing.T) {
	var e Engine
	e.Go("bomb", func(p *Process) {
		p.Delay(1)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic did not propagate (engine would deadlock)")
		}
	}()
	e.RunAll()
}

func TestProcessName(t *testing.T) {
	var e Engine
	p := e.Go("warden", func(p *Process) {})
	if p.Name() != "warden" {
		t.Fatalf("Name = %q", p.Name())
	}
	e.RunAll()
	if !p.Done() {
		t.Fatal("empty-body process not done")
	}
}
