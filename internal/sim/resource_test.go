package sim

import (
	"math"
	"testing"

	"anurand/internal/rng"
)

func TestResourceServesSingleJob(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 2)
	var done *Job
	r.Submit(&Job{Demand: 4, Done: func(j *Job) { done = j }})
	e.RunAll()
	if done == nil {
		t.Fatal("job never completed")
	}
	if done.Latency() != 2 {
		t.Fatalf("latency = %g, want demand/speed = 2", done.Latency())
	}
	if done.Wait() != 0 {
		t.Fatalf("wait = %g, want 0 for idle server", done.Wait())
	}
	if r.Served() != 1 {
		t.Fatalf("Served() = %d, want 1", r.Served())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Submit(&Job{Demand: 1, Done: func(*Job) { order = append(order, i) }})
	}
	if r.QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4", r.QueueLen())
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
}

func TestResourceQueueingDelay(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	var lats []float64
	for i := 0; i < 3; i++ {
		r.Submit(&Job{Demand: 2, Done: func(j *Job) { lats = append(lats, j.Latency()) }})
	}
	e.RunAll()
	want := []float64{2, 4, 6}
	for i := range want {
		if lats[i] != want[i] {
			t.Fatalf("latencies %v, want %v", lats, want)
		}
	}
}

func TestResourceSpeedScalesService(t *testing.T) {
	var e Engine
	slow := NewResource(&e, "slow", 1)
	fast := NewResource(&e, "fast", 9)
	var ls, lf float64
	slow.Submit(&Job{Demand: 9, Done: func(j *Job) { ls = j.Latency() }})
	fast.Submit(&Job{Demand: 9, Done: func(j *Job) { lf = j.Latency() }})
	e.RunAll()
	if ls != 9 || lf != 1 {
		t.Fatalf("slow=%g fast=%g, want 9 and 1 (paper's T vs T/9 model)", ls, lf)
	}
}

func TestResourceArrivalDuringService(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	var second *Job
	r.Submit(&Job{Demand: 10})
	e.Schedule(4, func() {
		r.Submit(&Job{Demand: 1, Done: func(j *Job) { second = j }})
	})
	e.RunAll()
	if second == nil {
		t.Fatal("second job never completed")
	}
	if second.Wait() != 6 {
		t.Fatalf("wait = %g, want 6 (arrived at 4, service ends at 10)", second.Wait())
	}
}

func TestResourceBusyTime(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 2)
	r.Submit(&Job{Demand: 4}) // 2s of service
	r.Submit(&Job{Demand: 8}) // 4s of service
	e.RunAll()
	if r.BusyTime() != 6 {
		t.Fatalf("BusyTime = %g, want 6", r.BusyTime())
	}
}

func TestResourceBusyTimeInFlight(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	r.Submit(&Job{Demand: 10})
	e.Schedule(3, func() {
		if b := r.BusyTime(); b != 3 {
			t.Errorf("BusyTime mid-service = %g, want 3", b)
		}
	})
	e.RunAll()
}

func TestResourceBacklog(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 2)
	r.Submit(&Job{Demand: 4})
	r.Submit(&Job{Demand: 6})
	if got := r.Backlog(); got != 10 {
		t.Fatalf("Backlog at t=0: %g, want 10", got)
	}
	e.Schedule(1, func() {
		// 1s at speed 2 performed 2 units of the first job.
		if got := r.Backlog(); math.Abs(got-8) > 1e-12 {
			t.Errorf("Backlog at t=1: %g, want 8", got)
		}
	})
	e.RunAll()
	if got := r.Backlog(); got != 0 {
		t.Fatalf("Backlog after drain: %g, want 0", got)
	}
}

func TestResourceInjectBusyDelaysJobs(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 4)
	r.InjectBusy(3) // occupies 3 wall-clock seconds regardless of speed
	var lat float64
	r.Submit(&Job{Demand: 4, Done: func(j *Job) { lat = j.Latency() }})
	e.RunAll()
	if lat != 4 {
		t.Fatalf("latency behind injected busy work = %g, want 3+1", lat)
	}
}

func TestResourceFailReturnsOrphans(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	for i := 0; i < 4; i++ {
		r.Submit(&Job{Demand: 5})
	}
	e.Schedule(2, func() {
		orphans := r.Fail()
		if len(orphans) != 4 {
			t.Errorf("Fail returned %d orphans, want 4 (1 in service + 3 queued)", len(orphans))
		}
		if r.Up() {
			t.Error("resource still up after Fail")
		}
		if r.QueueLen() != 0 || r.InService() {
			t.Error("failed resource retains work")
		}
	})
	e.RunAll()
	if r.Served() != 0 {
		t.Fatalf("failed resource reports %d served jobs", r.Served())
	}
}

func TestResourceFailTwiceReturnsNil(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	r.Submit(&Job{Demand: 1})
	r.Fail()
	if got := r.Fail(); got != nil {
		t.Fatalf("second Fail returned %d jobs, want nil", len(got))
	}
}

func TestResourceSubmitToDownPanics(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	r.Fail()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit to down resource did not panic")
		}
	}()
	r.Submit(&Job{Demand: 1})
}

func TestResourceRecoverAcceptsWork(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	r.Fail()
	r.Recover()
	done := false
	r.Submit(&Job{Demand: 1, Done: func(*Job) { done = true }})
	e.RunAll()
	if !done {
		t.Fatal("recovered resource did not serve")
	}
}

func TestResourceCancelledCompletionAfterFail(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	completed := false
	r.Submit(&Job{Demand: 5, Done: func(*Job) { completed = true }})
	r.Fail()
	e.RunAll()
	if completed {
		t.Fatal("job completed on a failed server")
	}
}

func TestResourceInvalidConstructionPanics(t *testing.T) {
	var e Engine
	for _, speed := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewResource(speed=%g) did not panic", speed)
				}
			}()
			NewResource(&e, "x", speed)
		}()
	}
}

func TestResourceInvalidDemandPanics(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s0", 1)
	for _, d := range []float64{0, -2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(demand=%g) did not panic", d)
				}
			}()
			r.Submit(&Job{Demand: d})
		}()
	}
}

// TestResourceMM1SanityCheck drives the station with Poisson arrivals
// and exponential service and compares the mean latency to the M/M/1
// closed form W = 1/(mu - lambda). This validates the queueing core the
// whole evaluation rests on.
func TestResourceMM1SanityCheck(t *testing.T) {
	var e Engine
	const (
		lambda = 0.7
		mu     = 1.0
		n      = 200000
	)
	r := NewResource(&e, "s0", 1)
	src := rng.New(42)
	arrivals := rng.NewExponential(lambda)
	service := rng.NewExponential(mu)

	var sum float64
	var count int
	var next func()
	remaining := n
	next = func() {
		if remaining == 0 {
			return
		}
		remaining--
		r.Submit(&Job{
			Demand: service.Sample(src),
			Done: func(j *Job) {
				sum += j.Latency()
				count++
			},
		})
		e.Schedule(arrivals.Sample(src), next)
	}
	e.Schedule(0, next)
	e.RunAll()

	got := sum / float64(count)
	want := 1 / (mu - lambda) // 3.333...
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/M/1 mean latency = %.3f, want ~%.3f", got, want)
	}
}

func TestResourceAccessors(t *testing.T) {
	var e Engine
	r := NewResource(&e, "meta-3", 4)
	if r.Name() != "meta-3" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Speed() != 4 {
		t.Errorf("Speed = %g", r.Speed())
	}
	r.SetSpeed(8)
	if r.Speed() != 8 {
		t.Errorf("Speed after SetSpeed = %g", r.Speed())
	}
	var lat float64
	r.Submit(&Job{Demand: 16, Done: func(j *Job) { lat = j.Latency() }})
	e.RunAll()
	if lat != 2 {
		t.Errorf("latency %g at speed 8, want 2", lat)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetSpeed(0) did not panic")
		}
	}()
	r.SetSpeed(0)
}

func TestResourceDrainQueue(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s", 1)
	type tag struct{ id int }
	for i := 0; i < 5; i++ {
		i := i
		r.Submit(&Job{Demand: 10, Payload: tag{i}})
	}
	// Job 0 is in service; 1..4 queued. Drain the even-tagged ones.
	drained := r.DrainQueue(func(j *Job) bool {
		return j.Payload.(tag).id%2 != 0 // keep odd
	})
	if len(drained) != 2 {
		t.Fatalf("drained %d, want 2 (tags 2 and 4)", len(drained))
	}
	for _, j := range drained {
		if id := j.Payload.(tag).id; id != 2 && id != 4 {
			t.Fatalf("drained tag %d", id)
		}
	}
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (tags 1 and 3)", r.QueueLen())
	}
	// The in-service job is untouched and order is preserved.
	var order []int
	e.Schedule(0, func() {}) // nudge
	for r.QueueLen() > 0 || r.InService() {
		e.RunAll()
		break
	}
	e.RunAll()
	_ = order
	if r.Served() != 3 {
		t.Fatalf("Served = %d, want 3 (job 0, 1, 3)", r.Served())
	}
}

func TestResourceDrainQueueEmpty(t *testing.T) {
	var e Engine
	r := NewResource(&e, "s", 1)
	if got := r.DrainQueue(func(*Job) bool { return true }); got != nil {
		t.Fatalf("drain of empty queue returned %v", got)
	}
	r.Submit(&Job{Demand: 1})
	// Only the in-service job exists; nothing to drain.
	if got := r.DrainQueue(func(*Job) bool { return false }); got != nil {
		t.Fatalf("drained the in-service job: %v", got)
	}
}

func TestEngineEventsRun(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.RunAll()
	if e.EventsRun() != 7 {
		t.Fatalf("EventsRun = %d, want 7", e.EventsRun())
	}
}
