// Package sim is a small discrete-event simulation engine, the
// repository's substitute for the YACSIM toolkit the paper used.
//
// The engine maintains a virtual clock and an event calendar. Events are
// closures scheduled for a future instant; Run drains the calendar in
// time order, breaking ties by scheduling order so runs are exactly
// reproducible. On top of the calendar the package provides Timer
// (cancellable one-shot), Ticker (periodic callback, used for the
// load-tuning interval) and Resource (a single FIFO queueing station
// with a speed factor, used to model a metadata server).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is ready to use;
// its clock starts at time 0.
type Engine struct {
	now     float64
	seq     uint64
	cal     calendar
	stopped bool
	events  uint64
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed so far, a cheap
// progress and determinism probe.
func (e *Engine) EventsRun() uint64 { return e.events }

// Schedule runs fn after delay seconds of virtual time and returns a
// Timer that can cancel it. A negative delay panics: the calendar only
// moves forward.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %g", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past
// panics.
func (e *Engine) ScheduleAt(t float64, fn func()) *Timer {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: ScheduleAt(%g) before now=%g", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.cal, ev)
	return &Timer{ev: ev}
}

// Run executes events in order until the calendar is empty, the virtual
// clock would pass until, or Stop is called. Events scheduled exactly at
// until are executed. It returns the number of events executed by this
// call.
func (e *Engine) Run(until float64) uint64 {
	e.stopped = false
	var n uint64
	for len(e.cal) > 0 && !e.stopped {
		next := e.cal[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.cal)
		if next.cancelled {
			continue
		}
		if next.at < e.now {
			panic(fmt.Sprintf("sim: calendar yielded time %g before now %g", next.at, e.now))
		}
		e.now = next.at
		next.fn()
		n++
		e.events++
	}
	// Advance the clock to the horizon so repeated Run calls with
	// increasing horizons behave like one long run.
	if !e.stopped && e.now < until && !math.IsInf(until, 1) {
		e.now = until
	}
	return n
}

// RunAll executes events until the calendar is empty or Stop is called.
func (e *Engine) RunAll() uint64 { return e.Run(math.Inf(1)) }

// Stop halts the current Run after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.cal {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled timer is a no-op. It reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.cancelled = true
	return true
}

// event is a calendar entry.
type event struct {
	at        float64
	seq       uint64 // breaks ties deterministically in FIFO order
	fn        func()
	cancelled bool
	done      bool
	index     int
}

// calendar is a min-heap of events ordered by (time, seq).
type calendar []*event

func (c calendar) Len() int { return len(c) }

func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}

func (c calendar) Swap(i, j int) {
	c[i], c[j] = c[j], c[i]
	c[i].index = i
	c[j].index = j
}

func (c *calendar) Push(x any) {
	ev := x.(*event)
	ev.index = len(*c)
	*c = append(*c, ev)
}

func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*c = old[:n-1]
	ev.done = true
	return ev
}

// Ticker invokes a callback at a fixed period. It is the mechanism
// behind the paper's two-minute load-placement tuning interval.
type Ticker struct {
	eng    *Engine
	period float64
	fn     func()
	timer  *Timer
	stop   bool
}

// NewTicker schedules fn every period seconds, first firing one period
// from now. Period must be positive.
func (e *Engine) NewTicker(period float64, fn func()) *Ticker {
	if period <= 0 || math.IsNaN(period) {
		panic(fmt.Sprintf("sim: NewTicker with invalid period %g", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.eng.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.timer.Cancel()
}
