// Package sim is a small discrete-event simulation engine, the
// repository's substitute for the YACSIM toolkit the paper used.
//
// The engine maintains a virtual clock and an event calendar. Events
// carry either a plain closure or a typed (callback, arg) pair; Run
// drains the calendar in time order, breaking ties by scheduling order
// so runs are exactly reproducible. On top of the calendar the package
// provides Timer (cancellable one-shot), Ticker (periodic callback,
// used for the load-tuning interval) and Resource (a single FIFO
// queueing station with a speed factor, used to model a metadata
// server).
//
// The hot path is allocation-lean by construction: event structs are
// recycled through a free list, the calendar is an index-based 4-ary
// heap (no container/heap interface boxing), Timers are values, and the
// typed (callback, arg) form lets steady-state scheduling — resource
// completions, ticker re-arms, chained arrivals — run without
// allocating a closure per event. An Arena makes that recycled memory
// reusable across consecutive runs.
package sim

import (
	"fmt"
	"math"
)

// Callback is the typed event form: a plain function pointer applied to
// a caller-supplied argument. Scheduling a Callback whose argument is a
// pointer does not allocate, unlike a capturing closure; it is the form
// every steady-state event in this package uses.
type Callback func(arg any)

// event is a calendar entry, recycled through the arena's free list.
type event struct {
	at  float64
	seq uint64 // breaks ties deterministically in FIFO order

	// Exactly one of fn or cb is set: fn is the closure form, (cb, arg)
	// the allocation-free typed form.
	fn  func()
	cb  Callback
	arg any

	// gen invalidates Timer handles across recycling: a Timer captures
	// the generation at scheduling time and every release increments it,
	// so a stale handle can never cancel the slot's next occupant.
	gen uint64

	eng       *Engine
	next      *event // free-list link
	cancelled bool
}

// Arena owns an engine's recyclable memory: the calendar backing array,
// the event free list and the job free list. An engine without an
// explicit arena creates a private one on first use, so the zero-value
// Engine keeps working unchanged. Callers that run many simulations
// back to back (the experiment worker pool) hand one arena to each
// successive engine via UseArena, making steady-state memory a
// per-worker, allocate-once cost instead of a per-run one.
//
// An arena must never be used by two engines at the same time; each
// parallel worker owns its own.
type Arena struct {
	cal     []*event
	freeEv  *event
	freeJob *Job
}

// acquireEvent pops a recycled event or allocates a fresh one.
func (a *Arena) acquireEvent() *event {
	ev := a.freeEv
	if ev == nil {
		return new(event)
	}
	a.freeEv = ev.next
	ev.next = nil
	return ev
}

// releaseEvent invalidates outstanding Timer handles and returns the
// event to the free list.
func (a *Arena) releaseEvent(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cb = nil
	ev.arg = nil
	ev.cancelled = false
	ev.next = a.freeEv
	a.freeEv = ev
}

// less orders the calendar by (time, seq).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the 4-ary min-heap. A 4-ary layout halves the
// tree depth of a binary heap; sift-down compares at most four children
// per level, which trades more comparisons per level for fewer cache
// misses — the standard choice for event calendars.
func (a *Arena) push(ev *event) {
	a.cal = append(a.cal, ev)
	cal := a.cal
	i := len(cal) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, cal[p]) {
			break
		}
		cal[i] = cal[p]
		i = p
	}
	cal[i] = ev
}

// pop removes and returns the earliest event.
func (a *Arena) pop() *event {
	cal := a.cal
	top := cal[0]
	n := len(cal) - 1
	moved := cal[n]
	cal[n] = nil
	a.cal = cal[:n]
	if n == 0 {
		return top
	}
	cal = a.cal
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(cal[j], cal[m]) {
				m = j
			}
		}
		if !less(cal[m], moved) {
			break
		}
		cal[i] = cal[m]
		i = m
	}
	cal[i] = moved
	return top
}

// Engine is a discrete-event simulator. The zero value is ready to use;
// its clock starts at time 0.
type Engine struct {
	now     float64
	seq     uint64
	stopped bool
	events  uint64
	live    int // scheduled, non-cancelled events (O(1) Pending)
	arena   *Arena
}

// UseArena attaches a caller-owned arena, adopting its recycled events,
// jobs and calendar capacity. It must be called before any scheduling;
// attaching while events are pending panics.
func (e *Engine) UseArena(a *Arena) {
	if a == nil {
		return
	}
	if e.arena != nil && len(e.arena.cal) > 0 {
		panic("sim: UseArena with events pending")
	}
	e.arena = a
}

// arenaRef returns the engine's arena, creating a private one on first
// use so the zero-value Engine needs no setup.
func (e *Engine) arenaRef() *Arena {
	if e.arena == nil {
		e.arena = new(Arena)
	}
	return e.arena
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed so far, a cheap
// progress and determinism probe.
func (e *Engine) EventsRun() uint64 { return e.events }

// Schedule runs fn after delay seconds of virtual time and returns a
// Timer that can cancel it. A negative delay panics: the calendar only
// moves forward.
func (e *Engine) Schedule(delay float64, fn func()) Timer {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %g", delay))
	}
	return e.schedule(e.now+delay, fn, nil, nil)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past
// panics.
func (e *Engine) ScheduleAt(t float64, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// ScheduleCall runs cb(arg) after delay seconds of virtual time. It is
// Schedule without the closure: when arg is a pointer, scheduling does
// not allocate, so self-rescheduling hot paths run allocation-free.
func (e *Engine) ScheduleCall(delay float64, cb Callback, arg any) Timer {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: ScheduleCall with invalid delay %g", delay))
	}
	return e.schedule(e.now+delay, nil, cb, arg)
}

// ScheduleCallAt runs cb(arg) at absolute virtual time t.
func (e *Engine) ScheduleCallAt(t float64, cb Callback, arg any) Timer {
	return e.schedule(t, nil, cb, arg)
}

func (e *Engine) schedule(t float64, fn func(), cb Callback, arg any) Timer {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: ScheduleAt(%g) before now=%g", t, e.now))
	}
	a := e.arenaRef()
	ev := a.acquireEvent()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.cb = cb
	ev.arg = arg
	ev.eng = e
	e.seq++
	e.live++
	a.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Run executes events in order until the calendar is empty, the virtual
// clock would pass until, or Stop is called. Events scheduled exactly at
// until are executed. It returns the number of events executed by this
// call.
func (e *Engine) Run(until float64) uint64 {
	e.stopped = false
	a := e.arenaRef()
	var n uint64
	for len(a.cal) > 0 && !e.stopped {
		next := a.cal[0]
		if next.at > until {
			break
		}
		a.pop()
		if next.cancelled {
			a.releaseEvent(next)
			continue
		}
		if next.at < e.now {
			panic(fmt.Sprintf("sim: calendar yielded time %g before now %g", next.at, e.now))
		}
		e.now = next.at
		e.live--
		// Copy the body and recycle the slot before running it: the
		// callback may schedule, and in the steady state (a chained
		// arrival, a completion re-arm) it reuses this very event.
		fn, cb, arg := next.fn, next.cb, next.arg
		a.releaseEvent(next)
		if fn != nil {
			fn()
		} else {
			cb(arg)
		}
		n++
		e.events++
	}
	// Advance the clock to the horizon so repeated Run calls with
	// increasing horizons behave like one long run.
	if !e.stopped && e.now < until && !math.IsInf(until, 1) {
		e.now = until
	}
	return n
}

// RunAll executes events until the calendar is empty or Stop is called.
func (e *Engine) RunAll() uint64 { return e.Run(math.Inf(1)) }

// Stop halts the current Run after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled (non-cancelled) events. It is
// O(1): the engine counts live events as they are scheduled, cancelled
// and run instead of scanning the calendar.
func (e *Engine) Pending() int { return e.live }

// Timer is a value handle to a scheduled event. The zero Timer is valid
// and never cancels anything.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled timer is a no-op. It reports whether the event was
// still pending. Cancelled entries stay in the calendar until their
// time comes and are discarded then (lazy deletion).
func (t Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	ev.eng.live--
	return true
}

// Ticker invokes a callback at a fixed period. It is the mechanism
// behind the paper's two-minute load-placement tuning interval.
type Ticker struct {
	eng    *Engine
	period float64
	fn     func()
	timer  Timer
	stop   bool
}

// NewTicker schedules fn every period seconds, first firing one period
// from now. Period must be positive.
func (e *Engine) NewTicker(period float64, fn func()) *Ticker {
	if period <= 0 || math.IsNaN(period) {
		panic(fmt.Sprintf("sim: NewTicker with invalid period %g", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

// tickerFire is the shared re-arm callback: with the ticker itself as
// the argument, every tick schedules the next without allocating.
func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stop {
		return
	}
	t.fn()
	if !t.stop {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.timer = t.eng.ScheduleCall(t.period, tickerFire, t)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.timer.Cancel()
}
