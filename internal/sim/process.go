package sim

import (
	"fmt"
	"math"
)

// Process is a coroutine-style simulation entity, the programming model
// YACSIM (the paper's simulation substrate) is built around: a body
// function that runs as straight-line code and suspends virtual time
// with Delay or Acquire, instead of hand-written event callbacks. Both
// styles coexist on one Engine; closed-loop clients read much more
// naturally as processes.
//
// Determinism: the engine runs exactly one goroutine at a time — either
// the event loop or a single resumed process — handing control back and
// forth over unbuffered channels, so process interleaving is fixed by
// the event calendar alone.
type Process struct {
	eng      *Engine
	name     string
	resume   chan struct{}
	parked   chan struct{}
	done     bool
	panicVal any
	// stepDone is the bound step callback, created once so Acquire
	// completions do not allocate a closure per job.
	stepDone func(*Job)
}

// Go spawns body as a simulation process starting at the current
// virtual time. The body runs until it returns; it must only interact
// with virtual time through the passed Process (Delay, Acquire, Hold).
func (e *Engine) Go(name string, body func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.stepDone = func(*Job) { p.step() }
	go func() {
		<-p.resume // wait for the engine to hand over control
		defer func() {
			// A panicking body must not strand the event loop waiting
			// for a hand-back: capture and re-raise on the engine side.
			p.panicVal = recover()
			p.done = true
			p.parked <- struct{}{} // final hand-back
		}()
		body(p)
	}()
	e.ScheduleCall(0, processStep, p)
	return p
}

// processStep is the shared resume callback for typed scheduling.
func processStep(arg any) { arg.(*Process).step() }

// step transfers control to the process and blocks the event loop until
// the process suspends or finishes.
func (p *Process) step() {
	p.resume <- struct{}{}
	<-p.parked
	if p.panicVal != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.panicVal))
	}
}

// park suspends the process and returns control to the event loop; the
// next step() resumes it.
func (p *Process) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.eng.Now() }

// Done reports whether the body has returned.
func (p *Process) Done() bool { return p.done }

// Delay suspends the process for d seconds of virtual time.
func (p *Process) Delay(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: process %q Delay(%g)", p.name, d))
	}
	p.eng.ScheduleCall(d, processStep, p)
	p.park()
}

// Acquire submits a job with the given demand to the resource and
// suspends until it completes (queueing plus service), returning the
// response time. It is the process-style equivalent of Submit+Done.
func (p *Process) Acquire(r *Resource, demand float64) float64 {
	start := p.eng.Now()
	j := p.eng.AcquireJob()
	j.Demand = demand
	j.Done = p.stepDone
	r.Submit(j)
	p.park()
	return p.eng.Now() - start
}

// Hold suspends the process until signal is called (by an event
// callback or another process). Each Hold consumes exactly one signal.
func (p *Process) Hold() { p.park() }

// Signal resumes a process suspended in Hold at the current virtual
// time. It must be called from engine context (an event callback or
// another process), never from outside Run.
func (p *Process) Signal() { p.step() }
