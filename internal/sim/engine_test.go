package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"anurand/internal/rng"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var e Engine
	var at float64
	e.Schedule(2.5, func() { at = e.Now() })
	e.RunAll()
	if at != 2.5 {
		t.Fatalf("event saw Now()=%g, want 2.5", at)
	}
	if e.Now() != 2.5 {
		t.Fatalf("final Now()=%g, want 2.5", e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	var e Engine
	ran := []float64{}
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	n := e.Run(2)
	if n != 2 {
		t.Fatalf("Run(2) executed %d events, want 2", n)
	}
	if e.Now() != 2 {
		t.Fatalf("Now()=%g after Run(2), want 2", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending()=%d, want 2", e.Pending())
	}
	n = e.Run(10)
	if n != 2 {
		t.Fatalf("second Run executed %d events, want 2", n)
	}
}

func TestRunIncludesEventsAtHorizon(t *testing.T) {
	var e Engine
	hit := false
	e.Schedule(2, func() { hit = true })
	e.Run(2)
	if !hit {
		t.Fatal("event scheduled exactly at horizon did not run")
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("nested schedule times %v, want [1 2]", times)
	}
}

func TestScheduleZeroDelayRunsAtSameTime(t *testing.T) {
	var e Engine
	order := []string{}
	e.Schedule(1, func() {
		e.Schedule(0, func() { order = append(order, "child") })
		order = append(order, "parent")
	})
	e.Schedule(1, func() { order = append(order, "sibling") })
	e.RunAll()
	// The zero-delay child was scheduled after the sibling, so FIFO
	// tie-breaking runs the sibling first.
	want := []string{"parent", "sibling", "child"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestCancelTimer(t *testing.T) {
	var e Engine
	ran := false
	tm := e.Schedule(1, func() { ran = true })
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelAfterRunIsNoop(t *testing.T) {
	var e Engine
	tm := e.Schedule(1, func() {})
	e.RunAll()
	if tm.Cancel() {
		t.Fatal("Cancel after execution returned true")
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	var e Engine
	e.Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(1, func() {})
}

func TestStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("ran %d events after Stop at 3", count)
	}
	// A later Run resumes.
	e.RunAll()
	if count != 10 {
		t.Fatalf("resume ran to %d events, want 10", count)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	var e Engine
	var ticks []float64
	tk := e.NewTicker(2, func() { ticks = append(ticks, e.Now()) })
	e.Run(9)
	tk.Stop()
	want := []float64{2, 4, 6, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks at %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	var e Engine
	n := 0
	var tk *Ticker
	tk = e.NewTicker(1, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run(100)
	if n != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []float64 {
		var e Engine
		src := rng.New(seed)
		var log []float64
		var recur func()
		remaining := 500
		recur = func() {
			log = append(log, e.Now())
			if remaining == 0 {
				return
			}
			remaining--
			e.Schedule(src.Float64(), recur)
			if src.Float64() < 0.3 && remaining > 0 {
				remaining--
				e.Schedule(src.Float64()*2, recur)
			}
		}
		e.Schedule(0, recur)
		e.RunAll()
		return log
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %g vs %g", i, a[i], b[i])
		}
	}
	if !sort.Float64sAreSorted(a) {
		t.Fatal("event times were not non-decreasing")
	}
}

func TestCalendarPropertyOrdered(t *testing.T) {
	f := func(delays []float64) bool {
		var e Engine
		var times []float64
		for _, d := range delays {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.RunAll()
		return sort.Float64sAreSorted(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	var e Engine
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(src.Float64(), func() {})
		if i%1024 == 1023 {
			e.Run(e.Now() + 0.5)
		}
	}
	e.RunAll()
}
