package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecover feeds arbitrary bytes to recovery. Invariants:
// Open never panics; when it succeeds, the journal is immediately
// usable — a fresh record appends, survives a reopen byte-for-byte, and
// recovery of the repaired file reports no further torn tails.
func FuzzJournalRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add(fileMagic[:])
	f.Add([]byte("ANUJRN"))                      // torn header
	f.Add([]byte("NOTAJRNL plus trailing junk")) // wrong magic
	// A well-formed journal with two records, and damaged variants.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	j, err := Open(seedPath, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := j.Append(Record{Epoch: 1, Round: 1, Map: []byte("seed-map-one")}); err != nil {
		f.Fatal(err)
	}
	if err := j.Append(Record{Epoch: 1, Round: 2, Map: []byte("seed-map-two")}); err != nil {
		f.Fatal(err)
	}
	j.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-1] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path, Options{})
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// An equal (epoch, round) always supersedes, so appending at the
		// recovered fence works even if fuzzed records sit at MaxUint64.
		prior, _ := j.Last()
		next := Record{Epoch: prior.Epoch, Round: prior.Round, Map: []byte("appended-after-fuzz")}
		if err := j.Append(next); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if got, ok := j.Last(); !ok || got.Epoch != next.Epoch || got.Round != next.Round || !bytes.Equal(got.Map, next.Map) {
			t.Fatalf("Last after append = %+v (ok=%v), want %+v", got, ok, next)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		j2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
		defer j2.Close()
		got, ok := j2.Last()
		if !ok || got.Epoch != next.Epoch || got.Round != next.Round || !bytes.Equal(got.Map, next.Map) {
			t.Fatalf("appended record did not round-trip: %+v (ok=%v)", got, ok)
		}
		if s := j2.Stats(); s.TornTailsTruncated != 0 {
			t.Fatalf("repaired journal reported another torn tail: %+v", s)
		}
	})
}
