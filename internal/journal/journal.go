// Package journal is the durable placement log of the cluster runtime:
// an append-only write-ahead journal of the node's installed placement
// maps, one record per install, each carrying the (view epoch, round)
// pair the placement was installed under.
//
// The paper's availability argument (Section 4.3) assumes a recovering
// server rejoins with a coherent view of the current placement. Without
// durability a restarted runtime bootstraps from the static seed
// snapshot with its round counter at zero — indistinguishable from a
// brand-new node, and one lost stale-map guard away from rolling the
// cluster backward. The journal closes that hole: the last record a
// node wrote before dying is exactly the placement, epoch and round it
// must re-enter with.
//
// File layout (all little-endian):
//
//	header  8 bytes   magic "ANUJRNL1"
//	frames  repeated  crc u32 | len u32 | payload
//	payload           epoch u64 | round u64 | map bytes
//
// The CRC is CRC-32C (Castagnoli) over the length field and the
// payload, so a bit flip in either is detected. The map bytes carry
// one of two record classes, distinguished by their leading magic:
// tagged placement snapshots (the common case) and live-migration
// phase records ("MIG1", internal/migrate) journaled while a strategy
// cutover is in flight. A placement record fully supersedes all
// earlier placement records (a placement map is the system's entire
// replicated state), and likewise for migration records, which keeps
// compaction near-trivial: once the live tail exceeds
// CompactThreshold, the newest placement record — plus the newest
// migration record when it is still live (in flight, or a terminal
// record at or past the placement's fence, which restart recovery
// still consults) — is rewritten into a temp file that atomically
// renames over the journal.
//
// Recovery tolerates exactly the damage a crash can cause. A final
// record that is short (torn write) or CRC-corrupt (bit rot on the
// unsynced tail) is truncated away and recovery falls back to the
// previous record — never fatal. Corruption *before* the tail means
// the synced prefix lied, which no crash produces; that is a hard
// error so operators see real disk trouble instead of silent state
// loss.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"anurand/internal/migrate"
)

// Record is one durable placement install: the encoded map plus the
// (epoch, round) fence it was installed under.
type Record struct {
	Epoch uint64
	Round uint64
	Map   []byte
}

// Supersedes reports whether r is at least as new as old in the
// lexicographic (epoch, round) order that fences installs.
func (r Record) Supersedes(old Record) bool {
	if r.Epoch != old.Epoch {
		return r.Epoch > old.Epoch
	}
	return r.Round >= old.Round
}

// Options tunes a journal.
type Options struct {
	// CompactThreshold is the file size in bytes past which an append
	// triggers compaction (rewrite to the single newest record).
	// Default 1 MiB; negative disables compaction.
	CompactThreshold int64
}

// withDefaults fills unset knobs.
func (o Options) withDefaults() Options {
	if o.CompactThreshold == 0 {
		o.CompactThreshold = 1 << 20
	}
	return o
}

// Stats counts what the journal has done — recovery outcomes and the
// durability work of the append path.
type Stats struct {
	// RecordsRecovered is how many intact records the opening scan
	// found (the last of which is what Last returns).
	RecordsRecovered uint64
	// TornTailsTruncated counts recoveries that had to drop a partial
	// or CRC-failing final record.
	TornTailsTruncated uint64
	// Appends counts records durably written (fsync included).
	Appends uint64
	// AppendsSkipped counts records refused because their (epoch,
	// round) was below the newest journaled pair — the journal is
	// monotonic by construction.
	AppendsSkipped uint64
	// SyncErrors counts failed writes or fsyncs.
	SyncErrors uint64
	// Compactions counts temp-file+rename rewrites.
	Compactions uint64
	// SizeBytes is the current file size.
	SizeBytes int64
}

const (
	headerLen    = 8
	frameHeadLen = 8 // crc u32 | len u32
	recordMinLen = 16
	// maxRecordLen bounds a record so a corrupt length field cannot
	// demand an absurd allocation; placement maps are O(k) bytes.
	maxRecordLen = 1 << 26
)

var (
	fileMagic  = [headerLen]byte{'A', 'N', 'U', 'J', 'R', 'N', 'L', '1'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Journal is an open placement journal. It is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	path string
	opts Options
	f    *os.File
	size int64
	last Record
	have bool
	// The newest record of each class, tracked separately so restart
	// recovery can answer both "what placement do I serve" and "what
	// migration phase was I in" after any crash.
	lastPlacement Record
	havePlacement bool
	lastMigration Record
	haveMigration bool
	// lastFrameLen is the on-disk size of the final frame — where the
	// chaos injector aims its tail faults.
	lastFrameLen int64
	stats        Stats
}

// Open opens (creating if absent) the journal at path and recovers its
// records. A torn or corrupt final record is truncated away; corruption
// anywhere before the tail is a hard error.
func Open(path string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j := &Journal{path: path, opts: opts, f: f}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the file, establishes the last intact record, and
// truncates a torn tail.
func (j *Journal) recover() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat %s: %w", j.path, err)
	}
	size := info.Size()
	if size == 0 {
		// Fresh journal: stamp the header.
		if _, err := j.f.Write(fileMagic[:]); err != nil {
			return fmt.Errorf("journal: write header: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync header: %w", err)
		}
		j.size = headerLen
		return nil
	}
	if size < headerLen {
		// Even the header is torn — only a crash during creation does
		// this; start over.
		return j.truncateTo(0, true)
	}
	var head [headerLen]byte
	if _, err := j.f.ReadAt(head[:], 0); err != nil {
		return fmt.Errorf("journal: read header: %w", err)
	}
	if head != fileMagic {
		return fmt.Errorf("journal: %s is not a placement journal (bad magic %x)", j.path, head)
	}

	// body holds the full frame region; journals are small by
	// construction (compaction bounds the live tail), so scanning from
	// memory keeps the torn-tail/pre-tail distinction simple.
	body := make([]byte, size-headerLen)
	if _, err := j.f.ReadAt(body, headerLen); err != nil && err != io.EOF {
		return fmt.Errorf("journal: read body: %w", err)
	}

	off := int64(0)
	for off < int64(len(body)) {
		rec, n, ok := parseFrame(body[off:])
		if !ok {
			// The frame at off is short, implausibly sized, or fails its
			// checksum. If an intact frame exists anywhere after it, the
			// synced prefix itself is damaged — a hard error, because no
			// crash corrupts data that was fsynced before later appends.
			// Otherwise everything from off on is an unsynced torn tail:
			// drop it and recover from the previous record.
			if resyncFrameAfter(body, off+1) {
				return fmt.Errorf("journal: %s: corrupt record at offset %d with intact records after it", j.path, headerLen+off)
			}
			return j.truncateTo(headerLen+off, false)
		}
		j.noteRecordLocked(rec)
		j.lastFrameLen = n
		j.stats.RecordsRecovered++
		off += n
	}
	j.size = headerLen + off
	return nil
}

// parseFrame attempts to decode one frame at the start of b, returning
// the record, the frame's total size, and whether it was intact.
func parseFrame(b []byte) (Record, int64, bool) {
	if int64(len(b)) < frameHeadLen {
		return Record{}, 0, false
	}
	crc := binary.LittleEndian.Uint32(b[0:4])
	n := int64(binary.LittleEndian.Uint32(b[4:8]))
	if n < recordMinLen || n > maxRecordLen || frameHeadLen+n > int64(len(b)) {
		return Record{}, 0, false
	}
	payload := b[frameHeadLen : frameHeadLen+n]
	if crc32.Update(crc32.Checksum(b[4:8], castagnoli), castagnoli, payload) != crc {
		return Record{}, 0, false
	}
	return Record{
		Epoch: binary.LittleEndian.Uint64(payload[0:8]),
		Round: binary.LittleEndian.Uint64(payload[8:16]),
		Map:   append([]byte(nil), payload[16:]...),
	}, frameHeadLen + n, true
}

// resyncFrameAfter reports whether any offset at or past from parses as
// an intact frame — the evidence that a decode failure was mid-file
// corruption rather than a torn tail. The scan carries a work budget so
// a hostile file full of plausible-looking frame headers cannot turn
// recovery quadratic; when the budget runs out the failure is treated
// as a torn tail, which recovers older (never newer-than-journaled)
// state.
func resyncFrameAfter(body []byte, from int64) bool {
	budget := int64(1 << 24) // bytes of checksum work
	for c := from; c+frameHeadLen <= int64(len(body)); c++ {
		n := int64(binary.LittleEndian.Uint32(body[c+4 : c+8]))
		if n < recordMinLen || n > maxRecordLen || c+frameHeadLen+n > int64(len(body)) {
			continue
		}
		if budget -= n; budget < 0 {
			return false
		}
		if _, _, ok := parseFrame(body[c:]); ok {
			return true
		}
	}
	return false
}

// truncateTo drops everything at and past off — the torn-tail path.
// When rewriteHeader is set the file restarts from scratch.
func (j *Journal) truncateTo(off int64, rewriteHeader bool) error {
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("journal: truncate torn tail at %d: %w", off, err)
	}
	if rewriteHeader {
		if _, err := j.f.WriteAt(fileMagic[:], 0); err != nil {
			return fmt.Errorf("journal: rewrite header: %w", err)
		}
		off = headerLen
		if err := j.f.Truncate(off); err != nil {
			return fmt.Errorf("journal: truncate after header rewrite: %w", err)
		}
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync after truncate: %w", err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek after truncate: %w", err)
	}
	j.size = off
	j.stats.TornTailsTruncated++
	return nil
}

// noteRecordLocked folds one intact record into the newest-record
// tracking: the overall newest (Last) plus the per-class newest
// (LastPlacement / LastMigration).
func (j *Journal) noteRecordLocked(rec Record) {
	j.last = rec
	j.have = true
	if migrate.IsRecord(rec.Map) {
		j.lastMigration = rec
		j.haveMigration = true
	} else {
		j.lastPlacement = rec
		j.havePlacement = true
	}
}

// encodeFrame builds one on-disk frame for a record.
func encodeFrame(rec Record) []byte {
	n := recordMinLen + len(rec.Map)
	buf := make([]byte, frameHeadLen+n)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(n))
	binary.LittleEndian.PutUint64(buf[8:16], rec.Epoch)
	binary.LittleEndian.PutUint64(buf[16:24], rec.Round)
	copy(buf[24:], rec.Map)
	crc := crc32.Update(crc32.Checksum(buf[4:8], castagnoli), castagnoli, buf[frameHeadLen:])
	binary.LittleEndian.PutUint32(buf[0:4], crc)
	return buf
}

// Append durably writes one record: a single buffered write of the
// framed record at the tail, then fsync. Records whose (epoch, round)
// is below the newest journaled pair are skipped — the journal is
// monotonic, so a racing stale install can never become the recovery
// point. Append triggers compaction when the file outgrows the
// threshold.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.have && !rec.Supersedes(j.last) {
		j.stats.AppendsSkipped++
		return nil
	}
	frame := encodeFrame(rec)
	if _, err := j.f.WriteAt(frame, j.size); err != nil {
		j.stats.SyncErrors++
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.stats.SyncErrors++
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(len(frame))
	j.lastFrameLen = int64(len(frame))
	j.noteRecordLocked(Record{Epoch: rec.Epoch, Round: rec.Round, Map: append([]byte(nil), rec.Map...)})
	j.stats.Appends++
	if j.opts.CompactThreshold > 0 && j.size > j.opts.CompactThreshold {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// compactKeepLocked picks which records survive compaction, in file
// order (older fence first, so a reopened journal's newest record is
// the final frame). The newest placement record always survives. The
// newest migration record survives when it still matters to restart
// recovery: an in-flight phase (Proposed/DualTag) must be resumed no
// matter how many placement tunes were journaled after it, and a
// terminal record at or past the placement's fence is what lets a
// restart recognise a committed cutover whose config still names the
// old strategy.
func (j *Journal) compactKeepLocked() []Record {
	migLive := j.haveMigration
	if migLive && j.havePlacement && !j.lastMigration.Supersedes(j.lastPlacement) {
		if mr, err := migrate.Decode(j.lastMigration.Map); err != nil || !mr.Phase.InFlight() {
			migLive = false // terminal history behind the placement: drop
		}
	}
	switch {
	case !migLive:
		return []Record{j.lastPlacement}
	case !j.havePlacement:
		return []Record{j.lastMigration}
	case j.lastMigration.Supersedes(j.lastPlacement):
		return []Record{j.lastPlacement, j.lastMigration}
	default:
		return []Record{j.lastMigration, j.lastPlacement}
	}
}

// compactLocked rewrites the journal as header + the newest live
// records (see compactKeepLocked), via temp file and atomic rename, so
// a crash at any instant leaves either the old journal or the new one
// — never a mix.
func (j *Journal) compactLocked() error {
	tmpPath := j.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		j.stats.SyncErrors++
		return fmt.Errorf("journal: compact: %w", err)
	}
	keep := j.compactKeepLocked()
	buf := append([]byte(nil), fileMagic[:]...)
	for _, rec := range keep {
		buf = append(buf, encodeFrame(rec)...)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		j.stats.SyncErrors++
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		j.stats.SyncErrors++
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		j.stats.SyncErrors++
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		os.Remove(tmpPath)
		j.stats.SyncErrors++
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	// Make the rename itself durable.
	if dir, err := os.Open(filepath.Dir(j.path)); err == nil {
		if err := dir.Sync(); err != nil {
			j.stats.SyncErrors++
		}
		dir.Close()
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = int64(len(buf))
	tail := keep[len(keep)-1]
	j.last = tail
	j.lastFrameLen = int64(frameHeadLen + recordMinLen + len(tail.Map))
	j.stats.Compactions++
	return nil
}

// Last returns a copy of the newest record — what a restarting node
// recovers — and whether one exists.
func (j *Journal) Last() (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.have {
		return Record{}, false
	}
	return copyRecord(j.last), true
}

// LastPlacement returns a copy of the newest placement record — the
// map a restarting node serves from — and whether one exists.
func (j *Journal) LastPlacement() (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.havePlacement {
		return Record{}, false
	}
	return copyRecord(j.lastPlacement), true
}

// LastMigration returns a copy of the newest migration record — the
// phase a restarting node was in — and whether one exists.
func (j *Journal) LastMigration() (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.haveMigration {
		return Record{}, false
	}
	return copyRecord(j.lastMigration), true
}

func copyRecord(r Record) Record {
	return Record{Epoch: r.Epoch, Round: r.Round, Map: append([]byte(nil), r.Map...)}
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.SizeBytes = j.size
	return s
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file. The journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
