package journal

import (
	"bytes"
	"path/filepath"
	"testing"

	"anurand/internal/migrate"
)

func migRec(epoch, round uint64, mr migrate.Record) Record {
	return Record{Epoch: epoch, Round: round, Map: mr.Encode()}
}

func wantMigrationPhase(t *testing.T, j *Journal, want migrate.Phase) migrate.Record {
	t.Helper()
	rec, ok := j.LastMigration()
	if !ok {
		t.Fatalf("LastMigration() empty, want %s", want)
	}
	mr, err := migrate.Decode(rec.Map)
	if err != nil {
		t.Fatalf("decode last migration: %v", err)
	}
	if mr.Phase != want {
		t.Fatalf("recovered migration phase %s, want %s", mr.Phase, want)
	}
	return mr
}

// TestMigrationRecordsTrackedSeparately: placement installs after a
// migration record must not hide the in-flight phase, and vice versa.
func TestMigrationRecordsTrackedSeparately(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{})

	if err := j.Append(rec(1, 1, "old-map")); err != nil {
		t.Fatal(err)
	}
	prop := migrate.Record{Phase: migrate.Proposed, ID: 7, From: "anu", To: "chord-bounded"}
	if err := j.Append(migRec(1, 2, prop)); err != nil {
		t.Fatal(err)
	}
	// Tunes keep landing while the proposal is out.
	if err := j.Append(rec(1, 3, "old-map-tuned")); err != nil {
		t.Fatal(err)
	}

	plc, ok := j.LastPlacement()
	if !ok || !bytes.Equal(plc.Map, []byte("old-map-tuned")) || plc.Round != 3 {
		t.Fatalf("LastPlacement = %+v, %v", plc, ok)
	}
	mr := wantMigrationPhase(t, j, migrate.Proposed)
	if mr.ID != 7 || mr.From != "anu" || mr.To != "chord-bounded" {
		t.Fatalf("migration record mangled: %+v", mr)
	}
	wantLast(t, j, rec(1, 3, "old-map-tuned"))
	j.Close()

	// Everything must survive a reopen.
	j2 := openT(t, path, Options{})
	defer j2.Close()
	plc, ok = j2.LastPlacement()
	if !ok || !bytes.Equal(plc.Map, []byte("old-map-tuned")) {
		t.Fatalf("reopened LastPlacement = %+v, %v", plc, ok)
	}
	wantMigrationPhase(t, j2, migrate.Proposed)
}

// TestCompactionKeepsInFlightMigration: a compacted WAL whose tail
// spans Proposed/DualTag records must recover to the same phase even
// when newer placement tunes pushed the migration record behind the
// placement fence.
func TestCompactionKeepsInFlightMigration(t *testing.T) {
	for _, phase := range []migrate.Phase{migrate.Proposed, migrate.DualTag} {
		t.Run(phase.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "placement.wal")
			// Threshold small enough that the final append compacts.
			j := openT(t, path, Options{CompactThreshold: 128})
			mr := migrate.Record{Phase: phase, ID: 3, From: "anu", To: "chord-bounded"}
			if phase == migrate.DualTag {
				mr.Snapshot = []byte("warm-target-snapshot")
			}
			if err := j.Append(rec(4, 10, "serving-map")); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(migRec(4, 11, mr)); err != nil {
				t.Fatal(err)
			}
			for r := uint64(12); r < 20; r++ {
				if err := j.Append(rec(4, r, "serving-map-tuned-xxxxxxxxxxxxxxxx")); err != nil {
					t.Fatal(err)
				}
			}
			if s := j.Stats(); s.Compactions == 0 {
				t.Fatalf("compaction never triggered: %+v", s)
			}
			j.Close()

			j2 := openT(t, path, Options{})
			defer j2.Close()
			got := wantMigrationPhase(t, j2, phase)
			if !bytes.Equal(got.Snapshot, mr.Snapshot) {
				t.Fatalf("warm snapshot lost in compaction: %x vs %x", got.Snapshot, mr.Snapshot)
			}
			plc, ok := j2.LastPlacement()
			if !ok || plc.Round != 19 {
				t.Fatalf("LastPlacement after compaction = %+v, %v", plc, ok)
			}
			// Newest overall must still be the placement: appends after
			// reopen stay monotone.
			if last, _ := j2.Last(); last.Round != 19 {
				t.Fatalf("Last() after compaction = %+v", last)
			}
			if err := j2.Append(rec(4, 20, "post-compaction")); err != nil {
				t.Fatal(err)
			}
			if s := j2.Stats(); s.AppendsSkipped != 0 {
				t.Fatalf("monotone guard misfired after compaction: %+v", s)
			}
		})
	}
}

// TestCompactionKeepsSupersedingTerminalRecord: the commit pair —
// placement at the bumped epoch, then the Committed record at the same
// fence — must both survive compaction, because a restart whose config
// still names the old strategy needs the Committed record to accept
// the new-tag placement.
func TestCompactionKeepsSupersedingTerminalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{CompactThreshold: 64})
	if err := j.Append(rec(5, 9, "new-strategy-map")); err != nil {
		t.Fatal(err)
	}
	com := migrate.Record{Phase: migrate.Committed, ID: 8, From: "anu", To: "chord-bounded"}
	if err := j.Append(migRec(5, 9, com)); err != nil {
		t.Fatal(err)
	}
	if s := j.Stats(); s.Compactions == 0 {
		t.Fatalf("compaction never triggered: %+v", s)
	}
	j.Close()

	j2 := openT(t, path, Options{})
	defer j2.Close()
	wantMigrationPhase(t, j2, migrate.Committed)
	plc, ok := j2.LastPlacement()
	if !ok || !bytes.Equal(plc.Map, []byte("new-strategy-map")) {
		t.Fatalf("LastPlacement = %+v, %v", plc, ok)
	}
}

// TestCompactionDropsStaleTerminalRecord: a terminal migration record
// strictly behind the newest placement is history and must not survive
// compaction.
func TestCompactionDropsStaleTerminalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{CompactThreshold: 64})
	ab := migrate.Record{Phase: migrate.Aborted, ID: 2, From: "anu", To: "chord"}
	if err := j.Append(migRec(2, 4, ab)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(2, 5, "map-after-abort-padding-padding")); err != nil {
		t.Fatal(err)
	}
	if s := j.Stats(); s.Compactions == 0 {
		t.Fatalf("compaction never triggered: %+v", s)
	}
	j.Close()

	j2 := openT(t, path, Options{})
	defer j2.Close()
	if _, ok := j2.LastMigration(); ok {
		t.Fatal("stale aborted record survived compaction")
	}
	if _, ok := j2.LastPlacement(); !ok {
		t.Fatal("placement lost in compaction")
	}
}

// TestMigrationOnlyJournal: a crash right after the first journaled
// phase record (before any placement install ever landed) must still
// recover the phase.
func TestMigrationOnlyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{CompactThreshold: 64})
	prop := migrate.Record{Phase: migrate.Proposed, ID: 1, From: "anu", To: "chord"}
	if err := j.Append(migRec(1, 1, prop)); err != nil {
		t.Fatal(err)
	}
	// Force a compaction with no placement record present.
	dt := migrate.Record{Phase: migrate.DualTag, ID: 1, From: "anu", To: "chord", Snapshot: bytes.Repeat([]byte{7}, 64)}
	if err := j.Append(migRec(1, 2, dt)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openT(t, path, Options{})
	defer j2.Close()
	wantMigrationPhase(t, j2, migrate.DualTag)
	if _, ok := j2.LastPlacement(); ok {
		t.Fatal("LastPlacement nonempty in migration-only journal")
	}
}
