package journal

import (
	"fmt"
	"sync"

	"anurand/internal/rng"
)

// Fault is one kind of injected disk damage.
type Fault int

// The injectable fault kinds. All three damage only the final frame —
// exactly the blast radius of a crash, whose unsynced tail is the only
// data that can be lost or half-written.
const (
	// FaultTorn truncates mid-payload: the frame header landed but the
	// record bytes did not all make it to the platter.
	FaultTorn Fault = iota
	// FaultShort truncates inside the frame header itself: the append
	// barely started before the power went.
	FaultShort
	// FaultBitFlip flips one random bit somewhere in the final frame:
	// the tail sector was written but rotted or was misdirected.
	FaultBitFlip
	numFaults
)

// String names the fault for logs.
func (f Fault) String() string {
	switch f {
	case FaultTorn:
		return "torn-write"
	case FaultShort:
		return "short-write"
	case FaultBitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// ChaosStats counts injected faults by kind.
type ChaosStats struct {
	Torn, Short, BitFlips uint64
}

// ChaosJournal wraps a Journal for crash tests: it forwards the normal
// API unchanged and adds InjectTailFault, which damages the on-disk
// tail the way a crash would — a torn write, a short write, or a bit
// flip in the final record — chosen by a seeded stream so soaks replay.
//
// The wrapper deliberately couples fault injection to crash points:
// after InjectTailFault the journal must be Closed and reopened, as the
// process it models is dead. Recovery on reopen must then fall back to
// the previous intact record, never fail.
type ChaosJournal struct {
	mu    sync.Mutex
	j     *Journal
	src   *rng.Source
	stats ChaosStats
}

// NewChaos wraps a journal with a seeded fault injector.
func NewChaos(j *Journal, seed uint64) *ChaosJournal {
	return &ChaosJournal{j: j, src: rng.New(seed)}
}

// Append implements the runtime's journal interface.
func (c *ChaosJournal) Append(rec Record) error { return c.j.Append(rec) }

// Last implements the runtime's journal interface.
func (c *ChaosJournal) Last() (Record, bool) { return c.j.Last() }

// LastPlacement implements the runtime's journal interface.
func (c *ChaosJournal) LastPlacement() (Record, bool) { return c.j.LastPlacement() }

// LastMigration implements the runtime's journal interface.
func (c *ChaosJournal) LastMigration() (Record, bool) { return c.j.LastMigration() }

// Stats forwards the underlying journal's counters.
func (c *ChaosJournal) Stats() Stats { return c.j.Stats() }

// Close closes the underlying journal.
func (c *ChaosJournal) Close() error { return c.j.Close() }

// ChaosStats returns the injected-fault counters.
func (c *ChaosJournal) ChaosStats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// InjectTailFault damages the final on-disk frame with a seeded choice
// of torn write, short write, or bit flip, and reports which. It
// returns false without touching the file when the journal holds no
// record to damage. The journal is unusable afterwards except for
// Close — the caller is simulating a crash at this instant.
func (c *ChaosJournal) InjectTailFault() (Fault, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kind := Fault(c.src.Intn(int(numFaults)))
	ok, err := c.j.injectTailFault(kind, c.src)
	if err != nil || !ok {
		return kind, ok, err
	}
	switch kind {
	case FaultTorn:
		c.stats.Torn++
	case FaultShort:
		c.stats.Short++
	case FaultBitFlip:
		c.stats.BitFlips++
	}
	return kind, true, nil
}

// injectTailFault applies one fault to the final frame.
func (j *Journal) injectTailFault(kind Fault, src *rng.Source) (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.have || j.lastFrameLen <= 0 || j.size <= headerLen {
		return false, nil
	}
	frameStart := j.size - j.lastFrameLen
	switch kind {
	case FaultTorn:
		// Keep the frame header plus a strict prefix of the payload.
		payload := j.lastFrameLen - frameHeadLen
		cut := frameStart + frameHeadLen + int64(src.Intn(int(payload)))
		if err := j.f.Truncate(cut); err != nil {
			return false, fmt.Errorf("journal: inject torn write: %w", err)
		}
	case FaultShort:
		// Not even the frame header finished.
		cut := frameStart + int64(src.Intn(frameHeadLen))
		if err := j.f.Truncate(cut); err != nil {
			return false, fmt.Errorf("journal: inject short write: %w", err)
		}
	case FaultBitFlip:
		pos := frameStart + int64(src.Intn(int(j.lastFrameLen)))
		var b [1]byte
		if _, err := j.f.ReadAt(b[:], pos); err != nil {
			return false, fmt.Errorf("journal: inject bit flip: %w", err)
		}
		b[0] ^= 1 << uint(src.Intn(8))
		if _, err := j.f.WriteAt(b[:], pos); err != nil {
			return false, fmt.Errorf("journal: inject bit flip: %w", err)
		}
	default:
		return false, fmt.Errorf("journal: unknown fault kind %d", int(kind))
	}
	if err := j.f.Sync(); err != nil {
		return false, fmt.Errorf("journal: sync injected fault: %w", err)
	}
	return true, nil
}
