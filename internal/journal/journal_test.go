package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string, opts Options) *Journal {
	t.Helper()
	j, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func rec(epoch, round uint64, payload string) Record {
	return Record{Epoch: epoch, Round: round, Map: []byte(payload)}
}

func wantLast(t *testing.T, j *Journal, want Record) {
	t.Helper()
	got, ok := j.Last()
	if !ok {
		t.Fatalf("Last() empty, want (%d, %d)", want.Epoch, want.Round)
	}
	if got.Epoch != want.Epoch || got.Round != want.Round || !bytes.Equal(got.Map, want.Map) {
		t.Fatalf("Last() = (%d, %d, %q), want (%d, %d, %q)",
			got.Epoch, got.Round, got.Map, want.Epoch, want.Round, want.Map)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{})
	if _, ok := j.Last(); ok {
		t.Fatal("fresh journal has a record")
	}
	recs := []Record{
		rec(1, 1, "map-one"),
		rec(1, 2, "map-two"),
		rec(2, 3, "map-three"),
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	wantLast(t, j, recs[2])
	if s := j.Stats(); s.Appends != 3 || s.SyncErrors != 0 {
		t.Fatalf("stats after appends: %+v", s)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path, Options{})
	defer j2.Close()
	wantLast(t, j2, recs[2])
	if s := j2.Stats(); s.RecordsRecovered != 3 || s.TornTailsTruncated != 0 {
		t.Fatalf("recovery stats: %+v", s)
	}
}

func TestAppendMonotoneSkipsStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{})
	defer j.Close()
	if err := j.Append(rec(3, 10, "new")); err != nil {
		t.Fatal(err)
	}
	// Lower round in the same epoch, and a lower epoch with a higher
	// round, must both be refused.
	if err := j.Append(rec(3, 9, "stale-round")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(2, 99, "stale-epoch")); err != nil {
		t.Fatal(err)
	}
	wantLast(t, j, rec(3, 10, "new"))
	if s := j.Stats(); s.Appends != 1 || s.AppendsSkipped != 2 {
		t.Fatalf("stats: %+v", s)
	}
	// Equal pair re-appends (idempotent dup install), higher installs.
	if err := j.Append(rec(3, 10, "new")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(4, 1, "next-epoch")); err != nil {
		t.Fatal(err)
	}
	wantLast(t, j, rec(4, 1, "next-epoch"))
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	for name, chop := range map[string]int64{
		"mid-payload": 5,  // cut into the final record's map bytes
		"mid-header":  21, // leave only part of the final frame header
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "placement.wal")
			j := openT(t, path, Options{})
			if err := j.Append(rec(1, 1, "keep-me")); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(rec(1, 2, "torn-away")); err != nil {
				t.Fatal(err)
			}
			size := j.Stats().SizeBytes
			j.Close()
			if err := os.Truncate(path, size-chop); err != nil {
				t.Fatal(err)
			}

			j2 := openT(t, path, Options{})
			defer j2.Close()
			wantLast(t, j2, rec(1, 1, "keep-me"))
			s := j2.Stats()
			if s.TornTailsTruncated != 1 || s.RecordsRecovered != 1 {
				t.Fatalf("recovery stats: %+v", s)
			}
			// The torn bytes are gone from disk: a further append and
			// reopen must be clean.
			if err := j2.Append(rec(1, 3, "after-repair")); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3 := openT(t, path, Options{})
			defer j3.Close()
			wantLast(t, j3, rec(1, 3, "after-repair"))
			if s := j3.Stats(); s.TornTailsTruncated != 0 || s.RecordsRecovered != 2 {
				t.Fatalf("post-repair recovery stats: %+v", s)
			}
		})
	}
}

func TestRecoverTruncatesCorruptFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{})
	if err := j.Append(rec(1, 1, "keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(1, 2, "rot-me")); err != nil {
		t.Fatal(err)
	}
	size := j.Stats().SizeBytes
	j.Close()
	// Flip one bit in the final record's payload.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], size-3); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], size-3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openT(t, path, Options{})
	defer j2.Close()
	wantLast(t, j2, rec(1, 1, "keep-me"))
	if s := j2.Stats(); s.TornTailsTruncated != 1 {
		t.Fatalf("recovery stats: %+v", s)
	}
}

func TestRecoverRejectsPreTailCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{})
	if err := j.Append(rec(1, 1, "first-record-gets-damaged")); err != nil {
		t.Fatal(err)
	}
	firstEnd := j.Stats().SizeBytes
	if err := j.Append(rec(1, 2, "second-record-stays-intact")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Corrupt the FIRST record's payload while the second stays intact:
	// the synced prefix lied, which no crash produces — a hard error.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], firstEnd-2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], firstEnd-2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("pre-tail corruption accepted")
	}
}

func TestRecoverRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("foreign file accepted as a journal")
	}
}

func TestRecoverTornHeader(t *testing.T) {
	// A crash during journal creation leaves fewer than the header's 8
	// bytes; recovery starts the journal over.
	path := filepath.Join(t.TempDir(), "placement.wal")
	if err := os.WriteFile(path, []byte{'A', 'N', 'U'}, 0o644); err != nil {
		t.Fatal(err)
	}
	j := openT(t, path, Options{})
	defer j.Close()
	if _, ok := j.Last(); ok {
		t.Fatal("torn-header journal produced a record")
	}
	if err := j.Append(rec(1, 1, "fresh-start")); err != nil {
		t.Fatal(err)
	}
	wantLast(t, j, rec(1, 1, "fresh-start"))
}

func TestCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{CompactThreshold: 256})
	payload := string(bytes.Repeat([]byte{'m'}, 64))
	var last Record
	for i := uint64(1); i <= 20; i++ {
		last = rec(1, i, payload)
		if err := j.Append(last); err != nil {
			t.Fatal(err)
		}
	}
	s := j.Stats()
	if s.Compactions == 0 {
		t.Fatalf("no compactions after 20 oversized appends: %+v", s)
	}
	if s.SizeBytes > 256+int64(headerLen+frameHeadLen+recordMinLen+len(payload)) {
		t.Fatalf("live tail did not shrink: %+v", s)
	}
	wantLast(t, j, last)
	j.Close()
	// No temp-file debris, and the compacted file recovers the newest
	// record alone.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("compaction left temp file: %v", err)
	}
	j2 := openT(t, path, Options{})
	defer j2.Close()
	wantLast(t, j2, last)
	if s := j2.Stats(); s.RecordsRecovered == 0 || s.TornTailsTruncated != 0 {
		t.Fatalf("post-compaction recovery stats: %+v", s)
	}
}

func TestChaosJournalFaultsRecoverToPreviousRecord(t *testing.T) {
	// Every injected fault kind must leave the journal recoverable at
	// the previous record — never a failed open, never a newer record.
	for seed := uint64(1); seed <= 12; seed++ {
		path := filepath.Join(t.TempDir(), "placement.wal")
		j := openT(t, path, Options{})
		cj := NewChaos(j, seed)
		if err := cj.Append(rec(1, 1, "previous")); err != nil {
			t.Fatal(err)
		}
		if err := cj.Append(rec(2, 2, "damaged")); err != nil {
			t.Fatal(err)
		}
		kind, ok, err := cj.InjectTailFault()
		if err != nil || !ok {
			t.Fatalf("seed %d: inject: ok=%v err=%v", seed, ok, err)
		}
		j.Close()

		j2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("seed %d (%v): recovery failed: %v", seed, kind, err)
		}
		wantLast(t, j2, rec(1, 1, "previous"))
		j2.Close()
	}
}

func TestChaosJournalFaultOnEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.wal")
	j := openT(t, path, Options{})
	defer j.Close()
	cj := NewChaos(j, 7)
	if _, ok, err := cj.InjectTailFault(); ok || err != nil {
		t.Fatalf("fault injected into empty journal: ok=%v err=%v", ok, err)
	}
}

func TestSupersedes(t *testing.T) {
	base := Record{Epoch: 2, Round: 5}
	cases := []struct {
		e, r uint64
		want bool
	}{
		{2, 5, true}, {2, 6, true}, {3, 0, true},
		{2, 4, false}, {1, 99, false},
	}
	for _, tc := range cases {
		if got := (Record{Epoch: tc.e, Round: tc.r}).Supersedes(base); got != tc.want {
			t.Errorf("(%d,%d).Supersedes(2,5) = %v, want %v", tc.e, tc.r, got, tc.want)
		}
	}
}
