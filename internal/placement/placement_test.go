package placement

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"anurand/internal/anu"
	"anurand/internal/chordring"
	"anurand/internal/hashx"
)

func servers(n int) []ServerID {
	out := make([]ServerID, n)
	for i := range out {
		out[i] = ServerID(i)
	}
	return out
}

func mustNew(t *testing.T, name string, n int) Strategy {
	t.Helper()
	s, err := New(name, servers(n), Options{HashSeed: 7})
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return s
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{StrategyANU, StrategyChord, StrategyChordBounded} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if _, err := New("no-such-strategy", servers(3), Options{}); err == nil {
		t.Error("New of unregistered strategy succeeded")
	}
}

// TestANUEncodingIsRawMap is the compatibility keystone: the ANU
// strategy's snapshot must be byte-identical to anu.Map.Encode, so
// pre-placement-layer journals and wire frames remain decodable.
func TestANUEncodingIsRawMap(t *testing.T) {
	m, err := anu.New(hashx.NewFamily(7), servers(5))
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, StrategyANU, 5)
	if !bytes.Equal(s.Encode(), m.Encode()) {
		t.Fatal("ANU strategy encoding differs from raw anu.Map encoding")
	}
	// And a raw map snapshot decodes into the ANU strategy.
	dec, err := Decode(m.Encode(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name() != StrategyANU {
		t.Fatalf("raw map decoded as %q", dec.Name())
	}
	if !bytes.Equal(dec.Encode(), m.Encode()) {
		t.Fatal("decode/encode round-trip changed ANU bytes")
	}
}

func TestTagSniffing(t *testing.T) {
	anuBytes := mustNew(t, StrategyANU, 4).Encode()
	if tag, err := Tag(anuBytes); err != nil || tag != StrategyANU {
		t.Fatalf("Tag(anu) = (%q, %v)", tag, err)
	}
	chordBytes := mustNew(t, StrategyChordBounded, 4).Encode()
	if tag, err := Tag(chordBytes); err != nil || tag != StrategyChordBounded {
		t.Fatalf("Tag(chord-bounded) = (%q, %v)", tag, err)
	}
	if _, err := Tag([]byte("garbage")); err == nil {
		t.Error("Tag accepted garbage")
	}
	if _, err := Tag(nil); err == nil {
		t.Error("Tag accepted nil")
	}
	// A container whose declared name length overruns the data.
	bad := EncodeTagged("chord", nil)
	bad[4] = 200
	if _, _, err := DecodeTagged(bad); err == nil {
		t.Error("DecodeTagged accepted overrunning name length")
	}
}

func TestRoundTripAllStrategies(t *testing.T) {
	for _, name := range []string{StrategyANU, StrategyChord, StrategyChordBounded} {
		t.Run(name, func(t *testing.T) {
			s := mustNew(t, name, 6)
			// Perturb: fail one member, tune with skewed reports.
			if err := s.Fail(2); err != nil {
				t.Fatal(err)
			}
			reports := []Report{
				{Server: 0, Requests: 9000, Latency: 2.0},
				{Server: 1, Requests: 500, Latency: 0.5},
				{Server: 2, Failed: true},
				{Server: 3, Requests: 400, Latency: 0.6},
				{Server: 4, Requests: 450, Latency: 0.5},
				{Server: 5, Requests: 420, Latency: 0.4},
			}
			for i := 0; i < 5; i++ {
				if _, err := s.Tune(reports); err != nil {
					t.Fatal(err)
				}
			}
			enc := s.Encode()
			dec, err := Decode(enc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if dec.Name() != name {
				t.Fatalf("round trip changed tag: %q", dec.Name())
			}
			if !bytes.Equal(dec.Encode(), enc) {
				t.Fatal("re-encode differs from original encoding")
			}
			if !reflect.DeepEqual(dec.Servers(), s.Servers()) {
				t.Fatalf("membership changed: %v vs %v", dec.Servers(), s.Servers())
			}
			// Decoded strategy places keys identically.
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("fs/%d", i)
				a, aok := s.Lookup(key)
				b, bok := dec.Lookup(key)
				if a != b || aok != bok {
					t.Fatalf("lookup %q: original (%d,%v) decoded (%d,%v)", key, a, aok, b, bok)
				}
			}
			if inv, ok := dec.(Invariants); ok {
				if err := inv.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if s.SharedStateSize() != len(enc) {
				t.Errorf("SharedStateSize %d, len(Encode) %d", s.SharedStateSize(), len(enc))
			}
		})
	}
}

// TestCrossStrategyDecode is the tag-mismatch core: bytes from one
// strategy must never decode as another.
func TestCrossStrategyDecode(t *testing.T) {
	anuBytes := mustNew(t, StrategyANU, 4).Encode()
	chordBytes := mustNew(t, StrategyChord, 4).Encode()
	boundedBytes := mustNew(t, StrategyChordBounded, 4).Encode()

	reg := map[string]Factory{}
	for _, name := range []string{StrategyANU, StrategyChord, StrategyChordBounded} {
		f, err := lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		reg[name] = f
	}
	if _, err := reg[StrategyANU].Decode(chordBytes, Options{}); err == nil {
		t.Error("ANU factory decoded chord bytes")
	}
	if _, err := reg[StrategyChord].Decode(anuBytes, Options{}); err == nil {
		t.Error("chord factory decoded ANU bytes")
	}
	if _, err := reg[StrategyChord].Decode(boundedBytes, Options{}); err == nil {
		t.Error("chord factory decoded chord-bounded bytes")
	}
	if _, err := reg[StrategyChordBounded].Decode(chordBytes, Options{}); err == nil {
		t.Error("chord-bounded factory decoded chord bytes")
	}
	// Package Decode dispatches each to its own strategy.
	for _, data := range [][]byte{anuBytes, chordBytes, boundedBytes} {
		if _, err := Decode(data, Options{}); err != nil {
			t.Errorf("Decode: %v", err)
		}
	}
}

func TestDecodeRejectsCorruptChord(t *testing.T) {
	good := mustNew(t, StrategyChordBounded, 4).Encode()
	for cut := 1; cut < len(good); cut += 7 {
		if _, err := Decode(good[:cut], Options{}); err == nil {
			// A truncation that leaves a valid shorter snapshot would be
			// caught by the record-count check; none should pass.
			t.Errorf("truncated chord snapshot of %d bytes decoded", cut)
		}
	}
	// Corrupt a shed fraction to NaN.
	bad := append([]byte(nil), good...)
	// payload starts after magic(4)+nameLen(1)+name; shed of member 0 is
	// at payload offset 20+4+1.
	off := 5 + len(StrategyChordBounded) + 25
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xff
	}
	if _, err := Decode(bad, Options{}); err == nil {
		t.Error("NaN shed fraction decoded")
	}
}

func TestChordTuneShedsOverloadedNode(t *testing.T) {
	s := mustNew(t, StrategyChordBounded, 5)
	c := s.(*Chord)
	hot := ServerID(1)
	reports := make([]Report, 5)
	for i := range reports {
		reports[i] = Report{Server: ServerID(i), Requests: 1000, Latency: 1}
	}
	reports[hot].Requests = 10000
	for i := 0; i < 12; i++ {
		if _, err := s.Tune(reports); err != nil {
			t.Fatal(err)
		}
	}
	shed := c.Ring().Shed(1)
	// fair = 14000/5 = 2800; target = 1 - 1.25*2800/10000 = 0.65 → capped.
	if math.Abs(shed-maxShed) > 1e-6 {
		t.Errorf("hot node shed %g, want cap %g", shed, maxShed)
	}
	// Cold nodes shed nothing.
	for _, id := range []chordring.NodeID{0, 2, 3, 4} {
		if s := c.Ring().Shed(id); s != 0 {
			t.Errorf("cold node %d shed %g", id, s)
		}
	}
	// Load equalizes → shed decays back to zero.
	for i := range reports {
		reports[i].Requests = 1000
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Tune(reports); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Ring().Shed(1); got != 0 {
		t.Errorf("balanced cluster still sheds %g", got)
	}
	// Plain chord never sheds.
	p := mustNew(t, StrategyChord, 5)
	reports[1].Requests = 10000
	if _, err := p.Tune(reports); err != nil {
		t.Fatal(err)
	}
	if got := p.(*Chord).Ring().Shed(1); got != 0 {
		t.Errorf("plain chord shed %g", got)
	}
}

func TestChordTuneFailureAndRevival(t *testing.T) {
	s := mustNew(t, StrategyChordBounded, 4)
	if _, err := s.Tune([]Report{{Server: 2, Failed: true}}); err != nil {
		t.Fatal(err)
	}
	if !s.(*Chord).Ring().Failed(2) {
		t.Fatal("Failed report did not down the member")
	}
	if share := s.Shares()[2]; share != 0 {
		t.Fatalf("downed member holds share %g", share)
	}
	// A live report revives it, mirroring the ANU controller.
	if _, err := s.Tune([]Report{{Server: 2, Requests: 10, Latency: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.(*Chord).Ring().Failed(2) {
		t.Fatal("live report did not revive the member")
	}
	if _, err := s.Tune([]Report{{Server: 99, Requests: 1, Latency: 1}}); err == nil {
		t.Fatal("report for unknown member accepted")
	}
}

func TestStrategyLifecycle(t *testing.T) {
	for _, name := range []string{StrategyANU, StrategyChord, StrategyChordBounded} {
		t.Run(name, func(t *testing.T) {
			s := mustNew(t, name, 3)
			if err := s.AddServer(7); err != nil {
				t.Fatal(err)
			}
			if !s.Has(7) {
				t.Fatal("added server missing")
			}
			if err := s.Fail(7); err != nil {
				t.Fatal(err)
			}
			if share := s.Shares()[7]; share != 0 {
				t.Fatalf("failed server holds share %g", share)
			}
			if err := s.Recover(7); err != nil {
				t.Fatal(err)
			}
			if share := s.Shares()[7]; share <= 0 {
				t.Fatalf("recovered server holds share %g", share)
			}
			if err := s.RemoveServer(7); err != nil {
				t.Fatal(err)
			}
			if s.Has(7) {
				t.Fatal("removed server still present")
			}
			var sum float64
			for _, v := range s.Shares() {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("shares sum to %g", sum)
			}
			// Clone independence.
			clone := s.Clone()
			if err := clone.Fail(1); err != nil {
				t.Fatal(err)
			}
			if share := s.Shares()[1]; share == 0 {
				t.Fatal("failing the clone failed the original")
			}
			// Batch lookup agrees with single lookup.
			keys := []string{"a", "b", "c", "d"}
			owners := make([]ServerID, 4)
			if got := s.LookupBatch(keys, owners); got != 4 {
				t.Fatalf("LookupBatch resolved %d of 4", got)
			}
			for i, key := range keys {
				if id, ok := s.Lookup(key); !ok || id != owners[i] {
					t.Fatalf("batch owner %d, single owner %d", owners[i], id)
				}
			}
		})
	}
}

func TestANUAdoptState(t *testing.T) {
	a := mustNew(t, StrategyANU, 3).(*ANU)
	reports := []Report{
		{Server: 0, Requests: 100, Latency: 5},
		{Server: 1, Requests: 100, Latency: 1},
		{Server: 2, Requests: 100, Latency: 1},
	}
	if _, err := a.Tune(reports); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(a.Encode(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := dec.(*ANU)
	if fresh.Controller() == a.Controller() {
		t.Fatal("decode shared the controller without adoption")
	}
	fresh.AdoptState(a)
	if fresh.Controller() != a.Controller() {
		t.Fatal("AdoptState did not adopt the controller")
	}
	// Adopting across strategies is a no-op.
	chord := mustNew(t, StrategyChord, 3)
	before := fresh.Controller()
	fresh.AdoptState(chord)
	if fresh.Controller() != before {
		t.Fatal("AdoptState from chord replaced the controller")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(StrategyChordBounded, servers(3), Options{LoadBound: 0.9}); err == nil {
		t.Error("LoadBound 0.9 accepted")
	}
	if _, err := New(StrategyChordBounded, servers(3), Options{LoadBound: math.NaN()}); err == nil {
		t.Error("NaN LoadBound accepted")
	}
	bad := anu.DefaultControllerConfig()
	bad.Gamma = -1
	if _, err := New(StrategyANU, servers(3), Options{Controller: bad}); err == nil {
		t.Error("negative Gamma accepted")
	}
	if _, err := New(StrategyANU, nil, Options{}); err == nil {
		t.Error("empty server set accepted")
	}
	// Unknown-strategy error names the registered ones.
	_, err := New("bogus", servers(2), Options{})
	if err == nil || !strings.Contains(err.Error(), StrategyANU) {
		t.Errorf("unknown-strategy error %v does not list registered names", err)
	}
}
