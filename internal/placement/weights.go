package placement

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// This file is the weight-aware core shared by the strategies that use
// a-priori capacity knowledge (rendezvous, weighted-static, power-of-d):
// a member table carrying each server's capacity weight and failure
// flag, the derived structures their lookup paths binary-search at zero
// allocations, and the one binary codec all of their snapshots embed —
// so weights survive the journal, the wire frame, and live migration
// the same way for every weight-aware scheme.

// DefaultChoices is the d of the power-of-d sampler when Options leaves
// Choices zero: two choices, the classic power-of-two-choices operating
// point (Mitzenmacher; Mukhopadhyay et al. for heterogeneous servers).
const DefaultChoices = 2

// MaxChoices bounds Options.Choices: past a handful of probes the
// sampler degenerates into scanning the cluster, and the hash family's
// precomputed tweak table covers 64 rounds.
const MaxChoices = 16

// unitFrac53 converts the top 53 bits of a 64-bit hash into a float in
// [0, 1): float64(h>>11) * unitFrac53.
const unitFrac53 = 1.0 / (1 << 53)

// memberTable is the replicated membership state of a weight-aware
// strategy: ascending server ids with per-server capacity weights and
// failure flags, plus the derived cumulative-weight arrays the lookup
// paths search. Mutators rebuild the derived state wholesale (mutation
// happens on clones at tuning cadence); readers never allocate.
type memberTable struct {
	ids    []ServerID // ascending, unique
	weight []float64  // parallel: finite, > 0
	failed []bool     // parallel

	// Derived by reindex:
	allCum  []float64 // cumulative weight over ALL members (static intervals)
	liveIdx []int     // indices of live members, ascending
	liveCum []float64 // cumulative weight over live members (weighted sampling)
}

// validWeight reports whether w is usable as a capacity weight.
func validWeight(w float64) bool {
	return !math.IsNaN(w) && !math.IsInf(w, 0) && w > 0
}

// newMemberTable builds the table over servers, all live, with weights
// from the map (absent entries mean weight 1 — the uniform default).
// Every weight listed for a server outside the set is an error: a typo
// in an a-priori capacity table must not silently disappear.
func newMemberTable(servers []ServerID, weights map[ServerID]float64) (*memberTable, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("placement: no servers")
	}
	ids := append([]ServerID(nil), servers...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("placement: negative server id %d", id)
		}
		if i > 0 && ids[i-1] == id {
			return nil, fmt.Errorf("placement: duplicate server id %d", id)
		}
	}
	known := make(map[ServerID]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	for id, w := range weights {
		if !known[id] {
			return nil, fmt.Errorf("placement: weight for unknown server %d", id)
		}
		if !validWeight(w) {
			return nil, fmt.Errorf("placement: server %d has invalid weight %g", id, w)
		}
	}
	t := &memberTable{
		ids:    ids,
		weight: make([]float64, len(ids)),
		failed: make([]bool, len(ids)),
	}
	for i, id := range ids {
		if w, ok := weights[id]; ok {
			t.weight[i] = w
		} else {
			t.weight[i] = 1
		}
	}
	t.reindex()
	return t, nil
}

// reindex rebuilds the derived cumulative arrays from ids/weight/failed.
func (t *memberTable) reindex() {
	t.allCum = t.allCum[:0]
	t.liveIdx = t.liveIdx[:0]
	t.liveCum = t.liveCum[:0]
	var all, live float64
	for i := range t.ids {
		all += t.weight[i]
		t.allCum = append(t.allCum, all)
		if !t.failed[i] {
			live += t.weight[i]
			t.liveIdx = append(t.liveIdx, i)
			t.liveCum = append(t.liveCum, live)
		}
	}
}

func (t *memberTable) clone() *memberTable {
	return &memberTable{
		ids:     append([]ServerID(nil), t.ids...),
		weight:  append([]float64(nil), t.weight...),
		failed:  append([]bool(nil), t.failed...),
		allCum:  append([]float64(nil), t.allCum...),
		liveIdx: append([]int(nil), t.liveIdx...),
		liveCum: append([]float64(nil), t.liveCum...),
	}
}

// index returns the position of id in the ascending id array, or -1.
func (t *memberTable) index(id ServerID) int {
	lo, hi := 0, len(t.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.ids) && t.ids[lo] == id {
		return lo
	}
	return -1
}

func (t *memberTable) has(id ServerID) bool { return t.index(id) >= 0 }

func (t *memberTable) servers() []ServerID {
	return append([]ServerID(nil), t.ids...)
}

// add commissions a new live member with the uniform weight 1; callers
// with capacity knowledge follow up through SetWeights.
func (t *memberTable) add(id ServerID) error {
	if id < 0 {
		return fmt.Errorf("placement: AddServer: negative server id %d", id)
	}
	if t.has(id) {
		return fmt.Errorf("placement: AddServer: server %d already present", id)
	}
	t.ids = append(t.ids, id)
	t.weight = append(t.weight, 1)
	t.failed = append(t.failed, false)
	// Re-sort the parallel arrays by id (one insertion, small k).
	for i := len(t.ids) - 1; i > 0 && t.ids[i-1] > t.ids[i]; i-- {
		t.ids[i-1], t.ids[i] = t.ids[i], t.ids[i-1]
		t.weight[i-1], t.weight[i] = t.weight[i], t.weight[i-1]
		t.failed[i-1], t.failed[i] = t.failed[i], t.failed[i-1]
	}
	t.reindex()
	return nil
}

func (t *memberTable) remove(id ServerID) error {
	i := t.index(id)
	if i < 0 {
		return fmt.Errorf("placement: RemoveServer: unknown server %d", id)
	}
	t.ids = append(t.ids[:i], t.ids[i+1:]...)
	t.weight = append(t.weight[:i], t.weight[i+1:]...)
	t.failed = append(t.failed[:i], t.failed[i+1:]...)
	t.reindex()
	return nil
}

// setFailed marks a member down or re-admits it; toggling to the
// current state is a no-op, matching the ANU and chord strategies.
func (t *memberTable) setFailed(id ServerID, failed bool) error {
	i := t.index(id)
	if i < 0 {
		return fmt.Errorf("placement: unknown server %d", id)
	}
	if t.failed[i] == failed {
		return nil
	}
	t.failed[i] = failed
	t.reindex()
	return nil
}

func (t *memberTable) isFailed(id ServerID) bool {
	i := t.index(id)
	return i >= 0 && t.failed[i]
}

// weightsMap materializes the per-server weights (the Reweigher getter).
func (t *memberTable) weightsMap() map[ServerID]float64 {
	out := make(map[ServerID]float64, len(t.ids))
	for i, id := range t.ids {
		out[id] = t.weight[i]
	}
	return out
}

// setWeights applies a partial weight update: listed servers take the
// new weight, absent servers keep theirs. It reports whether anything
// changed and validates before mutating, so a bad update leaves the
// table untouched.
func (t *memberTable) setWeights(weights map[ServerID]float64) (bool, error) {
	for id, w := range weights {
		if t.index(id) < 0 {
			return false, fmt.Errorf("placement: SetWeights: unknown server %d", id)
		}
		if !validWeight(w) {
			return false, fmt.Errorf("placement: SetWeights: server %d has invalid weight %g", id, w)
		}
	}
	changed := false
	for id, w := range weights {
		i := t.index(id)
		if t.weight[i] != w {
			t.weight[i] = w
			changed = true
		}
	}
	if changed {
		t.reindex()
	}
	return changed, nil
}

// shares returns each member's fraction of the live weight (failed
// members report 0); live fractions sum to 1.
func (t *memberTable) shares() map[ServerID]float64 {
	out := make(map[ServerID]float64, len(t.ids))
	var live float64
	if n := len(t.liveCum); n > 0 {
		live = t.liveCum[n-1]
	}
	for i, id := range t.ids {
		if t.failed[i] || live == 0 {
			out[id] = 0
		} else {
			out[id] = t.weight[i] / live
		}
	}
	return out
}

// ownerAll maps a 64-bit hash onto the static weight-proportional
// partition of ALL members (failed included — static boundaries never
// move on failure) and returns the owning member index.
func (t *memberTable) ownerAll(h uint64) int {
	total := t.allCum[len(t.allCum)-1]
	x := float64(h>>11) * unitFrac53 * total // in [0, total)
	lo, hi := 0, len(t.allCum)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.allCum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(t.allCum) {
		lo = len(t.allCum) - 1
	}
	return lo
}

// pickLive draws a live member index with probability proportional to
// its weight, from a 64-bit hash. ok is false when every member failed.
func (t *memberTable) pickLive(h uint64) (int, bool) {
	n := len(t.liveCum)
	if n == 0 {
		return -1, false
	}
	total := t.liveCum[n-1]
	x := float64(h>>11) * unitFrac53 * total
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if t.liveCum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= n {
		lo = n - 1
	}
	return t.liveIdx[lo], true
}

func (t *memberTable) checkInvariants() error {
	if len(t.ids) == 0 {
		return fmt.Errorf("placement: member table empty")
	}
	for i, id := range t.ids {
		if id < 0 {
			return fmt.Errorf("placement: negative server id %d", id)
		}
		if i > 0 && t.ids[i-1] >= id {
			return fmt.Errorf("placement: member ids not strictly ascending at %d", id)
		}
		if !validWeight(t.weight[i]) {
			return fmt.Errorf("placement: server %d has invalid weight %g", id, t.weight[i])
		}
	}
	return nil
}

// The weighted member codec, embedded in every weight-aware snapshot:
//
//	k uint32
//	k × { id uint32 | failed uint8 | weight float64 bits }   (ascending id)
//
// Decoding validates everything — order, flags, weight domain — and the
// encoding is canonical: decode(encode(t)) re-encodes byte-identically,
// which FuzzWeightedSnapshot holds on arbitrary input.
const memberRecSize = 13

func (t *memberTable) appendEncoded(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.ids)))
	for i, id := range t.ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		if t.failed[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.weight[i]))
	}
	return buf
}

// decodeMemberTable parses the codec from the front of payload and
// returns the table plus the remaining bytes.
func decodeMemberTable(payload []byte) (*memberTable, []byte, error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("placement: member table truncated (%d bytes)", len(payload))
	}
	k := int(binary.LittleEndian.Uint32(payload))
	if k == 0 {
		return nil, nil, fmt.Errorf("placement: member table has no members")
	}
	rest := payload[4:]
	if len(rest) < k*memberRecSize {
		return nil, nil, fmt.Errorf("placement: %d bytes of member records for k=%d (want %d)", len(rest), k, k*memberRecSize)
	}
	t := &memberTable{
		ids:    make([]ServerID, k),
		weight: make([]float64, k),
		failed: make([]bool, k),
	}
	for i := 0; i < k; i++ {
		rec := rest[i*memberRecSize:]
		id := ServerID(binary.LittleEndian.Uint32(rec))
		if id < 0 {
			return nil, nil, fmt.Errorf("placement: member id %d out of range", binary.LittleEndian.Uint32(rec))
		}
		if i > 0 && t.ids[i-1] >= id {
			return nil, nil, fmt.Errorf("placement: member records not in strictly ascending id order")
		}
		switch rec[4] {
		case 0:
			t.failed[i] = false
		case 1:
			t.failed[i] = true
		default:
			return nil, nil, fmt.Errorf("placement: member %d has invalid failed flag %d", id, rec[4])
		}
		w := math.Float64frombits(binary.LittleEndian.Uint64(rec[5:]))
		if !validWeight(w) {
			return nil, nil, fmt.Errorf("placement: member %d has invalid weight %g", id, w)
		}
		t.ids[i] = id
		t.weight[i] = w
	}
	t.reindex()
	return t, rest[k*memberRecSize:], nil
}
