package placement

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"anurand/internal/chordring"
	"anurand/internal/hashx"
)

// StrategyChord is the registered tag of the plain consistent-hash ring
// baseline: owners follow ring arcs, failures spill to the live
// successor, and no load feedback ever moves a boundary. It is the
// "simple randomization" end of the paper's comparison, run on the
// Chord-style substrate.
const StrategyChord = "chord"

// StrategyChordBounded is the registered tag of the bounded-load ring:
// the plain ring plus report-driven shed fractions that cap any node's
// request share at LoadBound times the live-member mean (after
// "Consistent Hashing with Bounded Loads", Mirrokni et al.).
const StrategyChordBounded = "chord-bounded"

func init() {
	Register(StrategyChord, Factory{
		New:    func(servers []ServerID, opts Options) (Strategy, error) { return newChord(servers, opts, false) },
		Decode: func(data []byte, opts Options) (Strategy, error) { return decodeChord(data, false) },
	})
	Register(StrategyChordBounded, Factory{
		New:    func(servers []ServerID, opts Options) (Strategy, error) { return newChord(servers, opts, true) },
		Decode: func(data []byte, opts Options) (Strategy, error) { return decodeChord(data, true) },
	})
}

// shedDamping is the per-round EWMA coefficient on shed fractions: each
// Tune moves a node's shed halfway to its target, so one noisy interval
// cannot flip a large arc back and forth (the ring analogue of the ANU
// controller's MaxStep/MaxShrink clamps).
const shedDamping = 0.5

// maxShed caps how much of its arc a live node may give up, keeping
// every live member addressable (the ring analogue of MinWeight).
const maxShed = 0.5

// shedEpsilon zeroes decaying shed fractions once they stop mattering,
// so an idle cluster converges to the exact plain-ring placement.
const shedEpsilon = 1e-3

// Chord adapts the chordring.Bounded ring to the Strategy interface.
// One implementation serves both registered tags; bounded selects
// whether Tune computes shed fractions or only tracks failures.
type Chord struct {
	b       *chordring.Bounded
	seed    uint64
	bound   float64
	bounded bool
}

func newChord(servers []ServerID, opts Options, bounded bool) (Strategy, error) {
	bound := opts.LoadBound
	if bound == 0 {
		bound = DefaultLoadBound
	}
	if math.IsNaN(bound) || bound <= 1 {
		return nil, fmt.Errorf("chord: load bound %g must exceed 1", bound)
	}
	nodes := make([]chordring.NodeID, len(servers))
	for i, s := range servers {
		nodes[i] = chordring.NodeID(s)
	}
	ring, err := chordring.New(hashx.NewFamily(opts.HashSeed), nodes)
	if err != nil {
		return nil, err
	}
	return &Chord{b: chordring.NewBounded(ring), seed: opts.HashSeed, bound: bound, bounded: bounded}, nil
}

// Ring exposes the underlying bounded ring (ablations read hop counts
// and finger state through it).
func (c *Chord) Ring() *chordring.Bounded { return c.b }

// Bound returns the configured load-bound factor.
func (c *Chord) Bound() float64 { return c.bound }

func (c *Chord) Name() string {
	if c.bounded {
		return StrategyChordBounded
	}
	return StrategyChord
}

func (c *Chord) Lookup(key string) (ServerID, bool) {
	id, _, ok := c.b.Owner(key)
	if !ok {
		return NoServer, false
	}
	return ServerID(id), true
}

// LookupDigest implements DigestLookuper: the ring point comes from the
// precomputed digest's round-1 mix, so a lookup is one multiply-shift
// plus the binary search — no per-byte hashing and no allocation.
func (c *Chord) LookupDigest(d hashx.Digest) (ServerID, int) {
	id, probes, ok := c.b.OwnerDigest(d)
	if !ok {
		return NoServer, probes
	}
	return ServerID(id), probes
}

func (c *Chord) LookupProbes(key string) (ServerID, int, bool) {
	id, probes, ok := c.b.Owner(key)
	if !ok {
		return NoServer, probes, false
	}
	return ServerID(id), probes, true
}

func (c *Chord) LookupBatch(keys []string, owners []ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("placement: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	resolved := 0
	for i, key := range keys {
		id, _, ok := c.b.Owner(key)
		if !ok {
			owners[i] = NoServer
			continue
		}
		owners[i] = ServerID(id)
		resolved++
	}
	return resolved
}

// Tune applies one feedback round. Failure handling matches the ANU
// controller: a Failed report downs the member, and any live report
// from a downed member re-admits it. Under the bounded variant the
// request counts then drive shed fractions — a node carrying more than
// bound × the live-member mean sheds the excess fraction of its arc
// (damped), and nodes back under the bound decay toward zero shed.
// Latencies are ignored: the ring balances load counts, not response
// times, which is exactly the gap the ANU comparison measures.
func (c *Chord) Tune(reports []Report) (bool, error) {
	changed := false
	for _, r := range reports {
		if !c.b.Has(chordring.NodeID(r.Server)) {
			return changed, fmt.Errorf("chord: Tune: report for unknown server %d", r.Server)
		}
		id := chordring.NodeID(r.Server)
		if r.Failed != c.b.Failed(id) {
			if err := c.b.SetFailed(id, r.Failed); err != nil {
				return changed, err
			}
			if r.Failed {
				// A downed node sheds nothing; failure handling owns its arc.
				if err := c.b.SetShed(id, 0); err != nil {
					return changed, err
				}
			}
			changed = true
		}
	}
	if !c.bounded {
		return changed, nil
	}

	// Request-share feedback: mean over live reporting members.
	var total float64
	live := 0
	byID := make(map[chordring.NodeID]Report, len(reports))
	for _, r := range reports {
		id := chordring.NodeID(r.Server)
		byID[id] = r
		if !r.Failed {
			total += float64(r.Requests)
			live++
		}
	}
	if live == 0 || total == 0 {
		return changed, nil
	}
	fair := total / float64(live)
	for id, r := range byID {
		if r.Failed {
			continue
		}
		old := c.b.Shed(id)
		target := 0.0
		if reqs := float64(r.Requests); reqs > c.bound*fair {
			target = 1 - c.bound*fair/reqs
		}
		next := (1-shedDamping)*old + shedDamping*target
		if next > maxShed {
			next = maxShed
		}
		if next < shedEpsilon {
			next = 0
		}
		if next == old {
			continue
		}
		if err := c.b.SetShed(id, next); err != nil {
			return changed, err
		}
		changed = true
	}
	return changed, nil
}

func (c *Chord) AddServer(id ServerID) error { return c.b.Join(chordring.NodeID(id)) }

func (c *Chord) RemoveServer(id ServerID) error { return c.b.Leave(chordring.NodeID(id)) }

func (c *Chord) Fail(id ServerID) error { return c.b.SetFailed(chordring.NodeID(id), true) }

func (c *Chord) Recover(id ServerID) error { return c.b.SetFailed(chordring.NodeID(id), false) }

func (c *Chord) Servers() []ServerID {
	members := c.b.Members()
	out := make([]ServerID, len(members))
	for i, id := range members {
		out[i] = ServerID(id)
	}
	return out
}

func (c *Chord) Has(id ServerID) bool { return c.b.Has(chordring.NodeID(id)) }

func (c *Chord) Shares() map[ServerID]float64 {
	shares := c.b.Shares()
	out := make(map[ServerID]float64, len(shares))
	for id, s := range shares {
		out[ServerID(id)] = s
	}
	return out
}

// The chord payload inside the tagged container:
//
//	seed  uint64
//	bound float64 bits
//	k     uint32
//	k × { id int32 | failed uint8 | shed float64 bits }   (ascending id)
func (c *Chord) Encode() []byte {
	members := c.b.Members()
	buf := make([]byte, 0, 20+len(members)*13)
	buf = binary.LittleEndian.AppendUint64(buf, c.seed)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.bound))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(members)))
	for _, id := range members {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		if c.b.Failed(id) {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.b.Shed(id)))
	}
	return EncodeTagged(c.Name(), buf)
}

func (c *Chord) SharedStateSize() int { return len(c.Encode()) }

// CheckInvariants implements Invariants: the encoded state must
// round-trip, every shed fraction must be valid, and the bound sane.
func (c *Chord) CheckInvariants() error {
	if math.IsNaN(c.bound) || c.bound <= 1 {
		return fmt.Errorf("chord: load bound %g must exceed 1", c.bound)
	}
	for _, id := range c.b.Members() {
		s := c.b.Shed(id)
		if math.IsNaN(s) || s < 0 || s >= 1 {
			return fmt.Errorf("chord: node %d shed fraction %g outside [0, 1)", id, s)
		}
		if c.b.Failed(id) && s != 0 {
			return fmt.Errorf("chord: failed node %d holds shed fraction %g", id, s)
		}
	}
	return nil
}

func (c *Chord) Clone() Strategy {
	return &Chord{b: c.b.Clone(), seed: c.seed, bound: c.bound, bounded: c.bounded}
}

func decodeChord(data []byte, bounded bool) (Strategy, error) {
	name, payload, err := DecodeTagged(data)
	if err != nil {
		return nil, err
	}
	want := StrategyChord
	if bounded {
		want = StrategyChordBounded
	}
	if name != want {
		return nil, fmt.Errorf("chord: tag %q, want %q", name, want)
	}
	if len(payload) < 20 {
		return nil, fmt.Errorf("chord: payload truncated (%d bytes)", len(payload))
	}
	seed := binary.LittleEndian.Uint64(payload)
	bound := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
	if math.IsNaN(bound) || bound <= 1 {
		return nil, fmt.Errorf("chord: load bound %g must exceed 1", bound)
	}
	k := int(binary.LittleEndian.Uint32(payload[16:]))
	if k == 0 {
		return nil, fmt.Errorf("chord: no members")
	}
	rest := payload[20:]
	if len(rest) != k*13 {
		return nil, fmt.Errorf("chord: %d bytes of member records for k=%d (want %d)", len(rest), k, k*13)
	}
	type member struct {
		id     chordring.NodeID
		failed bool
		shed   float64
	}
	members := make([]member, k)
	nodes := make([]chordring.NodeID, k)
	for i := 0; i < k; i++ {
		rec := rest[i*13:]
		id := chordring.NodeID(binary.LittleEndian.Uint32(rec))
		shed := math.Float64frombits(binary.LittleEndian.Uint64(rec[5:]))
		if math.IsNaN(shed) || shed < 0 || shed >= 1 {
			return nil, fmt.Errorf("chord: node %d shed fraction %g outside [0, 1)", id, shed)
		}
		failed := rec[4] != 0
		if failed && shed != 0 {
			return nil, fmt.Errorf("chord: failed node %d holds shed fraction %g", id, shed)
		}
		members[i] = member{id: id, failed: failed, shed: shed}
		nodes[i] = id
	}
	if !sort.SliceIsSorted(members, func(i, j int) bool { return members[i].id < members[j].id }) {
		return nil, fmt.Errorf("chord: member records not in ascending id order")
	}
	ring, err := chordring.New(hashx.NewFamily(seed), nodes)
	if err != nil {
		return nil, err
	}
	b := chordring.NewBounded(ring)
	for _, m := range members {
		if m.failed {
			if err := b.SetFailed(m.id, true); err != nil {
				return nil, err
			}
		}
		if m.shed != 0 {
			if err := b.SetShed(m.id, m.shed); err != nil {
				return nil, err
			}
		}
	}
	return &Chord{b: b, seed: seed, bound: bound, bounded: bounded}, nil
}
