// Package placement is the pluggable placement-strategy layer: one
// interface over every scheme that can map workload keys to servers,
// plus a registry and a tagged binary codec so the networked runtime,
// the journal, and the wire protocol are policy-agnostic.
//
// The paper's argument is comparative — ANU randomization against
// simple randomization, prescient assignment, and virtual processors —
// and the comparison only means something when every scheme runs under
// the same machinery. A Strategy is exactly the contract the delegate
// protocol needs from a placement scheme:
//
//   - a pure lookup (single and batched) from key to owning server,
//   - one feedback step per tuning round from the delegate's collected
//     latency/request reports,
//   - membership lifecycle (fail, recover, add, remove),
//   - a binary snapshot — the system's entire replicated state — with a
//     strategy tag so no layer ever installs bytes from a different
//     scheme, and
//   - the shared-state size that scheme replicates, the scalability
//     currency of the paper's Figure 8.
//
// Snapshot tagging is backward compatible by construction: the ANU
// strategy's encoding is byte-identical to anu.Map.Encode — its "ANU1"
// wire magic doubles as its strategy tag — so pre-existing journals,
// version-2 wire frames, and golden fixtures decode unchanged. Every
// other strategy wraps its payload in the tagged container written by
// EncodeTagged, whose distinct magic cannot collide with an ANU map.
package placement

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"anurand/internal/anu"
	"anurand/internal/hashx"
)

// ServerID identifies a server; it is the same identifier space as
// package anu's (and the delegate protocol's NodeID).
type ServerID = anu.ServerID

// NoServer marks "no placement possible" (every server failed).
const NoServer = anu.NoServer

// Report is one server's performance sample for a tuning interval, as
// collected by the delegate.
type Report = anu.Report

// Strategy is one placement scheme, in the embeddable form the cluster
// runtime publishes through its RCU snapshot pointer.
//
// Concurrency contract: read methods (Lookup, LookupBatch, LookupProbes,
// Shares, Servers, Has, Encode, SharedStateSize) must be safe to call
// concurrently with each other on an immutable instance. Mutators (Tune,
// AddServer, RemoveServer, Fail, Recover) are serialized by the caller,
// which clones before mutating and publishes only on success — a
// Strategy never needs internal locking.
type Strategy interface {
	// Name returns the registered strategy tag ("anu", "chord",
	// "chord-bounded", ...). Encodings carry it; mixing tags is an error
	// at every decode boundary.
	Name() string

	// Lookup returns the server responsible for key. ok is false only
	// when every server has failed.
	Lookup(key string) (id ServerID, ok bool)
	// LookupProbes is Lookup plus the number of data-structure probes
	// spent (hash probes for ANU, ring hops for chord).
	LookupProbes(key string) (id ServerID, probes int, ok bool)
	// LookupBatch resolves keys[i] into owners[i] against this one
	// placement state, returning how many keys resolved; unresolved
	// entries are set to NoServer. owners must be at least as long as
	// keys.
	LookupBatch(keys []string, owners []ServerID) int

	// Tune applies one feedback round from the delegate's reports and
	// says whether the placement changed. Reports may cover a subset of
	// members; a report with Failed set marks that server down, and a
	// live report from a currently failed member re-admits it.
	Tune(reports []Report) (changed bool, err error)

	// AddServer commissions a new member; RemoveServer decommissions
	// one. Fail marks a member down without removing it; Recover
	// re-admits a failed member.
	AddServer(id ServerID) error
	RemoveServer(id ServerID) error
	Fail(id ServerID) error
	Recover(id ServerID) error

	// Servers returns the member ids in ascending order, including
	// failed members.
	Servers() []ServerID
	// Has reports membership (failed members included).
	Has(id ServerID) bool
	// Shares returns each member's fraction of the key space (live
	// fractions sum to 1; failed members report 0).
	Shares() map[ServerID]float64

	// Encode serializes the strategy's placement state — the system's
	// entire replicated state — in its tagged wire form. Decode with
	// the package Decode.
	Encode() []byte
	// SharedStateSize is len(Encode()).
	SharedStateSize() int

	// Clone returns a deep copy for RCU publication: the caller mutates
	// the clone and publishes it, so readers of the original never see a
	// partial update.
	Clone() Strategy
}

// Invariants is the optional self-check capability. Strategies that can
// verify their internal consistency implement it; callers use it after
// decoding untrusted bytes and in tests.
type Invariants interface {
	CheckInvariants() error
}

// DigestLookuper is the optional allocation-free fast path for
// strategies that can resolve a key pre-hashed with hashx.Prehash. The
// ANU and chord strategies all implement it: the digest is the per-key
// half of every family hash, so callers that cache digests (the
// simulator's KeySet, the runtime's batch path) skip the per-byte pass.
// The NoServer result marks an unplaceable key, as with Lookup.
type DigestLookuper interface {
	LookupDigest(d hashx.Digest) (id ServerID, probes int)
}

// StateAdopter is the optional warm-state handoff capability: when a
// node replaces its published strategy with a freshly decoded one (a
// delegate install), AdoptState lets the new instance inherit
// soft state — e.g. the ANU controller's latency EWMA — from the
// instance it supersedes. Adopting from an incompatible strategy is a
// no-op.
type StateAdopter interface {
	AdoptState(prev Strategy)
}

// SoftStateResetter is the optional crash-model capability: discard
// soft state (smoothing, advisory counters) that would not survive a
// process crash, without touching the encoded placement.
type SoftStateResetter interface {
	ResetSoftState()
}

// Reweigher is the optional capacity-knowledge capability: strategies
// that place by per-server weight implement it so callers can install
// updated speed estimates at runtime (the policy layer refreshes
// weights from measured server speeds each tuning round). SetWeights is
// a partial update — listed servers take the new weight, absent servers
// keep theirs — and must validate before mutating, leaving the strategy
// untouched on error. Like all mutators it is called on a clone under
// the RCU discipline, never on a published instance.
type Reweigher interface {
	// Weights returns the current per-server capacity weights.
	Weights() map[ServerID]float64
	// SetWeights applies a partial weight update. Weights must be
	// finite and > 0, and every listed server must be a member.
	SetWeights(weights map[ServerID]float64) error
}

// Options carries construction-time configuration for strategies. Each
// strategy reads the fields it understands and ignores the rest, so one
// Options value can configure any registered strategy.
type Options struct {
	// HashSeed seeds the agreed-upon hash family when building a fresh
	// strategy. All nodes that share a placement must use the same seed.
	// Decoding recovers the seed from the snapshot instead.
	HashSeed uint64
	// Controller configures the ANU feedback controller ("anu"). The
	// zero value means DefaultControllerConfig.
	Controller anu.ControllerConfig
	// LoadBound is the bounded-load factor c for "chord-bounded": no
	// server should carry more than c times the mean per-server request
	// rate. Zero means DefaultLoadBound; values must exceed 1.
	LoadBound float64
	// Weights carries per-server capacity weights — the paper's a-priori
	// knowledge of relative server speeds — for the weight-aware
	// strategies ("rendezvous", "weighted-static", "power-of-d"). The
	// zero value means uniform capacity; absent servers default to
	// weight 1. Weights are encoded into each weight-aware strategy's
	// tagged snapshot, so they survive the journal, the wire frame, and
	// live migration; a weight listed for a server outside the member
	// set is a construction error. Strategies without capacity knowledge
	// (anu, chord) ignore the field.
	Weights map[ServerID]float64
	// Choices is the d of the "power-of-d" sampler. Zero means
	// DefaultChoices; values must lie in [1, MaxChoices].
	Choices int
}

// DefaultLoadBound is the bounded-load factor used when Options leaves
// it zero — the c = 1.25 operating point of the bounded-load consistent
// hashing literature.
const DefaultLoadBound = 1.25

// Factory builds one strategy family: fresh construction over a server
// set, and decoding of its tagged snapshot.
type Factory struct {
	// New builds a fresh strategy over the given servers (all live,
	// balanced cold start).
	New func(servers []ServerID, opts Options) (Strategy, error)
	// Decode reconstructs a strategy from bytes produced by its Encode.
	// Implementations must validate everything; the bytes may come from
	// disk or the network.
	Decode func(data []byte, opts Options) (Strategy, error)
}

var (
	regMu     sync.RWMutex
	factories = make(map[string]Factory)
)

// validTagName reports whether a strategy name can round-trip the
// tagged container header: 1–255 bytes, every byte printable ASCII
// (0x21–0x7e). The container stores the name as raw bytes behind a
// uint8 length, so anything in that range round-trips; control bytes,
// spaces, and non-ASCII are rejected because they make tags ambiguous
// in logs, CLI flags, and golden-file names.
func validTagName(name string) bool {
	if name == "" || len(name) > 255 {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x21 || name[i] > 0x7e {
			return false
		}
	}
	return true
}

// Register adds a strategy to the registry under its tag. It panics on
// a duplicate, empty, over-long, or non-printable name (registration is
// init-time programmer input). Tags are bounded at 255 bytes by the
// container encoding and restricted to printable ASCII so they
// round-trip the container header, CLI flags, and filenames.
func Register(name string, f Factory) {
	if !validTagName(name) {
		panic(fmt.Sprintf("placement: invalid strategy name %q", name))
	}
	if f.New == nil || f.Decode == nil {
		panic(fmt.Sprintf("placement: strategy %q registered without New/Decode", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("placement: strategy %q registered twice", name))
	}
	factories[name] = f
}

// Names returns the registered strategy tags in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup returns the factory for a tag.
func lookup(name string) (Factory, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return Factory{}, fmt.Errorf("placement: unknown strategy %q (registered: %v)", name, Names())
	}
	return f, nil
}

// New builds a fresh strategy by registered name.
func New(name string, servers []ServerID, opts Options) (Strategy, error) {
	f, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return f.New(servers, opts)
}

// The tagged container wraps every non-ANU strategy snapshot:
//
//	magic   uint32  ("PLC1")
//	nameLen uint8
//	name    nameLen bytes (the strategy tag)
//	payload rest (strategy-owned)
//
// ANU snapshots are NOT wrapped: their own "ANU1" magic is the tag, so
// the bytes stay identical to what pre-placement-layer versions wrote
// to journals and wire frames.
const containerMagic = 0x504c4331 // "PLC1"

// anuMagic mirrors the anu package's wire magic for tag sniffing.
const anuMagic = 0x414e5531 // "ANU1"

// EncodeTagged wraps a strategy payload in the tagged container.
// Strategies other than ANU call it from their Encode.
func EncodeTagged(name string, payload []byte) []byte {
	if !validTagName(name) {
		panic(fmt.Sprintf("placement: invalid tag %q", name))
	}
	buf := make([]byte, 0, 5+len(name)+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, containerMagic)
	buf = append(buf, byte(len(name)))
	buf = append(buf, name...)
	buf = append(buf, payload...)
	return buf
}

// DecodeTagged splits a tagged container into its tag and payload.
func DecodeTagged(data []byte) (name string, payload []byte, err error) {
	if len(data) < 5 {
		return "", nil, fmt.Errorf("placement: tagged snapshot truncated (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != containerMagic {
		return "", nil, fmt.Errorf("placement: bad container magic %#x", binary.LittleEndian.Uint32(data))
	}
	n := int(data[4])
	if n == 0 || 5+n > len(data) {
		return "", nil, fmt.Errorf("placement: tagged snapshot name length %d exceeds %d available bytes", n, len(data)-5)
	}
	return string(data[5 : 5+n]), data[5+n:], nil
}

// Tag returns the strategy tag of an encoded snapshot without decoding
// it: "anu" for a raw ANU map, the container tag otherwise.
func Tag(data []byte) (string, error) {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == anuMagic {
		return StrategyANU, nil
	}
	name, _, err := DecodeTagged(data)
	if err != nil {
		return "", fmt.Errorf("placement: snapshot is neither an ANU map nor a tagged container: %w", err)
	}
	return name, nil
}

// Decode reconstructs a strategy from an encoded snapshot, dispatching
// on its tag. The opts configure whatever the decoded strategy needs at
// runtime (e.g. the ANU controller); state that must match the encoder
// (seeds, membership, bounds) always comes from the bytes.
func Decode(data []byte, opts Options) (Strategy, error) {
	tag, err := Tag(data)
	if err != nil {
		return nil, err
	}
	f, err := lookup(tag)
	if err != nil {
		return nil, err
	}
	s, err := f.Decode(data, opts)
	if err != nil {
		return nil, fmt.Errorf("placement: decode %q snapshot: %w", tag, err)
	}
	return s, nil
}
