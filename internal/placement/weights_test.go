package placement

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// --- registry hygiene (names must round-trip the container header) ---

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestRegisterRejectsBadNames(t *testing.T) {
	okFactory := Factory{
		New:    func(servers []ServerID, opts Options) (Strategy, error) { return nil, nil },
		Decode: func(data []byte, opts Options) (Strategy, error) { return nil, nil },
	}
	bad := []string{
		"",
		strings.Repeat("x", 256),
		"has space",
		"tab\tname",
		"new\nline",
		"nul\x00byte",
		"utf8-héllo",
		"\x7fdel",
	}
	for _, name := range bad {
		mustPanic(t, fmt.Sprintf("Register(%q)", name), func() { Register(name, okFactory) })
		mustPanic(t, fmt.Sprintf("EncodeTagged(%q)", name), func() { EncodeTagged(name, nil) })
	}
	mustPanic(t, "duplicate Register", func() { Register(StrategyChord, okFactory) })
	mustPanic(t, "Register without New/Decode", func() { Register("half-registered", Factory{New: okFactory.New}) })
}

func TestDecodeUnknownTag(t *testing.T) {
	enc := EncodeTagged("never-registered", []byte{1, 2, 3})
	if _, err := Decode(enc, Options{}); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("Decode of unknown tag: %v", err)
	}
	if _, err := New("never-registered", servers(3), Options{}); err == nil {
		t.Fatal("New of unknown tag succeeded")
	}
}

// --- construction-time weight validation ---

func weightedNames() []string {
	return []string{StrategyRendezvous, StrategyWeightedStatic, StrategyPowerOfD}
}

func TestWeightValidation(t *testing.T) {
	for _, name := range weightedNames() {
		t.Run(name, func(t *testing.T) {
			cases := []map[ServerID]float64{
				{9: 1},                  // weight for non-member
				{0: 0},                  // zero
				{0: -1},                 // negative
				{0: math.NaN()},         // NaN
				{0: math.Inf(1)},        // +Inf
				{1: 4, 2: math.Inf(-1)}, // -Inf among valid entries
			}
			for _, w := range cases {
				if _, err := New(name, servers(4), Options{HashSeed: 1, Weights: w}); err == nil {
					t.Errorf("New accepted weights %v", w)
				}
			}
			s, err := New(name, servers(4), Options{HashSeed: 1})
			if err != nil {
				t.Fatal(err)
			}
			rw := s.(Reweigher)
			for _, w := range cases {
				if err := rw.SetWeights(w); err == nil {
					t.Errorf("SetWeights accepted %v", w)
				}
			}
			// A failed partial update must leave the weights untouched.
			if err := rw.SetWeights(map[ServerID]float64{0: 5, 9: 2}); err == nil {
				t.Fatal("SetWeights accepted an unknown member")
			}
			if got := rw.Weights()[0]; got != 1 {
				t.Fatalf("failed SetWeights mutated weight: %g", got)
			}
		})
	}
}

// --- weight-proportional behavior ---

func TestWeightedSharesProportional(t *testing.T) {
	weights := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	total := 25.0
	for _, name := range weightedNames() {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, servers(5), Options{HashSeed: 1, Weights: weights})
			if err != nil {
				t.Fatal(err)
			}
			for id, w := range weights {
				if got, want := s.Shares()[id], w/total; math.Abs(got-want) > 1e-12 {
					t.Errorf("share[%d] = %g, want %g", id, got, want)
				}
			}
		})
	}
}

// TestWeightedLookupTracksWeights draws many keys and demands the
// empirical key distribution follow the configured capacities for the
// two statically weighted schemes (power-of-d placement additionally
// depends on load state, so its distribution is not purely weights).
func TestWeightedLookupTracksWeights(t *testing.T) {
	weights := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	total := 25.0
	const keys = 40000
	for _, name := range []string{StrategyRendezvous, StrategyWeightedStatic} {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, servers(5), Options{HashSeed: 1, Weights: weights})
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[ServerID]int)
			for i := 0; i < keys; i++ {
				id, ok := s.Lookup(fmt.Sprintf("/vol%d/user%d/file%d", i%7, i%31, i))
				if !ok {
					t.Fatal("lookup failed with all servers live")
				}
				counts[id]++
			}
			for id, w := range weights {
				got := float64(counts[id]) / keys
				want := w / total
				if math.Abs(got-want) > 0.015 {
					t.Errorf("server %d got %.3f of keys, want %.3f (weights not honored)", id, got, want)
				}
			}
		})
	}
}

// TestRendezvousMinimalDisruption checks HRW's defining property: a
// failure moves ONLY the failed server's keys.
func TestRendezvousMinimalDisruption(t *testing.T) {
	s := conformanceNew(t, StrategyRendezvous, 6)
	keys := conformanceKeys()
	before := make([]ServerID, len(keys))
	s.LookupBatch(keys, before)
	if err := s.Fail(3); err != nil {
		t.Fatal(err)
	}
	after := make([]ServerID, len(keys))
	s.LookupBatch(keys, after)
	for i := range keys {
		if before[i] != 3 && after[i] != before[i] {
			t.Fatalf("key %q moved %d -> %d though its owner never failed", keys[i], before[i], after[i])
		}
		if after[i] == 3 {
			t.Fatalf("key %q still on failed server", keys[i])
		}
	}
	// Recovery restores the exact original placement.
	if err := s.Recover(3); err != nil {
		t.Fatal(err)
	}
	restored := make([]ServerID, len(keys))
	s.LookupBatch(keys, restored)
	for i := range keys {
		if restored[i] != before[i] {
			t.Fatalf("key %q not restored after recovery: %d -> %d", keys[i], before[i], restored[i])
		}
	}
}

// TestWeightedStaticStability checks the static scheme's defining
// property: keys owned by live servers never move on a failure (static
// boundaries), and only the failed server's keys fail over.
func TestWeightedStaticStability(t *testing.T) {
	s := conformanceNew(t, StrategyWeightedStatic, 6)
	keys := conformanceKeys()
	before := make([]ServerID, len(keys))
	s.LookupBatch(keys, before)
	if err := s.Fail(1); err != nil {
		t.Fatal(err)
	}
	after := make([]ServerID, len(keys))
	s.LookupBatch(keys, after)
	for i := range keys {
		if before[i] != 1 && after[i] != before[i] {
			t.Fatalf("key %q moved %d -> %d though its owner never failed", keys[i], before[i], after[i])
		}
		if after[i] == 1 {
			t.Fatalf("key %q still on failed server", keys[i])
		}
	}
}

// TestPowerOfDSteersByLoad reports heavy load on one sampled server and
// expects the sampler to shift keys toward the lighter choices.
func TestPowerOfDSteersByLoad(t *testing.T) {
	s, err := New(StrategyPowerOfD, servers(4), Options{HashSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	count := func() map[ServerID]int {
		c := make(map[ServerID]int)
		for i := 0; i < 4000; i++ {
			id, ok := s.Lookup(fmt.Sprintf("key-%d", i))
			if !ok {
				t.Fatal("lookup failed")
			}
			c[id]++
		}
		return c
	}
	cold := count()
	// Server 0 reports heavy traffic; the rest stay light.
	if _, err := s.Tune([]Report{
		{Server: 0, Requests: 100000, Latency: 5},
		{Server: 1, Requests: 10, Latency: 0.1},
		{Server: 2, Requests: 10, Latency: 0.1},
		{Server: 3, Requests: 10, Latency: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	hot := count()
	if hot[0] >= cold[0] {
		t.Fatalf("server 0 share did not shrink under load: %d -> %d keys", cold[0], hot[0])
	}
}

func TestPowerOfDChoicesValidation(t *testing.T) {
	if _, err := New(StrategyPowerOfD, servers(3), Options{Choices: MaxChoices + 1}); err == nil {
		t.Error("New accepted Choices above MaxChoices")
	}
	if _, err := New(StrategyPowerOfD, servers(3), Options{Choices: -1}); err == nil {
		t.Error("New accepted negative Choices")
	}
	s, err := New(StrategyPowerOfD, servers(3), Options{Choices: 1})
	if err != nil {
		t.Fatal(err)
	}
	// d=1 is pure weighted random: still a valid sampler.
	if _, ok := s.Lookup("k"); !ok {
		t.Fatal("d=1 lookup failed")
	}
}

// TestWeightsSurviveEncodeDecode is the journal half of the acceptance
// criterion: weights set at construction or through SetWeights come
// back bit-exact from the snapshot bytes, with no help from Options.
func TestWeightsSurviveEncodeDecode(t *testing.T) {
	weights := map[ServerID]float64{0: 1.5, 1: 3.25, 2: 5, 3: 0.125}
	for _, name := range weightedNames() {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, servers(4), Options{HashSeed: 11, Weights: weights})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.(Reweigher).SetWeights(map[ServerID]float64{2: 6.75}); err != nil {
				t.Fatal(err)
			}
			// Decode with zero Options: every weight must come from the bytes.
			dec, err := Decode(s.Encode(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := dec.(Reweigher).Weights()
			want := map[ServerID]float64{0: 1.5, 1: 3.25, 2: 6.75, 3: 0.125}
			for id, w := range want {
				if got[id] != w {
					t.Errorf("decoded weight[%d] = %g, want %g", id, got[id], w)
				}
			}
		})
	}
}

// TestWeightedDecodeRejectsCorruption drives the strict decoders over
// targeted corruptions of a valid snapshot.
func TestWeightedDecodeRejectsCorruption(t *testing.T) {
	for _, name := range weightedNames() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 4)
			enc := s.Encode()
			if _, err := Decode(enc[:len(enc)-3], Options{}); err == nil {
				t.Error("truncated snapshot decoded")
			}
			if _, err := Decode(append(append([]byte(nil), enc...), 0xff), Options{}); err == nil {
				t.Error("snapshot with trailing bytes decoded")
			}
			// Flip the first member's failed flag to an invalid value.
			// Layout: container header (5+name), seed (8, power-of-d adds
			// 4 for d), k (4), id (4), then the flag byte.
			flagOff := 5 + len(name) + 8 + 4 + 4
			if name == StrategyPowerOfD {
				flagOff += 4
			}
			bad := append([]byte(nil), enc...)
			bad[flagOff] = 7
			if _, err := Decode(bad, Options{}); err == nil {
				t.Error("snapshot with invalid failed flag decoded")
			}
		})
	}
}
