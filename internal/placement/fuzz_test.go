package placement

import (
	"bytes"
	"testing"
)

// FuzzWeightedSnapshot hammers the weighted snapshot codec shared by
// the weight-aware strategies (rendezvous, weighted-static, power-of-d)
// with arbitrary bytes: Decode must never panic, anything it accepts
// must satisfy the strategy invariants, and — because the member codec
// is canonical — must re-encode byte-identically.
func FuzzWeightedSnapshot(f *testing.F) {
	weights := map[ServerID]float64{0: 1, 1: 3, 2: 5, 3: 7}
	for _, name := range []string{StrategyRendezvous, StrategyWeightedStatic, StrategyPowerOfD} {
		s, err := New(name, []ServerID{0, 1, 2, 3}, Options{HashSeed: 9, Weights: weights})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s.Encode())
		if err := s.Fail(2); err != nil {
			f.Fatal(err)
		}
		if _, err := s.Tune([]Report{{Server: 0, Requests: 1200, Latency: 0.8}}); err != nil {
			f.Fatal(err)
		}
		f.Add(s.Encode())
	}
	f.Add([]byte{})
	f.Add(EncodeTagged(StrategyRendezvous, nil))
	f.Add(EncodeTagged("never-registered", []byte{1, 2, 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data, Options{})
		if err != nil {
			return
		}
		switch dec.(type) {
		case *Rendezvous, *WeightedStatic, *PowerOfD:
		default:
			return // ANU/chord snapshots have their own fuzzers
		}
		if err := dec.(Invariants).CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates invariants: %v", err)
		}
		if !bytes.Equal(dec.Encode(), data) {
			t.Fatal("accepted snapshot does not re-encode canonically")
		}
		// The accepted state must be servable: lookups succeed whenever
		// any member is live, and never land on a failed member.
		shares := dec.Shares()
		id, ok := dec.Lookup("fuzz-probe")
		if ok && shares[id] == 0 {
			t.Fatalf("lookup placed on share-less server %d", id)
		}
	})
}
