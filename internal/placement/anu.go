package placement

import (
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/hashx"
)

// StrategyANU is the registered tag of the paper's adaptive non-uniform
// randomization scheme, the default placement strategy.
const StrategyANU = "anu"

func init() {
	Register(StrategyANU, Factory{New: newANU, Decode: decodeANU})
}

// ANU adapts the anu package — tunable map plus feedback controller —
// to the Strategy interface. Its Encode is byte-identical to
// anu.Map.Encode (the "ANU1" magic doubles as the strategy tag), so
// journals, wire frames, and golden fixtures written before the
// placement layer existed decode into this strategy unchanged.
type ANU struct {
	m   *anu.Map
	ctl *anu.Controller
}

func controllerConfig(opts Options) anu.ControllerConfig {
	if opts.Controller == (anu.ControllerConfig{}) {
		return anu.DefaultControllerConfig()
	}
	return opts.Controller
}

func newANU(servers []ServerID, opts Options) (Strategy, error) {
	cfg := controllerConfig(opts)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := anu.New(hashx.NewFamily(opts.HashSeed), servers)
	if err != nil {
		return nil, err
	}
	return &ANU{m: m, ctl: anu.NewController(cfg)}, nil
}

func decodeANU(data []byte, opts Options) (Strategy, error) {
	cfg := controllerConfig(opts)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := anu.Decode(data)
	if err != nil {
		return nil, err
	}
	return &ANU{m: m, ctl: anu.NewController(cfg)}, nil
}

// NewANU builds the ANU strategy directly, for callers that hold a map
// already (the Balancer's Restore path and tests).
func NewANU(m *anu.Map, ctl *anu.Controller) *ANU {
	return &ANU{m: m, ctl: ctl}
}

// Map exposes the underlying placement map (read-only for published
// instances).
func (a *ANU) Map() *anu.Map { return a.m }

// Controller exposes the feedback controller (advisories, round count).
func (a *ANU) Controller() *anu.Controller { return a.ctl }

func (a *ANU) Name() string { return StrategyANU }

func (a *ANU) Lookup(key string) (ServerID, bool) {
	id, _ := a.m.Lookup(key)
	return id, id != NoServer
}

func (a *ANU) LookupProbes(key string) (ServerID, int, bool) {
	id, probes := a.m.Lookup(key)
	return id, probes, id != NoServer
}

// LookupDigest implements DigestLookuper.
func (a *ANU) LookupDigest(d hashx.Digest) (ServerID, int) {
	return a.m.LookupDigest(d)
}

func (a *ANU) LookupBatch(keys []string, owners []ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("placement: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	resolved := 0
	for i, key := range keys {
		id, _ := a.m.Lookup(key)
		owners[i] = id
		if id != NoServer {
			resolved++
		}
	}
	return resolved
}

func (a *ANU) Tune(reports []Report) (bool, error) {
	return a.ctl.Tune(a.m, reports)
}

func (a *ANU) AddServer(id ServerID) error    { return a.m.AddServer(id) }
func (a *ANU) RemoveServer(id ServerID) error { return a.m.RemoveServer(id) }
func (a *ANU) Fail(id ServerID) error         { return a.m.Fail(id) }
func (a *ANU) Recover(id ServerID) error      { return a.m.Recover(id) }

func (a *ANU) Servers() []ServerID  { return a.m.Servers() }
func (a *ANU) Has(id ServerID) bool { return a.m.Has(id) }

func (a *ANU) Shares() map[ServerID]float64 {
	total := float64(a.m.TotalMapped())
	out := make(map[ServerID]float64, a.m.K())
	for id, l := range a.m.Lengths() {
		if total == 0 {
			out[id] = 0
		} else {
			out[id] = float64(l) / total
		}
	}
	return out
}

func (a *ANU) Encode() []byte       { return a.m.Encode() }
func (a *ANU) SharedStateSize() int { return a.m.SharedStateSize() }

// CheckInvariants implements Invariants.
func (a *ANU) CheckInvariants() error { return a.m.CheckInvariants() }

// Clone deep-copies the map but shares the controller: the controller's
// EWMA is soft state owned by the writer (the local tuning loop), and
// sharing it is what keeps latency smoothing warm across RCU
// publications, exactly as the pre-placement Balancer behaved.
func (a *ANU) Clone() Strategy {
	return &ANU{m: a.m.Clone(), ctl: a.ctl}
}

// ResetSoftState implements SoftStateResetter: it clears the
// controller's EWMA and advisory counters, as a crashed-and-restarted
// node would.
func (a *ANU) ResetSoftState() { a.ctl.Reset() }

// AdoptState implements StateAdopter: a freshly decoded instance
// inherits the superseded instance's controller (EWMA, advisory
// counters) so a delegate install does not cold-restart smoothing.
func (a *ANU) AdoptState(prev Strategy) {
	if p, ok := prev.(*ANU); ok && p.ctl != nil {
		a.ctl = p.ctl
	}
}
