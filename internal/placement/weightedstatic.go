package placement

import (
	"encoding/binary"
	"fmt"

	"anurand/internal/hashx"
)

// StrategyWeightedStatic is the registered tag of static weighted
// hashing seeded from known server speeds — the paper's "a-priori
// knowledge" baseline. The unit interval is partitioned proportionally
// to the capacity weights once; keys hash onto it with h_0 and never
// move while their owner is live. The partition covers ALL members
// (boundaries never shift on failure); a key whose owner is down
// re-hashes with h_1, h_2, … until it lands on a live server, so a
// failure moves only the failed server's keys, spread weight-
// proportionally over the survivors.
const StrategyWeightedStatic = "weighted-static"

// staticMaxProbes bounds the re-hash chain under failures before the
// lookup falls back to a direct weighted draw over the live members; it
// matches the hash family's precomputed tweak table.
const staticMaxProbes = 64

func init() {
	Register(StrategyWeightedStatic, Factory{New: newWeightedStatic, Decode: decodeWeightedStatic})
}

// WeightedStatic is the a-priori static strategy. The member table is
// the entire replicated state.
type WeightedStatic struct {
	t    *memberTable
	seed uint64
	fam  hashx.Family
}

func newWeightedStatic(servers []ServerID, opts Options) (Strategy, error) {
	t, err := newMemberTable(servers, opts.Weights)
	if err != nil {
		return nil, fmt.Errorf("weighted-static: %w", err)
	}
	return &WeightedStatic{t: t, seed: opts.HashSeed, fam: hashx.NewFamily(opts.HashSeed)}, nil
}

func (s *WeightedStatic) Name() string { return StrategyWeightedStatic }

// LookupDigest implements DigestLookuper: one mix plus a binary search
// per probe, no per-byte hashing, no allocation. Probes counts re-hash
// rounds, exactly like the ANU map's probe metric.
func (s *WeightedStatic) LookupDigest(d hashx.Digest) (ServerID, int) {
	for r := 0; r < staticMaxProbes; r++ {
		idx := s.t.ownerAll(s.fam.HashDigest(d, r))
		if !s.t.failed[idx] {
			return s.t.ids[idx], r + 1
		}
	}
	// Pathological live fraction: draw directly over the live members.
	idx, ok := s.t.pickLive(s.fam.HashDigest(d, staticMaxProbes))
	if !ok {
		return NoServer, staticMaxProbes
	}
	return s.t.ids[idx], staticMaxProbes + 1
}

func (s *WeightedStatic) Lookup(key string) (ServerID, bool) {
	id, _ := s.LookupDigest(hashx.Prehash(key))
	return id, id != NoServer
}

func (s *WeightedStatic) LookupProbes(key string) (ServerID, int, bool) {
	id, probes := s.LookupDigest(hashx.Prehash(key))
	return id, probes, id != NoServer
}

func (s *WeightedStatic) LookupBatch(keys []string, owners []ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("placement: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	resolved := 0
	for i, key := range keys {
		id, _ := s.LookupDigest(hashx.Prehash(key))
		owners[i] = id
		if id != NoServer {
			resolved++
		}
	}
	return resolved
}

// Tune applies failure handling only: the scheme is static by design —
// its knowledge arrived a priori through the weights, and the contrast
// with feedback-driven ANU is what the bake-off measures.
func (s *WeightedStatic) Tune(reports []Report) (bool, error) {
	return tuneFailuresOnly(s.t, "weighted-static", reports)
}

func (s *WeightedStatic) AddServer(id ServerID) error    { return s.t.add(id) }
func (s *WeightedStatic) RemoveServer(id ServerID) error { return s.t.remove(id) }
func (s *WeightedStatic) Fail(id ServerID) error         { return s.t.setFailed(id, true) }
func (s *WeightedStatic) Recover(id ServerID) error      { return s.t.setFailed(id, false) }

func (s *WeightedStatic) Servers() []ServerID          { return s.t.servers() }
func (s *WeightedStatic) Has(id ServerID) bool         { return s.t.has(id) }
func (s *WeightedStatic) Shares() map[ServerID]float64 { return s.t.shares() }

// Weights implements Reweigher.
func (s *WeightedStatic) Weights() map[ServerID]float64 { return s.t.weightsMap() }

// SetWeights implements Reweigher: an updated capacity table re-draws
// the static boundaries (keys move proportionally to the change).
func (s *WeightedStatic) SetWeights(weights map[ServerID]float64) error {
	_, err := s.t.setWeights(weights)
	return err
}

// The weighted-static payload inside the tagged container:
//
//	seed uint64
//	member table (see weights.go)
func (s *WeightedStatic) Encode() []byte {
	buf := make([]byte, 0, 12+len(s.t.ids)*memberRecSize)
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = s.t.appendEncoded(buf)
	return EncodeTagged(StrategyWeightedStatic, buf)
}

func (s *WeightedStatic) SharedStateSize() int { return len(s.Encode()) }

// CheckInvariants implements Invariants.
func (s *WeightedStatic) CheckInvariants() error { return s.t.checkInvariants() }

func (s *WeightedStatic) Clone() Strategy {
	return &WeightedStatic{t: s.t.clone(), seed: s.seed, fam: s.fam}
}

func decodeWeightedStatic(data []byte, opts Options) (Strategy, error) {
	name, payload, err := DecodeTagged(data)
	if err != nil {
		return nil, err
	}
	if name != StrategyWeightedStatic {
		return nil, fmt.Errorf("weighted-static: tag %q, want %q", name, StrategyWeightedStatic)
	}
	if len(payload) < 8 {
		return nil, fmt.Errorf("weighted-static: payload truncated (%d bytes)", len(payload))
	}
	t, rest, err := decodeMemberTable(payload[8:])
	if err != nil {
		return nil, fmt.Errorf("weighted-static: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("weighted-static: %d trailing bytes", len(rest))
	}
	seed := binary.LittleEndian.Uint64(payload)
	return &WeightedStatic{t: t, seed: seed, fam: hashx.NewFamily(seed)}, nil
}
