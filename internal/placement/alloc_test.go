package placement

import (
	"fmt"
	"testing"

	"anurand/internal/hashx"
)

// TestLookupPathsZeroAllocs pins the data-plane contract for every
// registered strategy: single lookups, batched lookups, and the digest
// fast path must not allocate. One failed member keeps the failover
// branches in play.
func TestLookupPathsZeroAllocs(t *testing.T) {
	servers := []ServerID{0, 1, 2, 3, 4, 5, 6, 7}
	keys := make([]string, 256)
	digests := make([]hashx.Digest, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("fileset/%04d", i)
		digests[i] = hashx.Prehash(keys[i])
	}
	owners := make([]ServerID, len(keys))
	for _, tag := range Names() {
		t.Run(tag, func(t *testing.T) {
			s, err := New(tag, servers, Options{HashSeed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Fail(3); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(100, func() {
				for _, key := range keys {
					s.Lookup(key)
				}
			}); n != 0 {
				t.Errorf("%s.Lookup allocated %g times per %d lookups, want 0", tag, n, len(keys))
			}
			if n := testing.AllocsPerRun(100, func() {
				s.LookupBatch(keys, owners)
			}); n != 0 {
				t.Errorf("%s.LookupBatch allocated %g times per batch, want 0", tag, n)
			}
			dl, ok := s.(DigestLookuper)
			if !ok {
				t.Skipf("strategy %q does not implement DigestLookuper", tag)
			}
			if n := testing.AllocsPerRun(100, func() {
				for _, d := range digests {
					dl.LookupDigest(d)
				}
			}); n != 0 {
				t.Errorf("%s.LookupDigest allocated %g times per %d lookups, want 0", tag, n, len(digests))
			}
		})
	}
}

// TestChordLookupDigestMatchesLookup pins digest/string equivalence for
// both ring strategies: LookupDigest(Prehash(k)) must agree with
// Lookup(k), which is what lets callers cache digests safely.
func TestChordLookupDigestMatchesLookup(t *testing.T) {
	for _, tag := range []string{StrategyChord, StrategyChordBounded} {
		s, err := New(tag, []ServerID{0, 1, 2, 3, 4}, Options{HashSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Fail(2); err != nil {
			t.Fatal(err)
		}
		dl := s.(DigestLookuper)
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("fs/%d", i)
			id, ok := s.Lookup(key)
			did, _ := dl.LookupDigest(hashx.Prehash(key))
			if !ok {
				t.Fatalf("%s: Lookup(%q) not ok with live members", tag, key)
			}
			if did != id {
				t.Fatalf("%s: LookupDigest(%q) = %d, Lookup = %d", tag, key, did, id)
			}
		}
	}
}
