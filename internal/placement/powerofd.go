package placement

import (
	"encoding/binary"
	"fmt"
	"math"

	"anurand/internal/hashx"
)

// StrategyPowerOfD is the registered tag of the power-of-d-choices
// sampler: each key draws d weighted samples from the live members and
// takes the least relatively loaded one (load divided by capacity
// weight, the heterogeneous-cluster form of Mukhopadhyay et al.). The
// load estimate is an EWMA over tuning reports and is part of the
// replicated snapshot, so every node resolves a key against the same
// state and lookups stay deterministic cluster-wide.
const StrategyPowerOfD = "power-of-d"

// powerOfDDamping is the EWMA retention factor of the per-server load
// estimate: new = damping·old + (1−damping)·sample per tuning round.
const powerOfDDamping = 0.5

func init() {
	Register(StrategyPowerOfD, Factory{New: newPowerOfD, Decode: decodePowerOfD})
}

// PowerOfD is the power-of-d-choices strategy. Member table, choice
// count, and load estimates are all replicated state.
type PowerOfD struct {
	t    *memberTable
	seed uint64
	fam  hashx.Family
	d    int
	load []float64 // parallel to t.ids: EWMA request rate, ≥ 0, finite
}

func newPowerOfD(servers []ServerID, opts Options) (Strategy, error) {
	t, err := newMemberTable(servers, opts.Weights)
	if err != nil {
		return nil, fmt.Errorf("power-of-d: %w", err)
	}
	d := opts.Choices
	if d == 0 {
		d = DefaultChoices
	}
	if d < 0 || d > MaxChoices {
		return nil, fmt.Errorf("power-of-d: Choices %d out of range [1, %d]", d, MaxChoices)
	}
	return &PowerOfD{
		t:    t,
		seed: opts.HashSeed,
		fam:  hashx.NewFamily(opts.HashSeed),
		d:    d,
		load: make([]float64, len(t.ids)),
	}, nil
}

func (p *PowerOfD) Name() string { return StrategyPowerOfD }

// LookupDigest implements DigestLookuper: d weighted draws over the
// live members, keep the one with the least load per unit weight (ties
// break toward the lower server id so every node agrees). Probes is the
// number of draws.
func (p *PowerOfD) LookupDigest(d hashx.Digest) (ServerID, int) {
	best := -1
	var bestRel float64
	for r := 0; r < p.d; r++ {
		idx, ok := p.t.pickLive(p.fam.HashDigest(d, r))
		if !ok {
			return NoServer, 0
		}
		rel := p.load[idx] / p.t.weight[idx]
		if best < 0 || rel < bestRel || (rel == bestRel && p.t.ids[idx] < p.t.ids[best]) {
			best, bestRel = idx, rel
		}
	}
	return p.t.ids[best], p.d
}

func (p *PowerOfD) Lookup(key string) (ServerID, bool) {
	id, _ := p.LookupDigest(hashx.Prehash(key))
	return id, id != NoServer
}

func (p *PowerOfD) LookupProbes(key string) (ServerID, int, bool) {
	id, probes := p.LookupDigest(hashx.Prehash(key))
	return id, probes, id != NoServer
}

func (p *PowerOfD) LookupBatch(keys []string, owners []ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("placement: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	resolved := 0
	for i, key := range keys {
		id, _ := p.LookupDigest(hashx.Prehash(key))
		owners[i] = id
		if id != NoServer {
			resolved++
		}
	}
	return resolved
}

// Tune folds each report into the load EWMA (sample = the interval's
// request count) and applies failure transitions. A failed member's
// load is zeroed so it re-enters cold when it recovers. Reports for
// unknown members are an error, matching chord.
func (p *PowerOfD) Tune(reports []Report) (bool, error) {
	changed := false
	for _, rep := range reports {
		i := p.t.index(rep.Server)
		if i < 0 {
			return changed, fmt.Errorf("power-of-d: Tune: report for unknown server %d", rep.Server)
		}
		if rep.Failed != p.t.failed[i] {
			if err := p.t.setFailed(rep.Server, rep.Failed); err != nil {
				return changed, err
			}
			changed = true
		}
		if rep.Failed {
			if p.load[i] != 0 {
				p.load[i] = 0
				changed = true
			}
			continue
		}
		next := powerOfDDamping*p.load[i] + (1-powerOfDDamping)*float64(rep.Requests)
		if next != p.load[i] {
			p.load[i] = next
			changed = true
		}
	}
	return changed, nil
}

func (p *PowerOfD) AddServer(id ServerID) error {
	loads := p.loadByID()
	if err := p.t.add(id); err != nil {
		return err
	}
	p.realignLoad(loads) // the newcomer starts at load 0 (cold)
	return nil
}

func (p *PowerOfD) RemoveServer(id ServerID) error {
	loads := p.loadByID()
	if err := p.t.remove(id); err != nil {
		return err
	}
	p.realignLoad(loads)
	return nil
}

// loadByID captures the load estimates keyed by server id so they
// survive the positional shift of a membership change.
func (p *PowerOfD) loadByID() map[ServerID]float64 {
	byID := make(map[ServerID]float64, len(p.load))
	for i, sid := range p.t.ids {
		byID[sid] = p.load[i]
	}
	return byID
}

// realignLoad rebuilds the positional load array against the current
// (post-mutation) id order; ids without a prior estimate start at 0.
func (p *PowerOfD) realignLoad(byID map[ServerID]float64) {
	loads := make([]float64, len(p.t.ids))
	for i, sid := range p.t.ids {
		loads[i] = byID[sid]
	}
	p.load = loads
}

func (p *PowerOfD) Fail(id ServerID) error {
	if err := p.t.setFailed(id, true); err != nil {
		return err
	}
	if i := p.t.index(id); i >= 0 {
		p.load[i] = 0
	}
	return nil
}

func (p *PowerOfD) Recover(id ServerID) error { return p.t.setFailed(id, false) }

func (p *PowerOfD) Servers() []ServerID          { return p.t.servers() }
func (p *PowerOfD) Has(id ServerID) bool         { return p.t.has(id) }
func (p *PowerOfD) Shares() map[ServerID]float64 { return p.t.shares() }

// Weights implements Reweigher.
func (p *PowerOfD) Weights() map[ServerID]float64 { return p.t.weightsMap() }

// SetWeights implements Reweigher.
func (p *PowerOfD) SetWeights(weights map[ServerID]float64) error {
	_, err := p.t.setWeights(weights)
	return err
}

// The power-of-d payload inside the tagged container:
//
//	seed uint64
//	d uint32
//	member table (see weights.go)
//	k × load float64 bits   (aligned to the table's ascending ids)
func (p *PowerOfD) Encode() []byte {
	buf := make([]byte, 0, 16+len(p.t.ids)*(memberRecSize+8))
	buf = binary.LittleEndian.AppendUint64(buf, p.seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.d))
	buf = p.t.appendEncoded(buf)
	for i := range p.t.ids {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.load[i]))
	}
	return EncodeTagged(StrategyPowerOfD, buf)
}

func (p *PowerOfD) SharedStateSize() int { return len(p.Encode()) }

// CheckInvariants implements Invariants.
func (p *PowerOfD) CheckInvariants() error {
	if err := p.t.checkInvariants(); err != nil {
		return err
	}
	if len(p.load) != len(p.t.ids) {
		return fmt.Errorf("power-of-d: %d load entries for %d members", len(p.load), len(p.t.ids))
	}
	for i, l := range p.load {
		if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
			return fmt.Errorf("power-of-d: server %d has invalid load %g", p.t.ids[i], l)
		}
		if p.t.failed[i] && l != 0 {
			return fmt.Errorf("power-of-d: failed server %d has nonzero load %g", p.t.ids[i], l)
		}
	}
	if p.d < 1 || p.d > MaxChoices {
		return fmt.Errorf("power-of-d: choices %d out of range [1, %d]", p.d, MaxChoices)
	}
	return nil
}

func (p *PowerOfD) Clone() Strategy {
	return &PowerOfD{
		t:    p.t.clone(),
		seed: p.seed,
		fam:  p.fam,
		d:    p.d,
		load: append([]float64(nil), p.load...),
	}
}

func decodePowerOfD(data []byte, opts Options) (Strategy, error) {
	name, payload, err := DecodeTagged(data)
	if err != nil {
		return nil, err
	}
	if name != StrategyPowerOfD {
		return nil, fmt.Errorf("power-of-d: tag %q, want %q", name, StrategyPowerOfD)
	}
	if len(payload) < 12 {
		return nil, fmt.Errorf("power-of-d: payload truncated (%d bytes)", len(payload))
	}
	seed := binary.LittleEndian.Uint64(payload)
	d := int(binary.LittleEndian.Uint32(payload[8:]))
	if d < 1 || d > MaxChoices {
		return nil, fmt.Errorf("power-of-d: choices %d out of range [1, %d]", d, MaxChoices)
	}
	t, rest, err := decodeMemberTable(payload[12:])
	if err != nil {
		return nil, fmt.Errorf("power-of-d: %w", err)
	}
	if len(rest) != len(t.ids)*8 {
		return nil, fmt.Errorf("power-of-d: %d bytes of load records for %d members (want %d)", len(rest), len(t.ids), len(t.ids)*8)
	}
	load := make([]float64, len(t.ids))
	for i := range load {
		l := math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
			return nil, fmt.Errorf("power-of-d: server %d has invalid load %g", t.ids[i], l)
		}
		if t.failed[i] && l != 0 {
			return nil, fmt.Errorf("power-of-d: failed server %d has nonzero load %g", t.ids[i], l)
		}
		load[i] = l
	}
	return &PowerOfD{t: t, seed: seed, fam: hashx.NewFamily(seed), d: d, load: load}, nil
}
