package placement

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// The conformance suite runs every registered strategy through the
// whole Strategy contract — lookup agreement across the four read
// paths, clone isolation, snapshot round-trips, tag-mismatch rejection,
// the membership lifecycle, and share normalization — so a new
// strategy cannot silently skip an invariant: registering it is
// enrolling it.

// conformanceOptions builds each strategy with a non-trivial
// configuration: a fixed seed and skewed weights for the weight-aware
// schemes (ignored by the rest), so the suite exercises the weighted
// paths rather than the uniform special case.
func conformanceOptions(n int) Options {
	weights := make(map[ServerID]float64, n)
	for i := 0; i < n; i++ {
		weights[ServerID(i)] = float64(2*i + 1)
	}
	return Options{HashSeed: 7, Weights: weights}
}

func conformanceNew(t *testing.T, name string, n int) Strategy {
	t.Helper()
	s, err := New(name, servers(n), conformanceOptions(n))
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return s
}

func conformanceKeys() []string {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("/srv/fileset-%03d", i)
	}
	return keys
}

// perturb drives the strategy through a failure and several feedback
// rounds so conformance checks run against live state, not a cold start.
func perturb(t *testing.T, s Strategy) {
	t.Helper()
	if err := s.Fail(2); err != nil {
		t.Fatalf("%s: Fail(2): %v", s.Name(), err)
	}
	reports := make([]Report, 0, len(s.Servers()))
	for i, id := range s.Servers() {
		if id == 2 {
			reports = append(reports, Report{Server: id, Failed: true})
			continue
		}
		reports = append(reports, Report{Server: id, Requests: uint64(300 + 997*i), Latency: 0.4 + 0.3*float64(i)})
	}
	for round := 0; round < 3; round++ {
		if _, err := s.Tune(reports); err != nil {
			t.Fatalf("%s: Tune: %v", s.Name(), err)
		}
	}
}

func TestConformanceLookupAgreement(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 6)
			perturb(t, s)
			keys := conformanceKeys()
			owners := make([]ServerID, len(keys))
			resolved := s.LookupBatch(keys, owners)
			if resolved != len(keys) {
				t.Fatalf("LookupBatch resolved %d of %d keys with live members", resolved, len(keys))
			}
			for i, key := range keys {
				id, ok := s.Lookup(key)
				if !ok {
					t.Fatalf("Lookup(%q) not ok with live members", key)
				}
				if id != owners[i] {
					t.Fatalf("Lookup(%q) = %d, LookupBatch said %d", key, id, owners[i])
				}
				pid, probes, ok := s.LookupProbes(key)
				if !ok || pid != id {
					t.Fatalf("LookupProbes(%q) = (%d, %v), Lookup said %d", key, pid, ok, id)
				}
				if probes < 1 {
					t.Fatalf("LookupProbes(%q) reported %d probes", key, probes)
				}
				if s.Shares()[id] == 0 {
					t.Fatalf("Lookup(%q) placed on %d, which holds no share", key, id)
				}
			}
		})
	}
}

func TestConformanceCloneIsolation(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 6)
			perturb(t, s)
			before := s.Encode()
			keys := conformanceKeys()
			owners := make([]ServerID, len(keys))
			s.LookupBatch(keys, owners)

			clone := s.Clone()
			if err := clone.Fail(4); err != nil {
				t.Fatalf("clone.Fail: %v", err)
			}
			if err := clone.AddServer(99); err != nil {
				t.Fatalf("clone.AddServer: %v", err)
			}
			if _, err := clone.Tune([]Report{{Server: 0, Requests: 50000, Latency: 9.0}}); err != nil {
				t.Fatalf("clone.Tune: %v", err)
			}

			if !bytes.Equal(s.Encode(), before) {
				t.Fatal("mutating the clone changed the original's encoding")
			}
			after := make([]ServerID, len(keys))
			s.LookupBatch(keys, after)
			for i := range keys {
				if owners[i] != after[i] {
					t.Fatalf("mutating the clone moved key %q on the original: %d -> %d", keys[i], owners[i], after[i])
				}
			}
			if s.Has(99) {
				t.Fatal("clone.AddServer leaked into the original")
			}
		})
	}
}

func TestConformanceEncodeDecodeRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 6)
			perturb(t, s)
			enc := s.Encode()
			if got := s.SharedStateSize(); got != len(enc) {
				t.Fatalf("SharedStateSize = %d, len(Encode()) = %d", got, len(enc))
			}
			if tag, err := Tag(enc); err != nil || tag != name {
				t.Fatalf("Tag = (%q, %v), want %q", tag, err, name)
			}
			dec, err := Decode(enc, conformanceOptions(6))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if dec.Name() != name {
				t.Fatalf("decoded strategy is %q", dec.Name())
			}
			if !bytes.Equal(dec.Encode(), enc) {
				t.Fatal("Encode -> Decode -> Encode is not byte-identical")
			}
			if inv, ok := dec.(Invariants); ok {
				if err := inv.CheckInvariants(); err != nil {
					t.Fatalf("decoded strategy fails invariants: %v", err)
				}
			}
			// The decoded replica must place every key exactly where the
			// original does — snapshots are the system's replicated state.
			keys := conformanceKeys()
			a := make([]ServerID, len(keys))
			b := make([]ServerID, len(keys))
			s.LookupBatch(keys, a)
			dec.LookupBatch(keys, b)
			for i := range keys {
				if a[i] != b[i] {
					t.Fatalf("decoded replica places %q on %d, original on %d", keys[i], b[i], a[i])
				}
			}
		})
	}
}

// TestConformanceTagMismatch feeds every strategy's snapshot to every
// OTHER strategy's decoder: all must reject, no decoder may adopt a
// foreign placement.
func TestConformanceTagMismatch(t *testing.T) {
	encs := make(map[string][]byte)
	for _, name := range Names() {
		encs[name] = conformanceNew(t, name, 5).Encode()
	}
	for _, decName := range Names() {
		f, err := lookup(decName)
		if err != nil {
			t.Fatal(err)
		}
		for _, encName := range Names() {
			if encName == decName {
				continue
			}
			if _, err := f.Decode(encs[encName], conformanceOptions(5)); err == nil {
				t.Errorf("%s decoder accepted a %s snapshot", decName, encName)
			}
		}
	}
}

func TestConformanceLifecycle(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 4)
			keys := conformanceKeys()

			if err := s.Fail(1); err != nil {
				t.Fatalf("Fail: %v", err)
			}
			for _, key := range keys {
				if id, ok := s.Lookup(key); !ok || id == 1 {
					t.Fatalf("Lookup(%q) = (%d, %v) with server 1 failed", key, id, ok)
				}
			}
			if s.Shares()[1] != 0 {
				t.Fatal("failed server still holds a share")
			}
			if !s.Has(1) {
				t.Fatal("failed server dropped from membership")
			}

			if err := s.Recover(1); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if s.Shares()[1] == 0 {
				t.Fatal("recovered server holds no share")
			}

			if err := s.AddServer(7); err != nil {
				t.Fatalf("AddServer: %v", err)
			}
			if !s.Has(7) {
				t.Fatal("added server not a member")
			}
			wantServers := []ServerID{0, 1, 2, 3, 7}
			got := s.Servers()
			if len(got) != len(wantServers) {
				t.Fatalf("Servers() = %v, want %v", got, wantServers)
			}
			for i := range got {
				if got[i] != wantServers[i] {
					t.Fatalf("Servers() = %v, want %v (ascending)", got, wantServers)
				}
			}

			if err := s.RemoveServer(7); err != nil {
				t.Fatalf("RemoveServer: %v", err)
			}
			if s.Has(7) {
				t.Fatal("removed server still a member")
			}

			// Error paths: unknown ids must be rejected, not absorbed.
			if err := s.Fail(55); err == nil {
				t.Error("Fail(unknown) succeeded")
			}
			if err := s.RemoveServer(55); err == nil {
				t.Error("RemoveServer(unknown) succeeded")
			}
			if err := s.AddServer(0); err == nil {
				t.Error("AddServer(duplicate) succeeded")
			}
		})
	}
}

func TestConformanceSharesSumToOne(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 6)
			perturb(t, s)
			shares := s.Shares()
			if len(shares) != 6 {
				t.Fatalf("Shares() has %d entries, want 6", len(shares))
			}
			sum := 0.0
			for id, sh := range shares {
				if sh < 0 || math.IsNaN(sh) {
					t.Fatalf("server %d has share %g", id, sh)
				}
				sum += sh
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("shares sum to %g, want 1", sum)
			}
		})
	}
}

func TestConformanceAllFailed(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceNew(t, name, 3)
			for _, id := range s.Servers() {
				if err := s.Fail(id); err != nil {
					t.Fatalf("Fail(%d): %v", id, err)
				}
			}
			if id, ok := s.Lookup("/srv/fileset-000"); ok {
				t.Fatalf("Lookup placed on %d with every server failed", id)
			}
			keys := []string{"a", "b", "c"}
			owners := make([]ServerID, len(keys))
			if resolved := s.LookupBatch(keys, owners); resolved != 0 {
				t.Fatalf("LookupBatch resolved %d keys with every server failed", resolved)
			}
			for i, id := range owners {
				if id != NoServer {
					t.Fatalf("owners[%d] = %d, want NoServer", i, id)
				}
			}
		})
	}
}
