package placement

import (
	"encoding/binary"
	"fmt"
	"math"

	"anurand/internal/hashx"
	"anurand/internal/rng"
)

// StrategyRendezvous is the registered tag of weighted rendezvous
// (highest-random-weight) hashing: every live server scores each key
// and the highest score owns it. Scores are weight-scaled with the
// -w/ln(u) transform, so a server with twice the capacity weight wins
// twice the keys in expectation, and a failure moves only the failed
// server's keys (each key's surviving scores are unchanged — the
// minimal-disruption property HRW is known for).
const StrategyRendezvous = "rendezvous"

func init() {
	Register(StrategyRendezvous, Factory{New: newRendezvous, Decode: decodeRendezvous})
}

// rendezvousSaltStep and rendezvousSaltTweak derive each member's score
// salt as Mix64(seed ^ (id*step + tweak)). Like the hashx tweak
// constants they are part of the wire agreement: changing them re-places
// every key.
const (
	rendezvousSaltStep  = 0x9e3779b97f4a7c15
	rendezvousSaltTweak = 0xd1b54a32d192ed03
)

// Rendezvous is the weighted-HRW strategy. The member table is the
// entire replicated state; per-member salts are derived from the seed
// and rebuilt on membership change, never shipped.
type Rendezvous struct {
	t    *memberTable
	seed uint64
	salt []uint64 // parallel to t.ids
}

func newRendezvous(servers []ServerID, opts Options) (Strategy, error) {
	t, err := newMemberTable(servers, opts.Weights)
	if err != nil {
		return nil, fmt.Errorf("rendezvous: %w", err)
	}
	r := &Rendezvous{t: t, seed: opts.HashSeed}
	r.resalt()
	return r, nil
}

// resalt rebuilds the per-member score salts after a membership change.
func (r *Rendezvous) resalt() {
	r.salt = r.salt[:0]
	for _, id := range r.t.ids {
		r.salt = append(r.salt, rng.Mix64(r.seed^(uint64(id)*rendezvousSaltStep+rendezvousSaltTweak)))
	}
}

func (r *Rendezvous) Name() string { return StrategyRendezvous }

// LookupDigest implements DigestLookuper: one mix and one log per live
// member, no per-byte hashing, no allocation. Probes counts the live
// members scored.
func (r *Rendezvous) LookupDigest(d hashx.Digest) (ServerID, int) {
	best := -1
	var bestScore float64
	for _, idx := range r.t.liveIdx {
		h := rng.Mix64(uint64(d) ^ r.salt[idx])
		u := (float64(h>>11) + 0.5) * unitFrac53 // in (0, 1)
		score := -math.Log(u) / r.t.weight[idx]  // minimize: exp-weighted draw
		if best < 0 || score < bestScore {
			best, bestScore = idx, score
		}
	}
	if best < 0 {
		return NoServer, 0
	}
	return r.t.ids[best], len(r.t.liveIdx)
}

func (r *Rendezvous) Lookup(key string) (ServerID, bool) {
	id, _ := r.LookupDigest(hashx.Prehash(key))
	return id, id != NoServer
}

func (r *Rendezvous) LookupProbes(key string) (ServerID, int, bool) {
	id, probes := r.LookupDigest(hashx.Prehash(key))
	return id, probes, id != NoServer
}

func (r *Rendezvous) LookupBatch(keys []string, owners []ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("placement: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	resolved := 0
	for i, key := range keys {
		id, _ := r.LookupDigest(hashx.Prehash(key))
		owners[i] = id
		if id != NoServer {
			resolved++
		}
	}
	return resolved
}

// Tune applies failure handling only: a Failed report downs the member,
// a live report from a downed member re-admits it. Rendezvous carries
// a-priori capacity knowledge in its weights and never moves load from
// latency feedback — that contrast with ANU is the point.
func (r *Rendezvous) Tune(reports []Report) (bool, error) {
	return tuneFailuresOnly(r.t, "rendezvous", reports)
}

func (r *Rendezvous) AddServer(id ServerID) error {
	if err := r.t.add(id); err != nil {
		return err
	}
	r.resalt()
	return nil
}

func (r *Rendezvous) RemoveServer(id ServerID) error {
	if err := r.t.remove(id); err != nil {
		return err
	}
	r.resalt()
	return nil
}

func (r *Rendezvous) Fail(id ServerID) error    { return r.t.setFailed(id, true) }
func (r *Rendezvous) Recover(id ServerID) error { return r.t.setFailed(id, false) }

func (r *Rendezvous) Servers() []ServerID          { return r.t.servers() }
func (r *Rendezvous) Has(id ServerID) bool         { return r.t.has(id) }
func (r *Rendezvous) Shares() map[ServerID]float64 { return r.t.shares() }

// Weights implements Reweigher.
func (r *Rendezvous) Weights() map[ServerID]float64 { return r.t.weightsMap() }

// SetWeights implements Reweigher: listed servers take the new weight,
// absent servers keep theirs.
func (r *Rendezvous) SetWeights(weights map[ServerID]float64) error {
	_, err := r.t.setWeights(weights)
	return err
}

// The rendezvous payload inside the tagged container:
//
//	seed uint64
//	member table (see weights.go)
func (r *Rendezvous) Encode() []byte {
	buf := make([]byte, 0, 12+len(r.t.ids)*memberRecSize)
	buf = binary.LittleEndian.AppendUint64(buf, r.seed)
	buf = r.t.appendEncoded(buf)
	return EncodeTagged(StrategyRendezvous, buf)
}

func (r *Rendezvous) SharedStateSize() int { return len(r.Encode()) }

// CheckInvariants implements Invariants.
func (r *Rendezvous) CheckInvariants() error { return r.t.checkInvariants() }

func (r *Rendezvous) Clone() Strategy {
	return &Rendezvous{t: r.t.clone(), seed: r.seed, salt: append([]uint64(nil), r.salt...)}
}

func decodeRendezvous(data []byte, opts Options) (Strategy, error) {
	name, payload, err := DecodeTagged(data)
	if err != nil {
		return nil, err
	}
	if name != StrategyRendezvous {
		return nil, fmt.Errorf("rendezvous: tag %q, want %q", name, StrategyRendezvous)
	}
	if len(payload) < 8 {
		return nil, fmt.Errorf("rendezvous: payload truncated (%d bytes)", len(payload))
	}
	t, rest, err := decodeMemberTable(payload[8:])
	if err != nil {
		return nil, fmt.Errorf("rendezvous: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("rendezvous: %d trailing bytes", len(rest))
	}
	r := &Rendezvous{t: t, seed: binary.LittleEndian.Uint64(payload)}
	r.resalt()
	return r, nil
}

// tuneFailuresOnly is the shared Tune of the weight-aware strategies
// that take no latency feedback: Failed reports down members, live
// reports re-admit them, unknown members are an error (matching chord).
func tuneFailuresOnly(t *memberTable, name string, reports []Report) (bool, error) {
	changed := false
	for _, rep := range reports {
		i := t.index(rep.Server)
		if i < 0 {
			return changed, fmt.Errorf("%s: Tune: report for unknown server %d", name, rep.Server)
		}
		if rep.Failed != t.failed[i] {
			if err := t.setFailed(rep.Server, rep.Failed); err != nil {
				return changed, err
			}
			changed = true
		}
	}
	return changed, nil
}
