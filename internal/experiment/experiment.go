// Package experiment defines one parameterized, reproducible experiment
// per results figure in the paper's evaluation (Figures 4-8; Figures 1-3
// are architecture diagrams with no data). Each experiment builds its
// workload, runs the cluster simulation for the policies it compares,
// and returns structured results that cmd/paperfigs renders and
// bench_test.go regenerates.
package experiment

import (
	"errors"
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/clustersim"
	"anurand/internal/hashx"
	"anurand/internal/placement"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

// PolicyName enumerates the compared systems.
type PolicyName string

// The four systems of Section 5.1.
const (
	Simple    PolicyName = "simple"
	ANU       PolicyName = "anu"
	Prescient PolicyName = "prescient"
	VP        PolicyName = "vp"
)

// AllPolicies lists the four systems in the paper's presentation order.
var AllPolicies = []PolicyName{Simple, ANU, Prescient, VP}

// Policies returns every runnable policy name: the paper's four
// canonical systems followed by any additionally registered placement
// strategies, so a strategy added to the placement registry appears in
// every figure without touching this package. A registry tag that
// collides with a canonical name (e.g. "anu") resolves to the canonical
// system and is not listed twice.
func Policies() []PolicyName {
	out := append([]PolicyName(nil), AllPolicies...)
	seen := make(map[PolicyName]bool, len(out))
	for _, name := range out {
		seen[name] = true
	}
	for _, tag := range placement.Names() {
		if name := PolicyName(tag); !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// Config parameterizes a suite of experiments.
type Config struct {
	// Seed drives workload generation. The paper reports single runs;
	// use different seeds for replications.
	Seed uint64

	// HashSeed seeds the shared hash family.
	HashSeed uint64

	// DefaultVP is the virtual-processor count used when the VP system
	// appears in a multi-policy comparison (the paper's default v=5,
	// i.e. 25 VPs for 5 servers).
	DefaultVP int

	// Quick shrinks the workloads (~10x fewer requests, shorter
	// duration) so tests and benchmarks finish fast. Figure shapes are
	// preserved; absolute values shift.
	Quick bool

	// Workers bounds the experiment worker pool: how many policy×trace×
	// parameter cells simulate concurrently. 0 means GOMAXPROCS; 1 runs
	// the sequential path. Results are bit-identical for every value —
	// each cell is an independent deterministic simulation over a shared
	// read-only trace, and cells are assembled in a fixed order.
	Workers int
}

// DefaultConfig returns the paper's experiment configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, HashSeed: 42, DefaultVP: 25}
}

// Suite runs the figures over shared, lazily generated workloads, so a
// caller asking for Figures 5, 6 and 7 only pays for one simulation per
// policy.
type Suite struct {
	cfg       Config
	synthetic *workload.Trace
	dfslike   *workload.Trace
	hot       *workload.Trace
	fig5      map[PolicyName]*clustersim.Result
	fig4      map[PolicyName]*clustersim.Result
}

// NewSuite creates a suite.
func NewSuite(cfg Config) *Suite {
	if cfg.DefaultVP <= 0 {
		cfg.DefaultVP = 25
	}
	return &Suite{cfg: cfg}
}

// Synthetic returns the suite's synthetic trace (Figure 5 workload),
// generating it on first use.
func (s *Suite) Synthetic() (*workload.Trace, error) {
	if s.synthetic != nil {
		return s.synthetic, nil
	}
	wcfg := workload.DefaultSynthetic()
	wcfg.Seed = s.cfg.Seed
	if s.cfg.Quick {
		wcfg.Duration = 40 * 60
		wcfg.TargetRequests = 13000
		wcfg.NumFileSets = 50
	}
	tr, err := wcfg.Generate()
	if err != nil {
		return nil, err
	}
	s.synthetic = tr
	return tr, nil
}

// DFSLike returns the suite's DFSTrace-like trace (Figure 4 workload).
func (s *Suite) DFSLike() (*workload.Trace, error) {
	if s.dfslike != nil {
		return s.dfslike, nil
	}
	wcfg := workload.DefaultDFSLike()
	wcfg.Seed = s.cfg.Seed + 1
	if s.cfg.Quick {
		wcfg.Duration = 1200
		wcfg.TargetRequests = 20000
	}
	tr, err := wcfg.Generate()
	if err != nil {
		return nil, err
	}
	s.dfslike = tr
	return tr, nil
}

// HotSynthetic returns the Figure 8 workload: the synthetic workload
// with the demand scale c tuned hotter (~80% cluster utilization). At
// the Figure 5 operating point the cluster has enough headroom that
// even five coarse chunks pack without queueing damage; the paper's
// Figure 8 granularity effect — few virtual processors balance poorly —
// only resolves when capacity is tight.
func (s *Suite) HotSynthetic() (*workload.Trace, error) {
	if s.hot != nil {
		return s.hot, nil
	}
	wcfg := workload.DefaultSynthetic()
	wcfg.Seed = s.cfg.Seed
	wcfg.BaseDemand = 3.6
	if s.cfg.Quick {
		wcfg.Duration = 40 * 60
		wcfg.TargetRequests = 13000
	}
	tr, err := wcfg.Generate()
	if err != nil {
		return nil, err
	}
	s.hot = tr
	return tr, nil
}

// Servers returns the paper's five-server heterogeneous cluster ids.
func Servers() []policy.ServerID { return []policy.ServerID{0, 1, 2, 3, 4} }

// Speeds returns the paper's capacity factors.
func Speeds() []float64 { return []float64{1, 3, 5, 7, 9} }

// SpeedWeights returns the paper's capacity factors keyed by server id —
// the a-priori knowledge handed to weight-aware strategies (rendezvous,
// weighted-static, power-of-d) through placement.Options.Weights.
func SpeedWeights() map[policy.ServerID]float64 {
	servers, speeds := Servers(), Speeds()
	weights := make(map[policy.ServerID]float64, len(servers))
	for i, id := range servers {
		weights[id] = speeds[i]
	}
	return weights
}

// BuildPolicy constructs one of the compared systems over a trace. The
// four canonical names build the paper's policies; any other name is
// resolved through the placement-strategy registry, so a registered
// strategy ("chord", "chord-bounded", ...) is measurable without
// touching this switch. Every path reuses the trace's memoized KeySet:
// file-set names are hashed once per trace, not once per cell.
func (s *Suite) BuildPolicy(name PolicyName, trace *workload.Trace, numVP int) (policy.Placer, error) {
	family := hashx.NewFamily(s.cfg.HashSeed)
	keys := trace.Keys()
	switch name {
	case Simple:
		return policy.NewSimpleKeys(family, keys, Servers())
	case ANU:
		return policy.NewANUKeys(family, keys, Servers(), anu.DefaultControllerConfig())
	case Prescient:
		return policy.NewPrescient(trace.FileSets)
	case VP:
		return policy.NewVirtualProcessorKeys(family, keys, numVP)
	}
	for _, tag := range placement.Names() {
		if tag == string(name) {
			return policy.NewStrategyPlacerKeys(tag, keys, Servers(), placement.Options{
				HashSeed: s.cfg.HashSeed,
				Weights:  SpeedWeights(),
			})
		}
	}
	return nil, fmt.Errorf("experiment: unknown policy %q", name)
}

// runPolicies simulates the trace under each policy, fanning cells
// across the suite's worker pool. Failures do not abort the sweep: the
// map carries every cell that succeeded and the error joins every cell
// that did not, so one broken policy cannot hide the others' figures.
func (s *Suite) runPolicies(trace *workload.Trace, names []PolicyName) (map[PolicyName]*clustersim.Result, error) {
	results := make([]*clustersim.Result, len(names))
	errs := make([]error, len(names))
	s.forEachCell(len(names), func(i int, sc *clustersim.Scratch) {
		placer, err := s.BuildPolicy(names[i], trace, s.cfg.DefaultVP)
		if err != nil {
			errs[i] = err
			return
		}
		cfg := clustersim.DefaultConfig(trace, placer)
		cfg.Scratch = sc
		res, err := clustersim.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiment: %s: %w", names[i], err)
			return
		}
		results[i] = res
	})
	out := make(map[PolicyName]*clustersim.Result, len(names))
	for i, name := range names {
		if results[i] != nil {
			out[name] = results[i]
		}
	}
	return out, errors.Join(errs...)
}

// Fig4 reproduces Figure 4: per-server latency over time under the
// DFSTrace-like workload for all four systems.
func (s *Suite) Fig4() (map[PolicyName]*clustersim.Result, error) {
	if s.fig4 != nil {
		return s.fig4, nil
	}
	trace, err := s.DFSLike()
	if err != nil {
		return nil, err
	}
	res, err := s.runPolicies(trace, AllPolicies)
	if err != nil {
		return res, err
	}
	s.fig4 = res
	return res, nil
}

// Fig5 reproduces Figure 5: per-server latency over time under the
// synthetic workload for all four systems.
func (s *Suite) Fig5() (map[PolicyName]*clustersim.Result, error) {
	if s.fig5 != nil {
		return s.fig5, nil
	}
	trace, err := s.Synthetic()
	if err != nil {
		return nil, err
	}
	res, err := s.runPolicies(trace, AllPolicies)
	if err != nil {
		return res, err
	}
	s.fig5 = res
	return res, nil
}

// Fig6Row is one system's aggregate entry (Figure 6a) plus its
// per-server means (Figure 6b). The quantiles come from the run's
// latency histogram: the paper's consistency claim is about the
// distribution, so the table carries the tail alongside the mean.
type Fig6Row struct {
	Policy         PolicyName
	MeanLatency    float64
	StdDev         float64
	P50            float64
	P95            float64
	P99            float64
	P999           float64
	PerServerMean  map[policy.ServerID]float64
	PerServerCount map[policy.ServerID]uint64
}

// Fig6 reproduces Figure 6: aggregate mean latency with standard
// deviation (a) and per-server mean latency (b), for ANU, prescient and
// VP (the paper omits simple randomization here; it is included as
// context).
func (s *Suite) Fig6() ([]Fig6Row, error) {
	results, err := s.Fig5()
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, 0, len(AllPolicies))
	for _, name := range AllPolicies {
		res := results[name]
		row := Fig6Row{
			Policy:         name,
			MeanLatency:    res.MeanLatency(),
			StdDev:         res.LatencyStdDev(),
			P50:            res.LatencyP50(),
			P95:            res.LatencyP95(),
			P99:            res.LatencyP99(),
			P999:           res.LatencyP999(),
			PerServerMean:  res.PerServerMeans(),
			PerServerCount: make(map[policy.ServerID]uint64),
		}
		for id, st := range res.Servers {
			row.PerServerCount[id] = st.Latency.N()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7 reproduces Figure 7: ANU's per-round file-set movement and the
// cumulative percentage of workload moved over the synthetic run.
func (s *Suite) Fig7() ([]clustersim.MoveRecord, error) {
	results, err := s.Fig5()
	if err != nil {
		return nil, err
	}
	return results[ANU].Moves, nil
}

// ExtHotspot is the repository's extension experiment beyond the
// paper's figures: the four systems under a non-stationary hotspot
// workload (workload.HotspotConfig), where the hot file sets rotate
// every 25 minutes. It exercises the adaptivity claim of Section 3:
// feedback-driven ANU re-balances after every shift, while policies
// that assign from long-run average loads (the evaluation's
// perfect-knowledge model) cannot follow the hot set.
func (s *Suite) ExtHotspot() (map[PolicyName]*clustersim.Result, error) {
	wcfg := workload.DefaultHotspot()
	wcfg.Seed = s.cfg.Seed + 2
	if s.cfg.Quick {
		wcfg.Duration = 50 * 60
		wcfg.TargetRequests = 16000
		wcfg.ShiftEvery = 10 * 60
	}
	trace, err := wcfg.Generate()
	if err != nil {
		return nil, err
	}
	return s.runPolicies(trace, AllPolicies)
}

// ExtSAN quantifies the paper's Section 3 motivation: an imbalanced
// metadata tier leaves the shared-disk SAN underutilized, because
// clients blocked on metadata cannot issue their data transfers. It
// runs the synthetic workload with the data path enabled and reports
// each system's in-window SAN utilization and client end-to-end
// latency.
func (s *Suite) ExtSAN() (map[PolicyName]*clustersim.Result, error) {
	trace, err := s.Synthetic()
	if err != nil {
		return nil, err
	}
	results := make([]*clustersim.Result, len(AllPolicies))
	errs := make([]error, len(AllPolicies))
	s.forEachCell(len(AllPolicies), func(i int, sc *clustersim.Scratch) {
		placer, err := s.BuildPolicy(AllPolicies[i], trace, s.cfg.DefaultVP)
		if err != nil {
			errs[i] = err
			return
		}
		cfg := clustersim.DefaultConfig(trace, placer)
		cfg.Scratch = sc
		cfg.SAN = clustersim.SANConfig{Enabled: true, Disks: 16, TransferDemand: 1.5}
		res, err := clustersim.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiment: san %s: %w", AllPolicies[i], err)
			return
		}
		results[i] = res
	})
	out := make(map[PolicyName]*clustersim.Result, len(AllPolicies))
	for i, name := range AllPolicies {
		if results[i] != nil {
			out[name] = results[i]
		}
	}
	return out, errors.Join(errs...)
}

// StrategyComparison runs every runnable policy — the paper's four
// systems plus each additional registered placement strategy — over the
// synthetic workload. It is the registry-driven figure: a strategy added
// to the placement registry shows up here with no experiment changes.
// Like runPolicies, it returns whatever cells succeeded alongside a
// joined error for those that did not.
func (s *Suite) StrategyComparison() (map[PolicyName]*clustersim.Result, error) {
	trace, err := s.Synthetic()
	if err != nil {
		return nil, err
	}
	return s.runPolicies(trace, Policies())
}

// Fig8Point is one VP-count sample of Figure 8, with the reference
// systems' latencies and everyone's shared-state size.
type Fig8Point struct {
	NumVP            int
	MeanLatency      float64
	SteadyLatency    float64
	StdDev           float64
	SharedStateBytes int
}

// Fig8Refs holds the ANU and prescient reference measurements for one
// operating point. Steady latencies exclude the first quarter of the
// run, separating converged behaviour from adaptation transients
// (relevant for ANU, which starts with no knowledge and pays to learn).
type Fig8Refs struct {
	ANULatency       float64
	ANUSteady        float64
	ANUSharedState   int
	PrescientLatency float64
	PrescientSteady  float64
	PrescientState   int
	ANUCrossoverAt   int // smallest VP count whose steady latency <= ANU's
}

// Fig8Result carries the VP sweep at two operating points: the paper's
// synthetic workload (Moderate, ~71% utilization) and a hotter variant
// (Hot, ~80%) where the granularity effect — few virtual processors
// balance poorly — resolves clearly. See HotSynthetic.
type Fig8Result struct {
	Moderate     []Fig8Point
	ModerateRefs Fig8Refs
	Hot          []Fig8Point
	HotRefs      Fig8Refs
}

// Fig8 reproduces Figure 8: the virtual-processor system's latency as
// the VP count sweeps from one per server to one per file set, against
// the ANU and prescient references, plus the shared-state cost.
func (s *Suite) Fig8(counts []int) (*Fig8Result, error) {
	if len(counts) == 0 {
		counts = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	out := &Fig8Result{}
	moderate, err := s.Synthetic()
	if err != nil {
		return nil, err
	}
	if out.Moderate, out.ModerateRefs, err = s.fig8Sweep(moderate, counts); err != nil {
		return nil, err
	}
	hot, err := s.HotSynthetic()
	if err != nil {
		return nil, err
	}
	if out.Hot, out.HotRefs, err = s.fig8Sweep(hot, counts); err != nil {
		return nil, err
	}
	return out, nil
}

// fig8Sweep runs the VP sweep plus references on one trace. The two
// reference runs and every VP count are independent cells, so the whole
// sweep fans out over the worker pool; refs and points are assembled in
// the sequential order afterwards.
func (s *Suite) fig8Sweep(trace *workload.Trace, counts []int) ([]Fig8Point, Fig8Refs, error) {
	type cell struct {
		name  PolicyName
		numVP int
	}
	cells := make([]cell, 0, len(counts)+2)
	cells = append(cells, cell{ANU, 0}, cell{Prescient, 0})
	for _, n := range counts {
		cells = append(cells, cell{VP, n})
	}
	results := make([]*clustersim.Result, len(cells))
	errs := make([]error, len(cells))
	s.forEachCell(len(cells), func(i int, sc *clustersim.Scratch) {
		placer, err := s.BuildPolicy(cells[i].name, trace, cells[i].numVP)
		if err != nil {
			errs[i] = err
			return
		}
		cfg := clustersim.DefaultConfig(trace, placer)
		cfg.Scratch = sc
		res, err := clustersim.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiment: fig8 %s: %w", cells[i].name, err)
			return
		}
		results[i] = res
	})
	if err := errors.Join(errs...); err != nil {
		return nil, Fig8Refs{}, err
	}
	anuRes, prescientRes := results[0], results[1]
	refs := Fig8Refs{
		ANULatency:       anuRes.MeanLatency(),
		ANUSteady:        anuRes.SteadyMeanLatency(),
		ANUSharedState:   anuRes.SharedStateBytes,
		PrescientLatency: prescientRes.MeanLatency(),
		PrescientSteady:  prescientRes.SteadyMeanLatency(),
		PrescientState:   prescientRes.SharedStateBytes,
		ANUCrossoverAt:   -1,
	}
	var points []Fig8Point
	for i, n := range counts {
		res := results[2+i]
		pt := Fig8Point{
			NumVP:            n,
			MeanLatency:      res.MeanLatency(),
			SteadyLatency:    res.SteadyMeanLatency(),
			StdDev:           res.LatencyStdDev(),
			SharedStateBytes: res.SharedStateBytes,
		}
		points = append(points, pt)
		if refs.ANUCrossoverAt < 0 && pt.SteadyLatency <= refs.ANUSteady {
			refs.ANUCrossoverAt = n
		}
	}
	return points, refs, nil
}
