package experiment

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestParallelMatchesSequential is the determinism regression the
// parallel engine is held to: for a fixed seed, fanning cells across
// workers must produce bit-identical Result values to the sequential
// path. Each cell is an independent deterministic simulation over a
// shared read-only trace, and assembly order is fixed, so any
// divergence here means shared mutable state leaked between cells.
func TestParallelMatchesSequential(t *testing.T) {
	seqCfg := DefaultConfig()
	seqCfg.Quick = true
	seqCfg.Workers = 1
	parCfg := seqCfg
	parCfg.Workers = 4

	seq, err := NewSuite(seqCfg).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSuite(parCfg).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential ran %d policies, parallel %d", len(seq), len(par))
	}
	for name, want := range seq {
		got := par[name]
		if got == nil {
			t.Fatalf("parallel run missing policy %s", name)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("policy %s: parallel result differs from sequential", name)
		}
	}
}

// TestReplicateParallelMatchesSequential extends the determinism check
// across the seed fan-out: per-seed suites run concurrently, but the
// across-seed summaries must come out bit-identical.
func TestReplicateParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Workers = 1
	seq, err := ReplicateFig5(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := ReplicateFig5(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel replication differs from sequential")
	}
}

// TestRunPoliciesPartialResults pins the failure contract: a bad cell
// contributes an error but does not abort the sweep — every other
// policy's result is still returned alongside the joined error.
func TestRunPoliciesPartialResults(t *testing.T) {
	s := quickSuite()
	trace, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	names := []PolicyName{ANU, "bogus-a", Prescient, "bogus-b"}
	out, err := s.runPolicies(trace, names)
	if err == nil {
		t.Fatal("runPolicies with unknown policies returned nil error")
	}
	for _, bad := range []string{"bogus-a", "bogus-b"} {
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("joined error %q does not mention %s", err, bad)
		}
	}
	if len(out) != 2 || out[ANU] == nil || out[Prescient] == nil {
		t.Fatalf("partial results lost: got %d entries, want anu and prescient", len(out))
	}
	// errors.Join must yield each cell error individually.
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error %T does not unwrap to a join", err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Errorf("joined %d errors, want 2", n)
	}
}

// TestPoliciesIncludesRegistry checks the registry-driven enumeration:
// the canonical four lead in paper order, every additionally registered
// strategy follows, and nothing appears twice.
func TestPoliciesIncludesRegistry(t *testing.T) {
	names := Policies()
	if len(names) < len(AllPolicies) {
		t.Fatalf("Policies() = %v, shorter than the canonical four", names)
	}
	for i, want := range AllPolicies {
		if names[i] != want {
			t.Fatalf("Policies()[%d] = %s, want %s", i, names[i], want)
		}
	}
	seen := make(map[PolicyName]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("Policies() lists %s twice", n)
		}
		seen[n] = true
	}
	for _, tag := range []PolicyName{"chord", "chord-bounded"} {
		if !seen[tag] {
			t.Errorf("Policies() missing registered strategy %s", tag)
		}
	}
}

// TestBuildPolicyRegistryFallthrough checks that a registry tag builds a
// working placer through the strategy adapter.
func TestBuildPolicyRegistryFallthrough(t *testing.T) {
	s := quickSuite()
	trace, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []PolicyName{"chord", "chord-bounded"} {
		p, err := s.BuildPolicy(tag, trace, 0)
		if err != nil {
			t.Fatalf("BuildPolicy(%s): %v", tag, err)
		}
		if p.Name() != string(tag) {
			t.Errorf("policy %s reports name %q", tag, p.Name())
		}
		if id := p.Place(0); id < 0 || int(id) >= len(Servers()) {
			t.Errorf("%s.Place(0) = %d, outside the server set", tag, id)
		}
	}
}
