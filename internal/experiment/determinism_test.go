package experiment

import (
	"runtime"
	"testing"

	"anurand/internal/clustersim"
)

// fig5Digests pins the bit-exact outcome of the Quick Figure-5 cell for
// every registered strategy, recorded before the allocation-lean engine
// rework (pooled events, typed callbacks, 4-ary calendar, dense server
// state). The digest covers EventsRun, every counter, bit-level float
// statistics, the per-server breakdown and the movement log — see
// Result.DeterminismDigest. If an engine change shifts any of it by one
// ULP, this test names the strategy that diverged.
//
// The goldens are amd64 values; other architectures may legally differ
// in float rounding (fused multiply-add), so the comparison is gated on
// GOARCH while the double-run determinism check always applies.
var fig5Digests = map[PolicyName]string{
	Simple:            "9e86a940d286609e",
	ANU:               "5afe09b52a3aa7f3",
	Prescient:         "d2092b9c5dadde10",
	VP:                "2d03a691768e5268",
	"chord":           "3238b63a7c1e38cd",
	"chord-bounded":   "89ff43d064eef4d0",
	"power-of-d":      "3195b7868879142e",
	"rendezvous":      "183a116250208076",
	"weighted-static": "fa66453f5c8ec073",
}

// sweepDigests runs the Quick synthetic trace under every runnable
// policy sequentially and returns each cell's digest.
func sweepDigests(t *testing.T) map[PolicyName]string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Workers = 1
	s := NewSuite(cfg)
	trace, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[PolicyName]string)
	for _, name := range Policies() {
		placer, err := s.BuildPolicy(name, trace, cfg.DefaultVP)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := clustersim.Run(clustersim.DefaultConfig(trace, placer))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.EventsRun == 0 {
			t.Fatalf("%s: EventsRun = 0, engine counter not threaded", name)
		}
		out[name] = res.DeterminismDigest()
	}
	return out
}

// TestStrategySweepDigestGoldens proves the optimized engine is
// bit-identical to the pre-optimization engine for every registered
// strategy.
func TestStrategySweepDigestGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure cell per strategy")
	}
	got := sweepDigests(t)
	for name, digest := range got {
		want, ok := fig5Digests[name]
		if !ok {
			t.Errorf("strategy %q has no pinned digest; add %q", name, digest)
			continue
		}
		if runtime.GOARCH != "amd64" {
			continue // goldens are amd64 float roundings
		}
		if digest != want {
			t.Errorf("strategy %q digest = %s, want %s (results diverged from the pre-optimization engine)", name, digest, want)
		}
	}
	for name := range fig5Digests {
		if _, ok := got[name]; !ok {
			t.Errorf("pinned strategy %q is no longer registered", name)
		}
	}
}

// TestStrategySweepDigestStable reruns the sweep and demands identical
// digests — pure replay determinism, architecture-independent.
func TestStrategySweepDigestStable(t *testing.T) {
	if testing.Short() {
		t.Skip("two full figure cells per strategy")
	}
	a, b := sweepDigests(t), sweepDigests(t)
	for name, d := range a {
		if b[name] != d {
			t.Errorf("strategy %q: digests differ between identical runs: %s vs %s", name, d, b[name])
		}
	}
}
