package experiment

import (
	"errors"
	"fmt"

	"anurand/internal/clustersim"
	"anurand/internal/metrics"
)

// Replication aggregates a figure's headline metric across independent
// workload seeds. The paper reports single simulation runs; replication
// quantifies how stable each system's result is under fresh draws of
// the same workload distribution — essential when the arrival process
// is heavy-tailed.
type Replication struct {
	// Policy names the system.
	Policy PolicyName
	// MeanLatency summarizes the per-seed aggregate mean latencies.
	MeanLatency metrics.Summary
	// SteadyLatency summarizes the per-seed steady-state means.
	SteadyLatency metrics.Summary
	// Moved summarizes the per-seed total file-set moves.
	Moved metrics.Summary
}

// ReplicateFig5 runs the Figure 5 comparison across n seeds (seed,
// seed+1, …) and returns one aggregated row per system. Each seed runs
// a fresh suite so every workload draw is independent.
func ReplicateFig5(base Config, n int) ([]Replication, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: ReplicateFig5: n=%d", n)
	}
	// Seeds fan out across one shared pool; with more than one seed in
	// flight each per-seed suite runs its own cells sequentially so the
	// machine is not oversubscribed. Summaries aggregate in seed order
	// afterwards, keeping the output bit-identical to a sequential run.
	pool := NewSuite(base)
	perSeed := make([]map[PolicyName]*clustersim.Result, n)
	errs := make([]error, n)
	// Each cell is a whole nested suite, which provisions its own
	// per-worker scratch inside its runPolicies fan-out; the pool-level
	// scratch goes unused here.
	pool.forEachCell(n, func(i int, _ *clustersim.Scratch) {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)
		if n > 1 {
			cfg.Workers = 1
		}
		results, err := NewSuite(cfg).Fig5()
		if err != nil {
			errs[i] = fmt.Errorf("experiment: replicate seed %d: %w", cfg.Seed, err)
			return
		}
		perSeed[i] = results
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	rows := make(map[PolicyName]*Replication, len(AllPolicies))
	for _, name := range AllPolicies {
		rows[name] = &Replication{Policy: name}
	}
	for _, results := range perSeed {
		for name, res := range results {
			row := rows[name]
			row.MeanLatency.Add(res.MeanLatency())
			row.SteadyLatency.Add(res.SteadyMeanLatency())
			row.Moved.Add(float64(res.TotalMoved))
		}
	}
	out := make([]Replication, 0, len(AllPolicies))
	for _, name := range AllPolicies {
		out = append(out, *rows[name])
	}
	return out, nil
}
