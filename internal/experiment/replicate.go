package experiment

import (
	"fmt"

	"anurand/internal/metrics"
)

// Replication aggregates a figure's headline metric across independent
// workload seeds. The paper reports single simulation runs; replication
// quantifies how stable each system's result is under fresh draws of
// the same workload distribution — essential when the arrival process
// is heavy-tailed.
type Replication struct {
	// Policy names the system.
	Policy PolicyName
	// MeanLatency summarizes the per-seed aggregate mean latencies.
	MeanLatency metrics.Summary
	// SteadyLatency summarizes the per-seed steady-state means.
	SteadyLatency metrics.Summary
	// Moved summarizes the per-seed total file-set moves.
	Moved metrics.Summary
}

// ReplicateFig5 runs the Figure 5 comparison across n seeds (seed,
// seed+1, …) and returns one aggregated row per system. Each seed runs
// a fresh suite so every workload draw is independent.
func ReplicateFig5(base Config, n int) ([]Replication, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: ReplicateFig5: n=%d", n)
	}
	rows := make(map[PolicyName]*Replication, len(AllPolicies))
	for _, name := range AllPolicies {
		rows[name] = &Replication{Policy: name}
	}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)
		suite := NewSuite(cfg)
		results, err := suite.Fig5()
		if err != nil {
			return nil, fmt.Errorf("experiment: replicate seed %d: %w", cfg.Seed, err)
		}
		for name, res := range results {
			row := rows[name]
			row.MeanLatency.Add(res.MeanLatency())
			row.SteadyLatency.Add(res.SteadyMeanLatency())
			row.Moved.Add(float64(res.TotalMoved))
		}
	}
	out := make([]Replication, 0, len(AllPolicies))
	for _, name := range AllPolicies {
		out = append(out, *rows[name])
	}
	return out, nil
}
