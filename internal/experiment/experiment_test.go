package experiment

import (
	"testing"

	"anurand/internal/policy"
)

func quickSuite() *Suite {
	cfg := DefaultConfig()
	cfg.Quick = true
	return NewSuite(cfg)
}

func TestSyntheticTraceCached(t *testing.T) {
	s := quickSuite()
	a, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("synthetic trace regenerated instead of cached")
	}
}

func TestBuildPolicyAllNames(t *testing.T) {
	s := quickSuite()
	tr, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AllPolicies {
		p, err := s.BuildPolicy(name, tr, 25)
		if err != nil {
			t.Fatalf("BuildPolicy(%s): %v", name, err)
		}
		if p.Name() != string(name) {
			t.Errorf("policy %s reports name %q", name, p.Name())
		}
	}
	if _, err := s.BuildPolicy("bogus", tr, 25); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestFig5ShapesHold(t *testing.T) {
	s := quickSuite()
	results, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("Fig5 returned %d results", len(results))
	}
	simple := results[Simple].MeanLatency()
	anuLat := results[ANU].MeanLatency()
	presc := results[Prescient].MeanLatency()
	vp := results[VP].MeanLatency()
	// Paper shape: prescient is the lower envelope; ANU close; simple
	// far worse.
	if !(presc <= anuLat) {
		t.Errorf("prescient %.3f not <= anu %.3f", presc, anuLat)
	}
	if !(presc <= vp*1.5) {
		t.Errorf("vp %.3f implausibly better than prescient %.3f", vp, presc)
	}
	if !(simple > 5*anuLat) {
		t.Errorf("simple %.3f not far above anu %.3f", simple, anuLat)
	}
	// Caching: a second call returns the identical map.
	again, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if again[ANU] != results[ANU] {
		t.Error("Fig5 re-ran instead of caching")
	}
}

func TestFig4ShapesHold(t *testing.T) {
	s := quickSuite()
	results, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	simple := results[Simple].MeanLatency()
	anuLat := results[ANU].MeanLatency()
	presc := results[Prescient].MeanLatency()
	if !(presc <= anuLat) {
		t.Errorf("prescient %.3f not <= anu %.3f on dfslike", presc, anuLat)
	}
	if !(simple > 2*anuLat) {
		t.Errorf("simple %.3f not far above anu %.3f on dfslike", simple, anuLat)
	}
}

func TestFig6RowsConsistent(t *testing.T) {
	s := quickSuite()
	rows, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Fig6 returned %d rows", len(rows))
	}
	for _, row := range rows {
		if row.MeanLatency <= 0 {
			t.Errorf("%s: non-positive mean", row.Policy)
		}
		if len(row.PerServerMean) != 5 {
			t.Errorf("%s: %d per-server means", row.Policy, len(row.PerServerMean))
		}
	}
	// ANU consistency claim (Figure 6b): non-idle servers other than
	// the weakest show similar means.
	for _, row := range rows {
		if row.Policy != ANU {
			continue
		}
		lo, hi := 0.0, 0.0
		first := true
		for id, m := range row.PerServerMean {
			if id == 0 || row.PerServerCount[id] < 200 {
				continue // the paper excludes the near-idle weakest server
			}
			if first {
				lo, hi = m, m
				first = false
				continue
			}
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if first {
			t.Fatal("no qualifying servers for consistency check")
		}
		if hi/lo > 4 {
			t.Errorf("ANU per-server means spread %.2fx, want consistent", hi/lo)
		}
	}
}

func TestFig7MovementFrontLoaded(t *testing.T) {
	s := quickSuite()
	moves, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no movement records")
	}
	total := 0
	for _, m := range moves {
		total += m.FileSetsMoved
	}
	if total == 0 {
		t.Fatal("ANU moved nothing")
	}
	third := len(moves) / 3
	early, late := 0, 0
	for i, m := range moves {
		if i < third {
			early += m.FileSetsMoved
		}
		if i >= 2*third {
			late += m.FileSetsMoved
		}
	}
	if early <= late {
		t.Errorf("movement not front-loaded: early %d vs late %d", early, late)
	}
}

func TestFig8SweepShapes(t *testing.T) {
	s := quickSuite()
	res, err := s.Fig8([]int{5, 25, 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range []struct {
		label  string
		points []Fig8Point
		refs   Fig8Refs
	}{
		{"moderate", res.Moderate, res.ModerateRefs},
		{"hot", res.Hot, res.HotRefs},
	} {
		if len(sweep.points) != 3 {
			t.Fatalf("%s: %d points", sweep.label, len(sweep.points))
		}
		// Shared state grows linearly with VP count while ANU's is O(k).
		if sweep.points[0].SharedStateBytes >= sweep.points[2].SharedStateBytes {
			t.Errorf("%s: VP shared state did not grow with VP count", sweep.label)
		}
		if sweep.refs.ANUSharedState >= sweep.points[2].SharedStateBytes {
			t.Errorf("%s: ANU state %d not below VP(50) state %d",
				sweep.label, sweep.refs.ANUSharedState, sweep.points[2].SharedStateBytes)
		}
		// Latency: the finest sweep point should be within noise of
		// prescient, and no point should beat prescient wildly.
		last := sweep.points[len(sweep.points)-1]
		if last.MeanLatency > sweep.refs.PrescientLatency*2.5 {
			t.Errorf("%s: VP(50) latency %.3f far above prescient %.3f",
				sweep.label, last.MeanLatency, sweep.refs.PrescientLatency)
		}
		for _, pt := range sweep.points {
			if pt.MeanLatency <= 0 {
				t.Errorf("%s: VP(%d): non-positive latency", sweep.label, pt.NumVP)
			}
		}
	}
}

func TestServersAndSpeeds(t *testing.T) {
	if len(Servers()) != 5 || len(Speeds()) != 5 {
		t.Fatal("paper cluster is five servers")
	}
	want := []float64{1, 3, 5, 7, 9}
	for i, sp := range Speeds() {
		if sp != want[i] {
			t.Fatalf("Speeds() = %v", Speeds())
		}
	}
	for i, id := range Servers() {
		if id != policy.ServerID(i) {
			t.Fatalf("Servers() = %v", Servers())
		}
	}
}

func TestExtHotspotRuns(t *testing.T) {
	s := quickSuite()
	results, err := s.ExtHotspot()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("hotspot returned %d results", len(results))
	}
	simple := results[Simple].MeanLatency()
	anuLat := results[ANU].MeanLatency()
	if !(simple > 3*anuLat) {
		t.Errorf("simple %.3f not far above anu %.3f on hotspots", simple, anuLat)
	}
	// ANU must actually move load to follow the shifts.
	if results[ANU].TotalMoved == 0 {
		t.Error("ANU never moved under a rotating hotspot")
	}
}

func TestExtSANShapes(t *testing.T) {
	s := quickSuite()
	results, err := s.ExtSAN()
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range results {
		if res.SAN == nil {
			t.Fatalf("%s: SAN stats missing", name)
		}
		if res.SAN.EndToEnd.Mean() <= res.MeanLatency() {
			t.Errorf("%s: end-to-end not above metadata-only", name)
		}
	}
	// The motivating claim: simple randomization underutilizes the SAN
	// relative to the balanced systems.
	if results[Simple].SAN.UtilizationInWindow >= results[ANU].SAN.UtilizationInWindow {
		t.Errorf("simple SAN utilization %.4f not below ANU's %.4f",
			results[Simple].SAN.UtilizationInWindow, results[ANU].SAN.UtilizationInWindow)
	}
}

func TestReplicateFig5(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	rows, err := ReplicateFig5(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[PolicyName]Replication{}
	for _, r := range rows {
		if r.MeanLatency.N() != 3 {
			t.Fatalf("%s: %d replicates, want 3", r.Policy, r.MeanLatency.N())
		}
		byName[r.Policy] = r
	}
	// The ordering must hold in the across-seed means too.
	if !(byName[Prescient].MeanLatency.Mean() <= byName[ANU].MeanLatency.Mean()) {
		t.Errorf("prescient mean-of-means %.3f above ANU's %.3f",
			byName[Prescient].MeanLatency.Mean(), byName[ANU].MeanLatency.Mean())
	}
	if !(byName[Simple].MeanLatency.Mean() > 5*byName[ANU].MeanLatency.Mean()) {
		t.Errorf("simple mean-of-means %.3f not far above ANU's %.3f",
			byName[Simple].MeanLatency.Mean(), byName[ANU].MeanLatency.Mean())
	}
	if byName[ANU].Moved.Mean() == 0 {
		t.Error("ANU never moved in any replicate")
	}
	if _, err := ReplicateFig5(cfg, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestNewSuiteDefaultsVP(t *testing.T) {
	s := NewSuite(Config{Seed: 1, HashSeed: 1})
	if s.cfg.DefaultVP != 25 {
		t.Fatalf("DefaultVP = %d, want the paper's 25", s.cfg.DefaultVP)
	}
}

func TestFigCachesAreIndependent(t *testing.T) {
	s := quickSuite()
	a, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if a[ANU] != b[ANU] {
		t.Fatal("Fig4 re-ran instead of caching")
	}
	hot1, err := s.HotSynthetic()
	if err != nil {
		t.Fatal(err)
	}
	hot2, err := s.HotSynthetic()
	if err != nil {
		t.Fatal(err)
	}
	if hot1 != hot2 {
		t.Fatal("hot trace regenerated instead of cached")
	}
	mod, err := s.Synthetic()
	if err != nil {
		t.Fatal(err)
	}
	if mod == hot1 {
		t.Fatal("hot and moderate traces alias")
	}
}
