package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"anurand/internal/clustersim"
)

// workers resolves Config.Workers: 0 means one worker per logical CPU,
// anything below 1 after that clamps to the sequential path.
func (s *Suite) workers() int {
	w := s.cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachCell runs f(0..n-1) across the suite's worker pool. It is the
// one scheduling primitive every figure shares: cells are claimed from
// an atomic counter (cheap work stealing — simulation cells have very
// uneven costs), and f must write its output to the per-index slot it
// owns. Because each cell is an independent deterministic simulation
// and the caller assembles slots in index order, the results are
// bit-identical for every worker count; only wall-clock time changes.
//
// Each worker owns one clustersim.Scratch for its whole lifetime and
// hands it to every cell it claims, so the simulator's steady-state
// memory (event pool, job pool, calendar) is allocated once per worker
// rather than once per cell. The scratch is private to the worker —
// never shared across goroutines — which is exactly the ownership rule
// Scratch demands.
//
// With one worker (or one cell) it runs inline on the caller's
// goroutine — the sequential path has no pool overhead at all.
func (s *Suite) forEachCell(n int, f func(i int, sc *clustersim.Scratch)) {
	w := s.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		sc := new(clustersim.Scratch)
		for i := 0; i < n; i++ {
			f(i, sc)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			sc := new(clustersim.Scratch)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i, sc)
			}
		}()
	}
	wg.Wait()
}
