package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("policy", "mean", "moved")
	tb.AddRow("simple", "1326.52", "0")
	tb.AddRow("anu", "3.08", "297")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing rule: %q", lines[1])
	}
	if !strings.Contains(out, "1326.52") || !strings.Contains(out, "anu") {
		t.Errorf("missing cells:\n%s", out)
	}
}

func TestTablePadsAndTruncates(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra-dropped")
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "extra-dropped") {
		t.Error("over-long row not truncated")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("name", "value", "count")
	tb.AddRowf("x", 3.14159, 42)
	tb.AddRowf("gap", math.NaN(), 0)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3.142") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("NaN not rendered as dash: %s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "hello, world")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"hello, world\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestChartRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "latency",
		XLabel: "minute",
		XStep:  2,
		Series: []Series{
			{Name: "anu", Values: []float64{5, 4, 3, 2, 1, 1, 1}},
			{Name: "simple", Values: []float64{1, 2, 3, 4, 5, 6, 7}},
		},
		Height: 8,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "latency") || !strings.Contains(out, "*=anu") {
		t.Fatalf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "minute") {
		t.Fatalf("missing x label:\n%s", out)
	}
	if countPlotMarks(out, '*') < 5 {
		t.Fatalf("series marks missing:\n%s", out)
	}
}

// countPlotMarks counts mark occurrences in the plot area, skipping the
// legend line (which repeats each mark once).
func countPlotMarks(out string, mark rune) int {
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "=") { // legend line
			continue
		}
		n += strings.Count(line, string(mark))
	}
	return n
}

func TestChartHandlesNaNGaps(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "s", Values: []float64{1, math.NaN(), 3}}},
		Height: 4,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if countPlotMarks(buf.String(), '*') != 2 {
		t.Fatalf("NaN plotted:\n%s", buf.String())
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatalf("empty chart output: %q", buf.String())
	}
	c2 := Chart{Series: []Series{{Name: "nan", Values: []float64{math.NaN()}}}}
	buf.Reset()
	if err := c2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no finite data") {
		t.Fatalf("all-NaN chart output: %q", buf.String())
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "flat", Values: []float64{2, 2, 2}}}, Height: 4}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if countPlotMarks(buf.String(), '*') != 3 {
		t.Fatalf("flat series not plotted:\n%s", buf.String())
	}
}

func TestChartLogY(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "wide", Values: []float64{0.001, 1, 1000}}},
		Height: 10,
		LogY:   true,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(log y)") {
		t.Fatalf("log axis not labelled:\n%s", out)
	}
	// Non-positive values must be skipped, not crash.
	c.Series[0].Values = append(c.Series[0].Values, 0, -5)
	buf.Reset()
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
