// Package report renders experiment results as fixed-width text tables,
// CSV, and ASCII line charts. The paper-figure harness (cmd/paperfigs)
// uses it to print each figure's series in a form that can be eyeballed
// in a terminal or piped into a plotting tool.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings and integers and %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4g", v))
			}
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named line of a chart. NaN values are gaps.
type Series struct {
	Name   string
	Values []float64
}

// Chart is an ASCII line chart over a shared x axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XStart float64
	XStep  float64
	Series []Series
	// Height is the plot height in rows (default 16).
	Height int
	// LogY plots on a log10 y axis, useful when one curve (simple
	// randomization) is orders of magnitude above the others.
	LogY bool
}

// seriesMarks assigns one mark per series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	width := 0
	for _, s := range c.Series {
		if len(s.Values) > width {
			width = len(s.Values)
		}
	}
	if width == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return err
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if c.LogY && v <= 0 {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo > hi {
		_, err := fmt.Fprintf(w, "%s: (no finite data)\n", c.Title)
		return err
	}
	if lo == hi {
		hi = lo + 1
	}
	scale := func(v float64) float64 { return v }
	if c.LogY {
		scale = math.Log10
	}
	sLo, sHi := scale(lo), scale(hi)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for x, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || (c.LogY && v <= 0) {
				continue
			}
			frac := (scale(v) - sLo) / (sHi - sLo)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	legend := make([]string, len(c.Series))
	for i, s := range c.Series {
		legend[i] = fmt.Sprintf("%c=%s", seriesMarks[i%len(seriesMarks)], s.Name)
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "  [%s]", strings.Join(legend, " "))
		if c.LogY {
			b.WriteString("  (log y)")
		}
		b.WriteByte('\n')
	}
	for r := range grid {
		frac := float64(height-1-r) / float64(height-1)
		v := sLo + frac*(sHi-sLo)
		if c.LogY {
			v = math.Pow(10, v)
		}
		fmt.Fprintf(&b, "%10.3g |%s\n", v, grid[r])
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	if c.XLabel != "" {
		xEnd := c.XStart + float64(width-1)*c.XStep
		fmt.Fprintf(&b, "%10s  %s: %.4g .. %.4g\n", "", c.XLabel, c.XStart, xEnd)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
