package delegate

import (
	"fmt"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/rng"
)

// MemTransport is an in-memory Transport with deterministic, seedable
// chaos — message loss, duplication, and one-round delay (which makes
// old messages arrive after newer ones, i.e. reordering across rounds)
// — enough to exercise the protocol's tolerance of what real networks
// do, without wall-clock timing.
type MemTransport struct {
	boxes map[NodeID][]Message
	// deferred holds freshly delayed messages; a Deliver promotes them
	// to due, and a later Deliver hands due messages over after the
	// current batch — so they arrive a full cycle late and out of order
	// relative to newer traffic.
	deferred   map[NodeID][]Message
	due        map[NodeID][]Message
	src        *rng.Source
	lossProb   float64
	dupProb    float64
	delayProb  float64
	sent       uint64
	dropped    uint64
	duplicated uint64
	delayed    uint64
}

// NewMemTransport creates a lossless in-memory transport.
func NewMemTransport() *MemTransport {
	return &MemTransport{
		boxes:    make(map[NodeID][]Message),
		deferred: make(map[NodeID][]Message),
		due:      make(map[NodeID][]Message),
	}
}

// SetLoss makes the transport drop each message independently with
// probability p, using a deterministic stream from seed.
func (t *MemTransport) SetLoss(p float64, seed uint64) {
	t.SetChaos(p, 0, 0, seed)
}

// SetChaos configures independent per-message drop, duplicate and
// delay probabilities with a deterministic stream from seed. A delayed
// message is held for one Deliver cycle and then handed over after any
// newer messages — the in-memory model of network reordering.
func (t *MemTransport) SetChaos(drop, dup, delay float64, seed uint64) {
	for _, p := range []float64{drop, dup, delay} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("delegate: SetChaos probability %g outside [0, 1)", p))
		}
	}
	t.lossProb, t.dupProb, t.delayProb = drop, dup, delay
	t.src = rng.New(seed)
}

// Send implements Transport.
func (t *MemTransport) Send(msg Message) {
	t.sent++
	if t.lossProb > 0 && t.src.Float64() < t.lossProb {
		t.dropped++
		return
	}
	copies := 1
	if t.dupProb > 0 && t.src.Float64() < t.dupProb {
		copies = 2
		t.duplicated++
	}
	for i := 0; i < copies; i++ {
		if t.delayProb > 0 && t.src.Float64() < t.delayProb {
			t.deferred[msg.To] = append(t.deferred[msg.To], msg)
			t.delayed++
			continue
		}
		t.boxes[msg.To] = append(t.boxes[msg.To], msg)
	}
}

// Deliver implements Transport. Messages delayed on a previous cycle
// are delivered after the current batch — old traffic arriving late.
func (t *MemTransport) Deliver(to NodeID) []Message {
	msgs := t.boxes[to]
	t.boxes[to] = nil
	if late := t.due[to]; len(late) > 0 {
		t.due[to] = nil
		msgs = append(msgs, late...)
	}
	if queued := t.deferred[to]; len(queued) > 0 {
		t.deferred[to] = nil
		t.due[to] = append(t.due[to], queued...)
	}
	return msgs
}

// Stats returns (sent, dropped) counters.
func (t *MemTransport) Stats() (sent, dropped uint64) { return t.sent, t.dropped }

// ChaosStats returns (sent, dropped, duplicated, delayed) counters.
func (t *MemTransport) ChaosStats() (sent, dropped, duplicated, delayed uint64) {
	return t.sent, t.dropped, t.duplicated, t.delayed
}

// Cluster is a round-synchronous harness over a set of Nodes: each
// Step models one tuning interval — local observation, report exchange,
// delegate election, rescale, and map distribution. It is the
// protocol-level companion of the performance simulator in
// package clustersim.
type Cluster struct {
	Nodes []*Node
	tr    *MemTransport
	round uint64
	// epoch is the view epoch: it increments whenever the election
	// produces a different delegate than the previous step, so maps from
	// a superseded delegate are fenced out by (epoch, round) ordering.
	epoch   uint64
	lastDel NodeID
}

// NewCluster builds a cluster of k agents sharing one initial map.
func NewCluster(k int, hashSeed uint64, cfg anu.ControllerConfig) (*Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("delegate: NewCluster: k=%d", k)
	}
	ids := make([]NodeID, k)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	m, err := anu.New(hashx.NewFamily(hashSeed), ids)
	if err != nil {
		return nil, err
	}
	snapshot := m.Encode()
	tr := NewMemTransport()
	c := &Cluster{tr: tr, lastDel: -1}
	for _, id := range ids {
		n, err := NewNode(id, snapshot, cfg, tr)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Transport exposes the in-memory transport (for loss injection).
func (c *Cluster) Transport() *MemTransport { return c.tr }

// Round returns the number of completed tuning rounds.
func (c *Cluster) Round() uint64 { return c.round }

// Epoch returns the current view epoch.
func (c *Cluster) Epoch() uint64 { return c.epoch }

// Node returns the agent with the given id, or nil.
func (c *Cluster) Node(id NodeID) *Node {
	for _, n := range c.Nodes {
		if n.ID() == id {
			return n
		}
	}
	return nil
}

// Delegate returns the currently elected delegate id.
func (c *Cluster) Delegate() (NodeID, bool) { return Elect(c.Nodes) }

// Members returns the ids of all nodes (live and crashed) — the
// membership view the delegate tunes over; crashed members are detected
// by their missing reports.
func (c *Cluster) Members() []NodeID {
	ids := make([]NodeID, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		ids = append(ids, n.ID())
	}
	return ids
}

// Step executes one tuning interval: every live node sends its last
// observation to the elected delegate, the delegate rescales from what
// arrived, and broadcasts the new map, which live nodes install. It
// returns the delegate that acted.
func (c *Cluster) Step() (NodeID, error) {
	c.round++
	del, ok := Elect(c.Nodes)
	if !ok {
		return -1, fmt.Errorf("delegate: no live nodes")
	}
	if del != c.lastDel {
		c.epoch++
		c.lastDel = del
	}
	for _, n := range c.Nodes {
		if n.ID() != del {
			n.SendReport(del, c.epoch, c.round)
		}
	}
	// The delegate drains its inbox, runs the rescale, and broadcasts.
	delNode := c.Node(del)
	if _, err := delNode.CollectReports(c.round); err != nil {
		return del, err
	}
	if err := delNode.RunDelegate(c.epoch, c.round, c.Members()); err != nil {
		return del, err
	}
	// Everyone else installs the newest map they received.
	for _, n := range c.Nodes {
		if n.ID() == del {
			continue
		}
		if _, err := n.CollectReports(c.round); err != nil {
			return del, err
		}
	}
	return del, nil
}

// Converged reports whether every live node holds a byte-identical map.
func (c *Cluster) Converged() bool {
	var want uint64
	first := true
	for _, n := range c.Nodes {
		if !n.Up() {
			continue
		}
		fp := n.Fingerprint()
		if first {
			want = fp
			first = false
			continue
		}
		if fp != want {
			return false
		}
	}
	return true
}
