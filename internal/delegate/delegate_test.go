package delegate

import (
	"math"
	"testing"
	"testing/quick"

	"anurand/internal/anu"
	"anurand/internal/rng"
)

// rngNew keeps the chaos property test readable.
func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

func testCluster(t *testing.T, k int) *Cluster {
	t.Helper()
	c, err := NewCluster(k, 42, anu.DefaultControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// observeHeterogeneous feeds each node a measurement from the paper's
// closed-loop model: latency proportional to region share over speed.
func observeHeterogeneous(c *Cluster, speeds map[NodeID]float64) {
	for _, n := range c.Nodes {
		if !n.Up() {
			continue
		}
		share := float64(n.Map().Length(n.ID())) / float64(anu.Half)
		if share == 0 {
			n.Observe(0, 0)
			continue
		}
		n.Observe(uint64(1+1000*share), 0.002+share/speeds[n.ID()])
	}
}

func paperSpeeds() map[NodeID]float64 {
	return map[NodeID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
}

func TestElectLowestLive(t *testing.T) {
	c := testCluster(t, 5)
	if del, ok := c.Delegate(); !ok || del != 0 {
		t.Fatalf("delegate = %d/%v, want 0", del, ok)
	}
	c.Node(0).Crash()
	if del, ok := c.Delegate(); !ok || del != 1 {
		t.Fatalf("delegate after crash = %d/%v, want 1", del, ok)
	}
	for _, n := range c.Nodes {
		n.Crash()
	}
	if _, ok := c.Delegate(); ok {
		t.Fatal("delegate elected on a dead cluster")
	}
}

func TestStepConvergesMaps(t *testing.T) {
	c := testCluster(t, 5)
	speeds := paperSpeeds()
	for round := 0; round < 30; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if !c.Converged() {
			t.Fatalf("round %d: nodes diverged", round)
		}
	}
	// The shared map must have adapted: the fastest server's region
	// should exceed the slowest's on every node.
	for _, n := range c.Nodes {
		m := n.Map()
		if m.Length(4) <= m.Length(0) {
			t.Fatalf("node %d: map did not adapt (len4=%d len0=%d)", n.ID(), m.Length(4), m.Length(0))
		}
	}
}

func TestDelegateStatelessSuccession(t *testing.T) {
	// Kill the delegate mid-run: the next-lowest node must take over
	// and the cluster must keep converging, with the dead node's
	// region released (paper: failure handling via missing reports).
	c := testCluster(t, 5)
	speeds := paperSpeeds()
	for round := 0; round < 10; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	c.Node(0).Crash()
	for round := 0; round < 10; round++ {
		observeHeterogeneous(c, speeds)
		del, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if del != 1 {
			t.Fatalf("delegate = %d after node 0 crashed, want 1", del)
		}
	}
	if !c.Converged() {
		t.Fatal("cluster diverged after delegate succession")
	}
	for _, n := range c.Nodes {
		if !n.Up() {
			continue
		}
		if l := n.Map().Length(0); l != 0 {
			t.Fatalf("node %d still maps the crashed node with %d ticks", n.ID(), l)
		}
	}
}

func TestCrashedNodeDetectedBySilence(t *testing.T) {
	c := testCluster(t, 3)
	speeds := map[NodeID]float64{0: 2, 1: 2, 2: 2}
	observeHeterogeneous(c, speeds)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	c.Node(2).Crash()
	observeHeterogeneous(c, speeds)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if l := c.Node(0).Map().Length(2); l != 0 {
		t.Fatalf("silent node keeps %d ticks", l)
	}
}

func TestRestartRejoinsFromSnapshot(t *testing.T) {
	c := testCluster(t, 4)
	speeds := map[NodeID]float64{0: 1, 1: 2, 2: 4, 3: 8}
	for round := 0; round < 5; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	c.Node(3).Crash()
	observeHeterogeneous(c, speeds)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Restart from a live peer's snapshot.
	snap := c.Node(0).Map().Encode()
	if err := c.Node(3).Restart(snap); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("restarted node did not converge from snapshot")
	}
	// The restarted node is re-admitted by the controller over the
	// following rounds (its region was zeroed while down; recovery is
	// the map-level Recover operation driven by the cluster layer, so
	// here we just assert protocol health).
	for round := 0; round < 3; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if !c.Converged() {
			t.Fatal("cluster diverged after rejoin")
		}
	}
}

func TestMessageLossToleratedEventually(t *testing.T) {
	c := testCluster(t, 5)
	c.Transport().SetLoss(0.3, 7)
	speeds := paperSpeeds()
	for round := 0; round < 40; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// With 30% loss some map updates are missed, but the protocol is
	// self-healing: run a few lossless rounds and everyone converges.
	c.Transport().SetLoss(0, 7)
	for round := 0; round < 3; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Converged() {
		t.Fatal("cluster did not re-converge after loss stopped")
	}
	sent, dropped := c.Transport().Stats()
	if dropped == 0 || dropped >= sent {
		t.Fatalf("loss injection implausible: %d/%d dropped", dropped, sent)
	}
}

func TestLostReportDoesNotKillServerPermanently(t *testing.T) {
	// A lost report makes the delegate treat a server as failed for
	// that round. Once reports flow again, the server must be
	// re-admitted (Recover via controller-level failure handling is
	// the cluster layer's job; at protocol level the region must not
	// stay zero if the node reports again and the map still has it).
	c := testCluster(t, 3)
	speeds := map[NodeID]float64{0: 3, 1: 3, 2: 3}
	observeHeterogeneous(c, speeds)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Drop everything for one round: nodes 1 and 2 look dead.
	c.Transport().SetLoss(0.999999, 3)
	observeHeterogeneous(c, speeds)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	c.Transport().SetLoss(0, 3)
	// The delegate zeroed them; the protocol itself does not resurrect
	// regions (the cluster layer's Recover does). What must hold: the
	// cluster still steps and converges.
	for round := 0; round < 3; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Converged() {
		t.Fatal("cluster diverged after transient blackout")
	}
}

func TestReportEncodingRoundTrip(t *testing.T) {
	in := Report{Requests: 12345, LatencyMicros: 987654321}
	out, err := decodeReport(encodeReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	if _, err := decodeReport([]byte{1, 2, 3}); err == nil {
		t.Fatal("short report accepted")
	}
}

func TestNodeConstructionErrors(t *testing.T) {
	tr := NewMemTransport()
	if _, err := NewNode(0, []byte("garbage"), anu.DefaultControllerConfig(), tr); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	c := testCluster(t, 2)
	snap := c.Node(0).Map().Encode()
	if _, err := NewNode(99, snap, anu.DefaultControllerConfig(), tr); err == nil {
		t.Fatal("non-member node accepted")
	}
}

func TestCorruptMapMessageIgnored(t *testing.T) {
	c := testCluster(t, 2)
	before := c.Node(1).Fingerprint()
	c.Transport().Send(Message{
		Kind:    MsgMap,
		From:    0,
		To:      1,
		Round:   1,
		Payload: []byte("corrupted payload"),
	})
	if _, err := c.Node(1).CollectReports(1); err != nil {
		t.Fatal(err)
	}
	if c.Node(1).Fingerprint() != before {
		t.Fatal("corrupt map installed")
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewCluster(0, 1, anu.DefaultControllerConfig()); err == nil {
		t.Fatal("empty cluster accepted")
	}
	c := testCluster(t, 2)
	c.Node(0).Crash()
	c.Node(1).Crash()
	if _, err := c.Step(); err == nil {
		t.Fatal("step succeeded with no live nodes")
	}
}

func TestSharedStateIsSnapshotSized(t *testing.T) {
	// The protocol's map message payload is exactly the O(k) snapshot —
	// the paper's shared-state claim at the protocol level.
	c := testCluster(t, 5)
	observeHeterogeneous(c, paperSpeeds())
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	snapLen := len(c.Node(0).Map().Encode())
	if snapLen == 0 || snapLen > 4096 {
		t.Fatalf("snapshot size %d implausible for k=5", snapLen)
	}
}

// TestStaleMapRoundIgnored is the regression test for the map round
// guard: a reordered MsgMap from an old round must never overwrite a
// newer placement, while genuinely newer maps still install.
func TestStaleMapRoundIgnored(t *testing.T) {
	c := testCluster(t, 2)
	staleSnapshot := c.Node(1).Map().Encode() // the bootstrap placement
	speeds := map[NodeID]float64{0: 1, 1: 9}
	for round := 0; round < 5; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	n := c.Node(1)
	if n.MapRound() != c.Round() {
		t.Fatalf("map round %d, want %d", n.MapRound(), c.Round())
	}
	before := n.Fingerprint()
	// A delayed duplicate of the round-1 broadcast arrives now.
	c.Transport().Send(Message{Kind: MsgMap, From: 0, To: 1, Epoch: c.Epoch(), Round: 1, Payload: staleSnapshot})
	applied, err := n.CollectReports(c.Round())
	if err != nil {
		t.Fatal(err)
	}
	if applied || n.Fingerprint() != before {
		t.Fatal("stale-round map was installed over a newer placement")
	}
	if n.StaleMapsRejected() != 1 {
		t.Fatalf("StaleMapsRejected = %d, want 1", n.StaleMapsRejected())
	}
	if n.MapRound() != c.Round() {
		t.Fatalf("map round moved backwards to %d", n.MapRound())
	}
	// A newer round still installs.
	next := c.Round() + 10
	c.Transport().Send(Message{Kind: MsgMap, From: 0, To: 1, Epoch: c.Epoch(), Round: next, Payload: c.Node(0).Map().Encode()})
	applied, err = n.CollectReports(c.Round())
	if err != nil {
		t.Fatal(err)
	}
	if !applied || n.MapRound() != next {
		t.Fatalf("newer map not installed (applied=%v round=%d)", applied, n.MapRound())
	}
}

// TestStaleEpochFenced is the regression test for epoch fencing: a map
// from a superseded view epoch must be rejected even when its round
// number is far ahead of the installed one — the partitioned-delegate
// scenario a round guard alone cannot catch — while a higher epoch
// installs even at a lower round.
func TestStaleEpochFenced(t *testing.T) {
	c := testCluster(t, 2)
	oldSnapshot := c.Node(1).Map().Encode()
	speeds := map[NodeID]float64{0: 1, 1: 9}
	for round := 0; round < 3; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	n := c.Node(1)
	epoch, round := n.MapEpoch(), n.MapRound()
	if epoch == 0 {
		t.Fatal("harness never assigned an epoch")
	}
	before := n.Fingerprint()
	// A delegate from a superseded epoch wakes up with a round counter
	// that raced far ahead while it was partitioned.
	c.Transport().Send(Message{Kind: MsgMap, From: 0, To: 1, Epoch: epoch - 1, Round: round + 1000, Payload: oldSnapshot})
	applied, err := n.CollectReports(c.Round())
	if err != nil {
		t.Fatal(err)
	}
	if applied || n.Fingerprint() != before {
		t.Fatal("stale-epoch map was installed over a newer placement")
	}
	if n.StaleEpochsRejected() != 1 {
		t.Fatalf("StaleEpochsRejected = %d, want 1", n.StaleEpochsRejected())
	}
	if n.MapEpoch() != epoch || n.MapRound() != round {
		t.Fatalf("fence moved to (%d, %d), want (%d, %d)", n.MapEpoch(), n.MapRound(), epoch, round)
	}
	// A later epoch installs even though its round restarts lower.
	c.Transport().Send(Message{Kind: MsgMap, From: 0, To: 1, Epoch: epoch + 1, Round: 1, Payload: c.Node(0).Map().Encode()})
	applied, err = n.CollectReports(c.Round())
	if err != nil {
		t.Fatal(err)
	}
	if !applied || n.MapEpoch() != epoch+1 || n.MapRound() != 1 {
		t.Fatalf("higher-epoch map not installed (applied=%v fence=(%d,%d))", applied, n.MapEpoch(), n.MapRound())
	}
}

// TestResumeRestoresFence verifies durable-restart semantics: after
// Restart with a journal-recovered snapshot, Resume re-arms the install
// fence so replayed older maps are still rejected.
func TestResumeRestoresFence(t *testing.T) {
	c := testCluster(t, 2)
	oldSnapshot := c.Node(1).Map().Encode()
	speeds := map[NodeID]float64{0: 1, 1: 9}
	for round := 0; round < 3; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	n := c.Node(1)
	epoch, round := n.MapEpoch(), n.MapRound()
	recovered := n.Map().Encode()
	n.Crash()
	if err := n.Restart(recovered); err != nil {
		t.Fatal(err)
	}
	n.Resume(epoch, round)
	if n.MapEpoch() != epoch || n.MapRound() != round {
		t.Fatalf("Resume fence = (%d, %d), want (%d, %d)", n.MapEpoch(), n.MapRound(), epoch, round)
	}
	// The pre-crash bootstrap map replayed at a lower (epoch, round)
	// must not install after the durable restart.
	c.Transport().Send(Message{Kind: MsgMap, From: 0, To: 1, Epoch: epoch - 1, Round: round + 50, Payload: oldSnapshot})
	applied, err := n.CollectReports(c.Round())
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("replayed stale map installed after durable restart")
	}
	if n.StaleEpochsRejected() != 1 {
		t.Fatalf("StaleEpochsRejected = %d, want 1", n.StaleEpochsRejected())
	}
}

// TestObserveClampsExtremeLatency is the regression test for the
// overflow clamp: +Inf and astronomically large latencies must
// saturate at MaxLatencyMicros instead of hitting the
// platform-dependent out-of-range float64→uint64 conversion.
func TestObserveClampsExtremeLatency(t *testing.T) {
	c := testCluster(t, 2)
	n := c.Node(0)
	cases := []struct {
		latency float64
		want    uint64
	}{
		{0.5, 500000},
		{-3, 0},
		{math.NaN(), 0},
		{math.Inf(1), MaxLatencyMicros},
		{1.8e13, MaxLatencyMicros}, // the old uint64 overflow threshold
		{1e300, MaxLatencyMicros},  // far beyond any uint64
		{float64(MaxLatencyMicros), MaxLatencyMicros}, // exactly at the cap (in seconds ×1e6)
	}
	for _, tc := range cases {
		n.Observe(7, tc.latency)
		if n.last.LatencyMicros != tc.want {
			t.Errorf("Observe(%g) -> %d micros, want %d", tc.latency, n.last.LatencyMicros, tc.want)
		}
	}
}

// TestRestartClearsPreCrashReport is the regression test for stale
// report replay: a freshly restarted node must not re-send load data
// measured before the crash.
func TestRestartClearsPreCrashReport(t *testing.T) {
	c := testCluster(t, 3)
	n := c.Node(2)
	n.Observe(5000, 1.25)
	n.Crash()
	if err := n.Restart(c.Node(0).Map().Encode()); err != nil {
		t.Fatal(err)
	}
	if n.last != (Report{}) {
		t.Fatalf("restarted node still holds pre-crash report %+v", n.last)
	}
	// The first post-restart report on the wire is the zero report, not
	// the pre-crash measurement.
	n.SendReport(0, 1, 9)
	got := c.Transport().Deliver(0)
	if len(got) != 1 {
		t.Fatalf("expected 1 message, got %d", len(got))
	}
	rep, err := decodeReport(got[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep != (Report{}) {
		t.Fatalf("restarted node replayed stale report %+v", rep)
	}
}

// TestChaosTransportConvergence runs the protocol over seeded drop,
// duplicate and delay chaos and asserts the protocol invariants: the
// installed map round never moves backwards on any node, and once the
// chaos stops, every node reaches a byte-identical fingerprint within
// a bounded number of rounds.
func TestChaosTransportConvergence(t *testing.T) {
	c := testCluster(t, 5)
	c.Transport().SetChaos(0.2, 0.3, 0.3, 11)
	speeds := paperSpeeds()
	prevRounds := make(map[NodeID]uint64)
	for round := 0; round < 40; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		for _, n := range c.Nodes {
			if mr := n.MapRound(); mr < prevRounds[n.ID()] {
				t.Fatalf("round %d: node %d map round regressed %d -> %d",
					round, n.ID(), prevRounds[n.ID()], mr)
			} else {
				prevRounds[n.ID()] = mr
			}
		}
	}
	var stale uint64
	for _, n := range c.Nodes {
		stale += n.StaleMapsRejected()
	}
	if stale == 0 {
		t.Fatal("chaos produced no stale-map deliveries; the guard went unexercised")
	}
	// Chaos off: the self-healing protocol converges within a bounded
	// number of clean rounds (two flush the delay queues, then every
	// broadcast reaches everyone).
	c.Transport().SetChaos(0, 0, 0, 11)
	const bound = 5
	for round := 0; round < bound; round++ {
		observeHeterogeneous(c, speeds)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Converged() {
		t.Fatalf("nodes did not converge within %d clean rounds", bound)
	}
	_, _, duplicated, delayed := c.Transport().ChaosStats()
	if duplicated == 0 || delayed == 0 {
		t.Fatalf("chaos implausible: duplicated=%d delayed=%d", duplicated, delayed)
	}
}

// TestProtocolChaosProperty drives random crash/restart/loss schedules
// and asserts the protocol-level invariants: Step never errors while a
// node lives, live nodes converge to byte-identical maps once the
// transport is clean, and the delegate is always the lowest live id.
func TestProtocolChaosProperty(t *testing.T) {
	prop := func(seed uint64, opsRaw uint8) bool {
		c, err := NewCluster(5, seed, anu.DefaultControllerConfig())
		if err != nil {
			return false
		}
		src := rngNew(seed)
		speeds := paperSpeeds()
		ops := int(opsRaw%40) + 5
		for i := 0; i < ops; i++ {
			switch src.Intn(5) {
			case 0: // crash a random node (keep at least one alive)
				live := 0
				for _, n := range c.Nodes {
					if n.Up() {
						live++
					}
				}
				if live > 1 {
					c.Nodes[src.Intn(5)].Crash()
				}
			case 1: // restart a crashed node from a live snapshot
				var donor *Node
				for _, n := range c.Nodes {
					if n.Up() {
						donor = n
						break
					}
				}
				victim := c.Nodes[src.Intn(5)]
				if donor != nil && !victim.Up() {
					if err := victim.Restart(donor.Map().Encode()); err != nil {
						t.Logf("restart: %v", err)
						return false
					}
				}
			case 2: // toggle loss
				c.Transport().SetLoss(src.Float64()*0.5, seed+uint64(i))
			default: // a normal tuning step
				observeHeterogeneous(c, speeds)
				del, err := c.Step()
				if err != nil {
					t.Logf("step: %v", err)
					return false
				}
				want, _ := Elect(c.Nodes)
				if del != want {
					t.Logf("delegate %d, elected %d", del, want)
					return false
				}
			}
		}
		// Clean transport, a few quiet rounds: everyone converges.
		c.Transport().SetLoss(0, 1)
		for i := 0; i < 3; i++ {
			observeHeterogeneous(c, speeds)
			if _, err := c.Step(); err != nil {
				t.Logf("final step: %v", err)
				return false
			}
		}
		if !c.Converged() {
			t.Log("did not converge after clean rounds")
			return false
		}
		// Every live node's map still satisfies the geometry invariants.
		for _, n := range c.Nodes {
			if n.Up() {
				if err := n.Map().CheckInvariants(); err != nil {
					t.Logf("node %d invariants: %v", n.ID(), err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
