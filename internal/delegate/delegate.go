// Package delegate implements the cluster-management protocol around
// ANU randomization described in Section 4 of the paper: at the end of
// each tuning interval every server reports its latency to an elected
// delegate; the delegate computes the new load configuration from the
// reported latencies alone and distributes the new mapping of servers
// to the unit interval — the system's only replicated state — to all
// servers.
//
// The delegate is deliberately stateless: if it fails, the next elected
// delegate runs the same protocol with the same information. This
// package makes that property concrete and testable: nodes exchange
// typed, byte-encoded messages over a Transport, elect the
// lowest-numbered live node, and converge to byte-identical placement
// maps even across delegate crashes, message loss and re-elections.
//
// The runtime is round-synchronous and deterministic — a faithful model
// of the two-minute tuning cadence that avoids wall-clock flakiness in
// tests. The wire encodings are real, so the shared-state accounting
// matches what a networked deployment would replicate.
//
// The protocol is placement-policy-agnostic: a node replicates an
// opaque, strategy-tagged snapshot (package placement) rather than an
// ANU map specifically. ANU remains the default and its wire bytes are
// unchanged; a node refuses to install a snapshot whose strategy tag
// differs from its own, so mixed-strategy broadcasts can never corrupt
// a cluster. The one sanctioned exception is a live migration's
// dual-tag window (OpenDualTag): while it is open the node will also
// accept a superseding snapshot carrying exactly the named target
// strategy — that install IS the cutover, and it closes the window.
package delegate

import (
	"encoding/binary"
	"fmt"
	"math"

	"anurand/internal/anu"
	"anurand/internal/placement"
)

// NodeID identifies a management agent (one per file server). It is the
// same identifier space as the placement map's ServerID.
type NodeID = anu.ServerID

// MsgKind discriminates protocol messages.
type MsgKind uint8

// Protocol message kinds.
const (
	// MsgReport carries one server's interval latency report to the
	// delegate.
	MsgReport MsgKind = iota + 1
	// MsgMap carries the delegate's new placement map to a server.
	MsgMap
)

// Message is one protocol datagram. Payload is the wire encoding of a
// Report (MsgReport) or a placement map (MsgMap).
//
// Epoch is the view epoch of the sender: it increments each time a new
// delegate takes over, so a map broadcast is ordered by the (Epoch,
// Round) pair rather than the round alone. Round numbers keep rising
// within an epoch; a re-election starts a higher epoch and thereby
// fences out everything the previous delegate may still have in flight.
type Message struct {
	Kind MsgKind
	From NodeID
	To   NodeID
	// Flags carries out-of-band sender state (v3 wire frames). The
	// delegate protocol itself ignores it; the cluster runtime uses it
	// to gossip "a migration is in flight" on ordinary traffic.
	Flags   uint8
	Epoch   uint64
	Round   uint64
	Payload []byte
}

// Report is the per-interval performance sample of one server.
type Report struct {
	Requests uint64
	// LatencyMicros is the mean response time in microseconds. Fixed
	// point keeps the wire format integer-only and platform-stable.
	LatencyMicros uint64
}

// MaxLatencyMicros is the largest latency a report can carry: 1e18
// microseconds (~31,700 years). Observe clamps to it so the
// float64→uint64 conversion is always in range; values beyond it carry
// no more information than "unusably slow".
const MaxLatencyMicros uint64 = 1e18

// encodeReport serializes a report payload.
func encodeReport(r Report) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], r.Requests)
	binary.LittleEndian.PutUint64(buf[8:16], r.LatencyMicros)
	return buf
}

// decodeReport parses a report payload.
func decodeReport(b []byte) (Report, error) {
	if len(b) != 16 {
		return Report{}, fmt.Errorf("delegate: report payload is %d bytes, want 16", len(b))
	}
	return Report{
		Requests:      binary.LittleEndian.Uint64(b[0:8]),
		LatencyMicros: binary.LittleEndian.Uint64(b[8:16]),
	}, nil
}

// Transport delivers messages between nodes. Implementations may delay,
// reorder or drop; the protocol only assumes that a delivered payload is
// intact (corrupt maps are rejected by decode-time validation).
type Transport interface {
	// Send queues a message for delivery. It never blocks.
	Send(msg Message)
	// Deliver drains the messages currently deliverable to the given
	// node.
	Deliver(to NodeID) []Message
}

// Node is one server's management agent. It holds the node's copy of
// the placement strategy and, when elected, the delegate logic.
type Node struct {
	id NodeID
	up bool
	// s is the node's placement strategy — the replicated state plus the
	// tuning rule that rescales it. opts reproduces the construction
	// configuration when installs and restarts decode fresh snapshots.
	s    placement.Strategy
	opts placement.Options
	tr   Transport
	last Report // most recent local measurement
	// pending accumulates reports received while acting as delegate.
	pending map[NodeID]Report
	// (mapEpoch, mapRound) is the fence of the last installed map: a
	// MsgMap with a lexicographically lower pair is stale and must never
	// overwrite a newer placement — not even one with a higher round, if
	// it comes from a superseded epoch. This is what stops a formerly
	// partitioned delegate, whose round counter may have raced ahead,
	// from rolling the cluster back when it reconnects.
	mapEpoch uint64
	mapRound uint64
	// staleMaps counts maps rejected for a stale round within the current
	// epoch; staleEpochs counts maps rejected for a superseded epoch;
	// tagMismatches counts maps rejected for carrying a different
	// placement strategy than this node runs (outside any dual-tag
	// window); crossTag counts maps rejected during a dual-tag window
	// for carrying neither the current nor the target strategy;
	// undecodable counts maps whose payload failed to decode at all.
	staleMaps     uint64
	staleEpochs   uint64
	tagMismatches uint64
	crossTag      uint64
	undecodable   uint64
	// dualTagTarget, when non-empty, names the one foreign strategy tag
	// the node will accept an install of — the live-migration window.
	dualTagTarget string
	// dualTagInstalls counts cutovers: installs that switched the
	// node's strategy through an open window.
	dualTagInstalls uint64
}

// supersedes reports whether fence (e, r) is at least fence (oe, or):
// epochs order first, rounds break ties. Equal pairs supersede, so a
// duplicated broadcast of the current map reinstalls harmlessly.
func supersedes(e, r, oe, or uint64) bool {
	if e != oe {
		return e > oe
	}
	return r >= or
}

// NewNode creates an agent with its own copy of the initial placement,
// decoded from its tagged snapshot (a raw ANU map or a tagged container
// — see package placement). All nodes must be constructed from
// byte-identical snapshots. cfg configures the ANU controller when the
// snapshot is an ANU map; the zero value means the defaults.
func NewNode(id NodeID, snapshot []byte, cfg anu.ControllerConfig, tr Transport) (*Node, error) {
	return NewNodeWithOptions(id, snapshot, placement.Options{Controller: cfg}, tr)
}

// NewNodeWithOptions is NewNode with the full strategy construction
// options (controller config, load bound, ...).
func NewNodeWithOptions(id NodeID, snapshot []byte, opts placement.Options, tr Transport) (*Node, error) {
	s, err := placement.Decode(snapshot, opts)
	if err != nil {
		return nil, fmt.Errorf("delegate: node %d: %w", id, err)
	}
	if !s.Has(id) {
		return nil, fmt.Errorf("delegate: node %d not a member of the placement", id)
	}
	return &Node{
		id:      id,
		up:      true,
		s:       s,
		opts:    opts,
		tr:      tr,
		pending: make(map[NodeID]Report),
	}, nil
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.id }

// Up reports whether the node is alive.
func (n *Node) Up() bool { return n.up }

// Placement returns the node's current placement strategy (read-only
// use).
func (n *Node) Placement() placement.Strategy { return n.s }

// Strategy returns the registered tag of the node's placement strategy.
func (n *Node) Strategy() string { return n.s.Name() }

// Map returns the node's current ANU placement map (read-only use), or
// nil when the node runs a non-ANU strategy.
func (n *Node) Map() *anu.Map {
	if a, ok := n.s.(*placement.ANU); ok {
		return a.Map()
	}
	return nil
}

// Fingerprint returns a cheap digest of the node's replicated state,
// used to assert cluster-wide convergence.
func (n *Node) Fingerprint() uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range n.s.Encode() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Crash takes the node down: it stops reporting, applying maps, and
// acting as delegate. Its in-memory state is discarded, as a real crash
// would.
func (n *Node) Crash() {
	n.up = false
	n.last = Report{}
	n.pending = make(map[NodeID]Report)
	n.dualTagTarget = "" // an open migration window is in-memory state
	if rs, ok := n.s.(placement.SoftStateResetter); ok {
		rs.ResetSoftState()
	}
}

// Restart brings a crashed node back using a fresh snapshot obtained
// from a live peer (in a real cluster, from shared storage or the
// delegate). Its smoothing state starts empty — the protocol tolerates
// that because the delegate is stateless. The pre-crash measurement is
// zeroed: the first report after a restart must describe the restarted
// process, not replay load data from before the crash. The round guard
// also resets — the snapshot is the node's new baseline and any map
// that arrives afterwards is newer than what the node knows.
func (n *Node) Restart(snapshot []byte) error {
	s, err := placement.Decode(snapshot, n.opts)
	if err != nil {
		return fmt.Errorf("delegate: restart node %d: %w", n.id, err)
	}
	if s.Name() != n.s.Name() {
		return fmt.Errorf("delegate: restart node %d: snapshot carries strategy %q, node runs %q", n.id, s.Name(), n.s.Name())
	}
	n.s = s
	n.up = true
	n.last = Report{}
	n.pending = make(map[NodeID]Report)
	n.mapEpoch = 0
	n.mapRound = 0
	n.dualTagTarget = ""
	return nil
}

// Resume restores the node's install fence after a durable restart: the
// caller recovered (epoch, round) — and the matching map snapshot passed
// to Restart — from a journal, so the node must reject any install older
// than what it already persisted.
func (n *Node) Resume(epoch, round uint64) {
	n.mapEpoch = epoch
	n.mapRound = round
}

// Observe records the node's local measurement for the elapsed interval.
// Latencies are clamped to [0, MaxLatencyMicros/1e6] seconds: negative
// and NaN inputs become 0, while +Inf and absurdly large values saturate
// instead of hitting the platform-dependent behaviour of an
// out-of-range float64→uint64 conversion.
func (n *Node) Observe(requests uint64, meanLatencySeconds float64) {
	if meanLatencySeconds < 0 || math.IsNaN(meanLatencySeconds) {
		meanLatencySeconds = 0
	}
	micros := meanLatencySeconds * 1e6
	var latency uint64
	if micros >= float64(MaxLatencyMicros) { // catches +Inf too
		latency = MaxLatencyMicros
	} else {
		latency = uint64(micros)
	}
	n.last = Report{
		Requests:      requests,
		LatencyMicros: latency,
	}
}

// SendReport transmits the node's measurement to the given delegate.
func (n *Node) SendReport(to NodeID, epoch, round uint64) {
	if !n.up {
		return
	}
	n.tr.Send(Message{
		Kind:    MsgReport,
		From:    n.id,
		To:      to,
		Epoch:   epoch,
		Round:   round,
		Payload: encodeReport(n.last),
	})
}

// CollectReports drains the node's inbox, keeping latency reports for
// the given round and applying the newest map message, if any. It
// returns whether a map update was applied.
func (n *Node) CollectReports(round uint64) (mapApplied bool, err error) {
	if !n.up {
		// A dead node's mail is discarded.
		n.tr.Deliver(n.id)
		return false, nil
	}
	for _, msg := range n.tr.Deliver(n.id) {
		switch msg.Kind {
		case MsgReport:
			if msg.Round != round {
				continue // stale report from a previous round
			}
			rep, derr := decodeReport(msg.Payload)
			if derr != nil {
				return mapApplied, derr
			}
			n.pending[msg.From] = rep
		case MsgMap:
			if !supersedes(msg.Epoch, msg.Round, n.mapEpoch, n.mapRound) {
				// A reordered, duplicated or partition-replayed map
				// carrying an older (epoch, round) must never overwrite
				// a newer placement: installed fences are monotonic.
				if msg.Epoch < n.mapEpoch {
					n.staleEpochs++
				} else {
					n.staleMaps++
				}
				continue
			}
			s, derr := placement.Decode(msg.Payload, n.opts)
			if derr != nil {
				// A corrupt map must never be installed.
				n.undecodable++
				continue
			}
			if s.Name() != n.s.Name() {
				if n.dualTagTarget == "" {
					// A placement from a different strategy must never be
					// installed, whatever its fence says.
					n.tagMismatches++
					continue
				}
				if s.Name() != n.dualTagTarget {
					// Even mid-migration only the one named target tag is
					// admissible; anything else is still poison.
					n.crossTag++
					continue
				}
				// The cutover: a superseding map carrying the migration
				// target installs, switches the node's strategy, and
				// closes the window.
				n.dualTagInstalls++
				n.dualTagTarget = ""
			}
			if ad, ok := s.(placement.StateAdopter); ok {
				// Keep soft state (latency smoothing) warm across installs,
				// as the pre-placement node did by holding one controller
				// for the life of the process.
				ad.AdoptState(n.s)
			}
			n.s = s
			n.mapEpoch = msg.Epoch
			n.mapRound = msg.Round
			mapApplied = true
		default:
			return mapApplied, fmt.Errorf("delegate: node %d: unknown message kind %d", n.id, msg.Kind)
		}
	}
	return mapApplied, nil
}

// PendingReports returns how many distinct servers' reports the node
// currently holds as delegate — a progress probe for transports that
// deliver asynchronously.
func (n *Node) PendingReports() int { return len(n.pending) }

// Reported returns the ids whose reports the node currently holds as
// delegate, in unspecified order.
func (n *Node) Reported() []NodeID {
	out := make([]NodeID, 0, len(n.pending))
	for id := range n.pending {
		out = append(out, id)
	}
	return out
}

// MapRound returns the round of the node's installed map: 0 until the
// first install (or after a Restart), then monotonically non-decreasing
// within an epoch for the life of the process.
func (n *Node) MapRound() uint64 { return n.mapRound }

// MapEpoch returns the view epoch of the node's installed map: 0 until
// the first install (or after a Restart), then monotonically
// non-decreasing for the life of the process.
func (n *Node) MapEpoch() uint64 { return n.mapEpoch }

// StaleMapsRejected returns how many stale-round map messages the node
// has refused to install.
func (n *Node) StaleMapsRejected() uint64 { return n.staleMaps }

// StaleEpochsRejected returns how many map messages from superseded
// epochs the node has refused to install.
func (n *Node) StaleEpochsRejected() uint64 { return n.staleEpochs }

// TagMismatchesRejected returns how many map messages the node refused
// to install because they carried a different placement strategy.
func (n *Node) TagMismatchesRejected() uint64 { return n.tagMismatches }

// CrossTagRejected returns how many map messages the node refused
// during a dual-tag window because they carried neither the current
// nor the migration-target strategy.
func (n *Node) CrossTagRejected() uint64 { return n.crossTag }

// UndecodableMapsRejected returns how many map messages the node
// refused because their payload failed to decode.
func (n *Node) UndecodableMapsRejected() uint64 { return n.undecodable }

// DualTagInstalls returns how many installs cut the node over to a
// migration-target strategy through an open dual-tag window.
func (n *Node) DualTagInstalls() uint64 { return n.dualTagInstalls }

// OpenDualTag opens the live-migration window: until the window closes
// the node will additionally accept a superseding map install carrying
// exactly the target strategy tag, and that install switches the
// node's strategy. Opening a window with a different target replaces
// the previous one (a new migration supersedes an abandoned one).
// Opening with the node's own strategy is a no-op close: there is
// nothing to migrate to.
func (n *Node) OpenDualTag(target string) {
	if target == n.s.Name() {
		target = ""
	}
	n.dualTagTarget = target
}

// CloseDualTag closes the window without installing anything — the
// rollback path. The node's serving placement was never touched.
func (n *Node) CloseDualTag() { n.dualTagTarget = "" }

// DualTagTarget returns the open window's target strategy tag, or ""
// when no window is open.
func (n *Node) DualTagTarget() string { return n.dualTagTarget }

// RunDelegate executes the delegate role for one round over the reports
// collected so far: servers that did not report are treated as failed
// (the paper's failure handling — a silent server's region goes to the
// survivors), the controller rescales the map, and the new map is
// broadcast to every member. The pending report set is cleared.
func (n *Node) RunDelegate(epoch, round uint64, members []NodeID) error {
	if !n.up {
		return fmt.Errorf("delegate: node %d is down", n.id)
	}
	reports := make([]placement.Report, 0, len(members))
	for _, id := range members {
		rep, ok := n.pending[id]
		if !ok && id != n.id {
			reports = append(reports, placement.Report{Server: id, Failed: true})
			continue
		}
		if id == n.id {
			rep = n.last // the delegate reports to itself directly
		}
		reports = append(reports, placement.Report{
			Server:   id,
			Requests: rep.Requests,
			Latency:  float64(rep.LatencyMicros) / 1e6,
		})
	}
	if _, err := n.s.Tune(reports); err != nil {
		return err
	}
	n.pending = make(map[NodeID]Report)
	// The delegate's own map is now the round's authoritative placement;
	// stamping the fence keeps the guard effective if this node later
	// receives a late broadcast from a previous delegate.
	if supersedes(epoch, round, n.mapEpoch, n.mapRound) {
		n.mapEpoch = epoch
		n.mapRound = round
	}

	snapshot := n.s.Encode()
	for _, id := range members {
		if id == n.id {
			continue
		}
		n.tr.Send(Message{
			Kind:    MsgMap,
			From:    n.id,
			To:      id,
			Epoch:   epoch,
			Round:   round,
			Payload: snapshot,
		})
	}
	return nil
}

// Elect returns the delegate for a membership view: the lowest-numbered
// live node, the paper's "elected delegate" with its stateless
// succession rule.
func Elect(nodes []*Node) (NodeID, bool) {
	best := NodeID(-1)
	for _, n := range nodes {
		if !n.Up() {
			continue
		}
		if best < 0 || n.ID() < best {
			best = n.ID()
		}
	}
	return best, best >= 0
}
