package delegate

import (
	"testing"

	"anurand/internal/placement"
)

// targetSnapshot builds a chord-bounded placement over the cluster's
// member set — the warm snapshot a live migration would install.
func targetSnapshot(t *testing.T, c *Cluster) []byte {
	t.Helper()
	ids := make([]placement.ServerID, len(c.Nodes))
	for i, n := range c.Nodes {
		ids[i] = n.ID()
	}
	s, err := placement.New(placement.StrategyChordBounded, ids, placement.Options{HashSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s.Encode()
}

func sendMap(c *Cluster, to NodeID, epoch, round uint64, payload []byte) {
	c.Transport().Send(Message{Kind: MsgMap, From: 0, To: to, Epoch: epoch, Round: round, Payload: payload})
}

// TestDualTagWindowInstallsTarget: with the window open, a superseding
// map carrying the target tag installs, switches the node's strategy,
// and closes the window.
func TestDualTagWindowInstallsTarget(t *testing.T) {
	c := testCluster(t, 3)
	n := c.Node(1)
	snap := targetSnapshot(t, c)

	// Without a window the foreign tag is rejected.
	sendMap(c, 1, 1, 1, snap)
	if _, err := n.CollectReports(1); err != nil {
		t.Fatal(err)
	}
	if n.Strategy() != placement.StrategyANU || n.TagMismatchesRejected() != 1 {
		t.Fatalf("foreign tag installed without a window: strategy=%s mismatches=%d",
			n.Strategy(), n.TagMismatchesRejected())
	}

	n.OpenDualTag(placement.StrategyChordBounded)
	if n.DualTagTarget() != placement.StrategyChordBounded {
		t.Fatalf("DualTagTarget = %q", n.DualTagTarget())
	}
	// Same-tag installs still work inside the window (the old strategy
	// keeps tuning while the migration is in flight) — a fresh ANU
	// snapshot from a peer installs fine.
	sendMap(c, 1, 1, 2, c.Node(0).Placement().Encode())
	if applied, err := n.CollectReports(2); err != nil || !applied {
		t.Fatalf("same-tag install inside window: applied=%v err=%v", applied, err)
	}
	if n.Strategy() != placement.StrategyANU {
		t.Fatalf("same-tag install switched strategy to %s", n.Strategy())
	}

	// The cutover: target-tag install at a superseding fence.
	sendMap(c, 1, 2, 3, snap)
	if applied, err := n.CollectReports(3); err != nil || !applied {
		t.Fatalf("cutover install: applied=%v err=%v", applied, err)
	}
	if n.Strategy() != placement.StrategyChordBounded {
		t.Fatalf("strategy after cutover = %s", n.Strategy())
	}
	if n.DualTagTarget() != "" {
		t.Fatal("window still open after cutover")
	}
	if n.DualTagInstalls() != 1 {
		t.Fatalf("DualTagInstalls = %d", n.DualTagInstalls())
	}
	if n.MapEpoch() != 2 || n.MapRound() != 3 {
		t.Fatalf("fence after cutover = (%d, %d)", n.MapEpoch(), n.MapRound())
	}
}

// TestDualTagWindowStillFencesStaleAndCross: the window relaxes only
// the tag check, never the fence; and tags other than the named target
// stay poison.
func TestDualTagWindowStillFencesStaleAndCross(t *testing.T) {
	c := testCluster(t, 3)
	n := c.Node(1)
	snap := targetSnapshot(t, c)

	// Advance the node's fence first.
	sendMap(c, 1, 3, 5, c.Node(0).Placement().Encode())
	if _, err := n.CollectReports(5); err != nil {
		t.Fatal(err)
	}

	n.OpenDualTag(placement.StrategyChordBounded)
	// Stale fence with the target tag: still rejected, window stays open.
	sendMap(c, 1, 2, 9, snap)
	// Cross tag (neither anu nor chord-bounded) at a fresh fence.
	ids := []placement.ServerID{0, 1, 2}
	chord, err := placement.New(placement.StrategyChord, ids, placement.Options{HashSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sendMap(c, 1, 3, 6, chord.Encode())
	// Undecodable garbage at a fresh fence.
	sendMap(c, 1, 3, 7, []byte("not a snapshot"))
	if _, err := n.CollectReports(7); err != nil {
		t.Fatal(err)
	}
	if n.Strategy() != placement.StrategyANU {
		t.Fatalf("strategy = %s, want anu", n.Strategy())
	}
	if n.StaleEpochsRejected() != 1 {
		t.Fatalf("StaleEpochsRejected = %d", n.StaleEpochsRejected())
	}
	if n.CrossTagRejected() != 1 {
		t.Fatalf("CrossTagRejected = %d", n.CrossTagRejected())
	}
	if n.UndecodableMapsRejected() != 1 {
		t.Fatalf("UndecodableMapsRejected = %d", n.UndecodableMapsRejected())
	}
	if n.DualTagTarget() == "" {
		t.Fatal("window closed by rejected installs")
	}

	// Rollback: CloseDualTag leaves the serving strategy untouched and
	// the target tag becomes poison again.
	n.CloseDualTag()
	sendMap(c, 1, 4, 8, snap)
	if _, err := n.CollectReports(8); err != nil {
		t.Fatal(err)
	}
	if n.Strategy() != placement.StrategyANU || n.TagMismatchesRejected() != 1 {
		t.Fatalf("post-rollback: strategy=%s mismatches=%d", n.Strategy(), n.TagMismatchesRejected())
	}
}

// TestDualTagWindowLifecycle: self-target is a no-op, re-open replaces,
// crash and restart clear the window.
func TestDualTagWindowLifecycle(t *testing.T) {
	c := testCluster(t, 2)
	n := c.Node(1)
	n.OpenDualTag(placement.StrategyANU) // own strategy: nothing to migrate to
	if n.DualTagTarget() != "" {
		t.Fatal("self-target opened a window")
	}
	n.OpenDualTag(placement.StrategyChord)
	n.OpenDualTag(placement.StrategyChordBounded)
	if n.DualTagTarget() != placement.StrategyChordBounded {
		t.Fatalf("re-open did not replace target: %q", n.DualTagTarget())
	}
	n.Crash()
	if n.DualTagTarget() != "" {
		t.Fatal("window survived a crash")
	}
	n.OpenDualTag(placement.StrategyChord)
	if err := n.Restart(c.Node(0).Placement().Encode()); err != nil {
		t.Fatal(err)
	}
	if n.DualTagTarget() != "" {
		t.Fatal("window survived a restart")
	}
}
