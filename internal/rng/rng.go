// Package rng provides a deterministic, splittable random number source
// and the statistical distributions used by the workload generators and
// placement policies.
//
// All randomness in the repository flows from a single root seed through
// named substreams (see Source.Stream), so every simulation is exactly
// reproducible: the same seed always yields the same event sequence,
// independent of how many other streams were drawn from in between.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference construction by Blackman and Vigna. It is not cryptographic;
// it is fast, well distributed, and deterministic, which is what a
// simulator needs.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// SplitMix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is exported because the hash family in package
// hashx uses the same finalizer to derive independent hash functions.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to a single value. It is a good
// 64-bit mixing function: every input bit affects every output bit.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic pseudo-random source. The zero value is not
// valid; use New or Source.Stream.
type Source struct {
	s [4]uint64

	// spare caches the second variate produced by the polar Box-Muller
	// transform in NormFloat64.
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams (states are expanded through splitmix64 per Vigna's
// recommendation, so nearby seeds do not correlate).
func New(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&state)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[3] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Stream derives an independent substream identified by name. Deriving
// the same name from the same source state always yields the same
// substream, and drawing from one substream does not perturb another,
// which keeps experiments reproducible as code evolves.
func (r *Source) Stream(name string) *Source {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	// Combine the substream label with the parent state without
	// advancing the parent.
	return New(Mix64(h^r.s[0]) ^ Mix64(r.s[2]+h))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (r *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the polar Box-Muller method. A spare value is cached per source.
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}
