package rng

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous distribution from which variates can be drawn
// using an explicit random source, so one distribution value can be
// shared across goroutines that each hold their own Source.
type Dist interface {
	// Sample draws one variate using src.
	Sample(src *Source) float64
	// Mean returns the analytic mean of the distribution. It returns
	// +Inf when the mean does not exist (for example Pareto with
	// alpha <= 1).
	Mean() float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a Uniform distribution on [lo, hi). It panics if
// hi < lo.
func NewUniform(lo, hi float64) Uniform {
	if hi < lo {
		panic(fmt.Sprintf("rng: NewUniform(%g, %g): hi < lo", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws a uniform variate.
func (u Uniform) Sample(src *Source) float64 {
	return u.Lo + (u.Hi-u.Lo)*src.Float64()
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with rate Lambda
// (mean 1/Lambda). It is the inter-arrival distribution of a Poisson
// process and serves as the light-tailed baseline next to Pareto.
type Exponential struct {
	Lambda float64
}

// NewExponential returns an Exponential distribution with the given
// positive rate.
func NewExponential(lambda float64) Exponential {
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: NewExponential(%g): rate must be positive", lambda))
	}
	return Exponential{Lambda: lambda}
}

// Sample draws an exponential variate by inversion.
func (e Exponential) Sample(src *Source) float64 {
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1-src.Float64()) / e.Lambda
}

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Pareto is the type-I Pareto distribution with shape Alpha and scale
// (minimum) Xm. The paper's synthetic workload draws request
// inter-arrival times from a heavy-tailed Pareto distribution
// (Section 5.2.1); Alpha in (1,2] gives a finite mean with infinite
// variance, the classic heavy-tail regime.
type Pareto struct {
	Alpha, Xm float64
}

// NewPareto returns a Pareto distribution. Alpha and Xm must be
// positive.
func NewPareto(alpha, xm float64) Pareto {
	if alpha <= 0 || xm <= 0 {
		panic(fmt.Sprintf("rng: NewPareto(%g, %g): parameters must be positive", alpha, xm))
	}
	return Pareto{Alpha: alpha, Xm: xm}
}

// ParetoWithMean returns the Pareto distribution with the given shape
// whose mean equals mean. It panics if alpha <= 1 (no finite mean).
func ParetoWithMean(alpha, mean float64) Pareto {
	if alpha <= 1 {
		panic(fmt.Sprintf("rng: ParetoWithMean: alpha=%g has no finite mean", alpha))
	}
	return NewPareto(alpha, mean*(alpha-1)/alpha)
}

// Sample draws a Pareto variate by inversion.
func (p Pareto) Sample(src *Source) float64 {
	u := 1 - src.Float64() // (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1 and +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto is a Pareto distribution truncated to [Lo, Hi]. Traces
// and burst lengths use it so a single sample cannot stall a simulated
// server for the whole run while the body of the distribution stays
// heavy-tailed.
type BoundedPareto struct {
	Alpha, Lo, Hi float64
}

// NewBoundedPareto returns a BoundedPareto on [lo, hi] with shape alpha.
func NewBoundedPareto(alpha, lo, hi float64) BoundedPareto {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("rng: NewBoundedPareto(%g, %g, %g): need alpha>0, 0<lo<hi", alpha, lo, hi))
	}
	return BoundedPareto{Alpha: alpha, Lo: lo, Hi: hi}
}

// Sample draws a bounded Pareto variate by inversion of the truncated
// CDF.
func (b BoundedPareto) Sample(src *Source) float64 {
	u := src.Float64()
	la := math.Pow(b.Lo, b.Alpha)
	ha := math.Pow(b.Hi, b.Alpha)
	x := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(x, -1/b.Alpha)
}

// Mean returns the analytic mean of the truncated distribution.
func (b BoundedPareto) Mean() float64 {
	a, l, h := b.Alpha, b.Lo, b.Hi
	if a == 1 {
		return h * l / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * (a / (a - 1)) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// Zipf draws integers in [0, N) with probability proportional to
// 1/(rank+1)^S. File-set popularity in the DFSTrace-like workload is
// Zipf-distributed, matching the well-known skew of file-system
// accesses.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf returns a Zipf sampler over n items with exponent s >= 0
// (s = 0 degenerates to uniform).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s < 0 {
		panic(fmt.Sprintf("rng: NewZipf(%d, %g): need n>0, s>=0", n, s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{n: n, cdf: cdf}
}

// Sample draws one rank in [0, N).
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of items.
func (z *Zipf) N() int { return z.n }

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= z.n {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Categorical draws indices with the given (unnormalized, non-negative)
// weights. Used to spread trace requests across file sets in proportion
// to their workload weight.
type Categorical struct {
	cdf []float64
}

// NewCategorical builds a sampler from weights. At least one weight must
// be positive; negative weights panic.
func NewCategorical(weights []float64) *Categorical {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: NewCategorical: weight[%d]=%g is invalid", i, w))
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("rng: NewCategorical: all weights are zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &Categorical{cdf: cdf}
}

// Sample draws one index.
func (c *Categorical) Sample(src *Source) int {
	return sort.SearchFloat64s(c.cdf, src.Float64())
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.cdf) }
