package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestStreamIndependence(t *testing.T) {
	root := New(7)
	a1 := root.Stream("alpha")
	// Drawing heavily from one stream must not perturb a sibling
	// derived afterwards.
	noise := root.Stream("noise")
	for i := 0; i < 1000; i++ {
		noise.Uint64()
	}
	a2 := root.Stream("alpha")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatalf("stream %q is not stable across derivations", "alpha")
		}
	}
}

func TestStreamNamesDisjoint(t *testing.T) {
	root := New(7)
	a := root.Stream("arrivals")
	b := root.Stream("service")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently named streams collided on %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64MeanAndVariance(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from expected %g by >5 sigma", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestMix64AvalancheNonDegenerate(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x123456789abcdef)
	for bit := 0; bit < 64; bit++ {
		flipped := Mix64(0x123456789abcdef ^ (1 << uint(bit)))
		diff := base ^ flipped
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		if n < 10 || n > 54 {
			t.Errorf("bit %d: only %d output bits changed", bit, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}
