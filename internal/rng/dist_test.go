package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(d Dist, src *Source, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(src)
	}
	return sum / float64(n)
}

func TestUniformSampleRangeAndMean(t *testing.T) {
	src := New(1)
	u := NewUniform(2, 8)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := u.Sample(src)
		if v < 2 || v >= 8 {
			t.Fatalf("uniform sample %g out of [2,8)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-u.Mean()) > 0.05 {
		t.Errorf("uniform sample mean %g, want ~%g", mean, u.Mean())
	}
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniform(5, 1) did not panic")
		}
	}()
	NewUniform(5, 1)
}

func TestExponentialMean(t *testing.T) {
	src := New(2)
	for _, lambda := range []float64{0.5, 1, 4} {
		e := NewExponential(lambda)
		mean := sampleMean(e, src, 200000)
		if math.Abs(mean-e.Mean())/e.Mean() > 0.03 {
			t.Errorf("exp(rate=%g) sample mean %g, want ~%g", lambda, mean, e.Mean())
		}
	}
}

func TestExponentialPositive(t *testing.T) {
	src := New(3)
	e := NewExponential(2)
	for i := 0; i < 100000; i++ {
		if v := e.Sample(src); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("exponential produced invalid sample %g", v)
		}
	}
}

func TestParetoSamplesAboveXm(t *testing.T) {
	src := New(4)
	p := NewPareto(1.5, 3)
	for i := 0; i < 100000; i++ {
		if v := p.Sample(src); v < 3 {
			t.Fatalf("Pareto sample %g below scale %g", v, 3.0)
		}
	}
}

func TestParetoMeanFiniteAlpha(t *testing.T) {
	src := New(5)
	p := NewPareto(2.5, 1)
	mean := sampleMean(p, src, 500000)
	if math.Abs(mean-p.Mean())/p.Mean() > 0.05 {
		t.Errorf("Pareto(2.5,1) sample mean %g, want ~%g", mean, p.Mean())
	}
}

func TestParetoMeanInfiniteWhenAlphaLE1(t *testing.T) {
	if m := NewPareto(1, 1).Mean(); !math.IsInf(m, 1) {
		t.Errorf("Pareto(alpha=1) mean = %g, want +Inf", m)
	}
}

func TestParetoWithMean(t *testing.T) {
	src := New(6)
	const target = 10.0
	p := ParetoWithMean(1.8, target)
	if math.Abs(p.Mean()-target) > 1e-9 {
		t.Fatalf("ParetoWithMean analytic mean = %g, want %g", p.Mean(), target)
	}
	// alpha=1.8 has infinite variance so the sample mean converges
	// slowly; allow a generous band.
	mean := sampleMean(p, src, 2000000)
	if math.Abs(mean-target)/target > 0.15 {
		t.Errorf("ParetoWithMean sample mean %g, want roughly %g", mean, target)
	}
}

func TestParetoWithMeanPanicsOnHeavyAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ParetoWithMean(1.0, ...) did not panic")
		}
	}()
	ParetoWithMean(1.0, 5)
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	src := New(7)
	b := NewBoundedPareto(1.2, 1, 1000)
	for i := 0; i < 200000; i++ {
		v := b.Sample(src)
		if v < 1 || v > 1000 {
			t.Fatalf("bounded Pareto sample %g outside [1,1000]", v)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	src := New(8)
	b := NewBoundedPareto(1.5, 2, 500)
	mean := sampleMean(b, src, 500000)
	if math.Abs(mean-b.Mean())/b.Mean() > 0.05 {
		t.Errorf("bounded Pareto sample mean %g, want ~%g", mean, b.Mean())
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	z := NewZipf(100, 1.1)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf probabilities sum to %g, want 1", sum)
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z := NewZipf(50, 0.9)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Zipf probability not monotone at rank %d: %g > %g", i, z.Prob(i), z.Prob(i-1))
		}
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	src := New(9)
	z := NewZipf(20, 1.0)
	const draws = 200000
	counts := make([]int, z.N())
	for i := 0; i < draws; i++ {
		r := z.Sample(src)
		if r < 0 || r >= z.N() {
			t.Fatalf("Zipf sample %d out of range", r)
		}
		counts[r]++
	}
	for i := range counts {
		want := z.Prob(i) * draws
		if want < 50 {
			continue // too rare for a tight frequency check
		}
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: count %d deviates from expected %.0f", i, counts[i], want)
		}
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < z.N(); i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("Zipf(s=0) rank %d prob %g, want 0.1", i, z.Prob(i))
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	src := New(10)
	c := NewCategorical([]float64{1, 0, 3})
	const draws = 100000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[c.Sample(src)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight-3/weight-1 draw ratio = %g, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"all zero": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCategorical(%s) did not panic", name)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestDistSamplesAlwaysFinite(t *testing.T) {
	src := New(11)
	dists := []Dist{
		NewUniform(0, 1),
		NewExponential(3),
		NewPareto(1.5, 0.1),
		NewBoundedPareto(1.1, 0.5, 100),
	}
	f := func(seed uint32) bool {
		s := src.Stream(string(rune(seed)))
		for _, d := range dists {
			v := d.Sample(s)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
