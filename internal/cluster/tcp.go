package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anurand/internal/delegate"
	"anurand/internal/metrics"
)

// TCPOptions tunes the TCP transport.
type TCPOptions struct {
	// Addr is the listen address. Default "127.0.0.1:0".
	Addr string
	// DialTimeout bounds connection establishment to a peer.
	DialTimeout time.Duration
	// WriteTimeout bounds one framed write.
	WriteTimeout time.Duration
	// IdleTimeout closes inbound connections with no traffic.
	IdleTimeout time.Duration
	// MaxRetries is how many times a failed write is retried (with
	// exponential backoff and jitter) before giving up.
	MaxRetries int
	// BackoffBase is the first retry delay; each retry doubles it.
	BackoffBase time.Duration
	// BackoffMax caps the retry delay.
	BackoffMax time.Duration
	// MaxPayload bounds accepted frame payloads.
	MaxPayload int
	// RecvBuffer is the capacity of the inbound message channel.
	RecvBuffer int
	// SendQueue is the per-peer outbound queue depth. A full queue
	// fails SendAsync (counted as a queue drop) and blocks Send —
	// backpressure for the synchronous path, bounded loss for the
	// fan-out path.
	SendQueue int
}

// DefaultTCPOptions returns production-shaped defaults scaled for
// loopback tests.
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{
		Addr:         "127.0.0.1:0",
		DialTimeout:  500 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
		IdleTimeout:  2 * time.Minute,
		MaxRetries:   2,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		MaxPayload:   1 << 20,
		RecvBuffer:   1024,
		SendQueue:    256,
	}
}

// TCPStats is an operator snapshot of one transport's activity.
type TCPStats struct {
	Sent, SendErrors uint64
	Dials, Retries   uint64
	FramesReceived   uint64
	// BadVersionFrames counts inbound frames rejected for a foreign
	// frame version — a peer running an incompatible protocol build
	// (e.g. a v2 node dialing a v3 cluster). Each rejection also drops
	// that stream: version skew is a config error, not noise.
	BadVersionFrames uint64
	// QueueFullDrops counts SendAsync messages dropped because a
	// peer's bounded send queue was full (or the transport was
	// closed). QueueDropsByPeer breaks the per-peer drops out, so a
	// single wedged peer is identifiable at a glance; only peers with
	// drops appear.
	QueueFullDrops     uint64
	QueueDropsByPeer   map[delegate.NodeID]uint64
	SendLatencySeconds metrics.Summary
}

// smallFrame bounds payloads coalesced with the header into a writer's
// pooled buffer (one small write, no allocation). Larger payloads —
// placement snapshots — go out as a vectored write (net.Buffers) so
// the bytes the runtime broadcasts are never re-copied per peer.
const smallFrame = 4 << 10

// frameWriter is the per-connection write state: a header scratch for
// the empty-payload fast path, a pooled coalescing buffer for small
// frames, and a reusable two-element vector for writev of large ones.
// It is owned by exactly one writer goroutine, which is what makes a
// multi-write large frame safe: no concurrent sender can interleave
// bytes into the stream between its chunks.
type frameWriter struct {
	hdr [frameHeaderLen]byte
	buf []byte
	vec [2][]byte
}

// writeTo writes one frame to conn. Empty payloads (heartbeats, the
// dominant message kind) touch only the header scratch: zero
// allocations, one small write.
func (fw *frameWriter) writeTo(conn net.Conn, msg delegate.Message) error {
	if len(msg.Payload) == 0 {
		putFrameHeader(fw.hdr[:], msg)
		_, err := conn.Write(fw.hdr[:])
		return err
	}
	if len(msg.Payload) <= smallFrame {
		if fw.buf == nil {
			fw.buf = make([]byte, 0, frameHeaderLen+smallFrame)
		}
		fw.buf = appendFrame(fw.buf[:0], msg)
		_, err := conn.Write(fw.buf)
		return err
	}
	putFrameHeader(fw.hdr[:], msg)
	fw.vec[0], fw.vec[1] = fw.hdr[:], msg.Payload
	bufs := net.Buffers(fw.vec[:])
	_, err := bufs.WriteTo(conn)
	fw.vec[0], fw.vec[1] = nil, nil
	return err
}

// outFrame is one queued outbound message. errc is non-nil for
// synchronous Send, which waits for the writer's verdict; fire-and-
// forget SendAsync leaves it nil so enqueueing a heartbeat allocates
// nothing.
type outFrame struct {
	msg  delegate.Message
	errc chan error
}

// tcpPeer is the outbound lane to one peer: a bounded queue drained by
// a dedicated writer goroutine that owns the pooled connection.
type tcpPeer struct {
	to    delegate.NodeID
	queue chan outFrame
	drops atomic.Uint64
}

// TCPTransport implements Transport over TCP with one writer goroutine
// and one pooled outbound connection per peer. Sends enqueue to the
// destination's bounded queue; the writer dials lazily, retries broken
// streams on a fresh dial with exponential backoff and jitter (reusing
// one timer across backoffs), and is the only goroutine that touches
// the connection — so concurrent senders can never interleave frame
// bytes, and a dead peer's backoff stalls only that peer's lane.
// SendAsync is the fan-out path: non-blocking, with queue-full drops
// counted per peer. Send keeps the synchronous contract: it returns
// once the frame was handed to the kernel (or definitively failed).
type TCPTransport struct {
	id   delegate.NodeID
	book *AddressBook
	opts TCPOptions
	ln   net.Listener
	recv chan delegate.Message
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	peers   map[delegate.NodeID]*tcpPeer
	conns   map[delegate.NodeID]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool

	// Counters are atomics: at fan-out scale every send from every
	// writer bumps them, and a shared mutex here would re-serialize
	// exactly the path the per-peer writers decouple.
	sent       atomic.Uint64
	sendErr    atomic.Uint64
	dials      atomic.Uint64
	retries    atomic.Uint64
	frames     atomic.Uint64
	badVer     atomic.Uint64
	queueDrops atomic.Uint64
	jitter     atomic.Uint64

	latMu   sync.Mutex
	sendLat metrics.Summary
}

// ListenTCP starts a transport listening for peers and registers its
// address in the book.
func ListenTCP(id delegate.NodeID, book *AddressBook, opts TCPOptions) (*TCPTransport, error) {
	if opts.Addr == "" {
		opts = DefaultTCPOptions()
	}
	if opts.SendQueue <= 0 {
		opts.SendQueue = 256
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d listen: %w", id, err)
	}
	t := &TCPTransport{
		id:      id,
		book:    book,
		opts:    opts,
		ln:      ln,
		recv:    make(chan delegate.Message, opts.RecvBuffer),
		done:    make(chan struct{}),
		peers:   make(map[delegate.NodeID]*tcpPeer),
		conns:   make(map[delegate.NodeID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.jitter.Store(uint64(id)*0x9e3779b97f4a7c15 + 1)
	book.Set(id, ln.Addr().String())
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Recv implements Transport.
func (t *TCPTransport) Recv() <-chan delegate.Message { return t.recv }

// jitterFloat draws a uniform [0,1) variate from a lock-free splitmix64
// stream, so retrying writers never serialize on a shared RNG lock.
func (t *TCPTransport) jitterFloat() float64 {
	x := t.jitter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// peerFor returns the outbound lane to a peer, spawning its writer on
// first use; nil after Close.
func (t *TCPTransport) peerFor(to delegate.NodeID) *tcpPeer {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	p, ok := t.peers[to]
	if !ok {
		p = &tcpPeer{to: to, queue: make(chan outFrame, t.opts.SendQueue)}
		t.peers[to] = p
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	t.mu.Unlock()
	return p
}

// Send implements Transport: it enqueues the frame on the peer's lane
// and waits for the writer's verdict. A full queue applies backpressure
// (the call blocks until the writer drains); an error means the message
// was not handed to the kernel for that peer.
func (t *TCPTransport) Send(msg delegate.Message) error {
	start := time.Now()
	p := t.peerFor(msg.To)
	if p == nil {
		t.sendErr.Add(1)
		return fmt.Errorf("cluster: node %d: transport closed", t.id)
	}
	f := outFrame{msg: msg, errc: make(chan error, 1)}
	select {
	case p.queue <- f:
	case <-t.done:
		t.sendErr.Add(1)
		return fmt.Errorf("cluster: node %d: transport closed", t.id)
	}
	select {
	case err := <-f.errc:
		if err != nil {
			return err
		}
		t.latMu.Lock()
		t.sendLat.Add(time.Since(start).Seconds())
		t.latMu.Unlock()
		return nil
	case <-t.done:
		// The writer replies into the buffered errc regardless; this
		// caller just stops waiting for it.
		return fmt.Errorf("cluster: node %d: transport closed", t.id)
	}
}

// SendAsync implements AsyncTransport: non-blocking enqueue onto the
// peer's lane. False means the message was dropped — queue full or
// transport closed — which is counted, never an error: the runtime's
// gossip cadence re-sends, exactly as it would after wire loss. The
// enqueue itself is allocation-free, so heartbeat fan-out to N peers
// costs N channel sends and nothing else on the caller's goroutine.
func (t *TCPTransport) SendAsync(msg delegate.Message) bool {
	p := t.peerFor(msg.To)
	if p == nil {
		t.queueDrops.Add(1)
		return false
	}
	select {
	case p.queue <- outFrame{msg: msg}:
		return true
	default:
		p.drops.Add(1)
		t.queueDrops.Add(1)
		return false
	}
}

// writeLoop drains one peer's queue, owning its pooled connection and
// write state for the transport's lifetime.
func (t *TCPTransport) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var fw frameWriter
	// One reusable timer serves every backoff this writer ever takes;
	// time.After here would leak a timer allocation per retry.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer func() {
		if conn != nil {
			t.forgetConn(p.to, conn)
			conn.Close()
		}
	}()
	for {
		select {
		case <-t.done:
			t.failPending(p)
			return
		case f := <-p.queue:
			err := t.writeWithRetry(p.to, &conn, &fw, f.msg, timer)
			if err == nil {
				t.sent.Add(1)
			} else {
				t.sendErr.Add(1)
			}
			if f.errc != nil {
				f.errc <- err
			}
		}
	}
}

// failPending drains a closing peer's queue, answering synchronous
// senders and accounting the fire-and-forget frames as drops.
func (t *TCPTransport) failPending(p *tcpPeer) {
	for {
		select {
		case f := <-p.queue:
			if f.errc != nil {
				t.sendErr.Add(1)
				f.errc <- fmt.Errorf("cluster: node %d: transport closed", t.id)
			} else {
				p.drops.Add(1)
				t.queueDrops.Add(1)
			}
		default:
			return
		}
	}
}

// writeWithRetry writes one frame on the pooled connection, dialing as
// needed; a broken stream is dropped and retried on a fresh dial with
// exponential backoff and jitter.
func (t *TCPTransport) writeWithRetry(to delegate.NodeID, conn *net.Conn, fw *frameWriter, msg delegate.Message, timer *time.Timer) error {
	var lastErr error
	for attempt := 0; attempt <= t.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			t.retries.Add(1)
			backoff := t.opts.BackoffBase << (attempt - 1)
			if backoff > t.opts.BackoffMax {
				backoff = t.opts.BackoffMax
			}
			// Full jitter keeps a burst of retrying writers from
			// re-colliding in lockstep.
			backoff = time.Duration(float64(backoff) * (0.5 + 0.5*t.jitterFloat()))
			timer.Reset(backoff)
			select {
			case <-t.done:
				if !timer.Stop() {
					<-timer.C
				}
				return fmt.Errorf("cluster: node %d: transport closed", t.id)
			case <-timer.C:
			}
		}
		if *conn == nil {
			c, err := t.dial(to)
			if err != nil {
				lastErr = err
				continue
			}
			*conn = c
		}
		// A deadline that cannot be set means the socket is already
		// dead: drop it and redial rather than write into the void.
		if err := (*conn).SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)); err != nil {
			t.dropConn(to, conn)
			lastErr = err
			continue
		}
		if err := fw.writeTo(*conn, msg); err != nil {
			// The pooled stream is broken (peer restart, timeout);
			// drop it so the retry dials fresh.
			t.dropConn(to, conn)
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("cluster: node %d send to %d: %w", t.id, to, lastErr)
}

// dial opens and registers a fresh connection to a peer.
func (t *TCPTransport) dial(to delegate.NodeID) (net.Conn, error) {
	addr, ok := t.book.Get(to)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d: no address for peer %d", t.id, to)
	}
	conn, err := net.DialTimeout("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.dials.Add(1)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("cluster: node %d: transport closed", t.id)
	}
	t.conns[to] = conn
	t.mu.Unlock()
	return conn, nil
}

// dropConn closes and forgets a broken pooled connection.
func (t *TCPTransport) dropConn(to delegate.NodeID, conn *net.Conn) {
	t.forgetConn(to, *conn)
	(*conn).Close()
	*conn = nil
}

// forgetConn removes a connection from the registry Close uses to
// unblock writers.
func (t *TCPTransport) forgetConn(to delegate.NodeID, conn net.Conn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

// acceptLoop serves inbound peer connections until Close.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve reads frames off one inbound connection into the recv channel.
// The read state — header scratch and buffered reader — lives for the
// connection, so a stream of heartbeats is consumed at zero allocations
// and many small frames coalesce into one read syscall.
func (t *TCPTransport) serve(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	var head [frameHeaderLen]byte
	for {
		// A read deadline that cannot be set means the socket is dead;
		// reading it would hang forever, so drop the stream.
		if err := conn.SetReadDeadline(time.Now().Add(t.opts.IdleTimeout)); err != nil {
			return
		}
		msg, err := readFrameBuf(br, head[:], t.opts.MaxPayload)
		if err != nil {
			if errors.Is(err, errFrameVersion) {
				t.badVer.Add(1)
			}
			return // EOF, idle timeout, or a malformed frame: this stream is done
		}
		t.frames.Add(1)
		select {
		case t.recv <- msg:
		case <-t.done:
			return
		}
	}
}

// Close shuts the listener, per-peer writers, pooled connections and
// inbound streams, then closes the Recv channel.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, conn := range t.conns {
		conns = append(conns, conn)
	}
	for conn := range t.inbound {
		conns = append(conns, conn)
	}
	t.mu.Unlock()

	close(t.done)
	t.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	t.wg.Wait()
	close(t.recv)
	return nil
}

// Stats returns a snapshot of the transport's counters.
func (t *TCPTransport) Stats() TCPStats {
	t.latMu.Lock()
	lat := t.sendLat
	t.latMu.Unlock()
	s := TCPStats{
		Sent:               t.sent.Load(),
		SendErrors:         t.sendErr.Load(),
		Dials:              t.dials.Load(),
		Retries:            t.retries.Load(),
		FramesReceived:     t.frames.Load(),
		BadVersionFrames:   t.badVer.Load(),
		QueueFullDrops:     t.queueDrops.Load(),
		SendLatencySeconds: lat,
	}
	t.mu.Lock()
	for id, p := range t.peers {
		if d := p.drops.Load(); d > 0 {
			if s.QueueDropsByPeer == nil {
				s.QueueDropsByPeer = make(map[delegate.NodeID]uint64)
			}
			s.QueueDropsByPeer[id] = d
		}
	}
	t.mu.Unlock()
	return s
}
