package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anurand/internal/delegate"
	"anurand/internal/metrics"
	"anurand/internal/rng"
)

// TCPOptions tunes the TCP transport.
type TCPOptions struct {
	// Addr is the listen address. Default "127.0.0.1:0".
	Addr string
	// DialTimeout bounds connection establishment to a peer.
	DialTimeout time.Duration
	// WriteTimeout bounds one framed write.
	WriteTimeout time.Duration
	// IdleTimeout closes inbound connections with no traffic.
	IdleTimeout time.Duration
	// MaxRetries is how many times a failed Send is retried (with
	// exponential backoff and jitter) before giving up.
	MaxRetries int
	// BackoffBase is the first retry delay; each retry doubles it.
	BackoffBase time.Duration
	// BackoffMax caps the retry delay.
	BackoffMax time.Duration
	// MaxPayload bounds accepted frame payloads.
	MaxPayload int
	// RecvBuffer is the capacity of the inbound message channel.
	RecvBuffer int
}

// DefaultTCPOptions returns production-shaped defaults scaled for
// loopback tests.
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{
		Addr:         "127.0.0.1:0",
		DialTimeout:  500 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
		IdleTimeout:  2 * time.Minute,
		MaxRetries:   2,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		MaxPayload:   1 << 20,
		RecvBuffer:   1024,
	}
}

// TCPStats is an operator snapshot of one transport's activity.
type TCPStats struct {
	Sent, SendErrors uint64
	Dials, Retries   uint64
	FramesReceived   uint64
	// BadVersionFrames counts inbound frames rejected for a foreign
	// frame version — a peer running an incompatible protocol build
	// (e.g. a v2 node dialing a v3 cluster). Each rejection also drops
	// that stream: version skew is a config error, not noise.
	BadVersionFrames   uint64
	SendLatencySeconds metrics.Summary
}

// TCPTransport implements Transport over TCP with one pooled outbound
// connection per peer. A send that fails mid-stream drops the pooled
// connection and retries on a fresh dial with exponential backoff and
// jitter, so a peer restart costs at most one backoff cycle.
type TCPTransport struct {
	id   delegate.NodeID
	book *AddressBook
	opts TCPOptions
	ln   net.Listener
	recv chan delegate.Message
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	conns   map[delegate.NodeID]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool
	jitter  *rng.Source
	sent    uint64
	sendErr uint64
	dials   uint64
	retries uint64
	frames  uint64
	badVer  uint64
	sendLat metrics.Summary
}

// ListenTCP starts a transport listening for peers and registers its
// address in the book.
func ListenTCP(id delegate.NodeID, book *AddressBook, opts TCPOptions) (*TCPTransport, error) {
	if opts.Addr == "" {
		opts = DefaultTCPOptions()
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d listen: %w", id, err)
	}
	t := &TCPTransport{
		id:      id,
		book:    book,
		opts:    opts,
		ln:      ln,
		recv:    make(chan delegate.Message, opts.RecvBuffer),
		done:    make(chan struct{}),
		conns:   make(map[delegate.NodeID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		jitter:  rng.New(uint64(id)*0x9e3779b97f4a7c15 + 1),
	}
	book.Set(id, ln.Addr().String())
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Recv implements Transport.
func (t *TCPTransport) Recv() <-chan delegate.Message { return t.recv }

// Send implements Transport: it writes the frame on the pooled
// connection to the destination, dialing (and retrying with backoff)
// as needed. Returning an error means the message was not handed to
// the kernel for that peer.
func (t *TCPTransport) Send(msg delegate.Message) error {
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= t.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			t.mu.Lock()
			t.retries++
			backoff := t.opts.BackoffBase << (attempt - 1)
			if backoff > t.opts.BackoffMax {
				backoff = t.opts.BackoffMax
			}
			// Full jitter keeps a burst of retrying senders from
			// re-colliding in lockstep.
			backoff = time.Duration(float64(backoff) * (0.5 + 0.5*t.jitter.Float64()))
			t.mu.Unlock()
			select {
			case <-t.done:
				return fmt.Errorf("cluster: node %d: transport closed", t.id)
			case <-time.After(backoff):
			}
		}
		conn, err := t.getConn(msg.To)
		if err != nil {
			lastErr = err
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
		if err := writeFrame(conn, msg); err != nil {
			// The pooled stream is broken (peer restart, timeout);
			// drop it so the retry dials fresh.
			t.dropConn(msg.To, conn)
			lastErr = err
			continue
		}
		t.mu.Lock()
		t.sent++
		t.sendLat.Add(time.Since(start).Seconds())
		t.mu.Unlock()
		return nil
	}
	t.mu.Lock()
	t.sendErr++
	t.mu.Unlock()
	return fmt.Errorf("cluster: node %d send to %d: %w", t.id, msg.To, lastErr)
}

// getConn returns the pooled connection to a peer, dialing if none.
func (t *TCPTransport) getConn(to delegate.NodeID) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %d: transport closed", t.id)
	}
	if conn, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()

	addr, ok := t.book.Get(to)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d: no address for peer %d", t.id, to)
	}
	conn, err := net.DialTimeout("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dials++
	if t.closed {
		conn.Close()
		return nil, fmt.Errorf("cluster: node %d: transport closed", t.id)
	}
	if pooled, ok := t.conns[to]; ok {
		// A concurrent sender won the dial race; use its connection.
		conn.Close()
		return pooled, nil
	}
	t.conns[to] = conn
	return conn, nil
}

// dropConn removes a broken pooled connection.
func (t *TCPTransport) dropConn(to delegate.NodeID, conn net.Conn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	conn.Close()
}

// acceptLoop serves inbound peer connections until Close.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve reads frames off one inbound connection into the recv channel.
func (t *TCPTransport) serve(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	for {
		conn.SetReadDeadline(time.Now().Add(t.opts.IdleTimeout))
		msg, err := readFrame(conn, t.opts.MaxPayload)
		if err != nil {
			if errors.Is(err, errFrameVersion) {
				t.mu.Lock()
				t.badVer++
				t.mu.Unlock()
			}
			return // EOF, idle timeout, or a malformed frame: this stream is done
		}
		t.mu.Lock()
		t.frames++
		t.mu.Unlock()
		select {
		case t.recv <- msg:
		case <-t.done:
			return
		}
	}
}

// Close shuts the listener, pooled connections and inbound streams,
// then closes the Recv channel.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[delegate.NodeID]net.Conn)
	inbound := make([]net.Conn, 0, len(t.inbound))
	for conn := range t.inbound {
		inbound = append(inbound, conn)
	}
	t.mu.Unlock()

	close(t.done)
	t.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	for _, conn := range inbound {
		conn.Close()
	}
	t.wg.Wait()
	close(t.recv)
	return nil
}

// Stats returns a snapshot of the transport's counters.
func (t *TCPTransport) Stats() TCPStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TCPStats{
		Sent:               t.sent,
		SendErrors:         t.sendErr,
		Dials:              t.dials,
		Retries:            t.retries,
		FramesReceived:     t.frames,
		BadVersionFrames:   t.badVer,
		SendLatencySeconds: t.sendLat,
	}
}
