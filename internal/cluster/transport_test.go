package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"anurand/internal/delegate"
)

func TestFrameRoundTrip(t *testing.T) {
	in := delegate.Message{
		Kind:    delegate.MsgMap,
		From:    3,
		To:      1,
		Flags:   FlagMigrating | 0x80,
		Epoch:   0xfedcba9876543210,
		Round:   math64(),
		Payload: []byte("payload bytes"),
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.From != in.From || out.To != in.To || out.Epoch != in.Epoch || out.Round != in.Round || out.Flags != in.Flags {
		t.Fatalf("header round trip %+v -> %+v", in, out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload round trip %q -> %q", in.Payload, out.Payload)
	}
}

func TestFrameRejectsWrongVersion(t *testing.T) {
	for _, ver := range []byte{1, 2, 4, 0xff} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, delegate.Message{Kind: delegate.MsgReport, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		raw[0] = ver // an old-protocol peer (or garbage) on the wire
		_, err := readFrame(bytes.NewReader(raw), 1<<10)
		if err == nil {
			t.Fatalf("frame version %d accepted", ver)
		}
		if !errors.Is(err, errFrameVersion) {
			t.Fatalf("version %d: err = %v, want errFrameVersion", ver, err)
		}
	}
}

// TestFrameRejectsV2Layout feeds readFrame a frame built with the old
// v2 layout (no flags byte) — the interop case the version byte exists
// for. The frame must be rejected as a version error, never
// misinterpreted.
func TestFrameRejectsV2Layout(t *testing.T) {
	payload := []byte("v2 payload")
	v2 := make([]byte, 30+len(payload))
	v2[0] = 2
	v2[1] = byte(delegate.MsgMap)
	binary.LittleEndian.PutUint32(v2[2:6], 3)
	binary.LittleEndian.PutUint32(v2[6:10], 1)
	binary.LittleEndian.PutUint64(v2[10:18], 7)
	binary.LittleEndian.PutUint64(v2[18:26], 9)
	binary.LittleEndian.PutUint32(v2[26:30], uint32(len(payload)))
	copy(v2[30:], payload)
	if _, err := readFrame(bytes.NewReader(v2), 1<<10); !errors.Is(err, errFrameVersion) {
		t.Fatalf("v2 frame: err = %v, want errFrameVersion", err)
	}
}

// math64 returns a round value exercising all eight bytes.
func math64() uint64 { return 0x0123456789abcdef }

func TestFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	msg := delegate.Message{Kind: delegate.MsgReport, Payload: make([]byte, 64)}
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(&buf, 16); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameShortRead(t *testing.T) {
	if _, err := readFrame(bytes.NewReader([]byte{1, 2, 3}), 1<<10); err == nil {
		t.Fatal("truncated header accepted")
	}
	var buf bytes.Buffer
	msg := delegate.Message{Kind: delegate.MsgReport, Payload: []byte("abcdef")}
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := readFrame(bytes.NewReader(trunc), 1<<10); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestAddressBook(t *testing.T) {
	book := NewAddressBook()
	if _, ok := book.Get(1); ok {
		t.Fatal("empty book resolved an address")
	}
	book.Set(1, "127.0.0.1:1000")
	book.Set(2, "127.0.0.1:2000")
	book.Set(1, "127.0.0.1:1001") // re-registration (restart on a new port)
	if addr, ok := book.Get(1); !ok || addr != "127.0.0.1:1001" {
		t.Fatalf("Get(1) = %q/%v", addr, ok)
	}
	all := book.All()
	if len(all) != 2 || all[2] != "127.0.0.1:2000" {
		t.Fatalf("All() = %v", all)
	}
}
