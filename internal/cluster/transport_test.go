package cluster

import (
	"bytes"
	"testing"

	"anurand/internal/delegate"
)

func TestFrameRoundTrip(t *testing.T) {
	in := delegate.Message{
		Kind:    delegate.MsgMap,
		From:    3,
		To:      1,
		Epoch:   0xfedcba9876543210,
		Round:   math64(),
		Payload: []byte("payload bytes"),
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.From != in.From || out.To != in.To || out.Epoch != in.Epoch || out.Round != in.Round {
		t.Fatalf("header round trip %+v -> %+v", in, out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload round trip %q -> %q", in.Payload, out.Payload)
	}
}

func TestFrameRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, delegate.Message{Kind: delegate.MsgReport, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = 1 // a v1 peer (or garbage) on the wire
	if _, err := readFrame(bytes.NewReader(raw), 1<<10); err == nil {
		t.Fatal("wrong frame version accepted")
	}
}

// math64 returns a round value exercising all eight bytes.
func math64() uint64 { return 0x0123456789abcdef }

func TestFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	msg := delegate.Message{Kind: delegate.MsgReport, Payload: make([]byte, 64)}
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(&buf, 16); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameShortRead(t *testing.T) {
	if _, err := readFrame(bytes.NewReader([]byte{1, 2, 3}), 1<<10); err == nil {
		t.Fatal("truncated header accepted")
	}
	var buf bytes.Buffer
	msg := delegate.Message{Kind: delegate.MsgReport, Payload: []byte("abcdef")}
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := readFrame(bytes.NewReader(trunc), 1<<10); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestAddressBook(t *testing.T) {
	book := NewAddressBook()
	if _, ok := book.Get(1); ok {
		t.Fatal("empty book resolved an address")
	}
	book.Set(1, "127.0.0.1:1000")
	book.Set(2, "127.0.0.1:2000")
	book.Set(1, "127.0.0.1:1001") // re-registration (restart on a new port)
	if addr, ok := book.Get(1); !ok || addr != "127.0.0.1:1001" {
		t.Fatalf("Get(1) = %q/%v", addr, ok)
	}
	all := book.All()
	if len(all) != 2 || all[2] != "127.0.0.1:2000" {
		t.Fatalf("All() = %v", all)
	}
}
