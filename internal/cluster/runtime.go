package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/hashx"
	"anurand/internal/journal"
	"anurand/internal/migrate"
	"anurand/internal/placement"
)

// maxMailbox bounds buffered protocol messages so a confused peer
// spraying reports cannot grow memory without bound.
const maxMailbox = 4096

// Runtime runs one node of the delegate protocol on the wall clock.
//
// Round pacing: the elected delegate advances the round on its own
// timer and announces it through heartbeats (which carry the sender's
// round); followers never advance the shared round themselves — they
// adopt any newer round observed on the wire and immediately sample
// and report. This keeps all live nodes stamping the same round
// without a global clock, and makes round numbers monotonic gossip
// that survives re-elections: a new delegate continues from the
// highest round it observed.
type Runtime struct {
	cfg Config
	tr  Transport
	// atr is tr's non-blocking fan-out path when it has one, nil
	// otherwise; resolved once at Start. All runtime gossip prefers it:
	// a broadcast becomes N bounded enqueues instead of N synchronous
	// writes, so one slow or dead peer can never stall the rest of a
	// round's fan-out.
	atr  AsyncTransport
	stop chan struct{}
	wg   sync.WaitGroup

	// sendDrops counts messages the async fan-out path dropped
	// (per-peer queue full or transport closed). Atomic: drops are
	// noted on the send path, outside mu.
	sendDrops atomic.Uint64

	// placement is the node's data plane: an immutable snapshot of the
	// installed placement strategy, republished whenever the protocol
	// installs or produces a new placement. Request routing (Lookup,
	// LookupBatch) reads it without touching mu, so the protocol's lock
	// never stalls the serving path.
	placement atomic.Pointer[placement.Strategy]

	mu           sync.Mutex
	node         *delegate.Node
	outbox       []delegate.Message // staged under mu, sent outside it
	mbox         []delegate.Message // inbound protocol messages for the node
	lastSeen     map[delegate.NodeID]time.Time
	suspectUntil map[delegate.NodeID]time.Time
	// epoch is the view epoch: bumped when this node takes over as
	// delegate, adopted from any higher epoch observed on the wire, and
	// stamped into every outbound message. Together with the round it
	// fences installs — see package delegate.
	epoch      uint64
	round      uint64
	roundStart time.Time
	// journalStage holds records (placements and migration phases, in
	// order) staged for the journal under mu and appended (fsynced)
	// outside it; Journal.Append's own monotone guard keeps racing
	// flushes safe.
	journalStage []journal.Record
	recovered    *journal.Record // the record Start resumed from, if any
	lastMapTime  time.Time
	curDelegate  delegate.NodeID
	stopped      bool
	counters     counters

	// mig is the live strategy migration in flight on this node, nil
	// when idle; migLinger is the leader's post-commit catch-up window.
	// See migrate.go for the state machine.
	mig       *migration
	migLinger *migrationLinger
	migSeq    uint64
	// recoveredMig names the migration phase Start resumed (or
	// recognised as committed) from the journal, "" when none.
	recoveredMig string
	// delegateMigrating mirrors the FlagMigrating bit last gossiped by
	// the current delegate — informational only.
	delegateMigrating bool
}

// nodeTransport adapts the runtime's mailbox to delegate.Transport.
// Every delegate.Node method runs with r.mu held, so the unguarded
// slice accesses here are serialized by that lock.
type nodeTransport struct{ r *Runtime }

func (nt nodeTransport) Send(msg delegate.Message) {
	nt.r.outbox = append(nt.r.outbox, msg)
}

func (nt nodeTransport) Deliver(to delegate.NodeID) []delegate.Message {
	msgs := nt.r.mbox
	nt.r.mbox = nil
	return msgs
}

// Start brings up a runtime on the given transport and begins
// heartbeating and round-driving immediately.
//
// With a configured Journal, Start recovers the journal's newest
// placement record and resumes from it: the persisted map replaces
// cfg.Snapshot as the bootstrap placement, and the node's install
// fence and the runtime's epoch and round resume at the persisted
// (epoch, round) — the restart rejoins where it crashed instead of
// replaying the seed placement. A journaled map that no longer decodes
// is an error, never a silent fallback: the journal's CRC framing
// already rejected disk damage, so an undecodable record means the
// operator pointed the node at the wrong file.
//
// The journal's newest migration record refines that picture (the
// exact phase a crash interrupted — see migrate.go for the recovery
// table): an in-flight Proposed or DualTag phase resumes so the
// cluster's leader retry or the rollback watchdog settles it, a
// journaled cutover to a new strategy boots the new strategy even
// though cfg.Strategy still names the old one, and a terminal record
// behind the placement is history.
func Start(cfg Config, tr Transport) (*Runtime, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:          cfg,
		tr:           tr,
		stop:         make(chan struct{}),
		lastSeen:     make(map[delegate.NodeID]time.Time),
		suspectUntil: make(map[delegate.NodeID]time.Time),
		curDelegate:  -1,
	}
	r.atr, _ = tr.(AsyncTransport)
	r.counters.InstallLatencyHist = latencyHistogram()
	r.counters.SampleLatencyHist = latencyHistogram()
	r.counters.MigratePhaseLatencyHist = latencyHistogram()
	r.counters.MigrateLatencyHist = latencyHistogram()
	snapshot := cfg.Snapshot
	if tag, terr := placement.Tag(snapshot); terr != nil {
		return nil, fmt.Errorf("cluster: node %d: bootstrap snapshot: %w", cfg.ID, terr)
	} else if tag != cfg.Strategy {
		return nil, fmt.Errorf("cluster: node %d: bootstrap snapshot carries strategy %q, configured %q", cfg.ID, tag, cfg.Strategy)
	}
	var resumeMig *migrate.Record
	if cfg.Journal != nil {
		plcRec, havePlc := cfg.Journal.LastPlacement()
		migRaw, haveMig := cfg.Journal.LastMigration()
		var migRec migrate.Record
		if haveMig {
			// The CRC framing already accepted these bytes, so a decode
			// failure means a software mismatch, not disk damage: loud
			// error, never a guessed phase.
			mr, merr := migrate.Decode(migRaw.Map)
			if merr != nil {
				return nil, fmt.Errorf("cluster: node %d: journaled migration record unusable: %w", cfg.ID, merr)
			}
			migRec = mr
		}
		switch {
		case havePlc:
			tag, terr := placement.Tag(plcRec.Map)
			if terr != nil {
				return nil, fmt.Errorf("cluster: node %d: journaled placement unusable: %w", cfg.ID, terr)
			}
			migNewer := haveMig && migRaw.Supersedes(plcRec)
			switch {
			case tag == cfg.Strategy:
				snapshot = plcRec.Map
				r.recovered = &plcRec
				r.epoch, r.round = plcRec.Epoch, plcRec.Round
				if haveMig && migRec.From == cfg.Strategy && migRec.Phase != migrate.Aborted {
					// The crash interrupted a migration after its last
					// durable phase record: resume that phase (a journaled
					// Committed whose placement append was lost resumes as
					// a dual-tag catch-up window — see resumeMigration).
					// The placement tail is usually NEWER than the phase
					// record — the old strategy keeps tuning and journaling
					// installs throughout the dual-tag window — so the fence
					// comparison says nothing about liveness; what proves
					// the migration is still open is that the newest
					// migration record is non-terminal (commit and rollback
					// both journal a terminal record).
					resumeMig = &migRec
					if migNewer {
						r.epoch, r.round = migRaw.Epoch, migRaw.Round
					}
				}
			case haveMig && migRec.To == tag && (migRec.Phase == migrate.DualTag || migRec.Phase == migrate.Committed):
				// The journal's tail is a cutover this node durably passed
				// through before crashing: the placement carries the target
				// strategy, so boot it — cfg.Strategy still names the old
				// one and that is expected, not an operator mistake.
				cfg.Strategy = tag
				r.cfg.Strategy = tag
				snapshot = plcRec.Map
				r.recovered = &plcRec
				r.epoch, r.round = plcRec.Epoch, plcRec.Round
				if migNewer {
					r.epoch, r.round = migRaw.Epoch, migRaw.Round
				}
				r.recoveredMig = migrate.Committed.String()
				cfg.logf("node %d: journal records a committed migration %s -> %s; booting %q", cfg.ID, migRec.From, migRec.To, tag)
			case haveMig && migRec.From == tag && migRec.Phase.InFlight():
				// The placement tag names the SOURCE of an open migration:
				// an earlier cutover left cfg.Strategy stale (the journal,
				// not the config, tracks strategy across restarts) and the
				// crash landed mid-way through the next migration. Boot
				// what the journal serves and resume the phase.
				cfg.Strategy = tag
				r.cfg.Strategy = tag
				snapshot = plcRec.Map
				r.recovered = &plcRec
				r.epoch, r.round = plcRec.Epoch, plcRec.Round
				if migNewer {
					r.epoch, r.round = migRaw.Epoch, migRaw.Round
				}
				resumeMig = &migRec
				cfg.logf("node %d: journal serves %q with an open migration %s -> %s; resuming", cfg.ID, tag, migRec.From, migRec.To)
			default:
				// A journaled placement from a different strategy with no
				// migration explaining it is rejected, not adopted: the
				// operator either pointed the node at the wrong journal or
				// changed Config.Strategy without wiping durable state.
				return nil, fmt.Errorf("cluster: node %d: journaled placement carries strategy %q, configured %q", cfg.ID, tag, cfg.Strategy)
			}
		case haveMig:
			// Migration records but no placement yet (the journal was
			// compacted down to an in-flight migration, or the node
			// crashed before its first install): bootstrap from
			// cfg.Snapshot and resume the phase.
			if migRec.Phase.InFlight() && migRec.From == cfg.Strategy {
				resumeMig = &migRec
				r.epoch, r.round = migRaw.Epoch, migRaw.Round
			}
		}
	}
	node, err := delegate.NewNodeWithOptions(cfg.ID, snapshot, cfg.placementOptions(), nodeTransport{r})
	if err != nil {
		if r.recovered != nil {
			return nil, fmt.Errorf("cluster: node %d: journaled placement unusable: %w", cfg.ID, err)
		}
		return nil, err
	}
	if r.recovered != nil {
		node.Resume(r.recovered.Epoch, r.recovered.Round)
		cfg.logf("node %d: resumed from journal at epoch %d round %d", cfg.ID, r.recovered.Epoch, r.recovered.Round)
	}
	r.node = node
	now := time.Now()
	if resumeMig != nil {
		r.resumeMigration(*resumeMig, now)
	}
	s := node.Placement().Clone()
	r.placement.Store(&s)
	r.roundStart, r.lastMapTime = now, now
	r.wg.Add(3)
	go r.recvLoop()
	go r.heartbeatLoop()
	go r.roundLoop()
	return r, nil
}

// Stop halts the runtime and closes its transport. It is idempotent.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stop)
	r.tr.Close()
	r.wg.Wait()
}

// recvLoop dispatches inbound messages until the transport or runtime
// stops.
func (r *Runtime) recvLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case msg, ok := <-r.tr.Recv():
			if !ok {
				return
			}
			r.handle(msg)
		}
	}
}

// handle processes one inbound message: liveness bookkeeping, protocol
// routing, and epoch/round gossip.
func (r *Runtime) handle(msg delegate.Message) {
	now := time.Now()
	r.mu.Lock()
	r.lastSeen[msg.From] = now
	// Epoch gossip: the view epoch is a cluster-wide maximum carried on
	// every message, so a node that slept through a re-election learns
	// the new epoch from the first heartbeat it receives.
	if msg.Epoch > r.epoch {
		r.epoch = msg.Epoch
	}
	// Migration gossip: mirror the delegate's FlagMigrating bit so
	// operators can watch a cutover propagate through Stats.
	if msg.From == r.curDelegate {
		r.delegateMigrating = msg.Flags&FlagMigrating != 0
	}
	switch msg.Kind {
	case MsgHeartbeat:
		r.counters.HeartbeatsReceived++
	case delegate.MsgReport:
		r.counters.ReportsReceived++
		r.enqueueLocked(msg)
	case delegate.MsgMap:
		r.enqueueLocked(msg)
		applied := r.collectLocked(now)
		if applied {
			r.counters.MapsInstalled++
			r.lastMapTime = now
			install := now.Sub(r.roundStart).Seconds()
			r.counters.InstallLatency.Add(install)
			r.counters.InstallLatencyHist.Add(install)
			r.publishPlacementLocked()
		}
	case MsgMigratePropose, MsgMigrateWarm, MsgMigrateCommit, MsgMigrateAbort, MsgMigrateAck:
		r.handleMigrateLocked(msg, now)
	default:
		// Unknown kinds are dropped at the runtime boundary; the
		// protocol node only ever sees MsgReport and MsgMap.
	}
	// Round gossip: adopt a newer round and report into it at once —
	// followers are paced by the delegate's announcements, not their
	// own timers. The report itself is sent by observeAndReport after
	// the lock is released, because sampling calls the user's observer.
	reportTo := delegate.NodeID(-1)
	var reportEpoch, reportRound uint64
	if msg.Round > r.round {
		r.round = msg.Round
		r.roundStart = now
		if del, ok := lowestID(r.viewLocked(now)); ok && del != r.cfg.ID {
			reportTo, reportEpoch, reportRound = del, r.epoch, r.round
		}
	}
	out := r.takeOutboxLocked()
	rec := r.takeJournalLocked()
	r.mu.Unlock()
	r.sendAll(out)
	r.flushJournal(rec)
	if reportTo >= 0 {
		r.observeAndReport(reportTo, reportEpoch, reportRound)
	}
}

// observeAndReport samples local performance and sends the report for
// the given round. The observer runs without the runtime lock — it may
// call back into Stats or the lookup path — so the report is only sent
// if the round is still current when the lock is retaken.
func (r *Runtime) observeAndReport(to delegate.NodeID, epoch, round uint64) {
	requests, latency := r.sample()
	r.mu.Lock()
	if r.stopped || r.round != round {
		r.mu.Unlock()
		return
	}
	r.node.Observe(requests, latency)
	r.counters.SampleLatencyHist.Add(latency)
	r.node.SendReport(to, epoch, round)
	r.counters.ReportsSent++
	out := r.takeOutboxLocked()
	r.mu.Unlock()
	r.sendAll(out)
}

// sample invokes the configured observer against the published
// placement snapshot, outside the runtime lock.
func (r *Runtime) sample() (requests uint64, meanLatencySeconds float64) {
	if r.cfg.Observe == nil {
		return 0, 0
	}
	return r.cfg.Observe(*r.placement.Load(), r.cfg.ID)
}

// enqueueLocked buffers a protocol message for the node, shedding the
// oldest backlog beyond maxMailbox.
func (r *Runtime) enqueueLocked(msg delegate.Message) {
	r.mbox = append(r.mbox, msg)
	if len(r.mbox) > maxMailbox {
		r.mbox = append([]delegate.Message(nil), r.mbox[len(r.mbox)-maxMailbox:]...)
	}
}

// heartbeatLoop beacons liveness (and the current round) to all peers.
func (r *Runtime) heartbeatLoop() {
	defer r.wg.Done()
	r.sendHeartbeats()
	tick := time.NewTicker(r.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.sendHeartbeats()
		}
	}
}

// sendHeartbeats beacons one heartbeat to every peer through the
// broadcast fan-out.
func (r *Runtime) sendHeartbeats() {
	r.mu.Lock()
	epoch, round := r.epoch, r.round
	flags := r.migFlagsLocked()
	r.counters.HeartbeatsSent += uint64(len(r.cfg.Members) - 1)
	r.mu.Unlock()
	r.broadcast(delegate.Message{Kind: MsgHeartbeat, Flags: flags, From: r.cfg.ID, Epoch: epoch, Round: round})
}

// roundLoop drives the wall-clock tuning cadence.
func (r *Runtime) roundLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.RoundInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.tick()
		}
	}
}

// tick runs one timer beat: election over the observed view, the
// round watchdog, and — when this node is the delegate — starting a
// new round.
func (r *Runtime) tick() {
	now := time.Now()
	r.mu.Lock()
	view := r.viewLocked(now)
	del, _ := lowestID(view) // view always contains self
	// Watchdog: heartbeats without placement maps are not progress.
	// If the delegate has produced nothing for WatchdogRounds
	// intervals, suspect it so election moves to the next id.
	watchdog := time.Duration(r.cfg.WatchdogRounds) * r.cfg.RoundInterval
	if del != r.cfg.ID && now.Sub(r.lastMapTime) > watchdog {
		r.suspectUntil[del] = now.Add(r.cfg.FailAfter)
		r.counters.WatchdogTrips++
		r.lastMapTime = now // restart the clock; suspect one rank at a time
		r.cfg.logf("node %d: watchdog: no map for %v, suspecting delegate %d", r.cfg.ID, watchdog, del)
		view = r.viewLocked(now)
		del, _ = lowestID(view)
	}
	if del != r.curDelegate {
		if r.curDelegate >= 0 {
			r.counters.Reelections++
			r.cfg.logf("node %d: delegate %d -> %d", r.cfg.ID, r.curDelegate, del)
		}
		if del == r.cfg.ID {
			// This node is taking over as delegate: open a new view
			// epoch so every map the previous delegate may still have
			// in flight is fenced out by (epoch, round) ordering.
			r.epoch++
		}
		r.curDelegate = del
	}
	isDelegate := del == r.cfg.ID
	r.migrateTickLocked(now)
	var epoch, round uint64
	if isDelegate {
		// This node paces the cluster: open the round, announce it to
		// peers, and tune after the grace window. The self-sample runs
		// after the lock is released (the observer may call back in).
		r.round++
		epoch, round = r.epoch, r.round
		r.roundStart = now
		flags := r.migFlagsLocked()
		for _, id := range r.cfg.Members {
			if id == r.cfg.ID {
				continue
			}
			r.outbox = append(r.outbox, delegate.Message{Kind: MsgHeartbeat, Flags: flags, From: r.cfg.ID, To: id, Epoch: epoch, Round: round})
		}
		r.counters.HeartbeatsSent += uint64(len(r.cfg.Members) - 1)
	}
	out := r.takeOutboxLocked()
	recs := r.takeJournalLocked()
	r.mu.Unlock()
	r.sendAll(out)
	r.flushJournal(recs)
	if !isDelegate {
		return
	}
	requests, latency := r.sample()
	r.mu.Lock()
	if r.stopped || r.round != round || r.epoch != epoch || r.curDelegate != r.cfg.ID {
		r.mu.Unlock()
		return // superseded while sampling
	}
	r.node.Observe(requests, latency)
	r.counters.SampleLatencyHist.Add(latency)
	// tick runs on the wg-counted roundLoop goroutine, so the counter
	// cannot reach zero before this Add.
	r.wg.Add(1)
	go r.tune(epoch, round)
	r.mu.Unlock()
}

// tune waits for a quorum of reports (or the grace deadline), then
// rescales and broadcasts as the round's delegate.
func (r *Runtime) tune(epoch, round uint64) {
	defer r.wg.Done()
	deadline := time.Now().Add(r.cfg.ReportGrace)
	poll := r.cfg.ReportGrace / 8
	if poll < 500*time.Microsecond {
		poll = 500 * time.Microsecond
	}
	for {
		now := time.Now()
		r.mu.Lock()
		if r.round != round || r.epoch != epoch || r.curDelegate != r.cfg.ID {
			r.mu.Unlock()
			return // superseded by a newer round, epoch, or re-election
		}
		if r.collectLocked(now) {
			r.publishPlacementLocked()
		}
		got := r.node.PendingReports() + 1 // + the delegate's own sample
		recs := r.takeJournalLocked()
		r.mu.Unlock()
		r.flushJournal(recs)
		if got >= r.cfg.Quorum || !time.Now().Before(deadline) {
			break
		}
		select {
		case <-r.stop:
			return
		case <-time.After(poll):
		}
	}
	now := time.Now()
	r.mu.Lock()
	if r.round != round || r.epoch != epoch || r.curDelegate != r.cfg.ID {
		r.mu.Unlock()
		return
	}
	if r.collectLocked(now) {
		r.publishPlacementLocked()
	}
	members := r.tuneMembersLocked(now)
	r.counters.ReportsPerTune.Add(float64(r.node.PendingReports() + 1))
	if err := r.node.RunDelegate(epoch, round, members); err != nil {
		r.cfg.logf("node %d: tune round %d: %v", r.cfg.ID, round, err)
	} else {
		r.counters.Tunes++
		r.lastMapTime = now
		r.publishPlacementLocked()
	}
	out := r.takeOutboxLocked()
	rec := r.takeJournalLocked()
	r.mu.Unlock()
	r.sendAll(out)
	r.flushJournal(rec)
}

// tuneMembersLocked chooses the member set the delegate tunes over:
// itself, every peer that reported this round, and every peer silent
// beyond FailAfter (which RunDelegate then marks failed, releasing its
// region to the survivors). A peer that is demonstrably alive but
// missed this report window is omitted — the controller treats it as
// idle instead of evicting it on one lost packet.
func (r *Runtime) tuneMembersLocked(now time.Time) []delegate.NodeID {
	reported := make(map[delegate.NodeID]bool)
	for _, id := range r.node.Reported() {
		reported[id] = true
	}
	members := make([]delegate.NodeID, 0, len(r.cfg.Members))
	for _, id := range r.cfg.Members {
		switch {
		case id == r.cfg.ID:
			members = append(members, id)
		case reported[id]:
			members = append(members, id)
		case now.Sub(r.lastSeen[id]) > r.cfg.FailAfter:
			members = append(members, id)
		}
	}
	return members
}

// viewLocked is the observed membership: self plus every peer heard
// from within FailAfter and not currently suspected by the watchdog.
func (r *Runtime) viewLocked(now time.Time) []delegate.NodeID {
	view := make([]delegate.NodeID, 0, len(r.cfg.Members))
	for _, id := range r.cfg.Members {
		if id == r.cfg.ID {
			view = append(view, id)
			continue
		}
		if until, ok := r.suspectUntil[id]; ok {
			if now.Before(until) {
				continue
			}
			delete(r.suspectUntil, id)
		}
		if seen, ok := r.lastSeen[id]; ok && now.Sub(seen) <= r.cfg.FailAfter {
			view = append(view, id)
		}
	}
	return view
}

// takeOutboxLocked drains staged outbound messages for sending
// outside the lock.
func (r *Runtime) takeOutboxLocked() []delegate.Message {
	out := r.outbox
	r.outbox = nil
	return out
}

// broadcast fans one message template out to every other member,
// stamping To per peer. On an AsyncTransport this is N bounded
// enqueues — the whole fan-out completes without blocking on any
// peer's socket.
func (r *Runtime) broadcast(msg delegate.Message) {
	for _, id := range r.cfg.Members {
		if id == r.cfg.ID {
			continue
		}
		msg.To = id
		r.sendOne(msg)
	}
}

// sendOne pushes one message to the transport: a non-blocking enqueue
// when the transport has an async lane, a synchronous Send otherwise.
// Failures are counted or logged, never fatal — an unreachable peer is
// indistinguishable from a lossy link, and a queue-full drop is healed
// by the protocol's own cadence (re-announced rounds, re-broadcast
// maps, migration retries) exactly like wire loss.
func (r *Runtime) sendOne(msg delegate.Message) {
	if r.atr != nil {
		if !r.atr.SendAsync(msg) {
			r.sendDrops.Add(1)
		}
		return
	}
	if err := r.tr.Send(msg); err != nil {
		r.cfg.logf("node %d: send to %d: %v", r.cfg.ID, msg.To, err)
	}
}

// sendAll pushes staged messages to the transport via sendOne.
func (r *Runtime) sendAll(msgs []delegate.Message) {
	for _, msg := range msgs {
		r.sendOne(msg)
	}
}

// lowestID returns the smallest id in view — the paper's election rule.
func lowestID(view []delegate.NodeID) (delegate.NodeID, bool) {
	if len(view) == 0 {
		return -1, false
	}
	best := view[0]
	for _, id := range view[1:] {
		if id < best {
			best = id
		}
	}
	return best, true
}

// ID returns the node's identity.
func (r *Runtime) ID() delegate.NodeID { return r.cfg.ID }

// Round returns the node's current round.
func (r *Runtime) Round() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.round
}

// Epoch returns the node's current view epoch.
func (r *Runtime) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// MapEpoch returns the view epoch of the installed map (monotonic).
func (r *Runtime) MapEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.MapEpoch()
}

// Delegate returns the node's current view of the delegate (-1 before
// the first election).
func (r *Runtime) Delegate() delegate.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curDelegate
}

// Fingerprint digests the node's replicated state for convergence
// checks.
func (r *Runtime) Fingerprint() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Fingerprint()
}

// MapRound returns the round of the installed map (monotonic).
func (r *Runtime) MapRound() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.MapRound()
}

// MapState returns the installed map's identity — view epoch, round,
// and fingerprint — as one atomic observation. Coherence monitors need
// the triple under a single lock acquisition: reading the three
// accessors separately can straddle an install and pair one map's
// round with its successor's fingerprint.
func (r *Runtime) MapState() (epoch, round, fingerprint uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.MapEpoch(), r.node.MapRound(), r.node.Fingerprint()
}

// publishPlacementLocked snapshots the node's current map into the
// lock-free data plane and, with a journal configured, stages the
// placement for a durable append. Must be called with r.mu held, after
// any protocol step that installed or produced a new placement. The
// clone is immutable once stored: readers share it, the protocol never
// touches it again.
func (r *Runtime) publishPlacementLocked() {
	s := r.node.Placement().Clone()
	r.placement.Store(&s)
	if r.cfg.Journal != nil {
		r.journalStage = append(r.journalStage, journal.Record{
			Epoch: r.node.MapEpoch(),
			Round: r.node.MapRound(),
			Map:   r.node.Placement().Encode(),
		})
	}
}

// takeJournalLocked drains the staged journal records for flushing
// outside the lock.
func (r *Runtime) takeJournalLocked() []journal.Record {
	recs := r.journalStage
	r.journalStage = nil
	return recs
}

// flushJournal appends staged records in order, fsyncing, outside the
// runtime lock so disk latency never stalls the protocol. Append's
// internal monotone guard makes concurrent flushes safe regardless of
// order; a failure is counted and logged — the in-memory placement is
// already live, so the node keeps serving and retries durability on
// the next install.
func (r *Runtime) flushJournal(recs []journal.Record) {
	for _, rec := range recs {
		if err := r.cfg.Journal.Append(rec); err != nil {
			r.cfg.logf("node %d: journal append (epoch %d round %d): %v", r.cfg.ID, rec.Epoch, rec.Round, err)
			r.mu.Lock()
			r.counters.JournalAppendErrors++
			r.mu.Unlock()
		}
	}
}

// Lookup routes a key on the node's current placement snapshot. It is
// the data-plane entry point: lock-free, it never contends with
// heartbeats, report collection, or tuning. The boolean is false only
// when every server in the placement has failed.
func (r *Runtime) Lookup(key string) (anu.ServerID, bool) {
	return (*r.placement.Load()).Lookup(key)
}

// LookupDigest is Lookup for a key pre-hashed with hashx.Prehash. Only
// digest-capable strategies (ANU) resolve it; others return false —
// digest callers are ANU fast-path callers by construction.
func (r *Runtime) LookupDigest(d hashx.Digest) (anu.ServerID, bool) {
	dl, ok := (*r.placement.Load()).(placement.DigestLookuper)
	if !ok {
		return anu.NoServer, false
	}
	id, _ := dl.LookupDigest(d)
	return id, id != anu.NoServer
}

// LookupBatch resolves keys[i] into owners[i] against one placement
// snapshot (a concurrent map install never splits a batch), returning
// the number of keys that resolved. Unresolved entries are set to
// anu.NoServer. owners must be at least as long as keys.
func (r *Runtime) LookupBatch(keys []string, owners []anu.ServerID) int {
	if len(owners) < len(keys) {
		panic(fmt.Sprintf("cluster: LookupBatch: %d owners for %d keys", len(owners), len(keys)))
	}
	return (*r.placement.Load()).LookupBatch(keys, owners)
}

// Placement returns a copy of the node's placement strategy.
func (r *Runtime) Placement() placement.Strategy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Placement().Clone()
}

// Strategy returns the registered tag of the node's placement strategy.
func (r *Runtime) Strategy() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Strategy()
}

// Map returns a copy of the node's ANU placement map, or nil when the
// node runs a non-ANU strategy.
func (r *Runtime) Map() *anu.Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.node.Map(); m != nil {
		return m.Clone()
	}
	return nil
}

// Snapshot returns the encoded placement — what a restarting peer
// bootstraps from. The bytes carry the strategy tag.
func (r *Runtime) Snapshot() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Placement().Encode()
}

// View returns the node's observed live membership.
func (r *Runtime) View() []delegate.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked(time.Now())
}

// String identifies the runtime in logs.
func (r *Runtime) String() string {
	return fmt.Sprintf("cluster.Runtime(node %d)", r.cfg.ID)
}
