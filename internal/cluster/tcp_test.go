package cluster

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"anurand/internal/delegate"
)

func testTCPPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	book := NewAddressBook()
	a, err := ListenTCP(1, book, DefaultTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP(2, book, DefaultTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

func recvOne(t *testing.T, tr *TCPTransport) delegate.Message {
	t.Helper()
	select {
	case msg := <-tr.Recv():
		return msg
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a message")
		return delegate.Message{}
	}
}

func TestTCPDeliversAndPoolsConnections(t *testing.T) {
	a, b := testTCPPair(t)
	const n = 25
	for i := 0; i < n; i++ {
		msg := delegate.Message{
			Kind:    delegate.MsgReport,
			From:    1,
			To:      2,
			Round:   uint64(i + 1),
			Payload: []byte{byte(i), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		}
		if err := a.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got := recvOne(t, b)
		if got.Round != uint64(i+1) || got.From != 1 {
			t.Fatalf("message %d arrived as %+v", i, got)
		}
	}
	stats := a.Stats()
	if stats.Dials != 1 {
		t.Fatalf("%d messages used %d dials, want 1 pooled connection", n, stats.Dials)
	}
	if stats.Sent != n || stats.SendErrors != 0 {
		t.Fatalf("sent=%d errors=%d", stats.Sent, stats.SendErrors)
	}
	if stats.SendLatencySeconds.N() != n {
		t.Fatalf("send latency summary has %d samples, want %d", stats.SendLatencySeconds.N(), n)
	}
}

func TestTCPSendUnknownPeerFails(t *testing.T) {
	a, _ := testTCPPair(t)
	if err := a.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 99}); err == nil {
		t.Fatal("send to unregistered peer succeeded")
	}
	if s := a.Stats(); s.SendErrors != 1 {
		t.Fatalf("SendErrors = %d, want 1", s.SendErrors)
	}
}

func TestTCPRetriesWithBackoffOnDeadPeer(t *testing.T) {
	book := NewAddressBook()
	opts := DefaultTCPOptions()
	opts.MaxRetries = 2
	opts.BackoffBase = time.Millisecond
	opts.DialTimeout = 50 * time.Millisecond
	a, err := ListenTCP(1, book, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// A peer that once existed and is now gone: listener closed, port dead.
	dead, err := ListenTCP(2, book, DefaultTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()
	if err := a.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if s := a.Stats(); s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
}

func TestTCPRecoversAfterPeerRestart(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP(1, book, DefaultTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, book, DefaultTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2, Round: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	// Peer restarts on a fresh port; the pooled connection is now dead.
	b.Close()
	b2, err := ListenTCP(2, book, DefaultTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// The first write on the stale pooled connection may be buffered
	// locally before the RST arrives, so (like a heartbeater) keep
	// sending: the broken stream is dropped and the retry redials the
	// re-registered address.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2, Round: 2}); err != nil {
			t.Logf("send after restart (retrying): %v", err)
		}
		select {
		case got := <-b2.Recv():
			if got.Round != 2 {
				t.Fatalf("got %+v after restart", got)
			}
			return
		case <-time.After(100 * time.Millisecond):
		}
		if !time.Now().Before(deadline) {
			t.Fatal("no message arrived after peer restart")
		}
	}
}

func TestTCPCloseIsIdempotentAndStopsSends(t *testing.T) {
	a, _ := testTCPPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2}); err == nil {
		t.Fatal("send on closed transport succeeded")
	}
}

// TestTCPRejectsOldProtocolPeer models a node from a previous build (v2
// frames, no flags byte) dialing a v3 cluster: the stream must be
// dropped at the first frame, nothing delivered, and the rejection
// surfaced in BadVersionFrames.
func TestTCPRejectsOldProtocolPeer(t *testing.T) {
	a, b := testTCPPair(t)
	addr, _ := a.book.Get(b.id)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("v2 map bytes")
	v2 := make([]byte, 30+len(payload))
	v2[0] = 2
	v2[1] = byte(delegate.MsgMap)
	binary.LittleEndian.PutUint32(v2[26:30], uint32(len(payload)))
	copy(v2[30:], payload)
	if _, err := conn.Write(v2); err != nil {
		t.Fatal(err)
	}
	// The stream must be closed by the receiver.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("receiver kept the old-protocol stream open")
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().BadVersionFrames == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("BadVersionFrames never incremented: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case msg := <-b.Recv():
		t.Fatalf("old-protocol frame delivered: %+v", msg)
	default:
	}
	// The v3 path still works on a fresh stream.
	if err := a.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
}
