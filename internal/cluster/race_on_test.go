//go:build race

package cluster

// raceEnabled reports whether this test binary was built with the race
// detector. The scale soak keys its size ladder off it: 100/200-node
// cells under the detector's 5–10× slowdown blow straight through
// `go test`'s default timeout in `make race`, and the detector's
// finding power doesn't grow with cluster size — every code path a
// 200-node cluster exercises, a 50-node cluster exercises too.
const raceEnabled = true
