package cluster

import (
	"fmt"
	"time"

	"anurand/internal/delegate"
	"anurand/internal/metrics"
)

// counters is the runtime's internal instrumentation, guarded by
// Runtime.mu.
type counters struct {
	Tunes              uint64
	MapsInstalled      uint64
	Reelections        uint64
	WatchdogTrips      uint64
	ReportsSent        uint64
	ReportsReceived    uint64
	HeartbeatsSent     uint64
	HeartbeatsReceived uint64
	ReportsPerTune     metrics.Summary
	InstallLatency     metrics.Summary
}

// Stats is an operator snapshot of one runtime: where the node thinks
// the cluster is, and what the protocol has been doing.
type Stats struct {
	ID       delegate.NodeID
	Round    uint64
	Delegate delegate.NodeID
	Live     []delegate.NodeID
	MapRound uint64

	// Tunes counts rounds this node rescaled as delegate.
	Tunes uint64
	// MapsInstalled counts placement maps accepted from a delegate.
	MapsInstalled uint64
	// StaleMapsRejected counts old-round maps refused by the round
	// guard — each one is a reordering the protocol survived.
	StaleMapsRejected uint64
	// Reelections counts observed delegate changes.
	Reelections uint64
	// WatchdogTrips counts delegates suspected for producing no maps.
	WatchdogTrips uint64

	ReportsSent        uint64
	ReportsReceived    uint64
	HeartbeatsSent     uint64
	HeartbeatsReceived uint64

	// ReportsPerTune summarizes how many reports (including the
	// delegate's own sample) each tune acted on.
	ReportsPerTune metrics.Summary
	// InstallLatency summarizes seconds from learning a round to
	// installing its map.
	InstallLatency metrics.Summary
}

// Stats returns the runtime's operator snapshot.
func (r *Runtime) Stats() Stats {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		ID:                 r.cfg.ID,
		Round:              r.round,
		Delegate:           r.curDelegate,
		Live:               r.viewLocked(now),
		MapRound:           r.node.MapRound(),
		Tunes:              r.counters.Tunes,
		MapsInstalled:      r.counters.MapsInstalled,
		StaleMapsRejected:  r.node.StaleMapsRejected(),
		Reelections:        r.counters.Reelections,
		WatchdogTrips:      r.counters.WatchdogTrips,
		ReportsSent:        r.counters.ReportsSent,
		ReportsReceived:    r.counters.ReportsReceived,
		HeartbeatsSent:     r.counters.HeartbeatsSent,
		HeartbeatsReceived: r.counters.HeartbeatsReceived,
		ReportsPerTune:     r.counters.ReportsPerTune,
		InstallLatency:     r.counters.InstallLatency,
	}
}

// String formats the snapshot for operators.
func (s Stats) String() string {
	return fmt.Sprintf(
		"node %d: round=%d delegate=%d live=%v mapRound=%d tunes=%d installs=%d stale=%d reelect=%d watchdog=%d reports(sent=%d recv=%d per-tune %s) install-latency %s",
		s.ID, s.Round, s.Delegate, s.Live, s.MapRound, s.Tunes, s.MapsInstalled,
		s.StaleMapsRejected, s.Reelections, s.WatchdogTrips,
		s.ReportsSent, s.ReportsReceived, s.ReportsPerTune.String(), s.InstallLatency.String(),
	)
}
