package cluster

import (
	"fmt"
	"time"

	"anurand/internal/delegate"
	"anurand/internal/journal"
	"anurand/internal/metrics"
	"anurand/internal/migrate"
)

// latencyHistogram builds the runtime's standard latency histogram:
// 1 µs to 1000 s in seconds, ten geometric buckets per decade — wide
// enough that install latencies (milliseconds) and observer-reported
// request latencies (anything) land in real buckets, not overflow.
func latencyHistogram() *metrics.Histogram {
	return metrics.NewHistogram(1e-6, 1e3, 90)
}

// counters is the runtime's internal instrumentation, guarded by
// Runtime.mu.
type counters struct {
	Tunes               uint64
	MapsInstalled       uint64
	Reelections         uint64
	WatchdogTrips       uint64
	ReportsSent         uint64
	ReportsReceived     uint64
	HeartbeatsSent      uint64
	HeartbeatsReceived  uint64
	JournalAppendErrors uint64
	// Migration counters: attempts started on this node as leader,
	// cutovers completed locally, rollbacks, and migration messages
	// dropped as undecodable.
	MigrationsStarted     uint64
	MigrationsCommitted   uint64
	MigrationsAborted     uint64
	MigrationMsgsRejected uint64
	ReportsPerTune        metrics.Summary
	InstallLatency        metrics.Summary
	// InstallLatencyHist and SampleLatencyHist carry the distributions
	// behind the two Summary means above: the paper's claim is
	// performance *consistency*, and a mean cannot show the tail where
	// inconsistency lives.
	InstallLatencyHist *metrics.Histogram
	SampleLatencyHist  *metrics.Histogram
	// MigratePhaseLatencyHist distributes seconds spent per migration
	// phase edge; MigrateLatencyHist distributes whole-migration
	// (propose-to-flip) latency.
	MigratePhaseLatencyHist *metrics.Histogram
	MigrateLatencyHist      *metrics.Histogram
}

// Stats is an operator snapshot of one runtime: where the node thinks
// the cluster is, and what the protocol has been doing.
type Stats struct {
	ID       delegate.NodeID
	Epoch    uint64
	Round    uint64
	Delegate delegate.NodeID
	Live     []delegate.NodeID
	MapEpoch uint64
	MapRound uint64
	// Strategy is the registered tag of the placement strategy this node
	// runs ("anu", "chord-bounded", ...).
	Strategy string

	// Tunes counts rounds this node rescaled as delegate.
	Tunes uint64
	// MapsInstalled counts placement maps accepted from a delegate.
	MapsInstalled uint64
	// StaleMapsRejected counts old-round maps refused by the fence —
	// each one is a reordering the protocol survived.
	StaleMapsRejected uint64
	// StaleEpochsRejected counts maps from superseded view epochs
	// refused by the fence — each one is a partitioned or deposed
	// delegate that failed to roll the placement back.
	StaleEpochsRejected uint64
	// TagMismatchesRejected counts placements refused because their
	// strategy tag differed from the node's — a misconfigured peer, not
	// a protocol race.
	TagMismatchesRejected uint64
	// CrossTagInstallsRejected counts placements refused during a
	// dual-tag window because they carried neither the node's current
	// strategy nor the migration target — a third strategy has no
	// business on the wire mid-cutover.
	CrossTagInstallsRejected uint64
	// UndecodableMapsRejected counts placement payloads that failed to
	// decode at all (truncated or corrupt snapshots).
	UndecodableMapsRejected uint64
	// Reelections counts observed delegate changes.
	Reelections uint64
	// WatchdogTrips counts delegates suspected for producing no maps.
	WatchdogTrips uint64

	ReportsSent        uint64
	ReportsReceived    uint64
	HeartbeatsSent     uint64
	HeartbeatsReceived uint64
	// SendDrops counts outbound messages the transport's async fan-out
	// lane dropped (per-peer queue full or transport closed). Drops are
	// bounded loss under backpressure, not errors: the gossip cadence
	// re-sends, so a nonzero value means a peer lane saturated, not
	// that state was lost.
	SendDrops uint64

	// MigrationPhase is the in-flight live migration's phase ("idle"
	// when none), with its id and endpoints; DualTagInstalls counts
	// cutover installs accepted through a dual-tag window.
	MigrationPhase  string
	MigrationID     uint64
	MigrationFrom   string
	MigrationTo     string
	DualTagInstalls uint64
	// MigrationsStarted counts migrations this node led;
	// MigrationsCommitted/Aborted count local cutovers and rollbacks;
	// MigrationMsgsRejected counts undecodable or tag-mismatched
	// migration payloads.
	MigrationsStarted     uint64
	MigrationsCommitted   uint64
	MigrationsAborted     uint64
	MigrationMsgsRejected uint64
	// RecoveredMigration names the migration phase Start resumed (or
	// recognised as committed) from the journal, "" when none.
	RecoveredMigration string
	// DelegateMigrating mirrors the FlagMigrating gossip bit last seen
	// from the current delegate — informational only.
	DelegateMigrating bool

	// Recovered reports whether Start resumed from a journal record
	// rather than the bootstrap snapshot; RecoveredEpoch/RecoveredRound
	// give the fence it resumed at.
	Recovered      bool
	RecoveredEpoch uint64
	RecoveredRound uint64
	// JournalAppendErrors counts installed placements that could not be
	// made durable (the append or its fsync failed). The node keeps
	// serving from memory and retries on the next install.
	JournalAppendErrors uint64
	// Journal carries the journal's own durability counters (records
	// recovered, torn tails truncated, fsync errors, compactions) when
	// the configured Journal exposes them; zero otherwise.
	Journal journal.Stats

	// ReportsPerTune summarizes how many reports (including the
	// delegate's own sample) each tune acted on.
	ReportsPerTune metrics.Summary
	// InstallLatency summarizes seconds from learning a round to
	// installing its map.
	InstallLatency metrics.Summary
	// InstallLatencyHist is the distribution behind InstallLatency:
	// per-node install latency with p50/p95/p99 tails. The snapshot is
	// an independent clone.
	InstallLatencyHist *metrics.Histogram
	// SampleLatencyHist is the distribution of latencies this node's
	// observer reported into the protocol (seconds, observer-defined).
	SampleLatencyHist *metrics.Histogram
	// MigratePhaseLatencyHist is the per-phase migration latency
	// distribution (seconds per phase edge, including rollbacks);
	// MigrateLatencyHist is whole-migration propose-to-flip latency.
	MigratePhaseLatencyHist *metrics.Histogram
	MigrateLatencyHist      *metrics.Histogram
}

// Stats returns the runtime's operator snapshot.
func (r *Runtime) Stats() Stats {
	now := time.Now()
	r.mu.Lock()
	s := Stats{
		ID:                       r.cfg.ID,
		Epoch:                    r.epoch,
		Round:                    r.round,
		Delegate:                 r.curDelegate,
		Live:                     r.viewLocked(now),
		MapEpoch:                 r.node.MapEpoch(),
		MapRound:                 r.node.MapRound(),
		Strategy:                 r.node.Strategy(),
		Tunes:                    r.counters.Tunes,
		MapsInstalled:            r.counters.MapsInstalled,
		StaleMapsRejected:        r.node.StaleMapsRejected(),
		StaleEpochsRejected:      r.node.StaleEpochsRejected(),
		TagMismatchesRejected:    r.node.TagMismatchesRejected(),
		CrossTagInstallsRejected: r.node.CrossTagRejected(),
		UndecodableMapsRejected:  r.node.UndecodableMapsRejected(),
		Reelections:              r.counters.Reelections,
		WatchdogTrips:            r.counters.WatchdogTrips,
		ReportsSent:              r.counters.ReportsSent,
		ReportsReceived:          r.counters.ReportsReceived,
		HeartbeatsSent:           r.counters.HeartbeatsSent,
		HeartbeatsReceived:       r.counters.HeartbeatsReceived,
		SendDrops:                r.sendDrops.Load(),
		JournalAppendErrors:      r.counters.JournalAppendErrors,
		MigrationPhase:           migrate.Idle.String(),
		DualTagInstalls:          r.node.DualTagInstalls(),
		MigrationsStarted:        r.counters.MigrationsStarted,
		MigrationsCommitted:      r.counters.MigrationsCommitted,
		MigrationsAborted:        r.counters.MigrationsAborted,
		MigrationMsgsRejected:    r.counters.MigrationMsgsRejected,
		RecoveredMigration:       r.recoveredMig,
		DelegateMigrating:        r.delegateMigrating,
		ReportsPerTune:           r.counters.ReportsPerTune,
		InstallLatency:           r.counters.InstallLatency,
		InstallLatencyHist:       r.counters.InstallLatencyHist.Clone(),
		SampleLatencyHist:        r.counters.SampleLatencyHist.Clone(),
		MigratePhaseLatencyHist:  r.counters.MigratePhaseLatencyHist.Clone(),
		MigrateLatencyHist:       r.counters.MigrateLatencyHist.Clone(),
	}
	if r.mig != nil {
		s.MigrationPhase = r.mig.phase.String()
		s.MigrationID = r.mig.rec.ID
		s.MigrationFrom = r.mig.rec.From
		s.MigrationTo = r.mig.rec.To
	}
	if r.recovered != nil {
		s.Recovered = true
		s.RecoveredEpoch = r.recovered.Epoch
		s.RecoveredRound = r.recovered.Round
	}
	r.mu.Unlock()
	// The journal has its own lock; query it outside ours.
	if js, ok := r.cfg.Journal.(interface{ Stats() journal.Stats }); ok {
		s.Journal = js.Stats()
	}
	return s
}

// String formats the snapshot for operators.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"node %d: strategy=%s epoch=%d round=%d delegate=%d live=%v map=(%d,%d) tunes=%d installs=%d stale=%d staleEpoch=%d tagMismatch=%d reelect=%d watchdog=%d reports(sent=%d recv=%d per-tune %s) install-latency %s",
		s.ID, s.Strategy, s.Epoch, s.Round, s.Delegate, s.Live, s.MapEpoch, s.MapRound, s.Tunes, s.MapsInstalled,
		s.StaleMapsRejected, s.StaleEpochsRejected, s.TagMismatchesRejected, s.Reelections, s.WatchdogTrips,
		s.ReportsSent, s.ReportsReceived, s.ReportsPerTune.String(), s.InstallLatency.String(),
	)
	if s.MigrationPhase != "" && s.MigrationPhase != "idle" {
		out += fmt.Sprintf(" migration(%s id=%d %s->%s)", s.MigrationPhase, s.MigrationID, s.MigrationFrom, s.MigrationTo)
	}
	if s.MigrationsStarted+s.MigrationsCommitted+s.MigrationsAborted+s.DualTagInstalls+
		s.CrossTagInstallsRejected+s.UndecodableMapsRejected+s.MigrationMsgsRejected > 0 {
		out += fmt.Sprintf(" migrations(started=%d committed=%d aborted=%d dual-installs=%d cross-tag=%d undecodable=%d bad-msgs=%d)",
			s.MigrationsStarted, s.MigrationsCommitted, s.MigrationsAborted, s.DualTagInstalls,
			s.CrossTagInstallsRejected, s.UndecodableMapsRejected, s.MigrationMsgsRejected)
	}
	if s.DelegateMigrating {
		out += " delegate-migrating"
	}
	if s.SendDrops > 0 {
		out += fmt.Sprintf(" send-drops=%d", s.SendDrops)
	}
	if s.InstallLatencyHist != nil && s.InstallLatencyHist.Total() > 0 {
		out += fmt.Sprintf(" install-hist(%s)", s.InstallLatencyHist)
	}
	if s.SampleLatencyHist != nil && s.SampleLatencyHist.Total() > 0 {
		out += fmt.Sprintf(" sample-hist(%s)", s.SampleLatencyHist)
	}
	if s.MigratePhaseLatencyHist != nil && s.MigratePhaseLatencyHist.Total() > 0 {
		out += fmt.Sprintf(" migrate-phase-hist(%s)", s.MigratePhaseLatencyHist)
	}
	if s.Recovered {
		out += fmt.Sprintf(" recovered=(%d,%d)", s.RecoveredEpoch, s.RecoveredRound)
	}
	if s.RecoveredMigration != "" {
		out += fmt.Sprintf(" recovered-migration=%s", s.RecoveredMigration)
	}
	if s.Journal != (journal.Stats{}) || s.JournalAppendErrors > 0 {
		out += fmt.Sprintf(" journal(recovered=%d torn=%d appends=%d skipped=%d compactions=%d fsync-errs=%d append-errs=%d)",
			s.Journal.RecordsRecovered, s.Journal.TornTailsTruncated, s.Journal.Appends,
			s.Journal.AppendsSkipped, s.Journal.Compactions, s.Journal.SyncErrors, s.JournalAppendErrors)
	}
	return out
}
