package cluster

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/journal"
	"anurand/internal/migrate"
	"anurand/internal/placement"
)

// TestMigrationChaosSoak is the acceptance soak for live strategy
// migration: five nodes on a lossy, reordering network with chaos
// journals, driven through a migration with a fault injected in every
// phase of the state machine:
//
//   - Proposed: the delegate is killed right after proposing — the
//     followers roll back on re-election, and the restarted ex-leader's
//     resumed phase self-aborts (no live proposer);
//   - DualTag: a follower crash-restarts inside the window with its
//     journal tail damaged — the cluster commits without it and the
//     leader's post-commit retry heals it onto the new strategy;
//   - Committed: a follower that already cut over crash-restarts — its
//     journal, not its (stale) config, decides what it boots;
//   - and a migration back under a transient partition (drop rate
//     spiked mid-cutover), which must end with every node on one
//     coherent strategy, whichever way it resolves.
//
// Throughout, lookup hammers on every node assert the zero-downtime
// contract: every lookup at every instant resolves to a valid server
// from exactly one coherent placement (old or new, never mixed).
func TestMigrationChaosSoak(t *testing.T) {
	const n = 5
	calm := ChaosConfig{Drop: 0.10, Duplicate: 0.05, MaxDelay: 5 * time.Millisecond, Seed: 1009}
	cn, err := NewChaosNetwork(calm)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, n)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 2, 2: 3, 3: 4, 4: 5}
	dir := t.TempDir()

	journals := make([]*journal.ChaosJournal, n)
	openJournal := func(i int) {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = journal.NewChaos(j, 100+uint64(i))
	}
	// While pinGate is set, no Commit order or placement map reaches the
	// pinned victim: it is held inside its dual-tag window so the crash
	// can be injected there deterministically instead of racing a
	// 20 ms poll against a sub-millisecond commit.
	var pinGate atomic.Bool
	pinned := ids[n-1] // highest id: never the delegate while anyone else lives
	rts := make([]*Runtime, n)
	startNode := func(i int) {
		var tr Transport = cn.Endpoint(ids[i])
		tr = filterTransport{Transport: tr, drop: func(m delegate.Message) bool {
			return pinGate.Load() && m.To == pinned &&
				(m.Kind == MsgMigrateCommit || m.Kind == delegate.MsgMap)
		}}
		// Quorum = n makes every commit wait for the pinned victim's
		// dual-tag ack, so the crash deterministically lands inside an
		// acknowledged window. WatchdogRounds is large because the pin
		// gate starves the victim of maps by design: a 500 ms watchdog
		// would re-elect on the victim and nack the very migration the
		// scenario is holding open (the watchdog has its own test).
		rt, err := Start(Config{
			ID: ids[i], Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond, FailAfter: 500 * time.Millisecond,
			WatchdogRounds: 600, Quorum: n,
			MigrateTimeout: 10 * time.Second, MigrateRetry: 100 * time.Millisecond,
			Observe: closedLoopObserve(speeds), Journal: journals[i], Logf: t.Logf,
		}, tr)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		rts[i] = rt
	}
	// crashRestart kills node i, optionally damages its journal tail the
	// way a power cut would, and boots a fresh runtime from what
	// survived on disk.
	crashRestart := func(i int, damageTail bool) {
		rts[i].Stop()
		if damageTail {
			if kind, ok, err := journals[i].InjectTailFault(); err != nil {
				t.Fatalf("node %d: tail fault: %v", i, err)
			} else if ok {
				t.Logf("soak: node %d journal tail damaged (%s)", i, kind)
			}
		}
		if err := journals[i].Close(); err != nil {
			t.Fatalf("node %d: close journal: %v", i, err)
		}
		openJournal(i)
		startNode(i)
	}
	// migrateFromDelegate drives Migrate on whichever node currently
	// leads, retrying through transient refusals (resumed phases still
	// draining, elections settling).
	migrateFromDelegate := func(target string) {
		t.Helper()
		waitFor(t, 30*time.Second, fmt.Sprintf("a delegate accepting Migrate(%s)", target), func() bool {
			for _, rt := range rts {
				if rt.Delegate() != rt.ID() {
					continue
				}
				if _, err := rt.Migrate(target); err == nil {
					return true
				}
			}
			return false
		})
	}
	allOn := func(tag string) func() bool {
		return func() bool {
			for _, rt := range rts {
				if rt.Strategy() != tag {
					return false
				}
				if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
					return false
				}
			}
			return true
		}
	}

	for i := range ids {
		openJournal(i)
		startNode(i)
	}
	defer func() {
		for i := range rts {
			rts[i].Stop()
			journals[i].Close()
		}
	}()
	waitFor(t, 30*time.Second, "initial convergence", func() bool {
		return converged(rts) && rts[0].Stats().Tunes >= 1
	})

	hammer := startLookupHammer(rts, n, placement.StrategyANU, placement.StrategyChordBounded)

	// ---- Fault in Proposed: kill the delegate right after it proposes.
	del := waitDelegate(t, rts)
	leader := int(del.ID())
	if _, err := del.Migrate(placement.StrategyChordBounded); err != nil {
		t.Fatal(err)
	}
	rts[leader].Stop()
	waitFor(t, 30*time.Second, "rollback after leader death in proposed", func() bool {
		hammer.check(t)
		for i, rt := range rts {
			if i == leader {
				continue
			}
			if rt.Strategy() != placement.StrategyANU {
				return false
			}
			if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
				return false
			}
		}
		return true
	})
	crashRestart(leader, false)
	// The restarted ex-leader resumes its journaled Proposed phase and,
	// once it sees a quorum view with itself elected, self-aborts.
	waitFor(t, 30*time.Second, "ex-leader drained its resumed phase", func() bool {
		hammer.check(t)
		phase, _ := rts[leader].MigrationPhase()
		return phase == migrate.Idle && rts[leader].Strategy() == placement.StrategyANU
	})

	// ---- Fault in DualTag: crash-restart a follower inside the window,
	// with its journal tail torn. The migration must still commit.
	victim := n - 1
	pinGate.Store(true)
	migrateFromDelegate(placement.StrategyChordBounded)
	waitFor(t, 30*time.Second, "pinned follower inside the dual-tag window", func() bool {
		hammer.check(t)
		phase, _ := rts[victim].MigrationPhase()
		return phase == migrate.DualTag
	})
	crashRestart(victim, true)
	pinGate.Store(false)
	// Whatever the torn tail left behind — a resumed window, a bare
	// placement, or nothing past an older record — the leader's
	// post-commit retries and the next broadcast map must flip it.
	waitFor(t, 45*time.Second, "cutover heals the dual-tag crash victim", allOn(placement.StrategyChordBounded))
	waitFor(t, 30*time.Second, "reconvergence on the new strategy", func() bool {
		hammer.check(t)
		return converged(rts)
	})
	if lookups := hammer.close(t); lookups == 0 {
		t.Fatal("lookup hammer never ran")
	}

	// ---- Fault in Committed: a node that already flipped crash-restarts.
	// Its config still says "anu"; its journal must win.
	witness := (victim + 1) % n
	if rts[witness].Delegate() == rts[witness].ID() {
		witness = (witness + 1) % n
	}
	crashRestart(witness, false)
	if got := rts[witness].Strategy(); got != placement.StrategyChordBounded {
		t.Fatalf("restarted node %d booted %q; its journal records the %q cutover",
			witness, got, placement.StrategyChordBounded)
	}
	hammer = startLookupHammer(rts, n, placement.StrategyANU, placement.StrategyChordBounded)
	waitFor(t, 30*time.Second, "committed-crash witness rejoined", func() bool {
		hammer.check(t)
		return converged(rts)
	})

	// ---- Migration back under a transient partition: spike the drop
	// rate mid-cutover, then calm the network and require the cluster to
	// settle on exactly one strategy — retrying until it lands on ANU.
	migrateFromDelegate(placement.StrategyANU)
	if err := cn.SetConfig(ChaosConfig{Drop: 0.60, Duplicate: 0.05, MaxDelay: 10 * time.Millisecond, Seed: 2027}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cn.SetConfig(calm); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 60*time.Second, "uniform strategy after the partition", func() bool {
		hammer.check(t)
		if allOn(placement.StrategyANU)() {
			return true
		}
		// The partition may have aborted the attempt; that is a legal
		// outcome — roll it forward by migrating again.
		if allOn(placement.StrategyChordBounded)() {
			for _, rt := range rts {
				if rt.Delegate() == rt.ID() {
					rt.Migrate(placement.StrategyANU)
					break
				}
			}
		}
		return false
	})
	waitFor(t, 30*time.Second, "final convergence", func() bool {
		hammer.check(t)
		return converged(rts)
	})
	if lookups := hammer.close(t); lookups == 0 {
		t.Fatal("lookup hammer never ran")
	}

	// Every journal must be coherent with the final state: the newest
	// placement record decodes and carries the final strategy, and the
	// newest migration record is terminal.
	for i := range rts {
		rts[i].Stop()
		prec, ok := journals[i].LastPlacement()
		if !ok {
			t.Errorf("node %d: no journaled placement after the soak", i)
			continue
		}
		if tag, err := placement.Tag(prec.Map); err != nil || tag != placement.StrategyANU {
			t.Errorf("node %d: final journaled placement tag (%q, %v), want %q", i, tag, err, placement.StrategyANU)
		}
		if _, err := placement.Decode(prec.Map, placement.Options{}); err != nil {
			t.Errorf("node %d: final journaled placement undecodable: %v", i, err)
		}
		if mrec, ok := journals[i].LastMigration(); ok {
			if mr, err := migrate.Decode(mrec.Map); err != nil {
				t.Errorf("node %d: final journaled migration record undecodable: %v", i, err)
			} else if mr.Phase.InFlight() {
				t.Errorf("node %d: soak ended with an in-flight journaled migration (%s)", i, mr.Phase)
			}
		}
		s := rts[i].Stats()
		t.Logf("soak: node %d final stats: %s", i, s)
	}
}
