// Package cluster is the networked runtime for the delegate protocol
// of package delegate: it turns the round-synchronous protocol model
// into a wall-clock system that survives what real networks do.
//
// Each server runs one Runtime around its delegate.Node. Runtimes
// exchange messages over a Transport — real TCP (ListenTCP) with
// per-peer connection pooling, timeouts and retry with backoff, or the
// in-memory chaos network (NewChaosNetwork) that drops, duplicates,
// delays and reorders messages under a seeded RNG for soak tests.
//
// Liveness is observed, not assumed: every runtime heartbeats its
// peers, and the membership view a round works with is "self plus
// every peer heard from within FailAfter". The delegate for a view is
// the lowest live id (the paper's stateless succession rule). The
// elected delegate paces rounds on its own clock and announces each
// round through its heartbeats; followers report when they observe a
// new round, and a round watchdog re-elects when the delegate stays
// silent — heartbeats without placement maps are not progress.
//
// The delegate tunes once a quorum of reports has arrived or a grace
// period expires, whichever is first. Servers silent beyond FailAfter
// are treated as failed per the paper — their region is released to
// the survivors — while a server that merely missed one report window
// but is demonstrably alive is left idle rather than evicted.
//
// Wire invariant established here and in package delegate: installed
// placements are fenced by the (epoch, round) pair. The view epoch
// increments each time a node takes over as delegate and rides every
// heartbeat and map message; a reordered, duplicated, or
// partition-replayed MsgMap carrying a lower pair is counted and
// dropped, never installed over a newer placement — even one whose raw
// round number raced ahead under a superseded delegate.
//
// Durability is opt-in: give Config a Journal and every installed
// placement is appended (with its fence) and fsynced, and a restarted
// Runtime resumes from the journal's last record — map, epoch and round
// — instead of the bootstrap snapshot, so it rejoins without replaying
// a stale map and keeps rejecting anything older than what it
// persisted. With Journal nil the runtime is exactly the in-memory
// system it was before.
package cluster

import (
	"fmt"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/journal"
	"anurand/internal/placement"
)

// ObserveFunc samples the local server's performance for the elapsed
// interval: the number of requests served and their mean latency in
// seconds. It is called without the runtime's lock, so it may call back
// into the Runtime (Stats, Lookup, ...); s is the node's published
// placement snapshot, immutable and read-only — strategy-agnostic
// observers read shares through s.Shares().
type ObserveFunc func(s placement.Strategy, id delegate.NodeID) (requests uint64, meanLatencySeconds float64)

// Journal persists installed placements and live-migration phase
// records. Implementations must make Append durable before returning
// (the runtime treats a nil error as "this record survives a crash")
// and must keep the monotone rule: a record that does not supersede
// the last one is skipped, not an error. *journal.Journal and
// *journal.ChaosJournal implement it. The caller owns the journal's
// lifecycle; the Runtime never closes it.
type Journal interface {
	// Last returns the newest recovered or appended record of any
	// class.
	Last() (journal.Record, bool)
	// LastPlacement returns the newest placement record — what a
	// restarting node serves from.
	LastPlacement() (journal.Record, bool)
	// LastMigration returns the newest migration phase record — what a
	// restarting node resumes (or recognises as complete).
	LastMigration() (journal.Record, bool)
	// Append durably records an installed placement or migration
	// phase.
	Append(rec journal.Record) error
}

// Config configures one node's runtime.
type Config struct {
	// ID is this node's identity; it must be a member of the snapshot.
	ID delegate.NodeID
	// Members is the full configured membership (including ID).
	Members []delegate.NodeID
	// Snapshot is the encoded initial placement all members bootstrap
	// from; its bytes carry the strategy tag.
	Snapshot []byte
	// Controller configures the ANU feedback controller (when the
	// strategy is ANU). The zero value means the defaults.
	Controller anu.ControllerConfig
	// Strategy is the registered placement strategy this node expects
	// ("anu", "chord-bounded", ...). Empty means "anu". Both the
	// bootstrap Snapshot and any journal-recovered placement must carry
	// exactly this tag; a mismatch is a configuration error, never a
	// silent adoption.
	Strategy string
	// LoadBound configures the bounded-load strategies; zero means the
	// default. Ignored by ANU.
	LoadBound float64
	// Weights carries per-server capacity weights for weight-aware
	// strategies (rendezvous, weighted-static, power-of-d). They apply
	// when this node constructs a fresh placement — bootstrap and the
	// warm target of a live migration; decoded snapshots carry their own
	// weights in the bytes. Zero value means uniform. Ignored by
	// strategies without capacity knowledge.
	Weights map[delegate.NodeID]float64

	// RoundInterval is the tuning cadence (the paper's two-minute
	// interval; tests use milliseconds). Required.
	RoundInterval time.Duration
	// HeartbeatInterval is the liveness beacon period.
	// Default: RoundInterval/8 (at least 1ms).
	HeartbeatInterval time.Duration
	// FailAfter is how long a peer may stay silent before it is
	// considered dead: dropped from the membership view and, at tune
	// time, marked failed so its region goes to the survivors.
	// Default: 4×HeartbeatInterval + RoundInterval.
	FailAfter time.Duration
	// ReportGrace is how long the delegate waits for reports after
	// starting a round before tuning with what arrived.
	// Default: RoundInterval/2.
	ReportGrace time.Duration
	// Quorum is the report count (including the delegate's own sample)
	// that lets the delegate tune before ReportGrace expires.
	// Default: majority of Members.
	Quorum int
	// WatchdogRounds re-elects when no map has been installed for this
	// many round intervals: the current delegate is suspected for
	// FailAfter so election moves to the next id. Default: 3.
	WatchdogRounds uint64
	// MigrateTimeout bounds each phase of a live strategy migration
	// (Migrate): a phase that does not advance within it rolls back to
	// the old placement. Default: 20×RoundInterval.
	MigrateTimeout time.Duration
	// MigrateRetry is how often the migration leader re-broadcasts the
	// current phase message to peers that have not acknowledged it.
	// Default: 2×RoundInterval.
	MigrateRetry time.Duration

	// Observe samples local performance each round. Optional; when nil
	// the node reports zero load.
	Observe ObserveFunc
	// Journal, when non-nil, makes installed placements durable: every
	// install is appended with its (epoch, round) fence, and Start
	// recovers the journal's last record — resuming from the persisted
	// placement instead of Snapshot. Nil keeps the in-memory behavior.
	Journal Journal
	// Logf receives diagnostic messages. Optional.
	Logf func(format string, args ...any)
}

// withDefaults validates cfg and fills unset tuning knobs.
func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Members) == 0 {
		return cfg, fmt.Errorf("cluster: no members configured")
	}
	member := false
	for _, id := range cfg.Members {
		if id == cfg.ID {
			member = true
			break
		}
	}
	if !member {
		return cfg, fmt.Errorf("cluster: node %d not in configured members", cfg.ID)
	}
	if cfg.RoundInterval <= 0 {
		return cfg, fmt.Errorf("cluster: RoundInterval must be positive, got %v", cfg.RoundInterval)
	}
	// Timing knobs are validated, not silently clamped: zero means "use
	// the default", but a negative duration is always a config bug —
	// tickers would panic or loops would spin — so it fails Start.
	for _, knob := range []struct {
		name string
		val  time.Duration
	}{
		{"HeartbeatInterval", cfg.HeartbeatInterval},
		{"FailAfter", cfg.FailAfter},
		{"ReportGrace", cfg.ReportGrace},
		{"MigrateTimeout", cfg.MigrateTimeout},
		{"MigrateRetry", cfg.MigrateRetry},
	} {
		if knob.val < 0 {
			return cfg, fmt.Errorf("cluster: %s must not be negative, got %v", knob.name, knob.val)
		}
	}
	if cfg.Quorum < 0 {
		return cfg, fmt.Errorf("cluster: Quorum must not be negative, got %d", cfg.Quorum)
	}
	if cfg.Quorum > len(cfg.Members) {
		return cfg, fmt.Errorf("cluster: Quorum %d exceeds the %d configured members", cfg.Quorum, len(cfg.Members))
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = cfg.RoundInterval / 8
		if cfg.HeartbeatInterval < time.Millisecond {
			cfg.HeartbeatInterval = time.Millisecond
		}
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 4*cfg.HeartbeatInterval + cfg.RoundInterval
	}
	if cfg.ReportGrace == 0 {
		cfg.ReportGrace = cfg.RoundInterval / 2
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = len(cfg.Members)/2 + 1
	}
	if cfg.MigrateTimeout == 0 {
		cfg.MigrateTimeout = 20 * cfg.RoundInterval
	}
	if cfg.MigrateRetry == 0 {
		cfg.MigrateRetry = 2 * cfg.RoundInterval
	}
	if cfg.WatchdogRounds == 0 {
		cfg.WatchdogRounds = 3
	}
	if cfg.Strategy == "" {
		cfg.Strategy = placement.StrategyANU
	}
	return cfg, nil
}

// placementOptions builds the strategy construction options used when
// this node decodes snapshots.
func (cfg Config) placementOptions() placement.Options {
	return placement.Options{Controller: cfg.Controller, LoadBound: cfg.LoadBound, Weights: cfg.Weights}
}

// logf emits a diagnostic when a logger is configured.
func (cfg Config) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}
