package cluster

import (
	"testing"
	"time"

	"anurand/internal/anu"
	"anurand/internal/placement"
)

// dualTagRuntime boots a quiet single-node runtime and opens a
// dual-tag window on it, the data-plane state a live migration holds
// while the new strategy warms: lookups keep serving the old snapshot
// through the same lock-free pointer.
func dualTagRuntime(tb testing.TB) *Runtime {
	tb.Helper()
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cn.Close)
	ids, snapshot := bootstrap(tb, 4)
	rt, err := Start(Config{
		ID: 0, Members: ids, Snapshot: snapshot,
		Controller: anu.DefaultControllerConfig(), RoundInterval: time.Hour,
	}, cn.Endpoint(0))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(rt.Stop)
	rt.mu.Lock()
	rt.node.OpenDualTag(placement.StrategyChordBounded)
	rt.mu.Unlock()
	return rt
}

// TestDualTagLookupZeroAlloc pins the migration window's data plane at
// zero allocations: a cutover that makes every lookup allocate would
// turn the "zero downtime" promise into a GC stall at the worst
// moment. bench-gate-allocs enforces the same bound on the benchmark
// below.
func TestDualTagLookupZeroAlloc(t *testing.T) {
	rt := dualTagRuntime(t)
	keys := []string{"/home/alice", "/home/bob", "/var/mail", "/srv/data"}
	owners := make([]anu.ServerID, len(keys))
	if avg := testing.AllocsPerRun(200, func() {
		for _, key := range keys {
			if _, ok := rt.Lookup(key); !ok {
				t.Fatal("lookup failed inside the dual-tag window")
			}
		}
	}); avg != 0 {
		t.Errorf("Lookup allocates %.1f/op inside the dual-tag window, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if got := rt.LookupBatch(keys, owners); got != len(keys) {
			t.Fatalf("batch resolved %d/%d inside the dual-tag window", got, len(keys))
		}
	}); avg != 0 {
		t.Errorf("LookupBatch allocates %.1f/op inside the dual-tag window, want 0", avg)
	}
}

// BenchmarkDualTagLookup measures the lookup fast path while a
// dual-tag migration window is open — it must match the steady-state
// path exactly (same atomic snapshot load, zero allocations).
func BenchmarkDualTagLookup(b *testing.B) {
	rt := dualTagRuntime(b)
	keys := []string{"/home/alice", "/home/bob", "/var/mail", "/srv/data"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rt.Lookup(keys[i&3]); !ok {
			b.Fatal("lookup failed")
		}
	}
}
