package cluster

import (
	"bytes"
	"testing"

	"anurand/internal/delegate"
)

// FuzzReadFrame feeds arbitrary bytes to the TCP framing path.
// Invariants: readFrame never panics and never allocates beyond the
// payload cap, and any frame it accepts re-encodes via writeFrame to
// bytes that parse back to the identical message.
func FuzzReadFrame(f *testing.F) {
	seed := func(msg delegate.Message) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, msg); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(seed(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2, Epoch: 3, Round: 4, Payload: []byte("report")}))
	f.Add(seed(delegate.Message{Kind: delegate.MsgMap, From: -1, To: 0, Epoch: 1 << 60, Round: 1 << 40, Payload: nil}))
	hb := seed(delegate.Message{Kind: MsgHeartbeat, From: 4, To: 0, Epoch: 9, Round: 1000})
	f.Add(hb)
	f.Add(seed(delegate.Message{Kind: MsgMigratePropose, Flags: FlagMigrating, From: 0, To: 3, Epoch: 5, Round: 6, Payload: []byte("mig")}))
	wrongVer := append([]byte(nil), hb...)
	wrongVer[0] = 1
	f.Add(wrongVer)

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := readFrame(bytes.NewReader(data), maxPayload)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if len(msg.Payload) > maxPayload {
			t.Fatalf("accepted payload of %d bytes beyond cap %d", len(msg.Payload), maxPayload)
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, msg); err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		again, err := readFrame(&buf, maxPayload)
		if err != nil {
			t.Fatalf("re-read re-encoded frame: %v", err)
		}
		if again.Kind != msg.Kind || again.Flags != msg.Flags || again.From != msg.From || again.To != msg.To ||
			again.Epoch != msg.Epoch || again.Round != msg.Round || !bytes.Equal(again.Payload, msg.Payload) {
			t.Fatalf("frame round trip diverged: %+v -> %+v", msg, again)
		}
	})
}
