package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/journal"
	"anurand/internal/migrate"
	"anurand/internal/placement"
)

// lookupHammer drives continuous lookups against every runtime from
// its own goroutine and fails the run on the first lookup that does
// not resolve to a valid server — the zero-dropped-lookups assertion
// behind every migration test. Each iteration also checks that the
// runtime's strategy is one of the allowed tags: during a live
// migration every node serves either the old or the new placement,
// never anything else.
type lookupHammer struct {
	stop chan struct{}
	errs chan error
	wg   sync.WaitGroup
	n    atomic.Uint64
}

func startLookupHammer(rts []*Runtime, members int, allowed ...string) *lookupHammer {
	h := &lookupHammer{
		stop: make(chan struct{}),
		errs: make(chan error, len(rts)),
	}
	ok := make(map[string]bool, len(allowed))
	for _, tag := range allowed {
		ok[tag] = true
	}
	keys := []string{"/home/alice", "/home/bob", "/var/mail", "/srv/data", "/tmp/x"}
	for i, rt := range rts {
		h.wg.Add(1)
		go func(i int, rt *Runtime) {
			defer h.wg.Done()
			owners := make([]anu.ServerID, len(keys))
			for n := 0; ; n++ {
				select {
				case <-h.stop:
					return
				default:
				}
				// Pace the hammer: an unthrottled spin loop starves the
				// runtime goroutines on small CI machines, stalling the
				// very rounds the test is asserting about.
				time.Sleep(500 * time.Microsecond)
				key := keys[n%len(keys)]
				owner, found := rt.Lookup(key)
				if !found || owner < 0 || int(owner) >= members {
					h.errs <- fmt.Errorf("node %d: Lookup(%q) = (%d, %v)", i, key, owner, found)
					return
				}
				if got := rt.LookupBatch(keys, owners); got != len(keys) {
					h.errs <- fmt.Errorf("node %d: batch resolved %d/%d", i, got, len(keys))
					return
				}
				if tag := rt.Strategy(); !ok[tag] {
					h.errs <- fmt.Errorf("node %d: serving strategy %q, allowed %v", i, tag, allowed)
					return
				}
				h.n.Add(1)
			}
		}(i, rt)
	}
	return h
}

// check fails the test on any hammer error observed so far.
func (h *lookupHammer) check(t *testing.T) {
	t.Helper()
	select {
	case err := <-h.errs:
		t.Fatal(err)
	default:
	}
}

// close stops the hammer and returns the total lookups served.
func (h *lookupHammer) close(t *testing.T) uint64 {
	t.Helper()
	close(h.stop)
	h.wg.Wait()
	h.check(t)
	return h.n.Load()
}

// waitDelegate blocks until some runtime considers itself the elected
// delegate and returns it.
func waitDelegate(t *testing.T, rts []*Runtime) *Runtime {
	t.Helper()
	var del *Runtime
	waitFor(t, 15*time.Second, "delegate election", func() bool {
		for _, rt := range rts {
			if rt.Delegate() == rt.ID() {
				del = rt
				return true
			}
		}
		return false
	})
	return del
}

// TestConfigValidation covers the timing-knob validation at Start:
// negative durations and impossible quorums are config errors, never
// spinning tickers or hung phases.
func TestConfigValidation(t *testing.T) {
	ids, snapshot := bootstrap(t, 3)
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	base := func() Config {
		return Config{
			ID: 0, Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: time.Second,
		}
	}
	bad := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero RoundInterval", func(c *Config) { c.RoundInterval = 0 }},
		{"negative RoundInterval", func(c *Config) { c.RoundInterval = -time.Second }},
		{"negative HeartbeatInterval", func(c *Config) { c.HeartbeatInterval = -time.Millisecond }},
		{"negative FailAfter", func(c *Config) { c.FailAfter = -time.Second }},
		{"negative ReportGrace", func(c *Config) { c.ReportGrace = -time.Millisecond }},
		{"negative MigrateTimeout", func(c *Config) { c.MigrateTimeout = -time.Second }},
		{"negative MigrateRetry", func(c *Config) { c.MigrateRetry = -time.Millisecond }},
		{"negative Quorum", func(c *Config) { c.Quorum = -1 }},
		{"quorum beyond members", func(c *Config) { c.Quorum = len(ids) + 1 }},
	}
	for i, tc := range bad {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := Start(cfg, cn.Endpoint(delegate.NodeID(60+i))); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The zero values still mean "default", not an error.
	cfg := base()
	rt, err := Start(cfg, cn.Endpoint(0))
	if err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
	rt.Stop()
}

// TestMigrateSingleNode is the smallest end-to-end cutover: with a
// one-member quorum the whole state machine — propose, warm, dual-tag,
// epoch-fenced commit — runs synchronously inside Migrate.
func TestMigrateSingleNode(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 1)
	walPath := filepath.Join(t.TempDir(), "node0.wal")
	j, err := journal.Open(walPath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rt, err := Start(Config{
		ID: 0, Members: ids, Snapshot: snapshot,
		Controller: anu.DefaultControllerConfig(), RoundInterval: 20 * time.Millisecond,
		Journal: j, Logf: t.Logf,
	}, cn.Endpoint(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	waitFor(t, 10*time.Second, "self-election", func() bool { return rt.Delegate() == 0 })

	epochBefore := rt.MapEpoch()
	id, err := rt.Migrate(placement.StrategyChordBounded)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("migration id is zero")
	}
	if got := rt.Strategy(); got != placement.StrategyChordBounded {
		t.Fatalf("strategy %q after Migrate, want %q", got, placement.StrategyChordBounded)
	}
	if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
		t.Fatalf("phase %s after synchronous cutover, want idle", phase)
	}
	if rt.MapEpoch() <= epochBefore {
		t.Errorf("commit did not bump the install epoch: %d -> %d", epochBefore, rt.MapEpoch())
	}
	s := rt.Stats()
	if s.MigrationsStarted != 1 || s.MigrationsCommitted != 1 || s.MigrationsAborted != 0 {
		t.Errorf("migration counters started=%d committed=%d aborted=%d, want 1/1/0",
			s.MigrationsStarted, s.MigrationsCommitted, s.MigrationsAborted)
	}
	// The journal's tail records the cutover durably: the newest
	// migration record is Committed and the newest placement carries
	// the target tag.
	mrec, ok := j.LastMigration()
	if !ok {
		t.Fatal("no migration record journaled")
	}
	mr, err := migrate.Decode(mrec.Map)
	if err != nil || mr.Phase != migrate.Committed {
		t.Fatalf("journaled migration record (%+v, %v), want Committed", mr, err)
	}
	prec, ok := j.LastPlacement()
	if !ok {
		t.Fatal("no placement record journaled")
	}
	if tag, _ := placement.Tag(prec.Map); tag != placement.StrategyChordBounded {
		t.Fatalf("journaled placement tag %q, want %q", tag, placement.StrategyChordBounded)
	}
	// A second migration returns home.
	if _, err := rt.Migrate(placement.StrategyANU); err != nil {
		t.Fatal(err)
	}
	if got := rt.Strategy(); got != placement.StrategyANU {
		t.Fatalf("strategy %q after return migration, want %q", got, placement.StrategyANU)
	}
}

// TestMigrateValidation covers Migrate's refusals: unknown target,
// no-op target, follower callers, and double starts.
func TestMigrateValidation(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		var tr Transport = cn.Endpoint(id)
		if id != 0 {
			// Followers accept proposals but their acks vanish, so a
			// started migration stays in flight for the double-start case.
			tr = filterTransport{Transport: tr, drop: func(m delegate.Message) bool {
				return m.Kind == MsgMigrateAck
			}}
		}
		rt, err := Start(Config{
			ID: id, Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 25 * time.Millisecond,
			MigrateTimeout: 10 * time.Second, Observe: closedLoopObserve(speeds),
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()
	del := waitDelegate(t, rts)
	if del.ID() != 0 {
		t.Fatalf("delegate %d, want 0", del.ID())
	}
	if _, err := rts[1].Migrate(placement.StrategyChordBounded); err == nil {
		t.Error("follower accepted Migrate")
	}
	if _, err := del.Migrate("no-such-strategy"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := del.Migrate(placement.StrategyANU); err == nil {
		t.Error("migration to the current strategy accepted")
	}
	if _, err := del.Migrate(placement.StrategyChordBounded); err != nil {
		t.Fatalf("valid migration refused: %v", err)
	}
	if _, err := del.Migrate(placement.StrategyChord); err == nil {
		t.Error("second migration accepted while one is in flight")
	}
}

// TestMigrateHappyPath is the three-node live cutover: ANU to the
// bounded-load chord ring under continuous lookups. Every node must
// flip atomically to the target, no lookup may ever fail, tuning must
// continue on the new strategy, and every journal must end with the
// Committed record and a target-tagged placement.
func TestMigrateHappyPath(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 7, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	dir := t.TempDir()
	journals := make([]*journal.Journal, len(ids))
	rts := make([]*Runtime, len(ids))
	for i, id := range ids {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = j
		rt, err := Start(Config{
			ID: id, Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond, FailAfter: 400 * time.Millisecond,
			WatchdogRounds: 10, MigrateTimeout: 8 * time.Second, MigrateRetry: 80 * time.Millisecond,
			Observe: closedLoopObserve(speeds), Journal: j, Logf: t.Logf,
		}, cn.Endpoint(id))
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	defer func() {
		for i, rt := range rts {
			rt.Stop()
			journals[i].Close()
		}
	}()

	waitFor(t, 15*time.Second, "pre-migration convergence", func() bool {
		return converged(rts) && rts[0].Stats().Tunes >= 2
	})
	hammer := startLookupHammer(rts, len(ids), placement.StrategyANU, placement.StrategyChordBounded)

	del := waitDelegate(t, rts)
	if _, err := del.Migrate(placement.StrategyChordBounded); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "cluster-wide cutover", func() bool {
		hammer.check(t)
		for _, rt := range rts {
			if rt.Strategy() != placement.StrategyChordBounded {
				return false
			}
			if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
				return false
			}
		}
		return true
	})
	// Tuning continues on the new strategy: rounds keep installing maps.
	tunesAtFlip := del.Stats().Tunes
	waitFor(t, 15*time.Second, "post-migration tuning", func() bool {
		hammer.check(t)
		return del.Stats().Tunes >= tunesAtFlip+2 && converged(rts)
	})
	if n := hammer.close(t); n == 0 {
		t.Fatal("lookup hammer never ran")
	}

	for i, rt := range rts {
		s := rt.Stats()
		if s.MigrationsCommitted < 1 {
			t.Errorf("node %d: no committed migration in stats: %s", i, s)
		}
		mrec, ok := journals[i].LastMigration()
		if !ok {
			t.Errorf("node %d: no journaled migration record", i)
			continue
		}
		if mr, err := migrate.Decode(mrec.Map); err != nil || mr.Phase != migrate.Committed {
			t.Errorf("node %d: journaled migration (%+v, %v), want Committed", i, mr, err)
		}
		prec, ok := journals[i].LastPlacement()
		if !ok {
			t.Errorf("node %d: no journaled placement", i)
			continue
		}
		if tag, _ := placement.Tag(prec.Map); tag != placement.StrategyChordBounded {
			t.Errorf("node %d: journaled placement tag %q", i, tag)
		}
	}
	// The leader observed the epoch fence: the commit bumped the
	// install epoch past the pre-migration one.
	if s := del.Stats(); s.MigrationsStarted != 1 {
		t.Errorf("leader started %d migrations, want 1", s.MigrationsStarted)
	}
}

// TestMigrateWeightsSurviveCutover is the weight-aware acceptance path:
// the leader carries a-priori capacity weights in its Config, migrates
// the live cluster from ANU to weighted rendezvous hashing, and the
// weights must arrive everywhere through the bytes alone — the
// followers are configured WITHOUT weights, so everything they serve
// and journal was learned from the leader's warm snapshot. A follower
// restart from its journal must come back weighted too.
func TestMigrateWeightsSurviveCutover(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 11, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	weights := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	dir := t.TempDir()
	journals := make([]*journal.Journal, len(ids))
	rts := make([]*Runtime, len(ids))
	openJournal := func(i int) {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = j
	}
	startNode := func(i int) {
		cfg := Config{
			ID: ids[i], Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond, FailAfter: 400 * time.Millisecond,
			WatchdogRounds: 10, MigrateTimeout: 8 * time.Second, MigrateRetry: 80 * time.Millisecond,
			Observe: closedLoopObserve(speeds), Journal: journals[i], Logf: t.Logf,
		}
		if i == 0 {
			// Only the leader knows the capacities a priori.
			cfg.Weights = weights
		}
		rt, err := Start(cfg, cn.Endpoint(ids[i]))
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	for i := range ids {
		openJournal(i)
		startNode(i)
	}
	defer func() {
		for i, rt := range rts {
			rt.Stop()
			journals[i].Close()
		}
	}()

	waitFor(t, 15*time.Second, "pre-migration convergence", func() bool {
		return converged(rts) && rts[0].Stats().Tunes >= 1
	})
	hammer := startLookupHammer(rts, len(ids), placement.StrategyANU, placement.StrategyRendezvous)
	del := waitDelegate(t, rts)
	if del.ID() != 0 {
		t.Fatalf("delegate %d, want 0 (the weighted config)", del.ID())
	}
	if _, err := del.Migrate(placement.StrategyRendezvous); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "cluster-wide weighted cutover", func() bool {
		hammer.check(t)
		for _, rt := range rts {
			if rt.Strategy() != placement.StrategyRendezvous {
				return false
			}
			if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
				return false
			}
		}
		return true
	})
	// Keep serving across a couple of post-cutover tuning rounds: the
	// weighted strategy must survive feedback, not just the install.
	tunesAtFlip := del.Stats().Tunes
	waitFor(t, 15*time.Second, "post-migration tuning", func() bool {
		hammer.check(t)
		return del.Stats().Tunes >= tunesAtFlip+2
	})
	hammer.close(t)

	wantWeights := func(ctx string, s placement.Strategy) {
		t.Helper()
		rw, ok := s.(placement.Reweigher)
		if !ok {
			t.Fatalf("%s: strategy %q has no weights", ctx, s.Name())
		}
		got := rw.Weights()
		for id, w := range weights {
			if got[id] != w {
				t.Errorf("%s: weight[%d] = %g, want %g", ctx, id, got[id], w)
			}
		}
	}
	for i, rt := range rts {
		// The live placement each node serves carries the leader's weights.
		wantWeights(fmt.Sprintf("node %d live", i), rt.Placement())
		// And so does the placement each node journaled.
		prec, ok := journals[i].LastPlacement()
		if !ok {
			t.Fatalf("node %d: no journaled placement", i)
		}
		if tag, _ := placement.Tag(prec.Map); tag != placement.StrategyRendezvous {
			t.Fatalf("node %d: journaled placement tag %q", i, tag)
		}
		dec, err := placement.Decode(prec.Map, placement.Options{})
		if err != nil {
			t.Fatalf("node %d: journaled placement undecodable: %v", i, err)
		}
		wantWeights(fmt.Sprintf("node %d journal", i), dec)
	}

	// Restart follower 2 from its journal, weightless config and all:
	// the recovered placement must still be weighted rendezvous.
	const victim = 2
	rts[victim].Stop()
	if err := journals[victim].Close(); err != nil {
		t.Fatal(err)
	}
	openJournal(victim)
	startNode(victim)
	if got := rts[victim].Strategy(); got != placement.StrategyRendezvous {
		t.Fatalf("restarted node boots strategy %q, want %q", got, placement.StrategyRendezvous)
	}
	wantWeights("restarted node", rts[victim].Placement())
	waitFor(t, 15*time.Second, "post-restart reconvergence", func() bool {
		return converged(rts)
	})
}

// TestMigrateAbortOnTimeout: the leader's proposals go unacknowledged
// (the followers' acks are dropped), so the Proposed phase times out
// and rolls back — the leader stays on the old strategy, broadcasts
// the abort, and the followers close out too.
func TestMigrateAbortOnTimeout(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		var tr Transport = cn.Endpoint(id)
		if id != 0 {
			tr = filterTransport{Transport: tr, drop: func(m delegate.Message) bool {
				return m.Kind == MsgMigrateAck
			}}
		}
		rt, err := Start(Config{
			ID: id, Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond, FailAfter: 400 * time.Millisecond,
			WatchdogRounds: 10, MigrateTimeout: 300 * time.Millisecond,
			Observe: closedLoopObserve(speeds), Logf: t.Logf,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()
	del := waitDelegate(t, rts)
	hammer := startLookupHammer(rts, len(ids), placement.StrategyANU, placement.StrategyChordBounded)
	if _, err := del.Migrate(placement.StrategyChordBounded); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "timeout rollback", func() bool {
		hammer.check(t)
		if s := del.Stats(); s.MigrationsAborted != 1 {
			return false
		}
		for _, rt := range rts {
			if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
				return false
			}
		}
		return true
	})
	hammer.close(t)
	for i, rt := range rts {
		if got := rt.Strategy(); got != placement.StrategyANU {
			t.Errorf("node %d: strategy %q after rollback, want %q", i, got, placement.StrategyANU)
		}
	}
	// The cluster still tunes after the rollback.
	tunes := del.Stats().Tunes
	waitFor(t, 10*time.Second, "post-rollback tuning", func() bool {
		return del.Stats().Tunes >= tunes+2
	})
}

// TestMigrateAbortOnReelection: the leader dies mid-migration. The
// followers observe the re-election away from the proposer and roll
// back on their own — no phase is allowed to outlive its leader.
func TestMigrateAbortOnReelection(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		var tr Transport = cn.Endpoint(id)
		if id == 0 {
			// The leader's warm snapshots vanish: the migration cannot
			// advance past Proposed on the followers, pinning the state
			// we want the crash to interrupt.
			tr = filterTransport{Transport: tr, drop: func(m delegate.Message) bool {
				return m.Kind == MsgMigrateWarm
			}}
		}
		rt, err := Start(Config{
			ID: id, Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond, FailAfter: 150 * time.Millisecond,
			WatchdogRounds: 10, MigrateTimeout: 10 * time.Second,
			Observe: closedLoopObserve(speeds), Logf: t.Logf,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()
	del := waitDelegate(t, rts)
	if del.ID() != 0 {
		t.Fatalf("delegate %d, want 0", del.ID())
	}
	if _, err := del.Migrate(placement.StrategyChordBounded); err != nil {
		t.Fatal(err)
	}
	// Let the proposal reach the followers, then kill the leader.
	waitFor(t, 10*time.Second, "followers tracking the proposal", func() bool {
		for _, rt := range rts[1:] {
			if phase, _ := rt.MigrationPhase(); phase == migrate.Idle {
				return false
			}
		}
		return true
	})
	followers := rts[1:]
	hammer := startLookupHammer(followers, len(ids), placement.StrategyANU, placement.StrategyChordBounded)
	del.Stop()
	waitFor(t, 15*time.Second, "follower rollback on re-election", func() bool {
		hammer.check(t)
		for _, rt := range followers {
			s := rt.Stats()
			if s.MigrationsAborted < 1 || s.MigrationPhase != "idle" {
				return false
			}
		}
		return true
	})
	hammer.close(t)
	for i, rt := range followers {
		if got := rt.Strategy(); got != placement.StrategyANU {
			t.Errorf("follower %d: strategy %q after rollback, want %q", i+1, got, placement.StrategyANU)
		}
	}
	// The survivors re-elected and keep making progress on the old
	// strategy.
	waitFor(t, 15*time.Second, "post-crash re-election and tuning", func() bool {
		return followers[0].Delegate() == 1 && followers[0].Stats().Tunes >= 1
	})
}

// TestMigrateJournalResume covers the crash-recovery decision table
// directly, by handing Start hand-built journals:
//
//   - a DualTag tail (behind enough placement churn to force
//     compaction) resumes the phase with the journaled warm snapshot
//     and, with no leader left, rolls back at the deadline;
//   - a Committed tail whose placement carries the target boots the
//     target strategy even though cfg.Strategy names the source;
//   - a Committed tail whose placement append was lost opens a
//     catch-up window and likewise settles by deadline rollback.
func TestMigrateJournalResume(t *testing.T) {
	ids, anuSnap := bootstrap(t, 1)
	_, chordSnap := bootstrapStrategy(t, 1, placement.StrategyChordBounded)

	openWAL := func(t *testing.T, compactThreshold int) (*journal.Journal, string) {
		path := filepath.Join(t.TempDir(), "node.wal")
		j, err := journal.Open(path, journal.Options{CompactThreshold: int64(compactThreshold)})
		if err != nil {
			t.Fatal(err)
		}
		return j, path
	}
	start := func(t *testing.T, j *journal.Journal, strategy string, snapshot []byte) *Runtime {
		cn, err := NewChaosNetwork(ChaosConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cn.Close)
		rt, err := Start(Config{
			ID: 0, Members: ids, Snapshot: snapshot, Strategy: strategy,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 20 * time.Millisecond,
			MigrateTimeout: 250 * time.Millisecond, Journal: j, Logf: t.Logf,
		}, cn.Endpoint(0))
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		t.Cleanup(rt.Stop)
		return rt
	}

	t.Run("dual-tag tail resumes and rolls back", func(t *testing.T) {
		// Low threshold so the placement churn after the migration record
		// forces compaction: the in-flight DualTag record (with its warm
		// snapshot) must survive it and still drive recovery.
		j, _ := openWAL(t, 256)
		if err := j.Append(journal.Record{Epoch: 1, Round: 4, Map: anuSnap}); err != nil {
			t.Fatal(err)
		}
		mig := migrate.Record{
			Phase: migrate.DualTag, ID: 77,
			From: placement.StrategyANU, To: placement.StrategyChordBounded,
			Snapshot: chordSnap,
		}
		if err := j.Append(journal.Record{Epoch: 1, Round: 6, Map: mig.Encode()}); err != nil {
			t.Fatal(err)
		}
		for round := uint64(7); round <= 30; round++ {
			if err := j.Append(journal.Record{Epoch: 1, Round: round, Map: anuSnap}); err != nil {
				t.Fatal(err)
			}
		}
		if j.Stats().Compactions == 0 {
			t.Fatal("compaction never ran; raise the churn or lower the threshold")
		}
		rt := start(t, j, placement.StrategyANU, anuSnap)
		if s := rt.Stats(); s.RecoveredMigration != "dual-tag" {
			t.Fatalf("RecoveredMigration = %q, want dual-tag (stats %s)", s.RecoveredMigration, s)
		}
		if phase, id := rt.MigrationPhase(); phase == migrate.DualTag && id != 77 {
			t.Fatalf("resumed phase carries id %d, want 77", id)
		}
		// No leader exists to commit or abort — and this lone node elects
		// itself delegate, so the no-live-proposer watchdog rolls back
		// (possibly before we even observe the resumed phase), windows
		// close, and the rollback is journaled.
		waitFor(t, 10*time.Second, "deadline rollback", func() bool {
			phase, _ := rt.MigrationPhase()
			return phase == migrate.Idle
		})
		if got := rt.Strategy(); got != placement.StrategyANU {
			t.Fatalf("strategy %q after rollback, want anu", got)
		}
		if s := rt.Stats(); s.MigrationsAborted != 1 {
			t.Fatalf("MigrationsAborted = %d, want 1", s.MigrationsAborted)
		}
		waitFor(t, 5*time.Second, "journaled rollback", func() bool {
			rec, ok := j.LastMigration()
			if !ok {
				return false
			}
			mr, err := migrate.Decode(rec.Map)
			return err == nil && mr.Phase == migrate.Aborted && mr.ID == 77
		})
	})

	t.Run("committed tail boots the target strategy", func(t *testing.T) {
		j, _ := openWAL(t, 0)
		if err := j.Append(journal.Record{Epoch: 2, Round: 9, Map: chordSnap}); err != nil {
			t.Fatal(err)
		}
		mig := migrate.Record{
			Phase: migrate.Committed, ID: 78,
			From: placement.StrategyANU, To: placement.StrategyChordBounded,
		}
		if err := j.Append(journal.Record{Epoch: 2, Round: 9, Map: mig.Encode()}); err != nil {
			t.Fatal(err)
		}
		// cfg.Strategy still says "anu" — the journal proves the cutover.
		rt := start(t, j, placement.StrategyANU, anuSnap)
		if got := rt.Strategy(); got != placement.StrategyChordBounded {
			t.Fatalf("booted strategy %q, want %q", got, placement.StrategyChordBounded)
		}
		s := rt.Stats()
		if s.RecoveredMigration != "committed" {
			t.Errorf("RecoveredMigration = %q, want committed", s.RecoveredMigration)
		}
		if !s.Recovered || s.RecoveredEpoch != 2 || s.RecoveredRound != 9 {
			t.Errorf("recovered fence (%v, %d, %d), want (true, 2, 9)", s.Recovered, s.RecoveredEpoch, s.RecoveredRound)
		}
		if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
			t.Errorf("phase %s after committed recovery, want idle", phase)
		}
	})

	t.Run("committed tail without placement opens catch-up", func(t *testing.T) {
		j, _ := openWAL(t, 0)
		if err := j.Append(journal.Record{Epoch: 3, Round: 4, Map: anuSnap}); err != nil {
			t.Fatal(err)
		}
		mig := migrate.Record{
			Phase: migrate.Committed, ID: 79,
			From: placement.StrategyANU, To: placement.StrategyChordBounded,
		}
		if err := j.Append(journal.Record{Epoch: 4, Round: 5, Map: mig.Encode()}); err != nil {
			t.Fatal(err)
		}
		rt := start(t, j, placement.StrategyANU, anuSnap)
		// The commit was decided but the new placement never persisted:
		// the node serves the old strategy through a catch-up window and,
		// alone, settles by rollback at the deadline.
		if got := rt.Strategy(); got != placement.StrategyANU {
			t.Fatalf("booted strategy %q, want anu", got)
		}
		if phase, id := rt.MigrationPhase(); phase == migrate.DualTag && id != 79 {
			t.Fatalf("resumed phase carries id %d, want 79", id)
		}
		waitFor(t, 10*time.Second, "catch-up rollback", func() bool {
			phase, _ := rt.MigrationPhase()
			return phase == migrate.Idle
		})
		if got := rt.Strategy(); got != placement.StrategyANU {
			t.Fatalf("strategy %q after catch-up rollback, want anu", got)
		}
	})
}

// TestMigrateDualTagResumeCompletes: a follower crashes inside the
// dual-tag window and restarts from its journal while the rest of the
// cluster commits. The resumed window plus the leader's post-commit
// catch-up must flip the restarted node to the target — no stranded
// old-strategy node, no torn state.
//
// To hold the victim inside the window long enough to crash it there
// deterministically, the leader's Commit messages and placement maps
// to the victim are gated off: the rest of the cluster cuts over
// while the victim is still dual-tagged. The gate opens after the
// restart, and the leader's post-commit retry (or the next broadcast
// map through the resumed window) must finish the job.
func TestMigrateDualTagResumeCompletes(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	const victim = 2
	var gate atomic.Bool // while set, the leader cannot reach the victim with commits or maps
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	dir := t.TempDir()
	journals := make([]*journal.Journal, len(ids))
	openJournal := func(i int) {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = j
	}
	rts := make([]*Runtime, len(ids))
	startNode := func(i int) {
		var tr Transport = cn.Endpoint(ids[i])
		if i == 0 {
			tr = filterTransport{Transport: tr, drop: func(m delegate.Message) bool {
				return gate.Load() && m.To == ids[victim] &&
					(m.Kind == MsgMigrateCommit || m.Kind == delegate.MsgMap)
			}}
		}
		rt, err := Start(Config{
			ID: ids[i], Members: ids, Snapshot: snapshot,
			Controller: anu.DefaultControllerConfig(), RoundInterval: 40 * time.Millisecond,
			HeartbeatInterval: 8 * time.Millisecond, FailAfter: 300 * time.Millisecond,
			// The gate starves the victim of maps on purpose; a small
			// watchdog would re-elect on it and nack the held window.
			WatchdogRounds: 250, MigrateTimeout: 8 * time.Second, MigrateRetry: 80 * time.Millisecond,
			Observe: closedLoopObserve(speeds), Journal: journals[i], Logf: t.Logf,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	for i := range ids {
		openJournal(i)
		startNode(i)
	}
	defer func() {
		for i, rt := range rts {
			rt.Stop()
			journals[i].Close()
		}
	}()
	waitFor(t, 15*time.Second, "pre-migration convergence", func() bool {
		return converged(rts) && rts[0].Stats().Tunes >= 1
	})
	del := waitDelegate(t, rts)
	if del.ID() != 0 {
		t.Fatalf("delegate %d, want 0", del.ID())
	}
	gate.Store(true)
	if _, err := del.Migrate(placement.StrategyChordBounded); err != nil {
		t.Fatal(err)
	}
	// The gated victim enters the dual-tag window (Warm still flows)
	// and stays there while the others commit.
	waitFor(t, 10*time.Second, "victim in dual-tag", func() bool {
		phase, _ := rts[victim].MigrationPhase()
		return phase == migrate.DualTag
	})
	rts[victim].Stop()
	if err := journals[victim].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "rest of the cluster committed", func() bool {
		for i, rt := range rts {
			if i == victim {
				continue
			}
			if rt.Strategy() != placement.StrategyChordBounded {
				return false
			}
		}
		return true
	})
	openJournal(victim)
	startNode(victim)
	waitFor(t, 10*time.Second, "victim resumed its dual-tag window", func() bool {
		phase, _ := rts[victim].MigrationPhase()
		return phase == migrate.DualTag
	})
	gate.Store(false)
	// The restart resumed the window from the journaled DualTag record,
	// and the leader's commit retry (or the next broadcast map) flips
	// the victim — every node ends on the target, migration closed.
	waitFor(t, 20*time.Second, "cluster-wide cutover incl. restarted victim", func() bool {
		for _, rt := range rts {
			if rt.Strategy() != placement.StrategyChordBounded {
				return false
			}
			if phase, _ := rt.MigrationPhase(); phase != migrate.Idle {
				return false
			}
		}
		return true
	})
	waitFor(t, 15*time.Second, "post-migration reconvergence", func() bool {
		return converged(rts)
	})
}
