package cluster

// Live strategy migration: the runtime-level driver for the
// epoch-fenced cutover state machine of package migrate.
//
//	Idle -> Proposed -> DualTag -> Committed
//	              \         \
//	               +---------+--> Aborted (rollback to the old placement)
//
// The cluster's current delegate is the migration leader. It proposes
// the target strategy to every member, and once a quorum acknowledges
// it builds the target placement ("warming" it while the old one keeps
// serving every lookup), ships it to the members, and — after a quorum
// holds the warm snapshot behind an open dual-tag window — commits by
// bumping the view epoch and pushing the warm placement through the
// ordinary fenced install path. The flip on every node is therefore a
// single atomic snapshot publish; at no instant does any lookup see a
// torn or mixed placement, and a crash at any point recovers from the
// journal to either the old or the new placement, never between them.
//
// Every phase edge is journaled before it is acknowledged, each phase
// carries a deadline and the leader re-broadcasts to unacked members,
// and any failure — quorum loss, warm-up timeout, an undecodable
// target snapshot, a re-election mid-flight — rolls the cluster back:
// dual-tag windows close, the Aborted record is journaled, and the old
// placement (which never stopped serving) simply remains current.
//
// Crash-recovery table (what Start does with the journal's newest
// migration record; "plc" is the newest placement record):
//
//	phase     | relation to plc            | outcome on restart
//	----------+----------------------------+-----------------------------------
//	Proposed  | newer, From == plc tag     | resume Proposed; leader retry or
//	          |                            | deadline settles it
//	DualTag   | newer, From == plc tag     | reopen the window with the
//	          |                            | journaled warm snapshot; commit or
//	          |                            | rollback arrives or deadline fires
//	Committed | newer, From == plc tag     | commit decided but the new
//	          | (placement append lost)    | placement was not persisted: open a
//	          |                            | catch-up window; the cluster's next
//	          |                            | map either flips or the deadline
//	          |                            | closes it
//	DualTag/  | plc carries To             | cutover complete: boot the new
//	Committed |                            | strategy (cfg.Strategy names the
//	          |                            | old one; that is expected)
//	Aborted   | any                        | history; boot plc normally
import (
	"fmt"
	"time"

	"anurand/internal/delegate"
	"anurand/internal/journal"
	"anurand/internal/migrate"
	"anurand/internal/placement"
)

// Migration message kinds. Like MsgHeartbeat they ride the delegate
// wire format with kinds outside the protocol range: the runtime
// consumes them itself and the protocol node never sees them. Every
// payload is a migrate.Record encoding.
const (
	// MsgMigratePropose announces a migration: leader -> members.
	MsgMigratePropose delegate.MsgKind = 0x20
	// MsgMigrateWarm ships the warm target snapshot (a DualTag record):
	// leader -> members.
	MsgMigrateWarm delegate.MsgKind = 0x21
	// MsgMigrateCommit orders the cutover: leader -> members.
	MsgMigrateCommit delegate.MsgKind = 0x22
	// MsgMigrateAbort orders rollback: leader -> members.
	MsgMigrateAbort delegate.MsgKind = 0x23
	// MsgMigrateAck acknowledges the sender's phase: member -> leader.
	// A record with Phase == Aborted is a nack and aborts the whole
	// migration.
	MsgMigrateAck delegate.MsgKind = 0x24
)

// migration is the in-flight migration state, guarded by Runtime.mu.
type migration struct {
	phase migrate.Phase
	rec   migrate.Record // ID/From/To of this attempt (Snapshot stays empty here)
	warm  []byte         // encoded target placement, nil until warmed
	// leader is true on the node driving the migration (the delegate
	// that accepted Migrate).
	leader bool
	// proposer is the leader's id as this node knows it; -1 after a
	// journal resume, when the proposer is unknown and only the
	// deadline or explicit messages can settle the phase.
	proposer delegate.NodeID
	// acks maps member -> highest phase acknowledged (leader only).
	acks       map[delegate.NodeID]migrate.Phase
	start      time.Time // when this node first saw the migration
	phaseStart time.Time // when the current phase began
	deadline   time.Time // rollback fires here
	lastSend   time.Time // leader: last broadcast, paces retries
}

// migrationLinger is the leader's post-commit catch-up state: for one
// MigrateTimeout after the cutover, members that have not acknowledged
// Committed keep receiving the commit order, so a node that crashed
// through the dual-tag window (or locally rolled back moments before
// the commit) still opens a catch-up window and flips on the next
// delegate map instead of being stranded on the old strategy.
type migrationLinger struct {
	rec      migrate.Record // the Committed record
	acks     map[delegate.NodeID]migrate.Phase
	deadline time.Time
	lastSend time.Time
}

// Migrate starts a live migration of the whole cluster from its
// current placement strategy to the named target. It must be called on
// the current delegate (migration leadership follows cluster
// leadership) and returns the migration id immediately; progress is
// asynchronous and observable through MigrationPhase and Stats. The
// data plane keeps serving lock-free lookups from the old placement
// throughout; the flip to the target is one atomic snapshot publish
// per node, and any failure rolls back to the old placement.
func (r *Runtime) Migrate(to string) (uint64, error) {
	registered := false
	for _, name := range placement.Names() {
		if name == to {
			registered = true
			break
		}
	}
	if !registered {
		return 0, fmt.Errorf("cluster: node %d: unknown strategy %q", r.cfg.ID, to)
	}
	now := time.Now()
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %d: runtime stopped", r.cfg.ID)
	}
	if r.curDelegate != r.cfg.ID {
		r.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %d: not the delegate (delegate is %d)", r.cfg.ID, r.curDelegate)
	}
	from := r.node.Strategy()
	if from == to {
		r.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %d: already running strategy %q", r.cfg.ID, to)
	}
	if r.mig != nil {
		id := r.mig.rec.ID
		r.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %d: migration %d already in flight", r.cfg.ID, id)
	}
	r.migSeq++
	id := r.epoch<<16 | r.migSeq&0xffff // unique across leaders: epochs differ per accession
	m := &migration{
		phase:      migrate.Proposed,
		rec:        migrate.Record{Phase: migrate.Proposed, ID: id, From: from, To: to},
		leader:     true,
		proposer:   r.cfg.ID,
		acks:       make(map[delegate.NodeID]migrate.Phase),
		start:      now,
		phaseStart: now,
		deadline:   now.Add(r.cfg.MigrateTimeout),
		lastSend:   now,
	}
	r.mig = m
	r.counters.MigrationsStarted++
	r.stageMigrationLocked(m.rec)
	r.broadcastMigrationLocked(MsgMigratePropose, m.rec)
	r.cfg.logf("node %d: migration %d: proposing %s -> %s", r.cfg.ID, id, from, to)
	// A one-member quorum needs no acks; advance immediately.
	r.migrateAdvanceLocked(now)
	out := r.takeOutboxLocked()
	recs := r.takeJournalLocked()
	r.mu.Unlock()
	r.sendAll(out)
	r.flushJournal(recs)
	return id, nil
}

// MigrationPhase reports the in-flight migration (Idle when none) and
// its id.
func (r *Runtime) MigrationPhase() (migrate.Phase, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mig == nil {
		return migrate.Idle, 0
	}
	return r.mig.phase, r.mig.rec.ID
}

// migFlagsLocked is the flags byte stamped on outbound frames: the
// FlagMigrating gossip bit while a migration is in flight here.
func (r *Runtime) migFlagsLocked() uint8 {
	if r.mig != nil {
		return FlagMigrating
	}
	return 0
}

// stageMigrationLocked stages a migration phase record for the
// journal at the current fence. (r.epoch, r.round) never trails the
// installed map's fence, so the journal's monotone guard accepts it.
func (r *Runtime) stageMigrationLocked(rec migrate.Record) {
	if r.cfg.Journal == nil {
		return
	}
	r.journalStage = append(r.journalStage, journal.Record{
		Epoch: r.epoch,
		Round: r.round,
		Map:   rec.Encode(),
	})
}

// broadcastMigrationLocked stages one migration message per peer.
func (r *Runtime) broadcastMigrationLocked(kind delegate.MsgKind, rec migrate.Record) {
	payload := rec.Encode()
	for _, id := range r.cfg.Members {
		if id == r.cfg.ID {
			continue
		}
		r.outbox = append(r.outbox, delegate.Message{
			Kind: kind, Flags: FlagMigrating, From: r.cfg.ID, To: id,
			Epoch: r.epoch, Round: r.round, Payload: payload,
		})
	}
}

// ackMigrationLocked stages a phase acknowledgement to the proposer.
// phase == migrate.Aborted is a nack.
func (r *Runtime) ackMigrationLocked(to delegate.NodeID, rec migrate.Record, phase migrate.Phase) {
	ack := migrate.Record{Phase: phase, ID: rec.ID, From: rec.From, To: rec.To}
	r.outbox = append(r.outbox, delegate.Message{
		Kind: MsgMigrateAck, Flags: r.migFlagsLocked(), From: r.cfg.ID, To: to,
		Epoch: r.epoch, Round: r.round, Payload: ack.Encode(),
	})
}

// collectLocked drains the node's mailbox through CollectReports and
// watches for the dual-tag cutover: an install that switched the
// node's strategy is the atomic flip, so the migration is finalized
// (journaled Committed, counted) in the same critical section. Every
// CollectReports call in the runtime goes through here — the flip must
// be observed no matter which path (map handling, tuning, commit)
// drained the message.
func (r *Runtime) collectLocked(now time.Time) (applied bool) {
	before := r.node.Strategy()
	applied, err := r.node.CollectReports(r.round)
	if err != nil {
		r.cfg.logf("node %d: collect: %v", r.cfg.ID, err)
	}
	if applied && r.node.Strategy() != before {
		r.finalizeMigrationLocked(now, before)
	}
	return applied
}

// finalizeMigrationLocked records a completed cutover: the node's
// installed placement now carries the target strategy. Journals the
// Committed record at the install fence and retires the in-flight
// state. from is the strategy the node ran before the flip.
func (r *Runtime) finalizeMigrationLocked(now time.Time, from string) {
	rec := migrate.Record{Phase: migrate.Committed, From: from, To: r.node.Strategy()}
	if m := r.mig; m != nil {
		rec.ID = m.rec.ID
		r.counters.MigratePhaseLatencyHist.Add(now.Sub(m.phaseStart).Seconds())
		r.counters.MigrateLatencyHist.Add(now.Sub(m.start).Seconds())
		if m.leader {
			r.migLinger = &migrationLinger{
				rec:      rec,
				acks:     m.acks,
				deadline: now.Add(r.cfg.MigrateTimeout),
				lastSend: now,
			}
		}
	}
	if r.cfg.Journal != nil {
		r.journalStage = append(r.journalStage, journal.Record{
			Epoch: r.node.MapEpoch(),
			Round: r.node.MapRound(),
			Map:   rec.Encode(),
		})
	}
	r.counters.MigrationsCommitted++
	r.mig = nil
	r.cfg.logf("node %d: migration %d: committed %s -> %s at epoch %d round %d",
		r.cfg.ID, rec.ID, rec.From, rec.To, r.node.MapEpoch(), r.node.MapRound())
}

// abortMigrationLocked rolls the node back to the old placement: the
// dual-tag window closes (making the target tag poison again), the
// Aborted record is journaled, and — when this node leads and
// broadcast is set — every member is told to do the same. The old
// placement never stopped serving, so no lookup is dropped.
func (r *Runtime) abortMigrationLocked(now time.Time, reason string, broadcast bool) {
	m := r.mig
	if m == nil {
		return
	}
	r.node.CloseDualTag()
	rec := m.rec
	rec.Phase = migrate.Aborted
	rec.Snapshot = nil
	r.stageMigrationLocked(rec)
	if broadcast {
		r.broadcastMigrationLocked(MsgMigrateAbort, rec)
	}
	r.counters.MigrationsAborted++
	r.counters.MigratePhaseLatencyHist.Add(now.Sub(m.phaseStart).Seconds())
	r.mig = nil
	r.cfg.logf("node %d: migration %d: aborted in %s (%s)", r.cfg.ID, rec.ID, m.phase, reason)
}

// migrateTickLocked runs the migration watchdog each round tick:
// deadlines, leader retries, quorum checks, and rollback triggers.
func (r *Runtime) migrateTickLocked(now time.Time) {
	m := r.mig
	if m == nil {
		r.migrateLingerTickLocked(now)
		return
	}
	if m.leader {
		if r.curDelegate != r.cfg.ID {
			// Deposed mid-migration (watchdog or a lower id returning):
			// the new delegate will not continue this attempt, so tear it
			// down everywhere rather than leave windows open.
			r.abortMigrationLocked(now, "leader deposed", true)
			return
		}
		if len(r.viewLocked(now)) < r.cfg.Quorum {
			r.abortMigrationLocked(now, "quorum lost", true)
			return
		}
		if now.After(m.deadline) {
			r.abortMigrationLocked(now, fmt.Sprintf("%s phase timed out", m.phase), true)
			return
		}
		r.migrateAdvanceLocked(now)
		if m == r.mig && now.Sub(m.lastSend) >= r.cfg.MigrateRetry {
			r.migrateRetryLocked(now)
		}
		return
	}
	// Follower watchdog: a phase that outlives its deadline rolls back
	// locally — the leader is gone or unreachable, and serving the old
	// placement is always safe. Likewise a re-election away from the
	// proposer: the new delegate knows nothing of this attempt.
	if now.After(m.deadline) {
		r.abortMigrationLocked(now, fmt.Sprintf("%s phase timed out", m.phase), false)
		return
	}
	if m.proposer >= 0 && r.curDelegate >= 0 && r.curDelegate != m.proposer {
		r.abortMigrationLocked(now, fmt.Sprintf("delegate moved %d -> %d mid-migration", m.proposer, r.curDelegate), false)
		return
	}
	if m.proposer < 0 && r.curDelegate == r.cfg.ID && len(r.viewLocked(now)) >= r.cfg.Quorum {
		// A journal-resumed phase whose proposer is unknown, on the node
		// the cluster now elects as delegate: leadership state was never
		// durable, so nobody can be driving this attempt — waiting out
		// the deadline would only block the next Migrate. Roll back now;
		// serving the old placement is always safe. The quorum-view
		// condition keeps a just-restarted node (whose view is only
		// itself for the first heartbeat interval) from tearing down a
		// window its true leader is still driving.
		r.abortMigrationLocked(now, "resumed migration with no live proposer", false)
	}
}

// migrateLingerTickLocked drives the post-commit catch-up: keep
// re-sending the commit order to members that have not acknowledged it
// until everyone has (or the window closes).
func (r *Runtime) migrateLingerTickLocked(now time.Time) {
	l := r.migLinger
	if l == nil {
		return
	}
	if now.After(l.deadline) || r.curDelegate != r.cfg.ID {
		r.migLinger = nil
		return
	}
	pending := false
	for _, id := range r.cfg.Members {
		if id != r.cfg.ID && l.acks[id] < migrate.Committed {
			pending = true
			break
		}
	}
	if !pending {
		r.migLinger = nil
		return
	}
	if now.Sub(l.lastSend) < r.cfg.MigrateRetry {
		return
	}
	l.lastSend = now
	payload := l.rec.Encode()
	for _, id := range r.cfg.Members {
		if id == r.cfg.ID || l.acks[id] >= migrate.Committed {
			continue
		}
		r.outbox = append(r.outbox, delegate.Message{
			Kind: MsgMigrateCommit, From: r.cfg.ID, To: id,
			Epoch: r.epoch, Round: r.round, Payload: payload,
		})
	}
}

// migrateRetryLocked re-broadcasts the current phase to members that
// have not acknowledged it (leader only).
func (r *Runtime) migrateRetryLocked(now time.Time) {
	m := r.mig
	m.lastSend = now
	kind := MsgMigratePropose
	rec := m.rec
	if m.phase == migrate.DualTag {
		kind = MsgMigrateWarm
		rec.Phase = migrate.DualTag
		rec.Snapshot = m.warm
	}
	payload := rec.Encode()
	for _, id := range r.cfg.Members {
		if id == r.cfg.ID || m.acks[id] >= m.phase {
			continue
		}
		r.outbox = append(r.outbox, delegate.Message{
			Kind: kind, Flags: FlagMigrating, From: r.cfg.ID, To: id,
			Epoch: r.epoch, Round: r.round, Payload: payload,
		})
	}
}

// migrateAckCountLocked counts members (including the leader itself)
// whose acknowledged phase has reached the current one.
func (r *Runtime) migrateAckCountLocked() int {
	m := r.mig
	count := 1 // the leader holds its own phase by construction
	for _, phase := range m.acks {
		if phase >= m.phase {
			count++
		}
	}
	return count
}

// migrateAdvanceLocked moves the leader's migration forward when a
// quorum has acknowledged the current phase.
func (r *Runtime) migrateAdvanceLocked(now time.Time) {
	m := r.mig
	if m == nil || !m.leader {
		return
	}
	if r.migrateAckCountLocked() < r.cfg.Quorum {
		return
	}
	switch m.phase {
	case migrate.Proposed:
		r.enterDualTagLocked(now)
	case migrate.DualTag:
		r.commitMigrationLocked(now)
	}
}

// enterDualTagLocked builds ("warms") the target placement over the
// configured membership — members currently outside the live view are
// marked failed so the warm placement matches observed reality — opens
// the leader's own dual-tag window, journals the DualTag record with
// the warm snapshot, and ships it to every member. The old placement
// keeps serving the data plane untouched.
func (r *Runtime) enterDualTagLocked(now time.Time) {
	m := r.mig
	servers := make([]placement.ServerID, len(r.cfg.Members))
	copy(servers, r.cfg.Members)
	s, err := placement.New(m.rec.To, servers, r.cfg.placementOptions())
	if err != nil {
		r.abortMigrationLocked(now, fmt.Sprintf("warm-up failed: %v", err), true)
		return
	}
	live := make(map[delegate.NodeID]bool)
	for _, id := range r.viewLocked(now) {
		live[id] = true
	}
	for _, id := range r.cfg.Members {
		if !live[id] {
			if ferr := s.Fail(id); ferr != nil {
				r.cfg.logf("node %d: migration %d: warm-up fail(%d): %v", r.cfg.ID, m.rec.ID, id, ferr)
			}
		}
	}
	m.warm = s.Encode()
	m.phase = migrate.DualTag
	r.counters.MigratePhaseLatencyHist.Add(now.Sub(m.phaseStart).Seconds())
	m.phaseStart = now
	m.deadline = now.Add(r.cfg.MigrateTimeout)
	m.lastSend = now
	r.node.OpenDualTag(m.rec.To)
	rec := m.rec
	rec.Phase = migrate.DualTag
	rec.Snapshot = m.warm
	r.stageMigrationLocked(rec)
	r.broadcastMigrationLocked(MsgMigrateWarm, rec)
	r.cfg.logf("node %d: migration %d: dual-tag window open, warm %s placement staged (%d bytes)",
		r.cfg.ID, m.rec.ID, m.rec.To, len(m.warm))
	r.migrateAdvanceLocked(now) // a one-member quorum commits immediately
}

// commitMigrationLocked is the leader's cutover: bump the view epoch
// (fencing out every map the old strategy still has in flight) and
// push the warm placement through the ordinary fenced install path, so
// the leader's own flip is the same single atomic snapshot publish the
// followers perform. Then order every member to cut over.
func (r *Runtime) commitMigrationLocked(now time.Time) {
	m := r.mig
	r.epoch++
	rec := m.rec
	rec.Phase = migrate.Committed
	r.enqueueLocked(delegate.Message{
		Kind: delegate.MsgMap, From: r.cfg.ID, To: r.cfg.ID,
		Epoch: r.epoch, Round: r.round, Payload: m.warm,
	})
	r.counters.MigratePhaseLatencyHist.Add(now.Sub(m.phaseStart).Seconds())
	m.phaseStart = now
	if applied := r.collectLocked(now); !applied || r.node.Strategy() != rec.To {
		// The synthetic install cannot lose the fence race (the epoch
		// was just bumped) and the warm snapshot was validated at
		// DualTag entry, so this is a bug guard, not a code path.
		r.abortMigrationLocked(now, "commit install rejected", true)
		return
	}
	// collectLocked observed the flip and finalized (journaled the
	// Committed record, cleared r.mig); publish the flip to the data
	// plane and order the members over.
	r.lastMapTime = now
	r.publishPlacementLocked()
	r.broadcastMigrationLocked(MsgMigrateCommit, rec)
}

// handleMigrateLocked routes one inbound migration message. Called
// from handle with r.mu held; staged outbox/journal entries are
// flushed by handle after the lock is released.
func (r *Runtime) handleMigrateLocked(msg delegate.Message, now time.Time) {
	rec, err := migrate.Decode(msg.Payload)
	if err != nil {
		r.counters.MigrationMsgsRejected++
		r.cfg.logf("node %d: migration message from %d undecodable: %v", r.cfg.ID, msg.From, err)
		return
	}
	switch msg.Kind {
	case MsgMigratePropose:
		r.handleProposeLocked(msg, rec, now)
	case MsgMigrateWarm:
		r.handleWarmLocked(msg, rec, now)
	case MsgMigrateCommit:
		r.handleCommitLocked(msg, rec, now)
	case MsgMigrateAbort:
		if r.mig != nil && r.mig.rec.ID == rec.ID && !r.mig.leader {
			r.abortMigrationLocked(now, fmt.Sprintf("abort ordered by %d", msg.From), false)
		}
	case MsgMigrateAck:
		r.handleAckLocked(msg, rec, now)
	}
}

// handleProposeLocked is a member accepting (or rejecting) a proposal.
func (r *Runtime) handleProposeLocked(msg delegate.Message, rec migrate.Record, now time.Time) {
	if rec.Phase != migrate.Proposed {
		return
	}
	if m := r.mig; m != nil {
		if m.rec.ID == rec.ID {
			r.ackMigrationLocked(msg.From, rec, m.phase) // leader retry: re-ack where we are
			return
		}
		if m.leader {
			// Two live leaders proposing distinct migrations: refuse the
			// newcomer; epochs and the re-election watchdog will settle
			// who leads, and rollback cleans up the loser.
			r.ackMigrationLocked(msg.From, rec, migrate.Aborted)
			return
		}
		// A newer proposal replaces a stale tracked attempt (its leader
		// is gone, or this state was resumed from the journal).
		r.abortMigrationLocked(now, fmt.Sprintf("superseded by migration %d from %d", rec.ID, msg.From), false)
	}
	if r.node.Strategy() != rec.From {
		r.ackMigrationLocked(msg.From, rec, migrate.Aborted)
		return
	}
	r.mig = &migration{
		phase:      migrate.Proposed,
		rec:        migrate.Record{Phase: migrate.Proposed, ID: rec.ID, From: rec.From, To: rec.To},
		proposer:   msg.From,
		start:      now,
		phaseStart: now,
		deadline:   now.Add(r.cfg.MigrateTimeout),
	}
	r.stageMigrationLocked(r.mig.rec)
	r.ackMigrationLocked(msg.From, rec, migrate.Proposed)
	r.cfg.logf("node %d: migration %d: accepted proposal %s -> %s from %d", r.cfg.ID, rec.ID, rec.From, rec.To, msg.From)
}

// handleWarmLocked is a member receiving the warm target snapshot: it
// validates the snapshot, opens its dual-tag window, journals the
// DualTag record (snapshot included, so a crash here resumes with the
// warm bytes), and acks. A node that never saw the proposal enters
// directly — the dual-tag record carries everything needed.
func (r *Runtime) handleWarmLocked(msg delegate.Message, rec migrate.Record, now time.Time) {
	if rec.Phase != migrate.DualTag || len(rec.Snapshot) == 0 {
		return
	}
	if tag, terr := placement.Tag(rec.Snapshot); terr != nil || tag != rec.To {
		// The warm snapshot does not carry the promised strategy: nack
		// so the leader rolls the whole migration back.
		r.counters.MigrationMsgsRejected++
		r.ackMigrationLocked(msg.From, rec, migrate.Aborted)
		r.cfg.logf("node %d: migration %d: warm snapshot tag mismatch (err=%v)", r.cfg.ID, rec.ID, terr)
		return
	}
	if _, derr := placement.Decode(rec.Snapshot, r.cfg.placementOptions()); derr != nil {
		r.counters.MigrationMsgsRejected++
		r.ackMigrationLocked(msg.From, rec, migrate.Aborted)
		r.cfg.logf("node %d: migration %d: warm snapshot undecodable: %v", r.cfg.ID, rec.ID, derr)
		return
	}
	switch {
	case r.node.Strategy() == rec.To:
		// Already cut over (a retry raced the commit): report success.
		r.ackMigrationLocked(msg.From, rec, migrate.Committed)
		return
	case r.node.Strategy() != rec.From:
		r.ackMigrationLocked(msg.From, rec, migrate.Aborted)
		return
	}
	m := r.mig
	if m != nil && m.rec.ID != rec.ID {
		if m.leader {
			r.ackMigrationLocked(msg.From, rec, migrate.Aborted)
			return
		}
		r.abortMigrationLocked(now, fmt.Sprintf("superseded by migration %d from %d", rec.ID, msg.From), false)
		m = nil
	}
	if m == nil {
		m = &migration{
			rec:        migrate.Record{ID: rec.ID, From: rec.From, To: rec.To},
			start:      now,
			phaseStart: now,
		}
		r.mig = m
	}
	if m.phase != migrate.DualTag {
		r.counters.MigratePhaseLatencyHist.Add(now.Sub(m.phaseStart).Seconds())
		m.phase = migrate.DualTag
		m.phaseStart = now
		r.stageMigrationLocked(rec) // snapshot included: a crash here resumes warm
	}
	m.warm = rec.Snapshot
	m.proposer = msg.From
	m.deadline = now.Add(r.cfg.MigrateTimeout)
	r.node.OpenDualTag(rec.To)
	r.ackMigrationLocked(msg.From, rec, migrate.DualTag)
	r.cfg.logf("node %d: migration %d: dual-tag window open for %s", r.cfg.ID, rec.ID, rec.To)
}

// handleCommitLocked is a member performing the cutover: install the
// warm placement through the node's open dual-tag window at the
// commit fence. A member holding no warm snapshot (it slept through
// the window) opens a catch-up window instead and flips on the new
// delegate map that must follow.
func (r *Runtime) handleCommitLocked(msg delegate.Message, rec migrate.Record, now time.Time) {
	if rec.Phase != migrate.Committed {
		return
	}
	if r.node.Strategy() == rec.To {
		r.ackMigrationLocked(msg.From, rec, migrate.Committed) // duplicate commit
		return
	}
	m := r.mig
	if m != nil && m.rec.ID == rec.ID && len(m.warm) > 0 {
		r.enqueueLocked(delegate.Message{
			Kind: delegate.MsgMap, From: msg.From, To: r.cfg.ID,
			Epoch: msg.Epoch, Round: msg.Round, Payload: m.warm,
		})
		if applied := r.collectLocked(now); applied {
			r.counters.MapsInstalled++
			r.lastMapTime = now
			r.publishPlacementLocked()
		}
		if r.node.Strategy() == rec.To {
			r.ackMigrationLocked(msg.From, rec, migrate.Committed)
		}
		return
	}
	// No warm snapshot (never saw the window, or a stale commit): open
	// a catch-up window so the next new-strategy map from the delegate
	// flips this node; the deadline closes it if nothing comes.
	r.node.OpenDualTag(rec.To)
	r.mig = &migration{
		phase:      migrate.DualTag,
		rec:        migrate.Record{ID: rec.ID, From: rec.From, To: rec.To},
		proposer:   msg.From,
		start:      now,
		phaseStart: now,
		deadline:   now.Add(r.cfg.MigrateTimeout),
	}
	r.cfg.logf("node %d: migration %d: commit seen without warm snapshot; catch-up window open for %s", r.cfg.ID, rec.ID, rec.To)
}

// handleAckLocked is the leader tallying member acknowledgements.
func (r *Runtime) handleAckLocked(msg delegate.Message, rec migrate.Record, now time.Time) {
	if l := r.migLinger; l != nil && l.rec.ID == rec.ID && rec.Phase > l.acks[msg.From] {
		l.acks[msg.From] = rec.Phase
	}
	m := r.mig
	if m == nil || !m.leader || m.rec.ID != rec.ID {
		return
	}
	if rec.Phase == migrate.Aborted {
		r.abortMigrationLocked(now, fmt.Sprintf("nacked by %d", msg.From), true)
		return
	}
	if rec.Phase > m.acks[msg.From] {
		m.acks[msg.From] = rec.Phase
	}
	r.migrateAdvanceLocked(now)
}

// resumeMigration rehydrates the in-flight migration a crash
// interrupted, from its journaled phase record. The proposer is
// unknown after a restart (-1): only explicit messages, the next
// leader's retries, or the deadline settle a resumed phase. Called
// from Start before the runtime's goroutines exist, so no lock.
func (r *Runtime) resumeMigration(rec migrate.Record, now time.Time) {
	m := &migration{
		phase:      rec.Phase,
		rec:        migrate.Record{Phase: rec.Phase, ID: rec.ID, From: rec.From, To: rec.To},
		proposer:   -1,
		start:      now,
		phaseStart: now,
		deadline:   now.Add(r.cfg.MigrateTimeout),
	}
	switch rec.Phase {
	case migrate.DualTag:
		if _, derr := placement.Decode(rec.Snapshot, r.cfg.placementOptions()); derr != nil {
			// The journaled warm snapshot no longer decodes (software
			// mismatch): roll back instead of resuming a window we could
			// never install through.
			r.cfg.logf("node %d: migration %d: journaled warm snapshot undecodable (%v); rolling back", r.cfg.ID, rec.ID, derr)
			aborted := m.rec
			aborted.Phase = migrate.Aborted
			if r.cfg.Journal != nil {
				if err := r.cfg.Journal.Append(journal.Record{Epoch: r.epoch, Round: r.round, Map: aborted.Encode()}); err != nil {
					r.cfg.logf("node %d: journal append: %v", r.cfg.ID, err)
				}
			}
			r.counters.MigrationsAborted++
			return
		}
		m.warm = append([]byte(nil), rec.Snapshot...)
		r.node.OpenDualTag(rec.To)
	case migrate.Committed:
		// The commit was decided but the new placement never reached the
		// journal: reopen a catch-up window and let the cluster's next
		// map (or the deadline) settle it.
		m.phase = migrate.DualTag
		r.node.OpenDualTag(rec.To)
	}
	r.mig = m
	r.recoveredMig = rec.Phase.String()
	r.cfg.logf("node %d: migration %d: resumed %s -> %s in phase %s from journal", r.cfg.ID, rec.ID, rec.From, rec.To, rec.Phase)
}
