package cluster

import (
	"testing"
	"time"

	"anurand/internal/delegate"
)

// TestMemNetDeliversInline checks the fast path: with no configured
// delay, a send is delivered before Send returns and nothing ever
// touches the scheduler heap.
func TestMemNetDeliversInline(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	a, b := mn.Endpoint(1), mn.Endpoint(2)

	msg := delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Epoch: 3, Round: 9}
	if err := a.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case got := <-b.Recv():
		if got.Kind != msg.Kind || got.From != msg.From || got.To != msg.To ||
			got.Epoch != msg.Epoch || got.Round != msg.Round {
			t.Fatalf("got %+v, want %+v", got, msg)
		}
	default:
		t.Fatal("zero-delay send was not delivered inline")
	}
	if n := mn.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after inline delivery, want 0", n)
	}
	st := mn.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want Sent=1 Delivered=1", st)
	}
}

// TestMemNetDelayedDelivery checks the scheduler path: a fixed nonzero
// delay parks the envelope on the heap and delivers it afterwards.
func TestMemNetDelayedDelivery(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{MinDelay: 20 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	a, b := mn.Endpoint(1), mn.Endpoint(2)

	start := time.Now()
	if !a.SendAsync(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Round: 1}) {
		t.Fatal("SendAsync refused on open fabric")
	}
	select {
	case <-b.Recv():
		if el := time.Since(start); el < 10*time.Millisecond {
			t.Fatalf("delayed message arrived after %v, want >= ~20ms", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed message never delivered")
	}
}

// TestMemNetHeapOrdersDeliveries checks the min-heap releases envelopes
// in due order, not insertion order: a later-sent short-delay message
// overtakes an earlier long-delay one.
func TestMemNetHeapOrdersDeliveries(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	a, b := mn.Endpoint(1), mn.Endpoint(2)

	if err := mn.SetConfig(ChaosConfig{MinDelay: 80 * time.Millisecond, MaxDelay: 80 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	_ = a.Send(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Round: 1}) // slow
	if err := mn.SetConfig(ChaosConfig{MinDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	_ = a.Send(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Round: 2}) // fast, sent second

	var got []uint64
	for len(got) < 2 {
		select {
		case m := <-b.Recv():
			got = append(got, m.Round)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 2 messages delivered", len(got))
		}
	}
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("delivery order %v, want [2 1] (due order, not send order)", got)
	}
}

// TestMemNetChaosAccounting checks the drop/duplicate ledger balances:
// every accepted copy is eventually delivered, dropped, or overflowed.
func TestMemNetChaosAccounting(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{
		Drop:      0.2,
		Duplicate: 0.2,
		MaxDelay:  2 * time.Millisecond,
		Seed:      42,
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	a, b := mn.Endpoint(1), mn.Endpoint(2)

	const n = 500
	done := make(chan struct{})
	var received int
	go func() {
		defer close(done)
		for {
			select {
			case <-b.Recv():
				received++
			case <-time.After(300 * time.Millisecond):
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		_ = a.Send(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Round: uint64(i)})
	}
	<-done

	st := mn.Stats()
	if st.Sent != n {
		t.Fatalf("Sent = %d, want %d", st.Sent, n)
	}
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("chaos never fired at 20%%/20%%: %+v", st)
	}
	copies := st.Sent - st.Dropped + st.Duplicated
	if st.Delivered+st.Overflowed != copies {
		t.Fatalf("ledger imbalance: delivered %d + overflowed %d != copies %d (%+v)",
			st.Delivered, st.Overflowed, copies, st)
	}
	if uint64(received) != st.Delivered {
		t.Fatalf("receiver saw %d, fabric counted %d delivered", received, st.Delivered)
	}
	if mn.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", mn.Pending())
	}
}

// TestMemNetClosedEndpointReplaced mirrors the ChaosNetwork restart
// semantics: Endpoint after Close hands back a fresh endpoint, and
// traffic scheduled for the dead one vanishes without panicking.
func TestMemNetClosedEndpointReplaced(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{MaxDelay: 10 * time.Millisecond, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	a, b := mn.Endpoint(1), mn.Endpoint(2)

	for i := 0; i < 50; i++ {
		_ = a.Send(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Round: uint64(i)})
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := mn.Endpoint(2)
	if b2 == b {
		t.Fatal("Endpoint returned the closed endpoint instead of a fresh one")
	}
	// Let any envelopes scheduled for the dead endpoint come due; they
	// must be swallowed, not delivered to its successor's channel via
	// the old reference.
	waitFor(t, 2*time.Second, "scheduled envelopes drain", func() bool { return mn.Pending() == 0 })
	if !b2.SendAsync(delegate.Message{Kind: MsgHeartbeat, From: 2, To: 2}) {
		t.Fatal("fresh endpoint refused SendAsync")
	}
}

// TestMemNetCloseStopsFabric checks Close is idempotent and sends on a
// closed fabric are refused on the async path and silently swallowed on
// the sync one.
func TestMemNetCloseStopsFabric(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{Seed: 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := mn.Endpoint(1)
	mn.Close()
	mn.Close()
	if a.SendAsync(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 1}) {
		t.Fatal("SendAsync accepted on closed fabric")
	}
	if err := a.Send(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 1}); err != nil {
		t.Fatalf("Send on closed fabric should be silent loss, got %v", err)
	}
	if st := mn.Stats(); st.Sent != 0 {
		t.Fatalf("closed fabric counted traffic: %+v", st)
	}
}
