package cluster

import (
	"time"

	"sync"

	"anurand/internal/delegate"
	"anurand/internal/rng"
)

// MemNetwork is the scale sibling of ChaosNetwork: the same seeded
// drop/duplicate/delay model behind the same Transport face, but built
// to carry hundreds of nodes' gossip in one process. ChaosNetwork
// spawns a time.AfterFunc (a timer plus a goroutine wakeup) for every
// delayed copy, and allocates a delay slice per send — harmless at 7
// nodes, ruinous at 200 where a single heartbeat interval moves tens of
// thousands of messages. MemNetwork instead runs ONE scheduler
// goroutine over a value min-heap of pending envelopes: a send pushes a
// by-value envelope (no allocation once the heap's backing array has
// grown), zero-delay copies are delivered inline without touching the
// scheduler at all, and one reused timer sleeps until the earliest due
// envelope. The cost per message is one mutex acquisition, which is
// exactly the budget the 50–200 node soak harness needs.
type MemNetwork struct {
	mu      sync.Mutex
	cfg     ChaosConfig
	src     *rng.Source
	eps     map[delegate.NodeID]*MemEndpoint
	heap    []memEnv // min-heap on due, scheduler-owned ordering
	stats   ChaosStats
	recvBuf int
	closed  bool

	wake chan struct{} // cap 1: nudges the scheduler after a push
	done chan struct{}
}

// memEnv is one scheduled delivery. It travels by value through the
// heap so steady-state traffic never allocates.
type memEnv struct {
	due time.Time
	to  delegate.NodeID
	msg delegate.Message
}

// NewMemNetwork creates the fabric and starts its scheduler. Endpoints
// receive into buffers of recvBuf messages (0 means a default sized for
// soak traffic); a full inbox is overflow loss, never a block.
func NewMemNetwork(cfg ChaosConfig, recvBuf int) (*MemNetwork, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if recvBuf <= 0 {
		recvBuf = 1024
	}
	mn := &MemNetwork{
		cfg:     cfg,
		src:     rng.New(cfg.Seed),
		eps:     make(map[delegate.NodeID]*MemEndpoint),
		recvBuf: recvBuf,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go mn.run()
	return mn, nil
}

// SetConfig swaps the loss/delay profile at runtime; the randomness
// stream keeps its position and already-scheduled envelopes keep their
// old delays.
func (mn *MemNetwork) SetConfig(cfg ChaosConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	mn.mu.Lock()
	cfg.Seed = mn.cfg.Seed
	mn.cfg = cfg
	mn.mu.Unlock()
	return nil
}

// Endpoint creates (or returns) the transport endpoint for a node. As
// with ChaosNetwork, a closed endpoint is replaced by a fresh one — a
// restarted process binds a new socket — and envelopes scheduled for
// the dead predecessor vanish on delivery.
func (mn *MemNetwork) Endpoint(id delegate.NodeID) *MemEndpoint {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	if ep, ok := mn.eps[id]; ok && !ep.closed {
		return ep
	}
	ep := &MemEndpoint{
		mn:   mn,
		id:   id,
		recv: make(chan delegate.Message, mn.recvBuf),
	}
	mn.eps[id] = ep
	return ep
}

// Stats returns the fabric's counters.
func (mn *MemNetwork) Stats() ChaosStats {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	return mn.stats
}

// Pending returns how many delayed envelopes await delivery — a soak
// can watch it drain to zero before reading final counters.
func (mn *MemNetwork) Pending() int {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	return len(mn.heap)
}

// Close stops the scheduler and all delivery. Idempotent.
func (mn *MemNetwork) Close() {
	mn.mu.Lock()
	if mn.closed {
		mn.mu.Unlock()
		return
	}
	mn.closed = true
	mn.heap = nil
	mn.mu.Unlock()
	close(mn.done)
}

// run is the single scheduler goroutine: deliver everything due, then
// sleep on one reused timer until the next due envelope or a wake.
func (mn *MemNetwork) run() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		wait := time.Duration(-1)
		mn.mu.Lock()
		if mn.closed {
			mn.mu.Unlock()
			return
		}
		if len(mn.heap) > 0 {
			now := time.Now()
			for len(mn.heap) > 0 {
				e := mn.heap[0]
				if e.due.After(now) {
					wait = e.due.Sub(now)
					break
				}
				mn.popLocked()
				mn.deliverLocked(e.to, e.msg)
			}
		}
		mn.mu.Unlock()
		if wait < 0 {
			// Heap empty: nothing to time out on.
			select {
			case <-mn.wake:
			case <-mn.done:
				return
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-mn.wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-mn.done:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// deliverLocked hands one copy to the destination endpoint. A missing
// or closed endpoint swallows the message; a full inbox counts as
// overflow loss.
func (mn *MemNetwork) deliverLocked(to delegate.NodeID, msg delegate.Message) {
	dest, ok := mn.eps[to]
	if !ok || dest.closed {
		return
	}
	select {
	case dest.recv <- msg:
		mn.stats.Delivered++
	default:
		mn.stats.Overflowed++
	}
}

// pushLocked adds an envelope to the min-heap (sift-up on due time).
func (mn *MemNetwork) pushLocked(e memEnv) {
	mn.heap = append(mn.heap, e)
	i := len(mn.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mn.heap[i].due.Before(mn.heap[parent].due) {
			break
		}
		mn.heap[i], mn.heap[parent] = mn.heap[parent], mn.heap[i]
		i = parent
	}
}

// popLocked removes the minimum envelope (sift-down), keeping the
// backing array for reuse.
func (mn *MemNetwork) popLocked() {
	n := len(mn.heap) - 1
	mn.heap[0] = mn.heap[n]
	mn.heap[n] = memEnv{} // drop payload reference
	mn.heap = mn.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && mn.heap[l].due.Before(mn.heap[min].due) {
			min = l
		}
		if r < n && mn.heap[r].due.Before(mn.heap[min].due) {
			min = r
		}
		if min == i {
			return
		}
		mn.heap[i], mn.heap[min] = mn.heap[min], mn.heap[i]
		i = min
	}
}

// MemEndpoint is one node's attachment to the fabric.
type MemEndpoint struct {
	mn     *MemNetwork
	id     delegate.NodeID
	recv   chan delegate.Message
	closed bool
}

// send runs the chaos model for one message under the fabric lock:
// zero-delay copies are delivered inline, delayed copies go on the
// heap, and the scheduler is nudged only when something was scheduled.
func (e *MemEndpoint) send(msg delegate.Message) bool {
	mn := e.mn
	mn.mu.Lock()
	if mn.closed || e.closed {
		mn.mu.Unlock()
		return false
	}
	mn.stats.Sent++
	if mn.cfg.Drop > 0 && mn.src.Float64() < mn.cfg.Drop {
		mn.stats.Dropped++
		mn.mu.Unlock()
		return true // accepted, then lost — as on the wire
	}
	copies := 1
	if mn.cfg.Duplicate > 0 && mn.src.Float64() < mn.cfg.Duplicate {
		copies = 2
		mn.stats.Duplicated++
	}
	span := float64(mn.cfg.MaxDelay - mn.cfg.MinDelay)
	scheduled := false
	var now time.Time
	for i := 0; i < copies; i++ {
		d := mn.cfg.MinDelay
		if span > 0 {
			d += time.Duration(mn.src.Float64() * span)
		}
		if d <= 0 {
			mn.deliverLocked(msg.To, msg)
			continue
		}
		if now.IsZero() {
			now = time.Now()
		}
		mn.pushLocked(memEnv{due: now.Add(d), to: msg.To, msg: msg})
		scheduled = true
	}
	mn.mu.Unlock()
	if scheduled {
		select {
		case mn.wake <- struct{}{}:
		default:
		}
	}
	return true
}

// Send implements Transport. Loss is silent, as on a real network.
func (e *MemEndpoint) Send(msg delegate.Message) error {
	e.send(msg)
	return nil
}

// SendAsync implements AsyncTransport. The fabric never blocks a
// sender (a full inbox is overflow loss), so the async path is the
// chaos model itself; false only when the fabric or endpoint closed.
func (e *MemEndpoint) SendAsync(msg delegate.Message) bool {
	return e.send(msg)
}

// Recv implements Transport.
func (e *MemEndpoint) Recv() <-chan delegate.Message { return e.recv }

// Close implements Transport: the endpoint stops receiving. The
// channel is left open — consumers exit on their own stop signal — so
// a late scheduled delivery can never panic on a closed channel.
func (e *MemEndpoint) Close() error {
	e.mn.mu.Lock()
	e.closed = true
	e.mn.mu.Unlock()
	return nil
}
