package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"anurand/internal/delegate"
)

// MsgHeartbeat is the runtime's liveness beacon. It rides the delegate
// wire format with a kind outside the protocol range; the runtime
// consumes heartbeats itself and never hands them to the Node, so the
// protocol layer stays ignorant of them. The Round field carries the
// sender's current round — the delegate's heartbeats are also its
// round announcements.
const MsgHeartbeat delegate.MsgKind = 0x10

// Transport moves protocol messages between runtimes. Send may be
// called from multiple goroutines; it delivers at-most-once per call
// and reports a definite local failure (an unreachable peer looks like
// a lost message, not an error, on lossy transports). Recv is the
// inbound stream for the local node; it may be closed by Close, and
// consumers must also watch their own stop signal.
type Transport interface {
	Send(msg delegate.Message) error
	Recv() <-chan delegate.Message
	Close() error
}

// AsyncTransport is a Transport with a non-blocking fan-out path.
// SendAsync enqueues the message for delivery and returns immediately:
// true means the transport accepted it (delivery remains best-effort,
// as with Send on a lossy fabric), false means it was dropped on the
// floor — per-peer queue full or transport closed. The runtime prefers
// this path for its gossip fan-out so one slow or dead peer can never
// stall a round's broadcast to the others; drops are surfaced in Stats
// and the protocol's retry cadence (re-announced rounds, re-broadcast
// maps, migration retries) heals them exactly like wire loss.
type AsyncTransport interface {
	Transport
	SendAsync(msg delegate.Message) bool
}

// AddressBook maps node ids to dialable addresses; it is safe for
// concurrent use so listeners can register while dialers look up.
type AddressBook struct {
	mu    sync.RWMutex
	addrs map[delegate.NodeID]string
}

// NewAddressBook creates an empty address book.
func NewAddressBook() *AddressBook {
	return &AddressBook{addrs: make(map[delegate.NodeID]string)}
}

// Set registers or replaces the address of a node.
func (b *AddressBook) Set(id delegate.NodeID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

// Get returns the registered address of a node.
func (b *AddressBook) Get(id delegate.NodeID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	addr, ok := b.addrs[id]
	return addr, ok
}

// All returns a copy of the registered addresses.
func (b *AddressBook) All() map[delegate.NodeID]string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[delegate.NodeID]string, len(b.addrs))
	for id, addr := range b.addrs {
		out[id] = addr
	}
	return out
}

// Wire framing shared by every stream transport (version 3 — version 2
// had no flags byte, version 1 neither ver nor epoch; both are rejected
// by version check, so a mixed-version cluster fails loudly at the
// first frame instead of corrupting state):
//
//	ver u8 | kind u8 | flags u8 | from i32 | to i32 | epoch u64 | round u64 | len u32 | payload
//
// little-endian, matching the integer-only encodings of package anu.
// The flags byte gossips out-of-band sender state on every message;
// today its only bit is FlagMigrating.
const (
	frameVersion   = 3
	frameHeaderLen = 1 + 1 + 1 + 4 + 4 + 8 + 8 + 4
)

// FlagMigrating is set on every frame a node sends while a live
// strategy migration is in flight on it (Proposed or DualTag). It is
// informational gossip — surfaced in Stats so operators can see a
// cutover propagate — never a correctness input: reordered frames make
// flag edges unreliable, so rollback decisions ride the explicit
// migration messages and timeouts instead.
const FlagMigrating uint8 = 1 << 0

// errFrameVersion marks a frame whose version byte is not ours — the
// peer speaks an older (or newer) protocol build. Stream transports
// count these separately from transport errors: a v2 peer dialing a v3
// cluster is an operator mistake worth its own counter.
var errFrameVersion = fmt.Errorf("cluster: unsupported frame version")

// putFrameHeader encodes msg's header into dst, which must be at least
// frameHeaderLen bytes. It never allocates — this is the wire hot path,
// and at cluster scale every heartbeat to every peer passes through it.
func putFrameHeader(dst []byte, msg delegate.Message) {
	_ = dst[frameHeaderLen-1]
	dst[0] = frameVersion
	dst[1] = byte(msg.Kind)
	dst[2] = msg.Flags
	binary.LittleEndian.PutUint32(dst[3:7], uint32(msg.From))
	binary.LittleEndian.PutUint32(dst[7:11], uint32(msg.To))
	binary.LittleEndian.PutUint64(dst[11:19], msg.Epoch)
	binary.LittleEndian.PutUint64(dst[19:27], msg.Round)
	binary.LittleEndian.PutUint32(dst[27:31], uint32(len(msg.Payload)))
}

// appendFrame appends the complete wire frame for msg to dst and
// returns the extended slice. With a caller-reused buffer of sufficient
// capacity it is allocation-free.
func appendFrame(dst []byte, msg delegate.Message) []byte {
	off := len(dst)
	need := off + frameHeaderLen + len(msg.Payload)
	if cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+frameHeaderLen]
	putFrameHeader(dst[off:], msg)
	return append(dst, msg.Payload...)
}

// writeFrame writes one framed message. It allocates a fresh buffer per
// call; the pooled transports use appendFrame / putFrameHeader with
// per-connection buffers instead.
func writeFrame(w io.Writer, msg delegate.Message) error {
	buf := appendFrame(make([]byte, 0, frameHeaderLen+len(msg.Payload)), msg)
	_, err := w.Write(buf)
	return err
}

// readFrameBuf reads one framed message using the caller's header
// scratch (at least frameHeaderLen bytes), rejecting unknown frame
// versions (errFrameVersion) and payloads larger than maxPayload so a
// corrupt length field cannot exhaust memory. An empty payload — the
// dominant case: heartbeats — returns a nil Payload without allocating,
// so a per-connection read loop holding its own scratch decodes
// heartbeats at zero allocations.
func readFrameBuf(r io.Reader, head []byte, maxPayload int) (delegate.Message, error) {
	head = head[:frameHeaderLen]
	if _, err := io.ReadFull(r, head); err != nil {
		return delegate.Message{}, err
	}
	if head[0] != frameVersion {
		return delegate.Message{}, fmt.Errorf("%w: got %d, want %d", errFrameVersion, head[0], frameVersion)
	}
	n := binary.LittleEndian.Uint32(head[27:31])
	if int(n) > maxPayload {
		return delegate.Message{}, fmt.Errorf("cluster: frame payload %d exceeds limit %d", n, maxPayload)
	}
	var payload []byte
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return delegate.Message{}, err
		}
	}
	return delegate.Message{
		Kind:    delegate.MsgKind(head[1]),
		Flags:   head[2],
		From:    delegate.NodeID(binary.LittleEndian.Uint32(head[3:7])),
		To:      delegate.NodeID(binary.LittleEndian.Uint32(head[7:11])),
		Epoch:   binary.LittleEndian.Uint64(head[11:19]),
		Round:   binary.LittleEndian.Uint64(head[19:27]),
		Payload: payload,
	}, nil
}

// readFrame is readFrameBuf with a throwaway header scratch, for tests
// and fuzzing.
func readFrame(r io.Reader, maxPayload int) (delegate.Message, error) {
	var head [frameHeaderLen]byte
	return readFrameBuf(r, head[:], maxPayload)
}
