package cluster

import (
	"fmt"
	"time"

	"sync"

	"anurand/internal/delegate"
	"anurand/internal/rng"
)

// ChaosConfig shapes the in-memory lossy network. Each message is
// independently dropped with probability Drop, duplicated with
// probability Duplicate, and every delivered copy is delayed by a
// uniform draw from [MinDelay, MaxDelay] — random per-copy delays are
// what reorder traffic, exactly like queueing jitter on a real path.
type ChaosConfig struct {
	Drop      float64
	Duplicate float64
	MinDelay  time.Duration
	MaxDelay  time.Duration
	Seed      uint64
}

// validate rejects nonsensical chaos parameters.
func (c ChaosConfig) validate() error {
	if c.Drop < 0 || c.Drop >= 1 || c.Duplicate < 0 || c.Duplicate >= 1 {
		return fmt.Errorf("cluster: chaos probabilities (%g, %g) outside [0, 1)", c.Drop, c.Duplicate)
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("cluster: chaos delays (%v, %v) invalid", c.MinDelay, c.MaxDelay)
	}
	return nil
}

// ChaosStats counts what the network did to traffic.
type ChaosStats struct {
	Sent, Dropped, Duplicated, Delivered, Overflowed uint64
}

// ChaosNetwork connects ChaosEndpoints through a seeded lossy,
// reordering fabric. It exists for soak tests: the randomness stream
// is deterministic for a seed, though actual interleaving still
// depends on goroutine scheduling.
type ChaosNetwork struct {
	mu     sync.Mutex
	cfg    ChaosConfig
	src    *rng.Source
	eps    map[delegate.NodeID]*ChaosEndpoint
	stats  ChaosStats
	closed bool
}

// NewChaosNetwork creates a chaos fabric.
func NewChaosNetwork(cfg ChaosConfig) (*ChaosNetwork, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ChaosNetwork{
		cfg: cfg,
		src: rng.New(cfg.Seed),
		eps: make(map[delegate.NodeID]*ChaosEndpoint),
	}, nil
}

// SetConfig swaps the loss/delay profile at runtime (for example to
// calm the network at the end of a soak); the randomness stream keeps
// its position.
func (cn *ChaosNetwork) SetConfig(cfg ChaosConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	cn.mu.Lock()
	cfg.Seed = cn.cfg.Seed
	cn.cfg = cfg
	cn.mu.Unlock()
	return nil
}

// Endpoint creates (or returns) the transport endpoint for a node. A
// closed endpoint is replaced by a fresh one: a restarted process binds
// a new socket, and anything queued for its dead predecessor vanishes.
func (cn *ChaosNetwork) Endpoint(id delegate.NodeID) *ChaosEndpoint {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if ep, ok := cn.eps[id]; ok && !ep.closed {
		return ep
	}
	ep := &ChaosEndpoint{
		cn:   cn,
		id:   id,
		recv: make(chan delegate.Message, 1024),
	}
	cn.eps[id] = ep
	return ep
}

// Stats returns the fabric's counters.
func (cn *ChaosNetwork) Stats() ChaosStats {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.stats
}

// Close stops all delivery. In-flight timers become no-ops.
func (cn *ChaosNetwork) Close() {
	cn.mu.Lock()
	cn.closed = true
	cn.mu.Unlock()
}

// deliver hands one copy to the destination endpoint unless the
// fabric or the endpoint has closed; a full inbox counts as overflow
// loss, never a block.
func (cn *ChaosNetwork) deliver(to delegate.NodeID, msg delegate.Message) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	dest, ok := cn.eps[to]
	if !ok || cn.closed || dest.closed {
		return
	}
	select {
	case dest.recv <- msg:
		cn.stats.Delivered++
	default:
		cn.stats.Overflowed++
	}
}

// ChaosEndpoint is one node's attachment to the chaos fabric.
type ChaosEndpoint struct {
	cn     *ChaosNetwork
	id     delegate.NodeID
	recv   chan delegate.Message
	closed bool
}

// Send implements Transport. Loss is silent, as on a real network.
func (e *ChaosEndpoint) Send(msg delegate.Message) error {
	cn := e.cn
	cn.mu.Lock()
	if cn.closed || e.closed {
		cn.mu.Unlock()
		return nil // a dead endpoint's packets vanish
	}
	cn.stats.Sent++
	if cn.cfg.Drop > 0 && cn.src.Float64() < cn.cfg.Drop {
		cn.stats.Dropped++
		cn.mu.Unlock()
		return nil
	}
	copies := 1
	if cn.cfg.Duplicate > 0 && cn.src.Float64() < cn.cfg.Duplicate {
		copies = 2
		cn.stats.Duplicated++
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		span := cn.cfg.MaxDelay - cn.cfg.MinDelay
		delays[i] = cn.cfg.MinDelay + time.Duration(cn.src.Float64()*float64(span))
	}
	cn.mu.Unlock()

	for _, d := range delays {
		if d <= 0 {
			cn.deliver(msg.To, msg)
			continue
		}
		time.AfterFunc(d, func() { cn.deliver(msg.To, msg) })
	}
	return nil
}

// SendAsync implements AsyncTransport. Send never blocks on this
// fabric (delayed copies ride timers, a full inbox is overflow loss),
// so the async path is Send itself; true means the fabric accepted the
// message, whatever it then did to it.
func (e *ChaosEndpoint) SendAsync(msg delegate.Message) bool {
	e.Send(msg)
	return true
}

// Recv implements Transport.
func (e *ChaosEndpoint) Recv() <-chan delegate.Message { return e.recv }

// Close implements Transport: the endpoint stops receiving (a crashed
// process). The channel is left open — consumers exit on their own
// stop signal — so late timers can never panic on a closed channel.
func (e *ChaosEndpoint) Close() error {
	e.cn.mu.Lock()
	e.closed = true
	e.cn.mu.Unlock()
	return nil
}
