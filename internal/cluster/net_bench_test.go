package cluster

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"anurand/internal/delegate"
)

// benchTCPPair is testTCPPair for benchmarks (testing.TB), with the
// first frame already exchanged so the pooled connection, its writer
// goroutine, and the reader's bufio scratch all exist before timing
// starts.
func benchTCPPair(tb testing.TB) (*TCPTransport, *TCPTransport) {
	tb.Helper()
	book := NewAddressBook()
	a, err := ListenTCP(1, book, DefaultTCPOptions())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { a.Close() })
	b, err := ListenTCP(2, book, DefaultTCPOptions())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { b.Close() })
	if err := a.Send(delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2}); err != nil {
		tb.Fatal(err)
	}
	select {
	case <-b.Recv():
	case <-time.After(5 * time.Second):
		tb.Fatal("warmup frame never arrived")
	}
	return a, b
}

// BenchmarkFrameEncode is the outbound hot path: header + payload into
// a reused per-connection buffer. Gated at 0 allocs/op.
func BenchmarkFrameEncode(b *testing.B) {
	msg := delegate.Message{
		Kind: delegate.MsgReport, Flags: FlagMigrating,
		From: 3, To: 7, Epoch: 2, Round: 9,
		Payload: bytes.Repeat([]byte{0xAB}, 256),
	}
	buf := make([]byte, 0, frameHeaderLen+len(msg.Payload))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], msg)
	}
	if len(buf) != frameHeaderLen+len(msg.Payload) {
		b.Fatal("bad frame length")
	}
}

// BenchmarkFrameDecodeHeartbeat is the inbound hot path for the
// dominant frame kind: an empty-payload heartbeat decoded with a
// caller-held header scratch. Gated at 0 allocs/op.
func BenchmarkFrameDecodeHeartbeat(b *testing.B) {
	wire := appendFrame(nil, delegate.Message{Kind: MsgHeartbeat, From: 3, To: 7, Epoch: 2, Round: 9})
	r := bytes.NewReader(wire)
	var head [frameHeaderLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(wire)
		msg, err := readFrameBuf(r, head[:], 1<<20)
		if err != nil || msg.Round != 9 {
			b.Fatalf("decode: %v %+v", err, msg)
		}
	}
}

// BenchmarkHeartbeatSendRecv measures the full wire round: SendAsync
// on one TCP transport, frame over loopback, Recv on the other. The
// steady state — enqueue to the peer's writer, header-scratch write,
// bufio read into a reused header — is allocation-free end to end;
// gated at 0 allocs/op.
func BenchmarkHeartbeatSendRecv(b *testing.B) {
	a, peer := benchTCPPair(b)
	msg := delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Epoch: 1}
	recv := peer.Recv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Round = uint64(i)
		if !a.SendAsync(msg) {
			b.Fatal("SendAsync refused")
		}
		if got := <-recv; got.Round != msg.Round {
			b.Fatalf("round %d, want %d", got.Round, msg.Round)
		}
	}
	b.StopTimer()
	if st := a.Stats(); st.QueueFullDrops != 0 {
		b.Fatalf("lock-step benchmark dropped frames: %+v", st)
	}
}

// BenchmarkBroadcastEnqueue measures one gossip fan-out on the memnet
// fabric: SendAsync to every peer of a 50-node cluster, zero-delay
// inline delivery. The whole fan-out is allocation-free; gated at
// 0 allocs/op.
func BenchmarkBroadcastEnqueue(b *testing.B) {
	const n = 50
	mn, err := NewMemNetwork(ChaosConfig{Seed: 5}, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer mn.Close()
	eps := make([]*MemEndpoint, n)
	for i := range eps {
		eps[i] = mn.Endpoint(delegate.NodeID(i))
	}
	msg := delegate.Message{Kind: MsgHeartbeat, From: 0, Epoch: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Round = uint64(i)
		for p := 1; p < n; p++ {
			msg.To = delegate.NodeID(p)
			if !eps[0].SendAsync(msg) {
				b.Fatal("SendAsync refused")
			}
		}
	}
}

// TestTCPConcurrentSendersFrameIntegrity hammers one transport pair
// from many goroutines with payloads spanning the small-frame copy
// path and the writev path, and verifies every delivered frame intact.
// This is the regression test for the interleaving hazard the per-peer
// writer goroutine removes: before it, two goroutines inside
// conn.Write could interleave header and payload bytes on the stream.
func TestTCPConcurrentSendersFrameIntegrity(t *testing.T) {
	a, b := testTCPPair(t)
	const senders = 8
	const perSender = 150

	// sizes straddle smallFrame so both write paths run concurrently.
	sizes := []int{0, 1, 100, smallFrame - frameHeaderLen, smallFrame + 1, 3 * smallFrame}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				size := sizes[(s+i)%len(sizes)]
				payload := bytes.Repeat([]byte{byte(s)}, size)
				msg := delegate.Message{
					Kind: delegate.MsgReport, From: 1, To: 2,
					Epoch: uint64(s), Round: uint64(i), Payload: payload,
				}
				if err := a.Send(msg); err != nil {
					t.Errorf("sender %d msg %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	got := 0
	for got < senders*perSender {
		select {
		case msg := <-b.Recv():
			want := sizes[(int(msg.Epoch)+int(msg.Round))%len(sizes)]
			if len(msg.Payload) != want {
				t.Fatalf("frame (%d,%d): payload %d bytes, want %d", msg.Epoch, msg.Round, len(msg.Payload), want)
			}
			for j, c := range msg.Payload {
				if c != byte(msg.Epoch) {
					t.Fatalf("frame (%d,%d): byte %d is %#x, want %#x — interleaved frames",
						msg.Epoch, msg.Round, j, c, byte(msg.Epoch))
				}
			}
			got++
		case <-time.After(20 * time.Second):
			t.Fatalf("stalled at %d/%d frames", got, senders*perSender)
		}
	}
	<-done
	if st := a.Stats(); st.SendErrors != 0 {
		t.Fatalf("send errors under concurrency: %+v", st)
	}
}

// TestHeartbeatPathZeroAlloc pins the end-to-end heartbeat path —
// SendAsync, writer enqueue, wire write, bufio read, Recv — at zero
// heap allocations per message. testing.AllocsPerRun runs GC around
// the measurement, so background goroutines of this test's own
// transports are quiesced by the lock-step send/recv inside the loop.
func TestHeartbeatPathZeroAlloc(t *testing.T) {
	a, b := benchTCPPair(t)
	msg := delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Epoch: 1, Round: 1}
	recv := b.Recv()
	// Warm beyond the benchTCPPair frame so every lazily-grown scratch
	// (bufio fill, writer buffer) reaches steady state.
	for i := 0; i < 64; i++ {
		if !a.SendAsync(msg) {
			t.Fatal("warmup SendAsync refused")
		}
		<-recv
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !a.SendAsync(msg) {
			t.Fatal("SendAsync refused")
		}
		<-recv
	})
	if allocs != 0 {
		t.Fatalf("heartbeat send/recv allocates %.1f times per message, want 0", allocs)
	}
}

// TestMemNetSendZeroAlloc pins the memnet fast path (zero-delay inline
// delivery) at zero allocations — the property that lets one process
// carry a 200-node cluster's gossip.
func TestMemNetSendZeroAlloc(t *testing.T) {
	mn, err := NewMemNetwork(ChaosConfig{Seed: 11}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()
	a, b := mn.Endpoint(1), mn.Endpoint(2)
	msg := delegate.Message{Kind: MsgHeartbeat, From: 1, To: 2, Round: 1}
	recv := b.Recv()
	allocs := testing.AllocsPerRun(200, func() {
		if !a.SendAsync(msg) {
			t.Fatal("SendAsync refused")
		}
		<-recv
	})
	if allocs != 0 {
		t.Fatalf("memnet send/recv allocates %.1f times per message, want 0", allocs)
	}
}
