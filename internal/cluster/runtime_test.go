package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/hashx"
	"anurand/internal/placement"
)

// bootstrap builds the shared initial ANU map all members start from.
func bootstrap(t testing.TB, k int) ([]delegate.NodeID, []byte) {
	t.Helper()
	ids := make([]delegate.NodeID, k)
	for i := range ids {
		ids[i] = delegate.NodeID(i)
	}
	m, err := anu.New(hashx.NewFamily(42), ids)
	if err != nil {
		t.Fatal(err)
	}
	return ids, m.Encode()
}

// bootstrapStrategy is bootstrap for an arbitrary registered strategy.
func bootstrapStrategy(t testing.TB, k int, strategy string) ([]delegate.NodeID, []byte) {
	t.Helper()
	ids := make([]delegate.NodeID, k)
	for i := range ids {
		ids[i] = delegate.NodeID(i)
	}
	s, err := placement.New(strategy, ids, placement.Options{HashSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ids, s.Encode()
}

// closedLoopObserve models the paper's cluster: latency grows with the
// node's key-space share divided by its speed. Shares() makes it
// strategy-agnostic, so the same closed loop drives ANU and ring soaks.
func closedLoopObserve(speeds map[delegate.NodeID]float64) ObserveFunc {
	return func(s placement.Strategy, id delegate.NodeID) (uint64, float64) {
		share := s.Shares()[id]
		return uint64(1 + 1000*share), 0.002 + share/speeds[id]
	}
}

// converged reports whether every runtime holds a byte-identical map
// from the same round (and has installed at least one).
func converged(rts []*Runtime) bool {
	if len(rts) == 0 {
		return true
	}
	fp, mr := rts[0].Fingerprint(), rts[0].MapRound()
	if mr == 0 {
		return false
	}
	for _, rt := range rts[1:] {
		if rt.Fingerprint() != fp || rt.MapRound() != mr {
			return false
		}
	}
	return true
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func TestStartValidation(t *testing.T) {
	ids, snapshot := bootstrap(t, 3)
	cn, err := NewChaosNetwork(ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	bad := []Config{
		{ID: 0, Snapshot: snapshot, RoundInterval: time.Second},                     // no members
		{ID: 9, Members: ids, Snapshot: snapshot, RoundInterval: time.Second},       // not a member
		{ID: 0, Members: ids, Snapshot: snapshot},                                   // no cadence
		{ID: 0, Members: ids, Snapshot: []byte("junk"), RoundInterval: time.Second}, // bad snapshot
	}
	for i, cfg := range bad {
		cfg.Controller = anu.DefaultControllerConfig()
		if _, err := Start(cfg, cn.Endpoint(delegate.NodeID(50+i))); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRuntimeConvergesOverTCP(t *testing.T) {
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	book := NewAddressBook()
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		tr, err := ListenTCP(id, book, DefaultTCPOptions())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := Start(Config{
			ID:            id,
			Members:       ids,
			Snapshot:      snapshot,
			Controller:    anu.DefaultControllerConfig(),
			RoundInterval: 40 * time.Millisecond,
			Observe:       closedLoopObserve(speeds),
			Logf:          t.Logf,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()
	waitFor(t, 15*time.Second, "TCP cluster convergence", func() bool {
		return converged(rts) && rts[0].Stats().Tunes >= 3
	})
	for _, rt := range rts {
		s := rt.Stats()
		if s.Delegate != 0 {
			t.Errorf("node %d sees delegate %d, want 0", s.ID, s.Delegate)
		}
		if len(s.Live) != 3 {
			t.Errorf("node %d live view %v, want all 3", s.ID, s.Live)
		}
	}
	// The delegate's tunes saw reports beyond its own sample.
	if s := rts[0].Stats(); s.ReportsPerTune.Max() < 2 {
		t.Errorf("delegate tuned only on its own sample: %s", s.ReportsPerTune.String())
	}
}

// TestChaosSoakConvergence is the acceptance soak: a 5-node cluster on
// a lossy, duplicating, reordering transport, with the delegate
// crashed mid-run. All live nodes must converge to byte-identical
// fingerprints, the installed map round must never move backwards on
// any node, and an injected stale-round map must be rejected.
func TestChaosSoakConvergence(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{
		Drop:      0.15,
		Duplicate: 0.15,
		MinDelay:  0,
		MaxDelay:  25 * time.Millisecond,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 5)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		rt, err := Start(Config{
			ID:                id,
			Members:           ids,
			Snapshot:          snapshot,
			Controller:        anu.DefaultControllerConfig(),
			RoundInterval:     50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			FailAfter:         150 * time.Millisecond,
			ReportGrace:       30 * time.Millisecond,
			Observe:           closedLoopObserve(speeds),
		}, cn.Endpoint(id))
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()

	// Monitor: installed map rounds are monotonic on every node for the
	// whole soak — a stale map is provably never installed over a newer
	// one.
	stopMon := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		last := make([]uint64, len(rts))
		for {
			select {
			case <-stopMon:
				return
			case <-time.After(5 * time.Millisecond):
			}
			for i, rt := range rts {
				if mr := rt.MapRound(); mr < last[i] {
					t.Errorf("node %d installed map round regressed %d -> %d", i, last[i], mr)
				} else {
					last[i] = mr
				}
			}
		}
	}()

	time.Sleep(1200 * time.Millisecond) // chaotic steady state under node 0

	rts[0].Stop() // kill the delegate mid-run

	time.Sleep(1200 * time.Millisecond) // re-election and recovery, still under chaos

	// Calm the network (tiny jitter only) and require convergence of the
	// survivors under the successor delegate.
	if err := cn.SetConfig(ChaosConfig{MaxDelay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	live := rts[1:]
	waitFor(t, 20*time.Second, "survivor convergence after delegate crash", func() bool {
		if !converged(live) {
			return false
		}
		for _, rt := range live {
			if rt.Delegate() != 1 {
				return false
			}
		}
		return true
	})

	// The crashed node's region was released to the survivors.
	m := live[0].Map()
	if l := m.Length(0); l != 0 {
		t.Errorf("crashed node still owns %d ticks", l)
	}

	// Someone observed the re-election.
	var reelections uint64
	for _, rt := range live {
		reelections += rt.Stats().Reelections
	}
	if reelections == 0 {
		t.Error("no node observed a re-election after the delegate crash")
	}

	// Inject a stale-round map: it must be counted and rejected.
	target := live[2]
	beforeStale := target.Stats().StaleMapsRejected
	beforeRound := target.MapRound()
	if beforeRound <= 1 {
		t.Fatalf("soak ended at map round %d; cannot form a stale round", beforeRound)
	}
	inj := cn.Endpoint(99)
	if err := inj.Send(delegate.Message{
		Kind:    delegate.MsgMap,
		From:    4,
		To:      target.ID(),
		Epoch:   target.MapEpoch(), // same epoch: exercises the round guard
		Round:   1,
		Payload: snapshot,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stale map rejection", func() bool {
		return target.Stats().StaleMapsRejected > beforeStale
	})
	if mr := target.MapRound(); mr < beforeRound {
		t.Errorf("stale injection moved map round %d -> %d", beforeRound, mr)
	}

	// And a stale-epoch map with a racing round number: the epoch fence
	// must reject it even though its round is far ahead.
	beforeEpochStale := target.Stats().StaleEpochsRejected
	fenceEpoch, fenceRound := target.MapEpoch(), target.MapRound()
	if fenceEpoch == 0 {
		t.Fatalf("soak ended at map epoch 0; cannot form a stale epoch")
	}
	if err := inj.Send(delegate.Message{
		Kind:    delegate.MsgMap,
		From:    4,
		To:      target.ID(),
		Epoch:   fenceEpoch - 1,
		Round:   fenceRound + 1000,
		Payload: snapshot,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stale epoch rejection", func() bool {
		return target.Stats().StaleEpochsRejected > beforeEpochStale
	})
	if me, mr := target.MapEpoch(), target.MapRound(); me < fenceEpoch || (me == fenceEpoch && mr < fenceRound) {
		t.Errorf("stale-epoch injection moved fence (%d,%d) -> (%d,%d)", fenceEpoch, fenceRound, me, mr)
	}

	close(stopMon)
	<-monDone

	if fp := cn.Stats(); fp.Dropped == 0 || fp.Duplicated == 0 {
		t.Errorf("chaos implausible: %+v", fp)
	}

	// Surface each node's latency tails so soak logs show distributions,
	// not just counters.
	for _, rt := range rts {
		t.Logf("soak summary: %s", rt.Stats())
	}
}

// filterTransport drops outbound messages matching a predicate —
// the asymmetric-partition tool for watchdog tests.
type filterTransport struct {
	Transport
	drop func(delegate.Message) bool
}

func (f filterTransport) Send(msg delegate.Message) error {
	if f.drop(msg) {
		return nil
	}
	return f.Transport.Send(msg)
}

// TestWatchdogReelection covers the failure mode heartbeats cannot
// see: the delegate is alive and beaconing, but its placement maps
// never arrive. The round watchdog must suspect it and move election
// to the next id, which then actually tunes.
func TestWatchdogReelection(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		var tr Transport = cn.Endpoint(id)
		if id == 0 {
			// Node 0 heartbeats fine but its maps vanish.
			tr = filterTransport{Transport: tr, drop: func(m delegate.Message) bool {
				return m.Kind == delegate.MsgMap
			}}
		}
		rt, err := Start(Config{
			ID:             id,
			Members:        ids,
			Snapshot:       snapshot,
			Controller:     anu.DefaultControllerConfig(),
			RoundInterval:  40 * time.Millisecond,
			WatchdogRounds: 2,
			Observe:        closedLoopObserve(speeds),
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()
	waitFor(t, 15*time.Second, "watchdog re-election past a silent delegate", func() bool {
		trips := rts[1].Stats().WatchdogTrips + rts[2].Stats().WatchdogTrips
		return trips >= 1 && rts[1].Stats().Tunes >= 1 && rts[2].Stats().MapsInstalled >= 1
	})
}

// TestRuntimeLookupDataPlane exercises the lock-free read path: request
// routing via Lookup/LookupBatch must stay valid and uninterrupted
// while the protocol installs new placements underneath it.
func TestRuntimeLookupDataPlane(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	rts := make([]*Runtime, 0, len(ids))
	for _, id := range ids {
		rt, err := Start(Config{
			ID:            id,
			Members:       ids,
			Snapshot:      snapshot,
			Controller:    anu.DefaultControllerConfig(),
			RoundInterval: 30 * time.Millisecond,
			Observe:       closedLoopObserve(speeds),
		}, cn.Endpoint(id))
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()

	// Reader goroutine per node: route continuously during tuning.
	stop := make(chan struct{})
	errs := make(chan error, len(rts))
	var wg sync.WaitGroup
	for i, rt := range rts {
		wg.Add(1)
		go func(i int, rt *Runtime) {
			defer wg.Done()
			keys := []string{"/home/alice", "/home/bob", "/var/mail", "/srv/data"}
			owners := make([]anu.ServerID, len(keys))
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[n%len(keys)]
				owner, ok := rt.Lookup(key)
				if !ok || owner < 0 || int(owner) >= len(rts) {
					errs <- fmt.Errorf("node %d: Lookup(%q) = (%d, %v)", i, key, owner, ok)
					return
				}
				// A placement may install between the two loads, so only
				// validity is asserted here; digest/string agreement on a
				// single snapshot is checked after convergence below.
				if d, ok := rt.LookupDigest(hashx.Prehash(key)); !ok || d < 0 || int(d) >= len(rts) {
					errs <- fmt.Errorf("node %d: LookupDigest(%q) = (%d, %v)", i, key, d, ok)
					return
				}
				if got := rt.LookupBatch(keys, owners); got != len(keys) {
					errs <- fmt.Errorf("node %d: batch resolved %d/%d", i, got, len(keys))
					return
				}
			}
		}(i, rt)
	}

	// Let several placements install while the readers run.
	waitFor(t, 15*time.Second, "tuned placements under live lookups", func() bool {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		return converged(rts) && rts[0].Stats().Tunes >= 3
	})
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Freeze the protocol, then check the data plane serves exactly the
	// installed map: every node routes each key to the owner the full
	// Map() copy names, via both the string and digest paths.
	for _, rt := range rts {
		rt.Stop()
	}
	for i, rt := range rts {
		m := rt.Map()
		for _, key := range []string{"/home/alice", "/srv/data"} {
			want, _ := m.Lookup(key)
			if got, ok := rt.Lookup(key); !ok || got != want {
				t.Errorf("node %d: data plane routes %q to %d, installed map says %d", i, key, got, want)
			}
			if got, ok := rt.LookupDigest(hashx.Prehash(key)); !ok || got != want {
				t.Errorf("node %d: digest path routes %q to %d, installed map says %d", i, key, got, want)
			}
		}
	}
}
