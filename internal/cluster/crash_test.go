package cluster

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/journal"
	"anurand/internal/placement"
)

// pairLess orders (epoch, round) fences lexicographically.
func pairLess(e1, r1, e2, r2 uint64) bool {
	if e1 != e2 {
		return e1 < e2
	}
	return r1 < r2
}

// fenceMonitor watches live runtimes and fails the test if any node's
// installed (epoch, round) ever moves backwards within one process
// generation. Restarts re-register with the recovered fence as the new
// baseline — that is the strongest durable guarantee: a crash can lose
// the unsynced tail, but a running node never regresses below what it
// resumed from.
type fenceMonitor struct {
	t    *testing.T
	mu   sync.Mutex
	rts  map[delegate.NodeID]*Runtime
	base map[delegate.NodeID][2]uint64
	stop chan struct{}
	done chan struct{}
}

func newFenceMonitor(t *testing.T) *fenceMonitor {
	fm := &fenceMonitor{
		t:    t,
		rts:  make(map[delegate.NodeID]*Runtime),
		base: make(map[delegate.NodeID][2]uint64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go fm.run()
	return fm
}

func (fm *fenceMonitor) attach(rt *Runtime, epoch, round uint64) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	fm.rts[rt.ID()] = rt
	fm.base[rt.ID()] = [2]uint64{epoch, round}
}

func (fm *fenceMonitor) detach(id delegate.NodeID) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	delete(fm.rts, id)
	delete(fm.base, id)
}

func (fm *fenceMonitor) check() {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	for id, rt := range fm.rts {
		e, r := rt.MapEpoch(), rt.MapRound()
		b := fm.base[id]
		if pairLess(e, r, b[0], b[1]) {
			fm.t.Errorf("node %d installed fence regressed (%d,%d) -> (%d,%d)", id, b[0], b[1], e, r)
			continue
		}
		fm.base[id] = [2]uint64{e, r}
	}
}

func (fm *fenceMonitor) run() {
	defer close(fm.done)
	for {
		select {
		case <-fm.stop:
			return
		case <-time.After(5 * time.Millisecond):
			fm.check()
		}
	}
}

func (fm *fenceMonitor) close() {
	close(fm.stop)
	<-fm.done
}

// TestCrashRestartChaosSoak is the durability acceptance soak: a 5-node
// cluster on a 30%-loss, duplicating, reordering network, with nodes
// killed mid-round, their journal tails damaged the way a crash would,
// and the processes restarted from the surviving bytes. Assertions:
//
//   - recovery never fails and never invents state: the reopened
//     journal's record is the one that was durable at the kill, or an
//     older one when the tail was damaged — never newer;
//   - every restarted runtime resumes at exactly the recovered (epoch,
//     round), not at the bootstrap snapshot;
//   - no running node's installed fence ever moves backwards (monitored
//     continuously, baselined at the recovered fence after restarts);
//   - once the network calms, all five nodes reconverge to
//     byte-identical placements passing CheckInvariants.
func TestCrashRestartChaosSoak(t *testing.T) {
	runCrashRestartSoak(t, placement.StrategyANU)
}

// TestCrashRestartChaosSoakChordBounded runs the same durability soak
// with the bounded-load chord ring: the placement layer's promise is
// that a non-ANU strategy survives the identical crash/restart/chaos
// schedule end-to-end — tagged snapshots through the wire protocol, the
// journal, and recovery.
func TestCrashRestartChaosSoakChordBounded(t *testing.T) {
	runCrashRestartSoak(t, placement.StrategyChordBounded)
}

func runCrashRestartSoak(t *testing.T, strategy string) {
	cn, err := NewChaosNetwork(ChaosConfig{
		Drop:      0.30,
		Duplicate: 0.10,
		MaxDelay:  20 * time.Millisecond,
		Seed:      23,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrapStrategy(t, 5, strategy)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
	dir := t.TempDir()

	journals := make([]*journal.ChaosJournal, len(ids))
	openJournal := func(i int) {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("node%d.wal", i)), journal.Options{})
		if err != nil {
			t.Fatalf("node %d: open journal: %v", i, err)
		}
		journals[i] = journal.NewChaos(j, 100+uint64(i))
	}
	startNode := func(i int) *Runtime {
		rt, err := Start(Config{
			ID:                ids[i],
			Members:           ids,
			Snapshot:          snapshot,
			Strategy:          strategy,
			Controller:        anu.DefaultControllerConfig(),
			RoundInterval:     50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			FailAfter:         150 * time.Millisecond,
			ReportGrace:       30 * time.Millisecond,
			Observe:           closedLoopObserve(speeds),
			Journal:           journals[i],
		}, cn.Endpoint(ids[i]))
		if err != nil {
			t.Fatalf("node %d: start: %v", i, err)
		}
		return rt
	}

	rts := make([]*Runtime, len(ids))
	fm := newFenceMonitor(t)
	for i := range ids {
		openJournal(i)
		rts[i] = startNode(i)
		fm.attach(rts[i], 0, 0)
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()

	// crashRestart kills node i, optionally damages its journal tail the
	// way the interrupted process would have (torn write, short write,
	// bit flip), reopens the journal, and restarts the process from it.
	var faultsInjected uint64
	crashRestart := func(i int, damageTail bool) {
		fm.detach(ids[i])
		rts[i].Stop()
		durable, hadDurable := journals[i].Last()
		var injected bool
		if damageTail {
			kind, ok, err := journals[i].InjectTailFault()
			if err != nil {
				t.Fatalf("node %d: inject %v: %v", i, kind, err)
			}
			injected = ok
			if ok {
				faultsInjected++
			}
		}
		if err := journals[i].Close(); err != nil {
			t.Fatalf("node %d: close journal: %v", i, err)
		}

		openJournal(i)
		rec, ok := journals[i].Last()
		if hadDurable {
			if !injected {
				// A clean shutdown loses nothing: the reopened journal
				// holds exactly the record that was durable at the kill.
				if !ok || rec.Epoch != durable.Epoch || rec.Round != durable.Round || !bytes.Equal(rec.Map, durable.Map) {
					t.Fatalf("node %d: clean reopen lost state: had (%d,%d), recovered ok=%v (%d,%d)",
						i, durable.Epoch, durable.Round, ok, rec.Epoch, rec.Round)
				}
			} else if ok && pairLess(durable.Epoch, durable.Round, rec.Epoch, rec.Round) {
				// A damaged tail may roll back to an older record (or to
				// none) — but recovery must never invent newer state.
				t.Fatalf("node %d: recovery invented (%d,%d) beyond durable (%d,%d)",
					i, rec.Epoch, rec.Round, durable.Epoch, durable.Round)
			}
		}

		rts[i] = startNode(i)
		s := rts[i].Stats()
		if ok {
			if !s.Recovered || s.RecoveredEpoch != rec.Epoch || s.RecoveredRound != rec.Round {
				t.Fatalf("node %d: restart did not resume from journal: stats=%+v journal=(%d,%d)",
					i, s, rec.Epoch, rec.Round)
			}
			if s.MapEpoch != rec.Epoch || s.MapRound != rec.Round {
				t.Fatalf("node %d: restart fence (%d,%d), journal (%d,%d)",
					i, s.MapEpoch, s.MapRound, rec.Epoch, rec.Round)
			}
			fm.attach(rts[i], rec.Epoch, rec.Round)
		} else {
			if s.Recovered {
				t.Fatalf("node %d: empty journal but stats claim recovery: %+v", i, s)
			}
			fm.attach(rts[i], 0, 0)
		}
	}

	// Chaotic steady state, then a kill/restart schedule that covers the
	// delegate (node 0), a follower, and a repeat victim — with and
	// without tail damage.
	time.Sleep(1200 * time.Millisecond)
	crashRestart(0, true) // the delegate, with a damaged tail
	time.Sleep(700 * time.Millisecond)
	crashRestart(2, false) // a follower, clean kill
	time.Sleep(700 * time.Millisecond)
	crashRestart(3, true) // another follower, damaged tail
	time.Sleep(700 * time.Millisecond)
	crashRestart(0, true) // the delegate again — second generation
	time.Sleep(700 * time.Millisecond)

	// Calm the network and require full reconvergence.
	if err := cn.SetConfig(ChaosConfig{MaxDelay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "post-crash reconvergence", func() bool {
		if !converged(rts) {
			return false
		}
		e := rts[0].MapEpoch()
		for _, rt := range rts[1:] {
			if rt.MapEpoch() != e {
				return false
			}
		}
		return true
	})
	fm.close()

	p := rts[0].Placement()
	if p.Name() != strategy {
		t.Errorf("converged placement runs strategy %q, want %q", p.Name(), strategy)
	}
	if inv, ok := p.(placement.Invariants); ok {
		if err := inv.CheckInvariants(); err != nil {
			t.Errorf("converged placement violates invariants: %v", err)
		}
	}
	// Every node's journal now holds a converged placement that carries
	// the right strategy tag, decodes, and satisfies the same invariants
	// — durability covers the final state, not just intermediate rounds.
	for i := range ids {
		rec, ok := journals[i].Last()
		if !ok {
			t.Errorf("node %d: no journaled record after soak", i)
			continue
		}
		if tag, err := placement.Tag(rec.Map); err != nil || tag != strategy {
			t.Errorf("node %d: journaled placement tag (%q, %v), want %q", i, tag, err, strategy)
			continue
		}
		jp, err := placement.Decode(rec.Map, placement.Options{})
		if err != nil {
			t.Errorf("node %d: journaled placement does not decode: %v", i, err)
			continue
		}
		if inv, ok := jp.(placement.Invariants); ok {
			if err := inv.CheckInvariants(); err != nil {
				t.Errorf("node %d: journaled placement violates invariants: %v", i, err)
			}
		}
	}
	// The chaos and the faults actually happened.
	if st := cn.Stats(); st.Dropped == 0 {
		t.Errorf("network chaos implausible: %+v", st)
	}
	if faultsInjected == 0 {
		t.Error("no journal faults were injected")
	}
	for i := range ids {
		journals[i].Close()
	}

	// Surface each node's latency tails so soak logs show distributions,
	// not just counters.
	for i := range ids {
		t.Logf("soak summary: %s", rts[i].Stats())
	}
}

// TestJournalRestartResumesFromRecoveredPlacement is the focused
// regression for journal recovery: a runtime restarted with its journal
// must resume from the journaled placement, epoch and round — not from
// Config.Snapshot — while a journal-less restart still bootstraps from
// the snapshot.
func TestJournalRestartResumesFromRecoveredPlacement(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 3)
	speeds := map[delegate.NodeID]float64{0: 1, 1: 3, 2: 5}
	walPath := filepath.Join(t.TempDir(), "node2.wal")
	j, err := journal.Open(walPath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rts := make([]*Runtime, len(ids))
	for i, id := range ids {
		cfg := Config{
			ID:            id,
			Members:       ids,
			Snapshot:      snapshot,
			Controller:    anu.DefaultControllerConfig(),
			RoundInterval: 40 * time.Millisecond,
			Observe:       closedLoopObserve(speeds),
		}
		if id == 2 {
			cfg.Journal = j
		}
		rts[i], err = Start(cfg, cn.Endpoint(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, rt := range rts {
			if rt != nil {
				rt.Stop()
			}
		}
	}()
	waitFor(t, 15*time.Second, "initial convergence", func() bool {
		return converged(rts) && rts[2].MapRound() >= 3
	})
	preFence := [2]uint64{rts[2].MapEpoch(), rts[2].MapRound()}
	preMap := rts[2].Snapshot()
	rts[2].Stop()
	rts[2] = nil

	// A real restart reopens the journal from disk: recovery must replay
	// the appended records.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = journal.Open(walPath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rec, ok := j.Last()
	if !ok {
		t.Fatal("journal empty after convergence")
	}
	if rec.Epoch != preFence[0] || rec.Round != preFence[1] || !bytes.Equal(rec.Map, preMap) {
		t.Fatalf("journal (%d,%d) does not match installed fence (%d,%d)", rec.Epoch, rec.Round, preFence[0], preFence[1])
	}

	// Restart on an isolated network so nothing can overwrite the
	// recovered state before we inspect it.
	lonely, err := NewChaosNetwork(ChaosConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lonely.Close()
	restarted, err := Start(Config{
		ID:            2,
		Members:       ids,
		Snapshot:      snapshot,
		Controller:    anu.DefaultControllerConfig(),
		RoundInterval: 40 * time.Millisecond,
		Observe:       closedLoopObserve(speeds),
		Journal:       j,
	}, lonely.Endpoint(2))
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Stop()
	s := restarted.Stats()
	if !s.Recovered || s.RecoveredEpoch != preFence[0] || s.RecoveredRound != preFence[1] {
		t.Fatalf("restart stats %+v, want recovery at (%d,%d)", s, preFence[0], preFence[1])
	}
	if got := restarted.Snapshot(); !bytes.Equal(got, preMap) {
		t.Fatal("restarted runtime did not resume from the journaled placement")
	}
	if bytes.Equal(restarted.Snapshot(), snapshot) {
		t.Fatal("restarted runtime is still on the bootstrap snapshot")
	}
	if s.Journal.RecordsRecovered == 0 {
		t.Fatalf("journal stats missing from runtime snapshot: %+v", s.Journal)
	}

	// Control: without a journal the restart bootstraps from Snapshot.
	plain, err := Start(Config{
		ID:            1,
		Members:       ids,
		Snapshot:      snapshot,
		Controller:    anu.DefaultControllerConfig(),
		RoundInterval: 40 * time.Millisecond,
	}, lonely.Endpoint(1))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Stop()
	if s := plain.Stats(); s.Recovered || s.MapEpoch != 0 || s.MapRound != 0 {
		t.Fatalf("journal-less restart claims recovery: %+v", s)
	}
	if !bytes.Equal(plain.Snapshot(), snapshot) {
		t.Fatal("journal-less restart is not on the bootstrap snapshot")
	}
}

// TestStartRejectsStrategyTagMismatch covers the placement layer's
// recovery contract: a node never silently adopts a placement from a
// different strategy. Both boundaries — the bootstrap snapshot and a
// journal-recovered record — must fail Start loudly on a tag mismatch.
func TestStartRejectsStrategyTagMismatch(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, anuSnap := bootstrap(t, 3)
	_, chordSnap := bootstrapStrategy(t, 3, placement.StrategyChordBounded)

	// Bootstrap snapshot carrying a different strategy's tag.
	_, err = Start(Config{
		ID:            0,
		Members:       ids,
		Snapshot:      anuSnap,
		Strategy:      placement.StrategyChordBounded,
		RoundInterval: 40 * time.Millisecond,
	}, cn.Endpoint(0))
	if err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("mismatched bootstrap snapshot accepted: %v", err)
	}

	// Journal-recovered placement carrying a different strategy's tag:
	// the operator changed Config.Strategy without wiping durable state.
	j, err := journal.Open(filepath.Join(t.TempDir(), "node.wal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(journal.Record{Epoch: 1, Round: 2, Map: chordSnap}); err != nil {
		t.Fatal(err)
	}
	_, err = Start(Config{
		ID:            1,
		Members:       ids,
		Snapshot:      anuSnap, // matches the default "anu" strategy
		RoundInterval: 40 * time.Millisecond,
		Journal:       j,
	}, cn.Endpoint(1))
	if err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("mismatched journaled placement accepted: %v", err)
	}
	// The matching journal is fine: same config, journal rewritten with
	// an ANU record.
	j2, err := journal.Open(filepath.Join(t.TempDir(), "node2.wal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Append(journal.Record{Epoch: 1, Round: 2, Map: anuSnap}); err != nil {
		t.Fatal(err)
	}
	rt, err := Start(Config{
		ID:            1,
		Members:       ids,
		Snapshot:      anuSnap,
		RoundInterval: 40 * time.Millisecond,
		Journal:       j2,
	}, cn.Endpoint(1))
	if err != nil {
		t.Fatalf("matching journaled placement rejected: %v", err)
	}
	rt.Stop()
}

// TestObserverMayCallRuntime is the regression test for the documented
// ObserveFunc footgun: observers are now invoked without the runtime
// lock, so one that calls back into Stats and the lookup path must not
// deadlock — on either the delegate's self-sample path or a follower's
// round-gossip report path.
func TestObserverMayCallRuntime(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, snapshot := bootstrap(t, 2)
	var holders [2]atomic.Pointer[Runtime]
	var reentries atomic.Uint64
	observe := func(p placement.Strategy, id delegate.NodeID) (uint64, float64) {
		if rt := holders[id].Load(); rt != nil {
			s := rt.Stats() // deadlocked under the old lock-held contract
			if _, ok := rt.Lookup("reentrant-probe"); !ok {
				return 0, 0
			}
			reentries.Add(1)
			_ = s
		}
		share := p.Shares()[id]
		return uint64(1 + 100*share), 0.002 + share
	}
	rts := make([]*Runtime, len(ids))
	for i, id := range ids {
		rts[i], err = Start(Config{
			ID:            id,
			Members:       ids,
			Snapshot:      snapshot,
			Controller:    anu.DefaultControllerConfig(),
			RoundInterval: 30 * time.Millisecond,
			Observe:       observe,
		}, cn.Endpoint(id))
		if err != nil {
			t.Fatal(err)
		}
		holders[id].Store(rts[i])
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()
	// Both the delegate (self-sample in tick) and the follower (report
	// on round gossip in handle) must keep making protocol progress
	// while their observers re-enter the runtime.
	waitFor(t, 15*time.Second, "progress with reentrant observers", func() bool {
		return reentries.Load() >= 4 &&
			rts[0].Stats().Tunes >= 2 &&
			rts[1].Stats().ReportsSent >= 2 &&
			rts[1].MapRound() > 0
	})
}

// TestCompactionAcrossStrategyChangeRefusesMismatchedTail covers the
// interaction of two durability features: journal compaction and the
// strategy-tag fence on recovery. A journal whose records span a
// strategy change (ANU epochs followed by a chord-bounded epoch) is
// compacted down to its single newest record; the surviving tail still
// carries the newer strategy's tag, so a restart configured for the
// old strategy must refuse it just as loudly as it would refuse the
// full journal — compaction must never launder a mismatched placement
// into an adoptable one. A matching restart then recovers the
// compacted record, and a crash that tears the lone surviving frame
// degrades to a clean snapshot bootstrap.
func TestCompactionAcrossStrategyChangeRefusesMismatchedTail(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ids, anuSnap := bootstrap(t, 3)
	_, chordSnap := bootstrapStrategy(t, 3, placement.StrategyChordBounded)

	// A tiny threshold forces a compaction on every append past the
	// first, so the strategy-change record is guaranteed to cross one.
	walPath := filepath.Join(t.TempDir(), "node.wal")
	j, err := journal.Open(walPath, journal.Options{CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(1); round <= 3; round++ {
		if err := j.Append(journal.Record{Epoch: 1, Round: round, Map: anuSnap}); err != nil {
			t.Fatal(err)
		}
	}
	// The operator migrated the cluster to chord-bounded: a newer epoch
	// journals a placement with a different strategy tag.
	if err := j.Append(journal.Record{Epoch: 2, Round: 1, Map: chordSnap}); err != nil {
		t.Fatal(err)
	}
	if s := j.Stats(); s.Compactions == 0 {
		t.Fatalf("no compactions at threshold 64 after 4 appends: %+v", s)
	}

	// Restart: recovery must see exactly the compacted tail — one
	// record, tagged with the post-change strategy.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = journal.Open(walPath, journal.Options{CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if s := j.Stats(); s.RecordsRecovered != 1 {
		t.Fatalf("recovered %d records from compacted journal, want 1", s.RecordsRecovered)
	}
	rec, ok := j.Last()
	if !ok {
		t.Fatal("compacted journal empty on reopen")
	}
	if rec.Epoch != 2 || rec.Round != 1 {
		t.Fatalf("compaction kept (%d,%d), want the newest fence (2,1)", rec.Epoch, rec.Round)
	}
	if tag, err := placement.Tag(rec.Map); err != nil || tag != placement.StrategyChordBounded {
		t.Fatalf("surviving record tag = (%q, %v), want %q", tag, err, placement.StrategyChordBounded)
	}

	// A node still configured for the pre-change strategy must refuse
	// the compacted tail.
	_, err = Start(Config{
		ID:            0,
		Members:       ids,
		Snapshot:      anuSnap, // matches the default "anu" strategy
		RoundInterval: 40 * time.Millisecond,
		Journal:       j,
	}, cn.Endpoint(0))
	if err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("compacted mismatched journal accepted: %v", err)
	}

	// The migrated configuration recovers the compacted record.
	rt, err := Start(Config{
		ID:            1,
		Members:       ids,
		Snapshot:      chordSnap,
		Strategy:      placement.StrategyChordBounded,
		RoundInterval: 40 * time.Millisecond,
		Journal:       j,
	}, cn.Endpoint(1))
	if err != nil {
		t.Fatalf("matching strategy rejected its own compacted journal: %v", err)
	}
	if s := rt.Stats(); !s.Recovered || s.RecoveredEpoch != 2 || s.RecoveredRound != 1 {
		rt.Stop()
		t.Fatalf("restart stats %+v, want recovery at (2,1)", s)
	}
	rt.Stop()

	// Crash damage on the lone surviving frame: recovery truncates the
	// tail and the restart falls back to a clean snapshot bootstrap —
	// there is no older intact record to resurrect the stale strategy.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := journal.Open(walPath, journal.Options{CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	cj := journal.NewChaos(raw, 33)
	if _, ok, err := cj.InjectTailFault(); err != nil || !ok {
		t.Fatalf("tail fault injection: ok=%v err=%v", ok, err)
	}
	if err := cj.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = journal.Open(walPath, journal.Options{CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if s := raw.Stats(); s.TornTailsTruncated == 0 {
		t.Fatalf("injected fault not detected on reopen: %+v", s)
	}
	if _, ok := raw.Last(); ok {
		t.Fatal("damaged single-record journal still yields a record")
	}
	rt2, err := Start(Config{
		ID:            2,
		Members:       ids,
		Snapshot:      anuSnap,
		Controller:    anu.DefaultControllerConfig(),
		RoundInterval: 40 * time.Millisecond,
		Journal:       raw,
	}, cn.Endpoint(2))
	if err != nil {
		t.Fatalf("empty-after-truncation journal rejected: %v", err)
	}
	defer rt2.Stop()
	if s := rt2.Stats(); s.Recovered {
		t.Fatalf("restart claims recovery from a truncated-empty journal: %+v", s)
	}
	if !bytes.Equal(rt2.Snapshot(), anuSnap) {
		t.Fatal("restart did not bootstrap from the snapshot")
	}
}
