package cluster

import (
	"testing"
	"time"

	"anurand/internal/delegate"
)

func TestChaosConfigValidation(t *testing.T) {
	bad := []ChaosConfig{
		{Drop: -0.1},
		{Drop: 1},
		{Duplicate: 1.5},
		{MinDelay: -time.Millisecond},
		{MinDelay: 2 * time.Millisecond, MaxDelay: time.Millisecond},
	}
	for _, cfg := range bad {
		if _, err := NewChaosNetwork(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	cn, err := NewChaosNetwork(ChaosConfig{Drop: 0.5, Duplicate: 0.5, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.SetConfig(ChaosConfig{Drop: 2}); err == nil {
		t.Error("SetConfig accepted an invalid profile")
	}
}

func TestChaosDropsAboutHalf(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Drop: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	src := cn.Endpoint(1)
	cn.Endpoint(2)
	const n = 1000
	done := make(chan int)
	go func() {
		got := 0
		for {
			select {
			case <-cn.Endpoint(2).Recv():
				got++
			case <-time.After(300 * time.Millisecond):
				done <- got
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		src.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2, Round: uint64(i)})
	}
	got := <-done
	if got < 350 || got > 650 {
		t.Fatalf("delivered %d of %d at 50%% drop", got, n)
	}
	stats := cn.Stats()
	if stats.Sent != n || stats.Dropped == 0 || stats.Dropped+uint64(got) != n {
		t.Fatalf("stats implausible: %+v (got %d)", stats, got)
	}
}

func TestChaosDuplicatesAndDelays(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{
		Duplicate: 0.9,
		MinDelay:  5 * time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	src := cn.Endpoint(1)
	dst := cn.Endpoint(2)
	start := time.Now()
	const n = 100
	for i := 0; i < n; i++ {
		src.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2})
	}
	got := 0
	var firstArrival time.Duration
	for {
		select {
		case <-dst.Recv():
			if got == 0 {
				firstArrival = time.Since(start)
			}
			got++
		case <-time.After(300 * time.Millisecond):
			if got <= n {
				t.Fatalf("received %d messages, want > %d with 90%% duplication", got, n)
			}
			if firstArrival < 4*time.Millisecond {
				t.Fatalf("first arrival after %v, want >= ~5ms delay", firstArrival)
			}
			if s := cn.Stats(); s.Duplicated == 0 {
				t.Fatalf("no duplicates recorded: %+v", s)
			}
			return
		}
	}
}

func TestChaosClosedEndpointBlackholes(t *testing.T) {
	cn, err := NewChaosNetwork(ChaosConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	src := cn.Endpoint(1)
	dst := cn.Endpoint(2)
	dst.Close()
	if err := src.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-dst.Recv():
		t.Fatal("closed endpoint received a message")
	case <-time.After(50 * time.Millisecond):
	}
	if s := cn.Stats(); s.Delivered != 0 {
		t.Fatalf("delivered=%d to a closed endpoint", s.Delivered)
	}
	// The sender's own close blackholes its sends too.
	src.Close()
	if err := src.Send(delegate.Message{Kind: delegate.MsgReport, From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	if s := cn.Stats(); s.Sent != 1 {
		t.Fatalf("closed endpoint's send was counted: %+v", s)
	}
}
