package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anurand/internal/anu"
	"anurand/internal/delegate"
	"anurand/internal/placement"
)

// scaleSizes are the cluster sizes the scale soak bakes each strategy
// at. Short mode and race-detector builds keep the 50-node column —
// the detector's slowdown would push the 100/200 cells past go test's
// default timeout without exercising any additional code path — so
// `make race` and CI's soak-scale-short stay bounded; the full ladder
// is `make soak-scale`.
func scaleSizes() []int {
	if testing.Short() || raceEnabled {
		return []int{50}
	}
	return []int{50, 100, 200}
}

// coherenceMonitor samples every runtime's installed-map identity and
// holds the soak's core invariant: two nodes that claim the same
// (epoch, round) must hold byte-identical maps (equal fingerprints),
// and each node's installed round never moves backwards. It is the
// scaled-up version of the paper's consistency claim — one coherent
// placement per round, cluster-wide, under loss and reordering.
type coherenceMonitor struct {
	mu         sync.Mutex
	seen       map[[2]uint64]uint64 // (epoch, round) -> fingerprint
	lastEpoch  []uint64
	lastRound  []uint64
	rounds     uint64 // distinct (epoch, round) pairs observed
	violations []string
	stop       chan struct{}
	done       chan struct{}
}

func startCoherenceMonitor(rts []*Runtime, every time.Duration) *coherenceMonitor {
	cm := &coherenceMonitor{
		seen:      make(map[[2]uint64]uint64),
		lastEpoch: make([]uint64, len(rts)),
		lastRound: make([]uint64, len(rts)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go func() {
		defer close(cm.done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			cm.sample(rts)
			select {
			case <-cm.stop:
				cm.sample(rts)
				return
			case <-tick.C:
			}
		}
	}()
	return cm
}

func (cm *coherenceMonitor) sample(rts []*Runtime) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	for i, rt := range rts {
		epoch, round, fp := rt.MapState()
		if round == 0 {
			continue
		}
		key := [2]uint64{epoch, round}
		if prev, ok := cm.seen[key]; ok {
			if prev != fp {
				cm.violate("node %d: (epoch %d, round %d) fingerprint %x conflicts with earlier %x",
					rt.ID(), epoch, round, fp, prev)
			}
		} else {
			cm.seen[key] = fp
			cm.rounds++
		}
		if epoch < cm.lastEpoch[i] || (epoch == cm.lastEpoch[i] && round < cm.lastRound[i]) {
			cm.violate("node %d: installed map went backwards: (%d,%d) after (%d,%d)",
				rt.ID(), epoch, round, cm.lastEpoch[i], cm.lastRound[i])
		}
		cm.lastEpoch[i], cm.lastRound[i] = epoch, round
	}
}

func (cm *coherenceMonitor) violate(format string, args ...any) {
	if len(cm.violations) < 10 { // enough to diagnose, bounded in logs
		cm.violations = append(cm.violations, fmt.Sprintf(format, args...))
	}
}

// finish stops sampling and returns (distinct rounds seen, violations).
func (cm *coherenceMonitor) finish() (uint64, []string) {
	close(cm.stop)
	<-cm.done
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.rounds, cm.violations
}

// scaleConverged is the at-scale convergence criterion: every node
// holds a map from the newest observed view epoch, no more than one
// round behind the newest installed round, and every holder of the
// newest round agrees on its fingerprint. The strict all-identical
// check (converged) is a per-poll coin flip that shrinks as 0.98^n on
// a 2%-drop fabric — at 200 nodes one node somewhere has almost always
// just missed the latest broadcast and will catch up next round, which
// is steady-state gossip, not divergence. Byte-identical convergence
// is still asserted, once, after the fabric is calmed at the end.
func scaleConverged(rts []*Runtime) bool {
	type mapState struct{ epoch, round, fp uint64 }
	states := make([]mapState, len(rts))
	var maxEpoch, maxRound uint64
	for i, rt := range rts {
		epoch, round, fp := rt.MapState()
		if round == 0 {
			return false
		}
		states[i] = mapState{epoch, round, fp}
		if epoch > maxEpoch || (epoch == maxEpoch && round > maxRound) {
			maxEpoch, maxRound = epoch, round
		}
	}
	var leadFP uint64
	seen := false
	for _, s := range states {
		if s.epoch != maxEpoch || s.round+1 < maxRound {
			return false
		}
		if s.round == maxRound {
			if seen && s.fp != leadFP {
				return false
			}
			leadFP, seen = s.fp, true
		}
	}
	return true
}

// TestSoakScale bakes each placement strategy on 50/100/200-node
// clusters over the pooled memnet fabric with light chaos. Cadence is
// deliberately coarser than the micro tests — at 200 nodes every
// heartbeat interval moves n*(n-1) messages, and the soak's subject is
// coherence at scale, not raw cadence. For each cell it records
// convergence time, fabric message counts, and the merged install
// latency tail; the coherence monitor holds one-placement-per-round
// throughout.
func TestSoakScale(t *testing.T) {
	strategies := []string{placement.StrategyANU, placement.StrategyChordBounded, placement.StrategyRendezvous}
	for _, tag := range strategies {
		for _, n := range scaleSizes() {
			t.Run(fmt.Sprintf("%s/%d", tag, n), func(t *testing.T) {
				runScaleSoak(t, tag, n)
			})
		}
	}
}

func runScaleSoak(t *testing.T, tag string, n int) {
	mn, err := NewMemNetwork(ChaosConfig{
		Drop:     0.02,
		MaxDelay: 5 * time.Millisecond,
		Seed:     uint64(n)*31 + uint64(len(tag)),
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()

	ids, snapshot := bootstrapStrategy(t, n, tag)
	// Heterogeneous speeds, cycling 1x..8x: the paper's setting is a
	// cluster of unequal machines, and unequal speeds keep the delegate
	// re-tuning every round instead of reaching a fixed point.
	speeds := make(map[delegate.NodeID]float64, n)
	for i, id := range ids {
		speeds[id] = 1 + float64(i%8)
	}

	start := time.Now()
	rts := make([]*Runtime, n)
	for i, id := range ids {
		rt, err := Start(Config{
			ID:                id,
			Members:           ids,
			Snapshot:          snapshot,
			Strategy:          tag,
			Controller:        anu.DefaultControllerConfig(),
			RoundInterval:     500 * time.Millisecond,
			HeartbeatInterval: 250 * time.Millisecond,
			FailAfter:         1500 * time.Millisecond,
			Observe:           closedLoopObserve(speeds),
		}, mn.Endpoint(id))
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		rts[i] = rt
	}
	defer func() {
		for _, rt := range rts {
			rt.Stop()
		}
	}()

	cm := startCoherenceMonitor(rts, 50*time.Millisecond)

	// Phase 1: first cluster-wide convergence from a cold start.
	waitFor(t, 90*time.Second, fmt.Sprintf("%d nodes on one %s map", n, tag), func() bool {
		return scaleConverged(rts)
	})
	convergeIn := time.Since(start)

	// Phase 2: steady-state bake — several more rounds under chaos with
	// the monitor watching.
	bake := 5 * time.Second
	if testing.Short() {
		bake = 3 * time.Second
	}
	time.Sleep(bake)

	// Phase 3: calm the fabric (the migrate soak's end-of-run idiom)
	// and demand strict byte-identical convergence: with loss off,
	// every node must land on the same map at the same round.
	if err := mn.SetConfig(ChaosConfig{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 90*time.Second, "byte-identical convergence on calm fabric", func() bool {
		return converged(rts)
	})
	rounds, violations := cm.finish()
	for _, v := range violations {
		t.Errorf("coherence violation: %s", v)
	}

	install := latencyHistogram()
	var installs, heartbeats, sendDrops uint64
	for _, rt := range rts {
		s := rt.Stats()
		if s.Strategy != tag {
			t.Errorf("node %d on strategy %q, want %q", s.ID, s.Strategy, tag)
		}
		install.Merge(s.InstallLatencyHist)
		installs += s.MapsInstalled
		heartbeats += s.HeartbeatsSent
		sendDrops += s.SendDrops
	}
	st := mn.Stats()
	t.Logf("scale soak %s n=%d: converge=%v rounds=%d installs=%d "+
		"msgs(sent=%d delivered=%d dropped=%d overflowed=%d) heartbeats=%d "+
		"install-p99=%s send-drops=%d",
		tag, n, convergeIn.Round(time.Millisecond), rounds, installs,
		st.Sent, st.Delivered, st.Dropped, st.Overflowed, heartbeats,
		time.Duration(install.Quantile(0.99)*float64(time.Second)).Round(10*time.Microsecond), sendDrops)

	if install.Total() == 0 {
		t.Error("no install latencies recorded")
	}
	if st.Dropped == 0 {
		t.Error("chaos drop never fired — soak ran on a clean network")
	}
}
