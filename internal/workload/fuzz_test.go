package workload

import (
	"bytes"
	"testing"
)

// FuzzRead hammers the trace decoder with arbitrary bytes: it must
// never panic or over-allocate, and anything it accepts must validate
// and round-trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := validTrace().Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x55, 0x4e, 0x41})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace invalid: %v", err)
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace not writable: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.Requests) != len(tr.Requests) {
			t.Fatal("round trip changed request count")
		}
	})
}
