package workload

import (
	"fmt"
	"math"

	"anurand/internal/rng"
)

// SyntheticConfig parameterizes the paper's synthetic workload
// (Section 5.1 and 5.2.1): a fixed population of file sets whose total
// workload is X·c with X drawn uniformly from [WeightLow, WeightHigh],
// and per-file-set request inter-arrival times drawn from a heavy-tailed
// Pareto distribution.
type SyntheticConfig struct {
	// Seed drives all randomness; equal configs generate equal traces.
	Seed uint64

	// NumFileSets is the file set population (paper: 50).
	NumFileSets int

	// Duration is the trace length in seconds (paper: 200 minutes).
	Duration float64

	// TargetRequests is the approximate total request count (paper:
	// 66,401). The realized count varies with the heavy-tailed
	// arrivals.
	TargetRequests int

	// ParetoAlpha is the inter-arrival shape; values in (1, 2] are
	// heavy-tailed with finite mean.
	ParetoAlpha float64

	// WeightLow and WeightHigh bound the uniform X factor (paper:
	// [1, 10]).
	WeightLow, WeightHigh float64

	// BaseDemand is the per-request service requirement in unit-speed
	// seconds — the paper's time T on the slowest (speed 1) server.
	BaseDemand float64

	// DemandCV adds lognormal variability to demands with the given
	// coefficient of variation; 0 keeps demands fixed at BaseDemand.
	DemandCV float64
}

// DefaultSynthetic returns the Figure 5 configuration. BaseDemand is
// chosen so the 1+3+5+7+9 = 25-unit-speed cluster runs at roughly 60%
// utilization, matching the paper's note that the scaling factor c is
// tuned to avoid overloading the whole system.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Seed:           1,
		NumFileSets:    50,
		Duration:       200 * 60,
		TargetRequests: 66401,
		ParetoAlpha:    1.5,
		WeightLow:      1,
		WeightHigh:     10,
		BaseDemand:     3.2, // ~5.53 req/s * 3.2 s / 25 speed ≈ 0.71 utilization
		DemandCV:       0,
	}
}

// Validate reports the first nonsensical parameter.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.NumFileSets <= 0:
		return fmt.Errorf("workload: NumFileSets %d must be positive", c.NumFileSets)
	case !(c.Duration > 0):
		return fmt.Errorf("workload: Duration %g must be positive", c.Duration)
	case c.TargetRequests <= 0:
		return fmt.Errorf("workload: TargetRequests %d must be positive", c.TargetRequests)
	case !(c.ParetoAlpha > 1):
		return fmt.Errorf("workload: ParetoAlpha %g must exceed 1 for a finite mean", c.ParetoAlpha)
	case !(c.WeightLow > 0) || c.WeightHigh < c.WeightLow:
		return fmt.Errorf("workload: weight range [%g, %g] invalid", c.WeightLow, c.WeightHigh)
	case !(c.BaseDemand > 0):
		return fmt.Errorf("workload: BaseDemand %g must be positive", c.BaseDemand)
	case c.DemandCV < 0:
		return fmt.Errorf("workload: DemandCV %g must be non-negative", c.DemandCV)
	}
	return nil
}

// Generate materializes the synthetic trace.
func (c SyntheticConfig) Generate() (*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(c.Seed)
	wsrc := root.Stream("weights")

	fileSets := make([]FileSet, c.NumFileSets)
	weights := make([]float64, c.NumFileSets)
	var sumW float64
	xDist := rng.NewUniform(c.WeightLow, c.WeightHigh)
	for i := range fileSets {
		x := xDist.Sample(wsrc)
		weights[i] = x
		sumW += x
		fileSets[i] = FileSet{Name: fmt.Sprintf("fs/synthetic/%04d", i), Weight: x}
	}

	totalRate := float64(c.TargetRequests) / c.Duration
	trace := &Trace{Label: "synthetic", Duration: c.Duration, FileSets: fileSets}
	demand := demandSampler(c.BaseDemand, c.DemandCV)
	for i := range fileSets {
		rate := totalRate * weights[i] / sumW
		if rate <= 0 {
			continue
		}
		gaps := rng.ParetoWithMean(c.ParetoAlpha, 1/rate)
		src := root.Stream(fmt.Sprintf("arrivals/%d", i))
		dsrc := root.Stream(fmt.Sprintf("demand/%d", i))
		// A Pareto renewal process: the first arrival is offset by one
		// gap so file sets do not all fire at t=0.
		for t := gaps.Sample(src); t < c.Duration; t += gaps.Sample(src) {
			trace.Requests = append(trace.Requests, Request{
				Time:    t,
				FileSet: int32(i),
				Demand:  demand(dsrc),
			})
		}
	}
	sortRequests(trace.Requests)
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated trace invalid: %w", err)
	}
	return trace, nil
}

// demandSampler returns a sampler with mean base and the requested
// coefficient of variation (lognormal for cv > 0).
func demandSampler(base, cv float64) func(*rng.Source) float64 {
	if cv == 0 {
		return func(*rng.Source) float64 { return base }
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2 // unit mean multiplier
	return func(src *rng.Source) float64 {
		return base * math.Exp(mu+sigma*src.NormFloat64())
	}
}
