package workload

import (
	"fmt"
	"sort"
)

// Slice returns a new trace containing the requests with arrival times
// in [from, to), re-based so the slice starts at time zero. File sets
// are carried over unchanged (indices stay valid). Slicing is how the
// experiment harness extracts steady-state windows and how long traces
// are broken into replayable segments.
func (t *Trace) Slice(from, to float64) (*Trace, error) {
	if from < 0 || to <= from || to > t.Duration {
		return nil, fmt.Errorf("workload: Slice[%g, %g) outside [0, %g]", from, to, t.Duration)
	}
	out := &Trace{
		Label:    t.Label,
		Duration: to - from,
		FileSets: append([]FileSet(nil), t.FileSets...),
	}
	lo := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Time >= from })
	hi := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Time >= to })
	out.Requests = make([]Request, 0, hi-lo)
	for _, r := range t.Requests[lo:hi] {
		r.Time -= from
		out.Requests = append(out.Requests, r)
	}
	return out, nil
}

// Merge overlays two traces into one: the result carries both request
// streams over the longer duration, with the second trace's file sets
// appended after the first's (its indices are shifted). Merging builds
// mixed workloads — for example a stationary base load plus a bursty
// interloper — without regenerating either.
func Merge(a, b *Trace) (*Trace, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("workload: Merge: first trace: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: Merge: second trace: %w", err)
	}
	names := make(map[string]bool, len(a.FileSets))
	for _, fs := range a.FileSets {
		names[fs.Name] = true
	}
	for _, fs := range b.FileSets {
		if names[fs.Name] {
			return nil, fmt.Errorf("workload: Merge: file set name %q appears in both traces", fs.Name)
		}
	}
	out := &Trace{
		Label:    a.Label + "+" + b.Label,
		Duration: a.Duration,
		FileSets: append(append([]FileSet(nil), a.FileSets...), b.FileSets...),
	}
	if b.Duration > out.Duration {
		out.Duration = b.Duration
	}
	shift := int32(len(a.FileSets))
	out.Requests = make([]Request, 0, len(a.Requests)+len(b.Requests))
	out.Requests = append(out.Requests, a.Requests...)
	for _, r := range b.Requests {
		r.FileSet += shift
		out.Requests = append(out.Requests, r)
	}
	sortRequests(out.Requests)
	return out, nil
}

// Thin returns a new trace that deterministically keeps one request in
// every `keep` (1 keeps all, 2 halves the rate, …), preserving arrival
// times. Thinning trades fidelity for speed when prototyping
// experiments.
func (t *Trace) Thin(keep int) (*Trace, error) {
	if keep < 1 {
		return nil, fmt.Errorf("workload: Thin(%d): keep must be >= 1", keep)
	}
	out := &Trace{
		Label:    t.Label,
		Duration: t.Duration,
		FileSets: append([]FileSet(nil), t.FileSets...),
	}
	out.Requests = make([]Request, 0, len(t.Requests)/keep+1)
	for i := 0; i < len(t.Requests); i += keep {
		out.Requests = append(out.Requests, t.Requests[i])
	}
	return out, nil
}
