package workload

import (
	"math"
	"testing"
)

func TestSliceBasics(t *testing.T) {
	tr := validTrace() // requests at times 1, 2, 2, 99; duration 100
	s, err := tr.Slice(1.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Duration != 48.5 {
		t.Fatalf("duration = %g, want 48.5", s.Duration)
	}
	if len(s.Requests) != 2 {
		t.Fatalf("kept %d requests, want the two at t=2", len(s.Requests))
	}
	if s.Requests[0].Time != 0.5 {
		t.Fatalf("rebased time = %g, want 0.5", s.Requests[0].Time)
	}
	// Original untouched.
	if tr.Requests[1].Time != 2 {
		t.Fatal("Slice mutated the source trace")
	}
}

func TestSliceBoundsInclusive(t *testing.T) {
	tr := validTrace()
	s, err := tr.Slice(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Requests) != 2 {
		t.Fatalf("slice [2,3) kept %d requests, want 2 (from is inclusive)", len(s.Requests))
	}
	if _, err := tr.Slice(-1, 5); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := tr.Slice(5, 5); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := tr.Slice(0, 101); err == nil {
		t.Error("range past end accepted")
	}
}

func TestMergeCombinesStreams(t *testing.T) {
	a := validTrace()
	b := &Trace{
		Label:    "other",
		Duration: 150,
		FileSets: []FileSet{{Name: "c", Weight: 3}},
		Requests: []Request{{Time: 0.5, FileSet: 0, Demand: 1}, {Time: 120, FileSet: 0, Demand: 2}},
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Duration != 150 {
		t.Fatalf("merged duration %g, want the max 150", m.Duration)
	}
	if len(m.FileSets) != 3 || m.FileSets[2].Name != "c" {
		t.Fatalf("file sets %+v", m.FileSets)
	}
	if len(m.Requests) != 6 {
		t.Fatalf("merged %d requests, want 6", len(m.Requests))
	}
	// b's requests must point at the shifted index 2.
	found := 0
	for _, r := range m.Requests {
		if r.FileSet == 2 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("%d requests reference the merged-in file set, want 2", found)
	}
	// Sorted by time.
	for i := 1; i < len(m.Requests); i++ {
		if m.Requests[i].Time < m.Requests[i-1].Time {
			t.Fatal("merged requests not sorted")
		}
	}
}

func TestMergeRejectsNameCollision(t *testing.T) {
	a := validTrace()
	b := &Trace{
		Label:    "dup",
		Duration: 10,
		FileSets: []FileSet{{Name: "a", Weight: 1}},
		Requests: []Request{{Time: 1, FileSet: 0, Demand: 1}},
	}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("colliding file-set names accepted")
	}
}

func TestMergeRejectsInvalidInputs(t *testing.T) {
	a := validTrace()
	bad := validTrace()
	bad.Requests[0].Demand = -1
	if _, err := Merge(a, bad); err == nil {
		t.Fatal("invalid second trace accepted")
	}
	if _, err := Merge(bad, a); err == nil {
		t.Fatal("invalid first trace accepted")
	}
}

func TestThin(t *testing.T) {
	tr := validTrace()
	half, err := tr.Thin(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(half.Requests) != 2 {
		t.Fatalf("Thin(2) kept %d of 4", len(half.Requests))
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
	all, err := tr.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Requests) != len(tr.Requests) {
		t.Fatal("Thin(1) dropped requests")
	}
	if _, err := tr.Thin(0); err == nil {
		t.Fatal("Thin(0) accepted")
	}
}

func TestSliceOfGeneratedTracePreservesRates(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 10
	cfg.Duration = 4000
	cfg.TargetRequests = 20000
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := tr.Slice(1000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	full := tr.Stats().MeanRate
	sliced := mid.Stats().MeanRate
	if math.Abs(sliced-full)/full > 0.25 {
		t.Fatalf("sliced rate %.2f far from full rate %.2f", sliced, full)
	}
}
