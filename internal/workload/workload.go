// Package workload models the metadata request streams that drive the
// cluster simulation: file sets, request traces, the paper's synthetic
// Pareto workload (Section 5.1), and a DFSTrace-like synthetic trace
// that substitutes for the unavailable CMU DFSTrace data set (Figure 4).
//
// A workload is materialized as a Trace: a time-ordered list of requests
// against named file sets. Traces are deterministic functions of their
// generator configuration and seed, and can be serialized to a compact
// binary format for replay by cmd/tracegen and the benchmarks.
package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Request is one metadata operation against a file set.
type Request struct {
	// Time is the arrival instant in seconds from the start of the
	// trace.
	Time float64
	// FileSet indexes Trace.FileSets.
	FileSet int32
	// Demand is the service requirement in unit-speed seconds: a server
	// with speed s serves the request in Demand/s seconds.
	Demand float64
}

// FileSet is the indivisible unit of workload assignment and movement —
// a subtree of the global namespace in a shared-disk file system
// cluster.
type FileSet struct {
	// Name is the unique name hashed for placement (a pathname or
	// content fingerprint in a real cluster).
	Name string
	// Weight is the file set's relative offered load (the paper's X·c).
	Weight float64
}

// Trace is a time-ordered request stream over a fixed set of file sets.
type Trace struct {
	// Label identifies the generator ("synthetic", "dfslike", ...).
	Label string
	// Duration is the trace length in seconds.
	Duration float64
	// FileSets lists the file sets requests refer to.
	FileSets []FileSet
	// Requests is sorted by ascending Time.
	Requests []Request

	// keys memoizes the per-file-set placement digests (see Keys).
	keysOnce sync.Once
	keys     *KeySet
}

// Validate checks structural sanity: positive duration, non-empty file
// sets with unique names, requests sorted in time, indices in range, and
// positive finite demands.
func (t *Trace) Validate() error {
	if t.Duration <= 0 || math.IsNaN(t.Duration) || math.IsInf(t.Duration, 0) {
		return fmt.Errorf("workload: invalid duration %g", t.Duration)
	}
	if len(t.FileSets) == 0 {
		return fmt.Errorf("workload: trace has no file sets")
	}
	names := make(map[string]bool, len(t.FileSets))
	for i, fs := range t.FileSets {
		if fs.Name == "" {
			return fmt.Errorf("workload: file set %d has empty name", i)
		}
		if names[fs.Name] {
			return fmt.Errorf("workload: duplicate file set name %q", fs.Name)
		}
		names[fs.Name] = true
		if fs.Weight < 0 || math.IsNaN(fs.Weight) || math.IsInf(fs.Weight, 0) {
			return fmt.Errorf("workload: file set %q has invalid weight %g", fs.Name, fs.Weight)
		}
	}
	var prev float64
	for i, r := range t.Requests {
		if r.Time < prev {
			return fmt.Errorf("workload: request %d out of order (%g < %g)", i, r.Time, prev)
		}
		prev = r.Time
		if r.Time < 0 || r.Time > t.Duration {
			return fmt.Errorf("workload: request %d at %g outside [0, %g]", i, r.Time, t.Duration)
		}
		if int(r.FileSet) < 0 || int(r.FileSet) >= len(t.FileSets) {
			return fmt.Errorf("workload: request %d references file set %d of %d", i, r.FileSet, len(t.FileSets))
		}
		if r.Demand <= 0 || math.IsNaN(r.Demand) || math.IsInf(r.Demand, 0) {
			return fmt.Errorf("workload: request %d has invalid demand %g", i, r.Demand)
		}
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	Requests     int
	FileSets     int
	Duration     float64
	MeanRate     float64   // requests per second
	TotalDemand  float64   // unit-speed seconds of work
	OfferedLoad  float64   // TotalDemand / Duration (unit-speed servers)
	PerFileSet   []int     // request counts
	FileSetWork  []float64 // summed demand per file set
	MaxShare     float64   // largest file set's fraction of total demand
	MeanInterArr float64
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	s := Stats{
		Requests:    len(t.Requests),
		FileSets:    len(t.FileSets),
		Duration:    t.Duration,
		PerFileSet:  make([]int, len(t.FileSets)),
		FileSetWork: make([]float64, len(t.FileSets)),
	}
	for _, r := range t.Requests {
		s.PerFileSet[r.FileSet]++
		s.FileSetWork[r.FileSet] += r.Demand
		s.TotalDemand += r.Demand
	}
	if t.Duration > 0 {
		s.MeanRate = float64(len(t.Requests)) / t.Duration
		s.OfferedLoad = s.TotalDemand / t.Duration
	}
	for _, w := range s.FileSetWork {
		if share := w / s.TotalDemand; share > s.MaxShare {
			s.MaxShare = share
		}
	}
	if len(t.Requests) > 1 {
		s.MeanInterArr = t.Duration / float64(len(t.Requests))
	}
	return s
}

// OfferedLoads returns each file set's offered load in unit-speed
// seconds of work per second — the ground truth the dynamic-prescient
// policy is entitled to (it has "perfect knowledge of server
// capabilities and workload properties").
func (t *Trace) OfferedLoads() []float64 {
	loads := make([]float64, len(t.FileSets))
	for _, r := range t.Requests {
		loads[r.FileSet] += r.Demand
	}
	for i := range loads {
		loads[i] /= t.Duration
	}
	return loads
}

// ScaleDemand multiplies every request demand by c, the paper's scaling
// factor "tuned to avoid overload of the whole system".
func (t *Trace) ScaleDemand(c float64) {
	for i := range t.Requests {
		t.Requests[i].Demand *= c
	}
}

// WindowCounts returns per-window request counts with the given window
// size, a quick burstiness profile used in tests and cmd/tracegen.
func (t *Trace) WindowCounts(window float64) []int {
	if window <= 0 {
		return nil
	}
	n := int(math.Ceil(t.Duration / window))
	if n == 0 {
		n = 1
	}
	counts := make([]int, n)
	for _, r := range t.Requests {
		w := int(r.Time / window)
		if w >= n {
			w = n - 1
		}
		counts[w]++
	}
	return counts
}

// sortRequests sorts the request slice by time, with file set index as a
// deterministic tie-breaker.
func sortRequests(reqs []Request) {
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Time != reqs[j].Time {
			return reqs[i].Time < reqs[j].Time
		}
		return reqs[i].FileSet < reqs[j].FileSet
	})
}
