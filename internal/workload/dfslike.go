package workload

import (
	"fmt"

	"anurand/internal/rng"
)

// DFSLikeConfig generates a synthetic stand-in for the one-hour DFSTrace
// workload the paper used in earlier experiments (Figure 4): 21 file
// sets and 112,590 requests over an hour.
//
// Substitution note (see DESIGN.md): the original CMU DFSTrace data set
// is not redistributable here, so we reproduce its shape instead of its
// bytes — Zipf-skewed file-set popularity (file system accesses are
// famously skewed) and bursty ON/OFF arrivals per file set (short
// exponential gaps inside bursts, heavy-tailed Pareto gaps between
// bursts). Figure 4 only uses the trace to confirm the same scaling and
// tuning behaviour as the synthetic workload, which this preserves.
type DFSLikeConfig struct {
	// Seed drives all randomness.
	Seed uint64

	// NumFileSets matches DFSTrace's 21 file sets.
	NumFileSets int

	// Duration is the trace length in seconds (DFSTrace: one hour).
	Duration float64

	// TargetRequests approximates DFSTrace's 112,590 requests.
	TargetRequests int

	// ZipfS is the popularity skew across file sets.
	ZipfS float64

	// BurstLen is the mean number of requests per ON burst.
	BurstLen float64

	// BurstGapAlpha shapes the Pareto OFF periods between bursts.
	BurstGapAlpha float64

	// BaseDemand is the per-request service requirement in unit-speed
	// seconds.
	BaseDemand float64
}

// DefaultDFSLike returns the Figure 4 configuration. BaseDemand is lower
// than the synthetic workload's because the request rate is an order of
// magnitude higher (112,590 requests in one hour versus 66,401 in two
// hundred minutes); the product keeps cluster utilization around 60%.
func DefaultDFSLike() DFSLikeConfig {
	return DFSLikeConfig{
		Seed:           2,
		NumFileSets:    21,
		Duration:       3600,
		TargetRequests: 112590,
		ZipfS:          0.9,
		BurstLen:       20,
		BurstGapAlpha:  1.4,
		BaseDemand:     0.48, // ~31.3 req/s * 0.48 s / 25 speed ≈ 0.6 utilization
	}
}

// Validate reports the first nonsensical parameter.
func (c DFSLikeConfig) Validate() error {
	switch {
	case c.NumFileSets <= 0:
		return fmt.Errorf("workload: NumFileSets %d must be positive", c.NumFileSets)
	case !(c.Duration > 0):
		return fmt.Errorf("workload: Duration %g must be positive", c.Duration)
	case c.TargetRequests <= 0:
		return fmt.Errorf("workload: TargetRequests %d must be positive", c.TargetRequests)
	case c.ZipfS < 0:
		return fmt.Errorf("workload: ZipfS %g must be non-negative", c.ZipfS)
	case !(c.BurstLen >= 1):
		return fmt.Errorf("workload: BurstLen %g must be at least 1", c.BurstLen)
	case !(c.BurstGapAlpha > 1):
		return fmt.Errorf("workload: BurstGapAlpha %g must exceed 1", c.BurstGapAlpha)
	case !(c.BaseDemand > 0):
		return fmt.Errorf("workload: BaseDemand %g must be positive", c.BaseDemand)
	}
	return nil
}

// Generate materializes the DFSTrace-like trace.
func (c DFSLikeConfig) Generate() (*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(c.Seed)
	zipf := rng.NewZipf(c.NumFileSets, c.ZipfS)

	fileSets := make([]FileSet, c.NumFileSets)
	for i := range fileSets {
		fileSets[i] = FileSet{
			Name:   fmt.Sprintf("fs/dfslike/%02d", i),
			Weight: zipf.Prob(i) * float64(c.NumFileSets),
		}
	}

	trace := &Trace{Label: "dfslike", Duration: c.Duration, FileSets: fileSets}
	totalRate := float64(c.TargetRequests) / c.Duration
	for i := range fileSets {
		rate := totalRate * zipf.Prob(i)
		if rate <= 0 {
			continue
		}
		src := root.Stream(fmt.Sprintf("fs/%d", i))
		c.generateFileSet(trace, int32(i), rate, src)
	}
	sortRequests(trace.Requests)
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated dfslike trace invalid: %w", err)
	}
	return trace, nil
}

// generateFileSet emits ON/OFF bursty arrivals for one file set at the
// given long-run rate.
func (c DFSLikeConfig) generateFileSet(trace *Trace, fs int32, rate float64, src *rng.Source) {
	// Inside a burst requests arrive with short exponential gaps; the
	// within-burst rate is several times the long-run rate, and the OFF
	// gaps are stretched so the long-run average still matches.
	const burstSpeedup = 8.0
	inBurst := rng.NewExponential(rate * burstSpeedup)
	// Mean cycle = burst duration + off gap, carrying BurstLen requests:
	// BurstLen/rate per cycle total, of which the burst itself takes
	// BurstLen/(rate*speedup).
	meanOff := c.BurstLen/rate - c.BurstLen/(rate*burstSpeedup)
	if meanOff <= 0 {
		meanOff = 1 / rate
	}
	offGap := rng.ParetoWithMean(c.BurstGapAlpha, meanOff)
	burstLen := rng.NewExponential(1 / c.BurstLen)

	t := offGap.Sample(src) * src.Float64() // random initial phase
	for t < c.Duration {
		n := int(burstLen.Sample(src)) + 1
		for j := 0; j < n && t < c.Duration; j++ {
			trace.Requests = append(trace.Requests, Request{
				Time:    t,
				FileSet: fs,
				Demand:  c.BaseDemand,
			})
			t += inBurst.Sample(src)
		}
		t += offGap.Sample(src)
	}
}
