package workload

import (
	"math"
	"testing"
)

func TestHotspotDefaultsValid(t *testing.T) {
	if err := DefaultHotspot().Validate(); err != nil {
		t.Fatalf("default hotspot config invalid: %v", err)
	}
}

func TestHotspotValidateRejections(t *testing.T) {
	cases := map[string]func(*HotspotConfig){
		"no file sets":  func(c *HotspotConfig) { c.NumFileSets = 0 },
		"zero duration": func(c *HotspotConfig) { c.Duration = 0 },
		"zero target":   func(c *HotspotConfig) { c.TargetRequests = 0 },
		"negative zipf": func(c *HotspotConfig) { c.ZipfS = -1 },
		"zero shift":    func(c *HotspotConfig) { c.ShiftEvery = 0 },
		"zero demand":   func(c *HotspotConfig) { c.BaseDemand = 0 },
	}
	for name, corrupt := range cases {
		cfg := DefaultHotspot()
		corrupt(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
}

func TestHotspotPhases(t *testing.T) {
	cfg := DefaultHotspot()
	cfg.Duration = 100
	cfg.ShiftEvery = 30
	if got := cfg.Phases(); got != 4 {
		t.Fatalf("Phases = %d, want 4 (3 full + 1 partial)", got)
	}
	cfg.ShiftEvery = 50
	if got := cfg.Phases(); got != 2 {
		t.Fatalf("Phases = %d, want 2", got)
	}
}

func TestHotspotGenerateShape(t *testing.T) {
	cfg := DefaultHotspot()
	cfg.Duration = 3000
	cfg.TargetRequests = 16000
	cfg.ShiftEvery = 600
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if math.Abs(float64(s.Requests)-16000)/16000 > 0.1 {
		t.Errorf("requests = %d, want ~16000 (Poisson phases are tighter than Pareto)", s.Requests)
	}
	if s.FileSets != 50 {
		t.Errorf("file sets = %d", s.FileSets)
	}
}

func TestHotspotPopularityRotates(t *testing.T) {
	cfg := DefaultHotspot()
	cfg.Duration = 2000
	cfg.TargetRequests = 40000
	cfg.ShiftEvery = 500
	cfg.NumFileSets = 20
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Identify the most-requested file set in each phase; with rotating
	// permutations the hottest file set should differ across phases.
	phases := cfg.Phases()
	hot := make([]int32, phases)
	counts := make([]map[int32]int, phases)
	for p := range counts {
		counts[p] = map[int32]int{}
	}
	for _, r := range tr.Requests {
		p := int(r.Time / cfg.ShiftEvery)
		if p >= phases {
			p = phases - 1
		}
		counts[p][r.FileSet]++
	}
	for p := range counts {
		best, bestN := int32(-1), 0
		for fs, n := range counts[p] {
			if n > bestN {
				best, bestN = fs, n
			}
		}
		hot[p] = best
		// Within a phase the hot file set must dominate the median one.
		if bestN < 3*len(tr.Requests)/phases/cfg.NumFileSets {
			t.Errorf("phase %d: hottest file set only has %d requests", p, bestN)
		}
	}
	distinct := map[int32]bool{}
	for _, h := range hot {
		distinct[h] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("hot file set never rotated: %v", hot)
	}
}

func TestHotspotLongRunLoadsRoughlyUniform(t *testing.T) {
	// Over many phases every file set is hot sometimes and cold
	// sometimes; long-run shares should be far flatter than a single
	// Zipf phase.
	cfg := DefaultHotspot()
	cfg.Duration = 20000
	cfg.TargetRequests = 100000
	cfg.ShiftEvery = 500 // 40 phases
	cfg.NumFileSets = 10
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	mean := float64(s.Requests) / 10
	for i, n := range s.PerFileSet {
		if math.Abs(float64(n)-mean)/mean > 0.5 {
			t.Errorf("file set %d long-run count %d deviates >50%% from mean %.0f", i, n, mean)
		}
	}
}

func TestHotspotDeterministic(t *testing.T) {
	cfg := DefaultHotspot()
	cfg.Duration = 1000
	cfg.TargetRequests = 5000
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestHotspotTraceRoundTrips(t *testing.T) {
	cfg := DefaultHotspot()
	cfg.Duration = 600
	cfg.TargetRequests = 2000
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// The binary format must carry it like any other trace.
	var err2 error
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v", r)
			}
		}()
		err2 = tr.Validate()
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
}
