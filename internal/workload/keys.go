package workload

import "anurand/internal/hashx"

// KeySet is the immutable placement-key view of a file set list: every
// name next to its precomputed hashx.Prehash digest. The digest is the
// per-key half of every family hash — only the per-round tweak varies
// along a probe chain — so policies built over the same trace can share
// one KeySet and skip the per-name FNV pass entirely instead of paying
// it once per policy × experiment cell.
//
// A KeySet is never mutated after construction; it is safe to share
// across goroutines and across every policy of a parameter sweep.
type KeySet struct {
	// Names lists the file set names in trace order.
	Names []string
	// Digests holds hashx.Prehash(Names[i]).
	Digests []hashx.Digest
}

// NewKeySet hashes a file set list into a fresh KeySet.
func NewKeySet(fileSets []FileSet) *KeySet {
	ks := &KeySet{
		Names:   make([]string, len(fileSets)),
		Digests: make([]hashx.Digest, len(fileSets)),
	}
	for i, fs := range fileSets {
		ks.Names[i] = fs.Name
		ks.Digests[i] = hashx.Prehash(fs.Name)
	}
	return ks
}

// Len returns the number of keys.
func (ks *KeySet) Len() int { return len(ks.Names) }

// Keys returns the trace's memoized KeySet, computing it on first use.
// The result is shared: callers must treat it as read-only. Concurrent
// first calls are safe; the trace's file sets must not change afterwards
// (generators never do — a Trace is immutable once built).
func (t *Trace) Keys() *KeySet {
	t.keysOnce.Do(func() { t.keys = NewKeySet(t.FileSets) })
	return t.keys
}
