package workload

import (
	"math"
	"sort"
	"testing"
)

func validTrace() *Trace {
	return &Trace{
		Label:    "test",
		Duration: 100,
		FileSets: []FileSet{{Name: "a", Weight: 1}, {Name: "b", Weight: 2}},
		Requests: []Request{
			{Time: 1, FileSet: 0, Demand: 0.5},
			{Time: 2, FileSet: 1, Demand: 1.5},
			{Time: 2, FileSet: 1, Demand: 0.25},
			{Time: 99, FileSet: 0, Demand: 1},
		},
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Trace){
		"zero duration":      func(tr *Trace) { tr.Duration = 0 },
		"NaN duration":       func(tr *Trace) { tr.Duration = math.NaN() },
		"no file sets":       func(tr *Trace) { tr.FileSets = nil },
		"empty name":         func(tr *Trace) { tr.FileSets[0].Name = "" },
		"duplicate name":     func(tr *Trace) { tr.FileSets[1].Name = "a" },
		"negative weight":    func(tr *Trace) { tr.FileSets[0].Weight = -1 },
		"unsorted requests":  func(tr *Trace) { tr.Requests[0].Time = 50 },
		"time past end":      func(tr *Trace) { tr.Requests[3].Time = 101 },
		"bad file set index": func(tr *Trace) { tr.Requests[0].FileSet = 9 },
		"negative index":     func(tr *Trace) { tr.Requests[0].FileSet = -1 },
		"zero demand":        func(tr *Trace) { tr.Requests[0].Demand = 0 },
		"inf demand":         func(tr *Trace) { tr.Requests[0].Demand = math.Inf(1) },
	}
	for name, corrupt := range cases {
		tr := validTrace()
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("Validate accepted trace with %s", name)
		}
	}
}

func TestStats(t *testing.T) {
	tr := validTrace()
	s := tr.Stats()
	if s.Requests != 4 || s.FileSets != 2 {
		t.Fatalf("Stats counts = %d/%d, want 4/2", s.Requests, s.FileSets)
	}
	if s.TotalDemand != 3.25 {
		t.Errorf("TotalDemand = %g, want 3.25", s.TotalDemand)
	}
	if s.PerFileSet[0] != 2 || s.PerFileSet[1] != 2 {
		t.Errorf("PerFileSet = %v, want [2 2]", s.PerFileSet)
	}
	if math.Abs(s.OfferedLoad-0.0325) > 1e-12 {
		t.Errorf("OfferedLoad = %g, want 0.0325", s.OfferedLoad)
	}
	if math.Abs(s.MeanRate-0.04) > 1e-12 {
		t.Errorf("MeanRate = %g, want 0.04", s.MeanRate)
	}
}

func TestOfferedLoads(t *testing.T) {
	tr := validTrace()
	loads := tr.OfferedLoads()
	if math.Abs(loads[0]-1.5/100) > 1e-12 {
		t.Errorf("loads[0] = %g, want 0.015", loads[0])
	}
	if math.Abs(loads[1]-1.75/100) > 1e-12 {
		t.Errorf("loads[1] = %g, want 0.0175", loads[1])
	}
}

func TestScaleDemand(t *testing.T) {
	tr := validTrace()
	tr.ScaleDemand(2)
	if tr.Requests[0].Demand != 1.0 {
		t.Fatalf("demand after scale = %g, want 1.0", tr.Requests[0].Demand)
	}
	if got := tr.Stats().TotalDemand; got != 6.5 {
		t.Fatalf("TotalDemand after scale = %g, want 6.5", got)
	}
}

func TestWindowCounts(t *testing.T) {
	tr := validTrace()
	counts := tr.WindowCounts(10)
	if len(counts) != 10 {
		t.Fatalf("got %d windows, want 10", len(counts))
	}
	if counts[0] != 3 || counts[9] != 1 {
		t.Fatalf("window counts %v, want 3 in first and 1 in last", counts)
	}
	if tr.WindowCounts(0) != nil {
		t.Fatal("WindowCounts(0) did not return nil")
	}
}

func TestSortRequestsStableTieBreak(t *testing.T) {
	reqs := []Request{
		{Time: 5, FileSet: 2, Demand: 1},
		{Time: 5, FileSet: 0, Demand: 1},
		{Time: 1, FileSet: 1, Demand: 1},
	}
	sortRequests(reqs)
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time }) &&
		reqs[0].Time != 1 {
		t.Fatalf("requests not sorted: %+v", reqs)
	}
	if reqs[1].FileSet != 0 || reqs[2].FileSet != 2 {
		t.Fatalf("tie not broken by file set: %+v", reqs)
	}
}
