package workload

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"anurand/internal/rng"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != orig.Label || got.Duration != orig.Duration {
		t.Fatalf("header mismatch: %q/%g vs %q/%g", got.Label, got.Duration, orig.Label, orig.Duration)
	}
	if len(got.FileSets) != len(orig.FileSets) {
		t.Fatalf("file set count %d, want %d", len(got.FileSets), len(orig.FileSets))
	}
	for i := range orig.FileSets {
		if got.FileSets[i] != orig.FileSets[i] {
			t.Fatalf("file set %d mismatch: %+v vs %+v", i, got.FileSets[i], orig.FileSets[i])
		}
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("request count %d, want %d", len(got.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		if got.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestTraceRoundTripGenerated(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 8
	cfg.TargetRequests = 3000
	cfg.Duration = 600
	orig, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("count %d, want %d", len(got.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		if got.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestWriteRefusesInvalidTrace(t *testing.T) {
	tr := validTrace()
	tr.Requests[0].Demand = -1
	var buf bytes.Buffer
	if err := tr.Write(&buf); err == nil {
		t.Fatal("Write accepted an invalid trace")
	}
	if buf.Len() != 0 {
		t.Fatal("Write emitted bytes for an invalid trace")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted empty input")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := validTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{1, 5, 10, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("Read accepted truncation at %d bytes", cut)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := validTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xff // version low byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("Read accepted wrong version")
	}
}

func TestReadNeverPanicsOnBitFlips(t *testing.T) {
	var buf bytes.Buffer
	tr := validTrace()
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	src := rng.New(3)
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), data...)
		for flips := 0; flips <= trial%4; flips++ {
			bad[src.Intn(len(bad))] ^= byte(1 << src.Intn(8))
		}
		// Either a clean error or a valid trace; a panic fails the test.
		if got, err := Read(bytes.NewReader(bad)); err == nil {
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: Read returned invalid trace: %v", trial, err)
			}
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.anut")
	orig := validTrace()
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("round trip through file lost requests: %d vs %d", len(got.Requests), len(orig.Requests))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.anut")); err == nil {
		t.Fatal("ReadFile on missing path succeeded")
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		cfg := SyntheticConfig{
			Seed:           seed,
			NumFileSets:    int(nRaw%10) + 1,
			Duration:       300,
			TargetRequests: 500,
			ParetoAlpha:    1.6,
			WeightLow:      1,
			WeightHigh:     10,
			BaseDemand:     0.5,
		}
		orig, err := cfg.Generate()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := orig.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Requests) != len(orig.Requests) {
			return false
		}
		for i := range orig.Requests {
			if got.Requests[i] != orig.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
