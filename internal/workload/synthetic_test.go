package workload

import (
	"math"
	"testing"
)

func TestSyntheticDefaultsValid(t *testing.T) {
	if err := DefaultSynthetic().Validate(); err != nil {
		t.Fatalf("default synthetic config invalid: %v", err)
	}
}

func TestSyntheticValidateRejections(t *testing.T) {
	cases := map[string]func(*SyntheticConfig){
		"no file sets":    func(c *SyntheticConfig) { c.NumFileSets = 0 },
		"zero duration":   func(c *SyntheticConfig) { c.Duration = 0 },
		"zero target":     func(c *SyntheticConfig) { c.TargetRequests = 0 },
		"light alpha":     func(c *SyntheticConfig) { c.ParetoAlpha = 1 },
		"inverted range":  func(c *SyntheticConfig) { c.WeightLow, c.WeightHigh = 10, 1 },
		"zero weight low": func(c *SyntheticConfig) { c.WeightLow = 0 },
		"zero demand":     func(c *SyntheticConfig) { c.BaseDemand = 0 },
		"negative cv":     func(c *SyntheticConfig) { c.DemandCV = -1 },
	}
	for name, corrupt := range cases {
		cfg := DefaultSynthetic()
		corrupt(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
}

func TestSyntheticGenerateShape(t *testing.T) {
	cfg := DefaultSynthetic()
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "synthetic" {
		t.Errorf("label %q", tr.Label)
	}
	if len(tr.FileSets) != 50 {
		t.Fatalf("file sets = %d, want 50", len(tr.FileSets))
	}
	s := tr.Stats()
	// The realized count fluctuates with the heavy tail; it should be
	// within 25% of the paper's 66,401.
	if math.Abs(float64(s.Requests)-66401)/66401 > 0.25 {
		t.Errorf("requests = %d, want within 25%% of 66401", s.Requests)
	}
	// The offered load must be below the 25-unit cluster capacity and
	// in the tuned (roughly 40-80%) band.
	util := s.OfferedLoad / 25
	if util < 0.3 || util > 0.9 {
		t.Errorf("cluster utilization %g outside tuned band", util)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 10
	cfg.TargetRequests = 2000
	cfg.Duration = 600
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("same seed produced %d vs %d requests", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between identical configs", i)
		}
	}
}

func TestSyntheticSeedChangesTrace(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 10
	cfg.TargetRequests = 2000
	cfg.Duration = 600
	a, _ := cfg.Generate()
	cfg.Seed = 99
	b, _ := cfg.Generate()
	if len(a.Requests) == len(b.Requests) {
		same := true
		for i := range a.Requests {
			if a.Requests[i] != b.Requests[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSyntheticWeightsDriveRates(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 20
	cfg.TargetRequests = 40000
	cfg.Duration = 4000
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// Heavier file sets should receive more requests; check the
	// rank correlation loosely by comparing top vs bottom weight.
	hi, lo := 0, 0
	for i, fs := range tr.FileSets {
		if fs.Weight > tr.FileSets[hi].Weight {
			hi = i
		}
		if fs.Weight < tr.FileSets[lo].Weight {
			lo = i
		}
	}
	if s.PerFileSet[hi] <= s.PerFileSet[lo] {
		t.Errorf("heaviest file set got %d requests, lightest got %d", s.PerFileSet[hi], s.PerFileSet[lo])
	}
	ratio := float64(s.PerFileSet[hi]) / float64(s.PerFileSet[lo])
	wantRatio := tr.FileSets[hi].Weight / tr.FileSets[lo].Weight
	if ratio < wantRatio/3 || ratio > wantRatio*3 {
		t.Errorf("request ratio %.2f far from weight ratio %.2f", ratio, wantRatio)
	}
}

func TestSyntheticDemandCV(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 5
	cfg.TargetRequests = 20000
	cfg.Duration = 2000
	cfg.DemandCV = 0.5
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, r := range tr.Requests {
		sum += r.Demand
		sumSq += r.Demand * r.Demand
	}
	n := float64(len(tr.Requests))
	mean := sum / n
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if math.Abs(mean-cfg.BaseDemand)/cfg.BaseDemand > 0.1 {
		t.Errorf("demand mean %g, want ~%g", mean, cfg.BaseDemand)
	}
	if math.Abs(cv-0.5) > 0.15 {
		t.Errorf("demand CV %g, want ~0.5", cv)
	}
}

func TestSyntheticHeavyTailedGaps(t *testing.T) {
	// The Pareto renewal process should produce a gap distribution with
	// a heavier tail than exponential: P(gap > 5*mean) noticeably
	// above e^-5.
	cfg := DefaultSynthetic()
	cfg.NumFileSets = 1
	cfg.TargetRequests = 30000
	cfg.Duration = 30000
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for i := 1; i < len(tr.Requests); i++ {
		gaps = append(gaps, tr.Requests[i].Time-tr.Requests[i-1].Time)
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	tail := 0
	for _, g := range gaps {
		if g > 5*mean {
			tail++
		}
	}
	frac := float64(tail) / float64(len(gaps))
	if frac < 2*math.Exp(-5) {
		t.Errorf("P(gap > 5*mean) = %g, want clearly above exponential's %g", frac, math.Exp(-5))
	}
}

func TestDFSLikeDefaultsValid(t *testing.T) {
	if err := DefaultDFSLike().Validate(); err != nil {
		t.Fatalf("default dfslike config invalid: %v", err)
	}
}

func TestDFSLikeValidateRejections(t *testing.T) {
	cases := map[string]func(*DFSLikeConfig){
		"no file sets":  func(c *DFSLikeConfig) { c.NumFileSets = 0 },
		"zero duration": func(c *DFSLikeConfig) { c.Duration = 0 },
		"zero target":   func(c *DFSLikeConfig) { c.TargetRequests = 0 },
		"negative zipf": func(c *DFSLikeConfig) { c.ZipfS = -1 },
		"tiny burst":    func(c *DFSLikeConfig) { c.BurstLen = 0.5 },
		"light gaps":    func(c *DFSLikeConfig) { c.BurstGapAlpha = 1 },
		"zero demand":   func(c *DFSLikeConfig) { c.BaseDemand = 0 },
	}
	for name, corrupt := range cases {
		cfg := DefaultDFSLike()
		corrupt(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
}

func TestDFSLikeGenerateShape(t *testing.T) {
	tr, err := DefaultDFSLike().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.FileSets) != 21 {
		t.Fatalf("file sets = %d, want 21 (DFSTrace)", len(tr.FileSets))
	}
	s := tr.Stats()
	if math.Abs(float64(s.Requests)-112590)/112590 > 0.35 {
		t.Errorf("requests = %d, want within 35%% of 112590", s.Requests)
	}
	util := s.OfferedLoad / 25
	if util < 0.3 || util > 0.95 {
		t.Errorf("cluster utilization %g outside tuned band", util)
	}
}

func TestDFSLikeSkewedPopularity(t *testing.T) {
	tr, err := DefaultDFSLike().Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// Rank 0 must dominate the least popular file set by a wide margin
	// under Zipf popularity.
	if s.PerFileSet[0] < 4*s.PerFileSet[len(s.PerFileSet)-1] {
		t.Errorf("popularity not skewed: first=%d last=%d", s.PerFileSet[0], s.PerFileSet[len(s.PerFileSet)-1])
	}
}

func TestDFSLikeBursty(t *testing.T) {
	tr, err := DefaultDFSLike().Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Burstiness: the variance of per-second counts should exceed the
	// mean (index of dispersion > 1; Poisson would be ~1).
	counts := tr.WindowCounts(1)
	var sum, sumSq float64
	for _, c := range counts {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	n := float64(len(counts))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance/mean < 1.5 {
		t.Errorf("index of dispersion %.2f, want > 1.5 for bursty arrivals", variance/mean)
	}
}

func TestDFSLikeDeterministic(t *testing.T) {
	cfg := DefaultDFSLike()
	cfg.TargetRequests = 10000
	cfg.Duration = 600
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("same seed produced %d vs %d requests", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}
