package workload

import (
	"fmt"

	"anurand/internal/rng"
)

// HotspotConfig generates a non-stationary workload: file-set popularity
// follows a Zipf distribution whose *ranking rotates* every ShiftEvery
// seconds, so the hot file sets keep changing. Section 3 of the paper
// motivates adaptive load management with exactly this scenario
// ("clusters must adapt to changing workloads and hot spots"); the
// stationary synthetic workload of Figure 5 cannot exercise it.
//
// Under a hotspot workload, a balancer built on whole-run averages (the
// prescient baseline's knowledge model) mis-assigns after every shift,
// while feedback-driven ANU re-balances within a few tuning intervals.
type HotspotConfig struct {
	// Seed drives all randomness.
	Seed uint64

	// NumFileSets is the file-set population.
	NumFileSets int

	// Duration is the trace length in seconds.
	Duration float64

	// TargetRequests is the approximate total request count.
	TargetRequests int

	// ZipfS is the popularity skew (1.0 is classic Zipf).
	ZipfS float64

	// ShiftEvery is the hotspot rotation period in seconds.
	ShiftEvery float64

	// BaseDemand is the per-request service requirement in unit-speed
	// seconds.
	BaseDemand float64
}

// DefaultHotspot returns a two-hundred-minute hotspot workload sized
// like the synthetic one, with the hot set rotating every 25 minutes.
func DefaultHotspot() HotspotConfig {
	return HotspotConfig{
		Seed:           3,
		NumFileSets:    50,
		Duration:       200 * 60,
		TargetRequests: 66401,
		ZipfS:          0.9,
		ShiftEvery:     25 * 60,
		BaseDemand:     2.4,
	}
}

// Validate reports the first nonsensical parameter.
func (c HotspotConfig) Validate() error {
	switch {
	case c.NumFileSets <= 0:
		return fmt.Errorf("workload: NumFileSets %d must be positive", c.NumFileSets)
	case !(c.Duration > 0):
		return fmt.Errorf("workload: Duration %g must be positive", c.Duration)
	case c.TargetRequests <= 0:
		return fmt.Errorf("workload: TargetRequests %d must be positive", c.TargetRequests)
	case c.ZipfS < 0:
		return fmt.Errorf("workload: ZipfS %g must be non-negative", c.ZipfS)
	case !(c.ShiftEvery > 0):
		return fmt.Errorf("workload: ShiftEvery %g must be positive", c.ShiftEvery)
	case !(c.BaseDemand > 0):
		return fmt.Errorf("workload: BaseDemand %g must be positive", c.BaseDemand)
	}
	return nil
}

// Phases returns the number of hotspot phases in the trace.
func (c HotspotConfig) Phases() int {
	n := int(c.Duration / c.ShiftEvery)
	if float64(n)*c.ShiftEvery < c.Duration {
		n++
	}
	return n
}

// Generate materializes the hotspot trace. Within each phase, arrivals
// are Poisson per file set with Zipf rates under that phase's
// popularity permutation; phase boundaries shift which file sets are
// hot.
func (c HotspotConfig) Generate() (*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(c.Seed)
	zipf := rng.NewZipf(c.NumFileSets, c.ZipfS)

	fileSets := make([]FileSet, c.NumFileSets)
	for i := range fileSets {
		// Weight records the long-run average share (uniform across
		// phases in expectation, since ranks rotate).
		fileSets[i] = FileSet{Name: fmt.Sprintf("fs/hotspot/%04d", i), Weight: 1}
	}
	trace := &Trace{Label: "hotspot", Duration: c.Duration, FileSets: fileSets}

	totalRate := float64(c.TargetRequests) / c.Duration
	permSrc := root.Stream("permutations")
	phases := c.Phases()
	for phase := 0; phase < phases; phase++ {
		start := float64(phase) * c.ShiftEvery
		end := start + c.ShiftEvery
		if end > c.Duration {
			end = c.Duration
		}
		// A fresh random permutation decides which file sets are hot
		// this phase.
		perm := permSrc.Perm(c.NumFileSets)
		for rank := 0; rank < c.NumFileSets; rank++ {
			fs := perm[rank]
			rate := totalRate * zipf.Prob(rank)
			if rate <= 0 {
				continue
			}
			gaps := rng.NewExponential(rate)
			src := root.Stream(fmt.Sprintf("phase/%d/fs/%d", phase, fs))
			for t := start + gaps.Sample(src); t < end; t += gaps.Sample(src) {
				trace.Requests = append(trace.Requests, Request{
					Time:    t,
					FileSet: int32(fs),
					Demand:  c.BaseDemand,
				})
			}
		}
	}
	sortRequests(trace.Requests)
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated hotspot trace invalid: %w", err)
	}
	return trace, nil
}
