package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary trace format, little-endian:
//
//	magic    uint32 ("ANUT")
//	version  uint16 (1)
//	label    uint16 length + bytes
//	duration float64
//	nsets    uint32
//	nsets times: name (uint16 length + bytes), weight float64
//	nreq     uint64
//	nreq times: time float64, fileset uint32, demand float64
const (
	traceMagic   = 0x414e5554 // "ANUT"
	traceVersion = 1
)

// Write serializes the trace to w. The trace should be valid; Write
// refuses to serialize one that fails Validate so corrupt files are
// never produced.
func (t *Trace) Write(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("workload: refusing to write invalid trace: %w", err)
	}
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian

	var scratch [8]byte
	writeU16 := func(v uint16) {
		le.PutUint16(scratch[:2], v)
		bw.Write(scratch[:2])
	}
	writeU32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}
	writeU64 := func(v uint64) {
		le.PutUint64(scratch[:8], v)
		bw.Write(scratch[:8])
	}
	writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }
	writeStr := func(s string) {
		writeU16(uint16(len(s)))
		bw.WriteString(s)
	}

	writeU32(traceMagic)
	writeU16(traceVersion)
	if len(t.Label) > math.MaxUint16 {
		return fmt.Errorf("workload: label too long (%d bytes)", len(t.Label))
	}
	writeStr(t.Label)
	writeF64(t.Duration)
	writeU32(uint32(len(t.FileSets)))
	for _, fs := range t.FileSets {
		if len(fs.Name) > math.MaxUint16 {
			return fmt.Errorf("workload: file set name too long (%d bytes)", len(fs.Name))
		}
		writeStr(fs.Name)
		writeF64(fs.Weight)
	}
	writeU64(uint64(len(t.Requests)))
	for _, r := range t.Requests {
		writeF64(r.Time)
		writeU32(uint32(r.FileSet))
		writeF64(r.Demand)
	}
	return bw.Flush()
}

// Read deserializes a trace from r and validates it, so a caller never
// receives a structurally broken trace from a damaged file.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var scratch [8]byte

	readN := func(n int) ([]byte, error) {
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return nil, err
		}
		return scratch[:n], nil
	}
	readU16 := func() (uint16, error) {
		b, err := readN(2)
		if err != nil {
			return 0, err
		}
		return le.Uint16(b), nil
	}
	readU32 := func() (uint32, error) {
		b, err := readN(4)
		if err != nil {
			return 0, err
		}
		return le.Uint32(b), nil
	}
	readU64 := func() (uint64, error) {
		b, err := readN(8)
		if err != nil {
			return 0, err
		}
		return le.Uint64(b), nil
	}
	readF64 := func() (float64, error) {
		v, err := readU64()
		return math.Float64frombits(v), err
	}
	readStr := func() (string, error) {
		n, err := readU16()
		if err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("workload: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: bad magic %#x (not a trace file)", magic)
	}
	version, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("workload: reading version: %w", err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", version)
	}
	t := &Trace{}
	if t.Label, err = readStr(); err != nil {
		return nil, fmt.Errorf("workload: reading label: %w", err)
	}
	if t.Duration, err = readF64(); err != nil {
		return nil, fmt.Errorf("workload: reading duration: %w", err)
	}
	nsets, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("workload: reading file set count: %w", err)
	}
	if nsets > 1<<24 {
		return nil, fmt.Errorf("workload: implausible file set count %d", nsets)
	}
	// The counts come from an untrusted file: never pre-allocate from
	// them (a flipped bit would demand gigabytes). Grow incrementally
	// and let truncation surface as a read error instead.
	const eagerCap = 1 << 16
	t.FileSets = make([]FileSet, 0, min(int(nsets), eagerCap))
	for i := 0; i < int(nsets); i++ {
		var fs FileSet
		if fs.Name, err = readStr(); err != nil {
			return nil, fmt.Errorf("workload: reading file set %d: %w", i, err)
		}
		if fs.Weight, err = readF64(); err != nil {
			return nil, fmt.Errorf("workload: reading file set %d weight: %w", i, err)
		}
		t.FileSets = append(t.FileSets, fs)
	}
	nreq, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("workload: reading request count: %w", err)
	}
	if nreq > 1<<32 {
		return nil, fmt.Errorf("workload: implausible request count %d", nreq)
	}
	t.Requests = make([]Request, 0, min(int(nreq), eagerCap))
	for i := 0; i < int(nreq); i++ {
		var req Request
		if req.Time, err = readF64(); err != nil {
			return nil, fmt.Errorf("workload: reading request %d: %w", i, err)
		}
		fs, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("workload: reading request %d file set: %w", i, err)
		}
		req.FileSet = int32(fs)
		if req.Demand, err = readF64(); err != nil {
			return nil, fmt.Errorf("workload: reading request %d demand: %w", i, err)
		}
		t.Requests = append(t.Requests, req)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: trace file is corrupt: %w", err)
	}
	return t, nil
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
