package workload_test

import (
	"bytes"
	"fmt"

	"anurand/internal/workload"
)

// Generate the paper's synthetic workload and inspect it.
func ExampleSyntheticConfig_Generate() {
	cfg := workload.DefaultSynthetic()
	cfg.NumFileSets = 10
	cfg.Duration = 600
	cfg.TargetRequests = 3000
	trace, err := cfg.Generate()
	if err != nil {
		panic(err)
	}
	s := trace.Stats()
	fmt.Println("file sets:", s.FileSets)
	fmt.Println("has requests:", s.Requests > 2000)
	fmt.Println("valid:", trace.Validate() == nil)
	// Output:
	// file sets: 10
	// has requests: true
	// valid: true
}

// Traces serialize to a compact binary format for replay.
func ExampleTrace_Write() {
	cfg := workload.DefaultSynthetic()
	cfg.NumFileSets = 5
	cfg.Duration = 120
	cfg.TargetRequests = 200
	trace, _ := cfg.Generate()

	var buf bytes.Buffer
	if err := trace.Write(&buf); err != nil {
		panic(err)
	}
	back, err := workload.Read(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("round trip:", len(back.Requests) == len(trace.Requests))
	// Output:
	// round trip: true
}
