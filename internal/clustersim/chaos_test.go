package clustersim

import (
	"testing"
	"testing/quick"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/policy"
	"anurand/internal/rng"
	"anurand/internal/workload"
)

// TestChaosRandomEventSchedules drives full simulations under random
// failure/recovery/commission/decommission schedules and asserts the
// accounting invariants that must hold whatever happens:
//
//   - the run completes without error or panic;
//   - every request is either completed or dropped, exactly once;
//   - per-server served counts sum to the completed count;
//   - latencies are non-negative and finite;
//   - the ANU map inside the policy still satisfies its invariants.
func TestChaosRandomEventSchedules(t *testing.T) {
	prop := func(seed uint64, nEventsRaw uint8) bool {
		src := rng.New(seed)
		wcfg := workload.SyntheticConfig{
			Seed:           seed,
			NumFileSets:    15,
			Duration:       1200,
			TargetRequests: 3000,
			ParetoAlpha:    1.6,
			WeightLow:      1,
			WeightHigh:     10,
			BaseDemand:     2.0,
		}
		trace, err := wcfg.Generate()
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		placer, err := policy.NewANU(hashx.NewFamily(seed), trace.FileSets,
			[]policy.ServerID{0, 1, 2, 3, 4}, anu.DefaultControllerConfig())
		if err != nil {
			t.Logf("policy: %v", err)
			return false
		}
		cfg := DefaultConfig(trace, placer)

		// Random event schedule. Track which servers are plausibly up
		// so recover/fail pairs make sense; the simulator must tolerate
		// redundant events anyway.
		up := map[ServerID]bool{0: true, 1: true, 2: true, 3: true, 4: true}
		next := ServerID(5)
		nEvents := int(nEventsRaw % 12)
		for i := 0; i < nEvents; i++ {
			at := src.Float64() * wcfg.Duration
			switch src.Intn(4) {
			case 0:
				id := ServerID(src.Intn(int(next)))
				cfg.Events = append(cfg.Events, Event{Time: at, Kind: Fail, Server: id})
				up[id] = false
			case 1:
				id := ServerID(src.Intn(int(next)))
				cfg.Events = append(cfg.Events, Event{Time: at, Kind: Recover, Server: id})
				up[id] = true
			case 2:
				cfg.Events = append(cfg.Events, Event{Time: at, Kind: Commission, Server: next, Speed: 1 + src.Float64()*8})
				up[next] = true
				next++
			case 3:
				id := ServerID(src.Intn(int(next)))
				cfg.Events = append(cfg.Events, Event{Time: at, Kind: Decommission, Server: id})
				up[id] = false
			}
		}

		res, err := Run(cfg)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if res.Completed+res.Dropped != uint64(len(trace.Requests)) {
			t.Logf("accounting: %d completed + %d dropped != %d requests",
				res.Completed, res.Dropped, len(trace.Requests))
			return false
		}
		var served uint64
		for _, s := range res.Servers {
			served += s.Served
		}
		if served != res.Completed {
			t.Logf("served %d != completed %d", served, res.Completed)
			return false
		}
		if res.Aggregate.N() > 0 && (res.Aggregate.Min() < 0 || res.Aggregate.Max() != res.Aggregate.Max()) {
			t.Logf("latency range invalid: min=%g max=%g", res.Aggregate.Min(), res.Aggregate.Max())
			return false
		}
		if err := placer.Map().CheckInvariants(); err != nil {
			t.Logf("map invariants after chaos: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosAllPoliciesSurvive runs a fixed adversarial schedule under
// every policy: mass failure, staggered recovery, mid-run commission.
func TestChaosAllPoliciesSurvive(t *testing.T) {
	tr := smallTrace(t, 99)
	events := []Event{
		{Time: 200, Kind: Fail, Server: 0},
		{Time: 250, Kind: Fail, Server: 1},
		{Time: 300, Kind: Fail, Server: 2},
		{Time: 350, Kind: Fail, Server: 3},
		{Time: 600, Kind: Recover, Server: 0},
		{Time: 650, Kind: Recover, Server: 2},
		{Time: 700, Kind: Commission, Server: 5, Speed: 6},
		{Time: 900, Kind: Decommission, Server: 4},
		{Time: 1000, Kind: Recover, Server: 1},
	}
	builders := map[string]func() policy.Placer{
		"simple":    func() policy.Placer { return newSimplePolicy(t, tr) },
		"anu":       func() policy.Placer { return newANUPolicy(t, tr) },
		"prescient": func() policy.Placer { return newPrescientPolicy(t, tr) },
		"vp": func() policy.Placer {
			p, err := policy.NewVirtualProcessor(hashx.NewFamily(42), tr.FileSets, 20)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(tr, build())
			cfg.Events = events
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed+res.Dropped != uint64(len(tr.Requests)) {
				t.Fatalf("accounting broken: %d + %d != %d", res.Completed, res.Dropped, len(tr.Requests))
			}
			// With at least one server always alive, nothing drops.
			if res.Dropped != 0 {
				t.Fatalf("dropped %d with server 4 alive until 900 and 0/2 back at 600/650", res.Dropped)
			}
		})
	}
}
