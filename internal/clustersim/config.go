// Package clustersim simulates a heterogeneous, shared-disk file-server
// cluster under a load-management policy — the trace-driven simulator of
// the paper's Section 5 (built on package sim, our YACSIM substitute).
//
// The cluster routes each trace request to the server its policy places
// the request's file set on, serves it through a FIFO queueing station
// with the server's speed, and retunes the policy on a fixed interval
// (the paper's two minutes). Moving a file set costs: the shedding
// server flushes its cache (injected busy time) and the acquiring server
// starts cold (a service-demand multiplier for the first requests), so
// policies that churn placement pay for it, as in a real shared-disk
// cluster (Section 5.3).
package clustersim

import (
	"fmt"
	"math"

	"anurand/internal/policy"
	"anurand/internal/workload"
)

// ServerID aliases the policy/anu identifier space.
type ServerID = policy.ServerID

// EventKind enumerates scheduled configuration changes.
type EventKind int

// Configuration change kinds.
const (
	// Fail takes a server down; queued work is re-routed.
	Fail EventKind = iota
	// Recover brings a failed server back up.
	Recover
	// Commission adds a brand-new server to the cluster.
	Commission
	// Decommission removes a server permanently.
	Decommission
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	case Commission:
		return "commission"
	case Decommission:
		return "decommission"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a scheduled cluster configuration change.
type Event struct {
	Time   float64
	Kind   EventKind
	Server ServerID
	// Speed is the capacity of a commissioned server (ignored
	// otherwise).
	Speed float64
}

// Config describes one simulation run.
type Config struct {
	// Speeds gives each initial server's capacity; server IDs are the
	// indices (the paper's five-server cluster is {1, 3, 5, 7, 9}).
	Speeds []float64

	// Trace is the request stream to replay.
	Trace *workload.Trace

	// Policy places file sets on servers. The caller constructs it over
	// the same file sets and server ids.
	Policy policy.Placer

	// TuneInterval is the load-placement tuning period in seconds
	// (paper: two minutes).
	TuneInterval float64

	// ReportWindow is the time-series bucket width for the
	// latency-over-time figures; zero defaults to TuneInterval.
	ReportWindow float64

	// MoveFlushTime is the busy time in seconds injected into a
	// shedding server per moved file set (cache flush to stable
	// storage). Zero disables.
	MoveFlushTime float64

	// ColdPenalty multiplies the service demand of the first
	// ColdRequests requests a server serves for a newly acquired file
	// set (cold cache). Values <= 1 disable.
	ColdPenalty float64

	// ColdRequests is how many requests pay ColdPenalty after a move.
	ColdRequests int

	// Events are scheduled failures/recoveries/commissionings.
	Events []Event

	// RetuneOnEvents triggers an immediate tuning round when a
	// configuration event fires, as the paper's system reacts to
	// failure and recovery without waiting for the next interval.
	RetuneOnEvents bool

	// BacklogAwareReports adds each server's queue-drain estimate
	// (backlog / speed) to its reported latency, turning the report
	// into a leading indicator. The paper reports plain completed-
	// request latency; this extension damps feedback lag at high
	// utilization (see the ablation in cmd/ablate).
	BacklogAwareReports bool

	// RedirectOnMove re-dispatches requests still queued at the
	// shedding server when their file set moves; the paper's shedding
	// protocol notifies the acquiring server, so waiting clients are
	// redirected rather than left behind an overloaded queue.
	RedirectOnMove bool

	// RunPast extends the simulation beyond the trace end so queued
	// work drains; zero defaults to 10 tuning intervals.
	RunPast float64

	// SAN optionally models the shared-disk data path behind the
	// metadata tier (see SANConfig).
	SAN SANConfig

	// Scratch optionally supplies reusable simulation memory — the
	// engine's event pool, job pool and calendar backing array — so a
	// caller running many simulations back to back pays the steady-state
	// allocations once instead of once per run. A Scratch must never be
	// shared by concurrent runs; nil keeps the run self-contained.
	Scratch *Scratch

	// SteadyAfterFrac marks the start of the steady-state measurement
	// window as a fraction of the trace duration (default 0.25):
	// requests completing after that instant also feed
	// Result.SteadyAggregate, separating converged behaviour from the
	// adaptation transient.
	SteadyAfterFrac float64
}

// DefaultConfig returns the paper's simulation parameters over the given
// trace and policy: the 1/3/5/7/9 five-server cluster, two-minute
// tuning, and modest movement costs.
func DefaultConfig(trace *workload.Trace, placer policy.Placer) Config {
	return Config{
		Speeds:         []float64{1, 3, 5, 7, 9},
		Trace:          trace,
		Policy:         placer,
		TuneInterval:   120,
		MoveFlushTime:  0.25,
		ColdPenalty:    2.0,
		ColdRequests:   3,
		RetuneOnEvents: true,
		RedirectOnMove: true,
	}
}

// Validate reports the first problem with the configuration.
func (c *Config) Validate() error {
	if len(c.Speeds) == 0 {
		return fmt.Errorf("clustersim: no servers")
	}
	for i, s := range c.Speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("clustersim: server %d has invalid speed %g", i, s)
		}
	}
	if c.Trace == nil {
		return fmt.Errorf("clustersim: nil trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return fmt.Errorf("clustersim: %w", err)
	}
	if c.Policy == nil {
		return fmt.Errorf("clustersim: nil policy")
	}
	if c.TuneInterval <= 0 || math.IsNaN(c.TuneInterval) {
		return fmt.Errorf("clustersim: invalid tune interval %g", c.TuneInterval)
	}
	if c.ReportWindow < 0 {
		return fmt.Errorf("clustersim: negative report window")
	}
	if c.MoveFlushTime < 0 {
		return fmt.Errorf("clustersim: negative flush time")
	}
	if c.ColdRequests < 0 {
		return fmt.Errorf("clustersim: negative cold request count")
	}
	if c.RunPast < 0 {
		return fmt.Errorf("clustersim: negative RunPast")
	}
	if c.SteadyAfterFrac < 0 || c.SteadyAfterFrac >= 1 {
		return fmt.Errorf("clustersim: SteadyAfterFrac %g outside [0, 1)", c.SteadyAfterFrac)
	}
	if err := c.SAN.Validate(); err != nil {
		return err
	}
	for i, ev := range c.Events {
		if ev.Time < 0 || math.IsNaN(ev.Time) {
			return fmt.Errorf("clustersim: event %d has invalid time %g", i, ev.Time)
		}
		if ev.Kind == Commission && (ev.Speed <= 0 || math.IsNaN(ev.Speed)) {
			return fmt.Errorf("clustersim: commission event %d has invalid speed %g", i, ev.Speed)
		}
		if ev.Kind < Fail || ev.Kind > Decommission {
			return fmt.Errorf("clustersim: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}
